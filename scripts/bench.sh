#!/usr/bin/env bash
# bench.sh — benchmark regression harness (see docs/perf.md).
#
# Full mode (the default) runs every benchmark with fixed -benchtime/-count
# and records the folded results into BENCH_6.json via cmd/benchgate:
#
#   ./scripts/bench.sh                 # re-record the "current" block
#   ./scripts/bench.sh --baseline pre.txt   # also record pre.txt as baseline
#
# Smoke mode runs a fast subset (skipping the multi-second campaign
# benchmarks) and gates it against the committed BENCH_6.json. Time gates
# are loose (tolerance factor, absorbs CI machine variance); allocs/op
# gates are exact, because allocation counts are deterministic:
#
#   ./scripts/bench.sh --smoke
set -euo pipefail
cd "$(dirname "$0")/.."

BENCHTIME="${BENCHTIME:-200ms}"
COUNT="${COUNT:-3}"
TOLERANCE="${TOLERANCE:-2.5}"
OUT="${OUT:-BENCH_6.json}"

# Fast subset for CI smoke: steady-state kernels and harness overhead, no
# full-campaign benchmarks (those take tens of seconds per iteration).
SMOKE_PATTERN='^(BenchmarkEnvEpisode|BenchmarkNNForwardBackward|BenchmarkStudyOverhead|BenchmarkReportTable|BenchmarkFigure4)$'

if [ "${1:-}" = "--smoke" ]; then
  tmp="$(mktemp)"
  trap 'rm -f "$tmp"' EXIT
  go test -run '^$' -bench "$SMOKE_PATTERN" -benchmem \
    -benchtime "${SMOKE_BENCHTIME:-50ms}" -count 1 . | tee "$tmp"
  # The allocs ceiling is an absolute contract, not a relative gate: the
  # 50-trial study harness must stay within its allocation budget even if
  # the golden record is re-ratcheted.
  go run ./cmd/benchgate check -golden "$OUT" -tolerance "$TOLERANCE" \
    -max-allocs "${MAX_ALLOCS:-BenchmarkStudyOverhead=64}" < "$tmp"
  exit 0
fi

BASELINE_ARGS=()
if [ "${1:-}" = "--baseline" ]; then
  BASELINE_ARGS=(-baseline "$2")
fi

tmp="$(mktemp)"
trap 'rm -f "$tmp"' EXIT
go test -run '^$' -bench . -benchmem -benchtime "$BENCHTIME" -count "$COUNT" . | tee "$tmp"
go run ./cmd/benchgate record -out "$OUT" "${BASELINE_ARGS[@]}" \
  -note "go test -bench . -benchmem -benchtime $BENCHTIME -count $COUNT; ns/op folded by min, allocs/op by max" < "$tmp"
