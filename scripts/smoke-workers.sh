#!/usr/bin/env bash
# smoke-workers.sh — end-to-end fleet round trip: build rldecide-serve and
# rldecide-worker, start a fleet-mode daemon plus two workers behind a
# bearer token, submit a tiny sphere study, wait for it to finish, and
# check that every journaled trial carries a remote worker attribution,
# a real wall-clock timing, and that both daemons expose their core
# metric series on GET /metrics.
#
# Runs in CI (see .github/workflows/ci.yml) and locally:
#
#   ./scripts/smoke-workers.sh
set -euo pipefail
cd "$(dirname "$0")/.."

TOKEN=smoke
PORT="${SMOKE_PORT:-18080}"
W1_PORT=$((PORT + 1))
W2_PORT=$((PORT + 2))
DIR="$(mktemp -d)"
BIN="$DIR/bin"
mkdir -p "$BIN"

cleanup() {
  kill "${PIDS[@]}" 2>/dev/null || true
  wait 2>/dev/null || true
  rm -rf "$DIR"
}
PIDS=()
trap cleanup EXIT

go build -o "$BIN/rldecide-serve" ./cmd/rldecide-serve
go build -o "$BIN/rldecide-worker" ./cmd/rldecide-worker

"$BIN/rldecide-serve" -addr "127.0.0.1:$PORT" -dir "$DIR/state" \
  -exec fleet -token "$TOKEN" &
PIDS+=($!)

for i in 1 2; do
  port=$((PORT + i))
  "$BIN/rldecide-worker" -serve "http://127.0.0.1:$PORT" \
    -addr "127.0.0.1:$port" -name "smoke-w$i" -slots 2 -token "$TOKEN" &
  PIDS+=($!)
done

base="http://127.0.0.1:$PORT"
for _ in $(seq 1 50); do
  curl -sf "$base/healthz" >/dev/null && break
  sleep 0.2
done
curl -sf "$base/healthz" >/dev/null || { echo "daemon never came up" >&2; exit 1; }

# Wait for both workers to register before submitting. The || n=0 keeps
# a zero-match grep (empty fleet, pipefail) from aborting the retry loop.
for _ in $(seq 1 50); do
  n=$(curl -sf "$base/workers" | grep -o '"name"' | wc -l) || n=0
  [ "$n" -ge 2 ] && break
  sleep 0.2
done
[ "$n" -ge 2 ] || { echo "workers never registered (got $n)" >&2; exit 1; }

spec='{
  "name": "smoke",
  "params": [
    {"name": "x", "type": "floatrange", "lo": -2, "hi": 2},
    {"name": "y", "type": "floatrange", "lo": -2, "hi": 2}
  ],
  "explorer": {"type": "random"},
  "metrics": [
    {"name": "f", "direction": "min"},
    {"name": "cost", "direction": "min"}
  ],
  "objective": "sphere",
  "budget": 8,
  "parallelism": 4,
  "seed": 7
}'

# The token is enforced: an anonymous submit must bounce.
code=$(curl -s -o /dev/null -w '%{http_code}' -X POST "$base/studies" -d "$spec")
[ "$code" = "401" ] || { echo "anonymous submit got $code, want 401" >&2; exit 1; }

id=$(curl -sf -X POST "$base/studies" \
  -H "Authorization: Bearer $TOKEN" -d "$spec" |
  sed -n 's/.*"id": *"\([^"]*\)".*/\1/p' | head -1)
[ -n "$id" ] || { echo "submit returned no study id" >&2; exit 1; }
echo "submitted $id"

for _ in $(seq 1 100); do
  status=$(curl -sf "$base/studies/$id" | sed -n 's/.*"status": *"\([^"]*\)".*/\1/p' | head -1)
  [ "$status" = "done" ] && break
  [ "$status" = "failed" ] && { curl -s "$base/studies/$id" >&2; exit 1; }
  sleep 0.2
done
[ "$status" = "done" ] || { echo "study stuck in '$status'" >&2; exit 1; }

journal="$DIR/state/$id.trials.jsonl"
trials=$(wc -l <"$journal")
attributed=$(grep -c '"worker":"smoke-w' "$journal")
timed=$(grep -c '"wall_ms":' "$journal")
echo "journal: $trials trials, $attributed attributed to smoke workers, $timed timed"
[ "$trials" = "8" ] || { echo "expected 8 journaled trials" >&2; exit 1; }
[ "$attributed" = "8" ] || { cat "$journal" >&2; exit 1; }
[ "$timed" = "8" ] || { echo "trials missing wall_ms timing" >&2; cat "$journal" >&2; exit 1; }

# The daemon's exposition must carry the scheduler and journal series
# with the campaign's counts baked in.
metrics=$(curl -sf "$base/metrics")
for series in \
  'rldecide_studyd_studies_submitted_total 1' \
  'rldecide_studyd_trials_finished_total 8' \
  'rldecide_studyd_studies{status="done"} 1' \
  'rldecide_fleet_dispatches_total 8' \
  'rldecide_fleet_workers 2' \
  'rldecide_journal_appends_total 8' \
  'rldecide_studyd_trial_seconds_bucket'; do
  echo "$metrics" | grep -qF "$series" ||
    { echo "daemon /metrics missing: $series" >&2; echo "$metrics" >&2; exit 1; }
done

# Each worker exposes its trial counters and in-flight gauge.
for i in 1 2; do
  wm=$(curl -sf "http://127.0.0.1:$((PORT + i))/metrics")
  for series in \
    'rldecide_worker_trials_total' \
    "rldecide_worker_in_flight{worker=\"smoke-w$i\"} 0"; do
    echo "$wm" | grep -qF "$series" ||
      { echo "worker $i /metrics missing: $series" >&2; echo "$wm" >&2; exit 1; }
  done
done
echo "metrics scrapes OK"

curl -sf "$base/studies/$id/front" | head -c 400; echo
echo "worker smoke OK"
