#!/usr/bin/env bash
# smoke-analysis.sh — end-to-end decision-analysis round trip: build
# rldecide-serve and rldecide-analyze, start one daemon with tracing and
# trajectory recording on, run a steer-ppo study (real PPO training per
# trial), and check that
#
#   * all three GET /studies/{id}/analysis/{kind} endpoints serve a
#     report over HTTP,
#   * a second fetch serves the cached sidecar byte-identically,
#   * rldecide-analyze produces the same three reports offline from the
#     state directory's trace and trajectory journals,
#   * rldecide-analyze -url fetches through the daemon.
#
# Runs in CI (see .github/workflows/ci.yml) and locally:
#
#   ./scripts/smoke-analysis.sh
set -euo pipefail
cd "$(dirname "$0")/.."

TOKEN=smoke
PORT="${SMOKE_ANALYSIS_PORT:-18100}"
DIR="$(mktemp -d)"
BIN="$DIR/bin"
mkdir -p "$BIN"

cleanup() {
  kill "${PIDS[@]}" 2>/dev/null || true
  wait 2>/dev/null || true
  rm -rf "$DIR"
}
PIDS=()
trap cleanup EXIT

go build -o "$BIN/rldecide-serve" ./cmd/rldecide-serve
go build -o "$BIN/rldecide-analyze" ./cmd/rldecide-analyze

"$BIN/rldecide-serve" -addr "127.0.0.1:$PORT" -dir "$DIR/state" \
  -workers 4 -token "$TOKEN" -trace -analysis &
PIDS+=($!)

base="http://127.0.0.1:$PORT"
for _ in $(seq 1 50); do
  curl -sf "$base/healthz" >/dev/null && break
  sleep 0.2
done
curl -sf "$base/healthz" >/dev/null || { echo "daemon never came up" >&2; exit 1; }

# A tiny steer-ppo study: enough PPO training to record real evaluation
# trajectories, small enough to finish in seconds.
spec='{
  "name": "analysis-smoke",
  "params": [
    {"name": "lr", "type": "floatrange", "lo": 0.001, "hi": 0.01, "log": true},
    {"name": "hidden", "type": "intset", "ints": [4, 8]},
    {"name": "steps", "type": "intset", "ints": [128]}
  ],
  "explorer": {"type": "random"},
  "metrics": [
    {"name": "return", "direction": "max"},
    {"name": "compute", "direction": "min"}
  ],
  "objective": "steer-ppo",
  "budget": 4,
  "parallelism": 2,
  "seed": 11
}'

id=$(curl -sf -X POST "$base/studies" \
  -H "Authorization: Bearer $TOKEN" -d "$spec" |
  sed -n 's/.*"id": *"\([^"]*\)".*/\1/p' | head -1)
[ -n "$id" ] || { echo "submit returned no study id" >&2; exit 1; }
echo "submitted $id"

for _ in $(seq 1 300); do
  status=$(curl -sf "$base/studies/$id" | sed -n 's/.*"status": *"\([^"]*\)".*/\1/p' | head -1) || status=""
  [ "$status" = "done" ] && break
  [ "$status" = "failed" ] && { curl -s "$base/studies/$id" >&2; exit 1; }
  sleep 0.2
done
[ "$status" = "done" ] || { echo "study $id stuck in '$status'" >&2; exit 1; }

# The tracer drains the event bus asynchronously; give the final
# trial_done spans a moment to reach trace.jsonl before summarizing.
for _ in $(seq 1 50); do
  n=$(grep -c '"kind":"trial_done"' "$DIR/state/trace.jsonl" 2>/dev/null) || n=0
  [ "$n" -ge 4 ] && break
  sleep 0.2
done
[ "$n" -ge 4 ] || { echo "trace.jsonl has $n trial_done events, want 4" >&2; exit 1; }

# All three reports over HTTP, each fetched twice: the second response
# must be the cached sidecar, byte-identical to the first.
for kind in traces attribution counterfactuals; do
  curl -sf "$base/studies/$id/analysis/$kind" >"$DIR/$kind.1.json" ||
    { echo "GET analysis/$kind failed" >&2; exit 1; }
  [ -f "$DIR/state/$id.analysis-$kind.json" ] ||
    { echo "no sidecar cache for $kind" >&2; exit 1; }
  curl -sf "$base/studies/$id/analysis/$kind" >"$DIR/$kind.2.json"
  cmp -s "$DIR/$kind.1.json" "$DIR/$kind.2.json" ||
    { echo "cached $kind report differs from fresh one" >&2; exit 1; }
done
grep -q '"trials"' "$DIR/traces.1.json" || { echo "trace report has no trial summary" >&2; exit 1; }
grep -q '"ranking"' "$DIR/attribution.1.json" || { echo "attribution report has no ranking" >&2; exit 1; }
grep -q '"points"' "$DIR/counterfactuals.1.json" || { echo "counterfactual report has no points" >&2; exit 1; }
echo "all three analysis endpoints OK (cached + byte-stable)"

# Offline: the CLI must produce the same three reports straight from the
# state directory, no daemon involved.
"$BIN/rldecide-analyze" traces -trace "$DIR/state/trace.jsonl" -study "$id" >"$DIR/cli-traces.json"
grep -q '"trials"' "$DIR/cli-traces.json" || { echo "offline trace analysis empty" >&2; exit 1; }
traj="$DIR/state/$id.trajectories.jsonl"
[ -s "$traj" ] || { echo "no trajectory journal at $traj" >&2; exit 1; }
"$BIN/rldecide-analyze" attribution -traj "$traj" >"$DIR/cli-attr.json"
grep -q '"ranking"' "$DIR/cli-attr.json" || { echo "offline attribution empty" >&2; exit 1; }
"$BIN/rldecide-analyze" counterfactuals -traj "$traj" >"$DIR/cli-cf.json"
grep -q '"points"' "$DIR/cli-cf.json" || { echo "offline counterfactuals empty" >&2; exit 1; }
echo "offline CLI OK"

# And through the daemon with -url.
"$BIN/rldecide-analyze" counterfactuals -url "$base" -study "$id" >"$DIR/url-cf.json"
grep -q '"points"' "$DIR/url-cf.json" || { echo "-url counterfactuals empty" >&2; exit 1; }
echo "analysis smoke OK"
