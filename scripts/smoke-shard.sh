#!/usr/bin/env bash
# smoke-shard.sh — end-to-end sharded control plane round trip: build
# rldecide-serve, rldecide-worker and rldecide-router, start two named
# serve daemons on one shared state directory plus two workers registered
# with both daemons, front the fleet with the router, and check that
#
#   * identical submissions spread across both shards (bounded-load
#     placement),
#   * per-study reads proxy through the router to the owning daemon,
#   * a study's /spans tree links the router's placement span, the owning
#     daemon's scheduling spans, and the worker-side execution spans
#     under one deterministic trace ID,
#   * the fleet-wide /metrics rollup carries daemon labels without
#     colliding series,
#   * killing one daemon re-homes its studies onto the survivor and the
#     router keeps serving them.
#
# Runs in CI (see .github/workflows/ci.yml) and locally:
#
#   ./scripts/smoke-shard.sh
set -euo pipefail
cd "$(dirname "$0")/.."

TOKEN=smoke
RTOKEN=route-smoke
PORT="${SMOKE_SHARD_PORT:-18090}"
A_PORT=$((PORT + 1))
B_PORT=$((PORT + 2))
W1_PORT=$((PORT + 3))
W2_PORT=$((PORT + 4))
DIR="$(mktemp -d)"
BIN="$DIR/bin"
mkdir -p "$BIN"

cleanup() {
  kill "${PIDS[@]}" 2>/dev/null || true
  wait 2>/dev/null || true
  rm -rf "$DIR"
}
PIDS=()
trap cleanup EXIT

go build -o "$BIN/rldecide-serve" ./cmd/rldecide-serve
go build -o "$BIN/rldecide-worker" ./cmd/rldecide-worker
go build -o "$BIN/rldecide-router" ./cmd/rldecide-router

"$BIN/rldecide-serve" -addr "127.0.0.1:$A_PORT" -dir "$DIR/state" \
  -name alpha -exec fleet -token "$TOKEN" -trace -spans &
PIDS+=($!)
"$BIN/rldecide-serve" -addr "127.0.0.1:$B_PORT" -dir "$DIR/state" \
  -name beta -exec fleet -token "$TOKEN" -trace -spans &
BETA_PID=$!
PIDS+=($BETA_PID)

"$BIN/rldecide-router" -addr "127.0.0.1:$PORT" \
  -backends "alpha=http://127.0.0.1:$A_PORT,beta=http://127.0.0.1:$B_PORT" \
  -token "$TOKEN" -router-token "$RTOKEN" -reconcile 1s &
PIDS+=($!)

# One worker process per slot pair, registered with BOTH daemons.
for i in 1 2; do
  port=$((PORT + 2 + i))
  "$BIN/rldecide-worker" \
    -serve "http://127.0.0.1:$A_PORT,http://127.0.0.1:$B_PORT" \
    -addr "127.0.0.1:$port" -name "shard-w$i" -slots 2 -token "$TOKEN" &
  PIDS+=($!)
done

base="http://127.0.0.1:$PORT"
for _ in $(seq 1 50); do
  curl -sf "$base/healthz" >/dev/null && break
  sleep 0.2
done
curl -sf "$base/healthz" >/dev/null || { echo "router never came up" >&2; exit 1; }

# Both daemons must see both workers before we submit.
for p in "$A_PORT" "$B_PORT"; do
  for _ in $(seq 1 50); do
    n=$(curl -sf "http://127.0.0.1:$p/workers" | grep -o '"name"' | wc -l) || n=0
    [ "$n" -ge 2 ] && break
    sleep 0.2
  done
  [ "$n" -ge 2 ] || { echo "workers never registered with :$p (got $n)" >&2; exit 1; }
done

spec='{
  "name": "shard-smoke",
  "params": [
    {"name": "x", "type": "floatrange", "lo": -2, "hi": 2},
    {"name": "y", "type": "floatrange", "lo": -2, "hi": 2}
  ],
  "explorer": {"type": "random"},
  "metrics": [
    {"name": "f", "direction": "min"},
    {"name": "cost", "direction": "min"}
  ],
  "objective": "sphere",
  "budget": 8,
  "parallelism": 4,
  "seed": 7
}'

# The daemons' auth is enforced through the router: anonymous bounces.
code=$(curl -s -o /dev/null -w '%{http_code}' -X POST "$base/studies" -d "$spec")
[ "$code" = "401" ] || { echo "anonymous submit got $code, want 401" >&2; exit 1; }

# Three byte-identical submissions hash to one ring position; the
# bounded-load cap must still spread them across both shards.
ids=()
for _ in 1 2 3; do
  id=$(curl -sf -X POST "$base/studies" \
    -H "Authorization: Bearer $TOKEN" -d "$spec" |
    sed -n 's/.*"id": *"\([^"]*\)".*/\1/p' | head -1)
  [ -n "$id" ] || { echo "submit returned no study id" >&2; exit 1; }
  ids+=("$id")
done
echo "placed: ${ids[*]}"
case " ${ids[*]} " in
  *" alpha-"*) ;;
  *) echo "no study placed on alpha: ${ids[*]}" >&2; exit 1 ;;
esac
case " ${ids[*]} " in
  *" beta-"*) ;;
  *) echo "no study placed on beta: ${ids[*]}" >&2; exit 1 ;;
esac

for id in "${ids[@]}"; do
  for _ in $(seq 1 100); do
    status=$(curl -sf "$base/studies/$id" | sed -n 's/.*"status": *"\([^"]*\)".*/\1/p' | head -1) || status=""
    [ "$status" = "done" ] && break
    [ "$status" = "failed" ] && { curl -s "$base/studies/$id" >&2; exit 1; }
    sleep 0.2
  done
  [ "$status" = "done" ] || { echo "study $id stuck in '$status'" >&2; exit 1; }
  trials=$(wc -l <"$DIR/state/$id.trials.jsonl")
  [ "$trials" = "8" ] || { echo "$id journaled $trials trials, want 8" >&2; exit 1; }
done
echo "all studies done through the router"

# Fleet-wide causal tracing: the routed /spans tree must stitch the
# router's placement span, the daemon's scheduling spans, and the
# worker-side execution spans under a single trace ID.
tree=$(curl -sf "$base/studies/${ids[0]}/spans") ||
  { echo "router did not serve /spans for ${ids[0]}" >&2; exit 1; }
for name in place trial dispatch run objective journal; do
  echo "$tree" | grep -q "\"name\": *\"$name\"" ||
    { echo "span tree missing a '$name' span: $tree" >&2; exit 1; }
done
traces=$(echo "$tree" | grep -o '"trace": *"[0-9a-f]*"' | sort -u | wc -l)
[ "$traces" = "1" ] ||
  { echo "span tree carries $traces distinct trace IDs, want 1" >&2; exit 1; }
echo "$tree" | grep -q '"worker": *"shard-w' ||
  { echo "span tree lost worker attribution: $tree" >&2; exit 1; }
echo "span tree OK"

# Decision-analysis reads are per-study GETs, so the router must proxy
# them to the owning shard like any other study read.
report=$(curl -sf "$base/studies/${ids[0]}/analysis/traces") ||
  { echo "router did not proxy analysis/traces for ${ids[0]}" >&2; exit 1; }
echo "$report" | grep -q '"trials"' ||
  { echo "proxied trace report malformed: $report" >&2; exit 1; }
echo "analysis proxy OK"

# The rollup must label every shard's series and collide nothing.
metrics=$(curl -sf "$base/metrics")
for series in \
  'rldecide_router_backends{state="up"} 2' \
  'rldecide_studyd_studies{daemon="alpha"' \
  'rldecide_studyd_studies{daemon="beta"' \
  'rldecide_fleet_workers{daemon="alpha"} 2' \
  'rldecide_fleet_workers{daemon="beta"} 2' \
  'rldecide_router_placements{daemon='; do
  echo "$metrics" | grep -qF "$series" ||
    { echo "router /metrics missing: $series" >&2; echo "$metrics" >&2; exit 1; }
done
for family in 'rldecide_studyd_studies gauge' 'rldecide_fleet_dispatches_total counter'; do
  n=$(echo "$metrics" | grep -cF "# TYPE $family")
  [ "$n" = "1" ] || { echo "rollup repeats family '$family' $n times" >&2; exit 1; }
done
echo "metrics rollup OK"

# Failover: kill beta; the router's reconcile pass must re-home beta's
# studies onto alpha and keep serving them.
beta_id=""
for id in "${ids[@]}"; do
  case "$id" in beta-*) beta_id="$id" ;; esac
done
kill "$BETA_PID"
wait "$BETA_PID" 2>/dev/null || true
curl -sf -X POST "$base/rehome" -H "Authorization: Bearer $RTOKEN" >/dev/null

for _ in $(seq 1 50); do
  owner=$(curl -sf "$base/studies/$beta_id" |
    sed -n 's/.*"daemon": *"\([^"]*\)".*/\1/p' | head -1) || owner=""
  [ "$owner" = "alpha" ] && break
  sleep 0.2
done
[ "$owner" = "alpha" ] || { echo "study $beta_id not re-homed (owner '$owner')" >&2; exit 1; }
trials=$(curl -sf "$base/studies/$beta_id/trials" | grep -o '"id":' | wc -l)
[ "$trials" -ge 8 ] || { echo "re-homed study lost trials ($trials)" >&2; exit 1; }
echo "re-homed $beta_id onto alpha with $trials trials intact"
echo "shard smoke OK"
