package rldecide_test

import (
	"fmt"
	"runtime"
	"testing"

	"rldecide/internal/distrib"
	"rldecide/internal/experiments"
	"rldecide/internal/tensor"
)

// TestKernelParallelismCampaignDeterminism verifies the replay contract at
// the campaign level across kernel pool widths: the tensor worker pool
// partitions matrix products into fixed row chunks whose per-element
// accumulation order never changes, so a micro training run must produce
// bit-identical metrics with the pool at 1, 2, and GOMAXPROCS workers.
func TestKernelParallelismCampaignDeterminism(t *testing.T) {
	defer tensor.SetParallelism(0)
	scale := experiments.QuickScale()
	scale.TotalSteps = 400
	scale.SACStartSteps = 100
	scale.SACBatch = 16
	scale.EvalEpisodes = 2
	scale.RolloutSteps = 16
	// One PPO and one SAC configuration: the two training loops exercise
	// MulInto, MulTransAInto and MulTransBInto at every policy shape.
	sols := []experiments.Solution{
		{RKOrder: 5, Framework: distrib.StableBaselines, Algo: distrib.PPO, Nodes: 1, Cores: 2},
		{RKOrder: 3, Framework: distrib.RLlib, Algo: distrib.SAC, Nodes: 1, Cores: 2},
	}

	type fingerprint [4]string
	run := func(width int) []fingerprint {
		tensor.SetParallelism(width)
		out := make([]fingerprint, 0, len(sols))
		for _, sol := range sols {
			o, err := experiments.RunSolutionOnce(sol, scale, 7)
			if err != nil {
				t.Fatalf("width %d: %v", width, err)
			}
			out = append(out, fingerprint{
				fmt.Sprintf("%x", o.Reward),
				fmt.Sprintf("%x", o.TimeMinutes),
				fmt.Sprintf("%x", o.PowerKJ),
				fmt.Sprintf("%x", o.Utilization),
			})
		}
		return out
	}

	widths := []int{1, 2, runtime.GOMAXPROCS(0)}
	base := run(widths[0])
	for _, w := range widths[1:] {
		got := run(w)
		for i := range base {
			if got[i] != base[i] {
				t.Errorf("solution %d: pool width %d diverged from width 1:\n  got  %v\n  want %v",
					i, w, got[i], base[i])
			}
		}
	}
}
