// Command rldecide-analyze turns a study's recorded artifacts into
// decisions: trace span summaries with straggler flagging, trajectory
// attribution (which recorded episodes most influenced the final
// policy), and counterfactual rollouts (what a different action at a
// recorded decision point would have returned). It is the offline
// companion to studyd's /studies/{id}/analysis/{kind} endpoints and
// reads the same files the daemon writes.
//
// Usage:
//
//	rldecide-analyze traces          [-trace PATH | -url URL -study ID] [-k 3]
//	rldecide-analyze attribution     [-traj PATH  | -url URL -study ID] [-clusters 4]
//	rldecide-analyze counterfactuals [-traj PATH  | -url URL -study ID] [-horizon 20] [-stride 5] [-top 10]
//
// Offline mode reads artifacts straight from a state directory: -trace
// points at the daemon's trace stream (rotated segments are found
// automatically; a torn final line is tolerated like any journal), and
// -traj points at a study's <id>.trajectories.jsonl. With -url the tool
// instead fetches the report from a running daemon (or through
// rldecide-router, which proxies study reads to the owning shard).
//
// Every analyzer is deterministic: the same inputs produce byte-identical
// reports, so reports can be diffed across runs and cached safely.
package main

import (
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"

	"rldecide/internal/analysis"
	"rldecide/internal/journal"
	"rldecide/internal/rl"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	cmd, args := os.Args[1], os.Args[2:]
	var err error
	switch cmd {
	case "traces":
		err = runTraces(args)
	case "attribution":
		err = runAttribution(args)
	case "counterfactuals":
		err = runCounterfactuals(args)
	case "-h", "-help", "--help", "help":
		usage()
		return
	default:
		fmt.Fprintf(os.Stderr, "rldecide-analyze: unknown command %q\n\n", cmd)
		usage()
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "rldecide-analyze: %v\n", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprint(os.Stderr, `rldecide-analyze <command> [flags]

Commands:
  traces           span summaries + stragglers from a trace stream
  attribution      cluster-and-ablate influence of recorded trajectories
  counterfactuals  alternative-action rollouts from recorded decision points

Each command reads local artifacts (-trace / -traj) or fetches the
report from a daemon (-url http://HOST:PORT -study ID).
`)
}

func runTraces(args []string) error {
	fs := flag.NewFlagSet("traces", flag.ExitOnError)
	tracePath := fs.String("trace", "", "trace stream path (trace.jsonl; rotated segments found automatically)")
	study := fs.String("study", "", "restrict to one study's events (required with -url)")
	k := fs.Float64("k", 3, "straggler threshold: flag trials slower than k times the p50")
	url := fs.String("url", "", "fetch from a daemon instead: base URL (requires -study)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *url != "" {
		return fetch(*url, *study, studydKindTraces)
	}
	if *tracePath == "" {
		return fmt.Errorf("traces needs -trace PATH or -url URL -study ID")
	}
	events, err := analysis.ReadTrace(*tracePath)
	if err != nil && !errors.Is(err, journal.ErrTruncated) {
		return err
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "rldecide-analyze: note: %v (analyzing the valid prefix)\n", err)
	}
	rep := analysis.AnalyzeTrace(events, analysis.TraceOptions{Study: *study, StragglerK: *k})
	return emit(rep)
}

func runAttribution(args []string) error {
	fs := flag.NewFlagSet("attribution", flag.ExitOnError)
	traj := fs.String("traj", "", "trajectory journal path (<id>.trajectories.jsonl)")
	clusters := fs.Int("clusters", 4, "number of trajectory clusters")
	study := fs.String("study", "", "study ID (required with -url)")
	url := fs.String("url", "", "fetch from a daemon instead: base URL (requires -study)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *url != "" {
		return fetch(*url, *study, studydKindAttribution)
	}
	if *traj == "" {
		return fmt.Errorf("attribution needs -traj PATH or -url URL -study ID")
	}
	eps, err := loadEpisodes(*traj)
	if err != nil {
		return err
	}
	rep, err := analysis.AnalyzeAttribution(eps, analysis.AttributionOptions{Clusters: *clusters})
	if err != nil {
		return err
	}
	return emit(rep)
}

func runCounterfactuals(args []string) error {
	fs := flag.NewFlagSet("counterfactuals", flag.ExitOnError)
	traj := fs.String("traj", "", "trajectory journal path (<id>.trajectories.jsonl)")
	horizon := fs.Int("horizon", 20, "pilot-policy steps rolled out after each branch")
	stride := fs.Int("stride", 5, "probe every stride-th recorded step")
	top := fs.Int("top", 10, "decision points reported, most regretful first")
	study := fs.String("study", "", "study ID (required with -url)")
	url := fs.String("url", "", "fetch from a daemon instead: base URL (requires -study)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *url != "" {
		return fetch(*url, *study, studydKindCounterfactuals)
	}
	if *traj == "" {
		return fmt.Errorf("counterfactuals needs -traj PATH or -url URL -study ID")
	}
	eps, err := loadEpisodes(*traj)
	if err != nil {
		return err
	}
	rep, err := analysis.AnalyzeCounterfactuals(eps, analysis.CounterfactualOptions{
		Horizon: *horizon, Stride: *stride, TopN: *top,
	})
	if err != nil {
		return err
	}
	return emit(rep)
}

// The endpoint kind segments, mirroring studyd's route constants.
const (
	studydKindTraces          = "traces"
	studydKindAttribution     = "attribution"
	studydKindCounterfactuals = "counterfactuals"
)

// fetch retrieves a cached-or-computed report over the daemon API (or
// via the router, which proxies study GETs to the owning shard).
func fetch(base, study, kind string) error {
	if study == "" {
		return fmt.Errorf("-url needs -study ID")
	}
	resp, err := http.Get(base + "/studies/" + study + "/analysis/" + kind)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return err
	}
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("GET %s analysis: %s: %s", kind, resp.Status, body)
	}
	// Re-indent for terminal reading; the wire format is compact JSON.
	var v any
	if err := json.Unmarshal(body, &v); err != nil {
		return err
	}
	return emit(v)
}

// loadEpisodes reads a trajectory journal, tolerating a torn tail.
func loadEpisodes(path string) ([]rl.Episode, error) {
	eps, err := analysis.ReadEpisodes(path)
	if err != nil && !errors.Is(err, journal.ErrTruncated) {
		return nil, err
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "rldecide-analyze: note: %v (analyzing the valid prefix)\n", err)
	}
	return eps, nil
}

// emit writes a report as indented JSON on stdout.
func emit(v any) error {
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	return enc.Encode(v)
}
