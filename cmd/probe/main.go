package main

import (
	"fmt"
	"os"

	"rldecide/internal/experiments"
	"rldecide/internal/power"
)

func main() {
	// Wall-clock timing goes through the power package's Stopwatch seam:
	// commands never read time.Now directly, so all timing that could
	// reach trial output originates in the measurement layer.
	watch := power.StartStopwatch()
	rep, err := experiments.Campaign(experiments.DefaultScale(), 7, 1)
	if err != nil {
		fmt.Println("ERR", err)
		os.Exit(1)
	}
	fmt.Println("campaign wall:", watch.Elapsed())
	for _, o := range experiments.Outcomes(rep) {
		fmt.Printf("%-45s reward=%7.3f time=%6.1fmin power=%7.1fkJ util=%.2f\n", o.Solution, o.Reward, o.TimeMinutes, o.PowerKJ, o.Utilization)
	}
	for _, e := range experiments.CheckFindings(experiments.Outcomes(rep)) {
		fmt.Println("FINDING FAIL:", e)
	}
	cmps, _ := experiments.CompareFronts(rep)
	for _, c := range cmps {
		fmt.Printf("fig %d: measured=%v paper=%v missing=%v extra=%v\n", c.Figure.Number, c.Measured, c.Figure.PaperFront, c.Missing, c.Extra)
	}
}
