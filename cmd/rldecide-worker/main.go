// Command rldecide-worker is a remote trial executor for rldecide-serve:
// it registers with one or more study daemons running in fleet mode,
// receives trial dispatches ({spec, params, seed}) over HTTP, evaluates
// them against the process-local objective registry, and reports the
// results. Workers are stateless — every dispatch is self-contained — so
// any number of them can join, crash, restart and re-register
// mid-campaign without touching the daemons' journals.
//
// Usage:
//
//	rldecide-worker -serve http://daemon:8080[,http://daemon2:8081]
//	                [-addr 127.0.0.1:9090] [-advertise URL] [-name NAME]
//	                [-slots 2] [-token TOKEN] [-heartbeat 3s] [-drain 10s]
//	                [-debug-addr 127.0.0.1:6061]
//
// -serve takes a comma-separated list of daemon base URLs: in a sharded
// deployment behind rldecide-router one worker process can serve every
// shard, registering with (and heartbeating to) each daemon
// independently (see docs/sharding.md).
//
// The worker serves:
//
//	GET  /healthz  liveness + in-flight trial count
//	GET  /metrics  Prometheus text-format exposition
//	POST /run      evaluate one trial request
//
// -debug-addr adds a second listener with the pprof suite and the same
// /metrics exposition, kept off the dispatch address.
//
// -advertise is the URL the daemons dial back; it defaults to
// http://127.0.0.1:<port of -addr>, so set it explicitly when daemon and
// worker are on different hosts. SIGINT/SIGTERM deregisters from every
// daemon and drains in-flight trials before exiting; a kill -9 is also
// safe — the daemons time the worker out and requeue its trials.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"strings"
	"time"

	"rldecide/internal/daemon"
	"rldecide/internal/executor"
	"rldecide/internal/studyd"
)

func main() {
	var (
		serve     = flag.String("serve", "http://127.0.0.1:8080", "comma-separated base URLs of the rldecide-serve daemons")
		addr      = flag.String("addr", "127.0.0.1:9090", "listen address for trial dispatches")
		advertise = flag.String("advertise", "", "URL the daemons dial back (default http://127.0.0.1:<port>)")
		name      = flag.String("name", "", "worker name for registration and journal attribution (default worker-<pid>)")
		slots     = flag.Int("slots", 2, "concurrent-trial capacity")
		token     = flag.String("token", "", "bearer token shared with the daemons")
		heartbeat = flag.Duration("heartbeat", 3*time.Second, "heartbeat interval")
		drain     = flag.Duration("drain", 10*time.Second, "graceful-shutdown drain deadline")
		debugAddr = flag.String("debug-addr", "", "optional second listener for pprof + /metrics (e.g. 127.0.0.1:6061)")
	)
	flag.Parse()

	if *name == "" {
		*name = fmt.Sprintf("worker-%d", os.Getpid())
	}
	if *advertise == "" {
		hostport := *addr
		if strings.HasPrefix(hostport, ":") {
			hostport = "127.0.0.1" + hostport
		}
		*advertise = "http://" + hostport
	}
	var targets []string
	for _, base := range strings.Split(*serve, ",") {
		if base = strings.TrimSpace(base); base != "" {
			targets = append(targets, base)
		}
	}
	if len(targets) == 0 {
		fmt.Fprintln(os.Stderr, "rldecide-worker: -serve needs at least one daemon URL")
		os.Exit(1)
	}

	core := daemon.Core{Name: *name}
	core.StartDebug(*debugAddr)

	ws := &executor.Server{Name: *name, Eval: studyd.EvaluateRequest, Token: *token, Logf: log.Printf}
	ctx, stop := daemon.SignalContext()
	defer stop()
	runCtx, cancel := context.WithCancel(ctx)
	defer cancel()

	// One registrar per daemon: each registers, heartbeats, and
	// deregisters independently, so one shard restarting never disturbs
	// the worker's membership in the others.
	errs := make(chan error, len(targets))
	info := executor.WorkerInfo{Name: *name, URL: *advertise, Slots: *slots}
	for _, base := range targets {
		reg := &executor.Registrar{
			Daemon:   base,
			Info:     info,
			Token:    *token,
			Interval: *heartbeat,
			Logf:     log.Printf,
		}
		go func() { errs <- reg.Run(runCtx) }()
	}
	// A registrar failing while the worker is live (invalid registration)
	// is fatal; ctx-driven exits are clean. The watcher also waits out
	// every deregister before the process reports.
	watch := make(chan error, 1)
	go func() {
		var fatal error
		for i := 0; i < len(targets); i++ {
			if err := <-errs; err != nil && runCtx.Err() == nil && fatal == nil {
				fatal = err
				cancel()
			}
		}
		watch <- fatal
	}()

	log.Printf("rldecide-worker: %s serving on %s (%d slots), registering with %s",
		*name, *addr, *slots, strings.Join(targets, ", "))
	err := daemon.Run(runCtx, *addr, ws.Handler(), *drain, nil)
	cancel() // a dead listener must also stop the registrars
	if regErr := <-watch; err == nil {
		err = regErr
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "rldecide-worker: %v\n", err)
		os.Exit(1)
	}
}
