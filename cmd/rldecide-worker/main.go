// Command rldecide-worker is a remote trial executor for rldecide-serve:
// it registers with a study daemon running in fleet mode, receives trial
// dispatches ({spec, params, seed}) over HTTP, evaluates them against the
// process-local objective registry, and reports the results. Workers are
// stateless — every dispatch is self-contained — so any number of them
// can join, crash, restart and re-register mid-campaign without touching
// the daemon's journal.
//
// Usage:
//
//	rldecide-worker -serve http://daemon:8080 [-addr 127.0.0.1:9090]
//	                [-advertise URL] [-name NAME] [-slots 2]
//	                [-token TOKEN] [-heartbeat 3s] [-drain 10s]
//	                [-debug-addr 127.0.0.1:6061]
//
// The worker serves:
//
//	GET  /healthz  liveness + in-flight trial count
//	GET  /metrics  Prometheus text-format exposition
//	POST /run      evaluate one trial request
//
// -debug-addr adds a second listener with the pprof suite and the same
// /metrics exposition, kept off the dispatch address.
//
// -advertise is the URL the daemon dials back; it defaults to
// http://127.0.0.1:<port of -addr>, so set it explicitly when daemon and
// worker are on different hosts. SIGINT/SIGTERM deregisters from the
// daemon and drains in-flight trials before exiting; a kill -9 is also
// safe — the daemon times the worker out and requeues its trials.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"rldecide/internal/executor"
	"rldecide/internal/obs"
	"rldecide/internal/studyd"
)

func main() {
	var (
		serve     = flag.String("serve", "http://127.0.0.1:8080", "base URL of the rldecide-serve daemon")
		addr      = flag.String("addr", "127.0.0.1:9090", "listen address for trial dispatches")
		advertise = flag.String("advertise", "", "URL the daemon dials back (default http://127.0.0.1:<port>)")
		name      = flag.String("name", "", "worker name for registration and journal attribution (default worker-<pid>)")
		slots     = flag.Int("slots", 2, "concurrent-trial capacity")
		token     = flag.String("token", "", "bearer token shared with the daemon")
		heartbeat = flag.Duration("heartbeat", 3*time.Second, "heartbeat interval")
		drain     = flag.Duration("drain", 10*time.Second, "graceful-shutdown drain deadline")
		debugAddr = flag.String("debug-addr", "", "optional second listener for pprof + /metrics (e.g. 127.0.0.1:6061)")
	)
	flag.Parse()

	if *name == "" {
		*name = fmt.Sprintf("worker-%d", os.Getpid())
	}
	if *advertise == "" {
		hostport := *addr
		if strings.HasPrefix(hostport, ":") {
			hostport = "127.0.0.1" + hostport
		}
		*advertise = "http://" + hostport
	}

	ws := &executor.Server{Name: *name, Eval: studyd.EvaluateRequest, Token: *token, Logf: log.Printf}
	srv := &http.Server{Addr: *addr, Handler: ws.Handler()}
	if *debugAddr != "" {
		dbg := &http.Server{Addr: *debugAddr, Handler: obs.DebugMux()}
		go func() {
			if err := dbg.ListenAndServe(); err != nil && err != http.ErrServerClosed {
				log.Printf("rldecide-worker: debug listener: %v", err)
			}
		}()
		log.Printf("rldecide-worker: pprof + metrics on %s", *debugAddr)
	}
	errc := make(chan error, 1)
	go func() { errc <- srv.ListenAndServe() }()
	log.Printf("rldecide-worker: %s serving on %s (%d slots), registering with %s", *name, *addr, *slots, *serve)

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()
	reg := &executor.Registrar{
		Daemon:   *serve,
		Info:     executor.WorkerInfo{Name: *name, URL: *advertise, Slots: *slots},
		Token:    *token,
		Interval: *heartbeat,
		Logf:     log.Printf,
	}
	regc := make(chan error, 1)
	go func() { regc <- reg.Run(ctx) }()

	var err error
	select {
	case err = <-errc: // listener died
	case err = <-regc: // registration invalid or ctx cancelled
	case <-ctx.Done():
		err = <-regc // wait for the deregister to go out
	}
	shutdownCtx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	_ = srv.Shutdown(shutdownCtx)
	if err != nil {
		fmt.Fprintf(os.Stderr, "rldecide-worker: %v\n", err)
		os.Exit(1)
	}
}
