// Command rldecide-router fronts a fleet of rldecide-serve daemons as one
// control plane: it places study submissions across the daemons by
// consistent hash with bounded loads, proxies per-study reads (summaries,
// trials, fronts, SSE event streams) and cancels to the owning daemon,
// aggregates fleet-wide /studies, /workers, and /metrics views, and
// re-homes the studies of a dead daemon onto the survivors through the
// journal-ownership handoff (see docs/sharding.md).
//
// Usage:
//
//	rldecide-router -backends alpha=http://h1:8080,beta=http://h2:8080
//	                [-addr :8079] [-token TOKEN] [-router-token TOKEN]
//	                [-reconcile 5s] [-drain 10s]
//	                [-debug-addr 127.0.0.1:6062]
//
// Backend names must match each daemon's -name flag — that name is the
// shard identity in study IDs, ownership manifests, and metric labels.
// -token is the bearer the router itself presents to the daemons for the
// adopt calls it originates during re-homing (and must be accepted by all
// of them); client submissions pass the caller's own Authorization header
// through, so per-tenant tokens and quotas are enforced by the owning
// daemon. -router-token guards the router's own mutating endpoint
// (POST /rehome). A -reconcile interval > 0 runs the failure-detection +
// re-homing pass continuously; 0 leaves it to explicit POST /rehome.
//
// The router keeps no durable state: the study→daemon directory is a
// cache rebuilt from fleet-wide list calls, and ownership truth lives in
// the daemons' journal manifests.
//
// API:
//
//	GET  /healthz              router + per-backend liveness
//	GET  /metrics              fleet-wide rollup, daemon-labeled
//	GET  /studies              all studies across the fleet
//	POST /studies              place and forward a submission
//	GET  /studies/{id}         proxied to the owning daemon
//	GET  /studies/{id}/...     trials, front, SSE events — proxied
//	POST /studies/{id}/cancel  proxied to the owning daemon
//	GET  /workers              every daemon's worker registry
//	POST /rehome               probe the fleet, re-home stranded studies
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"rldecide/internal/daemon"
	"rldecide/internal/shard"
)

func main() {
	var (
		addr        = flag.String("addr", ":8079", "listen address")
		backends    = flag.String("backends", "", "serve daemons to route across: name=url,name2=url2,... (names must match each daemon's -name)")
		token       = flag.String("token", "", "bearer the router presents to the daemons for adopt calls it originates")
		routerToken = flag.String("router-token", "", "bearer token required on the router's own mutating endpoints (POST /rehome)")
		reconcile   = flag.Duration("reconcile", 5*time.Second, "failure-detection + re-homing interval (0 disables the background pass)")
		drain       = flag.Duration("drain", 10*time.Second, "graceful-shutdown drain deadline")
		debugAddr   = flag.String("debug-addr", "", "optional second listener for pprof + /metrics (e.g. 127.0.0.1:6062)")
	)
	flag.Parse()

	fleet, err := shard.ParseBackends(*backends)
	if err != nil {
		fmt.Fprintf(os.Stderr, "rldecide-router: %v\n", err)
		os.Exit(1)
	}
	rt, err := shard.New(shard.Config{
		Backends: fleet,
		Auth:     daemon.NewAuth(*routerToken, nil),
		Token:    *token,
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "rldecide-router: %v\n", err)
		os.Exit(1)
	}

	core := daemon.Core{Name: "router"}
	core.StartDebug(*debugAddr, rt.Registry())

	ctx, stop := daemon.SignalContext()
	defer stop()

	if *reconcile > 0 {
		go func() {
			ticker := time.NewTicker(*reconcile)
			defer ticker.Stop()
			for {
				select {
				case <-ctx.Done():
					return
				case <-ticker.C:
					rt.Reconcile(ctx)
				}
			}
		}()
	}

	if err := rt.ListenAndServe(ctx, *addr, *drain); err != nil {
		fmt.Fprintf(os.Stderr, "rldecide-router: %v\n", err)
		os.Exit(1)
	}
}
