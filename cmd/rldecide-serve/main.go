// Command rldecide-serve runs studyd, the resumable study-execution
// service: a daemon that accepts study submissions over HTTP, runs their
// trials on a shared bounded worker pool, journals every finished trial,
// and serves live Pareto rankings while campaigns execute.
//
// Usage:
//
//	rldecide-serve [-addr :8080] [-dir studyd-state] [-workers 4]
//	               [-exec local|fleet] [-token TOKEN] [-drain 30s]
//	               [-trace] [-debug-addr 127.0.0.1:6060]
//
// With -exec fleet the daemon executes no trials itself: it dispatches
// them to rldecide-worker daemons that register over HTTP and stay live
// via heartbeats (see docs/workerd.md). -token guards study submission and
// the worker endpoints with a static bearer token.
//
// -trace writes a per-trial span stream (trace.jsonl in the state
// directory) off the daemon's event bus. -debug-addr serves the pprof
// suite and a /metrics exposition on a second listener, kept separate so
// profiling endpoints never share the public address (see
// docs/observability.md).
//
// The state directory holds one <id>.spec.json and one <id>.trials.jsonl
// per study. Killing the daemon (SIGINT/SIGTERM, or a crash) never loses
// finished trials: on the next start it repairs torn journal tails,
// replays the journals, and resumes every unfinished campaign exactly
// where it stopped, re-executing only trials that never completed.
//
// API:
//
//	GET  /healthz              liveness + pool occupancy
//	GET  /metrics              Prometheus text-format exposition
//	GET  /studies/{id}/events  SSE stream of live study events
//	GET  /studies              all studies
//	POST /studies              submit a study spec (JSON)
//	GET  /studies/{id}         one study's summary
//	GET  /studies/{id}/trials  finished trials so far
//	GET  /studies/{id}/front   current Pareto ranking
//	POST /studies/{id}/cancel  stop a study (resumable later)
//	GET  /workers              live fleet members
//	POST /workers/register     add a worker to the fleet
//	POST /workers/heartbeat    refresh a worker
//	POST /workers/deregister   remove a worker
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"rldecide/internal/obs"
	"rldecide/internal/studyd"
)

func main() {
	var (
		addr      = flag.String("addr", ":8080", "listen address")
		dir       = flag.String("dir", "studyd-state", "state directory (specs + trial journals)")
		workers   = flag.Int("workers", 4, "local executor slots (max concurrent trials across studies)")
		exec      = flag.String("exec", studyd.ExecLocal, "trial executor: local (in-process) or fleet (remote workers)")
		token     = flag.String("token", "", "bearer token required on submissions and worker endpoints")
		drain     = flag.Duration("drain", 30*time.Second, "graceful-shutdown drain deadline")
		trace     = flag.Bool("trace", false, "write a per-trial trace stream (trace.jsonl) to the state directory")
		debugAddr = flag.String("debug-addr", "", "optional second listener for pprof + /metrics (e.g. 127.0.0.1:6060)")
	)
	flag.Parse()

	d, err := studyd.New(studyd.Config{Dir: *dir, Workers: *workers, Exec: *exec, Token: *token, Trace: *trace})
	if err != nil {
		fmt.Fprintf(os.Stderr, "rldecide-serve: %v\n", err)
		os.Exit(1)
	}
	d.Start()

	if *debugAddr != "" {
		dbg := &http.Server{Addr: *debugAddr, Handler: obs.DebugMux(d.Registry())}
		go func() {
			if err := dbg.ListenAndServe(); err != nil && err != http.ErrServerClosed {
				log.Printf("rldecide-serve: debug listener: %v", err)
			}
		}()
		log.Printf("rldecide-serve: pprof + metrics on %s", *debugAddr)
	}

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()
	if err := d.ListenAndServe(ctx, *addr, *drain); err != nil {
		fmt.Fprintf(os.Stderr, "rldecide-serve: %v\n", err)
		os.Exit(1)
	}
}
