// Command rldecide-serve runs studyd, the resumable study-execution
// service: a daemon that accepts study submissions over HTTP, runs their
// trials on a shared bounded worker pool, journals every finished trial,
// and serves live Pareto rankings while campaigns execute.
//
// Usage:
//
//	rldecide-serve [-addr :8080] [-dir studyd-state] [-workers 4]
//	               [-exec local|fleet] [-name NAME]
//	               [-token TOKEN] [-tokens tenant=token:slots,...]
//	               [-journal-max-bytes N] [-trace-max-bytes N]
//	               [-drain 30s] [-trace] [-spans] [-analysis]
//	               [-debug-addr 127.0.0.1:6060]
//
// With -exec fleet the daemon executes no trials itself: it dispatches
// them to rldecide-worker daemons that register over HTTP and stay live
// via heartbeats (see docs/workerd.md). -token guards study submission and
// the worker endpoints with a static bearer token; -tokens configures
// per-tenant bearer tokens with optional slot quotas instead (both may be
// set — the single token stays valid as the anonymous tenant).
//
// -name gives the daemon a shard identity for multi-daemon deployments
// behind rldecide-router: study IDs gain a <name>- prefix, journal
// ownership manifests are signed with it, and every metric series carries
// a daemon="<name>" label (see docs/sharding.md). Leave it empty for the
// single-daemon layout, which is unchanged.
//
// -trace writes a per-trial span stream (trace.jsonl in the state
// directory) off the daemon's event bus. -spans records per-trial causal
// span trees with deterministic IDs — propagated to workers via
// X-Rldecide-Trace headers and served at GET /studies/{id}/spans — so a
// trial's latency decomposes into queue wait, dispatch RTT, objective
// wall time, and journal append (see docs/observability.md). -analysis
// additionally journals
// the trajectories of locally executed trials (one
// <id>.trajectories.jsonl per study) for the decision-analysis endpoints
// and rldecide-analyze; like tracing, it never changes trial results
// (see docs/analysis.md). -journal-max-bytes and
// -trace-max-bytes cap journal/trace file sizes, rotating into numbered
// segments (0 = unbounded). -debug-addr serves the pprof suite and a
// /metrics exposition on a second listener, kept separate so profiling
// endpoints never share the public address (see docs/observability.md).
//
// The state directory holds one <id>.spec.json and one <id>.trials.jsonl
// per study (plus rotated segments and ownership manifests). Killing the
// daemon (SIGINT/SIGTERM, or a crash) never loses finished trials: on the
// next start it repairs torn journal tails, replays the journals, and
// resumes every unfinished campaign exactly where it stopped,
// re-executing only trials that never completed.
//
// API:
//
//	GET  /healthz              liveness + pool occupancy
//	GET  /metrics              Prometheus text-format exposition
//	GET  /studies/{id}/events  SSE stream of live study events
//	GET  /studies              all studies
//	POST /studies              submit a study spec (JSON)
//	GET  /studies/{id}         one study's summary
//	GET  /studies/{id}/trials  finished trials so far
//	GET  /studies/{id}/front   current Pareto ranking
//	GET  /studies/{id}/spans   per-trial causal span tree (see -spans)
//	GET  /studies/{id}/analysis/{kind}
//	                           decision-analysis report (traces |
//	                           attribution | counterfactuals)
//	POST /studies/{id}/cancel  stop a study (resumable later)
//	POST /studies/{id}/adopt   take ownership of a stranded study
//	GET  /workers              live fleet members
//	POST /workers/register     add a worker to the fleet
//	POST /workers/heartbeat    refresh a worker
//	POST /workers/deregister   remove a worker
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"rldecide/internal/daemon"
	"rldecide/internal/studyd"
)

func main() {
	var (
		addr       = flag.String("addr", ":8080", "listen address")
		dir        = flag.String("dir", "studyd-state", "state directory (specs + trial journals)")
		workers    = flag.Int("workers", 4, "local executor slots (max concurrent trials across studies)")
		exec       = flag.String("exec", studyd.ExecLocal, "trial executor: local (in-process) or fleet (remote workers)")
		name       = flag.String("name", "", "shard identity for multi-daemon deployments (prefixes study IDs, labels metrics)")
		token      = flag.String("token", "", "bearer token required on submissions and worker endpoints")
		tokens     = flag.String("tokens", "", "per-tenant bearer tokens: tenant=token[:slots],... (slots cap concurrent studies)")
		journalMax = flag.Int64("journal-max-bytes", 0, "rotate trial journals into segments past this size (0 = unbounded)")
		traceMax   = flag.Int64("trace-max-bytes", 0, "rotate the trace stream past this size (0 = unbounded)")
		drain      = flag.Duration("drain", 30*time.Second, "graceful-shutdown drain deadline")
		trace      = flag.Bool("trace", false, "write a per-trial trace stream (trace.jsonl) to the state directory")
		spans      = flag.Bool("spans", false, "record per-trial causal span trees (served at /studies/{id}/spans)")
		analyze    = flag.Bool("analysis", false, "journal trial trajectories for the decision-analysis endpoints")
		debugAddr  = flag.String("debug-addr", "", "optional second listener for pprof + /metrics (e.g. 127.0.0.1:6060)")
	)
	flag.Parse()

	tenants, err := daemon.ParseTenants(*tokens)
	if err != nil {
		fmt.Fprintf(os.Stderr, "rldecide-serve: %v\n", err)
		os.Exit(1)
	}
	d, err := studyd.New(studyd.Config{
		Dir:             *dir,
		Name:            *name,
		Workers:         *workers,
		Exec:            *exec,
		Token:           *token,
		Auth:            daemon.NewAuth(*token, tenants),
		Trace:           *trace,
		Spans:           *spans,
		Analysis:        *analyze,
		JournalMaxBytes: *journalMax,
		TraceMaxBytes:   *traceMax,
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "rldecide-serve: %v\n", err)
		os.Exit(1)
	}
	d.Start()

	core := daemon.Core{Name: *name}
	core.StartDebug(*debugAddr, d.Registry())

	ctx, stop := daemon.SignalContext()
	defer stop()
	if err := d.ListenAndServe(ctx, *addr, *drain); err != nil {
		fmt.Fprintf(os.Stderr, "rldecide-serve: %v\n", err)
		os.Exit(1)
	}
}
