// Command rldecide-serve runs studyd, the resumable study-execution
// service: a daemon that accepts study submissions over HTTP, runs their
// trials on a shared bounded worker pool, journals every finished trial,
// and serves live Pareto rankings while campaigns execute.
//
// Usage:
//
//	rldecide-serve [-addr :8080] [-dir studyd-state] [-workers 4] [-drain 30s]
//
// The state directory holds one <id>.spec.json and one <id>.trials.jsonl
// per study. Killing the daemon (SIGINT/SIGTERM, or a crash) never loses
// finished trials: on the next start it repairs torn journal tails,
// replays the journals, and resumes every unfinished campaign exactly
// where it stopped, re-executing only trials that never completed.
//
// API:
//
//	GET  /healthz              liveness + pool occupancy
//	GET  /studies              all studies
//	POST /studies              submit a study spec (JSON)
//	GET  /studies/{id}         one study's summary
//	GET  /studies/{id}/trials  finished trials so far
//	GET  /studies/{id}/front   current Pareto ranking
//	POST /studies/{id}/cancel  stop a study (resumable later)
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"
	"time"

	"rldecide/internal/studyd"
)

func main() {
	var (
		addr    = flag.String("addr", ":8080", "listen address")
		dir     = flag.String("dir", "studyd-state", "state directory (specs + trial journals)")
		workers = flag.Int("workers", 4, "shared worker-pool size (max concurrent trials across studies)")
		drain   = flag.Duration("drain", 30*time.Second, "graceful-shutdown drain deadline")
	)
	flag.Parse()

	d, err := studyd.New(studyd.Config{Dir: *dir, Workers: *workers})
	if err != nil {
		fmt.Fprintf(os.Stderr, "rldecide-serve: %v\n", err)
		os.Exit(1)
	}
	d.Start()

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()
	if err := d.ListenAndServe(ctx, *addr, *drain); err != nil {
		fmt.Fprintf(os.Stderr, "rldecide-serve: %v\n", err)
		os.Exit(1)
	}
}
