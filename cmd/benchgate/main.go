// benchgate records and gates benchmark results. It parses the text output
// of `go test -bench` (ns/op, B/op, allocs/op) and works in two modes:
//
//	benchgate record -out BENCH_4.json [-baseline pre.txt] < bench.txt
//	    Parse bench.txt into the "current" block of the JSON file. When
//	    -baseline names a second bench text file, parse it into the
//	    "baseline" block; otherwise an existing baseline in -out is kept,
//	    so re-recording after an optimization preserves the reference run.
//
//	benchgate check -golden BENCH_4.json [-tolerance 2.5] < bench.txt
//	    Gate a (possibly partial) benchmark run against the committed
//	    "current" block. Time gates are loose — a benchmark fails only if
//	    its ns/op exceeds tolerance × the recorded value, absorbing CI
//	    machine variance — but allocs/op gates are tight: zero-alloc
//	    records must stay exactly zero (the steady-state contract), and
//	    nonzero records get only 2%+1 slack for allocations amortized
//	    across benchmark iterations (map growth, buffer doubling).
//
// Multiple -count runs of the same benchmark are folded by taking the
// minimum ns/op (the least-noisy estimate) and the maximum allocs/op (the
// most conservative gate). A trailing -N GOMAXPROCS suffix on benchmark
// names is stripped so records from 1-core and N-core machines compare.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

// Result is one benchmark's folded measurement.
type Result struct {
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  float64 `json:"b_per_op"`
	AllocsPerOp float64 `json:"allocs_per_op"`
}

// File is the on-disk shape of BENCH_<n>.json.
type File struct {
	// Note describes how the numbers were produced (bench flags, machine).
	Note string `json:"note,omitempty"`
	// Baseline is the pre-optimization reference run.
	Baseline map[string]Result `json:"baseline,omitempty"`
	// Current is the run being shipped; `benchgate check` gates against it.
	Current map[string]Result `json:"current"`
}

var benchLine = regexp.MustCompile(`^(Benchmark\S+)\s+\d+\s+([\d.]+) ns/op(?:\s+([\d.]+) B/op)?(?:\s+([\d.]+) allocs/op)?`)

// parseBench folds `go test -bench` text output into per-benchmark results.
func parseBench(r io.Reader) (map[string]Result, error) {
	out := make(map[string]Result)
	data, err := io.ReadAll(r)
	if err != nil {
		return nil, err
	}
	for _, line := range strings.Split(string(data), "\n") {
		m := benchLine.FindStringSubmatch(line)
		if m == nil {
			continue
		}
		name := m[1]
		// Strip the -N GOMAXPROCS suffix (absent when GOMAXPROCS=1).
		if i := strings.LastIndex(name, "-"); i > 0 {
			if _, err := strconv.Atoi(name[i+1:]); err == nil {
				name = name[:i]
			}
		}
		res := Result{NsPerOp: atof(m[2]), BytesPerOp: atof(m[3]), AllocsPerOp: atof(m[4])}
		if prev, ok := out[name]; ok {
			if prev.NsPerOp < res.NsPerOp {
				res.NsPerOp = prev.NsPerOp
			}
			if prev.BytesPerOp > res.BytesPerOp {
				res.BytesPerOp = prev.BytesPerOp
			}
			if prev.AllocsPerOp > res.AllocsPerOp {
				res.AllocsPerOp = prev.AllocsPerOp
			}
		}
		out[name] = res
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("no benchmark lines found in input")
	}
	return out, nil
}

func atof(s string) float64 {
	if s == "" {
		return 0
	}
	v, _ := strconv.ParseFloat(s, 64)
	return v
}

func main() {
	if len(os.Args) < 2 {
		fail("usage: benchgate record|check [flags]")
	}
	switch os.Args[1] {
	case "record":
		record(os.Args[2:])
	case "check":
		check(os.Args[2:])
	default:
		fail("unknown mode %q: want record or check", os.Args[1])
	}
}

func record(args []string) {
	fs := flag.NewFlagSet("record", flag.ExitOnError)
	out := fs.String("out", "BENCH_4.json", "output JSON file")
	baseline := fs.String("baseline", "", "optional bench text file to record as the baseline block")
	note := fs.String("note", "", "free-form note describing the runs")
	_ = fs.Parse(args)

	cur, err := parseBench(os.Stdin)
	if err != nil {
		fail("record: parsing stdin: %v", err)
	}
	var f File
	if prev, err := os.ReadFile(*out); err == nil {
		_ = json.Unmarshal(prev, &f) // keep prior baseline/note if present
	}
	f.Current = cur
	if *note != "" {
		f.Note = *note
	}
	if *baseline != "" {
		bf, err := os.Open(*baseline)
		if err != nil {
			fail("record: %v", err)
		}
		base, err := parseBench(bf)
		_ = bf.Close()
		if err != nil {
			fail("record: parsing %s: %v", *baseline, err)
		}
		f.Baseline = base
	}
	buf, err := json.MarshalIndent(&f, "", "  ")
	if err != nil {
		fail("record: %v", err)
	}
	if err := os.WriteFile(*out, append(buf, '\n'), 0o644); err != nil {
		fail("record: %v", err)
	}
	fmt.Printf("recorded %d benchmarks to %s\n", len(cur), *out)
	if f.Baseline != nil {
		printDelta(f.Baseline, f.Current)
	}
}

// printDelta summarizes current vs baseline for benchmarks present in both.
func printDelta(base, cur map[string]Result) {
	names := make([]string, 0, len(cur))
	for name := range cur {
		if _, ok := base[name]; ok {
			names = append(names, name)
		}
	}
	sort.Strings(names)
	for _, name := range names {
		b, c := base[name], cur[name]
		fmt.Printf("  %-28s ns/op %12.0f -> %12.0f (%+6.1f%%)  allocs %8.0f -> %8.0f\n",
			name, b.NsPerOp, c.NsPerOp, 100*(c.NsPerOp-b.NsPerOp)/b.NsPerOp,
			b.AllocsPerOp, c.AllocsPerOp)
	}
}

func check(args []string) {
	fs := flag.NewFlagSet("check", flag.ExitOnError)
	golden := fs.String("golden", "BENCH_4.json", "committed benchmark record to gate against")
	tolerance := fs.Float64("tolerance", 2.5, "allowed ns/op slowdown factor vs the record")
	maxAllocs := fs.String("max-allocs", "", "comma-separated name=N absolute allocs/op ceilings (e.g. BenchmarkStudyOverhead=64); each named benchmark must appear in the input and stay at or under N regardless of the recorded value")
	_ = fs.Parse(args)

	ceilings, err := parseMaxAllocs(*maxAllocs)
	if err != nil {
		fail("check: %v", err)
	}

	data, err := os.ReadFile(*golden)
	if err != nil {
		fail("check: %v", err)
	}
	var f File
	if err := json.Unmarshal(data, &f); err != nil {
		fail("check: %s: %v", *golden, err)
	}
	got, err := parseBench(os.Stdin)
	if err != nil {
		fail("check: parsing stdin: %v", err)
	}

	names := make([]string, 0, len(got))
	for name := range got {
		names = append(names, name)
	}
	sort.Strings(names)
	failures := 0
	checked := 0
	for _, name := range names {
		want, ok := f.Current[name]
		if !ok {
			fmt.Printf("SKIP %s: not in %s\n", name, *golden)
			continue
		}
		checked++
		g := got[name]
		status := "ok  "
		if g.NsPerOp > want.NsPerOp**tolerance {
			status = "FAIL"
			failures++
			fmt.Printf("%s %s: ns/op %.0f exceeds %.1fx recorded %.0f\n", status, name, g.NsPerOp, *tolerance, want.NsPerOp)
			continue
		}
		// Zero-alloc records are the steady-state contract: exact. Nonzero
		// records get 2%+1 slack — allocations amortized over b.N (map
		// growth, slice doubling) shift by a count or two between runs.
		allocLimit := want.AllocsPerOp
		if want.AllocsPerOp > 0 {
			allocLimit = want.AllocsPerOp*1.02 + 1
		}
		if g.AllocsPerOp > allocLimit {
			status = "FAIL"
			failures++
			fmt.Printf("%s %s: allocs/op %.0f regressed from recorded %.0f\n", status, name, g.AllocsPerOp, want.AllocsPerOp)
			continue
		}
		fmt.Printf("%s %s: ns/op %.0f (recorded %.0f), allocs/op %.0f (recorded %.0f)\n",
			status, name, g.NsPerOp, want.NsPerOp, g.AllocsPerOp, want.AllocsPerOp)
	}
	if checked == 0 {
		fail("check: no benchmark in the input matches %s", *golden)
	}
	// Absolute ceilings are contract gates, independent of the recorded
	// values: a re-record can ratchet the golden numbers, but never past
	// an explicit -max-allocs budget.
	ceilNames := make([]string, 0, len(ceilings))
	for name := range ceilings {
		ceilNames = append(ceilNames, name)
	}
	sort.Strings(ceilNames)
	for _, name := range ceilNames {
		limit := ceilings[name]
		g, ok := got[name]
		if !ok {
			failures++
			fmt.Printf("FAIL %s: -max-allocs named it but it is not in the input\n", name)
			continue
		}
		if g.AllocsPerOp > limit {
			failures++
			fmt.Printf("FAIL %s: allocs/op %.0f exceeds ceiling %.0f\n", name, g.AllocsPerOp, limit)
			continue
		}
		fmt.Printf("ok   %s: allocs/op %.0f within ceiling %.0f\n", name, g.AllocsPerOp, limit)
	}
	if failures > 0 {
		fail("check: %d benchmark gates failed", failures)
	}
	fmt.Printf("check: %d benchmarks within tolerance\n", checked)
}

// parseMaxAllocs parses a comma-separated list of name=N ceilings.
func parseMaxAllocs(s string) (map[string]float64, error) {
	out := map[string]float64{}
	if s == "" {
		return out, nil
	}
	for _, part := range strings.Split(s, ",") {
		name, num, ok := strings.Cut(strings.TrimSpace(part), "=")
		if !ok || name == "" {
			return nil, fmt.Errorf("bad -max-allocs entry %q: want name=N", part)
		}
		v, err := strconv.ParseFloat(num, 64)
		if err != nil || v < 0 {
			return nil, fmt.Errorf("bad -max-allocs ceiling %q: %v", part, err)
		}
		out[name] = v
	}
	return out, nil
}

func fail(format string, args ...any) {
	fmt.Fprintf(os.Stderr, format+"\n", args...)
	os.Exit(1)
}
