// Command pareto is a standalone decision-analysis tool over CSV metric
// files: it extracts the (ε-)Pareto front, successive fronts, and the knee
// point of any two-or-more-objective dataset — the ranking stage of the
// methodology, usable on results produced outside this repository.
//
// Usage:
//
//	pareto -cols time,reward -dirs min,max [-eps 0.05] [-fronts] < data.csv
//
// The CSV must have a header row; -cols names the objective columns.
// The first column is treated as the row identifier if named "id",
// otherwise row numbers are used.
package main

import (
	"encoding/csv"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"

	"rldecide/internal/pareto"
)

func main() {
	var (
		cols   = flag.String("cols", "", "comma-separated objective column names (required)")
		dirs   = flag.String("dirs", "", "comma-separated directions per column: min|max (required)")
		eps    = flag.Float64("eps", 0, "ε tolerance for the front (relative)")
		fronts = flag.Bool("fronts", false, "print all successive fronts (non-dominated sort)")
		knee   = flag.Bool("knee", false, "print the knee point of the front")
	)
	flag.Parse()

	colNames := splitNonEmpty(*cols)
	dirNames := splitNonEmpty(*dirs)
	if len(colNames) < 2 || len(colNames) != len(dirNames) {
		fatalf("need matching -cols and -dirs with at least two objectives")
	}
	directions := make([]pareto.Direction, len(dirNames))
	for i, d := range dirNames {
		switch d {
		case "min":
			directions[i] = pareto.Minimize
		case "max":
			directions[i] = pareto.Maximize
		default:
			fatalf("direction %q must be min or max", d)
		}
	}

	ids, points, err := readCSV(os.Stdin, colNames)
	if err != nil {
		fatalf("read: %v", err)
	}
	if len(points) == 0 {
		fatalf("no data rows")
	}

	var front []int
	if *eps > 0 {
		front = pareto.EpsilonFront(points, directions, *eps)
	} else {
		front = pareto.Front(points, directions)
	}
	fmt.Printf("front (%d of %d):\n", len(front), len(points))
	for _, i := range front {
		fmt.Printf("  %s  %v\n", ids[i], points[i].Values)
	}

	if *fronts {
		for rank, f := range pareto.NonDominatedSort(points, directions) {
			labels := make([]string, len(f))
			for j, i := range f {
				labels[j] = ids[i]
			}
			fmt.Printf("front %d: %s\n", rank, strings.Join(labels, ", "))
		}
	}
	if *knee {
		if k := pareto.Knee(points, directions); k >= 0 {
			fmt.Printf("knee: %s %v\n", ids[k], points[k].Values)
		}
	}
}

func readCSV(r io.Reader, cols []string) ([]string, []pareto.Point, error) {
	cr := csv.NewReader(r)
	header, err := cr.Read()
	if err != nil {
		return nil, nil, fmt.Errorf("header: %w", err)
	}
	colIdx := make([]int, len(cols))
	for i, c := range cols {
		colIdx[i] = -1
		for j, h := range header {
			if strings.TrimSpace(h) == c {
				colIdx[i] = j
			}
		}
		if colIdx[i] == -1 {
			return nil, nil, fmt.Errorf("column %q not found (header: %v)", c, header)
		}
	}
	idIdx := -1
	if len(header) > 0 && strings.TrimSpace(header[0]) == "id" {
		idIdx = 0
	}

	var ids []string
	var points []pareto.Point
	row := 0
	for {
		rec, err := cr.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, nil, err
		}
		vals := make([]float64, len(colIdx))
		for i, j := range colIdx {
			v, err := strconv.ParseFloat(strings.TrimSpace(rec[j]), 64)
			if err != nil {
				return nil, nil, fmt.Errorf("row %d column %s: %w", row+1, cols[i], err)
			}
			vals[i] = v
		}
		id := fmt.Sprintf("row%d", row+1)
		if idIdx >= 0 {
			id = rec[idIdx]
		}
		ids = append(ids, id)
		points = append(points, pareto.Point{ID: row, Values: vals})
		row++
	}
	return ids, points, nil
}

func splitNonEmpty(s string) []string {
	var out []string
	for _, p := range strings.Split(s, ",") {
		if p = strings.TrimSpace(p); p != "" {
			out = append(out, p)
		}
	}
	return out
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "pareto: "+format+"\n", args...)
	os.Exit(1)
}
