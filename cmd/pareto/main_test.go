package main

import (
	"strings"
	"testing"
)

func TestReadCSV(t *testing.T) {
	in := `id,framework,time,reward
2,rllib,46,-0.66
11,tfagents,49,-0.58
16,stablebaselines,65,-0.45
`
	ids, pts, err := readCSV(strings.NewReader(in), []string{"time", "reward"})
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 3 || len(ids) != 3 {
		t.Fatalf("rows %d/%d", len(pts), len(ids))
	}
	if ids[0] != "2" || ids[2] != "16" {
		t.Fatalf("ids %v", ids)
	}
	if pts[1].Values[0] != 49 || pts[1].Values[1] != -0.58 {
		t.Fatalf("values %v", pts[1].Values)
	}
}

func TestReadCSVNoIDColumn(t *testing.T) {
	in := "a,b\n1,2\n3,4\n"
	ids, pts, err := readCSV(strings.NewReader(in), []string{"a", "b"})
	if err != nil {
		t.Fatal(err)
	}
	if ids[0] != "row1" || ids[1] != "row2" {
		t.Fatalf("fallback ids %v", ids)
	}
	if len(pts) != 2 {
		t.Fatal("rows lost")
	}
}

func TestReadCSVErrors(t *testing.T) {
	if _, _, err := readCSV(strings.NewReader("a,b\n1,2\n"), []string{"nope"}); err == nil {
		t.Error("missing column should error")
	}
	if _, _, err := readCSV(strings.NewReader("a,b\nx,2\n"), []string{"a", "b"}); err == nil {
		t.Error("non-numeric cell should error")
	}
	if _, _, err := readCSV(strings.NewReader(""), []string{"a"}); err == nil {
		t.Error("empty input should error")
	}
}

func TestSplitNonEmpty(t *testing.T) {
	got := splitNonEmpty(" a, ,b ,")
	if len(got) != 2 || got[0] != "a" || got[1] != "b" {
		t.Fatalf("split %v", got)
	}
	if splitNonEmpty("") != nil {
		t.Fatal("empty should be nil")
	}
}
