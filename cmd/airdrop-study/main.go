// Command airdrop-study runs the paper's experimental campaign on the
// airdrop package delivery simulator and regenerates its evaluation
// artifacts: Table I (18 configurations × {reward, computation time, power
// consumption}) and the three Pareto-front figures.
//
// Usage:
//
//	airdrop-study [flags]
//
//	-scale quick|default|paper   training budget per configuration
//	-mode  table|random          fixed Table-I set or fresh Random Search
//	-trials N                    trials in random mode (default 18)
//	-seed N                      study seed
//	-out DIR                     write table.md, campaign.csv/.json and
//	                             fig4/5/6.svg into DIR
//	-ascii                       print figures as terminal plots
//	-check                       evaluate the paper's narrative findings
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"time"

	"rldecide/internal/core"
	"rldecide/internal/experiments"
	"rldecide/internal/power"
	"rldecide/internal/report"
)

func main() {
	var (
		scaleName = flag.String("scale", "default", "training scale: quick|default|paper")
		mode      = flag.String("mode", "table", "campaign mode: table|random")
		trials    = flag.Int("trials", 18, "number of trials in random mode")
		seed      = flag.Uint64("seed", 7, "study seed")
		outDir    = flag.String("out", "", "directory for table/figure artifacts")
		ascii     = flag.Bool("ascii", false, "print ASCII figures to stdout")
		check     = flag.Bool("check", false, "check the paper's narrative findings")
		par       = flag.Int("parallel", 1, "concurrent trials")
		expMD     = flag.String("experiments-md", "", "write the paper-vs-measured record to FILE")
	)
	flag.Parse()

	var scale experiments.Scale
	switch *scaleName {
	case "quick":
		scale = experiments.QuickScale()
	case "default":
		scale = experiments.DefaultScale()
	case "paper":
		scale = experiments.PaperScale()
	default:
		fatalf("unknown scale %q (quick|default|paper)", *scaleName)
	}

	var study *core.Study
	n := *trials
	switch *mode {
	case "table":
		study = experiments.NewTableIStudy(scale, *seed, *par)
		n = len(experiments.TableI())
	case "random":
		study = experiments.NewRandomStudy(scale, *seed, *par)
	default:
		fatalf("unknown mode %q (table|random)", *mode)
	}

	fmt.Fprintf(os.Stderr, "running %d trials at %s scale (%d steps/config)...\n", n, *scaleName, scale.TotalSteps)
	// Wall-clock progress timing is display-only and flows through the
	// power package's Stopwatch seam — the campaign's computation-time
	// metric comes from the virtual cluster model, never from this clock.
	watch := power.StartStopwatch()
	rep, err := study.Run(n)
	if err != nil {
		fatalf("campaign failed: %v", err)
	}
	fmt.Fprintf(os.Stderr, "campaign finished in %s\n\n", watch.Elapsed().Round(time.Second))

	if err := report.Table(os.Stdout, rep); err != nil {
		fatalf("render table: %v", err)
	}
	fmt.Println()

	for _, fig := range experiments.Figures() {
		ids, err := experiments.MeasuredFront(rep, fig, fig.Eps)
		if err != nil {
			fatalf("front: %v", err)
		}
		fmt.Printf("%s\n  measured front: %v (paper: %v)\n", fig.Title, ids, fig.PaperFront)
		if *ascii {
			if err := experiments.RenderFigureASCII(os.Stdout, rep, fig); err != nil {
				fatalf("ascii figure: %v", err)
			}
		}
	}

	if *check {
		fmt.Println("\nnarrative findings:")
		errs := experiments.CheckFindings(experiments.Outcomes(rep))
		for _, e := range errs {
			fmt.Printf("  FAIL %v\n", e)
		}
		fmt.Printf("  %d/%d findings reproduced\n", len(experiments.Findings())-len(errs), len(experiments.Findings()))
	}

	if *outDir != "" {
		if err := writeArtifacts(*outDir, rep); err != nil {
			fatalf("write artifacts: %v", err)
		}
		fmt.Fprintf(os.Stderr, "artifacts written to %s\n", *outDir)
	}

	if *expMD != "" {
		f, err := os.Create(*expMD)
		if err != nil {
			fatalf("experiments-md: %v", err)
		}
		defer f.Close()
		if err := experiments.WriteExperimentsMD(f, rep, scale, *seed); err != nil {
			fatalf("experiments-md: %v", err)
		}
		fmt.Fprintf(os.Stderr, "paper-vs-measured record written to %s\n", *expMD)
	}
}

func writeArtifacts(dir string, rep *core.Report) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	write := func(name string, render func(f *os.File) error) error {
		f, err := os.Create(filepath.Join(dir, name))
		if err != nil {
			return err
		}
		defer f.Close()
		return render(f)
	}
	if err := write("table.md", func(f *os.File) error { return report.Table(f, rep) }); err != nil {
		return err
	}
	if err := write("campaign.csv", func(f *os.File) error { return report.CSV(f, rep) }); err != nil {
		return err
	}
	if err := write("campaign.json", func(f *os.File) error { return report.JSON(f, rep) }); err != nil {
		return err
	}
	for _, fig := range experiments.Figures() {
		fig := fig
		name := fmt.Sprintf("fig%d.svg", fig.Number)
		if err := write(name, func(f *os.File) error { return experiments.RenderFigure(f, rep, fig) }); err != nil {
			return err
		}
	}
	var specs []report.ScatterSpec
	for _, fig := range experiments.Figures() {
		specs = append(specs, report.ScatterSpec{
			X: fig.X, Y: fig.Y, Title: fig.Title, Eps: fig.Eps,
		})
	}
	// The HTML plots follow the paper's figures in excluding the
	// off-scale SAC points; the table keeps every trial.
	return write("report.html", func(f *os.File) error {
		return report.HTML(f, experiments.PPOOnly(rep), specs)
	})
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "airdrop-study: "+format+"\n", args...)
	os.Exit(1)
}
