// Command rldecide-lint runs the repo's determinism-and-safety static
// analysis suite (internal/lint) over the module and reports violations
// of the replay contract: global-RNG draws, stray wall-clock reads,
// order-sensitive map iteration, exact float comparisons, context-less
// blocking APIs, silently dropped errors, and — through the type-aware
// module rules — interprocedural clock/RNG taint reaching journal sinks,
// guarded-by lock discipline, goroutines that block forever without
// observing cancellation, and unauthenticated mutating HTTP routes.
//
// Usage:
//
//	rldecide-lint [-json] [-rules] [patterns...]
//
// Patterns are directories, optionally suffixed with /... for recursion;
// the default is ./... (the whole module, skipping testdata). The exit
// code is 0 when clean, 1 when findings are reported, 2 on usage or load
// errors. Output is deterministic and machine-independent: file paths
// are relative to the working directory (slash-separated) and findings
// are ordered by (file, line, col, rule), so two runs over the same tree
// are byte-identical — in text and in -json mode alike. Findings can be
// suppressed in source with
//
//	//lint:ignore <rule> <reason>
//
// on the offending line or the line above it; a directive that no longer
// suppresses anything is itself reported (stale-ignore). See docs/lint.md.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"rldecide/internal/lint"
)

func main() {
	jsonOut := flag.Bool("json", false, "emit findings as a JSON array")
	listRules := flag.Bool("rules", false, "list the rules and exit")
	flag.Parse()

	if *listRules {
		for _, r := range lint.AllRules() {
			fmt.Printf("%-15s %s\n", r.Name(), r.Doc())
		}
		return
	}

	root, err := os.Getwd()
	if err != nil {
		fatalf("getwd: %v", err)
	}
	pkgs, err := lint.Load(root, flag.Args())
	if err != nil {
		fatalf("%v", err)
	}
	findings := lint.NewRunner().Run(pkgs)
	// Run sorts by absolute path; relativizing preserves that order (all
	// paths share the root prefix) while making output machine-independent.
	lint.Relativize(findings, root)
	lint.SortFindings(findings)

	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if findings == nil {
			findings = []lint.Finding{}
		}
		if err := enc.Encode(findings); err != nil {
			fatalf("encode: %v", err)
		}
	} else {
		for _, f := range findings {
			fmt.Println(f)
		}
	}
	if len(findings) > 0 {
		if !*jsonOut {
			fmt.Fprintf(os.Stderr, "rldecide-lint: %d finding(s)\n", len(findings))
		}
		os.Exit(1)
	}
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "rldecide-lint: "+format+"\n", args...)
	os.Exit(2)
}
