// Command airdrop-sim flies episodes of the airdrop package delivery
// simulator with a scripted policy and reports landing statistics — a
// quick way to inspect the case study's physics and the effect of the
// Runge-Kutta order, wind and gusts.
//
// Usage:
//
//	airdrop-sim [flags]
//
//	-order N        Runge-Kutta order (3, 5 or 8)
//	-episodes N     episodes to fly
//	-policy NAME    autopilot|idle|random
//	-wind           enable steady wind
//	-gusts          enable gusts (implies -wind)
//	-seed N         simulation seed
//	-trace          print the first episode's trajectory
package main

import (
	"flag"
	"fmt"
	"math"
	"os"

	"rldecide/internal/airdrop"
	"rldecide/internal/mathx"
)

func main() {
	var (
		order    = flag.Int("order", 3, "Runge-Kutta order (3, 5, 8)")
		episodes = flag.Int("episodes", 50, "episodes to fly")
		policy   = flag.String("policy", "autopilot", "policy: autopilot|idle|random")
		wind     = flag.Bool("wind", false, "enable steady wind")
		gusts    = flag.Bool("gusts", false, "enable gusts (implies -wind)")
		seed     = flag.Uint64("seed", 1, "simulation seed")
		trace    = flag.Bool("trace", false, "print the first episode's trajectory")
	)
	flag.Parse()

	cfg := airdrop.NewConfig()
	cfg.RKOrder = *order
	cfg.Wind.Enabled = *wind || *gusts
	cfg.Wind.Gusts = *gusts
	env, err := airdrop.New(cfg, *seed)
	if err != nil {
		fmt.Fprintf(os.Stderr, "airdrop-sim: %v\n", err)
		os.Exit(1)
	}

	rng := mathx.NewRand(*seed + 1)
	ap := airdrop.Autopilot{}
	act := func(obs []float64) []float64 {
		switch *policy {
		case "idle":
			return []float64{1}
		case "random":
			return []float64{float64(rng.IntN(3))}
		default:
			return ap.Act(obs)
		}
	}

	var rewards, misses []float64
	for ep := 0; ep < *episodes; ep++ {
		obs := env.Reset()
		steps := 0
		for {
			res := env.Step(act(obs))
			obs = res.Obs
			steps++
			if *trace && ep == 0 {
				s := env.State()
				fmt.Printf("  t=%3d  pos=(%8.1f, %8.1f)  alt=%7.1f  err=%.2e\n",
					steps, s[0], s[1], s[2], env.ErrLevel())
			}
			if res.Done {
				rewards = append(rewards, res.Reward)
				misses = append(misses, env.Miss())
				break
			}
		}
	}

	fmt.Printf("policy=%s order=%d episodes=%d wind=%v gusts=%v\n", *policy, *order, *episodes, cfg.Wind.Enabled, cfg.Wind.Gusts)
	fmt.Printf("mean reward:  %8.3f ± %.3f\n", mathx.Mean(rewards), mathx.Std(rewards))
	fmt.Printf("mean miss:    %8.1f units (median %.1f, worst %.1f)\n",
		mathx.Mean(misses), mathx.Median(misses), mathx.Max(misses))
	fmt.Printf("step cost:    %8.4f s (modeled CPU, %d RK stages)\n", env.StepCost(), env.Method().Stages())
	within := 0
	for _, m := range misses {
		if m < 50 {
			within++
		}
	}
	fmt.Printf("within 50 u:  %7.1f%%\n", 100*float64(within)/math.Max(1, float64(len(misses))))
}
