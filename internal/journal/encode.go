package journal

import (
	"fmt"
	"math"
	"strconv"
	"unicode/utf8"

	"rldecide/internal/core"
	"rldecide/internal/param"
)

// The arena record encoder: appendRecord renders one trial as exactly the
// JSON line `json.Encoder.Encode(FromTrial(t))` used to produce, but into
// a caller-owned buffer with zero intermediate allocation — no Record, no
// params/values maps, no encoder state. Byte-compatibility is load-bearing,
// not cosmetic: shard re-homing and resume proofs compare journals
// byte-for-byte, so the encoder must reproduce encoding/json's exact
// string escaping (HTML-safe mode), float formatting, and map key order.
// TestAppendRecordMatchesJSON pins all three against encoding/json itself.
//
// Key order falls out of the representation: param.Assignment and
// core.Values are name-sorted slices, and encoding/json sorts map keys
// with the same plain string comparison, so walking the slices in order
// reproduces the map encoding.

const hexDigits = "0123456789abcdef"

// appendRecord appends t's journal line (including the trailing newline)
// to dst. The returned error mirrors encoding/json's refusal to encode
// NaN or infinite metric values; dst is unusable when err != nil.
func appendRecord(dst []byte, t core.Trial) ([]byte, error) {
	dst = append(dst, `{"id":`...)
	dst = strconv.AppendInt(dst, int64(t.ID), 10)
	dst = append(dst, `,"params":{`...)
	for i, b := range t.Params {
		if i > 0 {
			dst = append(dst, ',')
		}
		dst = appendJSONString(dst, b.Name)
		dst = append(dst, ':')
		dst = appendJSONValueString(dst, b.Value)
	}
	dst = append(dst, '}')
	if len(t.Values) > 0 {
		dst = append(dst, `,"values":{`...)
		for i, mv := range t.Values {
			if i > 0 {
				dst = append(dst, ',')
			}
			dst = appendJSONString(dst, mv.Name)
			dst = append(dst, ':')
			var err error
			dst, err = appendJSONFloat(dst, mv.V)
			if err != nil {
				return dst, err
			}
		}
		dst = append(dst, '}')
	}
	if t.Pruned {
		dst = append(dst, `,"pruned":true`...)
	}
	if t.Err != nil {
		if msg := t.Err.Error(); msg != "" {
			dst = append(dst, `,"error":`...)
			dst = appendJSONString(dst, msg)
		}
	}
	dst = append(dst, `,"seed":`...)
	dst = strconv.AppendUint(dst, t.Seed, 10)
	if t.Worker != "" {
		dst = append(dst, `,"worker":`...)
		dst = appendJSONString(dst, t.Worker)
	}
	if t.WallMs != 0 {
		dst = append(dst, `,"wall_ms":`...)
		var err error
		dst, err = appendJSONFloat(dst, t.WallMs)
		if err != nil {
			return dst, err
		}
	}
	dst = append(dst, '}', '\n')
	return dst, nil
}

// appendJSONValueString appends a param value rendered as Record.Params
// renders it (Value.String) and encoded as a JSON string. Int and float
// renderings are plain ASCII with nothing to escape, so they skip the
// escaper.
func appendJSONValueString(dst []byte, v param.Value) []byte {
	if v.Kind() == param.KindString {
		return appendJSONString(dst, v.Str())
	}
	dst = append(dst, '"')
	dst = v.AppendText(dst)
	return append(dst, '"')
}

// appendJSONFloat appends f exactly as encoding/json's floatEncoder does:
// shortest representation, 'f' format unless the magnitude calls for
// exponent form, with the exponent's leading zero trimmed ("e-09"→"e-9").
func appendJSONFloat(dst []byte, f float64) ([]byte, error) {
	if math.IsNaN(f) || math.IsInf(f, 0) {
		return dst, fmt.Errorf("journal: unsupported value: %s", strconv.FormatFloat(f, 'g', -1, 64))
	}
	abs := math.Abs(f)
	format := byte('f')
	//lint:ignore float-eq exact-zero test replicates encoding/json's floatEncoder branch
	if abs != 0 && (abs < 1e-6 || abs >= 1e21) {
		format = 'e'
	}
	dst = strconv.AppendFloat(dst, f, format, -1, 64)
	if format == 'e' {
		if n := len(dst); n >= 4 && dst[n-4] == 'e' && dst[n-3] == '-' && dst[n-2] == '0' {
			dst[n-2] = dst[n-1]
			dst = dst[:n-1]
		}
	}
	return dst, nil
}

// appendJSONString appends s as a JSON string with encoding/json's
// default (HTML-escaping) rules: control characters, quote, backslash,
// '<', '>', '&' and U+2028/U+2029 are escaped; invalid UTF-8 becomes
// U+FFFD.
func appendJSONString(dst []byte, s string) []byte {
	dst = append(dst, '"')
	start := 0
	for i := 0; i < len(s); {
		if b := s[i]; b < utf8.RuneSelf {
			if jsonSafe(b) {
				i++
				continue
			}
			dst = append(dst, s[start:i]...)
			switch b {
			case '\\', '"':
				dst = append(dst, '\\', b)
			case '\b':
				dst = append(dst, '\\', 'b')
			case '\f':
				dst = append(dst, '\\', 'f')
			case '\n':
				dst = append(dst, '\\', 'n')
			case '\r':
				dst = append(dst, '\\', 'r')
			case '\t':
				dst = append(dst, '\\', 't')
			default:
				dst = append(dst, '\\', 'u', '0', '0', hexDigits[b>>4], hexDigits[b&0xF])
			}
			i++
			start = i
			continue
		}
		c, size := utf8.DecodeRuneInString(s[i:])
		if c == utf8.RuneError && size == 1 {
			dst = append(dst, s[start:i]...)
			dst = append(dst, '\\', 'u', 'f', 'f', 'f', 'd')
			i += size
			start = i
			continue
		}
		if c == '\u2028' || c == '\u2029' {
			dst = append(dst, s[start:i]...)
			dst = append(dst, '\\', 'u', '2', '0', '2', hexDigits[c&0xF])
			i += size
			start = i
			continue
		}
		i += size
	}
	dst = append(dst, s[start:]...)
	return append(dst, '"')
}

// jsonSafe reports whether b needs no escaping under encoding/json's
// HTML-escaping string encoder.
func jsonSafe(b byte) bool {
	return b >= 0x20 && b != '"' && b != '\\' && b != '<' && b != '>' && b != '&'
}
