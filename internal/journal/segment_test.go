package journal

import (
	"os"
	"path/filepath"
	"testing"

	"rldecide/internal/core"
)

func segTrial(id int) core.Trial {
	return core.Trial{
		ID:     id,
		Values: core.ValuesFromMap(map[string]float64{"m": float64(id)}),
		Seed:   uint64(id),
	}
}

func appendN(t *testing.T, w *SegWriter, from, n int) {
	t.Helper()
	for i := from; i < from+n; i++ {
		if err := w.Append(segTrial(i)); err != nil {
			t.Fatal(err)
		}
	}
}

func assertIDs(t *testing.T, recs []Record, n int) {
	t.Helper()
	if len(recs) != n {
		t.Fatalf("read %d records, want %d", len(recs), n)
	}
	for i, r := range recs {
		if r.ID != i {
			t.Fatalf("record %d has ID %d: replay order broken", i, r.ID)
		}
	}
}

func TestSegWriterRotates(t *testing.T) {
	path := filepath.Join(t.TempDir(), "s0001.trials.jsonl")
	// One encoded record is ~45 bytes; cap at 100 so rotation triggers
	// every couple of appends.
	w, err := OpenSegmented(path, 100)
	if err != nil {
		t.Fatal(err)
	}
	appendN(t, w, 0, 20)
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	segs, err := SegmentFiles(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(segs) < 3 {
		t.Fatalf("expected several sealed segments, got %v", segs)
	}
	for _, seg := range segs {
		fi, err := os.Stat(seg)
		if err != nil {
			t.Fatal(err)
		}
		if fi.Size() == 0 {
			t.Fatalf("sealed segment %s is empty", seg)
		}
	}

	m, ok, err := LoadManifest(path)
	if err != nil || !ok {
		t.Fatalf("manifest missing after rotation: %v %v", ok, err)
	}
	if len(m.Segments) != len(segs) {
		t.Fatalf("manifest lists %d segments, disk has %d", len(m.Segments), len(segs))
	}

	recs, err := ReadSegmented(path)
	if err != nil {
		t.Fatal(err)
	}
	assertIDs(t, recs, 20)

	recs, err = RepairSegmented(path)
	if err != nil {
		t.Fatal(err)
	}
	assertIDs(t, recs, 20)
}

func TestSegWriterResume(t *testing.T) {
	path := filepath.Join(t.TempDir(), "s0001.trials.jsonl")
	w, err := OpenSegmented(path, 100)
	if err != nil {
		t.Fatal(err)
	}
	appendN(t, w, 0, 7)
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	// Reopen and keep appending: indexes continue, nothing is overwritten.
	w, err = OpenSegmented(path, 100)
	if err != nil {
		t.Fatal(err)
	}
	appendN(t, w, 7, 7)
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	recs, err := ReadSegmented(path)
	if err != nil {
		t.Fatal(err)
	}
	assertIDs(t, recs, 14)
}

// TestSegmentStrayAdoption pins the crash window between the rotation
// rename and the manifest rewrite: a sealed segment missing from the
// manifest must still be replayed, in index order.
func TestSegmentStrayAdoption(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "s0001.trials.jsonl")
	w, err := OpenSegmented(path, 100)
	if err != nil {
		t.Fatal(err)
	}
	appendN(t, w, 0, 12)
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	// Simulate the crash: drop the last sealed segment from the manifest.
	m, ok, err := LoadManifest(path)
	if err != nil || !ok || len(m.Segments) < 2 {
		t.Fatalf("need >=2 manifest segments: %v %v %v", m.Segments, ok, err)
	}
	m.Segments = m.Segments[:len(m.Segments)-1]
	if err := SaveManifest(path, m); err != nil {
		t.Fatal(err)
	}

	recs, err := ReadSegmented(path)
	if err != nil {
		t.Fatal(err)
	}
	assertIDs(t, recs, 12)
}

// TestSegmentedTornTail: only the active file tolerates (and repairs) a
// torn tail; sealed segments must be intact.
func TestSegmentedTornTail(t *testing.T) {
	path := filepath.Join(t.TempDir(), "s0001.trials.jsonl")
	w, err := OpenSegmented(path, 100)
	if err != nil {
		t.Fatal(err)
	}
	appendN(t, w, 0, 10)
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	before, err := ReadSegmented(path)
	if err != nil {
		t.Fatal(err)
	}

	// Tear the active file's tail.
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString(`{"id":99,"par`); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}

	recs, err := RepairSegmented(path)
	if err != nil {
		t.Fatal(err)
	}
	assertIDs(t, recs, len(before))

	// The repair rewrote the active file: a strict re-read is now clean.
	recs, err = ReadSegmented(path)
	if err != nil {
		t.Fatal(err)
	}
	assertIDs(t, recs, len(before))

	// A damaged sealed segment, by contrast, is corruption.
	segs, err := SegmentFiles(path)
	if err != nil || len(segs) == 0 {
		t.Fatalf("no segments: %v", err)
	}
	if err := os.WriteFile(segs[0], []byte(`{"id":0,"bro`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadSegmented(path); err == nil {
		t.Fatal("damaged sealed segment read cleanly")
	}
	if _, err := RepairSegmented(path); err == nil {
		t.Fatal("damaged sealed segment repaired silently")
	}
}

func TestSegWriterUnbounded(t *testing.T) {
	path := filepath.Join(t.TempDir(), "s0001.trials.jsonl")
	w, err := OpenSegmented(path, 0)
	if err != nil {
		t.Fatal(err)
	}
	appendN(t, w, 0, 50)
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	segs, err := SegmentFiles(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(segs) != 0 {
		t.Fatalf("maxBytes=0 must not rotate, got segments %v", segs)
	}
	recs, err := ReadSegmented(path)
	if err != nil {
		t.Fatal(err)
	}
	assertIDs(t, recs, 50)
}

func TestManifestRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "alpha-s0003.trials.jsonl")
	if _, ok, err := LoadManifest(path); ok || err != nil {
		t.Fatalf("missing manifest: ok=%v err=%v", ok, err)
	}
	in := Manifest{Study: "alpha-s0003", Daemon: "alpha", Generation: 2, Tenant: "acme",
		Segments: []string{"alpha-s0003.trials-1.jsonl"}}
	if err := SaveManifest(path, in); err != nil {
		t.Fatal(err)
	}
	got, ok, err := LoadManifest(path)
	if err != nil || !ok {
		t.Fatalf("load: %v %v", ok, err)
	}
	if got.Study != in.Study || got.Daemon != in.Daemon || got.Generation != 2 ||
		got.Tenant != in.Tenant || len(got.Segments) != 1 {
		t.Fatalf("manifest round trip: %+v", got)
	}
	want := filepath.Join(filepath.Dir(path), "alpha-s0003.trials.manifest.json")
	if ManifestPath(path) != want {
		t.Fatalf("ManifestPath %q, want %q", ManifestPath(path), want)
	}
}

func TestSegmentIndexParsing(t *testing.T) {
	base := "/x/s0001.trials.jsonl"
	cases := []struct {
		seg string
		n   int
		ok  bool
	}{
		{"/x/s0001.trials-1.jsonl", 1, true},
		{"/x/s0001.trials-12.jsonl", 12, true},
		{"/x/s0001.trials-x.jsonl", 0, false},
		{"/x/s0001.trials.jsonl", 0, false},
		{"/x/s0002.trials-1.jsonl", 0, false},
	}
	for _, c := range cases {
		n, ok := segmentIndex(base, c.seg)
		if n != c.n || ok != c.ok {
			t.Errorf("segmentIndex(%q) = %d,%v want %d,%v", c.seg, n, ok, c.n, c.ok)
		}
	}
	if p := segmentPath(base, 3); p != "/x/s0001.trials-3.jsonl" {
		t.Errorf("segmentPath = %q", p)
	}
}

// Guard against the daemon-prefixed study IDs of the sharded control
// plane colliding in segment globs: alpha-s0001's segments must not be
// adopted by a journal named alpha-s0001x or alpha-s000.
func TestSegmentGlobIsolation(t *testing.T) {
	dir := t.TempDir()
	mine := filepath.Join(dir, "alpha-s0001.trials.jsonl")
	w, err := OpenSegmented(mine, 50)
	if err != nil {
		t.Fatal(err)
	}
	appendN(t, w, 0, 6)
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	other := filepath.Join(dir, "alpha-s0002.trials.jsonl")
	w, err = OpenSegmented(other, 50)
	if err != nil {
		t.Fatal(err)
	}
	appendN(t, w, 0, 6)
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	segs, err := SegmentFiles(mine)
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range segs {
		if got := filepath.Base(s); got[:len("alpha-s0001")] != "alpha-s0001" {
			t.Fatalf("foreign segment adopted: %s", s)
		}
	}
	recs, err := ReadSegmented(mine)
	if err != nil {
		t.Fatal(err)
	}
	assertIDs(t, recs, 6)
}

func TestReadSegmentedMissing(t *testing.T) {
	path := filepath.Join(t.TempDir(), "nope.trials.jsonl")
	if _, err := ReadSegmented(path); !os.IsNotExist(err) {
		t.Fatalf("missing journal: %v", err)
	}
	recs, err := RepairSegmented(path)
	if err != nil || len(recs) != 0 {
		t.Fatalf("RepairSegmented on missing journal: %v %v", recs, err)
	}
}

func BenchmarkSegWriterAppend(b *testing.B) {
	path := filepath.Join(b.TempDir(), "bench.trials.jsonl")
	w, err := OpenSegmented(path, 1<<20)
	if err != nil {
		b.Fatal(err)
	}
	defer w.Close()
	tr := segTrial(1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr.ID = i
		if err := w.Append(tr); err != nil {
			b.Fatal(err)
		}
	}
}
