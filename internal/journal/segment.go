package journal

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"

	"rldecide/internal/core"
)

// Manifest is the sidecar that makes a journal shardable: it names the
// daemon that owns the study (with a generation counter bumped on every
// ownership handoff, so a re-homed study can tell a stale owner from the
// current one), the tenant that submitted it, and the sealed rotation
// segments in replay order. The manifest lives next to the journal as
// <base>.manifest.json and is rewritten atomically; a journal without a
// manifest is a legacy single-file journal owned by nobody.
type Manifest struct {
	Study      string   `json:"study"`
	Daemon     string   `json:"daemon,omitempty"`
	Generation int      `json:"generation"`
	Tenant     string   `json:"tenant,omitempty"`
	Segments   []string `json:"segments,omitempty"`
}

// ManifestPath returns the manifest sidecar path for a journal path
// (s0001.trials.jsonl -> s0001.trials.manifest.json).
func ManifestPath(journalPath string) string {
	return strings.TrimSuffix(journalPath, ".jsonl") + ".manifest.json"
}

// LoadManifest reads the manifest next to journalPath. A missing
// manifest is not an error: ok is false and the zero Manifest returns.
func LoadManifest(journalPath string) (m Manifest, ok bool, err error) {
	data, err := os.ReadFile(ManifestPath(journalPath))
	if errors.Is(err, os.ErrNotExist) {
		return Manifest{}, false, nil
	}
	if err != nil {
		return Manifest{}, false, err
	}
	if err := json.Unmarshal(data, &m); err != nil {
		return Manifest{}, false, fmt.Errorf("journal: manifest %s: %w", ManifestPath(journalPath), err)
	}
	return m, true, nil
}

// SaveManifest atomically rewrites the manifest next to journalPath
// (write to a temporary file in the same directory, then rename).
func SaveManifest(journalPath string, m Manifest) error {
	path := ManifestPath(journalPath)
	tmp, err := os.CreateTemp(filepath.Dir(path), ".manifest-*")
	if err != nil {
		return err
	}
	enc := json.NewEncoder(tmp)
	enc.SetIndent("", "  ")
	if err := enc.Encode(m); err != nil {
		_ = tmp.Close()
		_ = os.Remove(tmp.Name())
		return err
	}
	if err := tmp.Close(); err != nil {
		_ = os.Remove(tmp.Name())
		return err
	}
	return os.Rename(tmp.Name(), path)
}

// segmentPath names sealed segment n of a journal
// (s0001.trials.jsonl -> s0001.trials-3.jsonl).
func segmentPath(journalPath string, n int) string {
	return fmt.Sprintf("%s-%d.jsonl", strings.TrimSuffix(journalPath, ".jsonl"), n)
}

// segmentIndex parses the rotation index out of a segment path belonging
// to journalPath, or returns false for paths that are not its segments.
func segmentIndex(journalPath, seg string) (int, bool) {
	base := strings.TrimSuffix(journalPath, ".jsonl") + "-"
	rest, found := strings.CutPrefix(seg, base)
	if !found {
		return 0, false
	}
	rest, found = strings.CutSuffix(rest, ".jsonl")
	if !found {
		return 0, false
	}
	n, err := strconv.Atoi(rest)
	if err != nil || n < 0 {
		return 0, false
	}
	return n, true
}

// SegmentFiles lists the sealed segments of a journal in replay order:
// the union of the manifest's segment list and any stray segment files on
// disk (a crash between the rotation rename and the manifest rewrite
// leaves a sealed segment the manifest does not know about — the union
// adopts it rather than silently dropping its trials), sorted by
// rotation index.
func SegmentFiles(journalPath string) ([]string, error) {
	m, _, err := LoadManifest(journalPath)
	if err != nil {
		return nil, err
	}
	dir := filepath.Dir(journalPath)
	byIndex := map[int]string{}
	for _, name := range m.Segments {
		p := filepath.Join(dir, name)
		if n, ok := segmentIndex(journalPath, p); ok {
			byIndex[n] = p
		}
	}
	glob, err := filepath.Glob(strings.TrimSuffix(journalPath, ".jsonl") + "-*.jsonl")
	if err != nil {
		return nil, err
	}
	for _, p := range glob {
		if n, ok := segmentIndex(journalPath, p); ok {
			byIndex[n] = p
		}
	}
	indexes := make([]int, 0, len(byIndex))
	for n := range byIndex {
		indexes = append(indexes, n)
	}
	sort.Ints(indexes)
	out := make([]string, 0, len(indexes))
	for _, n := range indexes {
		out = append(out, byIndex[n])
	}
	return out, nil
}

// ReadSegmented loads every record of a possibly-rotated journal: sealed
// segments in rotation order, then the active file. Sealed segments must
// be intact (they were rotated on a record boundary, so any damage in
// them is corruption, not a crash tail); only the active file gets the
// torn-tail tolerance of Read, whose ErrTruncated passes through with the
// valid prefix.
func ReadSegmented(journalPath string) ([]Record, error) {
	segs, err := SegmentFiles(journalPath)
	if err != nil {
		return nil, err
	}
	var out []Record
	for _, seg := range segs {
		recs, err := ReadFile(seg)
		if err != nil {
			return nil, fmt.Errorf("journal: sealed segment %s: %w", seg, err)
		}
		out = append(out, recs...)
	}
	recs, err := ReadFile(journalPath)
	out = append(out, recs...)
	if errors.Is(err, os.ErrNotExist) && len(segs) > 0 {
		// Rotation just sealed the last segment; the next append recreates
		// the active file.
		return out, nil
	}
	return out, err
}

// RepairSegmented is RepairFile for rotated journals: sealed segments are
// read strictly, the active file's torn tail (if any) is trimmed in
// place, and the full record sequence returns. A journal with no files at
// all is empty, not an error.
func RepairSegmented(journalPath string) ([]Record, error) {
	segs, err := SegmentFiles(journalPath)
	if err != nil {
		return nil, err
	}
	var out []Record
	for _, seg := range segs {
		recs, err := ReadFile(seg)
		if err != nil {
			return nil, fmt.Errorf("journal: sealed segment %s: %w", seg, err)
		}
		out = append(out, recs...)
	}
	recs, err := RepairFile(journalPath)
	if err != nil {
		return nil, err
	}
	return append(out, recs...), nil
}

// countingWriter tracks bytes written through to the underlying writer so
// the segment writer knows when the active file crosses the rotation cap.
type countingWriter struct {
	w io.Writer
	n int64
}

func (c *countingWriter) Write(p []byte) (int, error) {
	n, err := c.w.Write(p)
	c.n += int64(n)
	return n, err
}

// SegWriter appends trial records to a size-capped, rotating journal.
// When the active file crosses maxBytes after an append, it is sealed:
// closed, renamed to the next <base>-<n>.jsonl segment, recorded in the
// manifest, and a fresh active file opened. Rotation happens on record
// boundaries only, so sealed segments always hold whole records and the
// torn-tail repair logic stays confined to the active file. The rename
// lands before the manifest rewrite — if the daemon dies between the two,
// SegmentFiles adopts the stray segment from disk.
type SegWriter struct {
	mu       sync.Mutex
	path     string
	maxBytes int64
	file     *os.File
	count    *countingWriter
	w        *Writer
}

// OpenSegmented opens (appending) the rotating journal at journalPath.
// maxBytes <= 0 disables rotation: the writer behaves like a plain
// single-file journal.
func OpenSegmented(journalPath string, maxBytes int64) (*SegWriter, error) {
	s := &SegWriter{path: journalPath, maxBytes: maxBytes}
	if err := s.open(); err != nil {
		return nil, err
	}
	return s, nil
}

// open opens the active file and rebuilds the byte count from its size.
// Caller holds s.mu (or is the constructor).
func (s *SegWriter) open() error {
	f, err := os.OpenFile(s.path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return err
	}
	fi, err := f.Stat()
	if err != nil {
		_ = f.Close()
		return err
	}
	s.file = f
	s.count = &countingWriter{w: f, n: fi.Size()}
	s.w = NewWriter(s.count)
	return nil
}

// Append writes one trial, rotating the active file afterwards if it
// crossed the size cap.
func (s *SegWriter) Append(t core.Trial) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := s.w.Append(t); err != nil {
		return err
	}
	if s.maxBytes > 0 && s.count.n >= s.maxBytes {
		if err := s.rotate(); err != nil {
			return fmt.Errorf("journal: rotate %s: %w", s.path, err)
		}
	}
	return nil
}

// rotate seals the active file as the next segment. Caller holds s.mu.
func (s *SegWriter) rotate() error {
	if err := s.file.Close(); err != nil {
		return err
	}
	segs, err := SegmentFiles(s.path)
	if err != nil {
		return err
	}
	next := 1
	for _, seg := range segs {
		if n, ok := segmentIndex(s.path, seg); ok && n >= next {
			next = n + 1
		}
	}
	sealed := segmentPath(s.path, next)
	if err := os.Rename(s.path, sealed); err != nil {
		return err
	}
	m, _, err := LoadManifest(s.path)
	if err != nil {
		return err
	}
	m.Segments = append(m.Segments, filepath.Base(sealed))
	if err := SaveManifest(s.path, m); err != nil {
		return err
	}
	return s.open()
}

// Observer returns a core.Study OnTrial hook journaling every finished
// trial, mirroring Writer.Observer.
func (s *SegWriter) Observer(errSink func(error)) func(core.Trial) {
	return func(t core.Trial) {
		if err := s.Append(t); err != nil && errSink != nil {
			errSink(err)
		}
	}
}

// Close flushes and closes the active file.
func (s *SegWriter) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	ferr := s.w.Flush()
	if err := s.file.Close(); err != nil && ferr == nil {
		ferr = err
	}
	return ferr
}
