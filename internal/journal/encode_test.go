package journal

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"math/rand/v2"
	"os"
	"testing"

	"rldecide/internal/core"
	"rldecide/internal/param"
)

// nastyStrings are the corner cases of encoding/json's string encoder:
// HTML-escaped punctuation, control characters, quotes and backslashes,
// invalid UTF-8 (becomes �), the JS line separators (U+2028/U+2029),
// multi-byte runes, and a literal replacement character.
var nastyStrings = []string{
	"",
	"plain",
	"<script>&amp;</script>",
	`quote " backslash \ slash /`,
	"ctrl\x00\x01\x1f\x7f",
	"tab\tnewline\ncr\rbs\bff\f",
	"bad\xff\xfeutf8",
	"truncated\xe2\x82",
	"line sep end",
	"日本語κόσμε",
	"literal � rune",
	"mix<& \xffあ\"\\\x02",
}

// nastyFloats cross the 'f'/'e' format boundaries of json's floatEncoder,
// including negative zero, subnormals, and the exponent-trim path.
var nastyFloats = []float64{
	0, math.Copysign(0, -1), 1, -1, 0.5, -0.25,
	1e-6, 9.999999e-7, 1e-7, 5e-324, math.SmallestNonzeroFloat64,
	1e21, 9.99e20, 1.2345e22, -3e300, math.MaxFloat64,
	math.Pi, 1.0 / 3.0, -123456.789, 201000, 46.5,
}

func randomNasty(rng *rand.Rand) string {
	s := nastyStrings[rng.IntN(len(nastyStrings))]
	if rng.IntN(3) == 0 {
		s += fmt.Sprintf("_%d", rng.IntN(1000))
	}
	return s
}

func randomValue(rng *rand.Rand) param.Value {
	switch rng.IntN(3) {
	case 0:
		return param.Int(int(rng.Int64()) - int(rng.Int64()))
	case 1:
		return param.Float(nastyFloats[rng.IntN(len(nastyFloats))] * (rng.Float64()*2 - 1))
	default:
		return param.Str(randomNasty(rng))
	}
}

func randomTrial(rng *rand.Rand) core.Trial {
	t := core.Trial{
		ID:   int(rng.Int64()>>32) - int(rng.Int64()>>33),
		Seed: rng.Uint64(),
	}
	for i, n := 0, rng.IntN(5); i < n; i++ {
		t.Params.Set(fmt.Sprintf("%s_%d", randomNasty(rng), i), randomValue(rng))
	}
	for i, n := 0, rng.IntN(4); i < n; i++ {
		t.Values.Set(fmt.Sprintf("m%d_%s", i, randomNasty(rng)), nastyFloats[rng.IntN(len(nastyFloats))])
	}
	if rng.IntN(3) == 0 {
		t.Pruned = true
	}
	switch rng.IntN(3) {
	case 0:
		t.Err = errors.New(randomNasty(rng))
	case 1:
		t.Err = errors.New("") // empty message: omitted, like omitempty
	}
	if rng.IntN(2) == 0 {
		t.Worker = randomNasty(rng)
	}
	if rng.IntN(2) == 0 {
		t.WallMs = nastyFloats[rng.IntN(len(nastyFloats))]
	}
	return t
}

// TestAppendRecordMatchesJSON pins the arena encoder's whole contract:
// for randomized trials covering every field combination and the string
// and float encoder corner cases, appendRecord must produce exactly the
// bytes json.Encoder.Encode(FromTrial(t)) produces. Shard re-homing and
// resume proofs compare journals byte-for-byte, so this is a correctness
// gate, not a style preference.
func TestAppendRecordMatchesJSON(t *testing.T) {
	rng := rand.New(rand.NewPCG(2026, 0x9))
	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	var scratch []byte
	for i := 0; i < 2000; i++ {
		tr := randomTrial(rng)
		buf.Reset()
		if err := enc.Encode(FromTrial(tr)); err != nil {
			t.Fatalf("trial %d: json encode: %v", i, err)
		}
		var err error
		scratch, err = appendRecord(scratch[:0], tr)
		if err != nil {
			t.Fatalf("trial %d: appendRecord: %v", i, err)
		}
		if !bytes.Equal(scratch, buf.Bytes()) {
			t.Fatalf("trial %d: byte mismatch\n json: %q\narena: %q\ntrial: %+v", i, buf.Bytes(), scratch, tr)
		}
	}
}

// TestAppendRecordRejectsNonFinite mirrors encoding/json: NaN or infinite
// metric values refuse to encode, and a refused Append leaves the journal
// untouched.
func TestAppendRecordRejectsNonFinite(t *testing.T) {
	for _, bad := range []float64{math.NaN(), math.Inf(1), math.Inf(-1)} {
		var tr core.Trial
		tr.Values.Set("m", bad)
		if _, err := appendRecord(nil, tr); err == nil {
			t.Fatalf("appendRecord accepted %v", bad)
		}
		var sink bytes.Buffer
		w := NewWriter(&sink)
		if err := w.Append(tr); err == nil {
			t.Fatalf("Append accepted %v", bad)
		}
		_ = w.Flush()
		if sink.Len() != 0 {
			t.Fatalf("refused append still wrote %q", sink.Bytes())
		}
	}
}

// TestAppendRecordGolden replays the checked-in journal fixture through
// ToTrial and back through the arena encoder: the concatenated re-encoding
// must reproduce the fixture file byte-for-byte. The fixture itself is
// cross-checked against json.Encoder so the golden bytes stay anchored to
// encoding/json, not to the encoder under test.
func TestAppendRecordGolden(t *testing.T) {
	const path = "testdata/golden.jsonl"
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	records, err := ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	space := param.MustSpace(
		param.NewIntSet("order", 3, 5, 8),
		param.NewCategorical("fw", "a", "b", "<odd name&>"),
		param.NewFloatRange("lr", 0, 1),
	)
	var jsonOut bytes.Buffer
	enc := json.NewEncoder(&jsonOut)
	var arenaOut []byte
	for _, rec := range records {
		tr, err := rec.ToTrial(space)
		if err != nil {
			t.Fatal(err)
		}
		if err := enc.Encode(FromTrial(tr)); err != nil {
			t.Fatal(err)
		}
		arenaOut, err = appendRecord(arenaOut, tr)
		if err != nil {
			t.Fatal(err)
		}
	}
	if !bytes.Equal(jsonOut.Bytes(), want) {
		t.Fatalf("fixture is stale vs encoding/json:\n got: %q\nwant: %q", jsonOut.Bytes(), want)
	}
	if !bytes.Equal(arenaOut, want) {
		t.Fatalf("arena encoder diverges from golden fixture:\n got: %q\nwant: %q", arenaOut, want)
	}
}

// TestWriterAppendAllocs gates the whole point of the arena encoder: a
// steady-state Append (scratch already grown) performs at most one
// allocation. This is what takes BenchmarkStudyOverhead's journal cost
// off the allocator entirely.
func TestWriterAppendAllocs(t *testing.T) {
	var tr core.Trial
	tr.ID = 41
	tr.Seed = 99
	tr.Params.Set("lr", param.Float(0.03125))
	tr.Params.Set("fw", param.Str("a"))
	tr.Values.Set("reward", 1.5)
	tr.Values.Set("time_min", 46)
	tr.Worker = "w1"
	tr.WallMs = 12.5
	w := NewWriter(discardWriter{})
	// Warm up: first call grows the scratch buffer.
	if err := w.Append(tr); err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(100, func() {
		if err := w.Append(tr); err != nil {
			t.Fatal(err)
		}
	})
	if allocs > 1 {
		t.Fatalf("steady-state Append allocates %.1f times per record, want <= 1", allocs)
	}
}

type discardWriter struct{}

func (discardWriter) Write(p []byte) (int, error) { return len(p), nil }
