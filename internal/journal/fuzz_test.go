package journal

import (
	"bytes"
	"encoding/json"
	"errors"
	"os"
	"path/filepath"
	"reflect"
	"testing"
)

// FuzzRead feeds arbitrary bytes to the journal line parser. Invariants:
// Read never panics, a nil/ErrTruncated result yields records that
// round-trip through re-encoding, and a truncated read is a prefix of
// what a strict re-read of the re-encoded records returns.
func FuzzRead(f *testing.F) {
	f.Add([]byte(""))
	f.Add([]byte("\n\n\n"))
	f.Add([]byte(`{"id":1,"params":{"lr":"0.01"},"values":{"reward":1.5},"seed":42}` + "\n"))
	f.Add([]byte(`{"id":1,"seed":1}` + "\n" + `{"id":2,"seed":2}` + "\n"))
	f.Add([]byte(`{"id":1,"seed":1}` + "\n" + `{"id":2,"se`)) // torn tail
	f.Add([]byte(`not json at all` + "\n" + `{"id":3,"seed":3}` + "\n"))
	f.Add([]byte(`{"id":-5,"error":"boom","pruned":true,"seed":0}` + "\n"))
	f.Add([]byte(`{"id":7,"params":{"x":"0.5"},"values":{"f":0.25},"seed":11,"worker":"w1"}` + "\n"))
	f.Add([]byte(`{"id":8,"seed":12,"worker":"w2"}` + "\n" + `{"id":9,"seed":13,"worke`)) // torn tail on the worker field
	f.Add([]byte(`{"id":10,"seed":14,"worker":"w1","wall_ms":12.5}` + "\n"))
	f.Add([]byte(`{"id":11,"seed":15,"wall_ms":0.25}` + "\n" + `{"id":12,"seed":16,"wall_`)) // torn tail on the wall_ms field
	f.Fuzz(func(t *testing.T, data []byte) {
		records, err := Read(bytes.NewReader(data))
		if err != nil && !errors.Is(err, ErrTruncated) {
			// Corrupt input is rejected; nothing more to check.
			return
		}
		// Accepted records must round-trip bit-for-bit: re-encode and
		// strict-read them back.
		var buf bytes.Buffer
		enc := json.NewEncoder(&buf)
		for _, rec := range records {
			if encErr := enc.Encode(rec); encErr != nil {
				t.Fatalf("re-encode accepted record %+v: %v", rec, encErr)
			}
		}
		again, err2 := Read(&buf)
		if err2 != nil {
			t.Fatalf("strict re-read of re-encoded records failed: %v", err2)
		}
		if len(again) != len(records) {
			t.Fatalf("round trip changed record count: %d -> %d", len(records), len(again))
		}
		for i := range records {
			if !reflect.DeepEqual(normalize(records[i]), normalize(again[i])) {
				t.Fatalf("record %d changed in round trip:\n  %+v\n  %+v", i, records[i], again[i])
			}
		}
	})
}

// normalize erases the nil-vs-empty map distinction, which omitempty
// intentionally collapses on re-encode.
func normalize(r Record) Record {
	if len(r.Params) == 0 {
		r.Params = nil
	}
	if len(r.Values) == 0 {
		r.Values = nil
	}
	return r
}

// FuzzRepairFile writes arbitrary bytes as a journal file and repairs it.
// Invariants: RepairFile never panics, a successful repair leaves a file
// that strict ReadFile accepts with no truncation, and repair is
// idempotent.
func FuzzRepairFile(f *testing.F) {
	f.Add([]byte(""))
	f.Add([]byte(`{"id":1,"seed":1}` + "\n"))
	f.Add([]byte(`{"id":1,"seed":1}` + "\n" + `{"id":2,"seed":2}`)) // missing newline
	f.Add([]byte(`{"id":1,"seed":1}` + "\n" + `{"tor`))
	f.Add([]byte(`{"id":1,"seed":1,"worker":"w1"}` + "\n" + `{"id":2,"seed":2,"worker":"w`))   // torn worker attribution
	f.Add([]byte(`{"id":1,"seed":1,"wall_ms":3.5}` + "\n" + `{"id":2,"seed":2,"wall_ms":1.2`)) // torn wall-clock field
	f.Add([]byte("\x00\x01\x02"))
	f.Fuzz(func(t *testing.T, data []byte) {
		path := filepath.Join(t.TempDir(), "journal.jsonl")
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Fatal(err)
		}
		records, err := RepairFile(path)
		if err != nil {
			// Mid-file corruption: the file must be left untouched.
			after, rerr := os.ReadFile(path)
			if rerr != nil {
				t.Fatalf("file vanished after failed repair: %v", rerr)
			}
			if !bytes.Equal(after, data) {
				t.Fatalf("failed repair modified the file")
			}
			return
		}
		// A successful repair leaves a strict-readable file.
		again, err2 := ReadFile(path)
		if err2 != nil {
			t.Fatalf("post-repair strict read failed: %v", err2)
		}
		if !reflect.DeepEqual(records, again) {
			t.Fatalf("post-repair read mismatch:\n  %+v\n  %+v", records, again)
		}
		// And repairing again is a no-op.
		again2, err3 := RepairFile(path)
		if err3 != nil || !reflect.DeepEqual(records, again2) {
			t.Fatalf("repair not idempotent: %v\n  %+v\n  %+v", err3, records, again2)
		}
	})
}
