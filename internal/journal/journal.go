// Package journal persists study trials as JSON Lines so long campaigns
// survive interruption and results can be re-ranked or re-plotted without
// re-running the training. A journal file is append-only: one record per
// finished trial.
package journal

import (
	"bufio"
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sync"

	"rldecide/internal/core"
	"rldecide/internal/obs"
	"rldecide/internal/param"
)

// Journal I/O instruments (process-wide; exposed at GET /metrics). Pure
// atomic counters off the result path: they never influence what gets
// written.
var (
	metricAppends = obs.Default.NewCounter("rldecide_journal_appends_total",
		"Trial records appended across all journals.")
	metricFlushes = obs.Default.NewCounter("rldecide_journal_flushes_total",
		"Journal buffer flushes to the underlying writer.")
	metricAppendErrors = obs.Default.NewCounter("rldecide_journal_append_errors_total",
		"Failed journal appends (encode or flush errors).")
)

// Record is the on-disk form of one trial. Worker attributes the trial to
// the executor that evaluated it; WallMs is the trial's measured
// wall-clock compute time in milliseconds. Both are informational:
// journals written before either field existed decode with them zero, and
// replay/ranking/determinism fingerprints ignore them, so old campaigns
// resume unchanged and fleet journals compare byte-identical modulo these
// fields.
type Record struct {
	ID     int                `json:"id"`
	Params map[string]string  `json:"params"`
	Values map[string]float64 `json:"values,omitempty"`
	Pruned bool               `json:"pruned,omitempty"`
	Error  string             `json:"error,omitempty"`
	Seed   uint64             `json:"seed"`
	Worker string             `json:"worker,omitempty"`
	WallMs float64            `json:"wall_ms,omitempty"`
}

// FromTrial converts a finished trial.
func FromTrial(t core.Trial) Record {
	r := Record{
		ID:     t.ID,
		Params: map[string]string{},
		Values: t.Values.Map(),
		Pruned: t.Pruned,
		Seed:   t.Seed,
		Worker: t.Worker,
		WallMs: t.WallMs,
	}
	for _, b := range t.Params {
		r.Params[b.Name] = b.Value.String()
	}
	if t.Err != nil {
		r.Error = t.Err.Error()
	}
	return r
}

// ToTrial converts a record back, resolving parameter values against the
// space (so ints stay ints and categoricals stay strings).
func (r Record) ToTrial(space *param.Space) (core.Trial, error) {
	t := core.Trial{
		ID:     r.ID,
		Params: make(param.Assignment, 0, len(r.Params)),
		Values: core.ValuesFromMap(r.Values),
		Pruned: r.Pruned,
		Seed:   r.Seed,
		Worker: r.Worker,
		WallMs: r.WallMs,
	}
	if r.Error != "" {
		t.Err = fmt.Errorf("%s", r.Error)
	}
	for name, raw := range r.Params {
		p, ok := space.Get(name)
		if !ok {
			return t, fmt.Errorf("journal: unknown parameter %q", name)
		}
		v, err := parseValue(p, raw)
		if err != nil {
			return t, err
		}
		t.Params.Set(name, v)
	}
	return t, nil
}

// parseValue resolves raw against p's enumeration first (exact match of
// the canonical rendering), falling back to numeric parsing for continuous
// parameters.
func parseValue(p param.Param, raw string) (param.Value, error) {
	for _, v := range p.Enumerate() {
		if v.String() == raw {
			return v, nil
		}
	}
	var f float64
	if _, err := fmt.Sscanf(raw, "%g", &f); err == nil {
		v := param.Float(f)
		if p.Contains(v) {
			return v, nil
		}
		iv := param.Int(int(f))
		if p.Contains(iv) {
			return iv, nil
		}
	}
	sv := param.Str(raw)
	if p.Contains(sv) {
		return sv, nil
	}
	return param.Value{}, fmt.Errorf("journal: cannot parse %q for parameter %q", raw, p.Name())
}

// Writer appends trial records to an io.Writer (typically a file), safe
// for concurrent use by parallel studies. Each record is rendered into a
// writer-owned scratch buffer by the arena encoder (appendRecord —
// byte-identical to what encoding/json produced for FromTrial, see
// encode.go) and handed to the underlying writer as one whole line, so a
// crash can tear at most the final record's tail mid-flush; RepairFile
// trims exactly that on resume. Steady-state appends allocate nothing:
// the scratch buffer is reused across records.
type Writer struct {
	mu      sync.Mutex
	buf     *bufio.Writer
	scratch []byte
}

// NewWriter returns a Writer over w.
func NewWriter(w io.Writer) *Writer {
	return &Writer{buf: bufio.NewWriter(w)}
}

// Append writes one trial and flushes it to the underlying writer.
func (w *Writer) Append(t core.Trial) error {
	w.mu.Lock()
	defer w.mu.Unlock()
	line, err := appendRecord(w.scratch[:0], t)
	if err != nil {
		// Nothing was staged: like the JSON encoder, an unencodable trial
		// (NaN/Inf metric) leaves the journal untouched.
		metricAppendErrors.Inc()
		return err
	}
	w.scratch = line
	if _, err := w.buf.Write(line); err != nil {
		metricAppendErrors.Inc()
		return err
	}
	// Flush on the record boundary: everything before this record is
	// already durable, and a crash during this flush tears at most the
	// final line.
	if err := w.buf.Flush(); err != nil {
		metricAppendErrors.Inc()
		return err
	}
	metricAppends.Inc()
	metricFlushes.Inc()
	return nil
}

// Flush forces any buffered bytes through to the underlying writer. Append
// flushes on every record, so this is only needed defensively (e.g. before
// closing the underlying file after an encode error).
func (w *Writer) Flush() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if err := w.buf.Flush(); err != nil {
		return err
	}
	metricFlushes.Inc()
	return nil
}

// Observer returns a core.Study OnTrial hook that journals every finished
// trial. Write errors are reported through errSink (losing records
// silently would defeat the journal's purpose); pass nil to ignore them.
func (w *Writer) Observer(errSink func(error)) func(core.Trial) {
	return func(t core.Trial) {
		if err := w.Append(t); err != nil && errSink != nil {
			errSink(err)
		}
	}
}

// ErrTruncated reports that the journal's final record was cut short —
// the signature of a crash in the middle of an append. Read returns it
// alongside the valid record prefix, so resumable consumers can keep the
// intact records (errors.Is(err, ErrTruncated)) while strict consumers
// still see an error.
var ErrTruncated = errors.New("journal: truncated final record")

// Read loads all records from r. A malformed final line yields the valid
// prefix plus an error wrapping ErrTruncated; malformed lines followed by
// further records are corruption and fail the whole read.
func Read(r io.Reader) ([]Record, error) {
	var out []Record
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 4*1024*1024)
	line := 0
	var badErr error
	badLine := 0
	for sc.Scan() {
		line++
		if len(bytes.TrimSpace(sc.Bytes())) == 0 {
			continue
		}
		if badErr != nil {
			// The malformed line was not the last one: mid-file corruption.
			return nil, fmt.Errorf("journal: line %d: %w", badLine, badErr)
		}
		var rec Record
		if err := json.Unmarshal(sc.Bytes(), &rec); err != nil {
			badErr = err
			badLine = line
			continue
		}
		out = append(out, rec)
	}
	if err := sc.Err(); err != nil {
		return out, err
	}
	if badErr != nil {
		return out, fmt.Errorf("journal: line %d: %v: %w", badLine, badErr, ErrTruncated)
	}
	return out, nil
}

// ReadFile loads all records from path.
func ReadFile(path string) ([]Record, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return Read(f)
}

// WriteFile atomically replaces path with the given records (write to a
// temporary file in the same directory, then rename).
func WriteFile(path string, records []Record) error {
	tmp, err := os.CreateTemp(filepath.Dir(path), ".journal-*")
	if err != nil {
		return err
	}
	enc := json.NewEncoder(tmp)
	for _, rec := range records {
		if err := enc.Encode(rec); err != nil {
			_ = tmp.Close()
			_ = os.Remove(tmp.Name())
			return err
		}
	}
	if err := tmp.Close(); err != nil {
		_ = os.Remove(tmp.Name())
		return err
	}
	return os.Rename(tmp.Name(), path)
}

// RepairFile reads path tolerating a truncated final record and, when one
// is found, rewrites the file to exactly the valid prefix so that later
// appends start on a fresh line instead of extending the torn record. A
// missing file is an empty journal. Any other read error is returned as
// is.
func RepairFile(path string) ([]Record, error) {
	records, err := ReadFile(path)
	switch {
	case errors.Is(err, os.ErrNotExist):
		return nil, nil
	case errors.Is(err, ErrTruncated):
		if werr := WriteFile(path, records); werr != nil {
			return records, werr
		}
		return records, nil
	default:
		return records, err
	}
}

// Trials converts records back into trials against space.
func Trials(records []Record, space *param.Space) ([]core.Trial, error) {
	out := make([]core.Trial, 0, len(records))
	for _, r := range records {
		t, err := r.ToTrial(space)
		if err != nil {
			return nil, err
		}
		out = append(out, t)
	}
	return out, nil
}
