package journal

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"rldecide/internal/core"
	"rldecide/internal/param"
	"rldecide/internal/pareto"
	"rldecide/internal/search"
)

func testSpace() *param.Space {
	return param.MustSpace(
		param.NewIntSet("order", 3, 5, 8),
		param.NewCategorical("fw", "a", "b"),
		param.NewFloatRange("lr", 0, 1),
	)
}

func TestRecordRoundTrip(t *testing.T) {
	space := testSpace()
	orig := core.Trial{
		ID: 7,
		Params: param.Assignment{
			"order": param.Int(5),
			"fw":    param.Str("b"),
			"lr":    param.Float(0.25),
		},
		Values: map[string]float64{"reward": -0.5, "time": 46},
		Seed:   1234,
	}
	rec := FromTrial(orig)
	back, err := rec.ToTrial(space)
	if err != nil {
		t.Fatal(err)
	}
	if back.ID != 7 || back.Seed != 1234 {
		t.Fatalf("metadata lost: %+v", back)
	}
	if back.Params["order"].Int() != 5 || back.Params["fw"].Str() != "b" {
		t.Fatalf("params lost: %v", back.Params)
	}
	if back.Params["lr"].Float() != 0.25 {
		t.Fatalf("float param lost: %v", back.Params["lr"])
	}
	if back.Values["reward"] != -0.5 {
		t.Fatal("values lost")
	}
}

func TestErrorAndPrunedRoundTrip(t *testing.T) {
	space := testSpace()
	tr := core.Trial{
		ID:     1,
		Params: param.Assignment{"order": param.Int(3), "fw": param.Str("a"), "lr": param.Float(0.5)},
		Err:    fmt.Errorf("boom"),
		Pruned: true,
	}
	back, err := FromTrial(tr).ToTrial(space)
	if err != nil {
		t.Fatal(err)
	}
	if back.Err == nil || back.Err.Error() != "boom" || !back.Pruned {
		t.Fatalf("flags lost: %+v", back)
	}
}

func TestWriteRead(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	space := testSpace()
	for i := 1; i <= 3; i++ {
		err := w.Append(core.Trial{
			ID:     i,
			Params: param.Assignment{"order": param.Int(3), "fw": param.Str("a"), "lr": param.Float(0.1)},
			Values: map[string]float64{"m": float64(i)},
		})
		if err != nil {
			t.Fatal(err)
		}
	}
	recs, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 3 {
		t.Fatalf("read %d records", len(recs))
	}
	trials, err := Trials(recs, space)
	if err != nil {
		t.Fatal(err)
	}
	if trials[2].Values["m"] != 3 {
		t.Fatal("values wrong")
	}
}

func TestReadRejectsGarbage(t *testing.T) {
	if _, err := Read(strings.NewReader("{\"id\":1}\nnot-json\n")); err == nil {
		t.Fatal("garbage line should error")
	}
}

func TestStudyJournaling(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "trials.jsonl")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	w := NewWriter(f)

	space := testSpace()
	study := &core.Study{
		CaseStudy: core.CaseStudy{Name: "journaled"},
		Space:     space,
		Explorer:  search.RandomSearch{},
		Metrics:   []core.Metric{{Name: "m", Direction: pareto.Maximize}},
		Ranker:    core.SortedRanker{By: "m"},
		Objective: func(a param.Assignment, seed uint64, rec *core.Recorder) error {
			rec.Report("m", a["lr"].Float())
			return nil
		},
		Seed:    4,
		OnTrial: w.Observer(func(err error) { t.Errorf("journal write: %v", err) }),
	}
	if _, err := study.Run(10); err != nil {
		t.Fatal(err)
	}
	f.Close()

	recs, err := ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 10 {
		t.Fatalf("journaled %d/10 trials", len(recs))
	}
	trials, err := Trials(recs, space)
	if err != nil {
		t.Fatal(err)
	}
	// The restored trials can be re-ranked offline.
	ranking := core.SortedRanker{By: "m"}.Rank(trials, []core.Metric{{Name: "m", Direction: pareto.Maximize}})
	best := trials[ranking.Ordered[0]]
	for _, tr := range trials {
		if tr.Values["m"] > best.Values["m"] {
			t.Fatal("offline re-ranking wrong")
		}
	}
}

func TestToTrialRejectsUnknownParam(t *testing.T) {
	rec := Record{ID: 1, Params: map[string]string{"nope": "1"}}
	if _, err := rec.ToTrial(testSpace()); err == nil {
		t.Fatal("unknown parameter should error")
	}
}

func TestParseValueFallbacks(t *testing.T) {
	space := testSpace()
	rec := Record{ID: 1, Params: map[string]string{
		"order": "8",
		"fw":    "b",
		"lr":    "0.125",
	}}
	tr, err := rec.ToTrial(space)
	if err != nil {
		t.Fatal(err)
	}
	if tr.Params["order"].Int() != 8 || tr.Params["lr"].Float() != 0.125 {
		t.Fatalf("parsed wrong: %v", tr.Params)
	}
	bad := Record{ID: 2, Params: map[string]string{"order": "9", "fw": "a", "lr": "0.1"}}
	if _, err := bad.ToTrial(space); err == nil {
		t.Fatal("out-of-space value should error")
	}
}
