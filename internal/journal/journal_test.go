package journal

import (
	"bytes"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"rldecide/internal/core"
	"rldecide/internal/param"
	"rldecide/internal/pareto"
	"rldecide/internal/search"
)

func testSpace() *param.Space {
	return param.MustSpace(
		param.NewIntSet("order", 3, 5, 8),
		param.NewCategorical("fw", "a", "b"),
		param.NewFloatRange("lr", 0, 1),
	)
}

func TestRecordRoundTrip(t *testing.T) {
	space := testSpace()
	orig := core.Trial{
		ID: 7,
		Params: param.Assign(param.Bind("order", param.Int(5)), param.Bind("fw", param.Str("b")), param.Bind("lr", param.Float(0.25))),
		Values: core.ValuesFromMap(map[string]float64{"reward": -0.5, "time": 46}),
		Seed:   1234,
	}
	rec := FromTrial(orig)
	back, err := rec.ToTrial(space)
	if err != nil {
		t.Fatal(err)
	}
	if back.ID != 7 || back.Seed != 1234 {
		t.Fatalf("metadata lost: %+v", back)
	}
	if back.Params.Value("order").Int() != 5 || back.Params.Value("fw").Str() != "b" {
		t.Fatalf("params lost: %v", back.Params)
	}
	if back.Params.Value("lr").Float() != 0.25 {
		t.Fatalf("float param lost: %v", back.Params.Value("lr"))
	}
	if back.Values.At("reward") != -0.5 {
		t.Fatal("values lost")
	}
}

// TestWallMsDecodeCompat pins the backward-compatibility contract for the
// informational wall_ms field: journals written before the field existed
// decode with WallMs zero, records carrying wall_ms round-trip it, and a
// zero wall_ms is omitted on encode so old and new writers produce the
// same bytes for untimed trials.
func TestWallMsDecodeCompat(t *testing.T) {
	// Pre-wall_ms journal line decodes cleanly with the zero value.
	old := `{"id":1,"values":{"m":2},"seed":9}` + "\n"
	recs, err := Read(strings.NewReader(old))
	if err != nil {
		t.Fatal(err)
	}
	if recs[0].WallMs != 0 {
		t.Fatalf("legacy record decoded wall_ms %v, want 0", recs[0].WallMs)
	}

	// A timed record carries the field through Read and ToTrial/FromTrial.
	timed := `{"id":2,"values":{"m":3},"seed":10,"worker":"w1","wall_ms":12.5}` + "\n"
	recs, err = Read(strings.NewReader(timed))
	if err != nil {
		t.Fatal(err)
	}
	if recs[0].WallMs != 12.5 || recs[0].Worker != "w1" {
		t.Fatalf("timed record lost informational fields: %+v", recs[0])
	}
	tr, err := recs[0].ToTrial(testSpace())
	if err != nil {
		t.Fatal(err)
	}
	if tr.WallMs != 12.5 {
		t.Fatalf("ToTrial dropped wall_ms: %+v", tr)
	}
	if back := FromTrial(tr); back.WallMs != 12.5 {
		t.Fatalf("FromTrial dropped wall_ms: %+v", back)
	}

	// Zero wall_ms is omitted on encode (byte-stable with old writers).
	var buf bytes.Buffer
	w := NewWriter(&buf)
	if err := w.Append(core.Trial{ID: 3, Seed: 11}); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(buf.String(), "wall_ms") {
		t.Fatalf("zero wall_ms leaked into encoding: %s", buf.String())
	}
}

func TestErrorAndPrunedRoundTrip(t *testing.T) {
	space := testSpace()
	tr := core.Trial{
		ID:     1,
		Params: param.Assign(param.Bind("order", param.Int(3)), param.Bind("fw", param.Str("a")), param.Bind("lr", param.Float(0.5))),
		Err:    fmt.Errorf("boom"),
		Pruned: true,
	}
	back, err := FromTrial(tr).ToTrial(space)
	if err != nil {
		t.Fatal(err)
	}
	if back.Err == nil || back.Err.Error() != "boom" || !back.Pruned {
		t.Fatalf("flags lost: %+v", back)
	}
}

func TestWriteRead(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	space := testSpace()
	for i := 1; i <= 3; i++ {
		err := w.Append(core.Trial{
			ID:     i,
			Params: param.Assign(param.Bind("order", param.Int(3)), param.Bind("fw", param.Str("a")), param.Bind("lr", param.Float(0.1))),
			Values: core.ValuesFromMap(map[string]float64{"m": float64(i)}),
		})
		if err != nil {
			t.Fatal(err)
		}
	}
	recs, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 3 {
		t.Fatalf("read %d records", len(recs))
	}
	trials, err := Trials(recs, space)
	if err != nil {
		t.Fatal(err)
	}
	if trials[2].Values.At("m") != 3 {
		t.Fatal("values wrong")
	}
}

func TestReadRejectsGarbage(t *testing.T) {
	if _, err := Read(strings.NewReader("{\"id\":1}\nnot-json\n")); err == nil {
		t.Fatal("garbage line should error")
	}
}

func TestStudyJournaling(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "trials.jsonl")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	w := NewWriter(f)

	space := testSpace()
	study := &core.Study{
		CaseStudy: core.CaseStudy{Name: "journaled"},
		Space:     space,
		Explorer:  search.RandomSearch{},
		Metrics:   []core.Metric{{Name: "m", Direction: pareto.Maximize}},
		Ranker:    core.SortedRanker{By: "m"},
		Objective: func(a param.Assignment, seed uint64, rec *core.Recorder) error {
			rec.Report("m", a.Value("lr").Float())
			return nil
		},
		Seed:    4,
		OnTrial: w.Observer(func(err error) { t.Errorf("journal write: %v", err) }),
	}
	if _, err := study.Run(10); err != nil {
		t.Fatal(err)
	}
	f.Close()

	recs, err := ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 10 {
		t.Fatalf("journaled %d/10 trials", len(recs))
	}
	trials, err := Trials(recs, space)
	if err != nil {
		t.Fatal(err)
	}
	// The restored trials can be re-ranked offline.
	ranking := core.SortedRanker{By: "m"}.Rank(trials, []core.Metric{{Name: "m", Direction: pareto.Maximize}})
	best := trials[ranking.Ordered[0]]
	for _, tr := range trials {
		if tr.Values.At("m") > best.Values.At("m") {
			t.Fatal("offline re-ranking wrong")
		}
	}
}

func TestToTrialRejectsUnknownParam(t *testing.T) {
	rec := Record{ID: 1, Params: map[string]string{"nope": "1"}}
	if _, err := rec.ToTrial(testSpace()); err == nil {
		t.Fatal("unknown parameter should error")
	}
}

func TestParseValueFallbacks(t *testing.T) {
	space := testSpace()
	rec := Record{ID: 1, Params: map[string]string{
		"order": "8",
		"fw":    "b",
		"lr":    "0.125",
	}}
	tr, err := rec.ToTrial(space)
	if err != nil {
		t.Fatal(err)
	}
	if tr.Params.Value("order").Int() != 8 || tr.Params.Value("lr").Float() != 0.125 {
		t.Fatalf("parsed wrong: %v", tr.Params)
	}
	bad := Record{ID: 2, Params: map[string]string{"order": "9", "fw": "a", "lr": "0.1"}}
	if _, err := bad.ToTrial(space); err == nil {
		t.Fatal("out-of-space value should error")
	}
}

func TestReadTruncatedFinalLine(t *testing.T) {
	// A crash mid-append leaves a torn final line; Read must return the
	// valid prefix plus ErrTruncated.
	in := `{"id":1,"params":{"fw":"a"},"seed":1}
{"id":2,"params":{"fw":"b"},"seed":2}
{"id":3,"params":{"fw":`
	recs, err := Read(strings.NewReader(in))
	if !errors.Is(err, ErrTruncated) {
		t.Fatalf("err=%v want ErrTruncated", err)
	}
	if len(recs) != 2 || recs[0].ID != 1 || recs[1].ID != 2 {
		t.Fatalf("prefix lost: %+v", recs)
	}
}

func TestReadMidFileCorruptionStillFails(t *testing.T) {
	in := "{\"id\":1}\ngarbage\n{\"id\":2}\n"
	recs, err := Read(strings.NewReader(in))
	if err == nil || errors.Is(err, ErrTruncated) {
		t.Fatalf("mid-file corruption must be a hard error, got %v (%d recs)", err, len(recs))
	}
}

func TestRepairFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "trials.jsonl")
	torn := "{\"id\":1,\"seed\":9}\n{\"id\":2,\"se"
	if err := os.WriteFile(path, []byte(torn), 0o644); err != nil {
		t.Fatal(err)
	}
	recs, err := RepairFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 1 || recs[0].ID != 1 || recs[0].Seed != 9 {
		t.Fatalf("repair kept wrong records: %+v", recs)
	}
	// The torn tail must be gone, so a reopened writer appends on a clean
	// line instead of extending the dead record.
	f, err := os.OpenFile(path, os.O_APPEND|os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	w := NewWriter(f)
	if err := w.Append(core.Trial{ID: 2, Seed: 7}); err != nil {
		t.Fatal(err)
	}
	f.Close()
	recs, err = ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 2 || recs[1].ID != 2 || recs[1].Seed != 7 {
		t.Fatalf("post-repair append broken: %+v", recs)
	}

	// Missing file: empty journal, no error.
	if recs, err := RepairFile(filepath.Join(dir, "absent.jsonl")); err != nil || len(recs) != 0 {
		t.Fatalf("missing file: %v %v", recs, err)
	}
}

// tornWriter forwards bytes to a file but "crashes" after limit bytes —
// simulating a process death in the middle of a buffered flush, where the
// kernel persisted only a prefix of the flushed record.
type tornWriter struct {
	f     *os.File
	limit int
	n     int
}

func (tw *tornWriter) Write(p []byte) (int, error) {
	if tw.n >= tw.limit {
		return 0, errors.New("torn: crashed")
	}
	if tw.n+len(p) > tw.limit {
		k := tw.limit - tw.n
		_, _ = tw.f.Write(p[:k])
		tw.n = tw.limit
		return k, errors.New("torn: crashed mid-write")
	}
	n, err := tw.f.Write(p)
	tw.n += n
	return n, err
}

func TestCrashMidFlushRepair(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "trials.jsonl")
	t1 := core.Trial{ID: 1, Seed: 11}
	t2 := core.Trial{ID: 2, Seed: 22}

	// Learn the encoded sizes so the crash lands mid-record-2.
	var buf bytes.Buffer
	sizer := NewWriter(&buf)
	if err := sizer.Append(t1); err != nil {
		t.Fatal(err)
	}
	len1 := buf.Len()
	if err := sizer.Append(t2); err != nil {
		t.Fatal(err)
	}
	len2 := buf.Len() - len1

	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	w := NewWriter(&tornWriter{f: f, limit: len1 + len2/2})
	if err := w.Append(t1); err != nil {
		t.Fatal(err)
	}
	if err := w.Append(t2); err == nil {
		t.Fatal("crash mid-flush must surface as an append error")
	}
	f.Close()

	// Resume: repair trims the torn tail, keeping the intact prefix.
	recs, err := RepairFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 1 || recs[0].ID != 1 || recs[0].Seed != 11 {
		t.Fatalf("repair kept wrong records: %+v", recs)
	}

	// The re-run appends the lost trial on a clean line.
	f2, err := os.OpenFile(path, os.O_APPEND|os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if err := NewWriter(f2).Append(t2); err != nil {
		t.Fatal(err)
	}
	f2.Close()
	recs, err = ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 2 || recs[1].ID != 2 || recs[1].Seed != 22 {
		t.Fatalf("post-repair append broken: %+v", recs)
	}
}

func TestWriteFileRoundTrip(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "out.jsonl")
	in := []Record{{ID: 1, Seed: 4}, {ID: 2, Seed: 5, Values: map[string]float64{"m": 1}}}
	if err := WriteFile(path, in); err != nil {
		t.Fatal(err)
	}
	out, err := ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 2 || out[1].Values["m"] != 1 {
		t.Fatalf("round trip lost data: %+v", out)
	}
}

// TestConcurrentAppendUnderParallelStudy drives the OnTrial observer from
// a Parallelism > 1 study (run under -race in CI): every finished trial
// must land in the journal exactly once, each on its own line.
func TestConcurrentAppendUnderParallelStudy(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "trials.jsonl")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	w := NewWriter(f)
	space := testSpace()
	study := &core.Study{
		CaseStudy:   core.CaseStudy{Name: "parallel-journal"},
		Space:       space,
		Explorer:    search.RandomSearch{},
		Metrics:     []core.Metric{{Name: "m", Direction: pareto.Maximize}},
		Ranker:      core.SortedRanker{By: "m"},
		Parallelism: 8,
		Objective: func(a param.Assignment, seed uint64, rec *core.Recorder) error {
			rec.Report("m", a.Value("lr").Float())
			return nil
		},
		Seed:    11,
		OnTrial: w.Observer(func(err error) { t.Errorf("journal write: %v", err) }),
	}
	if _, err := study.Run(64); err != nil {
		t.Fatal(err)
	}
	f.Close()
	recs, err := ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 64 {
		t.Fatalf("journaled %d/64 trials", len(recs))
	}
	ids := map[int]bool{}
	for _, r := range recs {
		if ids[r.ID] {
			t.Fatalf("trial %d journaled twice", r.ID)
		}
		ids[r.ID] = true
	}
}

// TestJournalResumeRoundTrip interrupts a campaign after half its budget,
// restores the journal into a fresh study via Resume, and checks the
// completed campaign matches an uninterrupted one exactly.
func TestJournalResumeRoundTrip(t *testing.T) {
	space := testSpace()
	metrics := []core.Metric{{Name: "m", Direction: pareto.Maximize}}
	newStudy := func(onTrial func(core.Trial)) *core.Study {
		return &core.Study{
			CaseStudy: core.CaseStudy{Name: "roundtrip"},
			Space:     space,
			Explorer:  search.RandomSearch{},
			Metrics:   metrics,
			Ranker:    core.SortedRanker{By: "m"},
			Objective: func(a param.Assignment, seed uint64, rec *core.Recorder) error {
				rec.Report("m", a.Value("lr").Float()*float64(a.Value("order").Int()))
				return nil
			},
			Seed:    21,
			OnTrial: onTrial,
		}
	}

	full, err := newStudy(nil).Run(16)
	if err != nil {
		t.Fatal(err)
	}

	dir := t.TempDir()
	path := filepath.Join(dir, "trials.jsonl")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	w := NewWriter(f)
	if _, err := newStudy(w.Observer(nil)).Run(8); err != nil {
		t.Fatal(err)
	}
	f.Close()

	recs, err := ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	restored, err := Trials(recs, space)
	if err != nil {
		t.Fatal(err)
	}
	resumed := newStudy(nil)
	if err := resumed.Resume(restored); err != nil {
		t.Fatal(err)
	}
	rep, err := resumed.Run(16)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Trials) != 16 {
		t.Fatalf("resumed campaign has %d trials", len(rep.Trials))
	}
	for i := range rep.Trials {
		a, b := rep.Trials[i], full.Trials[i]
		if a.ID != b.ID || a.Params.Key() != b.Params.Key() || a.Seed != b.Seed || a.Values.At("m") != b.Values.At("m") {
			t.Fatalf("trial %d diverged after journal round trip:\n%+v\n%+v", i, a, b)
		}
	}
}
