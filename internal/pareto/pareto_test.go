package pareto

import (
	"math"
	"testing"
	"testing/quick"
)

var minmin = []Direction{Minimize, Minimize}

func pts(vals ...[2]float64) []Point {
	out := make([]Point, len(vals))
	for i, v := range vals {
		out[i] = Point{ID: i, Values: []float64{v[0], v[1]}}
	}
	return out
}

func TestDominates(t *testing.T) {
	if !Dominates([]float64{1, 1}, []float64{2, 2}, minmin) {
		t.Error("strictly better should dominate")
	}
	if !Dominates([]float64{1, 2}, []float64{2, 2}, minmin) {
		t.Error("better-in-one, tied-in-other should dominate")
	}
	if Dominates([]float64{1, 3}, []float64{2, 2}, minmin) {
		t.Error("trade-off should not dominate")
	}
	if Dominates([]float64{2, 2}, []float64{2, 2}, minmin) {
		t.Error("equal points should not dominate")
	}
	// Maximize flips the sense.
	dirs := []Direction{Maximize, Minimize}
	if !Dominates([]float64{5, 1}, []float64{4, 2}, dirs) {
		t.Error("max/min mix wrong")
	}
}

func TestDominatesIrreflexiveAntisymmetric(t *testing.T) {
	f := func(a0, a1, b0, b1 int8) bool {
		a := []float64{float64(a0), float64(a1)}
		b := []float64{float64(b0), float64(b1)}
		if Dominates(a, a, minmin) {
			return false
		}
		return !(Dominates(a, b, minmin) && Dominates(b, a, minmin))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestFront(t *testing.T) {
	// Classic staircase: (1,4) (2,2) (4,1) on front; (3,3) (5,5) dominated.
	p := pts([2]float64{1, 4}, [2]float64{2, 2}, [2]float64{4, 1}, [2]float64{3, 3}, [2]float64{5, 5})
	front := Front(p, minmin)
	want := []int{0, 1, 2}
	if len(front) != 3 {
		t.Fatalf("front %v want %v", front, want)
	}
	for i := range want {
		if front[i] != want[i] {
			t.Fatalf("front %v want %v", front, want)
		}
	}
}

func TestFrontIdempotentProperty(t *testing.T) {
	f := func(raw []uint16) bool {
		if len(raw) < 2 {
			return true
		}
		var p []Point
		for i := 0; i+1 < len(raw); i += 2 {
			p = append(p, Point{ID: i, Values: []float64{float64(raw[i]), float64(raw[i+1])}})
		}
		front := Front(p, minmin)
		sub := make([]Point, len(front))
		for i, idx := range front {
			sub[i] = p[idx]
		}
		again := Front(sub, minmin)
		return len(again) == len(sub)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestFrontMembersMutuallyNonDominated(t *testing.T) {
	f := func(raw []uint8) bool {
		if len(raw) < 4 {
			return true
		}
		var p []Point
		for i := 0; i+1 < len(raw); i += 2 {
			p = append(p, Point{ID: i, Values: []float64{float64(raw[i]), float64(raw[i+1])}})
		}
		front := Front(p, minmin)
		for _, i := range front {
			for _, j := range front {
				if i != j && Dominates(p[i].Values, p[j].Values, minmin) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestEpsilonFrontKeepsNearTies(t *testing.T) {
	// B is strictly dominated by A but within 5% in objective 0.
	p := pts([2]float64{100, 10}, [2]float64{103, 10.2}, [2]float64{200, 30})
	strict := Front(p, minmin)
	if len(strict) != 1 || strict[0] != 0 {
		t.Fatalf("strict front %v", strict)
	}
	eps := EpsilonFront(p, minmin, 0.05)
	if len(eps) != 2 {
		t.Fatalf("eps front %v want indices 0,1", eps)
	}
	// The clearly dominated point stays out.
	for _, i := range eps {
		if i == 2 {
			t.Fatal("eps front admitted a clearly dominated point")
		}
	}
}

func TestEpsilonFrontSupersetProperty(t *testing.T) {
	f := func(raw []uint8, epsRaw uint8) bool {
		if len(raw) < 4 {
			return true
		}
		var p []Point
		for i := 0; i+1 < len(raw); i += 2 {
			p = append(p, Point{ID: i, Values: []float64{float64(raw[i]) + 1, float64(raw[i+1]) + 1}})
		}
		eps := float64(epsRaw) / 512
		strict := map[int]bool{}
		for _, i := range Front(p, minmin) {
			strict[i] = true
		}
		epsSet := map[int]bool{}
		for _, i := range EpsilonFront(p, minmin, eps) {
			epsSet[i] = true
		}
		for i := range strict {
			if !epsSet[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestNonDominatedSort(t *testing.T) {
	p := pts([2]float64{1, 1}, [2]float64{2, 2}, [2]float64{3, 3})
	fronts := NonDominatedSort(p, minmin)
	if len(fronts) != 3 {
		t.Fatalf("fronts %v", fronts)
	}
	for i, f := range fronts {
		if len(f) != 1 || f[0] != i {
			t.Fatalf("fronts %v", fronts)
		}
	}
	// Every point appears exactly once.
	p2 := pts([2]float64{1, 4}, [2]float64{4, 1}, [2]float64{2, 2}, [2]float64{5, 5}, [2]float64{3, 3})
	fronts = NonDominatedSort(p2, minmin)
	seen := map[int]int{}
	for _, f := range fronts {
		for _, i := range f {
			seen[i]++
		}
	}
	if len(seen) != 5 {
		t.Fatalf("sort lost points: %v", fronts)
	}
	for i, c := range seen {
		if c != 1 {
			t.Fatalf("point %d appears %d times", i, c)
		}
	}
}

func TestCrowdingDistance(t *testing.T) {
	p := pts([2]float64{0, 10}, [2]float64{5, 5}, [2]float64{10, 0}, [2]float64{1, 9})
	front := []int{0, 1, 2, 3}
	d := CrowdingDistance(p, front, minmin)
	if !math.IsInf(d[0], 1) || !math.IsInf(d[2], 1) {
		t.Fatalf("boundary points must be infinite: %v", d)
	}
	if d[1] <= d[3] {
		t.Fatalf("middle point should be less crowded than near-boundary: %v", d)
	}
	if got := CrowdingDistance(p, []int{0, 1}, minmin); !math.IsInf(got[0], 1) || !math.IsInf(got[1], 1) {
		t.Fatal("tiny fronts are all-infinite")
	}
	if got := CrowdingDistance(p, nil, minmin); len(got) != 0 {
		t.Fatal("empty front")
	}
}

func TestHypervolume2D(t *testing.T) {
	p := pts([2]float64{1, 2}, [2]float64{2, 1})
	ref := []float64{3, 3}
	// Union of rectangles: (3-1)*(3-2) + (3-2)*(2-1) = 2 + 1 = 3.
	hv := Hypervolume2D(p, ref, minmin)
	if math.Abs(hv-3) > 1e-12 {
		t.Fatalf("hv=%v want 3", hv)
	}
	// Dominated point adds nothing.
	p = append(p, Point{ID: 9, Values: []float64{2.5, 2.5}})
	if hv2 := Hypervolume2D(p, ref, minmin); math.Abs(hv2-3) > 1e-12 {
		t.Fatalf("hv with dominated point %v", hv2)
	}
	// Point outside ref contributes nothing.
	if hv3 := Hypervolume2D(pts([2]float64{4, 4}), ref, minmin); hv3 != 0 {
		t.Fatalf("outside ref hv %v", hv3)
	}
}

func TestHypervolumeMonotoneProperty(t *testing.T) {
	// Adding a point never decreases hypervolume.
	f := func(raw []uint8) bool {
		if len(raw) < 6 {
			return true
		}
		ref := []float64{300, 300}
		var p []Point
		for i := 0; i+1 < len(raw); i += 2 {
			p = append(p, Point{ID: i, Values: []float64{float64(raw[i]), float64(raw[i+1])}})
		}
		prev := -1.0
		for n := 1; n <= len(p); n++ {
			hv := Hypervolume2D(p[:n], ref, minmin)
			if hv < prev-1e-9 {
				return false
			}
			prev = hv
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

func TestKnee(t *testing.T) {
	// Clear knee at (2,2) between extremes (0,10) and (10,0).
	p := pts([2]float64{0, 10}, [2]float64{2, 2}, [2]float64{10, 0})
	if k := Knee(p, minmin); k != 1 {
		t.Fatalf("knee=%d want 1", k)
	}
	if Knee(nil, minmin) != -1 {
		t.Fatal("empty knee should be -1")
	}
	single := pts([2]float64{1, 1})
	if Knee(single, minmin) != 0 {
		t.Fatal("single-point knee")
	}
}

func TestDirectionString(t *testing.T) {
	if Minimize.String() != "min" || Maximize.String() != "max" {
		t.Fatal("Direction strings wrong")
	}
}

func TestDimensionMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Dominates([]float64{1}, []float64{1, 2}, minmin)
}

func TestEpsilonFrontMonotoneInEps(t *testing.T) {
	// A larger tolerance can only admit more points.
	f := func(raw []uint8, e1, e2 uint8) bool {
		if len(raw) < 6 {
			return true
		}
		lo, hi := float64(e1)/512, float64(e2)/512
		if lo > hi {
			lo, hi = hi, lo
		}
		var p []Point
		for i := 0; i+1 < len(raw); i += 2 {
			p = append(p, Point{ID: i, Values: []float64{float64(raw[i]) + 1, float64(raw[i+1]) + 1}})
		}
		small := map[int]bool{}
		for _, i := range EpsilonFront(p, minmin, lo) {
			small[i] = true
		}
		for i := range small {
			found := false
			for _, j := range EpsilonFront(p, minmin, hi) {
				if j == i {
					found = true
				}
			}
			if !found {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestEpsilonFrontNegativePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("negative eps should panic")
		}
	}()
	EpsilonFront(pts([2]float64{1, 1}), minmin, -0.1)
}
