// Package pareto implements the multi-objective ranking machinery behind
// step (e) of the paper's methodology: dominance tests, Pareto-front
// extraction (strict and ε-tolerant), fast non-dominated sorting into
// successive fronts, crowding distance, 2-D hypervolume and knee-point
// selection.
package pareto

import (
	"fmt"
	"math"
	"sort"
)

// Direction says whether an objective is minimized or maximized.
type Direction int

// Objective directions.
const (
	Minimize Direction = iota
	Maximize
)

// String implements fmt.Stringer.
func (d Direction) String() string {
	if d == Maximize {
		return "max"
	}
	return "min"
}

// Point is one candidate with its objective values.
type Point struct {
	ID     int
	Values []float64
}

// normalize maps a value so that smaller is always better.
func normalize(v float64, d Direction) float64 {
	if d == Maximize {
		return -v
	}
	return v
}

// Dominates reports whether a dominates b under dirs: a is at least as
// good in every objective and strictly better in at least one.
func Dominates(a, b []float64, dirs []Direction) bool {
	if len(a) != len(b) || len(a) != len(dirs) {
		panic(fmt.Sprintf("pareto: dimension mismatch %d/%d/%d", len(a), len(b), len(dirs)))
	}
	strictly := false
	for i := range a {
		av := normalize(a[i], dirs[i])
		bv := normalize(b[i], dirs[i])
		if av > bv {
			return false
		}
		if av < bv {
			strictly = true
		}
	}
	return strictly
}

// Front returns the indices (into points) of the non-dominated set, in
// input order.
func Front(points []Point, dirs []Direction) []int {
	var out []int
	for i, p := range points {
		dominated := false
		for j, q := range points {
			if i != j && Dominates(q.Values, p.Values, dirs) {
				dominated = true
				break
			}
		}
		if !dominated {
			out = append(out, i)
		}
	}
	return out
}

// EpsilonFront returns the indices of points that are not ε-dominated:
// q ε-dominates p only when q is better than p by more than a relative
// margin eps·max(|q_i|,|p_i|) in *every* objective. The result is always a
// superset of Front. The tolerance mirrors how a practitioner reads a
// measured Pareto plot: solutions within measurement noise of the front
// are kept (the paper's solutions 2 and 5 both report 201 kJ and both
// appear on its Figure 5 front).
func EpsilonFront(points []Point, dirs []Direction, eps float64) []int {
	if eps < 0 {
		panic("pareto: negative epsilon")
	}
	var out []int
	for i, p := range points {
		dominated := false
		for j, q := range points {
			if i == j {
				continue
			}
			if epsDominates(q.Values, p.Values, dirs, eps) {
				dominated = true
				break
			}
		}
		if !dominated {
			out = append(out, i)
		}
	}
	return out
}

// epsDominates reports whether a beats b by more than the relative margin
// eps·max(|a_i|,|b_i|) in every objective ("clearly dominates"). A point
// therefore survives an ε-front whenever it is within the noise margin of
// its dominator in at least one objective.
func epsDominates(a, b []float64, dirs []Direction, eps float64) bool {
	for i := range a {
		av := normalize(a[i], dirs[i])
		bv := normalize(b[i], dirs[i])
		margin := eps * math.Max(math.Abs(av), math.Abs(bv))
		if !(av < bv-margin) {
			return false
		}
	}
	return true
}

// NonDominatedSort partitions points into successive fronts: front 0 is
// the Pareto front, front 1 the front after removing front 0, and so on
// (the fast non-dominated sort of NSGA-II).
//
// The dominance graph is stored as a flat CSR-style adjacency (a count
// pass sizes one shared edge buffer, a fill pass populates it) and every
// front is a cap-limited sub-slice of one shared n-entry order buffer, so
// the sort costs a fixed handful of allocations regardless of n — this
// runs once per study report, but studyd re-ranks on every snapshot
// request, which made the append-grown edge lists the hottest allocation
// site of a campaign.
func NonDominatedSort(points []Point, dirs []Direction) [][]int {
	n := len(points)
	if n == 0 {
		return nil
	}
	domCount := make([]int, n)
	edgeCount := make([]int, n)
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if Dominates(points[i].Values, points[j].Values, dirs) {
				edgeCount[i]++
				domCount[j]++
			} else if Dominates(points[j].Values, points[i].Values, dirs) {
				edgeCount[j]++
				domCount[i]++
			}
		}
	}
	offsets := make([]int, n+1)
	for i := 0; i < n; i++ {
		offsets[i+1] = offsets[i] + edgeCount[i]
	}
	// Reuse edgeCount as the per-node fill cursor.
	edges := make([]int, offsets[n])
	copy(edgeCount, offsets[:n])
	fill := edgeCount
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if Dominates(points[i].Values, points[j].Values, dirs) {
				edges[fill[i]] = j
				fill[i]++
			} else if Dominates(points[j].Values, points[i].Values, dirs) {
				edges[fill[j]] = i
				fill[j]++
			}
		}
	}
	// Every point lands in exactly one front, so the fronts are windows
	// into a single order buffer.
	order := make([]int, n)
	hi := 0
	for i := 0; i < n; i++ {
		if domCount[i] == 0 {
			order[hi] = i
			hi++
		}
	}
	var fronts [][]int
	lo := 0
	for lo < hi {
		fronts = append(fronts, order[lo:hi:hi])
		next := hi
		for _, i := range order[lo:hi] {
			for _, j := range edges[offsets[i]:offsets[i+1]] {
				domCount[j]--
				if domCount[j] == 0 {
					order[next] = j
					next++
				}
			}
		}
		lo, hi = hi, next
	}
	return fronts
}

// CrowdingDistance returns NSGA-II crowding distances for the points of
// one front (boundary points get +Inf).
func CrowdingDistance(points []Point, front []int, dirs []Direction) []float64 {
	m := len(front)
	dist := make([]float64, m)
	if m == 0 {
		return dist
	}
	if m <= 2 {
		for i := range dist {
			dist[i] = math.Inf(1)
		}
		return dist
	}
	nObj := len(dirs)
	order := make([]int, m)
	for obj := 0; obj < nObj; obj++ {
		for i := range order {
			order[i] = i
		}
		sort.Slice(order, func(a, b int) bool {
			return points[front[order[a]]].Values[obj] < points[front[order[b]]].Values[obj]
		})
		lo := points[front[order[0]]].Values[obj]
		hi := points[front[order[m-1]]].Values[obj]
		span := hi - lo
		dist[order[0]] = math.Inf(1)
		dist[order[m-1]] = math.Inf(1)
		if span == 0 {
			continue
		}
		for k := 1; k < m-1; k++ {
			d := points[front[order[k+1]]].Values[obj] - points[front[order[k-1]]].Values[obj]
			dist[order[k]] += d / span
		}
	}
	return dist
}

// Hypervolume2D returns the hypervolume (area) dominated by points
// relative to the reference point ref, for two objectives. Points not
// dominating ref contribute nothing.
func Hypervolume2D(points []Point, ref []float64, dirs []Direction) float64 {
	if len(dirs) != 2 || len(ref) != 2 {
		panic("pareto: Hypervolume2D needs exactly 2 objectives")
	}
	// Normalize to minimization and keep points that dominate ref.
	type p2 struct{ x, y float64 }
	var ps []p2
	rx, ry := normalize(ref[0], dirs[0]), normalize(ref[1], dirs[1])
	for _, p := range points {
		x, y := normalize(p.Values[0], dirs[0]), normalize(p.Values[1], dirs[1])
		if x < rx && y < ry {
			ps = append(ps, p2{x, y})
		}
	}
	if len(ps) == 0 {
		return 0
	}
	sort.Slice(ps, func(i, j int) bool {
		if ps[i].x != ps[j].x {
			return ps[i].x < ps[j].x
		}
		return ps[i].y < ps[j].y
	})
	hv := 0.0
	bestY := ry
	for _, p := range ps {
		if p.y < bestY {
			hv += (rx - p.x) * (bestY - p.y)
			bestY = p.y
		}
	}
	return hv
}

// Knee returns the index (into points) of the knee point of the Pareto
// front: the front member with maximum distance to the line joining the
// front's extreme points, a common "balanced trade-off" pick. It returns
// -1 for empty input; for fronts of one or two points it returns the
// first.
func Knee(points []Point, dirs []Direction) int {
	front := Front(points, dirs)
	if len(front) == 0 {
		return -1
	}
	if len(front) <= 2 {
		return front[0]
	}
	// Normalize objectives to [0,1] minimization.
	nObj := len(dirs)
	lo := make([]float64, nObj)
	hi := make([]float64, nObj)
	for d := 0; d < nObj; d++ {
		lo[d] = math.Inf(1)
		hi[d] = math.Inf(-1)
		for _, i := range front {
			v := normalize(points[i].Values[d], dirs[d])
			lo[d] = math.Min(lo[d], v)
			hi[d] = math.Max(hi[d], v)
		}
	}
	norm := func(i, d int) float64 {
		v := normalize(points[i].Values[d], dirs[d])
		if hi[d] <= lo[d] { // degenerate dimension (hi >= lo by construction)
			return 0
		}
		return (v - lo[d]) / (hi[d] - lo[d])
	}
	// Distance from the ideal point (0,...,0); the knee is the closest.
	best, bestDist := front[0], math.Inf(1)
	for _, i := range front {
		s := 0.0
		for d := 0; d < nObj; d++ {
			v := norm(i, d)
			s += v * v
		}
		if s < bestDist {
			bestDist = s
			best = i
		}
	}
	return best
}
