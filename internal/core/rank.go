package core

import (
	"fmt"
	"sort"

	"rldecide/internal/pareto"
)

// Report is the study outcome handed to the decision maker.
type Report struct {
	CaseStudy CaseStudy
	Metrics   []Metric
	Trials    []Trial
	Explorer  string
	Ranker    string
	Ranking   Ranking
}

// completed returns the trials that produced all metrics (failed and
// pruned trials are excluded from ranking but kept in Trials).
func (r *Report) completed() []Trial {
	out := make([]Trial, 0, len(r.Trials))
	for _, t := range r.Trials {
		if t.Err != nil || t.Pruned {
			continue
		}
		ok := true
		for _, m := range r.Metrics {
			if !t.Values.Has(m.Name) {
				ok = false
				break
			}
		}
		if ok {
			out = append(out, t)
		}
	}
	return out
}

// Completed exposes the ranked trial subset in ranking index order 0..n-1.
func (r *Report) Completed() []Trial { return r.completed() }

// Points projects the completed trials onto the named metrics as Pareto
// points (Point.ID is the trial ID).
func (r *Report) Points(metrics ...string) ([]pareto.Point, []pareto.Direction, error) {
	dirs := make([]pareto.Direction, len(metrics))
	for i, name := range metrics {
		found := false
		for _, m := range r.Metrics {
			if m.Name == name {
				dirs[i] = m.Direction
				found = true
				break
			}
		}
		if !found {
			return nil, nil, fmt.Errorf("core: unknown metric %q", name)
		}
	}
	var pts []pareto.Point
	for _, t := range r.completed() {
		vals := make([]float64, len(metrics))
		for i, name := range metrics {
			vals[i] = t.Values.At(name)
		}
		pts = append(pts, pareto.Point{ID: t.ID, Values: vals})
	}
	return pts, dirs, nil
}

// FrontIDs returns the trial IDs on the (ε-)Pareto front of the named
// metrics.
func (r *Report) FrontIDs(eps float64, metrics ...string) ([]int, error) {
	pts, dirs, err := r.Points(metrics...)
	if err != nil {
		return nil, err
	}
	var idx []int
	if eps > 0 {
		idx = pareto.EpsilonFront(pts, dirs, eps)
	} else {
		idx = pareto.Front(pts, dirs)
	}
	ids := make([]int, len(idx))
	for i, j := range idx {
		ids[i] = pts[j].ID
	}
	sort.Ints(ids)
	return ids, nil
}

// Best returns the completed trial with the best value of the named
// metric, or ok=false when none completed.
func (r *Report) Best(metric string) (Trial, bool) {
	var dir pareto.Direction
	found := false
	for _, m := range r.Metrics {
		if m.Name == metric {
			dir = m.Direction
			found = true
		}
	}
	if !found {
		return Trial{}, false
	}
	trials := r.completed()
	if len(trials) == 0 {
		return Trial{}, false
	}
	best := trials[0]
	for _, t := range trials[1:] {
		v, b := t.Values.At(metric), best.Values.At(metric)
		if (dir == pareto.Maximize && v > b) || (dir == pareto.Minimize && v < b) {
			best = t
		}
	}
	return best, true
}

// ParetoRanker ranks trials by non-dominated sorting over the chosen
// objectives (all study metrics when Objectives is empty) — the ranking
// method of the paper's campaign.
type ParetoRanker struct {
	// Objectives selects the metric subset to rank on.
	Objectives []string
	// Eps widens the first front to ε-non-dominated solutions.
	Eps float64
}

// Name implements Ranker.
func (p ParetoRanker) Name() string { return "pareto" }

// Rank implements Ranker.
func (p ParetoRanker) Rank(trials []Trial, metrics []Metric) Ranking {
	names := p.Objectives
	if len(names) == 0 {
		for _, m := range metrics {
			names = append(names, m.Name)
		}
	}
	dirs := make([]pareto.Direction, len(names))
	for i, n := range names {
		for _, m := range metrics {
			if m.Name == n {
				dirs[i] = m.Direction
			}
		}
	}
	// One flat backing array for every point's values: the per-trial
	// sub-slices share it, so projecting n trials costs two allocations
	// instead of n+1.
	pts := make([]pareto.Point, len(trials))
	flat := make([]float64, len(trials)*len(names))
	for i, t := range trials {
		vals := flat[i*len(names) : (i+1)*len(names) : (i+1)*len(names)]
		for j, n := range names {
			vals[j] = t.Values.At(n)
		}
		pts[i] = pareto.Point{ID: t.ID, Values: vals}
	}
	fronts := pareto.NonDominatedSort(pts, dirs)
	if p.Eps > 0 && len(fronts) > 0 {
		fronts[0] = pareto.EpsilonFront(pts, dirs, p.Eps)
	}
	return Ranking{Method: "pareto", Fronts: fronts}
}

// SortedRanker ranks trials best-first by one metric — the paper's
// "sorted array" ranking alternative.
type SortedRanker struct {
	By string // metric name (default: first metric)
}

// Name implements Ranker.
func (s SortedRanker) Name() string { return "sorted" }

// Rank implements Ranker.
func (s SortedRanker) Rank(trials []Trial, metrics []Metric) Ranking {
	by := s.By
	if by == "" && len(metrics) > 0 {
		by = metrics[0].Name
	}
	var dir pareto.Direction
	for _, m := range metrics {
		if m.Name == by {
			dir = m.Direction
		}
	}
	order := make([]int, len(trials))
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool {
		va, vb := trials[order[a]].Values.At(by), trials[order[b]].Values.At(by)
		if dir == pareto.Maximize {
			return va > vb
		}
		return va < vb
	})
	return Ranking{Method: "sorted", Ordered: order}
}

// WeightedRanker ranks trials by a weighted sum of normalized metrics
// (each metric min-max normalized to [0,1] in its "better" direction).
type WeightedRanker struct {
	Weights map[string]float64
}

// Name implements Ranker.
func (w WeightedRanker) Name() string { return "weighted" }

// Rank implements Ranker.
func (w WeightedRanker) Rank(trials []Trial, metrics []Metric) Ranking {
	if len(trials) == 0 {
		return Ranking{Method: "weighted"}
	}
	scores := make([]float64, len(trials))
	for _, m := range metrics {
		weight, ok := w.Weights[m.Name]
		if !ok {
			continue
		}
		lo, hi := trials[0].Values.At(m.Name), trials[0].Values.At(m.Name)
		for _, t := range trials[1:] {
			v := t.Values.At(m.Name)
			if v < lo {
				lo = v
			}
			if v > hi {
				hi = v
			}
		}
		span := hi - lo
		for i, t := range trials {
			if span == 0 {
				continue
			}
			norm := (t.Values.At(m.Name) - lo) / span
			if m.Direction == pareto.Minimize {
				norm = 1 - norm
			}
			scores[i] += weight * norm
		}
	}
	order := make([]int, len(trials))
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool { return scores[order[a]] > scores[order[b]] })
	return Ranking{Method: "weighted", Ordered: order}
}
