package core

import (
	"context"
	"errors"
	"fmt"
	"math"
	"math/rand/v2"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"rldecide/internal/mathx"
	"rldecide/internal/param"
	"rldecide/internal/pareto"
	"rldecide/internal/search"
)

func testSpace() *param.Space {
	return param.MustSpace(
		param.NewFloatRange("x", 0, 1),
		param.NewFloatRange("y", 0, 1),
	)
}

// twoObjective records two antagonistic metrics: cost = x, quality = 1-x+y.
func twoObjective(a param.Assignment, seed uint64, rec *Recorder) error {
	x, y := a.Value("x").Float(), a.Value("y").Float()
	rec.Report("cost", x)
	rec.Report("quality", 1-x+0.1*y)
	return nil
}

func metrics() []Metric {
	return []Metric{
		{Name: "quality", Unit: "", Direction: pareto.Maximize},
		{Name: "cost", Unit: "s", Direction: pareto.Minimize},
	}
}

func newStudy() *Study {
	return &Study{
		CaseStudy: CaseStudy{Name: "toy", Description: "antagonistic quality/cost"},
		Space:     testSpace(),
		Explorer:  search.RandomSearch{},
		Metrics:   metrics(),
		Ranker:    ParetoRanker{},
		Objective: twoObjective,
		Seed:      1,
	}
}

func TestStudyRunBasics(t *testing.T) {
	s := newStudy()
	rep, err := s.Run(20)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Trials) != 20 {
		t.Fatalf("trials=%d", len(rep.Trials))
	}
	for i, tr := range rep.Trials {
		if tr.ID != i+1 {
			t.Fatalf("trial order broken at %d: id=%d", i, tr.ID)
		}
		if tr.Err != nil {
			t.Fatalf("trial %d failed: %v", tr.ID, tr.Err)
		}
		if len(tr.Values) != 2 {
			t.Fatalf("trial %d values %v", tr.ID, tr.Values)
		}
	}
	if rep.Explorer != "random" || rep.Ranker != "pareto" {
		t.Fatalf("report metadata %q %q", rep.Explorer, rep.Ranker)
	}
	if len(rep.Ranking.Fronts) == 0 {
		t.Fatal("no fronts")
	}
}

func TestStudyDeterministic(t *testing.T) {
	a, err := newStudy().Run(10)
	if err != nil {
		t.Fatal(err)
	}
	b, err := newStudy().Run(10)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Trials {
		if a.Trials[i].Params.Key() != b.Trials[i].Params.Key() {
			t.Fatal("same seed diverged")
		}
		if a.Trials[i].Values.At("cost") != b.Trials[i].Values.At("cost") {
			t.Fatal("values diverged")
		}
	}
}

func TestStudyParallelCompletesAll(t *testing.T) {
	s := newStudy()
	s.Parallelism = 4
	rep, err := s.Run(32)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Trials) != 32 {
		t.Fatalf("parallel run lost trials: %d", len(rep.Trials))
	}
	ids := map[int]bool{}
	for _, tr := range rep.Trials {
		ids[tr.ID] = true
	}
	if len(ids) != 32 {
		t.Fatal("duplicate or missing trial ids")
	}
}

func TestValidation(t *testing.T) {
	cases := map[string]func(*Study){
		"no-space":    func(s *Study) { s.Space = nil },
		"no-explorer": func(s *Study) { s.Explorer = nil },
		"no-metrics":  func(s *Study) { s.Metrics = nil },
		"no-ranker":   func(s *Study) { s.Ranker = nil },
		"no-obj":      func(s *Study) { s.Objective = nil },
		"bad-primary": func(s *Study) { s.PrimaryMetric = "nope" },
		"dup-metric": func(s *Study) {
			s.Metrics = []Metric{{Name: "a"}, {Name: "a"}}
		},
	}
	for name, mutate := range cases {
		s := newStudy()
		mutate(s)
		if _, err := s.Run(1); err == nil {
			t.Errorf("%s: expected error", name)
		}
	}
	s := newStudy()
	if _, err := s.Run(0); err == nil {
		t.Error("zero trials should error")
	}
}

func TestObjectiveErrorsAndPanicsAreCaptured(t *testing.T) {
	s := newStudy()
	n := 0
	s.Objective = func(a param.Assignment, seed uint64, rec *Recorder) error {
		n++
		switch n {
		case 1:
			return fmt.Errorf("boom")
		case 2:
			panic("kaboom")
		default:
			rec.Report("cost", 1)
			rec.Report("quality", 1)
			return nil
		}
	}
	rep, err := s.Run(3)
	if err != nil {
		t.Fatal(err)
	}
	failed := 0
	for _, tr := range rep.Trials {
		if tr.Err != nil {
			failed++
		}
	}
	if failed != 2 {
		t.Fatalf("failed=%d want 2", failed)
	}
	if len(rep.Completed()) != 1 {
		t.Fatalf("completed=%d want 1", len(rep.Completed()))
	}
}

func TestUnknownMetricPanics(t *testing.T) {
	s := newStudy()
	s.Objective = func(a param.Assignment, seed uint64, rec *Recorder) error {
		rec.Report("nope", 1)
		return nil
	}
	rep, err := s.Run(1)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Trials[0].Err == nil {
		t.Fatal("reporting an unknown metric should fail the trial")
	}
}

func TestPruning(t *testing.T) {
	s := newStudy()
	s.PrimaryMetric = "quality"
	s.Pruner = search.ThresholdPruner{Bound: 0.5}
	s.Objective = func(a param.Assignment, seed uint64, rec *Recorder) error {
		// Low-x trials report high intermediate quality, high-x low.
		q := 1 - a.Value("x").Float()
		for i := 0; i < 3; i++ {
			if !rec.Intermediate(q) {
				return ErrPruned
			}
		}
		rec.Report("cost", a.Value("x").Float())
		rec.Report("quality", q)
		return nil
	}
	rep, err := s.Run(30)
	if err != nil {
		t.Fatal(err)
	}
	pruned := 0
	for _, tr := range rep.Trials {
		if tr.Pruned {
			pruned++
			if tr.Err != nil {
				t.Fatal("pruned trial must not be marked failed")
			}
			if len(tr.Values) != 0 {
				t.Fatal("pruned trial should carry no final metrics")
			}
		}
	}
	if pruned == 0 {
		t.Fatal("threshold pruner never fired")
	}
	if len(rep.Completed())+pruned != 30 {
		t.Fatalf("completed %d + pruned %d != 30", len(rep.Completed()), pruned)
	}
}

func TestGridExhaustionStopsEarly(t *testing.T) {
	s := newStudy()
	s.Space = param.MustSpace(param.NewIntSet("x", 1, 2), param.NewIntSet("y", 1, 2))
	s.Explorer = &search.GridSearch{}
	s.Objective = func(a param.Assignment, seed uint64, rec *Recorder) error {
		rec.Report("cost", a.Value("x").Float())
		rec.Report("quality", a.Value("y").Float())
		return nil
	}
	rep, err := s.Run(100)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Trials) != 4 {
		t.Fatalf("grid should stop at 4 trials, got %d", len(rep.Trials))
	}
}

func TestReportHelpers(t *testing.T) {
	s := newStudy()
	rep, err := s.Run(40)
	if err != nil {
		t.Fatal(err)
	}
	best, ok := rep.Best("quality")
	if !ok {
		t.Fatal("no best")
	}
	for _, tr := range rep.Completed() {
		if tr.Values.At("quality") > best.Values.At("quality") {
			t.Fatal("Best is not best")
		}
	}
	if _, ok := rep.Best("nope"); ok {
		t.Fatal("unknown metric Best should fail")
	}

	pts, dirs, err := rep.Points("cost", "quality")
	if err != nil || len(pts) != len(rep.Completed()) || len(dirs) != 2 {
		t.Fatalf("Points: %v %d", err, len(pts))
	}
	if _, _, err := rep.Points("nope"); err == nil {
		t.Fatal("unknown metric Points should fail")
	}

	ids, err := rep.FrontIDs(0, "cost", "quality")
	if err != nil || len(ids) == 0 {
		t.Fatalf("FrontIDs: %v %v", err, ids)
	}
	// ε-front must be a superset.
	eids, err := rep.FrontIDs(0.05, "cost", "quality")
	if err != nil {
		t.Fatal(err)
	}
	super := map[int]bool{}
	for _, id := range eids {
		super[id] = true
	}
	for _, id := range ids {
		if !super[id] {
			t.Fatal("eps front lost a strict-front member")
		}
	}
}

func TestSortedRanker(t *testing.T) {
	trials := []Trial{
		{ID: 1, Values: ValuesFromMap(map[string]float64{"m": 3})},
		{ID: 2, Values: ValuesFromMap(map[string]float64{"m": 1})},
		{ID: 3, Values: ValuesFromMap(map[string]float64{"m": 2})},
	}
	ms := []Metric{{Name: "m", Direction: pareto.Minimize}}
	rk := SortedRanker{By: "m"}.Rank(trials, ms)
	if rk.Ordered[0] != 1 || rk.Ordered[1] != 2 || rk.Ordered[2] != 0 {
		t.Fatalf("sorted order %v", rk.Ordered)
	}
	msMax := []Metric{{Name: "m", Direction: pareto.Maximize}}
	rk = SortedRanker{}.Rank(trials, msMax)
	if rk.Ordered[0] != 0 {
		t.Fatalf("max order %v", rk.Ordered)
	}
}

func TestWeightedRanker(t *testing.T) {
	trials := []Trial{
		{ID: 1, Values: ValuesFromMap(map[string]float64{"q": 1, "c": 10})},
		{ID: 2, Values: ValuesFromMap(map[string]float64{"q": 0.9, "c": 1})},
		{ID: 3, Values: ValuesFromMap(map[string]float64{"q": 0, "c": 10})},
	}
	ms := []Metric{
		{Name: "q", Direction: pareto.Maximize},
		{Name: "c", Direction: pareto.Minimize},
	}
	rk := WeightedRanker{Weights: map[string]float64{"q": 1, "c": 1}}.Rank(trials, ms)
	if rk.Ordered[0] != 1 {
		t.Fatalf("trial 2 should win the balanced weighting: %v", rk.Ordered)
	}
	if trials[rk.Ordered[len(rk.Ordered)-1]].ID != 3 {
		t.Fatalf("trial 3 should be last: %v", rk.Ordered)
	}
	if got := (WeightedRanker{}).Rank(nil, ms); got.Method != "weighted" {
		t.Fatal("empty rank")
	}
}

func TestParetoRankerEps(t *testing.T) {
	trials := []Trial{
		{ID: 1, Values: ValuesFromMap(map[string]float64{"q": 1.00, "c": 100})},
		{ID: 2, Values: ValuesFromMap(map[string]float64{"q": 0.99, "c": 101})}, // near-tie
		{ID: 3, Values: ValuesFromMap(map[string]float64{"q": 0.2, "c": 300})},
	}
	ms := []Metric{
		{Name: "q", Direction: pareto.Maximize},
		{Name: "c", Direction: pareto.Minimize},
	}
	strict := ParetoRanker{}.Rank(trials, ms)
	if len(strict.Fronts[0]) != 1 {
		t.Fatalf("strict front %v", strict.Fronts[0])
	}
	loose := ParetoRanker{Eps: 0.05}.Rank(trials, ms)
	if len(loose.Fronts[0]) != 2 {
		t.Fatalf("eps front %v", loose.Fronts[0])
	}
}

func TestIntermediateWithoutPruner(t *testing.T) {
	s := newStudy()
	s.Objective = func(a param.Assignment, seed uint64, rec *Recorder) error {
		for i := 0; i < 3; i++ {
			if !rec.Intermediate(float64(i)) {
				t.Error("no pruner: Intermediate must always continue")
			}
		}
		rec.Report("cost", 1)
		rec.Report("quality", 1)
		return nil
	}
	rep, err := s.Run(2)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Trials[0].Intermediate) != 3 {
		t.Fatal("intermediates not recorded")
	}
}

func TestNaNObjectiveStillRecorded(t *testing.T) {
	s := newStudy()
	s.Objective = func(a param.Assignment, seed uint64, rec *Recorder) error {
		rec.Report("cost", math.NaN())
		rec.Report("quality", 1)
		return nil
	}
	rep, err := s.Run(1)
	if err != nil {
		t.Fatal(err)
	}
	if !math.IsNaN(rep.Trials[0].Values.At("cost")) {
		t.Fatal("NaN lost")
	}
}

func TestRunContextCancelReturnsPartialReport(t *testing.T) {
	s := newStudy()
	ctx, cancel := context.WithCancel(context.Background())
	started := make(chan struct{}, 1)
	var executed atomic.Int32
	s.Objective = func(a param.Assignment, seed uint64, rec *Recorder) error {
		executed.Add(1)
		select {
		case started <- struct{}{}:
		default:
		}
		if executed.Load() > 3 {
			// Later trials wait on the context like a real training job.
			<-rec.Context().Done()
			return rec.Context().Err()
		}
		rec.Report("cost", a.Value("x").Float())
		rec.Report("quality", 1)
		return nil
	}
	done := make(chan struct{})
	var rep *Report
	var runErr error
	go func() {
		rep, runErr = s.RunContext(ctx, 100)
		close(done)
	}()
	<-started
	for executed.Load() <= 3 {
		time.Sleep(time.Millisecond)
	}
	cancel()
	<-done
	if !errors.Is(runErr, context.Canceled) {
		t.Fatalf("err=%v want context.Canceled", runErr)
	}
	if rep == nil {
		t.Fatal("cancelled run must still return the partial report")
	}
	if len(rep.Trials) == 0 || len(rep.Trials) >= 100 {
		t.Fatalf("partial trials=%d", len(rep.Trials))
	}
	for _, tr := range rep.Trials {
		if tr.Err != nil {
			t.Fatalf("interrupted trial leaked into the report as failed: %v", tr.Err)
		}
	}
}

func TestIntermediateStopsOnCancel(t *testing.T) {
	s := newStudy()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	recorded := false
	s.OnTrial = func(Trial) { recorded = true }
	s.Objective = func(a param.Assignment, seed uint64, rec *Recorder) error {
		for rec.Intermediate(0) {
			t.Fatal("Intermediate must return false once the context is cancelled")
		}
		return ErrPruned
	}
	// The proposal loop observes the cancelled context before submitting
	// anything, so drive runTrial directly.
	s.PrimaryMetric = "quality"
	if err := s.validate(); err != nil {
		t.Fatal(err)
	}
	s.runTrial(ctx, Trial{ID: 1, Params: testSpace().Sample(mathxRand(1))}, &trialRunner{})
	if recorded {
		t.Fatal("interrupted trial must not reach OnTrial")
	}
	if got := s.Snapshot(); len(got) != 0 {
		t.Fatalf("interrupted trial recorded: %v", got)
	}
}

func mathxRand(seed uint64) *rand.Rand { return mathx.NewRand(seed) }

// TestResumeReproducesUninterruptedRun is the determinism core of campaign
// resume: running 10 trials, seeding a fresh study with them, and finishing
// to 20 must yield exactly the trials and front of a straight 20-trial run.
func TestResumeReproducesUninterruptedRun(t *testing.T) {
	full, err := newStudy().Run(20)
	if err != nil {
		t.Fatal(err)
	}

	half, err := newStudy().Run(10)
	if err != nil {
		t.Fatal(err)
	}
	resumed := newStudy()
	var executed []int
	var mu sync.Mutex
	inner := resumed.Objective
	resumed.Objective = func(a param.Assignment, seed uint64, rec *Recorder) error {
		mu.Lock()
		executed = append(executed, 1)
		mu.Unlock()
		return inner(a, seed, rec)
	}
	if err := resumed.Resume(half.Trials); err != nil {
		t.Fatal(err)
	}
	rep, err := resumed.Run(20)
	if err != nil {
		t.Fatal(err)
	}
	if len(executed) != 10 {
		t.Fatalf("resume re-executed finished trials: %d executions, want 10", len(executed))
	}
	if len(rep.Trials) != 20 {
		t.Fatalf("resumed run has %d trials", len(rep.Trials))
	}
	for i := range rep.Trials {
		a, b := rep.Trials[i], full.Trials[i]
		if a.ID != b.ID || a.Params.Key() != b.Params.Key() || a.Seed != b.Seed {
			t.Fatalf("trial %d diverged: %+v vs %+v", i, a, b)
		}
		if a.Values.At("cost") != b.Values.At("cost") || a.Values.At("quality") != b.Values.At("quality") {
			t.Fatalf("trial %d values diverged", i)
		}
	}
	fullFront, _ := full.FrontIDs(0, "cost", "quality")
	resFront, _ := rep.FrontIDs(0, "cost", "quality")
	if fmt.Sprint(fullFront) != fmt.Sprint(resFront) {
		t.Fatalf("fronts diverged: %v vs %v", fullFront, resFront)
	}
}

// TestResumeWithGap covers the parallel-crash shape: trials 1 and 3 were
// journaled, trial 2 was in flight and lost. Resume must re-execute only
// trial 2 (and the remainder) with its original parameters.
func TestResumeWithGap(t *testing.T) {
	full, err := newStudy().Run(5)
	if err != nil {
		t.Fatal(err)
	}
	resumed := newStudy()
	if err := resumed.Resume([]Trial{full.Trials[0], full.Trials[2]}); err != nil {
		t.Fatal(err)
	}
	var mu sync.Mutex
	executedIDs := map[string]bool{}
	inner := resumed.Objective
	resumed.Objective = func(a param.Assignment, seed uint64, rec *Recorder) error {
		mu.Lock()
		executedIDs[a.Key()] = true
		mu.Unlock()
		return inner(a, seed, rec)
	}
	rep, err := resumed.Run(5)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Trials) != 5 {
		t.Fatalf("trials=%d", len(rep.Trials))
	}
	if len(executedIDs) != 3 {
		t.Fatalf("executions=%d want 3 (trials 2, 4, 5)", len(executedIDs))
	}
	if executedIDs[full.Trials[0].Params.Key()] || executedIDs[full.Trials[2].Params.Key()] {
		t.Fatal("finished trial re-executed")
	}
	if !executedIDs[full.Trials[1].Params.Key()] {
		t.Fatal("lost trial 2 was not re-executed")
	}
	for i := range rep.Trials {
		if rep.Trials[i].Params.Key() != full.Trials[i].Params.Key() {
			t.Fatalf("trial %d params diverged after gap resume", i+1)
		}
	}
}

func TestResumeRejectsBadTrials(t *testing.T) {
	s := newStudy()
	if err := s.Resume([]Trial{{ID: 0}}); err == nil {
		t.Fatal("ID 0 must be rejected")
	}
	if err := s.Resume([]Trial{{ID: 1}, {ID: 1}}); err == nil {
		t.Fatal("duplicate IDs must be rejected")
	}
	if err := s.Resume([]Trial{{ID: 2}}); err != nil {
		t.Fatal(err)
	}
	if err := s.Resume([]Trial{{ID: 2}}); err == nil {
		t.Fatal("cross-call duplicate IDs must be rejected")
	}
	if _, err := s.Run(1); err == nil {
		t.Fatal("resumed ID beyond budget must fail the run")
	}
}

func TestSnapshotDuringRun(t *testing.T) {
	s := newStudy()
	s.Parallelism = 2
	gate := make(chan struct{})
	var once sync.Once
	s.Objective = func(a param.Assignment, seed uint64, rec *Recorder) error {
		rec.Report("cost", a.Value("x").Float())
		rec.Report("quality", 1)
		once.Do(func() { close(gate) })
		return nil
	}
	done := make(chan struct{})
	go func() {
		if _, err := s.Run(30); err != nil {
			t.Error(err)
		}
		close(done)
	}()
	<-gate
	snap := s.Snapshot()
	for i := 1; i < len(snap); i++ {
		if snap[i].ID <= snap[i-1].ID {
			t.Fatal("snapshot not in ID order")
		}
	}
	<-done
	if len(s.Snapshot()) != 30 {
		t.Fatalf("final snapshot %d", len(s.Snapshot()))
	}
}
