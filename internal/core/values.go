package core

import (
	"sort"
	"strings"
)

// MetricValue is one recorded metric of a trial.
type MetricValue struct {
	Name string
	V    float64
}

// Values holds a trial's recorded metrics as a name-sorted slice. Like
// param.Assignment, the slice representation keeps a whole trial's
// metrics in one allocation — and lets Study carve them out of a
// per-worker slab, so a million-trial campaign allocates metric storage
// a handful of times instead of per trial. A nil Values is a valid empty
// set; Set inserts in sorted position.
type Values []MetricValue

// Get returns the value recorded for name.
func (v Values) Get(name string) (float64, bool) {
	for _, mv := range v {
		if mv.Name == name {
			return mv.V, true
		}
	}
	return 0, false
}

// At returns the value recorded for name (0 if absent).
func (v Values) At(name string) float64 {
	x, _ := v.Get(name)
	return x
}

// Has reports whether name was recorded.
func (v Values) Has(name string) bool {
	_, ok := v.Get(name)
	return ok
}

// Set records name=x, inserting in sorted position.
func (v *Values) Set(name string, x float64) {
	s := *v
	i, found := sort.Find(len(s), func(i int) int { return strings.Compare(name, s[i].Name) })
	if found {
		s[i].V = x
		return
	}
	s = append(s, MetricValue{})
	copy(s[i+1:], s[i:])
	s[i] = MetricValue{Name: name, V: x}
	*v = s
}

// Clone returns a copy.
func (v Values) Clone() Values {
	out := make(Values, len(v))
	copy(out, v)
	return out
}

// Map converts to a name→value map (for wire formats that use one).
func (v Values) Map() map[string]float64 {
	out := make(map[string]float64, len(v))
	for _, mv := range v {
		out[mv.Name] = mv.V
	}
	return out
}

// ValuesFromMap builds a sorted Values from a map.
func ValuesFromMap(m map[string]float64) Values {
	if len(m) == 0 {
		return nil
	}
	out := make(Values, 0, len(m))
	for name, x := range m {
		out.Set(name, x)
	}
	return out
}
