// Package core implements the paper's primary contribution: a methodology
// for building decision-analysis tools for (distributed) machine-learning
// projects. A Study wires the five stages together:
//
//	(a) the case study        — CaseStudy metadata plus an Objective that
//	                            knows how to run one learning task;
//	(b) learning configs      — a param.Space of algorithm-, system- and
//	                            environment-dependent parameters;
//	(c) exploratory method    — a search.Explorer (Random Search, Grid
//	                            Search, TPE, ...);
//	(d) evaluation metrics    — Metrics recorded by every trial (reward,
//	                            computation time, power consumption, ...);
//	(e) ranking method        — a Ranker (Pareto fronts, sorted arrays)
//	                            producing the decision analysis.
//
// Study.Run executes trials (optionally in parallel), collects the metric
// values, and returns a Report that the report package renders as tables
// and Pareto-front plots.
package core

import (
	"context"
	"errors"
	"fmt"
	"slices"
	"sort"
	"sync"

	"rldecide/internal/mathx"
	"rldecide/internal/param"
	"rldecide/internal/pareto"
	"rldecide/internal/search"
)

// CaseStudy is stage (a): what problem the study is about.
type CaseStudy struct {
	Name        string
	Description string
}

// Metric is one evaluation criterion of stage (d).
type Metric struct {
	Name      string
	Unit      string
	Direction pareto.Direction
}

// Trial is one evaluated learning configuration.
type Trial struct {
	ID     int
	Params param.Assignment
	// Values holds the recorded metrics (name-sorted).
	Values Values
	// Intermediate holds the trial's intermediate objective reports (used
	// by pruners).
	Intermediate []float64
	Pruned       bool
	Err          error
	Seed         uint64
	// Worker names the executor that evaluated the trial ("local", or a
	// remote worker's registered name). Attribution only: replay and
	// ranking ignore it, so a campaign resumes identically whether its
	// journal was written by one process or a fleet.
	Worker string
	// WallMs is the trial's measured wall-clock compute time in
	// milliseconds (via power.Stopwatch). Informational only, like
	// Worker: replay, ranking, and determinism fingerprints ignore it —
	// the same campaign re-run on different hardware records different
	// WallMs but identical results.
	WallMs float64
}

// Recorder is handed to the objective to report metric values and
// intermediate progress.
type Recorder struct {
	study       *Study
	trial       *Trial
	ctx         context.Context
	mu          sync.Mutex
	interrupted bool
}

// Context returns the run context of the trial. Long-running objectives
// should watch it and return its error when cancelled so the study can
// drain quickly; an interrupted trial is discarded (not recorded, not
// journaled) and is re-proposed when the campaign resumes.
func (r *Recorder) Context() context.Context {
	if r.ctx == nil {
		return context.Background()
	}
	return r.ctx
}

// TrialID returns the ID of the trial being recorded (0 for standalone
// recorders from NewRecorder). Executors use it to address dispatches.
func (r *Recorder) TrialID() int { return r.trial.ID }

// SetWorker records which executor evaluated the trial (see Trial.Worker).
func (r *Recorder) SetWorker(name string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.trial.Worker = name
}

// SetWallMs records the trial's measured wall-clock compute time (see
// Trial.WallMs).
func (r *Recorder) SetWallMs(ms float64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.trial.WallMs = ms
}

// NewRecorder returns a standalone recorder over the given metrics for
// objective execution outside a Study — the shape remote workers use: they
// rebuild the objective from a dispatched spec, run it against this
// recorder, and ship the collected trial values back. The returned Trial
// accumulates the reported values.
func NewRecorder(ctx context.Context, metrics []Metric) (*Recorder, *Trial) {
	t := &Trial{Values: make(Values, 0, len(metrics))}
	return &Recorder{study: &Study{Metrics: metrics}, trial: t, ctx: ctx}, t
}

func (r *Recorder) wasInterrupted() bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.interrupted
}

// Report records the final value of a metric. Unknown metric names panic:
// the metric list is the study's contract.
func (r *Recorder) Report(metric string, value float64) {
	if !r.study.hasMetric(metric) {
		panic(fmt.Sprintf("core: trial reported unknown metric %q", metric))
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.trial.Values.Set(metric, value)
}

// Intermediate reports a progress value of the study's primary metric and
// returns false when the pruner decides the trial should stop. Objectives
// that support pruning should return early (ErrPruned) when it returns
// false.
func (r *Recorder) Intermediate(value float64) bool {
	if r.ctx != nil && r.ctx.Err() != nil {
		// The run was cancelled: stop the objective through the same
		// early-return path pruning uses. The trial is discarded, not
		// recorded as pruned.
		r.mu.Lock()
		r.interrupted = true
		r.mu.Unlock()
		return false
	}
	r.mu.Lock()
	step := len(r.trial.Intermediate)
	r.trial.Intermediate = append(r.trial.Intermediate, value)
	r.mu.Unlock()
	if r.study.Pruner == nil {
		return true
	}
	hist := r.study.finishedIntermediates()
	prune := r.study.Pruner.ShouldPrune(step, value, r.study.primary().Direction == pareto.Maximize, hist)
	if prune {
		r.mu.Lock()
		r.trial.Pruned = true
		r.mu.Unlock()
	}
	return !prune
}

// ErrPruned is returned by objectives that stop after a pruning decision.
var ErrPruned = fmt.Errorf("core: trial pruned")

// Objective runs one learning configuration and reports its metrics.
type Objective func(a param.Assignment, seed uint64, rec *Recorder) error

// Ranker is stage (e): it turns finished trials into a decision analysis.
type Ranker interface {
	// Name identifies the ranking method.
	Name() string
	// Rank orders/partitions the trials (indices into the slice).
	Rank(trials []Trial, metrics []Metric) Ranking
}

// Ranking is the ranker's output: either successive fronts (Pareto) or a
// best-first ordering (sorted array), or both.
type Ranking struct {
	Method  string
	Fronts  [][]int // Fronts[0] is the non-dominated set, when applicable
	Ordered []int   // best-first order, when applicable
}

// Study is the assembled methodology instance.
type Study struct {
	CaseStudy CaseStudy
	Space     *param.Space
	Explorer  search.Explorer
	Metrics   []Metric
	Ranker    Ranker
	Objective Objective

	// PrimaryMetric is the metric single-objective explorers and pruners
	// optimize (default: the first metric).
	PrimaryMetric string

	// Pruner optionally stops unpromising trials early.
	Pruner search.Pruner

	// Parallelism is the number of trials evaluated concurrently
	// (default 1; with more, history-dependent explorers see whatever has
	// finished at proposal time, as in distributed Optuna).
	Parallelism int

	// Seed drives the explorer and derives per-trial seeds.
	Seed uint64

	// OnTrial, when set, is called once for every finished trial (in
	// completion order, serialized even when Parallelism > 1) — the hook
	// the journal package uses to persist campaigns. Trials interrupted
	// by context cancellation are never passed to OnTrial.
	OnTrial func(Trial)

	mu     sync.Mutex
	hookMu sync.Mutex
	trials []Trial
}

func (s *Study) validate() error {
	if s.Space == nil {
		return fmt.Errorf("core: study needs a parameter space")
	}
	if s.Explorer == nil {
		return fmt.Errorf("core: study needs an explorer")
	}
	if len(s.Metrics) == 0 {
		return fmt.Errorf("core: study needs at least one metric")
	}
	if s.Objective == nil {
		return fmt.Errorf("core: study needs an objective")
	}
	if s.Ranker == nil {
		return fmt.Errorf("core: study needs a ranker")
	}
	if s.PrimaryMetric == "" {
		s.PrimaryMetric = s.Metrics[0].Name
	}
	if !s.hasMetric(s.PrimaryMetric) {
		return fmt.Errorf("core: primary metric %q is not in the metric list", s.PrimaryMetric)
	}
	seen := map[string]bool{}
	for _, m := range s.Metrics {
		if m.Name == "" {
			return fmt.Errorf("core: unnamed metric")
		}
		if seen[m.Name] {
			return fmt.Errorf("core: duplicate metric %q", m.Name)
		}
		seen[m.Name] = true
	}
	return nil
}

func (s *Study) hasMetric(name string) bool {
	for _, m := range s.Metrics {
		if m.Name == name {
			return true
		}
	}
	return false
}

func (s *Study) primary() Metric {
	for _, m := range s.Metrics {
		if m.Name == s.PrimaryMetric {
			return m
		}
	}
	return s.Metrics[0]
}

// history converts finished trials into explorer observations.
func (s *Study) history() []search.Observation {
	s.mu.Lock()
	defer s.mu.Unlock()
	prim := s.primary()
	out := make([]search.Observation, 0, len(s.trials))
	for _, t := range s.trials {
		obs := search.Observation{
			Assignment: t.Params,
			Maximize:   prim.Direction == pareto.Maximize,
			Pruned:     t.Pruned,
			Failed:     t.Err != nil,
		}
		if v, ok := t.Values.Get(prim.Name); ok {
			obs.Objective = v
		} else {
			obs.Failed = true
		}
		out = append(out, obs)
	}
	return out
}

// finishedIntermediates snapshots finished trials' intermediate curves.
func (s *Study) finishedIntermediates() [][]float64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	var out [][]float64
	for _, t := range s.trials {
		if len(t.Intermediate) > 0 && !t.Pruned && t.Err == nil {
			out = append(out, t.Intermediate)
		}
	}
	return out
}

// Resume seeds the study with previously finished trials (typically loaded
// from a journal) before Run/RunContext is called. Resumed trials count
// against the trial budget and are visible to the explorer as history;
// RunContext replays the explorer over their IDs and re-executes only the
// missing ones, so a campaign restarted with the same Seed and a
// deterministic explorer (Random Search, Grid Search) produces exactly the
// trials — and therefore the ranking — of an uninterrupted run.
func (s *Study) Resume(trials []Trial) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	seen := make(map[int]bool, len(s.trials))
	for _, t := range s.trials {
		seen[t.ID] = true
	}
	for _, t := range trials {
		if t.ID <= 0 {
			return fmt.Errorf("core: resumed trial has invalid ID %d", t.ID)
		}
		if seen[t.ID] {
			return fmt.Errorf("core: duplicate resumed trial ID %d", t.ID)
		}
		seen[t.ID] = true
		s.trials = append(s.trials, t)
	}
	return nil
}

// Snapshot returns a copy of the trials finished so far, in ID order. It is
// safe to call concurrently with a running study, which is how studyd
// serves live results.
func (s *Study) Snapshot() []Trial {
	s.mu.Lock()
	trials := append([]Trial(nil), s.trials...)
	s.mu.Unlock()
	sortTrialsByID(trials)
	return trials
}

func sortTrialsByID(trials []Trial) {
	sort.Slice(trials, func(i, j int) bool { return trials[i].ID < trials[j].ID })
}

// Run executes up to nTrials trials and returns the study report. It stops
// early when the explorer is exhausted (e.g. a completed grid).
func (s *Study) Run(nTrials int) (*Report, error) {
	return s.RunContext(context.Background(), nTrials)
}

// RunContext is Run with cancellation: when ctx is cancelled the study
// stops proposing trials, discards in-flight trials that observe the
// cancellation (through Recorder.Context or Recorder.Intermediate), waits
// for the workers to drain, and returns the partial report alongside
// ctx's error. Discarded trials are re-proposed on the next run when the
// study is reseeded with Resume, which is what makes campaigns crash-safe.
func (s *Study) RunContext(ctx context.Context, nTrials int) (*Report, error) {
	if err := s.validate(); err != nil {
		return nil, err
	}
	if nTrials <= 0 {
		return nil, fmt.Errorf("core: Run needs nTrials > 0")
	}
	workers := s.Parallelism
	if workers <= 0 {
		workers = 1
	}

	// The seed schedule is a pure function of s.Seed and the trial index,
	// so a resumed run rebuilds the exact per-trial seeds of the original.
	seeder := mathx.NewSeeder(s.Seed)
	explorerRng := seeder.NewRand()
	trialSeeds := make([]uint64, nTrials)
	for i := range trialSeeds {
		trialSeeds[i] = seeder.Next()
	}

	s.mu.Lock()
	finished := make(map[int]bool, len(s.trials))
	for _, t := range s.trials {
		finished[t.ID] = true
	}
	s.mu.Unlock()
	for id := range finished {
		if id > nTrials {
			return nil, fmt.Errorf("core: resumed trial ID %d exceeds the %d-trial budget", id, nTrials)
		}
	}

	// The trial history grows to exactly nTrials entries; reserving it up
	// front keeps append from reallocating mid-campaign.
	s.mu.Lock()
	if n := nTrials - len(s.trials); n > 0 {
		s.trials = slices.Grow(s.trials, n)
	}
	s.mu.Unlock()

	jobs := make(chan Trial)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			// Each worker reuses one Recorder/Trial slot and carves trial
			// metric storage from a private slab (see trialRunner).
			var tr trialRunner
			for t := range jobs {
				if ctx.Err() != nil {
					// Drained, not executed: the trial is re-proposed when
					// the campaign resumes.
					continue
				}
				s.runTrial(ctx, t, &tr)
			}
		}()
	}

	// History-free explorers (plain random search, grid, LHS) never read
	// the observation list, so skip the per-proposal O(n) conversion —
	// O(n²) over a campaign — entirely.
	historyFree := false
	if hf, ok := s.Explorer.(search.HistoryFree); ok {
		historyFree = hf.IgnoresHistory()
	}
	// In-place explorers propose straight into a slab: proposals are
	// retained for the study's lifetime (Trial.Params), so each dispatched
	// trial gets a cap-limited region and the slab cursor only advances
	// when the proposal is actually kept.
	inPlace, _ := s.Explorer.(search.InPlace)
	var pslab []param.Binding
	np := len(s.Space.Params())

	var spaceErr error
	for id := 1; id <= nTrials && ctx.Err() == nil; id++ {
		var hist []search.Observation
		if !historyFree {
			hist = s.history()
		}
		var a param.Assignment
		var ok bool
		if inPlace != nil {
			if len(pslab) < np {
				pslab = make([]param.Binding, slabTrials*np)
			}
			a, ok = inPlace.NextInto(explorerRng, s.Space, hist, param.Assignment(pslab[:0:np]))
		} else {
			a, ok = s.Explorer.Next(explorerRng, s.Space, hist)
		}
		if !ok {
			break // explorer exhausted
		}
		if !s.Space.Contains(a) {
			spaceErr = fmt.Errorf("core: explorer %s proposed an assignment outside the space: %s", s.Explorer.Name(), a)
			break
		}
		if finished[id] {
			// Replay: the proposal reproduces a trial that already finished
			// in a previous run; advance the explorer but skip execution
			// (the slab region, if any, is overwritten by the next draw).
			continue
		}
		t := Trial{ID: id, Params: a, Seed: trialSeeds[id-1]}
		select {
		case jobs <- t:
			if len(pslab) >= np && len(a) > 0 && &a[0] == &pslab[0] {
				pslab = pslab[np:]
			}
		case <-ctx.Done():
		}
	}
	close(jobs)
	wg.Wait()
	if spaceErr != nil {
		return nil, spaceErr
	}

	s.mu.Lock()
	trials := append([]Trial(nil), s.trials...)
	s.mu.Unlock()
	// Present trials in ID order regardless of completion order.
	sortTrialsByID(trials)

	rep := &Report{
		CaseStudy: s.CaseStudy,
		Metrics:   s.Metrics,
		Trials:    trials,
		Explorer:  s.Explorer.Name(),
	}
	rep.Ranking = s.Ranker.Rank(rep.completed(), s.Metrics)
	rep.Ranker = s.Ranker.Name()
	if err := ctx.Err(); err != nil {
		return rep, err
	}
	return rep, nil
}

// slabTrials is how many trials' worth of storage one slab chunk holds
// (both the proposal slab in RunContext and each worker's metric slab).
const slabTrials = 64

// trialRunner is one worker's reusable execution state: a Recorder and a
// Trial slot shared across the worker's trials — so neither escapes to
// the heap per trial — plus a metric-value slab that trial Values are
// carved from in cap-limited regions (a region can never grow into its
// neighbor: an append past the metric count reallocates).
type trialRunner struct {
	rec  Recorder
	slot Trial
	vals []MetricValue
}

// runTrial executes one trial and appends it to the study history.
func (s *Study) runTrial(ctx context.Context, t Trial, tr *trialRunner) {
	nm := len(s.Metrics)
	if cap(tr.vals) < nm {
		tr.vals = make([]MetricValue, slabTrials*nm)
	}
	t.Values = Values(tr.vals[:0:nm])
	tr.vals = tr.vals[nm:]
	tr.slot = t
	rec := &tr.rec
	rec.study = s
	rec.trial = &tr.slot
	rec.ctx = ctx
	rec.interrupted = false
	err := func() (err error) {
		defer func() {
			if r := recover(); r != nil {
				err = fmt.Errorf("core: objective panicked: %v", r)
			}
		}()
		return s.Objective(tr.slot.Params, tr.slot.Seed, rec)
	}()
	if ctx.Err() != nil {
		// Distinguish "failed" from "interrupted": a trial cut short by
		// cancellation is dropped entirely so resume re-runs it.
		if rec.wasInterrupted() || errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
			return
		}
	}
	if err != nil && err != ErrPruned {
		tr.slot.Err = err
	}
	s.mu.Lock()
	s.trials = append(s.trials, tr.slot)
	hook := s.OnTrial
	s.mu.Unlock()
	if hook != nil {
		// Serialize the hook so journal consumers see one trial at a time
		// even under Parallelism > 1.
		s.hookMu.Lock()
		hook(tr.slot)
		s.hookMu.Unlock()
	}
}
