// Package power models CPU power draw and energy accounting for the
// virtual cluster. The paper measures power consumption "based on the CPU
// usage, computed as an equivalence with a consumption curve of the CPU";
// this package is exactly that consumption curve plus an integrator that
// turns utilization-over-virtual-time into joules.
package power

import (
	"fmt"
	"sort"
)

// Point is one (utilization, watts) sample of a consumption curve.
type Point struct {
	Util  float64 // CPU utilization in [0, 1]
	Watts float64
}

// Curve is a piecewise-linear CPU consumption curve. Points must be sorted
// by Util with Util[0] == 0 and Util[last] == 1.
type Curve struct {
	points []Point
}

// NewCurve validates and returns a curve over the given points.
func NewCurve(points []Point) (Curve, error) {
	if len(points) < 2 {
		return Curve{}, fmt.Errorf("power: curve needs at least 2 points")
	}
	if !sort.SliceIsSorted(points, func(i, j int) bool { return points[i].Util < points[j].Util }) {
		return Curve{}, fmt.Errorf("power: curve points must be sorted by utilization")
	}
	if points[0].Util != 0 || points[len(points)-1].Util != 1 {
		return Curve{}, fmt.Errorf("power: curve must span utilization 0..1")
	}
	for i := 1; i < len(points); i++ {
		if points[i].Watts < points[i-1].Watts {
			return Curve{}, fmt.Errorf("power: curve must be non-decreasing")
		}
	}
	return Curve{points: points}, nil
}

// MustCurve is NewCurve that panics on error (for package-level defaults).
func MustCurve(points []Point) Curve {
	c, err := NewCurve(points)
	if err != nil {
		panic(err)
	}
	return c
}

// XeonW2102 returns the consumption curve used for the paper's nodes
// (Intel Xeon W-2102, 4 cores): ~10 W idle rising to ~42 W with all cores
// busy, slightly concave as typical for package power.
func XeonW2102() Curve {
	return MustCurve([]Point{
		{0, 10},
		{0.25, 21},
		{0.5, 29},
		{0.75, 36},
		{1, 42},
	})
}

// Watts returns the interpolated power draw at utilization u (clamped to
// [0, 1]).
func (c Curve) Watts(u float64) float64 {
	if u <= 0 {
		return c.points[0].Watts
	}
	if u >= 1 {
		return c.points[len(c.points)-1].Watts
	}
	for i := 1; i < len(c.points); i++ {
		if u <= c.points[i].Util {
			lo, hi := c.points[i-1], c.points[i]
			f := (u - lo.Util) / (hi.Util - lo.Util)
			return lo.Watts + f*(hi.Watts-lo.Watts)
		}
	}
	return c.points[len(c.points)-1].Watts
}

// IdleWatts returns the idle draw.
func (c Curve) IdleWatts() float64 { return c.points[0].Watts }

// MaxWatts returns the full-load draw.
func (c Curve) MaxWatts() float64 { return c.points[len(c.points)-1].Watts }

// Meter integrates energy over (utilization, duration) intervals.
// The zero value is unusable; construct with NewMeter.
type Meter struct {
	curve   Curve
	joules  float64
	seconds float64
}

// NewMeter returns a Meter over curve.
func NewMeter(curve Curve) *Meter { return &Meter{curve: curve} }

// Add accounts d seconds at utilization u. Negative durations panic.
func (m *Meter) Add(u, d float64) {
	if d < 0 {
		panic("power: negative duration")
	}
	m.joules += m.curve.Watts(u) * d
	m.seconds += d
}

// Joules returns the accumulated energy.
func (m *Meter) Joules() float64 { return m.joules }

// KiloJoules returns the accumulated energy in kJ.
func (m *Meter) KiloJoules() float64 { return m.joules / 1000 }

// Seconds returns the accounted time.
func (m *Meter) Seconds() float64 { return m.seconds }
