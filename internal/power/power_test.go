package power

import (
	"math"
	"testing"
	"testing/quick"
	"time"
)

func TestCurveValidation(t *testing.T) {
	cases := []struct {
		pts  []Point
		want bool
	}{
		{[]Point{{0, 10}, {1, 40}}, true},
		{[]Point{{0, 10}}, false},                    // too few
		{[]Point{{0.1, 10}, {1, 40}}, false},         // no zero point
		{[]Point{{0, 10}, {0.9, 40}}, false},         // no full point
		{[]Point{{0, 10}, {0.5, 5}, {1, 40}}, false}, // decreasing
		{[]Point{{0, 10}, {1, 40}, {0.5, 20}}, false},
	}
	for i, c := range cases {
		_, err := NewCurve(c.pts)
		if (err == nil) != c.want {
			t.Errorf("case %d: err=%v want ok=%v", i, err, c.want)
		}
	}
}

func TestCurveInterpolation(t *testing.T) {
	c := MustCurve([]Point{{0, 10}, {0.5, 20}, {1, 40}})
	cases := []struct{ u, want float64 }{
		{0, 10}, {0.25, 15}, {0.5, 20}, {0.75, 30}, {1, 40},
		{-1, 10}, {2, 40},
	}
	for _, cs := range cases {
		if got := c.Watts(cs.u); math.Abs(got-cs.want) > 1e-12 {
			t.Errorf("Watts(%v)=%v want %v", cs.u, got, cs.want)
		}
	}
	if c.IdleWatts() != 10 || c.MaxWatts() != 40 {
		t.Error("Idle/Max wrong")
	}
}

func TestCurveMonotoneProperty(t *testing.T) {
	c := XeonW2102()
	f := func(a, b uint8) bool {
		ua, ub := float64(a)/255, float64(b)/255
		if ua > ub {
			ua, ub = ub, ua
		}
		return c.Watts(ua) <= c.Watts(ub)+1e-12
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestXeonAnchors(t *testing.T) {
	c := XeonW2102()
	if c.IdleWatts() != 10 || c.MaxWatts() != 42 {
		t.Fatalf("Xeon curve anchors: idle=%v max=%v", c.IdleWatts(), c.MaxWatts())
	}
}

func TestMeter(t *testing.T) {
	m := NewMeter(MustCurve([]Point{{0, 10}, {1, 40}}))
	m.Add(1, 100)   // 4000 J
	m.Add(0, 50)    // 500 J
	m.Add(0.5, 100) // 2500 J
	if math.Abs(m.Joules()-7000) > 1e-9 {
		t.Fatalf("Joules=%v want 7000", m.Joules())
	}
	if math.Abs(m.KiloJoules()-7) > 1e-12 {
		t.Fatal("KiloJoules wrong")
	}
	if m.Seconds() != 250 {
		t.Fatal("Seconds wrong")
	}
}

func TestMeterNegativePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("negative duration should panic")
		}
	}()
	NewMeter(XeonW2102()).Add(0.5, -1)
}

func TestStopwatchInjectedClock(t *testing.T) {
	// The stopwatch measures through an injectable clock so replays can
	// freeze time; verify it reports exactly the injected advance.
	now := time.Unix(1000, 0)
	clock := func() time.Time { return now }
	w := StartStopwatchAt(clock)
	if got := w.Elapsed(); got != 0 {
		t.Fatalf("fresh stopwatch elapsed %v, want 0", got)
	}
	now = now.Add(1500 * time.Millisecond)
	if got := w.Elapsed(); got != 1500*time.Millisecond {
		t.Fatalf("elapsed %v, want 1.5s", got)
	}
	if got := w.ElapsedSeconds(); got != 1.5 {
		t.Fatalf("elapsed seconds %v, want 1.5", got)
	}
}

func TestStopwatchRealClock(t *testing.T) {
	w := StartStopwatch()
	if w.Elapsed() < 0 {
		t.Fatal("real stopwatch went backwards")
	}
}
