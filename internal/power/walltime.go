package power

import "time"

// Stopwatch is the repository's single sanctioned wall-clock seam. The
// nondeterm-time lint rule forbids time.Now/time.Since outside the
// measurement layer because wall-clock values differ between a campaign
// and its journal replay; anything that wants to report human-facing wall
// time (campaign progress, trial timing headed for a metric) measures
// through a Stopwatch instead of reading the clock directly. The clock
// source is injectable so tests — and deterministic replays — can freeze
// it.
type Stopwatch struct {
	start time.Time
	now   func() time.Time
}

// StartStopwatch starts a stopwatch on the real clock. This function and
// the power Meter are the only places trial-visible timing may originate.
func StartStopwatch() *Stopwatch {
	return StartStopwatchAt(time.Now)
}

// StartStopwatchAt starts a stopwatch on an injected clock source, for
// tests and frozen replays.
func StartStopwatchAt(now func() time.Time) *Stopwatch {
	return &Stopwatch{start: now(), now: now}
}

// Elapsed returns the wall time since the stopwatch started.
func (s *Stopwatch) Elapsed() time.Duration { return s.now().Sub(s.start) }

// ElapsedSeconds returns Elapsed in seconds, the unit the power Meter and
// the paper's computation-time metric use.
func (s *Stopwatch) ElapsedSeconds() float64 { return s.Elapsed().Seconds() }
