package experiments

import (
	"fmt"
	"io"
	"sort"

	"rldecide/internal/core"
	"rldecide/internal/report"
)

// FrontEps is the default ε tolerance used when reading the measured
// fronts — the counterpart of reading a measured plot with instrument
// noise (the paper itself reports two front members with identical 201 kJ
// measurements). Figures can override it (Figure.Eps): the reward/power
// figure uses a wider tolerance because both of its axes carry training
// stochasticity.
const FrontEps = 0.05

// Figure identifies one of the paper's Pareto-front figures.
type Figure struct {
	Number int
	X, Y   string // metric names (X = abscissa)
	Title  string
	// PaperFront lists the solution IDs the paper highlights as
	// non-dominated.
	PaperFront []int
	// Eps is the figure's ε-front tolerance.
	Eps float64
}

// Figures returns the paper's three evaluation figures.
func Figures() []Figure {
	return []Figure{
		{
			Number: 4, X: MetricTime, Y: MetricReward,
			Title:      "Fig. 4: Reward vs. Computation Time trade-off",
			PaperFront: []int{2, 5, 11, 16},
			Eps:        FrontEps,
		},
		{
			Number: 5, X: MetricTime, Y: MetricPower,
			Title:      "Fig. 5: Power Consumption vs. Computation Time trade-off",
			PaperFront: []int{2, 5, 11},
			Eps:        FrontEps,
		},
		{
			Number: 6, X: MetricPower, Y: MetricReward,
			Title:      "Fig. 6: Reward vs. Power Consumption trade-off",
			PaperFront: []int{11, 14, 16},
			Eps:        0.12,
		},
	}
}

// FigureByNumber returns the figure definition, or an error.
func FigureByNumber(n int) (Figure, error) {
	for _, f := range Figures() {
		if f.Number == n {
			return f, nil
		}
	}
	return Figure{}, fmt.Errorf("experiments: no figure %d (the evaluation has figures 4, 5 and 6)", n)
}

// MeasuredFront returns the solution IDs on the figure's (ε-)front in the
// given campaign report. SAC trials are excluded, as in the paper's plots
// ("SAC solutions ... could not be displayed in the graph because of the
// scale").
func MeasuredFront(rep *core.Report, fig Figure, eps float64) ([]int, error) {
	ppo := ppoOnlyReport(rep)
	return ppo.FrontIDs(eps, fig.X, fig.Y)
}

// PPOOnly filters a campaign report to its PPO trials — the paper's
// figures exclude the SAC configurations because their rewards are off the
// plotted scale.
func PPOOnly(rep *core.Report) *core.Report { return ppoOnlyReport(rep) }

// ppoOnlyReport filters a campaign report to PPO trials.
func ppoOnlyReport(rep *core.Report) *core.Report {
	out := *rep
	out.Trials = nil
	for _, t := range rep.Trials {
		if t.Params.Value("algo").Str() == "ppo" {
			out.Trials = append(out.Trials, t)
		}
	}
	return &out
}

// RenderFigure writes the figure as SVG (PPO trials only, ε-front
// highlighted).
func RenderFigure(w io.Writer, rep *core.Report, fig Figure) error {
	return report.SVGScatter(w, ppoOnlyReport(rep), report.ScatterSpec{
		X: fig.X, Y: fig.Y, Title: fig.Title, Eps: fig.Eps,
	})
}

// RenderFigureASCII writes the figure as a terminal plot.
func RenderFigureASCII(w io.Writer, rep *core.Report, fig Figure) error {
	return report.ASCIIScatter(w, ppoOnlyReport(rep), report.ScatterSpec{
		X: fig.X, Y: fig.Y, Title: fig.Title, Eps: fig.Eps,
	})
}

// Finding is one narrative claim of the paper's evaluation, checkable
// against a campaign's outcomes.
type Finding struct {
	ID    string
	Claim string
	Check func(byID map[int]Outcome) error
}

// Findings returns the paper's narrative claims (section VI) as checks.
// They compare configurations, not absolute values, so they are the
// "shape" the reproduction must preserve.
func Findings() []Finding {
	need := func(byID map[int]Outcome, ids ...int) error {
		for _, id := range ids {
			if _, ok := byID[id]; !ok {
				return fmt.Errorf("solution %d missing from campaign", id)
			}
		}
		return nil
	}
	return []Finding{
		{
			ID:    "fastest-is-rllib-2n",
			Claim: "solution 2 (RLlib, 2 nodes, 4 cores, RK3) is the fastest configuration",
			Check: func(m map[int]Outcome) error {
				if err := need(m, 2); err != nil {
					return err
				}
				for id, o := range m {
					if id != 2 && o.TimeMinutes < m[2].TimeMinutes {
						return fmt.Errorf("solution %d (%.1f min) beats solution 2 (%.1f min)", id, o.TimeMinutes, m[2].TimeMinutes)
					}
				}
				return nil
			},
		},
		{
			ID:    "best-reward-is-sb-rk8",
			Claim: "solution 16 (Stable Baselines, RK8, 1 node, 4 cores) has the best reward",
			Check: func(m map[int]Outcome) error {
				if err := need(m, 16); err != nil {
					return err
				}
				// Allow a small tolerance: the paper's own top-2 gap is
				// 0.02 (−0.45 vs −0.47), i.e. within run-to-run noise.
				const tol = 0.03
				for id, o := range m {
					if id != 16 && o.Reward > m[16].Reward+tol {
						return fmt.Errorf("solution %d (%.3f) beats solution 16 (%.3f) beyond tolerance", id, o.Reward, m[16].Reward)
					}
				}
				return nil
			},
		},
		{
			ID:    "lowest-power-is-tfa",
			Claim: "solution 11 (TF-Agents, RK3, 1 node, 4 cores) has the lowest power consumption",
			Check: func(m map[int]Outcome) error {
				if err := need(m, 11); err != nil {
					return err
				}
				for id, o := range m {
					if id != 11 && o.PowerKJ < m[11].PowerKJ {
						return fmt.Errorf("solution %d (%.0f kJ) beats solution 11 (%.0f kJ)", id, o.PowerKJ, m[11].PowerKJ)
					}
				}
				return nil
			},
		},
		{
			ID:    "multi-node-costs-reward",
			Claim: "solution 7 (1 node) out-rewards solution 8 (2 nodes), same config otherwise",
			Check: func(m map[int]Outcome) error {
				if err := need(m, 7, 8); err != nil {
					return err
				}
				if m[7].Reward <= m[8].Reward {
					return fmt.Errorf("sol 7 reward %.3f not above sol 8 %.3f", m[7].Reward, m[8].Reward)
				}
				return nil
			},
		},
		{
			ID:    "multi-node-buys-time",
			Claim: "solution 8 (2 nodes) is faster than solution 7 (1 node)",
			Check: func(m map[int]Outcome) error {
				if err := need(m, 7, 8); err != nil {
					return err
				}
				if m[8].TimeMinutes >= m[7].TimeMinutes {
					return fmt.Errorf("sol 8 time %.1f not below sol 7 %.1f", m[8].TimeMinutes, m[7].TimeMinutes)
				}
				return nil
			},
		},
		{
			ID:    "rk-order-time-cost",
			Claim: "RK order raises computation time within the RLlib 2nx4c block (2 < 5 < 8)",
			Check: func(m map[int]Outcome) error {
				if err := need(m, 2, 5, 8); err != nil {
					return err
				}
				if !(m[2].TimeMinutes < m[5].TimeMinutes && m[5].TimeMinutes < m[8].TimeMinutes) {
					return fmt.Errorf("times not ordered: %.1f, %.1f, %.1f", m[2].TimeMinutes, m[5].TimeMinutes, m[8].TimeMinutes)
				}
				return nil
			},
		},
		{
			ID:    "all-cores-speedup",
			Claim: "4 cores beat 2 cores on time without losing reward (sols 10 vs 11)",
			Check: func(m map[int]Outcome) error {
				if err := need(m, 10, 11); err != nil {
					return err
				}
				if m[11].TimeMinutes >= m[10].TimeMinutes {
					return fmt.Errorf("sol 11 time %.1f not below sol 10 %.1f", m[11].TimeMinutes, m[10].TimeMinutes)
				}
				if m[11].Reward < m[10].Reward-0.15 {
					return fmt.Errorf("sol 11 reward %.3f fell well below sol 10 %.3f", m[11].Reward, m[10].Reward)
				}
				return nil
			},
		},
		{
			ID:    "sac-underperforms",
			Claim: "every SAC configuration rewards worse than every PPO configuration",
			Check: func(m map[int]Outcome) error {
				worstPPO, bestSAC := 0.0, -1e18
				havePPO, haveSAC := false, false
				for _, o := range m {
					if o.Algo == "ppo" {
						if !havePPO || o.Reward < worstPPO {
							worstPPO = o.Reward
						}
						havePPO = true
					} else {
						if !haveSAC || o.Reward > bestSAC {
							bestSAC = o.Reward
						}
						haveSAC = true
					}
				}
				if !havePPO || !haveSAC {
					return fmt.Errorf("campaign missing an algorithm class")
				}
				if bestSAC >= worstPPO {
					return fmt.Errorf("best SAC %.3f not below worst PPO %.3f", bestSAC, worstPPO)
				}
				return nil
			},
		},
		{
			ID:    "sac-costs-time",
			Claim: "SAC configurations take longer than their PPO siblings (sols 1 vs 7-class)",
			Check: func(m map[int]Outcome) error {
				if err := need(m, 1, 7); err != nil {
					return err
				}
				// sol 1: RLlib SAC 1n×4c RK3; sol 7: RLlib PPO 1n×4c RK8.
				if m[1].TimeMinutes <= m[7].TimeMinutes {
					return fmt.Errorf("SAC sol 1 (%.1f min) not above PPO sol 7 (%.1f min)", m[1].TimeMinutes, m[7].TimeMinutes)
				}
				return nil
			},
		},
	}
}

// CheckFindings evaluates all findings and returns the failures (nil means
// the full narrative shape reproduced).
func CheckFindings(outcomes []Outcome) []error {
	byID := make(map[int]Outcome, len(outcomes))
	for _, o := range outcomes {
		byID[o.ID] = o
	}
	var errs []error
	for _, f := range Findings() {
		if err := f.Check(byID); err != nil {
			errs = append(errs, fmt.Errorf("%s: %w", f.ID, err))
		}
	}
	return errs
}

// FrontComparison reports measured vs paper front for one figure.
type FrontComparison struct {
	Figure   Figure
	Measured []int
	Matched  []int // intersection
	Missing  []int // in paper front, not measured
	Extra    []int // measured, not in paper front
}

// CompareFronts evaluates all three figures against the paper.
func CompareFronts(rep *core.Report) ([]FrontComparison, error) {
	var out []FrontComparison
	for _, fig := range Figures() {
		measured, err := MeasuredFront(rep, fig, fig.Eps)
		if err != nil {
			return nil, err
		}
		cmp := FrontComparison{Figure: fig, Measured: measured}
		inMeasured := map[int]bool{}
		for _, id := range measured {
			inMeasured[id] = true
		}
		inPaper := map[int]bool{}
		for _, id := range fig.PaperFront {
			inPaper[id] = true
		}
		for _, id := range fig.PaperFront {
			if inMeasured[id] {
				cmp.Matched = append(cmp.Matched, id)
			} else {
				cmp.Missing = append(cmp.Missing, id)
			}
		}
		for _, id := range measured {
			if !inPaper[id] {
				cmp.Extra = append(cmp.Extra, id)
			}
		}
		sort.Ints(cmp.Matched)
		sort.Ints(cmp.Missing)
		sort.Ints(cmp.Extra)
		out = append(out, cmp)
	}
	return out, nil
}
