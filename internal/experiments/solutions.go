// Package experiments encodes the paper's experimental campaign: the 18
// learning configurations of Table I, the metric collection (Reward,
// Computation Time, Power Consumption), the three Pareto-front figures
// (4: reward/time, 5: power/time, 6: reward/power), and the narrative
// findings the reproduction is checked against.
//
// The campaign trains at a reduced, seeded scale (Scale.TotalSteps) and
// extrapolates the virtual time/energy linearly to the paper's 200k steps
// — every modeled cost is per-step, so the extrapolation is exact.
package experiments

import (
	"fmt"

	"rldecide/internal/airdrop"
	"rldecide/internal/distrib"
	"rldecide/internal/param"
)

// Solution is one row of Table I: a concrete learning configuration.
type Solution struct {
	ID        int
	RKOrder   int
	Framework distrib.Framework
	Algo      distrib.Algo
	Nodes     int
	Cores     int
}

// String renders the configuration compactly.
func (s Solution) String() string {
	return fmt.Sprintf("sol %d: RK%d %s/%s %dn x %dc", s.ID, s.RKOrder, s.Framework, s.Algo, s.Nodes, s.Cores)
}

// Assignment converts the solution to a methodology assignment.
func (s Solution) Assignment() param.Assignment {
	return param.Assign(
		param.Bind("rk_order", param.Int(s.RKOrder)),
		param.Bind("framework", param.Str(string(s.Framework))),
		param.Bind("algo", param.Str(string(s.Algo))),
		param.Bind("nodes", param.Int(s.Nodes)),
		param.Bind("cores", param.Int(s.Cores)),
	)
}

// SolutionFromAssignment is the inverse of Assignment.
func SolutionFromAssignment(a param.Assignment) Solution {
	return Solution{
		RKOrder:   a.Value("rk_order").Int(),
		Framework: distrib.Framework(a.Value("framework").Str()),
		Algo:      distrib.Algo(a.Value("algo").Str()),
		Nodes:     a.Value("nodes").Int(),
		Cores:     a.Value("cores").Int(),
	}
}

// TableI returns the paper's 18 configurations. The RK-order column and
// the framework blocks are read off the paper's table; cells the PDF does
// not preserve are reconstructed to satisfy every statement of the
// narrative (see DESIGN.md §4 for the provenance of each cell).
func TableI() []Solution {
	return []Solution{
		{1, 3, distrib.RLlib, distrib.SAC, 1, 4},
		{2, 3, distrib.RLlib, distrib.PPO, 2, 4},
		{3, 3, distrib.RLlib, distrib.PPO, 1, 2},
		{4, 5, distrib.RLlib, distrib.PPO, 2, 2},
		{5, 5, distrib.RLlib, distrib.PPO, 2, 4},
		{6, 5, distrib.RLlib, distrib.SAC, 2, 4},
		{7, 8, distrib.RLlib, distrib.PPO, 1, 4},
		{8, 8, distrib.RLlib, distrib.PPO, 2, 4},
		{9, 3, distrib.TFAgents, distrib.SAC, 1, 4},
		{10, 3, distrib.TFAgents, distrib.PPO, 1, 2},
		{11, 3, distrib.TFAgents, distrib.PPO, 1, 4},
		{12, 8, distrib.TFAgents, distrib.PPO, 1, 4},
		{13, 8, distrib.TFAgents, distrib.SAC, 1, 2},
		{14, 3, distrib.StableBaselines, distrib.PPO, 1, 2},
		{15, 3, distrib.StableBaselines, distrib.SAC, 1, 4},
		{16, 8, distrib.StableBaselines, distrib.PPO, 1, 4},
		{17, 8, distrib.StableBaselines, distrib.PPO, 1, 2},
		{18, 8, distrib.StableBaselines, distrib.SAC, 1, 2},
	}
}

// Space returns the methodology search space of the campaign (step (b) of
// the methodology): the five parameters of section V of the paper.
func Space() *param.Space {
	return param.MustSpace(
		param.NewIntSet("rk_order", 3, 5, 8),
		param.NewCategorical("framework",
			string(distrib.RLlib), string(distrib.StableBaselines), string(distrib.TFAgents)),
		param.NewCategorical("algo", string(distrib.PPO), string(distrib.SAC)),
		param.NewIntRange("nodes", 1, 2),
		param.NewIntSet("cores", 2, 4),
	)
}

// Valid reports whether the solution is runnable: only the RLlib-style
// backend supports multi-node deployment (as in the paper, where
// "distributed training on 2 nodes is available with [the] RLlib
// framework").
func (s Solution) Valid() bool {
	if s.Nodes > 1 && s.Framework != distrib.RLlib {
		return false
	}
	return true
}

// EnvConfig returns the paper's case-study environment configuration for
// the solution: wind disabled, drop altitude 30–1000, the solution's RK
// order.
func (s Solution) EnvConfig() airdrop.Config {
	cfg := airdrop.NewConfig()
	cfg.RKOrder = s.RKOrder
	cfg.Wind.Enabled = false
	cfg.AltMin, cfg.AltMax = 30, 1000
	return cfg
}
