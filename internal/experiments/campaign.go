package experiments

import (
	"fmt"
	"math/rand/v2"
	"sort"

	"rldecide/internal/airdrop"
	"rldecide/internal/core"
	"rldecide/internal/distrib"
	"rldecide/internal/mathx"
	"rldecide/internal/param"
	"rldecide/internal/pareto"
	"rldecide/internal/rl/sac"
	"rldecide/internal/search"
)

// Metric names of the campaign — the paper's three evaluation criteria.
const (
	MetricReward = "reward"      // final mean landing reward (maximize)
	MetricTime   = "time_min"    // computation time, minutes (minimize)
	MetricPower  = "power_kj"    // power consumption, kJ (minimize)
	MetricUtil   = "utilization" // informational: mean core utilization
)

// Metrics returns the campaign's metric definitions.
func Metrics() []core.Metric {
	return []core.Metric{
		{Name: MetricReward, Unit: "", Direction: pareto.Maximize},
		{Name: MetricTime, Unit: "min", Direction: pareto.Minimize},
		{Name: MetricPower, Unit: "kJ", Direction: pareto.Minimize},
		{Name: MetricUtil, Unit: "", Direction: pareto.Maximize},
	}
}

// Scale fixes the training budget of a campaign and the extrapolation to
// the paper's deployment scale.
type Scale struct {
	// TotalSteps is the per-configuration training budget actually run.
	TotalSteps int
	// PaperSteps is the budget the virtual time/energy are extrapolated
	// to (the paper trains 200,000 time-steps per configuration).
	PaperSteps int
	// RolloutSteps is the per-env PPO collection length.
	RolloutSteps int
	// EvalEpisodes is the final greedy evaluation budget.
	EvalEpisodes int
	// SACStartSteps/SACBatch trim SAC's warmup and minibatch to the scale.
	SACStartSteps int
	SACBatch      int
	// Replicas is the number of seeds each PPO configuration is trained
	// with; the reported metrics are replica means. (SAC runs once — its
	// failure mode is robust and its wall-clock cost high.)
	Replicas int
}

// QuickScale is for tests: seconds per configuration.
func QuickScale() Scale {
	return Scale{
		TotalSteps:    4_000,
		PaperSteps:    200_000,
		RolloutSteps:  64,
		EvalEpisodes:  20,
		SACStartSteps: 500,
		SACBatch:      32,
		Replicas:      1,
	}
}

// DefaultScale is the standard reduced campaign (minutes end-to-end).
func DefaultScale() Scale {
	return Scale{
		TotalSteps:    24_000,
		PaperSteps:    200_000,
		RolloutSteps:  128,
		EvalEpisodes:  150,
		SACStartSteps: 2_000,
		SACBatch:      64,
		Replicas:      3,
	}
}

// PaperScale trains the full 200k steps per configuration.
func PaperScale() Scale {
	s := DefaultScale()
	s.TotalSteps = 200_000
	s.EvalEpisodes = 100
	return s
}

// extrapolation returns the factor applied to virtual time/energy.
func (s Scale) extrapolation() float64 {
	if s.PaperSteps <= 0 || s.TotalSteps <= 0 {
		return 1
	}
	return float64(s.PaperSteps) / float64(s.TotalSteps)
}

// Objective returns the methodology objective (stage (a)+(d)): run one
// learning configuration on the simulated cluster and report the three
// metrics, extrapolated to the paper's 200k-step deployment.
func Objective(scale Scale) core.Objective {
	return func(a param.Assignment, seed uint64, rec *core.Recorder) error {
		sol := SolutionFromAssignment(a)
		if !sol.Valid() {
			return fmt.Errorf("experiments: %s cannot run on %d nodes", sol.Framework, sol.Nodes)
		}
		replicas := scale.Replicas
		if replicas <= 0 || sol.Algo == distrib.SAC {
			replicas = 1
		}
		seeder := mathx.NewSeeder(seed)
		var reward, timeSec, energy, util float64
		for r := 0; r < replicas; r++ {
			res, err := runSolution(sol, scale, seeder.Next())
			if err != nil {
				return err
			}
			reward += res.MeanReward
			timeSec += res.TimeSeconds
			energy += res.EnergyJoules
			util += res.MeanUtilization
		}
		n := float64(replicas)
		f := scale.extrapolation()
		rec.Report(MetricReward, reward/n)
		rec.Report(MetricTime, timeSec/n*f/60)
		rec.Report(MetricPower, energy/n*f/1000)
		rec.Report(MetricUtil, util/n)
		return nil
	}
}

func runSolution(sol Solution, scale Scale, seed uint64) (distrib.Result, error) {
	cfg := distrib.TrainConfig{
		Framework:    sol.Framework,
		Algo:         sol.Algo,
		Nodes:        sol.Nodes,
		Cores:        sol.Cores,
		EnvMaker:     airdrop.Make(sol.EnvConfig()),
		TotalSteps:   scale.TotalSteps,
		RolloutSteps: scale.RolloutSteps,
		EvalEpisodes: scale.EvalEpisodes,
		Seed:         seed,
	}
	if sol.Algo == distrib.SAC {
		cfg.SACConfig = &sac.Config{
			StartSteps: scale.SACStartSteps,
			Batch:      scale.SACBatch,
			BufferSize: 100_000,
		}
	}
	return distrib.Run(cfg)
}

// ReplayExplorer replays a fixed list of assignments — it lets the fixed
// Table-I configuration set run through the ordinary Study machinery (the
// paper drew its 18 configurations with Random Search once and then kept
// them fixed across the analysis).
type ReplayExplorer struct {
	Assignments []param.Assignment
	next        int
}

// Name implements search.Explorer.
func (*ReplayExplorer) Name() string { return "replay" }

// Next implements search.Explorer.
func (r *ReplayExplorer) Next(rng *rand.Rand, space *param.Space, history []search.Observation) (param.Assignment, bool) {
	if r.next >= len(r.Assignments) {
		return nil, false
	}
	a := r.Assignments[r.next]
	r.next++
	return a, true
}

// CaseStudy describes stage (a) of the campaign.
func CaseStudy() core.CaseStudy {
	return core.CaseStudy{
		Name: "airdrop-package-delivery",
		Description: "Teach an autonomous agent to pilot a parachute canopy " +
			"to a precision landing (DGA airdrop simulator, reproduced).",
	}
}

// NewTableIStudy assembles the methodology instance that reproduces
// Table I: the fixed 18 configurations, the three metrics, Pareto ranking.
func NewTableIStudy(scale Scale, seed uint64, parallelism int) *core.Study {
	var assignments []param.Assignment
	for _, sol := range TableI() {
		assignments = append(assignments, sol.Assignment())
	}
	return &core.Study{
		CaseStudy:     CaseStudy(),
		Space:         Space(),
		Explorer:      &ReplayExplorer{Assignments: assignments},
		Metrics:       Metrics(),
		Ranker:        core.ParetoRanker{Objectives: []string{MetricReward, MetricTime, MetricPower}},
		Objective:     Objective(scale),
		PrimaryMetric: MetricReward,
		Parallelism:   parallelism,
		Seed:          seed,
	}
}

// NewRandomStudy assembles the open-ended variant: Random Search over the
// full space (skipping configurations the deployment cannot run), as the
// methodology's step (c) prescribes.
func NewRandomStudy(scale Scale, seed uint64, parallelism int) *core.Study {
	s := NewTableIStudy(scale, seed, parallelism)
	s.Explorer = validOnly{search.RandomSearch{Dedup: true}}
	return s
}

// validOnly filters an explorer's proposals to runnable deployments.
type validOnly struct {
	inner search.Explorer
}

// Name implements search.Explorer.
func (v validOnly) Name() string { return v.inner.Name() }

// Next implements search.Explorer.
func (v validOnly) Next(rng *rand.Rand, space *param.Space, history []search.Observation) (param.Assignment, bool) {
	for i := 0; i < 200; i++ {
		a, ok := v.inner.Next(rng, space, history)
		if !ok {
			return nil, false
		}
		if SolutionFromAssignment(a).Valid() {
			return a, true
		}
		// Record the invalid draw as history so deduping explorers move on.
		history = append(history, search.Observation{Assignment: a, Failed: true})
	}
	return nil, false
}

// Campaign runs the Table-I study and returns the report with trial IDs
// matching the paper's solution numbering.
func Campaign(scale Scale, seed uint64, parallelism int) (*core.Report, error) {
	return NewTableIStudy(scale, seed, parallelism).Run(len(TableI()))
}

// Outcome pairs a solution with its measured, extrapolated metrics.
type Outcome struct {
	Solution
	Reward      float64
	TimeMinutes float64
	PowerKJ     float64
	Utilization float64
}

// Outcomes converts a campaign report into per-solution outcomes, sorted
// by solution id.
func Outcomes(rep *core.Report) []Outcome {
	var out []Outcome
	for _, t := range rep.Completed() {
		sol := SolutionFromAssignment(t.Params)
		sol.ID = t.ID
		out = append(out, Outcome{
			Solution:    sol,
			Reward:      t.Values.At(MetricReward),
			TimeMinutes: t.Values.At(MetricTime),
			PowerKJ:     t.Values.At(MetricPower),
			Utilization: t.Values.At(MetricUtil),
		})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// RunSolutionOnce runs a single Table-I configuration outside a study (for
// tools and tests); seed derivation matches nothing in particular.
func RunSolutionOnce(sol Solution, scale Scale, seed uint64) (Outcome, error) {
	res, err := runSolution(sol, scale, mathx.NewSeeder(seed).Next())
	if err != nil {
		return Outcome{}, err
	}
	f := scale.extrapolation()
	return Outcome{
		Solution:    sol,
		Reward:      res.MeanReward,
		TimeMinutes: res.TimeSeconds * f / 60,
		PowerKJ:     res.EnergyJoules * f / 1000,
		Utilization: res.MeanUtilization,
	}, nil
}
