package experiments

import (
	"bytes"
	"math/rand/v2"
	"strings"
	"testing"

	"rldecide/internal/core"
	"rldecide/internal/distrib"
	"rldecide/internal/param"
)

func newTestRand() *rand.Rand { return rand.New(rand.NewPCG(11, 12)) }

func TestTableIWellFormed(t *testing.T) {
	sols := TableI()
	if len(sols) != 18 {
		t.Fatalf("Table I has %d rows, want 18", len(sols))
	}
	space := Space()
	for i, s := range sols {
		if s.ID != i+1 {
			t.Errorf("row %d has id %d", i, s.ID)
		}
		if !s.Valid() {
			t.Errorf("%s is not runnable", s)
		}
		if !space.Contains(s.Assignment()) {
			t.Errorf("%s outside the search space", s)
		}
		back := SolutionFromAssignment(s.Assignment())
		back.ID = s.ID
		if back != s {
			t.Errorf("assignment round-trip broke %s -> %s", s, back)
		}
	}
}

func TestTableIMatchesPaperConstraints(t *testing.T) {
	byID := map[int]Solution{}
	for _, s := range TableI() {
		byID[s.ID] = s
	}
	// The narrative anchors (see DESIGN.md §4).
	checks := []struct {
		id   int
		want Solution
	}{
		{2, Solution{2, 3, distrib.RLlib, distrib.PPO, 2, 4}},
		{5, Solution{5, 5, distrib.RLlib, distrib.PPO, 2, 4}},
		{7, Solution{7, 8, distrib.RLlib, distrib.PPO, 1, 4}},
		{8, Solution{8, 8, distrib.RLlib, distrib.PPO, 2, 4}},
		{11, Solution{11, 3, distrib.TFAgents, distrib.PPO, 1, 4}},
		{14, Solution{14, 3, distrib.StableBaselines, distrib.PPO, 1, 2}},
		{16, Solution{16, 8, distrib.StableBaselines, distrib.PPO, 1, 4}},
	}
	for _, c := range checks {
		if byID[c.id] != c.want {
			t.Errorf("sol %d = %v, want %v", c.id, byID[c.id], c.want)
		}
	}
	// Only RLlib rows use 2 nodes.
	for _, s := range TableI() {
		if s.Nodes == 2 && s.Framework != distrib.RLlib {
			t.Errorf("%s: only rllib distributes", s)
		}
	}
	// RK orders restricted to the SciPy family.
	for _, s := range TableI() {
		if s.RKOrder != 3 && s.RKOrder != 5 && s.RKOrder != 8 {
			t.Errorf("%s: bad order", s)
		}
	}
}

func TestValidRejectsMultiNodeSingleNodeFrameworks(t *testing.T) {
	s := Solution{Framework: distrib.TFAgents, Nodes: 2, Algo: distrib.PPO, RKOrder: 3, Cores: 4}
	if s.Valid() {
		t.Fatal("tfagents on 2 nodes should be invalid")
	}
}

func TestEnvConfigMatchesPaperCaseStudy(t *testing.T) {
	s := TableI()[0]
	cfg := s.EnvConfig()
	if cfg.Wind.Enabled {
		t.Error("paper campaign disables wind")
	}
	if cfg.AltMin != 30 || cfg.AltMax != 1000 {
		t.Errorf("drop altitude [%v,%v], want [30,1000]", cfg.AltMin, cfg.AltMax)
	}
	if cfg.RKOrder != s.RKOrder {
		t.Error("rk order not forwarded")
	}
}

func TestScales(t *testing.T) {
	for _, s := range []Scale{QuickScale(), DefaultScale(), PaperScale()} {
		if s.TotalSteps <= 0 || s.PaperSteps != 200_000 {
			t.Errorf("bad scale %+v", s)
		}
	}
	if PaperScale().extrapolation() != 1 {
		t.Error("paper scale must not extrapolate")
	}
	if QuickScale().extrapolation() != 50 {
		t.Errorf("quick extrapolation %v want 50", QuickScale().extrapolation())
	}
	if (Scale{}).extrapolation() != 1 {
		t.Error("zero scale guard")
	}
}

func TestFigures(t *testing.T) {
	figs := Figures()
	if len(figs) != 3 {
		t.Fatalf("want 3 figures, got %d", len(figs))
	}
	for _, n := range []int{4, 5, 6} {
		f, err := FigureByNumber(n)
		if err != nil || f.Number != n {
			t.Errorf("FigureByNumber(%d): %v", n, err)
		}
		if len(f.PaperFront) == 0 {
			t.Errorf("figure %d has no paper front", n)
		}
	}
	if _, err := FigureByNumber(3); err == nil {
		t.Error("figure 3 is not a result figure")
	}
}

func TestReplayExplorer(t *testing.T) {
	re := &ReplayExplorer{Assignments: []param.Assignment{
		TableI()[0].Assignment(),
		TableI()[1].Assignment(),
	}}
	a, ok := re.Next(nil, nil, nil)
	if !ok || a.Key() != TableI()[0].Assignment().Key() {
		t.Fatal("replay order wrong")
	}
	re.Next(nil, nil, nil)
	if _, ok := re.Next(nil, nil, nil); ok {
		t.Fatal("replay should exhaust")
	}
}

func TestFindingsAgainstSyntheticPaperNumbers(t *testing.T) {
	// Feed the checks the paper's own (partially reconstructed) numbers;
	// every finding must pass on them.
	outcomes := []Outcome{
		{Solution: Solution{1, 3, distrib.RLlib, distrib.SAC, 1, 4}, Reward: -4.5, TimeMinutes: 120, PowerKJ: 260},
		{Solution: Solution{2, 3, distrib.RLlib, distrib.PPO, 2, 4}, Reward: -0.66, TimeMinutes: 46, PowerKJ: 201},
		{Solution: Solution{3, 3, distrib.RLlib, distrib.PPO, 1, 2}, Reward: -0.70, TimeMinutes: 125, PowerKJ: 280},
		{Solution: Solution{4, 5, distrib.RLlib, distrib.PPO, 2, 2}, Reward: -0.75, TimeMinutes: 101, PowerKJ: 380},
		{Solution: Solution{5, 5, distrib.RLlib, distrib.PPO, 2, 4}, Reward: -0.61, TimeMinutes: 49, PowerKJ: 201},
		{Solution: Solution{6, 5, distrib.RLlib, distrib.SAC, 2, 4}, Reward: -5.0, TimeMinutes: 130, PowerKJ: 350},
		{Solution: Solution{7, 8, distrib.RLlib, distrib.PPO, 1, 4}, Reward: -0.52, TimeMinutes: 85, PowerKJ: 209},
		{Solution: Solution{8, 8, distrib.RLlib, distrib.PPO, 2, 4}, Reward: -0.73, TimeMinutes: 55, PowerKJ: 230},
		{Solution: Solution{9, 3, distrib.TFAgents, distrib.SAC, 1, 4}, Reward: -3.9, TimeMinutes: 110, PowerKJ: 200},
		{Solution: Solution{10, 3, distrib.TFAgents, distrib.PPO, 1, 2}, Reward: -0.60, TimeMinutes: 95, PowerKJ: 230},
		{Solution: Solution{11, 3, distrib.TFAgents, distrib.PPO, 1, 4}, Reward: -0.58, TimeMinutes: 49, PowerKJ: 120},
		{Solution: Solution{12, 8, distrib.TFAgents, distrib.PPO, 1, 4}, Reward: -0.55, TimeMinutes: 78, PowerKJ: 190},
		{Solution: Solution{13, 8, distrib.TFAgents, distrib.SAC, 1, 2}, Reward: -6.0, TimeMinutes: 210, PowerKJ: 480},
		{Solution: Solution{14, 3, distrib.StableBaselines, distrib.PPO, 1, 2}, Reward: -0.47, TimeMinutes: 83, PowerKJ: 130},
		{Solution: Solution{15, 3, distrib.StableBaselines, distrib.SAC, 1, 4}, Reward: -4.1, TimeMinutes: 100, PowerKJ: 175},
		{Solution: Solution{16, 8, distrib.StableBaselines, distrib.PPO, 1, 4}, Reward: -0.45, TimeMinutes: 65, PowerKJ: 150},
		{Solution: Solution{17, 8, distrib.StableBaselines, distrib.PPO, 1, 2}, Reward: -0.49, TimeMinutes: 135, PowerKJ: 320},
		{Solution: Solution{18, 8, distrib.StableBaselines, distrib.SAC, 1, 2}, Reward: -5.5, TimeMinutes: 188, PowerKJ: 410},
	}
	if errs := CheckFindings(outcomes); len(errs) != 0 {
		t.Fatalf("paper numbers must satisfy the findings: %v", errs)
	}
}

func TestFindingsDetectViolations(t *testing.T) {
	// Break one claim at a time and expect a failure.
	base := func() []Outcome {
		return []Outcome{
			{Solution: Solution{2, 3, distrib.RLlib, distrib.PPO, 2, 4}, Reward: -0.66, TimeMinutes: 46, PowerKJ: 201},
			{Solution: Solution{7, 8, distrib.RLlib, distrib.PPO, 1, 4}, Reward: -0.52, TimeMinutes: 85, PowerKJ: 209},
			{Solution: Solution{8, 8, distrib.RLlib, distrib.PPO, 2, 4}, Reward: -0.73, TimeMinutes: 55, PowerKJ: 230},
		}
	}
	bad := base()
	bad[1].Reward, bad[2].Reward = -0.9, -0.5 // invert the staleness claim
	found := false
	for _, err := range CheckFindings(bad) {
		if strings.Contains(err.Error(), "multi-node-costs-reward") {
			found = true
		}
	}
	if !found {
		t.Fatal("inverted staleness not detected")
	}
}

// TestQuickCampaignEndToEnd runs the full 18-configuration study at toy
// scale: times/powers are meaningful (extrapolated), rewards are not (the
// budget is far too small) — so only deterministic cost-model claims are
// asserted here. The full-shape campaign is exercised by cmd/airdrop-study
// and recorded in EXPERIMENTS.md.
func TestQuickCampaignEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("campaign test")
	}
	rep, err := Campaign(QuickScale(), 7, 1)
	if err != nil {
		t.Fatal(err)
	}
	outcomes := Outcomes(rep)
	if len(outcomes) != 18 {
		t.Fatalf("completed %d/18 configurations", len(outcomes))
	}
	byID := map[int]Outcome{}
	for _, o := range outcomes {
		byID[o.ID] = o
	}
	// Cost-model shape (deterministic at any training scale):
	if !(byID[2].TimeMinutes < byID[5].TimeMinutes && byID[5].TimeMinutes < byID[8].TimeMinutes) {
		t.Errorf("RK time ordering broken: %v %v %v", byID[2].TimeMinutes, byID[5].TimeMinutes, byID[8].TimeMinutes)
	}
	for id, o := range byID {
		if id != 2 && o.Algo == distrib.PPO && o.TimeMinutes < byID[2].TimeMinutes {
			t.Errorf("sol %d faster than sol 2", id)
		}
	}
	for id, o := range byID {
		if id != 11 && o.PowerKJ < byID[11].PowerKJ {
			t.Errorf("sol %d (%0.f kJ) below sol 11 (%.0f kJ)", id, o.PowerKJ, byID[11].PowerKJ)
		}
	}
	if byID[8].TimeMinutes >= byID[7].TimeMinutes {
		t.Error("2 nodes should be faster than 1")
	}
	// Anchors within 12% (time extrapolates exactly).
	anchors := []struct {
		id  int
		min float64
	}{{2, 46}, {5, 49}, {7, 85}, {11, 49}, {16, 65}}
	for _, a := range anchors {
		got := byID[a.id].TimeMinutes
		if got < a.min*0.88 || got > a.min*1.12 {
			t.Errorf("sol %d time %.1f min outside ±12%% of paper's %.0f", a.id, got, a.min)
		}
	}
	// Power anchors.
	if p := byID[11].PowerKJ; p < 100 || p > 140 {
		t.Errorf("sol 11 power %.0f kJ, paper 120", p)
	}
	if p := byID[2].PowerKJ; p < 175 || p > 230 {
		t.Errorf("sol 2 power %.0f kJ, paper 201", p)
	}

	// Report plumbing.
	var buf bytes.Buffer
	for _, fig := range Figures() {
		buf.Reset()
		if err := RenderFigure(&buf, rep, fig); err != nil {
			t.Errorf("figure %d: %v", fig.Number, err)
		}
		if !strings.Contains(buf.String(), "<svg") {
			t.Errorf("figure %d did not render", fig.Number)
		}
	}
	if _, err := CompareFronts(rep); err != nil {
		t.Errorf("CompareFronts: %v", err)
	}
}

func TestRandomStudyProposesOnlyRunnable(t *testing.T) {
	s := NewRandomStudy(QuickScale(), 3, 1)
	// Don't run trials; just exercise the explorer filter.
	ex := s.Explorer
	rng := newTestRand()
	for i := 0; i < 40; i++ {
		a, ok := ex.Next(rng, s.Space, nil)
		if !ok {
			t.Fatal("explorer exhausted unexpectedly")
		}
		if !SolutionFromAssignment(a).Valid() {
			t.Fatalf("invalid proposal %s", a)
		}
	}
	var _ core.CaseStudy = CaseStudy()
}

// syntheticReport builds a campaign report from hand-set outcome numbers.
func syntheticReport(outcomes []Outcome) *core.Report {
	rep := &core.Report{
		CaseStudy: CaseStudy(),
		Metrics:   Metrics(),
		Explorer:  "replay",
		Ranker:    "pareto",
	}
	for _, o := range outcomes {
		t := core.Trial{
			ID:     o.ID,
			Params: o.Solution.Assignment(),
			Values: core.ValuesFromMap(map[string]float64{
				MetricReward: o.Reward,
				MetricTime:   o.TimeMinutes,
				MetricPower:  o.PowerKJ,
				MetricUtil:   o.Utilization,
			}),
		}
		rep.Trials = append(rep.Trials, t)
	}
	rep.Ranking = core.ParetoRanker{Objectives: []string{MetricReward, MetricTime, MetricPower}}.Rank(rep.Completed(), rep.Metrics)
	return rep
}

func paperNumbers() []Outcome {
	return []Outcome{
		{Solution: Solution{1, 3, distrib.RLlib, distrib.SAC, 1, 4}, Reward: -4.5, TimeMinutes: 120, PowerKJ: 260},
		{Solution: Solution{2, 3, distrib.RLlib, distrib.PPO, 2, 4}, Reward: -0.66, TimeMinutes: 46, PowerKJ: 201},
		{Solution: Solution{3, 3, distrib.RLlib, distrib.PPO, 1, 2}, Reward: -0.70, TimeMinutes: 125, PowerKJ: 280},
		{Solution: Solution{4, 5, distrib.RLlib, distrib.PPO, 2, 2}, Reward: -0.75, TimeMinutes: 101, PowerKJ: 380},
		{Solution: Solution{5, 5, distrib.RLlib, distrib.PPO, 2, 4}, Reward: -0.61, TimeMinutes: 49, PowerKJ: 201},
		{Solution: Solution{6, 5, distrib.RLlib, distrib.SAC, 2, 4}, Reward: -5.0, TimeMinutes: 130, PowerKJ: 350},
		{Solution: Solution{7, 8, distrib.RLlib, distrib.PPO, 1, 4}, Reward: -0.52, TimeMinutes: 85, PowerKJ: 209},
		{Solution: Solution{8, 8, distrib.RLlib, distrib.PPO, 2, 4}, Reward: -0.73, TimeMinutes: 55, PowerKJ: 230},
		{Solution: Solution{9, 3, distrib.TFAgents, distrib.SAC, 1, 4}, Reward: -3.9, TimeMinutes: 110, PowerKJ: 200},
		{Solution: Solution{10, 3, distrib.TFAgents, distrib.PPO, 1, 2}, Reward: -0.60, TimeMinutes: 95, PowerKJ: 230},
		{Solution: Solution{11, 3, distrib.TFAgents, distrib.PPO, 1, 4}, Reward: -0.58, TimeMinutes: 49, PowerKJ: 120},
		{Solution: Solution{12, 8, distrib.TFAgents, distrib.PPO, 1, 4}, Reward: -0.55, TimeMinutes: 78, PowerKJ: 190},
		{Solution: Solution{13, 8, distrib.TFAgents, distrib.SAC, 1, 2}, Reward: -6.0, TimeMinutes: 210, PowerKJ: 480},
		{Solution: Solution{14, 3, distrib.StableBaselines, distrib.PPO, 1, 2}, Reward: -0.47, TimeMinutes: 83, PowerKJ: 130},
		{Solution: Solution{15, 3, distrib.StableBaselines, distrib.SAC, 1, 4}, Reward: -4.1, TimeMinutes: 100, PowerKJ: 175},
		{Solution: Solution{16, 8, distrib.StableBaselines, distrib.PPO, 1, 4}, Reward: -0.45, TimeMinutes: 65, PowerKJ: 150},
		{Solution: Solution{17, 8, distrib.StableBaselines, distrib.PPO, 1, 2}, Reward: -0.49, TimeMinutes: 135, PowerKJ: 320},
		{Solution: Solution{18, 8, distrib.StableBaselines, distrib.SAC, 1, 2}, Reward: -5.5, TimeMinutes: 188, PowerKJ: 410},
	}
}

func TestPaperNumbersReproducePaperFronts(t *testing.T) {
	// Sanity check of the figure machinery itself: feeding the paper's
	// (reconstructed) numbers through the front extraction must highlight
	// the paper's own front members.
	rep := syntheticReport(paperNumbers())
	for _, fig := range Figures() {
		measured, err := MeasuredFront(rep, fig, FrontEps)
		if err != nil {
			t.Fatal(err)
		}
		inMeasured := map[int]bool{}
		for _, id := range measured {
			inMeasured[id] = true
		}
		for _, id := range fig.PaperFront {
			if !inMeasured[id] {
				t.Errorf("figure %d: paper front member %d missing from %v", fig.Number, id, measured)
			}
		}
	}
}

func TestWriteExperimentsMD(t *testing.T) {
	rep := syntheticReport(paperNumbers())
	var b bytes.Buffer
	if err := WriteExperimentsMD(&b, rep, DefaultScale(), 7); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"# EXPERIMENTS",
		"## Table I",
		"Published anchors",
		"Fig. 4",
		"Fig. 5",
		"Fig. 6",
		"REPRODUCED",
		"| 16 | 8 | stablebaselines | ppo |",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("experiments md missing %q", want)
		}
	}
	if strings.Contains(out, "DIVERGED") {
		t.Errorf("paper numbers must not diverge from themselves:\n%s", out)
	}
}
