package mathx

import (
	"fmt"
	"math"
	"math/rand/v2"
	"sort"
)

// ApproxEq reports whether a and b are equal within tol, absolutely for
// small magnitudes and relatively for large ones:
//
//	|a-b| <= tol * max(1, |a|, |b|)
//
// It is the comparison the float-eq lint rule points at: exact ==/!= on
// floats breaks under any arithmetic reordering. NaNs never compare equal;
// equal infinities do.
func ApproxEq(a, b, tol float64) bool {
	if math.IsNaN(a) || math.IsNaN(b) {
		return false
	}
	if math.IsInf(a, 0) || math.IsInf(b, 0) {
		//lint:ignore float-eq infinities carry no rounding error; exact compare is the definition
		return a == b
	}
	scale := math.Max(1, math.Max(math.Abs(a), math.Abs(b)))
	return math.Abs(a-b) <= tol*scale
}

// Within reports whether a and b differ by at most eps in absolute terms.
func Within(a, b, eps float64) bool {
	if math.IsNaN(a) || math.IsNaN(b) {
		return false
	}
	return math.Abs(a-b) <= eps
}

// Clip bounds x to [lo, hi].
func Clip(x, lo, hi float64) float64 {
	if x < lo {
		return lo
	}
	if x > hi {
		return hi
	}
	return x
}

// ClipSlice clips every element of xs in place and returns xs.
func ClipSlice(xs []float64, lo, hi float64) []float64 {
	for i, x := range xs {
		xs[i] = Clip(x, lo, hi)
	}
	return xs
}

// Mean returns the arithmetic mean of xs, or 0 for an empty slice.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// Std returns the population standard deviation of xs, or 0 for fewer than
// two samples.
func Std(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	m := Mean(xs)
	s := 0.0
	for _, x := range xs {
		d := x - m
		s += d * d
	}
	return math.Sqrt(s / float64(len(xs)))
}

// Min returns the minimum of xs; it panics on an empty slice.
func Min(xs []float64) float64 {
	if len(xs) == 0 {
		panic("mathx: Min of empty slice")
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x < m {
			m = x
		}
	}
	return m
}

// Max returns the maximum of xs; it panics on an empty slice.
func Max(xs []float64) float64 {
	if len(xs) == 0 {
		panic("mathx: Max of empty slice")
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x > m {
			m = x
		}
	}
	return m
}

// Sum returns the sum of xs.
func Sum(xs []float64) float64 {
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s
}

// Percentile returns the p-quantile (p in [0,1]) of xs using linear
// interpolation between closest ranks. It panics on an empty slice.
func Percentile(xs []float64, p float64) float64 {
	if len(xs) == 0 {
		panic("mathx: Percentile of empty slice")
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	if p <= 0 {
		return sorted[0]
	}
	if p >= 1 {
		return sorted[len(sorted)-1]
	}
	pos := p * float64(len(sorted)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return sorted[lo]
	}
	frac := pos - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// Median returns the median of xs.
func Median(xs []float64) float64 { return Percentile(xs, 0.5) }

// RunningStat tracks mean and variance online (Welford's algorithm).
// The zero value is ready to use.
type RunningStat struct {
	n    int64
	mean float64
	m2   float64
}

// Push adds an observation.
func (r *RunningStat) Push(x float64) {
	r.n++
	d := x - r.mean
	r.mean += d / float64(r.n)
	r.m2 += d * (x - r.mean)
}

// Count returns the number of observations seen.
func (r *RunningStat) Count() int64 { return r.n }

// Mean returns the running mean (0 before any observation).
func (r *RunningStat) Mean() float64 { return r.mean }

// Var returns the running population variance.
func (r *RunningStat) Var() float64 {
	if r.n < 2 {
		return 0
	}
	return r.m2 / float64(r.n)
}

// Std returns the running population standard deviation.
func (r *RunningStat) Std() float64 { return math.Sqrt(r.Var()) }

// RunningVec tracks per-dimension running mean/std for observation
// normalization. Construct with NewRunningVec.
type RunningVec struct {
	stats []RunningStat
}

// NewRunningVec returns a RunningVec for dim dimensions.
func NewRunningVec(dim int) *RunningVec {
	return &RunningVec{stats: make([]RunningStat, dim)}
}

// Dim returns the dimensionality.
func (r *RunningVec) Dim() int { return len(r.stats) }

// Push adds one observation vector; x must have the configured dimension.
func (r *RunningVec) Push(x []float64) {
	if len(x) != len(r.stats) {
		panic(fmt.Sprintf("mathx: RunningVec.Push dim %d, want %d", len(x), len(r.stats)))
	}
	for i := range x {
		r.stats[i].Push(x[i])
	}
}

// Normalize writes (x-mean)/std into dst (allocating if dst is nil) and
// returns dst. Dimensions with near-zero variance pass through centered.
func (r *RunningVec) Normalize(x, dst []float64) []float64 {
	if dst == nil {
		dst = make([]float64, len(x))
	}
	for i := range x {
		std := r.stats[i].Std()
		if std < 1e-8 {
			std = 1
		}
		dst[i] = (x[i] - r.stats[i].Mean()) / std
	}
	return dst
}

// Linspace returns n evenly spaced values from lo to hi inclusive.
// n must be >= 2.
func Linspace(lo, hi float64, n int) []float64 {
	if n < 2 {
		panic("mathx: Linspace needs n >= 2")
	}
	out := make([]float64, n)
	step := (hi - lo) / float64(n-1)
	for i := range out {
		out[i] = lo + float64(i)*step
	}
	out[n-1] = hi
	return out
}

// Lerp linearly interpolates between a and b by t in [0,1].
func Lerp(a, b, t float64) float64 { return a + (b-a)*t }

// EWMA is an exponentially weighted moving average. Construct with
// NewEWMA; the first Push initializes the average.
type EWMA struct {
	alpha float64
	value float64
	init  bool
}

// NewEWMA returns an EWMA with smoothing factor alpha in (0, 1].
func NewEWMA(alpha float64) *EWMA {
	if alpha <= 0 || alpha > 1 {
		panic("mathx: EWMA alpha must be in (0,1]")
	}
	return &EWMA{alpha: alpha}
}

// Push adds an observation and returns the updated average.
func (e *EWMA) Push(x float64) float64 {
	if !e.init {
		e.value = x
		e.init = true
		return x
	}
	e.value = e.alpha*x + (1-e.alpha)*e.value
	return e.value
}

// Value returns the current average (0 before any observation).
func (e *EWMA) Value() float64 { return e.value }

// BootstrapCI estimates a two-sided confidence interval for the mean of xs
// by nonparametric bootstrap with n resamples at the given confidence
// level (e.g. 0.95). The rng makes the estimate deterministic. It panics
// on an empty slice.
func BootstrapCI(rng *rand.Rand, xs []float64, n int, level float64) (lo, hi float64) {
	if len(xs) == 0 {
		panic("mathx: BootstrapCI of empty slice")
	}
	if n <= 0 {
		n = 1000
	}
	means := make([]float64, n)
	for i := 0; i < n; i++ {
		s := 0.0
		for j := 0; j < len(xs); j++ {
			s += xs[rng.IntN(len(xs))]
		}
		means[i] = s / float64(len(xs))
	}
	tail := (1 - level) / 2
	return Percentile(means, tail), Percentile(means, 1-tail)
}
