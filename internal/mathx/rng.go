// Package mathx provides small numeric helpers shared across the project:
// deterministic random-number fan-out, running statistics, clipping and
// summary statistics. Everything is allocation-light and safe to use from
// hot loops.
package mathx

import (
	"math/rand/v2"
)

// SplitMix64 advances a SplitMix64 state and returns the next value.
// It is used to derive independent child seeds from a root seed so that
// every component of a study (trial, worker, environment instance) gets a
// deterministic, well-separated random stream.
func SplitMix64(state *uint64) uint64 {
	*state += 0x9e3779b97f4a7c15
	z := *state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Seeder derives independent deterministic seeds from a root seed.
// The zero value is NOT usable; construct with NewSeeder.
type Seeder struct {
	state uint64
}

// NewSeeder returns a Seeder rooted at seed.
func NewSeeder(seed uint64) *Seeder {
	// Mix the root once so that nearby seeds (0, 1, 2, ...) produce
	// unrelated child streams.
	s := seed
	SplitMix64(&s)
	return &Seeder{state: s}
}

// Next returns the next derived 64-bit seed.
func (s *Seeder) Next() uint64 { return SplitMix64(&s.state) }

// NextPair returns two derived seeds, convenient for rand.NewPCG.
func (s *Seeder) NextPair() (uint64, uint64) { return s.Next(), s.Next() }

// NewRand returns a new deterministic *rand.Rand derived from the seeder.
func (s *Seeder) NewRand() *rand.Rand {
	a, b := s.NextPair()
	return rand.New(rand.NewPCG(a, b))
}

// NewRand returns a deterministic PCG-backed *rand.Rand from a single seed.
func NewRand(seed uint64) *rand.Rand {
	sd := NewSeeder(seed)
	return sd.NewRand()
}
