package mathx

import (
	"math"
	"testing"
	"testing/quick"
)

func TestSplitMix64Stream(t *testing.T) {
	// The stream must be deterministic, non-repeating, and must advance
	// the state by the SplitMix64 golden-ratio increment.
	state := uint64(1234567)
	got := []uint64{SplitMix64(&state), SplitMix64(&state), SplitMix64(&state)}
	inc := uint64(0x9e3779b97f4a7c15)
	want := uint64(1234567)
	for i := 0; i < 3; i++ {
		want += inc // wraps modulo 2^64
	}
	if state != want {
		t.Fatalf("state advanced wrongly: %x want %x", state, want)
	}
	state = 1234567
	again := []uint64{SplitMix64(&state), SplitMix64(&state), SplitMix64(&state)}
	for i := range got {
		if got[i] != again[i] {
			t.Fatalf("SplitMix64 not deterministic at %d: %x vs %x", i, got[i], again[i])
		}
	}
	if got[0] == got[1] || got[1] == got[2] {
		t.Fatalf("SplitMix64 repeated values: %x", got)
	}
}

func TestSeederIndependence(t *testing.T) {
	a := NewSeeder(1)
	b := NewSeeder(2)
	if a.Next() == b.Next() {
		t.Fatal("nearby root seeds produced identical child seeds")
	}
	c := NewSeeder(7)
	d := NewSeeder(7)
	for i := 0; i < 10; i++ {
		if c.Next() != d.Next() {
			t.Fatal("same root seed must produce identical streams")
		}
	}
}

func TestNewRandDeterministic(t *testing.T) {
	r1 := NewRand(42)
	r2 := NewRand(42)
	for i := 0; i < 100; i++ {
		if r1.Float64() != r2.Float64() {
			t.Fatal("NewRand(42) streams diverged")
		}
	}
}

func TestClip(t *testing.T) {
	cases := []struct{ x, lo, hi, want float64 }{
		{5, 0, 10, 5},
		{-1, 0, 10, 0},
		{11, 0, 10, 10},
		{0, 0, 0, 0},
	}
	for _, c := range cases {
		if got := Clip(c.x, c.lo, c.hi); got != c.want {
			t.Errorf("Clip(%v,%v,%v)=%v want %v", c.x, c.lo, c.hi, got, c.want)
		}
	}
}

func TestClipProperty(t *testing.T) {
	f := func(x float64) bool {
		if math.IsNaN(x) {
			return true
		}
		y := Clip(x, -1, 1)
		return y >= -1 && y <= 1 && (x < -1 || x > 1 || y == x)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestMeanStd(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if m := Mean(xs); m != 5 {
		t.Errorf("Mean=%v want 5", m)
	}
	if s := Std(xs); math.Abs(s-2) > 1e-12 {
		t.Errorf("Std=%v want 2", s)
	}
	if Mean(nil) != 0 || Std(nil) != 0 {
		t.Error("empty-slice Mean/Std should be 0")
	}
}

func TestMinMaxSum(t *testing.T) {
	xs := []float64{3, -1, 4, 1, 5}
	if Min(xs) != -1 || Max(xs) != 5 || Sum(xs) != 12 {
		t.Errorf("Min/Max/Sum wrong: %v %v %v", Min(xs), Max(xs), Sum(xs))
	}
}

func TestPercentile(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	if Median(xs) != 3 {
		t.Errorf("Median=%v want 3", Median(xs))
	}
	if Percentile(xs, 0) != 1 || Percentile(xs, 1) != 5 {
		t.Error("extreme percentiles wrong")
	}
	if p := Percentile(xs, 0.25); p != 2 {
		t.Errorf("P25=%v want 2", p)
	}
}

func TestRunningStatMatchesBatch(t *testing.T) {
	xs := []float64{1.5, -2.25, 4, 0, 3.125, 9, -7}
	var r RunningStat
	for _, x := range xs {
		r.Push(x)
	}
	if math.Abs(r.Mean()-Mean(xs)) > 1e-12 {
		t.Errorf("running mean %v vs batch %v", r.Mean(), Mean(xs))
	}
	if math.Abs(r.Std()-Std(xs)) > 1e-12 {
		t.Errorf("running std %v vs batch %v", r.Std(), Std(xs))
	}
	if r.Count() != int64(len(xs)) {
		t.Errorf("count %d want %d", r.Count(), len(xs))
	}
}

func TestRunningStatProperty(t *testing.T) {
	f := func(xs []float64) bool {
		clean := make([]float64, 0, len(xs))
		for _, x := range xs {
			if !math.IsNaN(x) && !math.IsInf(x, 0) && math.Abs(x) < 1e6 {
				clean = append(clean, x)
			}
		}
		if len(clean) < 2 {
			return true
		}
		var r RunningStat
		for _, x := range clean {
			r.Push(x)
		}
		return math.Abs(r.Mean()-Mean(clean)) < 1e-6 && math.Abs(r.Std()-Std(clean)) < 1e-6
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestRunningVecNormalize(t *testing.T) {
	rv := NewRunningVec(2)
	rv.Push([]float64{1, 10})
	rv.Push([]float64{3, 30})
	rv.Push([]float64{5, 50})
	out := rv.Normalize([]float64{3, 30}, nil)
	if math.Abs(out[0]) > 1e-12 || math.Abs(out[1]) > 1e-12 {
		t.Errorf("mean input should normalize to 0, got %v", out)
	}
	if rv.Dim() != 2 {
		t.Errorf("Dim=%d want 2", rv.Dim())
	}
}

func TestRunningVecPanicsOnDimMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on dim mismatch")
		}
	}()
	NewRunningVec(2).Push([]float64{1})
}

func TestLinspace(t *testing.T) {
	xs := Linspace(0, 1, 5)
	want := []float64{0, 0.25, 0.5, 0.75, 1}
	for i := range want {
		if math.Abs(xs[i]-want[i]) > 1e-12 {
			t.Fatalf("Linspace=%v want %v", xs, want)
		}
	}
}

func TestLerp(t *testing.T) {
	if Lerp(0, 10, 0.3) != 3 {
		t.Errorf("Lerp(0,10,0.3)=%v", Lerp(0, 10, 0.3))
	}
}

func TestEWMA(t *testing.T) {
	e := NewEWMA(0.5)
	if e.Value() != 0 {
		t.Fatal("zero before push")
	}
	if e.Push(10) != 10 {
		t.Fatal("first push initializes")
	}
	if got := e.Push(0); got != 5 {
		t.Fatalf("ewma %v want 5", got)
	}
	if e.Value() != 5 {
		t.Fatal("Value wrong")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("bad alpha should panic")
		}
	}()
	NewEWMA(0)
}

func TestBootstrapCI(t *testing.T) {
	rng := NewRand(8)
	xs := make([]float64, 200)
	for i := range xs {
		xs[i] = rng.NormFloat64()*2 + 7
	}
	lo, hi := BootstrapCI(NewRand(9), xs, 500, 0.95)
	if !(lo < 7 && 7 < hi) {
		t.Fatalf("CI [%v, %v] should cover the true mean 7", lo, hi)
	}
	if hi-lo > 1.5 {
		t.Fatalf("CI too wide: [%v, %v]", lo, hi)
	}
	// Deterministic given the rng.
	lo2, hi2 := BootstrapCI(NewRand(9), xs, 500, 0.95)
	if lo != lo2 || hi != hi2 {
		t.Fatal("bootstrap not deterministic")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("empty input should panic")
		}
	}()
	BootstrapCI(rng, nil, 10, 0.9)
}

func TestApproxEq(t *testing.T) {
	cases := []struct {
		a, b, tol float64
		want      bool
	}{
		{1, 1, 1e-9, true},
		{1, 1 + 1e-12, 1e-9, true},
		{1, 1 + 1e-6, 1e-9, false},
		{0, 1e-12, 1e-9, true},                 // absolute regime near zero
		{1e12, 1e12 * (1 + 1e-12), 1e-9, true}, // relative regime for large magnitudes
		{1e12, 1.001e12, 1e-9, false},
		{math.Inf(1), math.Inf(1), 1e-9, true},
		{math.Inf(1), math.Inf(-1), 1e-9, false},
		{math.Inf(1), 1e300, 1e-9, false},
		{math.NaN(), math.NaN(), 1e-9, false},
		{math.NaN(), 1, 1e-9, false},
		{-2, -2, 0, true},
	}
	for _, c := range cases {
		if got := ApproxEq(c.a, c.b, c.tol); got != c.want {
			t.Errorf("ApproxEq(%g, %g, %g) = %v, want %v", c.a, c.b, c.tol, got, c.want)
		}
	}
	// Symmetry holds for arbitrary inputs.
	sym := func(a, b float64) bool { return ApproxEq(a, b, 1e-9) == ApproxEq(b, a, 1e-9) }
	if err := quick.Check(sym, nil); err != nil {
		t.Error(err)
	}
}

func TestWithin(t *testing.T) {
	if !Within(1.0, 1.05, 0.1) || Within(1.0, 1.2, 0.1) {
		t.Fatal("Within absolute tolerance wrong")
	}
	if Within(math.NaN(), math.NaN(), 1) {
		t.Fatal("NaN must not compare within anything")
	}
}
