package lint

import (
	"go/ast"
	"go/types"
)

// GoroutineLeak flags `go` statements that can block forever: a spawned
// function whose body contains an infinite loop performing channel
// operations with no path that observes cancellation. A loop observes
// cancellation when it receives from a ctx.Done()-style channel, does a
// comma-ok receive (so a close is seen), receives from a chan struct{}
// (the close-signal convention), or ranges over a channel (terminates on
// close). Everything else — heartbeat tickers, bus drains, SSE pumps,
// reconcile loops that spin on a bare receive — outlives shutdown, pins
// its captures, and turns graceful drain into a hang.
//
// The rule is deliberately narrow: straight-line sends/receives and
// bounded loops are out of scope (they terminate or their blocking is the
// caller's contract), and a select with a default case never blocks. The
// spawned callee is resolved through the call graph, so `go s.run()`
// leaking inside run's body in another package is still caught.
type GoroutineLeak struct{}

// Name implements Rule.
func (GoroutineLeak) Name() string { return "goroutine-leak" }

// Doc implements Rule.
func (GoroutineLeak) Doc() string {
	return "spawned goroutines with infinite channel loops observe ctx.Done() or a close signal"
}

// Check implements Rule; GoroutineLeak is a ModuleRule.
func (GoroutineLeak) Check(pkg *Package, report ReportFunc) {}

// goleakScopes are the package path segments the rule applies to — the
// concurrent control plane and the daemon mains.
var goleakScopes = []string{"internal/executor", "internal/studyd", "internal/shard", "internal/obs", "internal/daemon", "internal/analysis", "cmd"}

// CheckModule implements ModuleRule.
func (r GoroutineLeak) CheckModule(mod *Module, report ReportFunc) {
	for _, pkg := range mod.Pkgs {
		if !pkg.Checked() || !inAnyScope(pkg.Path, goleakScopes) {
			continue
		}
		for _, name := range pkg.NonTestFileNames() {
			ast.Inspect(pkg.Files[name], func(n ast.Node) bool {
				g, ok := n.(*ast.GoStmt)
				if !ok {
					return true
				}
				body, info := spawnedBody(mod, pkg, g.Call)
				if body == nil {
					return true
				}
				if desc := leakyLoop(info, body); desc != "" {
					report(r.Name(), g.Pos(),
						"goroutine can block forever: %s never observes ctx.Done() or a close signal, so it outlives shutdown", desc)
				}
				return true
			})
		}
	}
}

// inAnyScope reports whether path contains any of the segment sequences.
func inAnyScope(path string, scopes []string) bool {
	for _, seg := range scopes {
		if pathHasSegments(path, seg) {
			return true
		}
	}
	return false
}

// spawnedBody resolves the body the go statement will run: a function
// literal's body directly, or the declaration of a statically-resolved
// callee (possibly in another package — then that package's type info is
// returned with it).
func spawnedBody(mod *Module, pkg *Package, call *ast.CallExpr) (*ast.BlockStmt, *types.Info) {
	if lit, ok := ast.Unparen(call.Fun).(*ast.FuncLit); ok {
		return lit.Body, pkg.TypesInfo
	}
	fn := CalleeOf(pkg.TypesInfo, call)
	if fn == nil {
		return nil, nil
	}
	decl := mod.Graph.DeclOf[fn]
	declPkg := mod.Graph.PkgOf[fn]
	if decl == nil || declPkg == nil || !declPkg.Checked() {
		return nil, nil
	}
	return decl.Body, declPkg.TypesInfo
}

// leakyLoop returns a description of the first infinite channel loop in
// body that never observes cancellation, or "".
func leakyLoop(info *types.Info, body *ast.BlockStmt) string {
	desc := ""
	ast.Inspect(body, func(n ast.Node) bool {
		if desc != "" {
			return false
		}
		switch v := n.(type) {
		case *ast.FuncLit:
			// Nested literals run on their own schedule; analyzed when
			// their own go statement spawns them.
			return false
		case *ast.ForStmt:
			if v.Cond != nil {
				return true // bounded or conditional loop
			}
			if d, observes := loopChannelOps(info, v.Body); d != "" && !observes {
				desc = d
			}
			return false // ops inside already classified; don't double-visit
		}
		return true
	})
	return desc
}

// loopChannelOps scans one infinite loop body for blocking channel
// operations and for cancellation observations. It returns a description
// of a blocking op (or "" when the loop has none) and whether any path
// observes ctx.Done()/a close signal.
func loopChannelOps(info *types.Info, body *ast.BlockStmt) (string, bool) {
	blocking, observes := chanOps(info, body)
	if blocking == "" {
		return "", observes
	}
	return "an infinite loop around " + blocking, observes
}

// chanOps classifies the channel operations under n (not descending into
// function literals or nested go statements).
func chanOps(info *types.Info, n ast.Node) (blocking string, observes bool) {
	note := func(b string, o bool) {
		if blocking == "" {
			blocking = b
		}
		observes = observes || o
	}
	ast.Inspect(n, func(n ast.Node) bool {
		switch v := n.(type) {
		case *ast.FuncLit, *ast.GoStmt:
			return false
		case *ast.RangeStmt:
			if isChanType(info, v.X) {
				note("", true) // range over a channel ends on close
			}
		case *ast.AssignStmt:
			// v, ok := <-ch observes the close.
			if len(v.Lhs) == 2 && len(v.Rhs) == 1 {
				if recv, ok := ast.Unparen(v.Rhs[0]).(*ast.UnaryExpr); ok && recv.Op.String() == "<-" {
					note("", true)
					return true
				}
			}
		case *ast.SelectStmt:
			hasDefault := false
			for _, cl := range v.Body.List {
				if comm, ok := cl.(*ast.CommClause); ok && comm.Comm == nil {
					hasDefault = true
				}
			}
			if !hasDefault {
				note("a select with no default case", false)
				return true
			}
			// A select with default never blocks: its comm ops are not
			// blocking ops, but the case bodies still count.
			for _, cl := range v.Body.List {
				if comm, ok := cl.(*ast.CommClause); ok {
					for _, st := range comm.Body {
						note(chanOps(info, st))
					}
				}
			}
			return false
		case *ast.SendStmt:
			note("a channel send", false)
		case *ast.UnaryExpr:
			if v.Op.String() != "<-" {
				return true
			}
			if isDoneCall(info, v.X) || isSignalChan(info, v.X) {
				note("", true)
			} else {
				note("a channel receive", false)
			}
		}
		return true
	})
	return blocking, observes
}

// isDoneCall reports whether e is a call to a method named Done returning
// a receive-only channel — the ctx.Done() shape.
func isDoneCall(info *types.Info, e ast.Expr) bool {
	call, ok := ast.Unparen(e).(*ast.CallExpr)
	if !ok {
		return false
	}
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "Done" {
		return false
	}
	tv, ok := info.Types[e]
	if !ok {
		return false
	}
	ch, ok := tv.Type.Underlying().(*types.Chan)
	return ok && ch.Dir() == types.RecvOnly
}

// isSignalChan reports whether e is a chan struct{} — the close-signal
// convention (done/quit/wake channels are closed, not sent to).
func isSignalChan(info *types.Info, e ast.Expr) bool {
	tv, ok := info.Types[e]
	if !ok {
		return false
	}
	ch, ok := tv.Type.Underlying().(*types.Chan)
	if !ok {
		return false
	}
	st, ok := ch.Elem().Underlying().(*types.Struct)
	return ok && st.NumFields() == 0
}

// isChanType reports whether e's type is a channel.
func isChanType(info *types.Info, e ast.Expr) bool {
	tv, ok := info.Types[e]
	if !ok {
		return false
	}
	_, isChan := tv.Type.Underlying().(*types.Chan)
	return isChan
}
