package lint

import (
	"go/ast"
)

// CtxBlocking requires exported blocking functions in internal/core,
// internal/studyd and internal/executor to take a context.Context as
// their first parameter. Those are the packages the daemon builds on: a
// blocking call without a context cannot be drained on SIGTERM, which
// turns graceful shutdown — and therefore crash-safe journaling — into a
// race. In internal/executor the stakes are higher still: a heartbeat or
// dispatch loop that cannot be cancelled keeps a dead fleet alive.
//
// "Blocking" is detected syntactically: the function body performs a
// channel send/receive, a select, time.Sleep, ranges over a ticker/timer
// channel (a `.C` selector), or calls a Wait/Acquire method. Function
// literals and go statements are excluded (work launched asynchronously
// does not block the caller). Thin wrappers whose entire body delegates
// to a context-taking variant with context.Background() or context.TODO()
// are exempt — that is the sanctioned convenience-API shape.
type CtxBlocking struct{}

// Name implements Rule.
func (CtxBlocking) Name() string { return "ctx-blocking" }

// Doc implements Rule.
func (CtxBlocking) Doc() string {
	return "exported blocking funcs in internal/{core,studyd,executor,daemon,shard,analysis} take ctx first"
}

// ctxScopes are the package path segment sequences the rule applies to.
var ctxScopes = []string{"internal/core", "internal/studyd", "internal/executor", "internal/daemon", "internal/shard", "internal/analysis"}

// Check implements Rule.
func (r CtxBlocking) Check(pkg *Package, report ReportFunc) {
	inScope := false
	for _, seg := range ctxScopes {
		if pathHasSegments(pkg.Path, seg) {
			inScope = true
			break
		}
	}
	if !inScope {
		return
	}
	for _, name := range pkg.SortedFileNames() {
		if IsTestFile(name) {
			continue
		}
		file := pkg.Files[name]
		timeName := importName(file, "time")
		for _, decl := range file.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil || !fn.Name.IsExported() {
				continue
			}
			if firstParamIsContext(fn) || isCtxDelegator(fn) {
				continue
			}
			if op := blockingOp(fn.Body, timeName); op != "" {
				report(r.Name(), fn.Pos(),
					"exported %s blocks (%s) but does not take a context.Context first parameter; without one the daemon cannot drain it on shutdown",
					fn.Name.Name, op)
			}
		}
	}
}

// firstParamIsContext reports whether fn's first parameter is typed
// context.Context.
func firstParamIsContext(fn *ast.FuncDecl) bool {
	params := fn.Type.Params
	if params == nil || len(params.List) == 0 {
		return false
	}
	sel, ok := params.List[0].Type.(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "Context" {
		return false
	}
	id, ok := sel.X.(*ast.Ident)
	return ok && id.Name == "context"
}

// isCtxDelegator reports whether fn's body is a single statement that
// calls something with context.Background() or context.TODO() as the
// first argument — the convenience-wrapper shape (Run → RunContext).
func isCtxDelegator(fn *ast.FuncDecl) bool {
	if len(fn.Body.List) != 1 {
		return false
	}
	var call *ast.CallExpr
	switch st := fn.Body.List[0].(type) {
	case *ast.ReturnStmt:
		if len(st.Results) == 1 {
			call, _ = st.Results[0].(*ast.CallExpr)
		}
	case *ast.ExprStmt:
		call, _ = st.X.(*ast.CallExpr)
	}
	if call == nil || len(call.Args) == 0 {
		return false
	}
	argCall, ok := call.Args[0].(*ast.CallExpr)
	if !ok {
		return false
	}
	sel, ok := argCall.Fun.(*ast.SelectorExpr)
	if !ok || (sel.Sel.Name != "Background" && sel.Sel.Name != "TODO") {
		return false
	}
	id, ok := sel.X.(*ast.Ident)
	return ok && id.Name == "context"
}

// blockingOp returns a description of the first synchronous blocking
// operation in body, or "". Bodies of go statements and function literals
// are skipped: they run on other goroutines or at another time.
func blockingOp(body *ast.BlockStmt, timeName string) string {
	op := ""
	var walk func(n ast.Node) bool
	walk = func(n ast.Node) bool {
		if op != "" {
			return false
		}
		switch v := n.(type) {
		case *ast.GoStmt, *ast.FuncLit:
			return false
		case *ast.RangeStmt:
			// `for range ticker.C` blocks between ticks forever unless a
			// surrounding select watches ctx.Done(). A two-variable range
			// cannot be over a channel, so it is left alone.
			if sel, ok := v.X.(*ast.SelectorExpr); ok && sel.Sel.Name == "C" && v.Value == nil {
				op = "ticker range"
			}
		case *ast.SendStmt:
			op = "channel send"
		case *ast.UnaryExpr:
			if v.Op.String() == "<-" {
				op = "channel receive"
			}
		case *ast.SelectStmt:
			op = "select"
		case *ast.CallExpr:
			if sel, ok := v.Fun.(*ast.SelectorExpr); ok {
				switch {
				case sel.Sel.Name == "Sleep" && isPkgRef(sel.X, timeName):
					op = "time.Sleep"
				case sel.Sel.Name == "Wait" || sel.Sel.Name == "Acquire":
					op = sel.Sel.Name + " call"
				}
			}
		}
		return true
	}
	ast.Inspect(body, walk)
	return op
}
