package lint

import (
	"go/ast"
)

// NondetermRand forbids the package-level math/rand functions
// (rand.Float64, rand.IntN, rand.Shuffle, ...) outside internal/mathx.
// They draw from the process-global, auto-seeded source, so any call on a
// trial path makes the campaign irreproducible and breaks journal-replay
// resume. RNGs must be injected as *rand.Rand values derived from the
// study seed (mathx.Seeder / mathx.NewRand).
type NondetermRand struct{}

// Name implements Rule.
func (NondetermRand) Name() string { return "nondeterm-rand" }

// Doc implements Rule.
func (NondetermRand) Doc() string {
	return "no package-level math/rand calls outside internal/mathx; inject *rand.Rand"
}

// randAllowed are the math/rand selectors that do not touch the global
// source: deterministic constructors and type names.
var randAllowed = map[string]bool{
	"New": true, "NewPCG": true, "NewChaCha8": true, "NewZipf": true,
	"NewSource": true,
	"Rand":      true, "Source": true, "PCG": true, "ChaCha8": true, "Zipf": true,
}

// Check implements Rule.
func (r NondetermRand) Check(pkg *Package, report ReportFunc) {
	if pathHasSegments(pkg.Path, "internal/mathx") {
		// mathx is the one sanctioned wrapper around math/rand.
		return
	}
	for _, name := range pkg.SortedFileNames() {
		if IsTestFile(name) {
			continue
		}
		file := pkg.Files[name]
		randName := importName(file, "math/rand/v2")
		if randName == "" {
			randName = importName(file, "math/rand")
		}
		if randName == "" {
			continue
		}
		ast.Inspect(file, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok || !isPkgRef(sel.X, randName) || randAllowed[sel.Sel.Name] {
				return true
			}
			report(r.Name(), sel.Pos(),
				"rand.%s uses the process-global source and breaks replay determinism; inject a *rand.Rand derived from the study seed (mathx.NewRand / mathx.Seeder)",
				sel.Sel.Name)
			return true
		})
	}
}
