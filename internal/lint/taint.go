package lint

import (
	"go/ast"
	"go/types"
)

// DetermTaint tracks wall-clock and global-RNG values interprocedurally
// and flags any flow into a journal-affecting path. The replay contract
// (docs/lint.md) allows exactly two clock/randomness seams: the
// power.Stopwatch clock and explicitly seeded RNGs. A time.Now() that
// sneaks into a trial record — even laundered through a helper in another
// package — makes the journal unreproducible, which nondeterm-rand and
// nondeterm-time cannot see because each call site looks clean in
// isolation.
//
// Sources: time.Now/Since/Until and package-level math/rand draws
// (methods on a *rand.Rand are tainted only if the Rand itself is, e.g.
// seeded from the clock). internal/power is exempt — it IS the sanctioned
// clock seam, and values produced by its API are considered clean. Live
// metric reads (Value() on internal/obs Counter/Gauge) are also sources:
// counters like the tensor pool's stolen-chunks total depend on goroutine
// scheduling, so a journaled metric read differs run to run even when the
// arithmetic is bit-identical. Recorded-span reads (ID() on an active
// span, Spans() on a collector in internal/obs/span) taint the same way:
// a recorded span carries stopwatch timings and retry-attempt IDs, so
// journaling one would leak wall-clock state into the replay surface.
// Deriving a span ID (span.DeriveID/DeriveTrace) is pure hashing and
// stays clean. internal/obs itself is exempt — the /metrics and span
// serving paths are where reads belong.
//
// Sinks: calls into internal/journal, writes to fields of
// internal/journal types, composite literals of those types, and methods
// on core.Recorder (trial metric reporting). Flows are tracked through
// module function summaries to a fixed point: a function that returns a
// tainted value taints its callers, and a function that forwards a
// parameter into a sink turns every tainted argument at that position
// into a finding at the call site.
type DetermTaint struct{}

// Name implements Rule.
func (DetermTaint) Name() string { return "determinism-taint" }

// Doc implements Rule.
func (DetermTaint) Doc() string {
	return "wall-clock/global-RNG values never flow into journal-affecting paths (interprocedural)"
}

// Check implements Rule; DetermTaint is a ModuleRule.
func (DetermTaint) Check(pkg *Package, report ReportFunc) {}

// taintSummary is the interprocedural fact sheet for one module function.
type taintSummary struct {
	// returns: some return value may be tainted.
	returns bool
	// paramReturns: bitmask of parameters that may flow to a return value.
	paramReturns int64
	// sinkParams: bitmask of parameters that may flow into a sink.
	sinkParams int64
}

type taintAnalysis struct {
	mod       *Module
	summaries map[*types.Func]*taintSummary
}

// CheckModule implements ModuleRule.
func (r DetermTaint) CheckModule(mod *Module, report ReportFunc) {
	a := &taintAnalysis{mod: mod, summaries: map[*types.Func]*taintSummary{}}
	// Summaries grow monotonically, so iterating to a fixed point
	// propagates taint through call chains; the cap bounds pathological
	// mutual recursion.
	for iter := 0; iter < 8; iter++ {
		changed := false
		a.eachFunc(func(pkg *Package, fn *types.Func, decl *ast.FuncDecl) {
			sum := a.analyzeFunc(pkg, fn, decl, nil)
			old := a.summaries[fn]
			if old == nil || *old != sum {
				a.summaries[fn] = &sum
				changed = true
			}
		})
		if !changed {
			break
		}
	}
	a.eachFunc(func(pkg *Package, fn *types.Func, decl *ast.FuncDecl) {
		a.analyzeFunc(pkg, fn, decl, func(pos ast.Node, format string, args ...any) {
			report(r.Name(), pos.Pos(), format, args...)
		})
	})
}

// eachFunc visits every declared function in deterministic order.
func (a *taintAnalysis) eachFunc(visit func(*Package, *types.Func, *ast.FuncDecl)) {
	for _, pkg := range a.mod.Pkgs {
		if !pkg.Checked() {
			continue
		}
		for _, name := range pkg.NonTestFileNames() {
			for _, decl := range pkg.Files[name].Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				if fn, ok := pkg.TypesInfo.Defs[fd.Name].(*types.Func); ok {
					visit(pkg, fn, fd)
				}
			}
		}
	}
}

// taintState is the per-function dataflow state: which locals are tainted
// and which parameters each local may carry.
type taintState struct {
	info      *types.Info
	exempt    bool // package is the sanctioned clock seam
	obsExempt bool // package is the metrics registry / serving path
	a         *taintAnalysis
	tainted   map[types.Object]bool
	origin    map[types.Object]int64
	params    map[types.Object]int
}

type emitFunc func(pos ast.Node, format string, args ...any)

// analyzeFunc runs the intra-function walk (two passes, so chained
// assignments settle) and returns fn's summary. With emit set, findings
// are reported on the last pass.
func (a *taintAnalysis) analyzeFunc(pkg *Package, fn *types.Func, decl *ast.FuncDecl, emit emitFunc) taintSummary {
	st := &taintState{
		info:      pkg.TypesInfo,
		exempt:    pathHasSegments(pkg.Path, "internal/power"),
		obsExempt: pathHasSegments(pkg.Path, "internal/obs"),
		a:         a,
		tainted:   map[types.Object]bool{},
		origin:    map[types.Object]int64{},
		params:    map[types.Object]int{},
	}
	sig := fn.Type().(*types.Signature)
	for i := 0; i < sig.Params().Len() && i < 63; i++ {
		st.params[sig.Params().At(i)] = i
	}
	var sum taintSummary
	for pass := 0; pass < 2; pass++ {
		var e emitFunc
		if pass == 1 {
			e = emit
		}
		st.walk(decl.Body, sig, &sum, e, 0)
	}
	return sum
}

// walk processes one function body region. depth counts enclosing
// function literals: returns at depth > 0 belong to the literal, not fn,
// but assignments and sinks inside literals still use the shared state —
// that is exactly how captured tainted values leak into callbacks.
func (st *taintState) walk(n ast.Node, sig *types.Signature, sum *taintSummary, emit emitFunc, depth int) {
	ast.Inspect(n, func(n ast.Node) bool {
		switch v := n.(type) {
		case *ast.FuncLit:
			st.walk(v.Body, sig, sum, emit, depth+1)
			return false
		case *ast.AssignStmt:
			st.assign(v, sum, emit)
		case *ast.RangeStmt:
			if t, o := st.taintOf(v.X); t || o != 0 {
				for _, e := range []ast.Expr{v.Key, v.Value} {
					if id, ok := e.(*ast.Ident); ok && id != nil {
						st.mark(id, t, o)
					}
				}
			}
		case *ast.ReturnStmt:
			if depth > 0 {
				return true
			}
			for _, res := range v.Results {
				t, o := st.taintOf(res)
				sum.returns = sum.returns || t
				sum.paramReturns |= o
			}
			if len(v.Results) == 0 && sig.Results() != nil {
				// Bare return with named results.
				for i := 0; i < sig.Results().Len(); i++ {
					obj := sig.Results().At(i)
					sum.returns = sum.returns || st.tainted[obj]
					sum.paramReturns |= st.origin[obj]
				}
			}
		case *ast.CallExpr:
			st.sinkCall(v, sum, emit)
		case *ast.CompositeLit:
			st.sinkComposite(v, sum, emit)
		}
		return true
	})
}

// assign propagates taint from RHS to LHS and checks field-write sinks.
func (st *taintState) assign(v *ast.AssignStmt, sum *taintSummary, emit emitFunc) {
	if len(v.Rhs) == 1 && len(v.Lhs) > 1 {
		t, o := st.taintOf(v.Rhs[0])
		for _, lhs := range v.Lhs {
			st.markLHS(lhs, t, o, sum, emit)
		}
		return
	}
	for i, lhs := range v.Lhs {
		if i >= len(v.Rhs) {
			break
		}
		t, o := st.taintOf(v.Rhs[i])
		st.markLHS(lhs, t, o, sum, emit)
	}
}

// markLHS taints the assignment target; a write into a journal-type field
// is a sink.
func (st *taintState) markLHS(lhs ast.Expr, t bool, o int64, sum *taintSummary, emit emitFunc) {
	switch e := ast.Unparen(lhs).(type) {
	case *ast.Ident:
		st.mark(e, t, o)
	case *ast.SelectorExpr:
		if fv, ok := useOf(st.info, e.Sel).(*types.Var); ok && fv.IsField() && st.a.sinkPkgObj(fv) {
			sum.sinkParams |= o
			if t && emit != nil {
				emit(e, "clock-, RNG-, or metric-derived value is written into journal field %s; only power.Stopwatch or seeded-RNG values may reach the journal", fv.Name())
			}
		}
	case *ast.IndexExpr:
		if id, ok := ast.Unparen(e.X).(*ast.Ident); ok {
			st.mark(id, t, o)
		}
	case *ast.StarExpr:
		if id, ok := ast.Unparen(e.X).(*ast.Ident); ok {
			st.mark(id, t, o)
		}
	}
}

// mark taints the object behind id (monotonically — taint is never
// cleared, keeping the walk flow-insensitive and cheap).
func (st *taintState) mark(id *ast.Ident, t bool, o int64) {
	if id.Name == "_" {
		return
	}
	obj := useOf(st.info, id)
	if obj == nil {
		return
	}
	if t {
		st.tainted[obj] = true
	}
	st.origin[obj] |= o
}

// sinkCall flags tainted arguments handed to a sink — either a direct
// journal/Recorder call, or a module function whose summary says the
// parameter reaches a sink inside.
func (st *taintState) sinkCall(call *ast.CallExpr, sum *taintSummary, emit emitFunc) {
	callee := CalleeOf(st.info, call)
	if callee == nil {
		return
	}
	if st.a.isSinkFunc(callee) {
		for _, arg := range call.Args {
			t, o := st.taintOf(arg)
			sum.sinkParams |= o
			if t && emit != nil && !st.isSinkCompositeExpr(arg) {
				emit(arg, "clock-, RNG-, or metric-derived value flows into %s.%s — a journal-affecting path; route it through power.Stopwatch or a seeded RNG", pkgNameOf(callee), callee.Name())
			}
		}
		return
	}
	s := st.a.summaries[callee]
	if s == nil || s.sinkParams == 0 {
		return
	}
	for i, arg := range call.Args {
		if i >= 63 || s.sinkParams&(1<<i) == 0 {
			continue
		}
		t, o := st.taintOf(arg)
		sum.sinkParams |= o
		if t && emit != nil {
			emit(arg, "clock-, RNG-, or metric-derived value reaches the journal through %s (parameter %d flows to a journal sink)", callee.Name(), i)
		}
	}
}

// sinkComposite flags tainted elements of a journal-type composite
// literal (rec := journal.Record{T: time.Now()} is a sink even before the
// record is appended).
func (st *taintState) sinkComposite(lit *ast.CompositeLit, sum *taintSummary, emit emitFunc) {
	if !st.isSinkComposite(lit) {
		return
	}
	for _, elt := range lit.Elts {
		val := elt
		if kv, ok := elt.(*ast.KeyValueExpr); ok {
			val = kv.Value
		}
		t, o := st.taintOf(val)
		sum.sinkParams |= o
		if t && emit != nil {
			emit(val, "clock-, RNG-, or metric-derived value is stored in a journal record literal; only power.Stopwatch or seeded-RNG values may reach the journal")
		}
	}
}

// isSinkComposite reports whether lit constructs a type declared in a
// sink package.
func (st *taintState) isSinkComposite(lit *ast.CompositeLit) bool {
	tv, ok := st.info.Types[lit]
	if !ok {
		return false
	}
	named, ok := tv.Type.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && pathHasSegments(obj.Pkg().Path(), "internal/journal")
}

func (st *taintState) isSinkCompositeExpr(e ast.Expr) bool {
	switch v := ast.Unparen(e).(type) {
	case *ast.CompositeLit:
		return st.isSinkComposite(v)
	case *ast.UnaryExpr:
		if lit, ok := v.X.(*ast.CompositeLit); ok && v.Op.String() == "&" {
			return st.isSinkComposite(lit)
		}
	}
	return false
}

// taintOf evaluates whether e may carry a clock/RNG-derived value, and
// which of the enclosing function's parameters it may carry.
func (st *taintState) taintOf(e ast.Expr) (bool, int64) {
	switch v := ast.Unparen(e).(type) {
	case *ast.Ident:
		obj := useOf(st.info, v)
		if obj == nil {
			return false, 0
		}
		o := st.origin[obj]
		if i, ok := st.params[obj]; ok {
			o |= 1 << i
		}
		return st.tainted[obj], o
	case *ast.SelectorExpr:
		if isPackageIdent(st.info, v.X) {
			return false, 0
		}
		return st.taintOf(v.X)
	case *ast.CallExpr:
		return st.taintOfCall(v)
	case *ast.UnaryExpr:
		if v.Op.String() == "<-" {
			return false, 0 // channel payloads are not tracked
		}
		return st.taintOf(v.X)
	case *ast.StarExpr:
		return st.taintOf(v.X)
	case *ast.BinaryExpr:
		t1, o1 := st.taintOf(v.X)
		t2, o2 := st.taintOf(v.Y)
		return t1 || t2, o1 | o2
	case *ast.IndexExpr:
		return st.taintOf(v.X)
	case *ast.SliceExpr:
		return st.taintOf(v.X)
	case *ast.TypeAssertExpr:
		return st.taintOf(v.X)
	case *ast.CompositeLit:
		t, o := false, int64(0)
		for _, elt := range v.Elts {
			val := elt
			if kv, ok := elt.(*ast.KeyValueExpr); ok {
				val = kv.Value
			}
			et, eo := st.taintOf(val)
			t, o = t || et, o|eo
		}
		return t, o
	}
	return false, 0
}

// taintOfCall evaluates a call expression: sources, the power exemption,
// module summaries, and conservative propagation through opaque calls.
func (st *taintState) taintOfCall(call *ast.CallExpr) (bool, int64) {
	// Conversions pass taint through.
	if tv, ok := st.info.Types[call.Fun]; ok && tv.IsType() {
		if len(call.Args) == 1 {
			return st.taintOf(call.Args[0])
		}
		return false, 0
	}
	argT := make([]bool, len(call.Args))
	argO := make([]int64, len(call.Args))
	anyArgT, allArgO := false, int64(0)
	for i, arg := range call.Args {
		argT[i], argO[i] = st.taintOf(arg)
		anyArgT = anyArgT || argT[i]
		allArgO |= argO[i]
	}
	recvT, recvO := false, int64(0)
	if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok && !isPackageIdent(st.info, sel.X) {
		recvT, recvO = st.taintOf(sel.X)
	}
	callee := CalleeOf(st.info, call)
	if callee == nil {
		// Dynamic call: propagate conservatively.
		return anyArgT || recvT, allArgO | recvO
	}
	if !st.exempt && isTimeSource(callee) {
		return true, 0
	}
	if isGlobalRandSource(callee) {
		return true, 0
	}
	if !st.obsExempt && isObsMetricRead(callee) {
		return true, 0
	}
	if !st.obsExempt && isObsSpanRead(callee) {
		return true, 0
	}
	if callee.Pkg() != nil && pathHasSegments(callee.Pkg().Path(), "internal/power") {
		return false, 0 // the sanctioned clock seam produces clean values
	}
	if st.a.mod.Graph.DeclOf[callee] != nil {
		// Module function: trust its summary.
		s := st.a.summaries[callee]
		if s == nil {
			return false, 0
		}
		t, o := s.returns, int64(0)
		for i := range call.Args {
			if i < 63 && s.paramReturns&(1<<i) != 0 {
				t = t || argT[i]
				o |= argO[i]
			}
		}
		return t, o
	}
	// Opaque (stdlib) call: taint propagates through unless every result
	// is a bool/error (predicates cannot carry a clock reading usefully).
	if opaqueResultsClean(callee) {
		return false, 0
	}
	return anyArgT || recvT, allArgO | recvO
}

// isTimeSource reports whether fn reads the wall clock.
func isTimeSource(fn *types.Func) bool {
	if fn.Pkg() == nil || fn.Pkg().Path() != "time" {
		return false
	}
	switch fn.Name() {
	case "Now", "Since", "Until":
		return true
	}
	return false
}

// isObsMetricRead reports whether fn reads a live metric value: a Value
// method on an internal/obs instrument. Counters fed from scheduling
// (chunk stealing, pool dispatch) make these reads nondeterministic even
// under the bit-identical kernel contract, so outside internal/obs they
// taint like a clock read.
func isObsMetricRead(fn *types.Func) bool {
	if fn.Name() != "Value" || fn.Pkg() == nil || !pathHasSegments(fn.Pkg().Path(), "internal/obs") {
		return false
	}
	sig, ok := fn.Type().(*types.Signature)
	return ok && sig.Recv() != nil
}

// isObsSpanRead reports whether fn reads back a recorded causal span: the
// ID of an active span or a collector's span slice in internal/obs/span.
// Recorded spans embed stopwatch durations and attempt-derived IDs, so
// outside internal/obs they taint like a clock read. The derivation
// functions (DeriveTrace, DeriveID) are package-level pure hashes, not
// methods, and stay clean.
func isObsSpanRead(fn *types.Func) bool {
	if fn.Pkg() == nil || !pathHasSegments(fn.Pkg().Path(), "internal/obs/span") {
		return false
	}
	if fn.Name() != "ID" && fn.Name() != "Spans" {
		return false
	}
	sig, ok := fn.Type().(*types.Signature)
	return ok && sig.Recv() != nil
}

// isGlobalRandSource reports whether fn draws from the process-global
// math/rand generator. Constructors are excluded: rand.New(seed) is only
// tainted through its seed argument.
func isGlobalRandSource(fn *types.Func) bool {
	if fn.Pkg() == nil {
		return false
	}
	if p := fn.Pkg().Path(); p != "math/rand" && p != "math/rand/v2" {
		return false
	}
	if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
		return false // methods on a Rand follow the receiver's taint
	}
	switch fn.Name() {
	case "New", "NewSource", "NewPCG", "NewZipf", "NewChaCha8":
		return false
	}
	return true
}

// isSinkFunc reports whether calling fn hands values to the journal: any
// function in internal/journal, or a method on core.Recorder (trial
// metric reporting — those values land in trial records verbatim).
func (a *taintAnalysis) isSinkFunc(fn *types.Func) bool {
	if fn.Pkg() == nil {
		return false
	}
	if pathHasSegments(fn.Pkg().Path(), "internal/journal") {
		return true
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return false
	}
	t := sig.Recv().Type()
	if ptr, ok := t.Underlying().(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == "Recorder" && obj.Pkg() != nil && pathHasSegments(obj.Pkg().Path(), "internal/core")
}

// sinkPkgObj reports whether obj is declared in a journal package.
func (a *taintAnalysis) sinkPkgObj(obj types.Object) bool {
	return obj.Pkg() != nil && pathHasSegments(obj.Pkg().Path(), "internal/journal")
}

// opaqueResultsClean reports whether every result of fn is bool or error.
func opaqueResultsClean(fn *types.Func) bool {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Results().Len() == 0 {
		return false
	}
	for i := 0; i < sig.Results().Len(); i++ {
		t := sig.Results().At(i).Type()
		if basic, ok := t.Underlying().(*types.Basic); ok && basic.Kind() == types.Bool {
			continue
		}
		if named, ok := t.(*types.Named); ok && named.Obj().Name() == "error" && named.Obj().Pkg() == nil {
			continue
		}
		return false
	}
	return true
}

// pkgNameOf returns fn's package name for messages.
func pkgNameOf(fn *types.Func) string {
	if fn.Pkg() == nil {
		return ""
	}
	return fn.Pkg().Name()
}

// isPackageIdent reports whether e names an imported package.
func isPackageIdent(info *types.Info, e ast.Expr) bool {
	id, ok := ast.Unparen(e).(*ast.Ident)
	if !ok {
		return false
	}
	_, isPkg := info.Uses[id].(*types.PkgName)
	return isPkg
}
