package lint

import (
	"go/ast"
)

// ErrDrop flags statements that silently discard an error return in
// non-test code. A journal append whose error vanishes is a lost trial —
// the resume machinery then replays a campaign that no longer matches its
// journal. Errors must be handled, returned, or discarded explicitly with
// `_ = f()` (the assignment is the acknowledgment); deferred calls are
// exempt by convention.
//
// Without type information the rule flags two shapes: bare calls to
// functions declared in the same package whose last result is error, and
// bare calls to methods with conventionally error-returning names (Close,
// Flush, Encode, ...). Same-package method names are flagged only when
// every method of that name in the package returns an error.
type ErrDrop struct{}

// Name implements Rule.
func (ErrDrop) Name() string { return "err-drop" }

// Doc implements Rule.
func (ErrDrop) Doc() string {
	return "no silently discarded error returns in non-test code"
}

// errDropMethods are method names that conventionally return an error
// worth checking.
var errDropMethods = map[string]bool{
	"Close": true, "Flush": true, "Sync": true, "Shutdown": true,
	"Encode": true, "Remove": true, "RemoveAll": true, "Rename": true,
	"MkdirAll": true, "Mkdir": true, "Setenv": true, "Unsetenv": true,
	"Truncate": true, "ListenAndServe": true, "Serve": true, "Chmod": true,
}

// Check implements Rule.
func (r ErrDrop) Check(pkg *Package, report ReportFunc) {
	funcs, methods := errReturningDecls(pkg)
	for _, name := range pkg.SortedFileNames() {
		if IsTestFile(name) {
			continue
		}
		file := pkg.Files[name]
		ast.Inspect(file, func(n ast.Node) bool {
			stmt, ok := n.(*ast.ExprStmt)
			if !ok {
				return true
			}
			call, ok := stmt.X.(*ast.CallExpr)
			if !ok {
				return true
			}
			switch fn := call.Fun.(type) {
			case *ast.Ident:
				// Obj is non-nil for same-file package functions (Kind
				// Fun) and for locally redeclared names (Kind Var); only
				// the latter are exempt.
				if funcs[fn.Name] && (fn.Obj == nil || fn.Obj.Kind == ast.Fun) {
					report(r.Name(), stmt.Pos(),
						"%s returns an error that is silently discarded; handle it or discard explicitly with _ =",
						fn.Name)
				}
			case *ast.SelectorExpr:
				if errDropMethods[fn.Sel.Name] || methods[fn.Sel.Name] {
					report(r.Name(), stmt.Pos(),
						"%s returns an error that is silently discarded; handle it or discard explicitly with _ =",
						fn.Sel.Name)
				}
			}
			return true
		})
	}
}

// errReturningDecls scans every file of pkg (tests included, since helpers
// may live there) and returns the plain functions whose last result is
// error, plus the method names for which every same-named method in the
// package returns an error.
func errReturningDecls(pkg *Package) (funcs, methods map[string]bool) {
	funcs = map[string]bool{}
	methods = map[string]bool{}
	nonErr := map[string]bool{}
	for _, name := range pkg.SortedFileNames() {
		for _, decl := range pkg.Files[name].Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok {
				continue
			}
			returnsErr := lastResultIsError(fn.Type)
			if fn.Recv == nil {
				if returnsErr {
					funcs[fn.Name.Name] = true
				}
				continue
			}
			if returnsErr {
				methods[fn.Name.Name] = true
			} else {
				nonErr[fn.Name.Name] = true
			}
		}
	}
	for name := range nonErr {
		delete(methods, name)
	}
	return funcs, methods
}

// lastResultIsError reports whether ft's final result type is the
// identifier error.
func lastResultIsError(ft *ast.FuncType) bool {
	if ft.Results == nil || len(ft.Results.List) == 0 {
		return false
	}
	last := ft.Results.List[len(ft.Results.List)-1]
	id, ok := last.Type.(*ast.Ident)
	return ok && id.Name == "error"
}
