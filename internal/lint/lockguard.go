package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// LockDiscipline enforces `// guarded-by: <mutex>` field annotations on
// shared structs. The annotation names a sibling mutex field; every
// access to the guarded field must then happen while that mutex is held.
// "Held" means one of:
//
//   - the enclosing function (or function literal) locks <base>.<mutex>
//     itself — Lock or RLock, on the same base expression;
//   - the enclosing function is a method and every module-internal caller
//     locks the mutex directly (the xxxLocked helper convention, inferred
//     one level deep through the call graph);
//   - the base object was created in the same function by a composite
//     literal — construction before publication needs no lock.
//
// Annotations are declarative and checked, not trusted: a guarded-by
// naming a field that does not exist in the struct is itself a finding.
type LockDiscipline struct{}

// Name implements Rule.
func (LockDiscipline) Name() string { return "lock-discipline" }

// Doc implements Rule.
func (LockDiscipline) Doc() string {
	return "fields annotated `guarded-by: <mutex>` are only touched while the mutex is held"
}

// Check implements Rule; LockDiscipline is a ModuleRule.
func (LockDiscipline) Check(pkg *Package, report ReportFunc) {}

// guardedByMarker introduces the annotation inside a field comment.
const guardedByMarker = "guarded-by:"

// lockUnit is one function body (declared function or literal) with the
// lock state relevant to the discipline check.
type lockUnit struct {
	fn     *types.Func                    // declared function object, nil for literals
	locks  map[*types.Var]map[string]bool // mutex field -> base expr strings locked in this unit
	locals map[types.Object]bool          // vars bound to composite literals created here
	accs   []lockAccess
}

// lockAccess is one syntactic access to a guarded field.
type lockAccess struct {
	sel   *ast.SelectorExpr
	field *types.Var
	base  string
	baseO types.Object // resolved base object when the base is a plain identifier
}

// CheckModule implements ModuleRule.
func (r LockDiscipline) CheckModule(mod *Module, report ReportFunc) {
	guarded := map[*types.Var]*types.Var{} // guarded field -> mutex field
	mutexName := map[*types.Var]string{}   // mutex field -> its name (for messages)

	// Pass 1: collect annotations.
	for _, pkg := range mod.Pkgs {
		if !pkg.Checked() {
			continue
		}
		for _, name := range pkg.NonTestFileNames() {
			ast.Inspect(pkg.Files[name], func(n ast.Node) bool {
				st, ok := n.(*ast.StructType)
				if !ok {
					return true
				}
				for _, field := range st.Fields.List {
					mu := guardedAnnotation(field)
					if mu == "" {
						continue
					}
					muVar := structFieldNamed(pkg.TypesInfo, st, mu)
					if muVar == nil {
						report(r.Name(), field.Pos(),
							"guarded-by names %q, which is not a field of this struct", mu)
						continue
					}
					mutexName[muVar] = mu
					for _, id := range field.Names {
						if v, ok := pkg.TypesInfo.Defs[id].(*types.Var); ok {
							guarded[v] = muVar
						}
					}
				}
				return true
			})
		}
	}
	if len(guarded) == 0 {
		return
	}

	// Pass 2: per-unit lock state and accesses.
	var units []*lockUnit
	declLocks := map[*types.Func]map[*types.Var]bool{}
	for _, pkg := range mod.Pkgs {
		if !pkg.Checked() {
			continue
		}
		for _, name := range pkg.NonTestFileNames() {
			for _, decl := range pkg.Files[name].Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				fn, _ := pkg.TypesInfo.Defs[fd.Name].(*types.Func)
				us := collectUnits(pkg.TypesInfo, fn, fd.Body, guarded)
				units = append(units, us...)
				for _, u := range us {
					if u.fn == nil {
						continue
					}
					set := declLocks[u.fn]
					if set == nil {
						set = map[*types.Var]bool{}
						declLocks[u.fn] = set
					}
					for mu := range u.locks {
						set[mu] = true
					}
				}
			}
		}
	}

	// Pass 3: decide each access.
	for _, u := range units {
		for _, acc := range u.accs {
			mu := guarded[acc.field]
			if u.locks[mu] != nil && u.locks[mu][acc.base] {
				continue
			}
			if acc.baseO != nil && u.locals[acc.baseO] {
				continue // construction before publication
			}
			if u.fn != nil && callersAllLock(mod.Graph, u.fn, mu, declLocks) {
				continue
			}
			report(r.Name(), acc.sel.Sel.Pos(),
				"field %s is guarded-by %s but accessed without holding %s.%s (lock it here, or lock in every caller)",
				acc.field.Name(), mutexName[mu], acc.base, mutexName[mu])
		}
	}
}

// callersAllLock reports whether fn has at least one module-internal
// caller and every one of them directly locks mu — the one-level holder
// inference for xxxLocked helpers.
func callersAllLock(g *CallGraph, fn *types.Func, mu *types.Var, declLocks map[*types.Func]map[*types.Var]bool) bool {
	external := 0
	for _, c := range g.Callers[fn] {
		if c == fn {
			continue // self-recursion proves nothing either way
		}
		if declLocks[c] == nil || !declLocks[c][mu] {
			return false
		}
		external++
	}
	return external > 0
}

// collectUnits walks body, splitting it into the unit for fn itself plus
// one unit per nested function literal (a literal runs on its own
// schedule — often another goroutine — so it must hold locks itself).
func collectUnits(info *types.Info, fn *types.Func, body *ast.BlockStmt, guarded map[*types.Var]*types.Var) []*lockUnit {
	root := newLockUnit(fn)
	units := []*lockUnit{root}
	var walk func(u *lockUnit, n ast.Node)
	walk = func(u *lockUnit, n ast.Node) {
		ast.Inspect(n, func(n ast.Node) bool {
			switch v := n.(type) {
			case *ast.FuncLit:
				child := newLockUnit(nil)
				units = append(units, child)
				walk(child, v.Body)
				return false
			case *ast.AssignStmt:
				for i, lhs := range v.Lhs {
					id, ok := lhs.(*ast.Ident)
					if !ok || info.Defs[id] == nil || i >= len(v.Rhs) {
						continue
					}
					if isCompositeCreate(v.Rhs[i]) {
						u.locals[info.Defs[id]] = true
					}
				}
			case *ast.ValueSpec:
				for i, id := range v.Names {
					if info.Defs[id] != nil && i < len(v.Values) && isCompositeCreate(v.Values[i]) {
						u.locals[info.Defs[id]] = true
					}
				}
			case *ast.CallExpr:
				if mu, base := lockCall(info, v); mu != nil {
					if u.locks[mu] == nil {
						u.locks[mu] = map[string]bool{}
					}
					u.locks[mu][base] = true
				}
			case *ast.SelectorExpr:
				obj := useOf(info, v.Sel)
				fv, ok := obj.(*types.Var)
				if !ok {
					return true
				}
				if _, isGuarded := guarded[fv]; !isGuarded {
					return true
				}
				acc := lockAccess{sel: v, field: fv, base: types.ExprString(v.X)}
				if id, ok := ast.Unparen(v.X).(*ast.Ident); ok {
					acc.baseO = useOf(info, id)
				}
				u.accs = append(u.accs, acc)
			}
			return true
		})
	}
	walk(root, body)
	return units
}

func newLockUnit(fn *types.Func) *lockUnit {
	return &lockUnit{
		fn:     fn,
		locks:  map[*types.Var]map[string]bool{},
		locals: map[types.Object]bool{},
	}
}

// useOf resolves an identifier to its object, through either Uses or Defs.
func useOf(info *types.Info, id *ast.Ident) types.Object {
	if obj := info.Uses[id]; obj != nil {
		return obj
	}
	return info.Defs[id]
}

// isCompositeCreate reports whether e constructs a fresh value: a
// composite literal, optionally behind & or a new() call.
func isCompositeCreate(e ast.Expr) bool {
	switch v := ast.Unparen(e).(type) {
	case *ast.CompositeLit:
		return true
	case *ast.UnaryExpr:
		if v.Op.String() == "&" {
			_, ok := v.X.(*ast.CompositeLit)
			return ok
		}
	case *ast.CallExpr:
		if id, ok := ast.Unparen(v.Fun).(*ast.Ident); ok && id.Name == "new" {
			return true
		}
	}
	return false
}

// lockCall decodes base.mu.Lock() / base.mu.RLock(), returning the mutex
// field object and the rendered base expression, or (nil, "").
func lockCall(info *types.Info, call *ast.CallExpr) (*types.Var, string) {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok || (sel.Sel.Name != "Lock" && sel.Sel.Name != "RLock") {
		return nil, ""
	}
	muSel, ok := ast.Unparen(sel.X).(*ast.SelectorExpr)
	if !ok {
		return nil, ""
	}
	mu, ok := useOf(info, muSel.Sel).(*types.Var)
	if !ok || !mu.IsField() {
		return nil, ""
	}
	return mu, types.ExprString(muSel.X)
}

// guardedAnnotation extracts the mutex name from a field's doc or line
// comment, or "".
func guardedAnnotation(field *ast.Field) string {
	for _, group := range []*ast.CommentGroup{field.Doc, field.Comment} {
		if group == nil {
			continue
		}
		for _, c := range group.List {
			text := strings.TrimSpace(strings.TrimLeft(c.Text, "/* "))
			idx := strings.Index(text, guardedByMarker)
			if idx < 0 {
				continue
			}
			rest := strings.TrimSpace(text[idx+len(guardedByMarker):])
			if fields := strings.Fields(rest); len(fields) > 0 {
				return strings.TrimSuffix(fields[0], ".")
			}
		}
	}
	return ""
}

// structFieldNamed resolves the field called name in the struct type st.
func structFieldNamed(info *types.Info, st *ast.StructType, name string) *types.Var {
	for _, field := range st.Fields.List {
		for _, id := range field.Names {
			if id.Name == name {
				v, _ := info.Defs[id].(*types.Var)
				return v
			}
		}
	}
	return nil
}
