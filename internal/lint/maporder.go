package lint

import (
	"go/ast"
	"strings"
)

// MapOrder flags ranging over a map when the loop body feeds an
// order-sensitive sink — appending to a slice, or writing to an
// encoder/writer — and the enclosing function never sorts. Go randomizes
// map iteration order on purpose, so such a loop emits journal lines,
// report rows or explorer observations in a different order on every run,
// which is exactly the nondeterminism the replay contract forbids.
//
// The rule is syntactic: it only flags ranges over expressions it can
// prove are maps from declarations in the same function (parameters,
// var declarations, := from make/map literals). Writing map values into
// another map is order-insensitive and not flagged.
type MapOrder struct{}

// Name implements Rule.
func (MapOrder) Name() string { return "map-order" }

// Doc implements Rule.
func (MapOrder) Doc() string {
	return "no order-sensitive output from a map range without sorting"
}

// orderSinkMethods are method/function selector names whose call order is
// observable in the output.
var orderSinkMethods = map[string]bool{
	"Write": true, "WriteString": true, "WriteByte": true, "WriteRune": true,
	"Encode": true, "Fprint": true, "Fprintf": true, "Fprintln": true,
	"Print": true, "Printf": true, "Println": true,
}

// Check implements Rule.
func (r MapOrder) Check(pkg *Package, report ReportFunc) {
	for _, name := range pkg.SortedFileNames() {
		if IsTestFile(name) {
			continue
		}
		file := pkg.Files[name]
		for _, decl := range file.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			sc := funcScope(file, fn)
			sorts := functionSorts(fn)
			ast.Inspect(fn.Body, func(n ast.Node) bool {
				rng, ok := n.(*ast.RangeStmt)
				if !ok || sc.exprKind(rng.X) != kindMap {
					return true
				}
				sink := orderSink(rng.Body)
				if sink == "" || sorts {
					return true
				}
				report(r.Name(), rng.Pos(),
					"range over a map feeds %s but the enclosing function never sorts; map order is randomized per run — collect keys, sort, then iterate",
					sink)
				return true
			})
		}
	}
}

// orderSink returns a description of the first order-sensitive operation
// in body, or "".
func orderSink(body *ast.BlockStmt) string {
	found := ""
	ast.Inspect(body, func(n ast.Node) bool {
		if found != "" {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		switch fn := call.Fun.(type) {
		case *ast.Ident:
			if fn.Name == "append" {
				found = "append"
			}
		case *ast.SelectorExpr:
			if orderSinkMethods[fn.Sel.Name] {
				found = fn.Sel.Name
			}
		}
		return true
	})
	return found
}

// functionSorts reports whether fn calls anything that looks like a sort
// (sort.*, slices.Sort*, or a helper whose name contains "sort").
func functionSorts(fn *ast.FuncDecl) bool {
	sorts := false
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		if sorts {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		name := ""
		switch f := call.Fun.(type) {
		case *ast.Ident:
			name = f.Name
		case *ast.SelectorExpr:
			name = f.Sel.Name
			if id, ok := f.X.(*ast.Ident); ok && (id.Name == "sort" || id.Name == "slices") {
				sorts = true
				return false
			}
		}
		if strings.Contains(strings.ToLower(name), "sort") {
			sorts = true
			return false
		}
		return true
	})
	return sorts
}
