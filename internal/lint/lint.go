// Package lint is rldecide's repo-specific static analysis suite. It
// enforces the determinism-and-safety invariants the replay contract
// depends on: crash-safe resume (core.Study.Resume + journal replay) only
// reproduces a campaign bit-for-bit if no code path draws from the
// process-global RNG, reads the wall clock outside the measurement layer,
// serializes map iteration order, compares floats exactly, blocks without
// a context, or drops errors on the floor.
//
// The analyzer is stdlib-only (go/ast, go/parser, go/token, go/types): it
// parses the module from source into one shared token.FileSet, type-checks
// every package with go/types (module-internal imports resolved from the
// parsed ASTs, standard-library imports through go/importer), builds a
// per-module call graph, and runs two kinds of rules over the result:
// per-package Rules (syntax-level) and ModuleRules (type- and flow-aware,
// cross-package). Findings carry file:line:column positions and can be
// silenced one at a time with a directive comment:
//
//	//lint:ignore <rule> <reason>
//
// placed on the offending line or on the line directly above it. The rule
// name must match exactly and the reason is mandatory — an ignore without
// a justification is itself a finding, and so is a directive that no
// longer suppresses anything (stale-ignore).
package lint

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Finding is one rule violation at a source position.
type Finding struct {
	Rule    string         `json:"rule"`
	Pos     token.Position `json:"-"`
	File    string         `json:"file"`
	Line    int            `json:"line"`
	Col     int            `json:"col"`
	Message string         `json:"message"`
}

func (f Finding) String() string {
	return fmt.Sprintf("%s:%d:%d: %s: %s", f.File, f.Line, f.Col, f.Rule, f.Message)
}

// Package is one parsed directory of Go source.
type Package struct {
	// Path is the slash-separated import path (module name + relative
	// directory), the key rules use for allowlists.
	Path string
	// Dir is the on-disk directory.
	Dir string
	// Fset positions every file in the package. All packages returned by
	// one Load call share a single FileSet so cross-package analyses can
	// resolve positions uniformly.
	Fset *token.FileSet
	// Files maps file names (absolute) to parsed files, including _test.go
	// files.
	Files map[string]*ast.File
	// Types is the type-checked package, populated by NewModule. It is set
	// even when type checking reported errors (go/types returns a partial
	// package); it is nil only before NewModule runs.
	Types *types.Package
	// TypesInfo records type-checker facts (uses, defs, selections, expr
	// types) for the package's non-test files. Nil before NewModule runs.
	TypesInfo *types.Info
	// TypeErrs holds the type-checker errors for this package, if any.
	// Type-aware rules skip packages that failed to check.
	TypeErrs []error
}

// IsTestFile reports whether name is a _test.go file.
func IsTestFile(name string) bool { return strings.HasSuffix(name, "_test.go") }

// SortedFileNames returns the package's file names in deterministic order.
func (p *Package) SortedFileNames() []string {
	names := make([]string, 0, len(p.Files))
	for name := range p.Files {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// NonTestFileNames returns the package's non-test file names in
// deterministic order — the set of files the type checker sees.
func (p *Package) NonTestFileNames() []string {
	names := make([]string, 0, len(p.Files))
	for name := range p.Files {
		if !IsTestFile(name) {
			names = append(names, name)
		}
	}
	sort.Strings(names)
	return names
}

// ReportFunc records one finding against a node.
type ReportFunc func(rule string, pos token.Pos, format string, args ...any)

// Rule checks one invariant over a whole package. Package-level granularity
// lets rules that need cross-file declaration info (err-drop) build it once.
type Rule interface {
	// Name is the identifier used in output and //lint:ignore directives.
	Name() string
	// Doc is a one-line description for -help style output.
	Doc() string
	// Check inspects pkg and reports findings.
	Check(pkg *Package, report ReportFunc)
}

// ModuleRule is a rule that needs the whole type-checked module at once:
// cross-package flows, the call graph, resolved types. A rule may
// implement both interfaces; the Runner invokes CheckModule exactly once
// per run instead of Check per package.
type ModuleRule interface {
	Rule
	// CheckModule inspects the type-checked module and reports findings.
	CheckModule(mod *Module, report ReportFunc)
}

// Runner loads packages and applies rules.
type Runner struct {
	Rules []Rule
}

// NewRunner returns a Runner with the full rldecide rule set.
func NewRunner() *Runner {
	return &Runner{Rules: AllRules()}
}

// AllRules returns the complete rule suite in stable order.
func AllRules() []Rule {
	return []Rule{
		NondetermRand{},
		NondetermTime{},
		MapOrder{},
		FloatEq{},
		CtxBlocking{},
		ErrDrop{},
		GoSpawn{},
		DetermTaint{},
		LockDiscipline{},
		GoroutineLeak{},
		HandlerAuth{},
	}
}

// Load parses the packages selected by patterns relative to root. A
// pattern is either a directory (linted alone) or a directory followed by
// "/..." (linted recursively); "./..." selects the whole module.
// Directories named "testdata", hidden directories and .git are skipped
// during recursive expansion but can still be targeted explicitly.
func Load(root string, patterns []string) ([]*Package, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	module := moduleName(root)
	dirs := map[string]bool{}
	for _, pat := range patterns {
		recursive := false
		if strings.HasSuffix(pat, "/...") || pat == "..." {
			recursive = true
			pat = strings.TrimSuffix(strings.TrimSuffix(pat, "..."), "/")
		}
		if pat == "" || pat == "." {
			pat = root
		} else if !filepath.IsAbs(pat) {
			pat = filepath.Join(root, pat)
		}
		if !recursive {
			dirs[pat] = true
			continue
		}
		err := filepath.WalkDir(pat, func(path string, d os.DirEntry, err error) error {
			if err != nil {
				return err
			}
			if !d.IsDir() {
				return nil
			}
			name := d.Name()
			if path != pat && (name == "testdata" || name == ".git" || strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
				return filepath.SkipDir
			}
			dirs[path] = true
			return nil
		})
		if err != nil {
			return nil, err
		}
	}

	sorted := make([]string, 0, len(dirs))
	for d := range dirs {
		sorted = append(sorted, d)
	}
	sort.Strings(sorted)

	fset := token.NewFileSet()
	var pkgs []*Package
	for _, dir := range sorted {
		pkg, err := loadDir(fset, root, module, dir)
		if err != nil {
			return nil, err
		}
		if pkg != nil {
			pkgs = append(pkgs, pkg)
		}
	}
	return pkgs, nil
}

// loadDir parses one directory into the shared fset, returning nil when it
// holds no Go files.
func loadDir(fset *token.FileSet, root, module, dir string) (*Package, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	files := map[string]*ast.File{}
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		name := filepath.Join(dir, e.Name())
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments)
		if err != nil {
			return nil, fmt.Errorf("lint: parse %s: %w", name, err)
		}
		files[name] = f
	}
	if len(files) == 0 {
		return nil, nil
	}
	rel, err := filepath.Rel(root, dir)
	if err != nil || strings.HasPrefix(rel, "..") {
		rel = dir
	}
	path := filepath.ToSlash(rel)
	if path == "." {
		path = ""
	}
	if module != "" {
		path = strings.TrimSuffix(module+"/"+path, "/")
	}
	return &Package{Path: path, Dir: dir, Fset: fset, Files: files}, nil
}

// moduleName reads the module path from root's go.mod, or returns "".
func moduleName(root string) string {
	data, err := os.ReadFile(filepath.Join(root, "go.mod"))
	if err != nil {
		return ""
	}
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module "); ok {
			return strings.TrimSpace(rest)
		}
	}
	return ""
}

// Run type-checks the module, applies every rule and returns the
// surviving findings (suppressed ones removed, stale directives added)
// sorted by position. Syntax rules run per package; ModuleRules run once
// over the whole type-checked module. Packages whose type check failed
// are skipped by ModuleRules but still see the syntax rules.
func (r *Runner) Run(pkgs []*Package) []Finding {
	mod := NewModule(pkgs)
	var findings []Finding
	report := func(rule string, pos token.Pos, format string, args ...any) {
		p := mod.Fset.Position(pos)
		findings = append(findings, Finding{
			Rule:    rule,
			Pos:     p,
			File:    p.Filename,
			Line:    p.Line,
			Col:     p.Column,
			Message: fmt.Sprintf(format, args...),
		})
	}
	for _, rule := range r.Rules {
		if mr, ok := rule.(ModuleRule); ok {
			mr.CheckModule(mod, report)
			continue
		}
		for _, pkg := range pkgs {
			rule.Check(pkg, report)
		}
	}
	findings = r.applySuppressions(pkgs, findings)
	SortFindings(findings)
	return findings
}

// SortFindings orders findings by (file, line, col, rule) — the stable
// order every consumer (CLI text, -json, goldens) relies on.
func SortFindings(findings []Finding) {
	sort.Slice(findings, func(i, j int) bool {
		a, b := findings[i], findings[j]
		if a.File != b.File {
			return a.File < b.File
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Col != b.Col {
			return a.Col < b.Col
		}
		return a.Rule < b.Rule
	})
}

// Relativize rewrites finding file paths to slash-separated paths
// relative to root, so tool output is machine-independent (CI artifacts,
// golden diffs). Findings outside root keep their absolute path. The
// relative order of findings is preserved.
func Relativize(findings []Finding, root string) {
	for i := range findings {
		rel, err := filepath.Rel(root, findings[i].File)
		if err != nil || strings.HasPrefix(rel, "..") {
			continue
		}
		findings[i].File = filepath.ToSlash(rel)
	}
}
