// Package determtaint holds the determinism-taint true positives: every
// flow in this file moves a wall-clock or global-RNG value into the
// journal, directly or laundered through another package.
package determtaint

import (
	"math/rand"
	"time"

	"src/determtaint/helper"
	"src/determtaint/internal/journal"
)

// Direct stores a raw clock read in a record literal.
func Direct(path string) error {
	rec := journal.Record{WallMs: float64(time.Now().UnixNano())} // want finding: determinism-taint
	return journal.Append(path, rec)
}

// Laundered journals a value produced by a helper in another package —
// the call site looks clean; only the helper's summary reveals the clock.
func Laundered(path string) error {
	v := helper.Stamp()
	return journal.Append(path, journal.Record{Value: v}) // want finding: determinism-taint
}

// ParamSink hands a clock-derived value to a helper whose parameter flows
// into the journal inside the other package.
func ParamSink(path string, start time.Time) error {
	return helper.Journal(path, float64(time.Since(start).Milliseconds())) // want finding: determinism-taint
}

// ClockSeeded draws from an RNG seeded off the wall clock: the taint
// rides through the constructor into every draw.
func ClockSeeded(path string) error {
	r := rand.New(rand.NewSource(time.Now().UnixNano()))
	return journal.Append(path, journal.Record{Value: r.Float64()}) // want finding: determinism-taint
}

// FieldWrite assigns a clock read into an existing record's field.
func FieldWrite(path string, rec *journal.Record) error {
	rec.WallMs = float64(time.Now().UnixNano()) // want finding: determinism-taint
	return journal.Append(path, *rec)
}
