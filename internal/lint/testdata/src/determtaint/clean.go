// Clean flows: everything journaled here comes through the sanctioned
// seams, so the rule must stay silent about this file.
package determtaint

import (
	"math/rand"

	"src/determtaint/internal/journal"
	"src/determtaint/internal/power"
)

// SeamTimed journals a wall-clock measurement taken behind the power
// seam — the sanctioned Stopwatch shape.
func SeamTimed(path string) error {
	return journal.Append(path, journal.Record{WallMs: power.WallMs()})
}

// Seeded draws from an explicitly seeded RNG: deterministic, clean.
func Seeded(path string, seed int64) error {
	r := rand.New(rand.NewSource(seed))
	return journal.Append(path, journal.Record{Value: r.Float64()})
}

// Derived journals a value computed purely from inputs.
func Derived(path string, trial int, score float64) error {
	return journal.Append(path, journal.Record{Trial: trial, Value: score * 2})
}
