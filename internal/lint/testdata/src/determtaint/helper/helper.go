// Package helper launders taint across a package boundary: Stamp returns
// a wall-clock value and Journal forwards its parameter into the sink.
// Neither call site inside this package is a finding on its own — the
// flows only complete in the importing package.
package helper

import (
	"time"

	"src/determtaint/internal/journal"
)

// Stamp returns a wall-clock reading; callers that journal it are caught
// through this function's summary (returns tainted).
func Stamp() float64 {
	return float64(time.Now().UnixNano())
}

// Journal forwards v into the journal; tainted arguments at call sites
// are caught through this function's summary (param 1 reaches a sink).
func Journal(path string, v float64) error {
	return journal.Append(path, journal.Record{Value: v})
}
