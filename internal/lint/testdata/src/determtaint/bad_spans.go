// Span-read true positives: a recorded span embeds stopwatch durations
// and retry-attempt IDs, so journaling one leaks wall-clock state into
// the replay surface exactly like a raw time.Now().
package determtaint

import (
	"src/determtaint/internal/journal"
	"src/determtaint/internal/obs/span"
)

// JournalSpanDuration stores a recorded span's measured duration in a
// trial record.
func JournalSpanDuration(path string, c *span.Collector) error {
	spans := c.Spans()
	if len(spans) == 0 {
		return nil
	}
	return journal.Append(path, journal.Record{WallMs: spans[0].DurMs}) // want finding: determinism-taint
}

// SpanIDFieldWrite derives a numeric field from an active span's ID —
// attempt-dependent, so it differs across retried runs.
func SpanIDFieldWrite(path string, a *span.Active, rec *journal.Record) error {
	rec.Trial = len(a.ID()) // want finding: determinism-taint
	return journal.Append(path, *rec)
}
