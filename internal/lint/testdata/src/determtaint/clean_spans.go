// Clean span flows: deriving span IDs is pure hashing, and reading
// recorded spans for display is fine — only journal-affecting paths are
// sinks, and the fixture span package's own serving path is exempt at
// the source.
package determtaint

import (
	"src/determtaint/internal/journal"
	"src/determtaint/internal/obs/span"
)

// JournalDerivedKey journals a value computed from a derived span ID:
// DeriveID is a pure function of the study key, so replay reproduces it.
func JournalDerivedKey(path string, study string) error {
	id := span.DeriveID(study, "", "trial", 1, 0)
	return journal.Append(path, journal.Record{Trial: len(id)})
}

// DisplaySpans formats recorded spans for an operator endpoint; no
// journal involvement, so the rule stays silent.
func DisplaySpans(c *span.Collector) int {
	return len(c.Spans())
}
