// Package journal is a determinism-taint fixture sink: its import path
// contains the internal/journal segment, so every call into it is a
// journal-affecting path.
package journal

// Record mirrors the real trial record shape.
type Record struct {
	Trial  int
	Value  float64
	WallMs float64
}

// Append is the sink the rule watches arguments of.
func Append(path string, rec Record) error {
	_ = path
	_ = rec
	return nil
}
