// Package obs is the determinism-taint fixture's metrics registry: its
// import path contains the internal/obs segment, so Value() reads inside
// it (the /metrics serving path) are exempt, while reads anywhere else
// are schedule-dependent taint sources.
package obs

import "sync/atomic"

// Counter mirrors the real obs.Counter shape.
type Counter struct{ v atomic.Uint64 }

// Inc bumps the counter.
func (c *Counter) Inc() { c.v.Add(1) }

// Value reads the live count — the taint source outside this package.
func (c *Counter) Value() uint64 { return c.v.Load() }

// Gauge mirrors the real obs.Gauge shape.
type Gauge struct{ bits atomic.Uint64 }

// Set stores the latest value.
func (g *Gauge) Set(x uint64) { g.bits.Store(x) }

// Value reads the live gauge — also a source outside this package.
func (g *Gauge) Value() uint64 { return g.bits.Load() }

// Render is the serving path: reads here are sanctioned, so this file
// must stay finding-free even though it calls Value.
func Render(c *Counter, g *Gauge) []uint64 {
	return []uint64{c.Value(), g.Value()}
}
