// Package span is the determinism-taint fixture's causal-span recorder:
// its import path contains the internal/obs/span segments, so ID()/Spans()
// reads inside it (the span serving path) are exempt, while reads anywhere
// else carry stopwatch timings and taint like a clock read. The derivation
// functions are pure hashes and stay clean everywhere.
package span

// Span mirrors the real recorded-span shape.
type Span struct {
	ID    string
	DurMs float64
}

// Active mirrors an in-flight span handle.
type Active struct{ sp Span }

// ID reads the recorded span's ID — a taint source outside this package.
func (a *Active) ID() string { return a.sp.ID }

// Collector mirrors the per-study span buffer.
type Collector struct{ spans []Span }

// Record buffers a finished span.
func (c *Collector) Record(sp Span) { c.spans = append(c.spans, sp) }

// Spans reads back the recorded spans — also a source outside this
// package.
func (c *Collector) Spans() []Span { return append([]Span(nil), c.spans...) }

// DeriveID is the pure key-derivation function: clean everywhere.
func DeriveID(trace, parent, name string, trial, attempt int) string {
	return trace + "/" + parent + "/" + name
}

// Serve is the span serving path: reads here are sanctioned, so this file
// must stay finding-free even though it calls ID and Spans.
func Serve(a *Active, c *Collector) []Span {
	_ = a.ID()
	return c.Spans()
}
