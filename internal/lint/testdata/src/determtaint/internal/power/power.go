// Package power is the fixture's sanctioned clock seam: its import path
// contains the internal/power segment, so time reads inside it are exempt
// sources and its return values are clean.
package power

import "time"

// WallMs mimics the Stopwatch API: a wall-clock read behind the seam.
func WallMs() float64 {
	return float64(time.Now().UnixNano()) / 1e6
}
