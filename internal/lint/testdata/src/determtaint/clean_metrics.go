// Clean metric flows: reading a counter for display is fine — only
// journal-affecting paths are sinks, and the fixture obs package's own
// serving path is exempt at the source.
package determtaint

import "src/determtaint/internal/obs"

// DisplayMetric formats a live read for an operator endpoint; no journal
// involvement, so the rule stays silent.
func DisplayMetric(c *obs.Counter) uint64 {
	return c.Value()
}
