// Metric-read true positives: live counter reads are schedule-dependent
// (the tensor pool's chunk stealing changes them run to run), so
// journaling one breaks replay even when the kernel arithmetic is
// bit-identical.
package determtaint

import (
	"src/determtaint/internal/journal"
	"src/determtaint/internal/obs"
)

// stolenChunks mirrors the tensor pool's work-stealing counter.
var stolenChunks obs.Counter

// JournalMetric stores a live counter read in a trial record.
func JournalMetric(path string) error {
	v := float64(stolenChunks.Value())
	return journal.Append(path, journal.Record{Value: v}) // want finding: determinism-taint
}

// GaugeFieldWrite assigns a live gauge read into an existing record.
func GaugeFieldWrite(path string, g *obs.Gauge, rec *journal.Record) error {
	rec.Value = float64(g.Value()) // want finding: determinism-taint
	return journal.Append(path, *rec)
}
