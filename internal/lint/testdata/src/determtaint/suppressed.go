// Suppressed case: the flow is tainted, but an inline directive with a
// justification silences it — and because it suppresses a real finding,
// it is not stale.
package determtaint

import (
	"time"

	"src/determtaint/internal/journal"
)

// DebugStamp intentionally journals a raw timestamp in a debug-only
// record; the directive documents why that is acceptable here.
func DebugStamp(path string) error {
	//lint:ignore determinism-taint fixture: debug-only record, exempt from replay
	return journal.Append(path, journal.Record{WallMs: float64(time.Now().UnixNano())})
}
