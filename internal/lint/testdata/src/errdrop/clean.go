package errdrop

import "os"

// PersistChecked handles the error: allowed.
func PersistChecked(path string) error {
	if err := save(path); err != nil {
		return err
	}
	return nil
}

// CloseExplicit discards explicitly with the blank identifier: allowed.
func CloseExplicit(f *os.File) {
	_ = f.Close()
}

// RetryChecked surfaces the last dispatch error after exhausting the
// worker list: allowed.
func RetryChecked(workers []string, trial string) error {
	var last error
	for _, w := range workers {
		if last = dispatch(w, trial); last == nil {
			return nil
		}
	}
	return last
}

// ReadAll defers the close, which is exempt by convention.
func ReadAll(path string) ([]byte, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	buf := make([]byte, 16)
	n, err := f.Read(buf)
	if err != nil {
		return nil, err
	}
	return buf[:n], nil
}
