// Package errdrop is a lint fixture for the err-drop rule.
package errdrop

import "os"

// save is a same-package function whose error gets dropped below.
func save(path string) error {
	return os.WriteFile(path, nil, 0o644)
}

// Persist drops the error from a same-package call.
func Persist(path string) {
	save(path) // want finding
}

// CloseQuietly drops a conventionally error-returning method call.
func CloseQuietly(f *os.File) {
	f.Close() // want finding
}

// Cleanup drops os.Remove's error.
func Cleanup(path string) {
	os.Remove(path) // want finding
}
