// Package errdrop is a lint fixture for the err-drop rule.
package errdrop

import "os"

// save is a same-package function whose error gets dropped below.
func save(path string) error {
	return os.WriteFile(path, nil, 0o644)
}

// Persist drops the error from a same-package call.
func Persist(path string) {
	save(path) // want finding
}

// CloseQuietly drops a conventionally error-returning method call.
func CloseQuietly(f *os.File) {
	f.Close() // want finding
}

// Cleanup drops os.Remove's error.
func Cleanup(path string) {
	os.Remove(path) // want finding
}

// dispatch is a same-package function mimicking an executor's trial
// dispatch; its error carries the failover signal.
func dispatch(worker, trial string) error {
	if worker == "" {
		return os.ErrInvalid
	}
	return nil
}

// Retry drops the dispatch error inside a retry loop — the exact bug that
// turns a dead worker into silently lost trials.
func Retry(workers []string, trial string) {
	for _, w := range workers {
		dispatch(w, trial) // want finding
	}
}
