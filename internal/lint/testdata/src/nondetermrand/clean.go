package nondetermrand

import "math/rand/v2"

// Noise uses an injected deterministic generator: allowed.
func Noise(rng *rand.Rand) float64 {
	return rng.NormFloat64()
}

// NewRNG builds a seeded generator with the deterministic constructors:
// allowed.
func NewRNG(a, b uint64) *rand.Rand {
	return rand.New(rand.NewPCG(a, b))
}

// shadowed uses a local variable named rand, which is not the package.
func shadowed() int {
	rand := struct{ IntN func(int) int }{IntN: func(n int) int { return n - 1 }}
	return rand.IntN(3)
}
