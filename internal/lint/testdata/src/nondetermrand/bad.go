// Package nondetermrand is a lint fixture: every finding here is a true
// positive for the nondeterm-rand rule.
package nondetermrand

import "math/rand/v2"

// Jitter draws from the process-global source.
func Jitter(x float64) float64 {
	return x + rand.Float64() // want finding: package-level draw
}

// Pick uses the global source through IntN.
func Pick(xs []int) int {
	return xs[rand.IntN(len(xs))] // want finding
}

// ShuffleAll passes a package-level func as a value.
func ShuffleAll(xs []int) {
	rand.Shuffle(len(xs), func(i, j int) { xs[i], xs[j] = xs[j], xs[i] }) // want finding
}
