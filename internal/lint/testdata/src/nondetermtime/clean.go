package nondetermtime

import "time"

// Wait uses durations but never reads the clock: allowed.
func Wait(d time.Duration) time.Duration {
	if d < time.Second {
		d = time.Second
	}
	return d
}

// Clocked takes an injected clock, the sanctioned shape for logic that
// needs timestamps.
func Clocked(now func() time.Time) time.Time {
	return now()
}
