// Package nondetermtime is a lint fixture for the nondeterm-time rule:
// this package is outside the measurement-layer allowlist.
package nondetermtime

import "time"

// Stamp leaks a wall-clock read into an algorithm path.
func Stamp() int64 {
	return time.Now().UnixNano() // want finding
}

// Elapsed measures wall time outside the measurement layer.
func Elapsed(start time.Time) time.Duration {
	return time.Since(start) // want finding
}
