// Package power mirrors the measurement layer's import path: wall-clock
// reads are allowlisted here.
package power

import "time"

// Measure reads the wall clock inside the measurement layer: allowed.
func Measure(f func()) time.Duration {
	start := time.Now()
	f()
	return time.Since(start)
}
