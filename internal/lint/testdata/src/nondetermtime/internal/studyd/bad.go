// Package studyd mirrors the serving daemon's import path. The daemon
// used to be allowlisted; now that its timing flows through the power
// Stopwatch seam and the obs bus, a raw wall-clock read here is flagged
// like any other algorithm-path package.
package studyd

import "time"

// Deadline leaks a wall-clock read into the (formerly allowlisted)
// serving daemon.
func Deadline() time.Time {
	return time.Now().Add(time.Minute) // want finding
}
