// Package obs mirrors the observability layer's import path: wall-clock
// reads are allowlisted here because everything obs emits (metric
// timestamps, trace t_ms) is informational by construction and excluded
// from determinism fingerprints.
package obs

import "time"

// Stamp reads the wall clock inside the observability layer: allowed.
func Stamp() int64 {
	return time.Now().UnixMilli()
}

// Age measures elapsed wall time for a heartbeat gauge: allowed.
func Age(beat time.Time) time.Duration {
	return time.Since(beat)
}
