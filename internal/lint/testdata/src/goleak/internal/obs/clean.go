// Clean goroutine shapes: every accepted way to run a background loop.
package obs

import "context"

// StartCtx watches ctx.Done() — the canonical reconcile/heartbeat shape.
func (p *Pump) StartCtx(ctx context.Context) {
	go func() {
		for {
			select {
			case <-ctx.Done():
				return
			case v := <-p.ch:
				p.seen += v
			}
		}
	}()
}

// StartRange ranges over the channel and ends when it is closed.
func (p *Pump) StartRange() {
	go func() {
		for v := range p.ch {
			p.seen += v
		}
	}()
}

// StartCommaOk observes the close through the two-value receive.
func (p *Pump) StartCommaOk() {
	go func() {
		for {
			v, ok := <-p.ch
			if !ok {
				return
			}
			p.seen += v
		}
	}()
}

// StartSignal waits on a chan struct{} — the close-signal convention.
func (p *Pump) StartSignal(stop chan struct{}, tick <-chan int) {
	go func() {
		for {
			select {
			case <-stop:
				return
			case v := <-tick:
				p.seen += v
			}
		}
	}()
}

// StartOnce sends a single result into a buffered channel: straight-line
// channel ops are the caller's contract, not a leak.
func StartOnce(run func() error) <-chan error {
	errc := make(chan error, 1)
	go func() { errc <- run() }()
	return errc
}

// StartBounded loops a fixed number of times.
func StartBounded(n int, ch chan int) {
	go func() {
		for i := 0; i < n; i++ {
			ch <- i
		}
	}()
}

// StartAudited is a deliberate forever-drain with a justified
// suppression: the process exits with the daemon, never joins.
func (p *Pump) StartAudited() {
	//lint:ignore goroutine-leak fixture: process-lifetime drain, reaped at exit
	go p.drain()
}
