// Package obs (fixture) holds the goroutine-leak true positives: the
// import path carries the internal/obs segment so the rule is in scope.
package obs

// Pump models the leak-shaped bus drain: an infinite receive loop with no
// close observation, spawned on its own goroutine.
type Pump struct {
	ch   chan int
	seen int
}

// drain blocks forever once the producer stops: the single-variable
// receive never observes a close.
func (p *Pump) drain() {
	for {
		v := <-p.ch
		p.seen += v
	}
}

// Start spawns the leaky drain loop.
func (p *Pump) Start() {
	go p.drain() // want finding: goroutine-leak
}

// StartInline spawns a literal with the same shape: a ticker-style select
// that never watches ctx.Done().
func (p *Pump) StartInline(tick <-chan int) {
	go func() { // want finding: goroutine-leak
		for {
			select {
			case v := <-tick:
				p.seen += v
			}
		}
	}()
}
