// Package ctxblocking is outside internal/core and internal/studyd, so
// the ctx-blocking rule does not apply here.
package ctxblocking

// Drain blocks without a context, but this package is out of scope.
func Drain(ch chan int) int {
	return <-ch
}
