package executor

import (
	"context"
	"time"
)

// HeartbeatContext ties the ticker loop to ctx: allowed.
func HeartbeatContext(ctx context.Context, interval time.Duration, beat func()) error {
	t := time.NewTicker(interval)
	defer t.Stop()
	for {
		select {
		case <-t.C:
			beat()
		case <-ctx.Done():
			return ctx.Err()
		}
	}
}

// DispatchContext makes the queue send cancellable: allowed.
func DispatchContext(ctx context.Context, queue chan string, trial string) error {
	select {
	case queue <- trial:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// Dispatch is a thin wrapper delegating to the context variant: allowed.
func Dispatch2(queue chan string, trial string) error {
	return DispatchContext(context.Background(), queue, trial)
}

// beatForever blocks on a ticker range but is unexported: allowed.
func beatForever(t *time.Ticker, beat func()) {
	for range t.C {
		beat()
	}
}

// SpawnHeartbeat only ranges over the ticker inside a goroutine it
// launches: allowed (the caller is not blocked).
func SpawnHeartbeat(t *time.Ticker, beat func()) {
	go func() {
		for range t.C {
			beat()
		}
	}()
}

// Restart ranges over a slice field named C — not a ticker channel, and
// not blocking: allowed.
func Restart(w struct{ C []int }, visit func(int)) {
	for _, v := range w.C {
		visit(v)
	}
}
