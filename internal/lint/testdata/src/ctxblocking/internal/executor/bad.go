// Package executor mirrors the internal/executor import path, where the
// ctx-blocking rule applies: fleet heartbeat and dispatch loops must be
// cancellable or a dead fleet stays alive past shutdown.
package executor

import "time"

// Heartbeat ranges over a ticker channel with no context: the loop can
// never be drained on shutdown.
func Heartbeat(interval time.Duration, beat func()) { // want finding
	t := time.NewTicker(interval)
	defer t.Stop()
	for range t.C {
		beat()
	}
}

// Dispatch blocks on a channel send (a full trial queue) without a
// context.
func Dispatch(queue chan string, trial string) { // want finding
	queue <- trial
}

// AwaitResult blocks on a result receive without a context.
func AwaitResult(results chan string) string { // want finding
	return <-results
}
