package core

import (
	"context"
	"sync"
)

// DrainContext blocks but takes a context first: allowed.
func DrainContext(ctx context.Context, ch chan int) (int, error) {
	select {
	case v := <-ch:
		return v, nil
	case <-ctx.Done():
		return 0, ctx.Err()
	}
}

// Drain2 is a thin wrapper delegating to the context variant: allowed.
func Drain2(ch chan int) (int, error) {
	return DrainContext(context.Background(), ch)
}

// drainQuietly blocks but is unexported: allowed.
func drainQuietly(ch chan int) int {
	return <-ch
}

// Spawn only blocks inside a goroutine it launches: allowed.
func Spawn(wg *sync.WaitGroup, ch chan int) {
	go func() {
		defer wg.Done()
		<-ch
	}()
}
