// Package core mirrors the internal/core import path, where the
// ctx-blocking rule applies.
package core

import "sync"

// Drain blocks on a channel receive without taking a context.
func Drain(ch chan int) int { // want finding
	return <-ch
}

// WaitAll blocks on a WaitGroup without taking a context.
func WaitAll(wg *sync.WaitGroup) { // want finding
	wg.Wait()
}
