// Package typesmoke exercises the lint engine's type checker on modern
// syntax: generics, type aliases and embedded interfaces. It is not a
// rule fixture — TestTypecheckModernSyntax only asserts the package
// checks cleanly, so a go/types regression (or an importer that chokes on
// instantiation) fails loudly instead of silently disabling every
// type-aware rule.
package typesmoke

import "sort"

// Number is a generic constraint with a union.
type Number interface {
	~int | ~int64 | ~float64
}

// Sum is a generic function over the constraint.
func Sum[T Number](xs []T) T {
	var total T
	for _, x := range xs {
		total += x
	}
	return total
}

// Pair is a generic struct with two parameters.
type Pair[K comparable, V any] struct {
	Key K
	Val V
}

// Keys instantiates Pair and returns sorted keys.
func Keys(ps []Pair[string, float64]) []string {
	out := make([]string, 0, len(ps))
	for _, p := range ps {
		out = append(out, p.Key)
	}
	sort.Strings(out)
	return out
}

// Scalar is a type alias (old form) and Vec a generic alias use.
type Scalar = float64

// Ranker embeds an interface — method sets must flatten correctly.
type Ranker interface {
	sort.Interface
	Rank(i int) Scalar
}

// TopRank runs a Ranker through both embedded and direct methods.
func TopRank(r Ranker) Scalar {
	sort.Sort(r)
	if r.Len() == 0 {
		return 0
	}
	return r.Rank(0)
}

// Apply takes a generic function value — instantiation as an expression.
func Apply(xs []float64) float64 {
	f := Sum[float64]
	return f(xs)
}
