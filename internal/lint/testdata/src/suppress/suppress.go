// Package suppress is a lint fixture for the //lint:ignore directive.
package suppress

import "math/rand/v2"

// Suppressed has a well-formed directive naming the right rule: silenced.
func Suppressed() float64 {
	//lint:ignore nondeterm-rand fixture exercising a valid suppression
	return rand.Float64()
}

// WrongRule names a different rule, so the finding survives — and the
// directive itself is reported as stale (it suppresses nothing).
func WrongRule() float64 {
	//lint:ignore float-eq this names the wrong rule and must not silence
	return rand.Float64() // want findings: nondeterm-rand and stale-ignore
}

// Unsuppressed has no directive at all.
func Unsuppressed() float64 {
	return rand.Float64() // want finding: nondeterm-rand
}

// Malformed has a directive without a reason, which is itself a finding.
func Malformed() float64 {
	//lint:ignore nondeterm-rand
	return rand.Float64() // want findings: bad-ignore and nondeterm-rand
}

// Trailing suppresses with a same-line directive.
func Trailing() float64 {
	return rand.Float64() //lint:ignore nondeterm-rand trailing form is silenced
}
