// Package gospawn is outside internal/tensor and internal/nn, so the
// go-spawn rule does not apply here.
package gospawn

// FanOut spawns freely; this package is out of scope.
func FanOut(n int, fn func(int)) {
	done := make(chan struct{})
	for i := 0; i < n; i++ {
		go func(i int) {
			fn(i)
			done <- struct{}{}
		}(i)
	}
	for i := 0; i < n; i++ {
		<-done
	}
}
