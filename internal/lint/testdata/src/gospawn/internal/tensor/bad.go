package tensor

import "sync"

// mulParallel fans out per call — the pattern the worker pool replaced.
func mulParallel(rows int, fn func(lo, hi int)) {
	var wg sync.WaitGroup
	chunk := (rows + 3) / 4
	for lo := 0; lo < rows; lo += chunk {
		hi := lo + chunk
		if hi > rows {
			hi = rows
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			fn(lo, hi)
		}(lo, hi)
	}
	wg.Wait()
}

// addAsync spawns a fire-and-forget goroutine.
func addAsync(dst, a []float64) {
	go func() {
		for i := range dst {
			dst[i] += a[i]
		}
	}()
}
