package tensor

// workers is a persistent pool: the spawn happens once at startup and is
// explicitly sanctioned, exactly like the real tensor pool.
var tasks = make(chan func(), 16)

func startPool(n int) {
	for i := 0; i < n; i++ {
		//lint:ignore go-spawn persistent pool workers, spawned once at startup
		go func() {
			for fn := range tasks {
				fn()
			}
		}()
	}
}

// serialAdd has no goroutines at all.
func serialAdd(dst, a []float64) {
	for i := range dst {
		dst[i] += a[i]
	}
}
