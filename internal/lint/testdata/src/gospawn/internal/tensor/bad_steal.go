package tensor

import (
	"sync"
	"sync/atomic"
)

// stealSpawn claims chunks off an atomic cursor but spawns a goroutine
// per claimed chunk. Stealing transfers ownership of whole chunks to
// EXISTING participants; it never creates goroutines on the kernel path.
func stealSpawn(rows, chunk int, nchunks int64, fn func(lo, hi int)) {
	var cursor atomic.Int64
	var wg sync.WaitGroup
	for {
		c := cursor.Add(1) - 1
		if c >= nchunks {
			break
		}
		lo := int(c) * chunk
		hi := lo + chunk
		if hi > rows {
			hi = rows
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			fn(lo, hi)
		}(lo, hi)
	}
	wg.Wait()
}
