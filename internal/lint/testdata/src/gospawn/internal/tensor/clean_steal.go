package tensor

import "sync/atomic"

// stealLoop is the sanctioned stealing shape: each participant — the
// caller or a persistent pool worker — claims whole not-yet-started
// chunks off a shared atomic cursor and runs them inline. Ownership
// transfer needs no goroutines, so this file must stay finding-free.
func stealLoop(cursor *atomic.Int64, rows, chunk int, nchunks int64, fn func(lo, hi int)) {
	for {
		c := cursor.Add(1) - 1
		if c >= nchunks {
			break
		}
		lo := int(c) * chunk
		hi := lo + chunk
		if hi > rows {
			hi = rows
		}
		fn(lo, hi)
	}
}
