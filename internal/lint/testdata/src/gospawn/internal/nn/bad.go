package nn

// forwardAsync forwards each layer on its own goroutine per call.
func forwardAsync(layers []func()) {
	done := make(chan struct{}, len(layers))
	for _, l := range layers {
		go func(l func()) {
			l()
			done <- struct{}{}
		}(l)
	}
	for range layers {
		<-done
	}
}
