// Package floateq is a lint fixture for the float-eq rule.
package floateq

import "math"

// Converged compares two floats exactly.
func Converged(a, b float64) bool {
	return a == b // want finding
}

// IsZero compares against a float literal.
func IsZero(x float64) bool {
	return x != 0.0 // want finding
}

// SameNorm compares arithmetic results exactly.
func SameNorm(xs []float64) bool {
	return math.Sqrt(xs[0]) == xs[1]*2.0 // want finding
}
