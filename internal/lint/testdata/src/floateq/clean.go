package floateq

import "math"

// ApproxConverged uses a tolerance, the sanctioned comparison.
func ApproxConverged(a, b float64) bool {
	return math.Abs(a-b) <= 1e-9
}

// CountMatches compares integers, which is exact by nature: allowed.
func CountMatches(a, b int) bool {
	return a == b
}

// NameMatches compares strings: allowed.
func NameMatches(a, b string) bool {
	return a != b
}
