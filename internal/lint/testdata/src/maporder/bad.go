// Package maporder is a lint fixture for the map-order rule.
package maporder

import (
	"fmt"
	"io"
)

// Keys appends map keys in randomized iteration order.
func Keys(m map[string]int) []string {
	var out []string
	for k := range m { // want finding: append with no sort
		out = append(out, k)
	}
	return out
}

// Dump writes map entries to w in randomized iteration order.
func Dump(w io.Writer, m map[string]float64) {
	for k, v := range m { // want finding: Fprintf with no sort
		fmt.Fprintf(w, "%s=%g\n", k, v)
	}
}
