package maporder

import (
	"fmt"
	"io"
	"sort"
)

// SortedKeys collects then sorts, so iteration order never escapes.
func SortedKeys(m map[string]int) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// DumpSorted writes entries in sorted key order.
func DumpSorted(w io.Writer, m map[string]float64) {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		fmt.Fprintf(w, "%s=%g\n", k, m[k])
	}
}

// Invert writes into another map: order-insensitive, allowed.
func Invert(m map[string]int) map[int]string {
	out := make(map[int]string, len(m))
	for k, v := range m {
		out[v] = k
	}
	return out
}

// Total accumulates a commutative reduction: allowed.
func Total(m map[string]int) int {
	total := 0
	for _, v := range m {
		total += v
	}
	return total
}
