// Clean lock discipline: every access pattern the rule must accept.
package lockguard

import "sync"

// Gauge is a shared struct whose guarded fields are always accessed
// correctly.
type Gauge struct {
	mu sync.RWMutex
	// guarded-by: mu
	value float64
	// guarded-by: mu
	marks map[string]int
}

// Set holds the write lock.
func (g *Gauge) Set(v float64) {
	g.mu.Lock()
	defer g.mu.Unlock()
	g.value = v
}

// Get holds the read lock.
func (g *Gauge) Get() float64 {
	g.mu.RLock()
	defer g.mu.RUnlock()
	return g.value
}

// bumpLocked is the xxxLocked convention: every caller locks, so the
// one-level inference accepts the bare access.
func (g *Gauge) bumpLocked(name string) {
	g.marks[name]++
}

// Bump locks before delegating.
func (g *Gauge) Bump(name string) {
	g.mu.Lock()
	defer g.mu.Unlock()
	g.bumpLocked(name)
}

// NewGauge touches guarded fields during construction — the value is not
// published yet, so no lock is needed.
func NewGauge() *Gauge {
	g := &Gauge{}
	g.value = 0
	g.marks = map[string]int{}
	return g
}

// Closure holds the lock inside the literal that runs elsewhere.
func (g *Gauge) Closure() func() float64 {
	return func() float64 {
		g.mu.RLock()
		defer g.mu.RUnlock()
		return g.value
	}
}

// Audited reads without the lock on purpose — a single-writer snapshot
// path — and says so with a justified suppression.
func (g *Gauge) Audited() float64 {
	//lint:ignore lock-discipline fixture: racy snapshot read is acceptable for monitoring
	return g.value
}
