// Package lockguard holds the lock-discipline true positives.
package lockguard

import "sync"

// Counter is a shared struct with annotated state.
type Counter struct {
	mu sync.Mutex
	// guarded-by: mu
	n int
	// guarded-by: mu
	names []string
	// guarded-by: missing — the annotation itself is broken here
	stray int // want finding: guarded-by names unknown field
}

// BadDirect touches n without taking the lock.
func (c *Counter) BadDirect() int {
	return c.n // want finding: lock-discipline
}

// BadPartial locks for one field but leaks another through a closure that
// runs on its own goroutine without the lock.
func (c *Counter) BadPartial() {
	c.mu.Lock()
	c.n++
	c.mu.Unlock()
	go func() {
		c.names = append(c.names, "late") // want finding: lock-discipline
	}()
}

// appendLocked relies on callers holding mu — but one caller below does
// not, so the one-level inference refuses to bless it.
func (c *Counter) appendLocked(name string) {
	c.names = append(c.names, name) // want finding: lock-discipline
}

// BadCaller calls appendLocked without the lock.
func (c *Counter) BadCaller(name string) {
	c.appendLocked(name)
}
