// Clean registrations: read-only routes, middleware-wrapped mutating
// routes, handlers that check the bearer themselves, and one justified
// suppression.
package handlerauth

import "net/http"

// Auth mirrors the daemon kernel middleware shape.
type Auth struct{}

// Require wraps a handler with a bearer check.
func (Auth) Require(h http.HandlerFunc) http.HandlerFunc { return h }

// RequireTenant wraps a tenant-scoped handler.
func (Auth) RequireTenant(h func(http.ResponseWriter, *http.Request, string)) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) { h(w, r, "") }
}

// CheckBearer models an in-handler token check.
func CheckBearer(r *http.Request) bool { return r.Header.Get("Authorization") != "" }

// CleanRoutes covers every accepted shape.
func CleanRoutes(a Auth) *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /studies", submit)                      // reads stay open by design
	mux.HandleFunc("GET /studies/{id}/analysis/{kind}", submit) // analysis reports are reads
	mux.HandleFunc("POST /studies", a.Require(submit))
	mux.HandleFunc("POST /submit", a.RequireTenant(func(w http.ResponseWriter, r *http.Request, tenant string) {}))
	mux.HandleFunc("POST /run", guardedInline)
	//lint:ignore handler-auth fixture: pass-through route, backend enforces auth
	mux.HandleFunc("POST /forward", submit)
	return mux
}

// guardedInline performs its own bearer check, which counts as guarded.
func guardedInline(w http.ResponseWriter, r *http.Request) {
	if !CheckBearer(r) {
		w.WriteHeader(http.StatusUnauthorized)
		return
	}
	w.WriteHeader(http.StatusAccepted)
}
