// Package handlerauth holds the handler-auth true positives: mutating
// routes registered on a ServeMux with nothing between the network and
// the handler.
package handlerauth

import "net/http"

// BadRoutes registers open mutating handlers.
func BadRoutes(a Auth) *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /studies", submit)                                               // want finding: handler-auth
	mux.HandleFunc("DELETE /studies/{id}", func(w http.ResponseWriter, r *http.Request) { // want finding: handler-auth
		w.WriteHeader(http.StatusNoContent)
	})
	mux.Handle("PUT /specs", http.HandlerFunc(submit)) // want finding: handler-auth
	// A hypothetical mutating analysis route must be guarded like any
	// other write — only the GET report reads stay open.
	mux.HandleFunc("POST /studies/{id}/analysis/recompute", submit) // want finding: handler-auth
	return mux
}

func submit(w http.ResponseWriter, r *http.Request) {
	w.WriteHeader(http.StatusAccepted)
}
