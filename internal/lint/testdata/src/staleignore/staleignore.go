// Package staleignore is the stale-suppression fixture: one live
// directive (suppresses a real finding), one stale directive (its line is
// clean, so it silences nothing), and one naming a rule outside the
// suite (never reported — a partial run cannot judge it).
package staleignore

import "math/rand/v2"

// Live suppresses a real nondeterm-rand finding: not stale.
func Live() float64 {
	//lint:ignore nondeterm-rand fixture: the draw below really happens
	return rand.Float64()
}

// Stale sits above a line with no finding at all.
func Stale(x float64) float64 {
	//lint:ignore nondeterm-rand nothing on the next line draws randomness
	return x * 2 // want finding: stale-ignore (on the directive line)
}

// UnknownRule names a rule that does not exist in the suite; the runner
// cannot know whether it is live, so it is left alone.
func UnknownRule(x float64) float64 {
	//lint:ignore no-such-rule directives for unknown rules are not judged
	return x + 1
}
