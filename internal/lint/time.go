package lint

import (
	"go/ast"
)

// NondetermTime forbids reading the wall clock (time.Now, time.Since)
// outside the measurement layer. A timestamp that leaks into an algorithm
// path or a journal record differs between the original run and its
// replay, silently breaking bit-for-bit resume. Wall-clock reads are
// allowed only in the allowlisted measurement/observability layers and in
// commands, where they feed human-facing progress output — and even there
// timing that reaches trial metrics must flow through the power package's
// Stopwatch seam. The serving daemon itself is NOT allowlisted: its
// timing (trial wall_ms, event timestamps) flows through power.Stopwatch
// and the obs event bus, so a raw time.Now there is a contract breach.
type NondetermTime struct{}

// Name implements Rule.
func (NondetermTime) Name() string { return "nondeterm-time" }

// Doc implements Rule.
func (NondetermTime) Doc() string {
	return "no time.Now/time.Since outside internal/power, internal/obs and cmd/"
}

// timeAllowedSegments are import-path segment sequences where wall-clock
// reads are legitimate: the power-measurement layer, the observability
// layer (metric/trace timestamps are informational by construction), and
// command entry points.
var timeAllowedSegments = []string{"internal/power", "internal/obs", "cmd"}

// timeForbidden are the wall-clock selectors the rule flags.
var timeForbidden = map[string]bool{"Now": true, "Since": true, "Until": true}

// Check implements Rule.
func (r NondetermTime) Check(pkg *Package, report ReportFunc) {
	for _, seg := range timeAllowedSegments {
		if pathHasSegments(pkg.Path, seg) {
			return
		}
	}
	for _, name := range pkg.SortedFileNames() {
		if IsTestFile(name) {
			continue
		}
		file := pkg.Files[name]
		timeName := importName(file, "time")
		if timeName == "" {
			continue
		}
		ast.Inspect(file, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok || !isPkgRef(sel.X, timeName) || !timeForbidden[sel.Sel.Name] {
				return true
			}
			report(r.Name(), sel.Pos(),
				"time.%s reads the wall clock outside the measurement layer; replayed runs will observe different values — route timing through internal/power (Stopwatch) or inject a clock",
				sel.Sel.Name)
			return true
		})
	}
}
