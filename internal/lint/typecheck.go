package lint

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/token"
	"go/types"
)

// Module is the type-checked view of one Load result: every package
// checked with go/types against a single shared FileSet, plus the
// module-internal call graph. Module-internal imports resolve straight
// from the parsed ASTs (so fixture trees under testdata type-check with
// fake import paths), standard-library imports resolve through the
// compiler's export data with a source-importer fallback.
//
// Type checking is best-effort: a package that fails to check records its
// errors in Package.TypeErrs and is skipped by type-aware rules, while
// syntax rules keep running over it. NewModule never fails.
type Module struct {
	// Fset is the FileSet shared by every package in the module.
	Fset *token.FileSet
	// Pkgs are the module's packages in Load order (sorted by directory).
	Pkgs []*Package
	// Graph is the module-internal call graph over non-test code.
	Graph *CallGraph

	byPath   map[string]*Package
	imp      *moduleImporter
	done     map[*Package]bool
	checking map[string]bool
}

// NewModule type-checks pkgs (which must share one FileSet, as Load
// guarantees) and builds the call graph.
func NewModule(pkgs []*Package) *Module {
	fset := token.NewFileSet()
	if len(pkgs) > 0 {
		fset = pkgs[0].Fset
	}
	m := &Module{
		Fset:     fset,
		Pkgs:     pkgs,
		byPath:   make(map[string]*Package, len(pkgs)),
		done:     map[*Package]bool{},
		checking: map[string]bool{},
	}
	for _, p := range pkgs {
		m.byPath[p.Path] = p
	}
	m.imp = &moduleImporter{mod: m, std: map[string]*types.Package{}, errs: map[string]error{}}
	for _, p := range pkgs {
		// Check errors land in p.TypeErrs; a failed package is skipped by
		// type-aware rules, never fatal.
		_, _ = m.ensure(p)
	}
	m.Graph = buildCallGraph(m)
	return m
}

// PkgByPath returns the module package with the given import path, or nil.
func (m *Module) PkgByPath(path string) *Package { return m.byPath[path] }

// Checked reports whether the package type-checked without errors —
// the gate type-aware rules use before trusting TypesInfo.
func (p *Package) Checked() bool { return p.TypesInfo != nil && len(p.TypeErrs) == 0 }

// ensure type-checks p once, memoized; imports of other module packages
// recurse through the importer. Only non-test files are checked — every
// rule skips test files, and in-dir _test.go files may belong to an
// external test package anyway.
func (m *Module) ensure(p *Package) (*types.Package, error) {
	if m.done[p] {
		if p.Types == nil {
			return nil, fmt.Errorf("lint: package %s has no checkable files", p.Path)
		}
		return p.Types, nil
	}
	if m.checking[p.Path] {
		return nil, fmt.Errorf("lint: import cycle through %s", p.Path)
	}
	m.checking[p.Path] = true
	defer delete(m.checking, p.Path)

	var files []*ast.File
	for _, name := range p.NonTestFileNames() {
		files = append(files, p.Files[name])
	}
	if len(files) == 0 {
		m.done[p] = true
		return nil, fmt.Errorf("lint: package %s has no checkable files", p.Path)
	}
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
		Scopes:     map[ast.Node]*types.Scope{},
	}
	conf := types.Config{
		Importer:    m.imp,
		FakeImportC: true,
		Error:       func(err error) { p.TypeErrs = append(p.TypeErrs, err) },
	}
	path := p.Path
	if path == "" {
		path = "module"
	}
	tpkg, err := conf.Check(path, p.Fset, files, info)
	if err != nil && len(p.TypeErrs) == 0 {
		p.TypeErrs = append(p.TypeErrs, err)
	}
	p.Types = tpkg
	p.TypesInfo = info
	m.done[p] = true
	if tpkg == nil {
		return nil, err
	}
	return tpkg, nil
}

// moduleImporter resolves imports in three layers: module-internal
// packages from their parsed source, "unsafe" specially, and everything
// else (the standard library) through the gc export-data importer with a
// source importer fallback. Results and failures are memoized.
type moduleImporter struct {
	mod  *Module
	std  map[string]*types.Package
	errs map[string]error
	gc   types.Importer
	src  types.Importer
}

// Import implements types.Importer.
func (im *moduleImporter) Import(path string) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	if p := im.mod.byPath[path]; p != nil {
		return im.mod.ensure(p)
	}
	if pkg := im.std[path]; pkg != nil {
		return pkg, nil
	}
	if err := im.errs[path]; err != nil {
		return nil, err
	}
	if im.gc == nil {
		im.gc = importer.Default()
	}
	pkg, err := im.gc.Import(path)
	if err != nil {
		if im.src == nil {
			im.src = importer.ForCompiler(im.mod.Fset, "source", nil)
		}
		var srcErr error
		pkg, srcErr = im.src.Import(path)
		if srcErr != nil {
			err = fmt.Errorf("lint: import %q: %v (source fallback: %v)", path, err, srcErr)
			im.errs[path] = err
			return nil, err
		}
	}
	im.std[path] = pkg
	return pkg, nil
}
