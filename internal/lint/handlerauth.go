package lint

import (
	"go/ast"
	"go/types"
	"strconv"
	"strings"
)

// HandlerAuth requires mutating HTTP routes to be registered behind the
// daemon kernel's auth middleware. A POST/PUT/DELETE/PATCH pattern handed
// to (*http.ServeMux).Handle/HandleFunc must wrap its handler in
// Require/RequireTenant (internal/daemon.Auth), or the handler itself
// must perform a bearer check (a call to CheckBearer/Authenticate) —
// otherwise anyone who can reach the listener can submit, cancel or
// re-home studies. Read-only routes stay open by design (the replay
// contract guards writes, not reads).
//
// The receiver is type-checked: only *http.ServeMux registrations are
// examined, so router-local mux abstractions with their own auth story
// can exist without tripping the rule.
type HandlerAuth struct{}

// Name implements Rule.
func (HandlerAuth) Name() string { return "handler-auth" }

// Doc implements Rule.
func (HandlerAuth) Doc() string {
	return "mutating ServeMux routes are registered behind Require/RequireTenant auth middleware"
}

// Check implements Rule; HandlerAuth is a ModuleRule.
func (HandlerAuth) Check(pkg *Package, report ReportFunc) {}

// mutatingMethods are the HTTP methods whose routes must be authed.
var mutatingMethods = map[string]bool{"POST": true, "PUT": true, "DELETE": true, "PATCH": true}

// CheckModule implements ModuleRule.
func (r HandlerAuth) CheckModule(mod *Module, report ReportFunc) {
	for _, pkg := range mod.Pkgs {
		if !pkg.Checked() {
			continue
		}
		for _, name := range pkg.NonTestFileNames() {
			ast.Inspect(pkg.Files[name], func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				sel, ok := call.Fun.(*ast.SelectorExpr)
				if !ok || (sel.Sel.Name != "HandleFunc" && sel.Sel.Name != "Handle") || len(call.Args) < 2 {
					return true
				}
				if !isServeMux(pkg.TypesInfo, sel.X) {
					return true
				}
				method, pattern, ok := mutatingPattern(call.Args[0])
				if !ok {
					return true
				}
				if authedHandler(mod, pkg, call.Args[1]) {
					return true
				}
				report(r.Name(), call.Args[1].Pos(),
					"%s route %q is registered without auth middleware; wrap the handler in Require/RequireTenant (mutating routes must not be open)",
					method, pattern)
				return true
			})
		}
	}
}

// isServeMux reports whether e's type is net/http.ServeMux (or a pointer
// to it).
func isServeMux(info *types.Info, e ast.Expr) bool {
	tv, ok := info.Types[e]
	if !ok {
		return false
	}
	t := tv.Type
	if ptr, ok := t.Underlying().(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == "ServeMux" && obj.Pkg() != nil && obj.Pkg().Path() == "net/http"
}

// mutatingPattern decodes a route pattern literal and reports whether it
// names a mutating method.
func mutatingPattern(arg ast.Expr) (method, pattern string, ok bool) {
	lit, isLit := ast.Unparen(arg).(*ast.BasicLit)
	if !isLit || lit.Kind.String() != "STRING" {
		return "", "", false
	}
	pattern, err := strconv.Unquote(lit.Value)
	if err != nil {
		return "", "", false
	}
	method, _, found := strings.Cut(pattern, " ")
	if !found || !mutatingMethods[method] {
		return "", "", false
	}
	return method, pattern, true
}

// authedHandler reports whether the handler argument is guarded: it is
// produced by (or wrapped in) a Require/RequireTenant middleware call, or
// the handler function's own body performs a bearer check.
func authedHandler(mod *Module, pkg *Package, arg ast.Expr) bool {
	wrapped := false
	ast.Inspect(arg, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		name := calleeName(call)
		if name == "Require" || name == "RequireTenant" {
			wrapped = true
			return false
		}
		return true
	})
	if wrapped {
		return true
	}
	// A named handler that checks the bearer itself counts too.
	if fn := handlerFunc(pkg.TypesInfo, arg); fn != nil {
		if decl := mod.Graph.DeclOf[fn]; decl != nil {
			return checksBearer(decl.Body)
		}
	}
	if lit, ok := ast.Unparen(arg).(*ast.FuncLit); ok {
		return checksBearer(lit.Body)
	}
	return false
}

// calleeName returns the bare name of call's callee expression.
func calleeName(call *ast.CallExpr) string {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		return fun.Name
	case *ast.SelectorExpr:
		return fun.Sel.Name
	}
	return ""
}

// handlerFunc resolves arg to a declared function or method, or nil.
func handlerFunc(info *types.Info, arg ast.Expr) *types.Func {
	switch e := ast.Unparen(arg).(type) {
	case *ast.Ident:
		fn, _ := info.Uses[e].(*types.Func)
		return fn
	case *ast.SelectorExpr:
		fn, _ := info.Uses[e.Sel].(*types.Func)
		return fn
	}
	return nil
}

// checksBearer reports whether body calls CheckBearer or Authenticate.
func checksBearer(body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		if call, ok := n.(*ast.CallExpr); ok {
			if name := calleeName(call); name == "CheckBearer" || name == "Authenticate" {
				found = true
				return false
			}
		}
		return true
	})
	return found
}
