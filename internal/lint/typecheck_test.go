package lint

import (
	"go/types"
	"os"
	"path/filepath"
	"testing"
)

// TestRepoTypechecks loads the whole module and requires every package to
// type-check cleanly through the engine's importer stack. TestRepoClean
// silently skips unchecked packages for type-aware rules, so this test is
// what keeps that degradation from hiding a broken importer forever.
func TestRepoTypechecks(t *testing.T) {
	root, err := filepath.Abs(filepath.Join("..", ".."))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(filepath.Join(root, "go.mod")); err != nil {
		t.Skipf("module root not found: %v", err)
	}
	pkgs, err := Load(root, []string{"./..."})
	if err != nil {
		t.Fatal(err)
	}
	mod := NewModule(pkgs)
	for _, pkg := range mod.Pkgs {
		if !pkg.Checked() {
			for _, e := range pkg.TypeErrs {
				t.Errorf("%s: type error: %v", pkg.Path, e)
			}
			if len(pkg.TypeErrs) == 0 {
				t.Errorf("%s: no type info", pkg.Path)
			}
		}
	}
	if len(mod.Graph.DeclOf) == 0 {
		t.Fatal("call graph is empty for the whole module")
	}
}

// TestTypecheckModernSyntax pins the engine on generics, type aliases and
// embedded interfaces: the fixture must check without a single error and
// survive the full rule suite silently.
func TestTypecheckModernSyntax(t *testing.T) {
	pkgs := loadFixture(t, "typesmoke")
	mod := NewModule(pkgs)
	for _, pkg := range mod.Pkgs {
		for _, e := range pkg.TypeErrs {
			t.Errorf("%s: type error: %v", pkg.Path, e)
		}
		if pkg.TypesInfo == nil {
			t.Fatalf("%s: engine produced no type info", pkg.Path)
		}
	}
	if findings := NewRunner().Run(pkgs); len(findings) != 0 {
		for _, f := range findings {
			t.Errorf("unexpected finding: %s", f)
		}
	}
}

// TestCallGraphCrossPackage asserts the call graph links callers across
// package boundaries — what one-level holder inference and taint
// summaries both stand on.
func TestCallGraphCrossPackage(t *testing.T) {
	pkgs := loadFixture(t, "determtaint")
	mod := NewModule(pkgs)
	helper := mod.PkgByPath("src/determtaint/helper")
	if helper == nil || !helper.Checked() {
		t.Fatalf("helper package missing or unchecked: %+v", helper)
	}
	stamp, ok := helper.Types.Scope().Lookup("Stamp").(*types.Func)
	if !ok {
		t.Fatal("helper.Stamp not found in type info")
	}
	callers := mod.Graph.Callers[stamp]
	if len(callers) == 0 {
		t.Fatal("no callers recorded for helper.Stamp across packages")
	}
	found := false
	for _, c := range callers {
		if c.Name() == "Laundered" {
			found = true
		}
	}
	if !found {
		t.Errorf("expected Laundered among Stamp's callers, got %v", callers)
	}
}

// TestStaleIgnore runs the full suite over the stale fixture: the live
// directive survives, the stale one is reported, the unknown-rule one is
// left alone.
func TestStaleIgnore(t *testing.T) {
	pkgs := loadFixture(t, "staleignore")
	findings := NewRunner().Run(pkgs)
	stale := 0
	for _, f := range findings {
		if f.Rule != StaleIgnoreRule {
			t.Errorf("unexpected non-stale finding: %s", f)
			continue
		}
		stale++
	}
	if stale != 1 {
		t.Errorf("want exactly 1 stale-ignore finding, got %d", stale)
	}
	checkGolden(t, "staleignore", renderFindings(t, "staleignore", findings))
}
