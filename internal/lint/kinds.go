package lint

import (
	"go/ast"
	"go/token"
)

// kind is the coarse syntactic type class the map-order and float-eq rules
// reason about. The analyzer has no go/types information (it lints a
// module without building it), so kinds are inferred from declarations and
// literal shapes inside a single function; anything unprovable is
// kindUnknown and never flagged — the rules trade recall for zero
// type-checker dependencies.
type kind int

const (
	kindUnknown kind = iota
	kindMap
	kindFloat
	kindFloatSlice
)

// mathFloatFuncs are math package functions whose result is a float.
var mathFloatFuncs = map[string]bool{
	"Abs": true, "Ceil": true, "Copysign": true, "Cos": true, "Exp": true,
	"Exp2": true, "Floor": true, "Hypot": true, "Inf": true, "Log": true,
	"Log10": true, "Log1p": true, "Log2": true, "Max": true, "Min": true,
	"Mod": true, "NaN": true, "Pow": true, "Remainder": true, "Round": true,
	"Sin": true, "Sqrt": true, "Tan": true, "Tanh": true, "Trunc": true,
}

// scope tracks identifier kinds declared within one function.
type scope struct {
	vars map[string]kind
	// mathName is the file's local name for the math import ("" if absent).
	mathName string
}

// funcScope infers the kinds of identifiers declared in fn: receiver and
// parameters from their declared types, plus var declarations and :=
// assignments whose right-hand side has a provable kind.
func funcScope(file *ast.File, fn *ast.FuncDecl) *scope {
	sc := &scope{vars: map[string]kind{}, mathName: importName(file, "math")}
	declare := func(names []*ast.Ident, k kind) {
		if k == kindUnknown {
			return
		}
		for _, n := range names {
			if n.Name != "_" {
				sc.vars[n.Name] = k
			}
		}
	}
	fields := func(fl *ast.FieldList) {
		if fl == nil {
			return
		}
		for _, f := range fl.List {
			declare(f.Names, typeKind(f.Type))
		}
	}
	fields(fn.Recv)
	if fn.Type != nil {
		fields(fn.Type.Params)
		fields(fn.Type.Results)
	}
	if fn.Body == nil {
		return sc
	}
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		switch st := n.(type) {
		case *ast.DeclStmt:
			if gd, ok := st.Decl.(*ast.GenDecl); ok && gd.Tok == token.VAR {
				for _, spec := range gd.Specs {
					vs, ok := spec.(*ast.ValueSpec)
					if !ok {
						continue
					}
					if vs.Type != nil {
						declare(vs.Names, typeKind(vs.Type))
					} else if len(vs.Values) == len(vs.Names) {
						for i, name := range vs.Names {
							declare([]*ast.Ident{name}, sc.exprKind(vs.Values[i]))
						}
					}
				}
			}
		case *ast.AssignStmt:
			if st.Tok != token.DEFINE || len(st.Lhs) != len(st.Rhs) {
				return true
			}
			for i, lhs := range st.Lhs {
				if id, ok := lhs.(*ast.Ident); ok {
					declare([]*ast.Ident{id}, sc.exprKind(st.Rhs[i]))
				}
			}
		}
		return true
	})
	return sc
}

// typeKind classifies a declared type expression.
func typeKind(t ast.Expr) kind {
	switch tt := t.(type) {
	case *ast.MapType:
		return kindMap
	case *ast.Ident:
		if tt.Name == "float64" || tt.Name == "float32" {
			return kindFloat
		}
	case *ast.ArrayType:
		if typeKind(tt.Elt) == kindFloat {
			return kindFloatSlice
		}
	case *ast.ParenExpr:
		return typeKind(tt.X)
	}
	return kindUnknown
}

// exprKind classifies an expression's kind from its syntactic shape plus
// the identifiers already tracked in the scope.
func (sc *scope) exprKind(e ast.Expr) kind {
	switch ex := e.(type) {
	case *ast.ParenExpr:
		return sc.exprKind(ex.X)
	case *ast.Ident:
		return sc.vars[ex.Name]
	case *ast.BasicLit:
		if ex.Kind == token.FLOAT {
			return kindFloat
		}
	case *ast.CompositeLit:
		return typeKind(ex.Type)
	case *ast.UnaryExpr:
		if ex.Op == token.SUB || ex.Op == token.ADD {
			return sc.exprKind(ex.X)
		}
	case *ast.BinaryExpr:
		switch ex.Op {
		case token.ADD, token.SUB, token.MUL, token.QUO:
			if sc.exprKind(ex.X) == kindFloat || sc.exprKind(ex.Y) == kindFloat {
				return kindFloat
			}
		}
	case *ast.IndexExpr:
		if sc.exprKind(ex.X) == kindFloatSlice {
			return kindFloat
		}
	case *ast.CallExpr:
		switch fn := ex.Fun.(type) {
		case *ast.Ident:
			switch fn.Name {
			case "float64", "float32":
				return kindFloat
			case "make", "new":
				if len(ex.Args) > 0 {
					if k := typeKind(ex.Args[0]); k != kindUnknown {
						return k
					}
				}
			}
		case *ast.SelectorExpr:
			if isPkgRef(fn.X, sc.mathName) && mathFloatFuncs[fn.Sel.Name] {
				return kindFloat
			}
		case *ast.ArrayType, *ast.MapType:
			// Conversion to a composite type, e.g. []float64(xs).
			return typeKind(fn)
		}
	}
	return kindUnknown
}
