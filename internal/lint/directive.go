package lint

import (
	"go/ast"
	"go/token"
	"strings"
)

// directivePrefix marks an inline suppression comment:
//
//	//lint:ignore <rule> <reason>
//
// The directive silences findings of exactly the named rule on the
// directive's own line and on the line immediately below it — covering
// both a trailing comment on the offending line and a comment on the line
// above. The reason is mandatory; a directive without one (or without a
// rule name) is reported under the bad-ignore pseudo-rule.
const directivePrefix = "//lint:ignore"

// BadIgnoreRule is the pseudo-rule name malformed directives are reported
// under.
const BadIgnoreRule = "bad-ignore"

// StaleIgnoreRule is the pseudo-rule name for well-formed directives that
// suppressed nothing in this run. A stale ignore is worse than dead code:
// it documents a violation that no longer exists, and it will silently
// swallow the next, unrelated finding that lands on its line. Directives
// naming a rule outside the runner's active set are not reported (a
// partial-rule run cannot know whether they are live).
const StaleIgnoreRule = "stale-ignore"

// directive is one parsed //lint:ignore comment. Suppression matching is
// keyed by file AND line: a directive only covers findings in its own
// file, never same-numbered lines elsewhere in the package.
type directive struct {
	rule string
	file string
	line int
	pos  token.Position
	used bool
}

// applySuppressions filters findings covered by well-formed //lint:ignore
// directives anywhere in pkgs, appends a bad-ignore finding for every
// malformed directive, and a stale-ignore finding for every live-rule
// directive that suppressed nothing.
func (r *Runner) applySuppressions(pkgs []*Package, findings []Finding) []Finding {
	var dirs []*directive
	var out []Finding
	for _, pkg := range pkgs {
		for _, name := range pkg.SortedFileNames() {
			file := pkg.Files[name]
			for _, group := range file.Comments {
				for _, c := range group.List {
					text := strings.TrimSpace(c.Text)
					if !strings.HasPrefix(text, directivePrefix) {
						continue
					}
					pos := pkg.Fset.Position(c.Pos())
					fields := strings.Fields(strings.TrimPrefix(text, directivePrefix))
					if len(fields) < 2 {
						out = append(out, Finding{
							Rule:    BadIgnoreRule,
							Pos:     pos,
							File:    pos.Filename,
							Line:    pos.Line,
							Col:     pos.Column,
							Message: "malformed directive: want //lint:ignore <rule> <reason>",
						})
						continue
					}
					dirs = append(dirs, &directive{rule: fields[0], file: pos.Filename, line: pos.Line, pos: pos})
				}
			}
		}
	}
	for _, f := range findings {
		if d := matchDirective(dirs, f); d != nil {
			d.used = true
			continue
		}
		out = append(out, f)
	}
	active := map[string]bool{}
	for _, rule := range r.Rules {
		active[rule.Name()] = true
	}
	for _, d := range dirs {
		if d.used || !active[d.rule] {
			continue
		}
		out = append(out, Finding{
			Rule:    StaleIgnoreRule,
			Pos:     d.pos,
			File:    d.pos.Filename,
			Line:    d.pos.Line,
			Col:     d.pos.Column,
			Message: "//lint:ignore " + d.rule + " suppresses nothing; delete the stale directive (or fix the rule name)",
		})
	}
	return out
}

// matchDirective returns the first directive covering f, or nil. Every
// matching directive counts as used even if several cover the same line.
func matchDirective(dirs []*directive, f Finding) *directive {
	var hit *directive
	for _, d := range dirs {
		if d.rule == f.Rule && d.file == f.File && (d.line == f.Line || d.line == f.Line-1) {
			d.used = true
			if hit == nil {
				hit = d
			}
		}
	}
	return hit
}

// importName returns the local name under which file imports path, or
// "" when the import is absent. Blank and dot imports return "".
func importName(file *ast.File, path string) string {
	for _, imp := range file.Imports {
		if strings.Trim(imp.Path.Value, `"`) != path {
			continue
		}
		if imp.Name != nil {
			if imp.Name.Name == "_" || imp.Name.Name == "." {
				return ""
			}
			return imp.Name.Name
		}
		// Default name: last non-version path segment, so that
		// "math/rand/v2" resolves to "rand".
		segs := strings.Split(path, "/")
		name := segs[len(segs)-1]
		if len(segs) > 1 && len(name) >= 2 && name[0] == 'v' && name[1] >= '0' && name[1] <= '9' {
			name = segs[len(segs)-2]
		}
		return name
	}
	return ""
}

// isPkgRef reports whether e is a reference to the package imported under
// name — an identifier with that name that the parser did not resolve to a
// local declaration (shadowing).
func isPkgRef(e ast.Expr, name string) bool {
	id, ok := e.(*ast.Ident)
	return ok && name != "" && id.Name == name && id.Obj == nil
}

// pathHasSegments reports whether the slash-separated import path contains
// the given consecutive segment sequence (e.g. "internal/power").
func pathHasSegments(path, segs string) bool {
	if path == segs {
		return true
	}
	return strings.HasPrefix(path, segs+"/") ||
		strings.HasSuffix(path, "/"+segs) ||
		strings.Contains(path, "/"+segs+"/")
}
