package lint

import (
	"go/ast"
	"strings"
)

// directivePrefix marks an inline suppression comment:
//
//	//lint:ignore <rule> <reason>
//
// The directive silences findings of exactly the named rule on the
// directive's own line and on the line immediately below it — covering
// both a trailing comment on the offending line and a comment on the line
// above. The reason is mandatory; a directive without one (or without a
// rule name) is reported under the bad-ignore pseudo-rule.
const directivePrefix = "//lint:ignore"

// BadIgnoreRule is the pseudo-rule name malformed directives are reported
// under.
const BadIgnoreRule = "bad-ignore"

type suppression struct {
	rule string
	line int
}

// applySuppressions filters findings covered by well-formed //lint:ignore
// directives in pkg and appends a bad-ignore finding for every malformed
// directive.
func applySuppressions(pkg *Package, findings []Finding) []Finding {
	var sups []suppression
	var out []Finding
	for _, name := range pkg.SortedFileNames() {
		file := pkg.Files[name]
		for _, group := range file.Comments {
			for _, c := range group.List {
				text := strings.TrimSpace(c.Text)
				if !strings.HasPrefix(text, directivePrefix) {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				fields := strings.Fields(strings.TrimPrefix(text, directivePrefix))
				if len(fields) < 2 {
					out = append(out, Finding{
						Rule:    BadIgnoreRule,
						Pos:     pos,
						File:    pos.Filename,
						Line:    pos.Line,
						Col:     pos.Column,
						Message: "malformed directive: want //lint:ignore <rule> <reason>",
					})
					continue
				}
				sups = append(sups, suppression{rule: fields[0], line: pos.Line})
			}
		}
	}
	for _, f := range findings {
		if !suppressed(sups, f) {
			out = append(out, f)
		}
	}
	return out
}

func suppressed(sups []suppression, f Finding) bool {
	for _, s := range sups {
		if s.rule == f.Rule && (s.line == f.Line || s.line == f.Line-1) {
			return true
		}
	}
	return false
}

// importName returns the local name under which file imports path, or
// "" when the import is absent. Blank and dot imports return "".
func importName(file *ast.File, path string) string {
	for _, imp := range file.Imports {
		if strings.Trim(imp.Path.Value, `"`) != path {
			continue
		}
		if imp.Name != nil {
			if imp.Name.Name == "_" || imp.Name.Name == "." {
				return ""
			}
			return imp.Name.Name
		}
		// Default name: last non-version path segment, so that
		// "math/rand/v2" resolves to "rand".
		segs := strings.Split(path, "/")
		name := segs[len(segs)-1]
		if len(segs) > 1 && len(name) >= 2 && name[0] == 'v' && name[1] >= '0' && name[1] <= '9' {
			name = segs[len(segs)-2]
		}
		return name
	}
	return ""
}

// isPkgRef reports whether e is a reference to the package imported under
// name — an identifier with that name that the parser did not resolve to a
// local declaration (shadowing).
func isPkgRef(e ast.Expr, name string) bool {
	id, ok := e.(*ast.Ident)
	return ok && name != "" && id.Name == name && id.Obj == nil
}

// pathHasSegments reports whether the slash-separated import path contains
// the given consecutive segment sequence (e.g. "internal/power").
func pathHasSegments(path, segs string) bool {
	if path == segs {
		return true
	}
	return strings.HasPrefix(path, segs+"/") ||
		strings.HasSuffix(path, "/"+segs) ||
		strings.Contains(path, "/"+segs+"/")
}
