package lint

import (
	"go/ast"
	"go/token"
)

// FloatEq flags == and != between float operands. Exact float equality is
// almost always a latent bug — two mathematically identical campaigns can
// diverge on an exact comparison after any reordering of arithmetic — and
// when exactness IS intended (replay verification) that deserves an
// explicit //lint:ignore with the reason. Comparisons should go through
// the mathx tolerance helpers (mathx.ApproxEq).
//
// Detection is syntactic: an operand counts as float when it is a float
// literal, a float64/float32 conversion, an identifier declared float in
// the same function, an index into a declared []float64, arithmetic over
// any of those, or a math.* call returning float.
type FloatEq struct{}

// Name implements Rule.
func (FloatEq) Name() string { return "float-eq" }

// Doc implements Rule.
func (FloatEq) Doc() string {
	return "no ==/!= on float operands; use mathx.ApproxEq"
}

// Check implements Rule.
func (r FloatEq) Check(pkg *Package, report ReportFunc) {
	for _, name := range pkg.SortedFileNames() {
		if IsTestFile(name) {
			// Replay tests compare bit-for-bit on purpose.
			continue
		}
		file := pkg.Files[name]
		for _, decl := range file.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			sc := funcScope(file, fn)
			ast.Inspect(fn.Body, func(n ast.Node) bool {
				bin, ok := n.(*ast.BinaryExpr)
				if !ok || (bin.Op != token.EQL && bin.Op != token.NEQ) {
					return true
				}
				if sc.exprKind(bin.X) != kindFloat && sc.exprKind(bin.Y) != kindFloat {
					return true
				}
				report(r.Name(), bin.Pos(),
					"%s on float operands is exact-equality and breaks under any arithmetic reordering; use mathx.ApproxEq (or suppress with a reason when exactness is the point)",
					bin.Op)
				return true
			})
		}
	}
}
