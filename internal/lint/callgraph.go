package lint

import (
	"go/ast"
	"go/types"
)

// CallGraph is the module-internal static call graph over non-test code.
// Edges connect *types.Func objects resolved by the type checker; dynamic
// calls (function values, interface methods) contribute an edge only when
// the checker resolves the callee to a concrete function. Calls made
// inside function literals are attributed to the enclosing declared
// function — precise enough for one-level holder inference and taint
// summaries, which is what the type-aware rules need.
type CallGraph struct {
	// Callees maps a function to the functions it calls, in source order.
	Callees map[*types.Func][]*types.Func
	// Callers is the inverse adjacency, in deterministic (package, file,
	// position) order.
	Callers map[*types.Func][]*types.Func
	// DeclOf maps a module function to its declaration.
	DeclOf map[*types.Func]*ast.FuncDecl
	// PkgOf maps a module function to its defining package.
	PkgOf map[*types.Func]*Package
}

// buildCallGraph walks every checked package once.
func buildCallGraph(m *Module) *CallGraph {
	g := &CallGraph{
		Callees: map[*types.Func][]*types.Func{},
		Callers: map[*types.Func][]*types.Func{},
		DeclOf:  map[*types.Func]*ast.FuncDecl{},
		PkgOf:   map[*types.Func]*Package{},
	}
	// First pass registers every declared function so edges can be
	// restricted to module-internal targets.
	for _, pkg := range m.Pkgs {
		if !pkg.Checked() {
			continue
		}
		for _, name := range pkg.NonTestFileNames() {
			for _, decl := range pkg.Files[name].Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				if fn, ok := pkg.TypesInfo.Defs[fd.Name].(*types.Func); ok {
					g.DeclOf[fn] = fd
					g.PkgOf[fn] = pkg
				}
			}
		}
	}
	for _, pkg := range m.Pkgs {
		if !pkg.Checked() {
			continue
		}
		for _, name := range pkg.NonTestFileNames() {
			for _, decl := range pkg.Files[name].Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				fn, ok := pkg.TypesInfo.Defs[fd.Name].(*types.Func)
				if !ok {
					continue
				}
				seen := map[*types.Func]bool{}
				ast.Inspect(fd.Body, func(n ast.Node) bool {
					call, ok := n.(*ast.CallExpr)
					if !ok {
						return true
					}
					callee := CalleeOf(pkg.TypesInfo, call)
					if callee == nil || seen[callee] {
						return true
					}
					if _, inModule := g.PkgOf[callee]; !inModule {
						return true
					}
					seen[callee] = true
					g.Callees[fn] = append(g.Callees[fn], callee)
					g.Callers[callee] = append(g.Callers[callee], fn)
					return true
				})
			}
		}
	}
	return g
}

// CalleeOf resolves the statically-known callee of call, or nil for
// dynamic calls, conversions and builtins.
func CalleeOf(info *types.Info, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		fn, _ := info.Uses[fun].(*types.Func)
		return fn
	case *ast.SelectorExpr:
		fn, _ := info.Uses[fun.Sel].(*types.Func)
		return fn
	case *ast.IndexExpr:
		// Generic instantiation: f[T](x).
		if id, ok := fun.X.(*ast.Ident); ok {
			fn, _ := info.Uses[id].(*types.Func)
			return fn
		}
		if sel, ok := fun.X.(*ast.SelectorExpr); ok {
			fn, _ := info.Uses[sel.Sel].(*types.Func)
			return fn
		}
	}
	return nil
}
