package lint

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

var update = flag.Bool("update", false, "rewrite golden expected.txt files")

// loadFixture parses one testdata/src rule directory recursively.
func loadFixture(t *testing.T, dir string) []*Package {
	t.Helper()
	root, err := filepath.Abs("testdata")
	if err != nil {
		t.Fatal(err)
	}
	pkgs, err := Load(root, []string{filepath.Join("src", dir) + "/..."})
	if err != nil {
		t.Fatalf("load fixture %s: %v", dir, err)
	}
	if len(pkgs) == 0 {
		t.Fatalf("fixture %s: no packages loaded", dir)
	}
	return pkgs
}

// renderFindings formats findings relative to the fixture dir, one line
// each, matching the expected.txt golden format.
func renderFindings(t *testing.T, dir string, findings []Finding) string {
	t.Helper()
	base, err := filepath.Abs(filepath.Join("testdata", "src", dir))
	if err != nil {
		t.Fatal(err)
	}
	var b strings.Builder
	for _, f := range findings {
		rel, err := filepath.Rel(base, f.File)
		if err != nil {
			rel = f.File
		}
		fmt.Fprintf(&b, "%s:%d:%d: %s: %s\n", filepath.ToSlash(rel), f.Line, f.Col, f.Rule, f.Message)
	}
	return b.String()
}

// checkGolden compares got against testdata/src/<dir>/expected.txt,
// rewriting the golden when -update is set.
func checkGolden(t *testing.T, dir, got string) {
	t.Helper()
	golden := filepath.Join("testdata", "src", dir, "expected.txt")
	if *update {
		if err := os.WriteFile(golden, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("read golden (run with -update to create): %v", err)
	}
	if got != string(want) {
		t.Errorf("findings mismatch for %s\n--- got ---\n%s--- want ---\n%s", dir, got, want)
	}
}

// TestRuleGolden runs each rule in isolation over its fixture tree: the
// bad files are true positives recorded in expected.txt, the clean files
// must produce nothing (any extra line fails the golden comparison).
func TestRuleGolden(t *testing.T) {
	cases := []struct {
		dir  string
		rule Rule
	}{
		{"nondetermrand", NondetermRand{}},
		{"nondetermtime", NondetermTime{}},
		{"maporder", MapOrder{}},
		{"floateq", FloatEq{}},
		{"ctxblocking", CtxBlocking{}},
		{"errdrop", ErrDrop{}},
		{"gospawn", GoSpawn{}},
		{"determtaint", DetermTaint{}},
		{"lockguard", LockDiscipline{}},
		{"goleak", GoroutineLeak{}},
		{"handlerauth", HandlerAuth{}},
	}
	for _, c := range cases {
		t.Run(c.dir, func(t *testing.T) {
			pkgs := loadFixture(t, c.dir)
			runner := &Runner{Rules: []Rule{c.rule}}
			findings := runner.Run(pkgs)
			if len(findings) == 0 {
				t.Fatalf("fixture %s: expected at least one true positive", c.dir)
			}
			for _, f := range findings {
				if f.Rule != c.rule.Name() {
					t.Errorf("rule %s reported under wrong name %q", c.rule.Name(), f.Rule)
				}
				if !strings.Contains(filepath.Base(f.File), "bad") && !strings.Contains(f.File, "bad.go") {
					t.Errorf("finding in non-bad fixture file: %s", f)
				}
			}
			checkGolden(t, c.dir, renderFindings(t, c.dir, findings))
		})
	}
}

// TestSuppressDirective runs the full rule suite over the suppression
// fixture: a well-formed directive silences exactly its named rule, a
// directive naming another rule silences nothing (and is reported stale),
// and a directive without a reason is reported as bad-ignore.
func TestSuppressDirective(t *testing.T) {
	pkgs := loadFixture(t, "suppress")
	findings := NewRunner().Run(pkgs)

	byRule := map[string]int{}
	for _, f := range findings {
		byRule[f.Rule]++
	}
	// suppress.go has five rand.Float64 call sites; exactly two directives
	// are valid (Suppressed, Trailing), so three findings survive plus one
	// bad-ignore for the reason-less directive and one stale-ignore for the
	// wrong-rule directive that silenced nothing.
	if byRule["nondeterm-rand"] != 3 {
		t.Errorf("want 3 surviving nondeterm-rand findings, got %d", byRule["nondeterm-rand"])
	}
	if byRule[BadIgnoreRule] != 1 {
		t.Errorf("want 1 %s finding, got %d", BadIgnoreRule, byRule[BadIgnoreRule])
	}
	if byRule[StaleIgnoreRule] != 1 {
		t.Errorf("want 1 %s finding, got %d", StaleIgnoreRule, byRule[StaleIgnoreRule])
	}
	checkGolden(t, "suppress", renderFindings(t, "suppress", findings))
}

// TestRepoClean lints the entire module exactly as CI does and requires
// zero findings: the replay contract holds everywhere. Fixture testdata is
// skipped by Load's recursive expansion, which this test also proves —
// the fixtures are full of violations.
func TestRepoClean(t *testing.T) {
	root, err := filepath.Abs(filepath.Join("..", ".."))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(filepath.Join(root, "go.mod")); err != nil {
		t.Skipf("module root not found: %v", err)
	}
	pkgs, err := Load(root, []string{"./..."})
	if err != nil {
		t.Fatal(err)
	}
	if len(pkgs) < 10 {
		t.Fatalf("suspiciously few packages loaded: %d", len(pkgs))
	}
	findings := NewRunner().Run(pkgs)
	for _, f := range findings {
		t.Errorf("%s", f)
	}
}

// TestRelativizeDeterministic pins the machine-independent output
// contract the CLI's -json mode relies on: relativized paths are
// slash-separated and root-free, paths outside root survive untouched,
// and sorting after relativization reproduces the same order every time.
func TestRelativizeDeterministic(t *testing.T) {
	root := filepath.Join(string(filepath.Separator), "home", "ci", "repo")
	mk := func(file string, line int, rule string) Finding {
		return Finding{Rule: rule, File: file, Line: line, Col: 1, Message: "x"}
	}
	findings := []Finding{
		mk(filepath.Join(root, "b", "b.go"), 9, "err-drop"),
		mk(filepath.Join(root, "a", "a.go"), 3, "nondeterm-rand"),
		mk(filepath.Join(root, "a", "a.go"), 3, "determinism-taint"),
		mk(filepath.Join(string(filepath.Separator), "elsewhere", "x.go"), 1, "go-spawn"),
	}
	Relativize(findings, root)
	SortFindings(findings)
	got := make([]string, len(findings))
	for i, f := range findings {
		got[i] = fmt.Sprintf("%s:%d:%s", f.File, f.Line, f.Rule)
	}
	want := []string{
		filepath.Join(string(filepath.Separator), "elsewhere", "x.go") + ":1:go-spawn",
		"a/a.go:3:determinism-taint",
		"a/a.go:3:nondeterm-rand",
		"b/b.go:9:err-drop",
	}
	for i := range want {
		if i >= len(got) || got[i] != want[i] {
			t.Fatalf("order mismatch\n got: %v\nwant: %v", got, want)
		}
	}
	// Idempotence: a second pass must change nothing.
	before := fmt.Sprint(findings)
	Relativize(findings, root)
	SortFindings(findings)
	if after := fmt.Sprint(findings); after != before {
		t.Errorf("second Relativize+Sort changed output:\n%s\nvs\n%s", before, after)
	}
}

// TestRuleNamesUnique guards the suppression contract: directives match
// rules by exact name, so names must be distinct and non-empty.
func TestRuleNamesUnique(t *testing.T) {
	seen := map[string]bool{}
	for _, r := range AllRules() {
		name := r.Name()
		if name == "" || r.Doc() == "" {
			t.Errorf("rule %T needs a name and doc", r)
		}
		if seen[name] {
			t.Errorf("duplicate rule name %q", name)
		}
		seen[name] = true
	}
}
