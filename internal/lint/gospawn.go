package lint

import (
	"go/ast"
)

// GoSpawn forbids `go` statements inside the numeric hot-path packages
// (internal/tensor, internal/nn). Per-call goroutine spawning allocates on
// every kernel invocation and leaves the work split to the scheduler;
// kernel parallelism must instead route through the tensor package's
// persistent worker pool (parallelRows), which dispatches fixed,
// deterministic row chunks so results are bit-identical at any pool width.
// Chunk stealing is no exception: participants claim whole chunks off the
// run's atomic cursor and execute them inline — spawning a goroutine per
// stolen chunk reintroduces exactly the per-call cost the pool removes.
// The pool's own worker spawn carries a //lint:ignore go-spawn directive —
// the one sanctioned spawn site.
type GoSpawn struct{}

// Name implements Rule.
func (GoSpawn) Name() string { return "go-spawn" }

// Doc implements Rule.
func (GoSpawn) Doc() string {
	return "no ad-hoc goroutine spawning in hot-path kernel packages; use the tensor worker pool"
}

// goSpawnScopes are the hot-path packages the rule applies to.
var goSpawnScopes = []string{"internal/tensor", "internal/nn"}

// Check implements Rule.
func (g GoSpawn) Check(pkg *Package, report ReportFunc) {
	inScope := false
	for _, scope := range goSpawnScopes {
		if pathHasSegments(pkg.Path, scope) {
			inScope = true
			break
		}
	}
	if !inScope {
		return
	}
	for _, name := range pkg.SortedFileNames() {
		if IsTestFile(name) {
			continue
		}
		ast.Inspect(pkg.Files[name], func(n ast.Node) bool {
			st, ok := n.(*ast.GoStmt)
			if !ok {
				return true
			}
			report(g.Name(), st.Pos(),
				"go statement in a hot-path kernel package allocates per call and splits work nondeterministically; dispatch through the tensor worker pool (parallelRows) instead")
			return true
		})
	}
}
