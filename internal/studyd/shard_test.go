package studyd

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"rldecide/internal/daemon"
	"rldecide/internal/journal"
)

// postJSONAuth posts v with a bearer token and returns the decoded status.
func postJSONAuth(t *testing.T, url, token string, v any) *http.Response {
	t.Helper()
	body, err := json.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	req, err := http.NewRequest(http.MethodPost, url, bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	if token != "" {
		req.Header.Set("Authorization", "Bearer "+token)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

// TestTenantQuota pins the per-tenant slot quota: a tenant at its cap of
// active studies gets 429 until one finishes; other tenants are
// unaffected; the occupancy gauge reflects the counts.
func TestTenantQuota(t *testing.T) {
	g := &gate{limited: true, limit: 0, completions: map[uint64]int{}}
	registerGated("quota-probe", g)

	tenants, err := daemon.ParseTenants("alice=tok-a:1,bob=tok-b:2")
	if err != nil {
		t.Fatal(err)
	}
	d, err := New(Config{
		Dir:     t.TempDir(),
		Workers: 2,
		Auth:    daemon.NewAuth("", tenants),
		Logf:    testLogf(t),
	})
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(d.Handler())
	defer srv.Close()

	spec := baseSpec("quota-probe")
	spec.Budget = 1

	// Alice's first study occupies her single slot (the gated objective
	// blocks, keeping it running).
	resp := postJSONAuth(t, srv.URL+"/studies", "tok-a", spec)
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("first submit: %d", resp.StatusCode)
	}
	var first Summary
	if err := json.NewDecoder(resp.Body).Decode(&first); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if first.Tenant != "alice" {
		t.Fatalf("summary tenant %q, want alice", first.Tenant)
	}

	// Second submission: over quota, 429.
	resp = postJSONAuth(t, srv.URL+"/studies", "tok-a", spec)
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("over-quota submit: %d, want 429", resp.StatusCode)
	}
	resp.Body.Close()

	// Bob has his own quota.
	resp = postJSONAuth(t, srv.URL+"/studies", "tok-b", spec)
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("bob submit: %d", resp.StatusCode)
	}
	resp.Body.Close()

	// No token at all: 401, not quota.
	resp = postJSONAuth(t, srv.URL+"/studies", "", spec)
	if resp.StatusCode != http.StatusUnauthorized {
		t.Fatalf("anonymous submit: %d, want 401", resp.StatusCode)
	}
	resp.Body.Close()

	// The occupancy gauge sees both tenants.
	mresp, err := http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(mresp.Body); err != nil {
		t.Fatal(err)
	}
	mresp.Body.Close()
	for _, want := range []string{
		`rldecide_studyd_tenant_active_studies{tenant="alice"} 1`,
		`rldecide_studyd_tenant_active_studies{tenant="bob"} 1`,
	} {
		if !strings.Contains(buf.String(), want) {
			t.Errorf("metrics missing %q", want)
		}
	}

	// Freeing Alice's slot (here by cancelling; completion works the same
	// way — quota counts only pending/running studies) readmits her.
	m, ok := d.Store().Get(first.ID)
	if !ok {
		t.Fatal("study vanished")
	}
	m.Cancel()
	waitStatus(t, m, StatusInterrupted)
	resp = postJSONAuth(t, srv.URL+"/studies", "tok-a", spec)
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("post-cancel submit: %d, want 201", resp.StatusCode)
	}
	resp.Body.Close()
}

// TestNamedDaemonsShareDir pins the sharded-store contract: two named
// daemons on one state directory mint non-colliding prefixed IDs, load
// only their own studies back, and expose daemon-labeled metric series.
func TestNamedDaemonsShareDir(t *testing.T) {
	dir := t.TempDir()
	mk := func(name string) *Daemon {
		d, err := New(Config{Dir: dir, Name: name, Workers: 1, Logf: testLogf(t)})
		if err != nil {
			t.Fatal(err)
		}
		return d
	}
	alpha, beta := mk("alpha"), mk("beta")

	spec := baseSpec("sphere")
	spec.Budget = 2
	ma, err := alpha.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	mb, err := beta.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	if ma.ID != "alpha-s0001" || mb.ID != "beta-s0001" {
		t.Fatalf("prefixed IDs: %q %q", ma.ID, mb.ID)
	}
	waitStatus(t, ma, StatusDone)
	waitStatus(t, mb, StatusDone)

	// Ownership manifests landed.
	mf, ok, err := journal.LoadManifest(ma.journalPath)
	if err != nil || !ok {
		t.Fatalf("alpha manifest: %v %v", ok, err)
	}
	if mf.Daemon != "alpha" || mf.Generation != 1 {
		t.Fatalf("alpha manifest: %+v", mf)
	}

	// A restarted alpha loads only its own study.
	alpha2 := mk("alpha")
	ids := []string{}
	for _, m := range alpha2.Store().List() {
		ids = append(ids, m.ID)
	}
	if len(ids) != 1 || ids[0] != "alpha-s0001" {
		t.Fatalf("alpha reload sees %v, want [alpha-s0001]", ids)
	}

	// Metric series carry the daemon label.
	srv := httptest.NewServer(alpha.Handler())
	defer srv.Close()
	var buf bytes.Buffer
	resp, err := http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if !strings.Contains(buf.String(), `rldecide_studyd_studies{daemon="alpha",status="done"}`) {
		t.Errorf("metrics missing daemon label:\n%s", buf.String())
	}
}

// TestAdoptRehomesStudy pins the handoff protocol at the studyd level: a
// study stranded by a dead daemon is adopted by a peer (generation
// bumped), resumes from the journal, and completes without re-running
// journaled trials.
func TestAdoptRehomesStudy(t *testing.T) {
	dir := t.TempDir()
	g := &gate{limited: true, limit: 3, completions: map[uint64]int{}}
	registerGated("adopt-e2e", g)

	alpha, err := New(Config{Dir: dir, Name: "alpha", Workers: 1, Logf: testLogf(t)})
	if err != nil {
		t.Fatal(err)
	}
	spec := baseSpec("adopt-e2e")
	spec.Budget = 8
	m, err := alpha.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	// Let the gate's 3 trials finish, then cancel (simulating the daemon
	// dying mid-campaign with 3 journaled trials).
	for len(m.Trials()) < 3 {
		time.Sleep(2 * time.Millisecond)
	}
	m.Cancel()
	waitStatus(t, m, StatusInterrupted)

	// Beta adopts over HTTP, exactly as the router would.
	g.open()
	beta, err := New(Config{Dir: dir, Name: "beta", Workers: 1, Token: "tok", Logf: testLogf(t)})
	if err != nil {
		t.Fatal(err)
	}
	if len(beta.Store().List()) != 0 {
		t.Fatal("beta must not load alpha's study before adoption")
	}
	srv := httptest.NewServer(beta.Handler())
	defer srv.Close()

	resp := postJSONAuth(t, srv.URL+"/studies/"+m.ID+"/adopt", "", nil)
	if resp.StatusCode != http.StatusUnauthorized {
		t.Fatalf("unauthenticated adopt: %d, want 401", resp.StatusCode)
	}
	resp.Body.Close()

	resp = postJSONAuth(t, srv.URL+"/studies/"+m.ID+"/adopt", "tok", nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("adopt: %d", resp.StatusCode)
	}
	var sum Summary
	if err := json.NewDecoder(resp.Body).Decode(&sum); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if sum.Daemon != "beta" || sum.Generation != 2 {
		t.Fatalf("adopted summary: %+v", sum)
	}
	if sum.Resumed != 3 {
		t.Fatalf("adopted with %d resumed trials, want 3", sum.Resumed)
	}

	adopted, ok := beta.Store().Get(m.ID)
	if !ok {
		t.Fatal("adopted study not registered")
	}
	waitStatus(t, adopted, StatusDone)
	if got := len(adopted.Trials()); got != spec.Budget {
		t.Fatalf("adopted study finished %d trials, want %d", got, spec.Budget)
	}

	// Adopt is idempotent.
	resp = postJSONAuth(t, srv.URL+"/studies/"+m.ID+"/adopt", "tok", nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("re-adopt: %d", resp.StatusCode)
	}
	resp.Body.Close()
	mf, _, err := journal.LoadManifest(adopted.journalPath)
	if err != nil {
		t.Fatal(err)
	}
	if mf.Generation != 2 {
		t.Fatalf("re-adopt bumped generation to %d", mf.Generation)
	}

	// No journaled trial ran twice.
	g.mu.Lock()
	defer g.mu.Unlock()
	for seed, n := range g.completions {
		if n > 1 {
			t.Errorf("seed %d evaluated %d times", seed, n)
		}
	}

	// A restarted alpha no longer owns the study.
	alpha2, err := New(Config{Dir: dir, Name: "alpha", Workers: 1, Logf: testLogf(t)})
	if err != nil {
		t.Fatal(err)
	}
	if len(alpha2.Store().List()) != 0 {
		t.Fatal("alpha still loads the study beta adopted")
	}
}
