package studyd

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"

	"rldecide/internal/core"
	"rldecide/internal/journal"
)

// Status is the lifecycle state of a managed study.
type Status string

// Study lifecycle states.
const (
	// StatusPending: loaded or submitted, not yet scheduled.
	StatusPending Status = "pending"
	// StatusRunning: trials are executing.
	StatusRunning Status = "running"
	// StatusDone: the campaign completed its budget (or exhausted its
	// explorer).
	StatusDone Status = "done"
	// StatusInterrupted: stopped by shutdown/cancel before completing;
	// resumable from the journal.
	StatusInterrupted Status = "interrupted"
	// StatusFailed: the study could not run (bad spec rebuild, journal
	// I/O failure, ...).
	StatusFailed Status = "failed"
)

// ManagedStudy is one study under the daemon's control: its spec, its
// journal, and the finished trials accumulated across every run.
type ManagedStudy struct {
	ID   string
	Spec Spec
	// Tenant is the principal that submitted the study ("" when auth is
	// disabled or the single-token fallback was used).
	Tenant string
	// Daemon names the owning daemon in a sharded deployment ("" for
	// single-daemon stores); Generation counts ownership handoffs.
	Daemon     string
	Generation int

	journalPath string
	// journalMax caps the active journal segment size (0 = unbounded).
	journalMax int64
	// rawSpec is the spec exactly as persisted on disk; trial dispatches
	// carry it verbatim so every worker rebuilds the identical objective.
	rawSpec []byte
	// journalTimer, when set (by the daemon before run, in span mode),
	// wraps each trial's journal append so its latency can be recorded as
	// a causal span. Purely observational: do() runs exactly once either
	// way, and the appended bytes are untouched.
	journalTimer func(trial int, do func())

	mu sync.Mutex
	// guarded-by: mu
	status Status
	// guarded-by: mu
	errMsg string
	// guarded-by: mu
	journalErr string
	// guarded-by: mu
	trials []core.Trial
	// guarded-by: mu
	resumed int // trials seeded from the journal at load time
	// guarded-by: mu
	cancel context.CancelFunc
	done   chan struct{}
}

// Status returns the study's current lifecycle state.
func (m *ManagedStudy) Status() Status {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.status
}

// Done is closed when the study's current run finishes (any terminal or
// interrupted state).
func (m *ManagedStudy) Done() <-chan struct{} { return m.done }

// Cancel stops the study's current run, leaving it resumable.
func (m *ManagedStudy) Cancel() {
	m.mu.Lock()
	cancel := m.cancel
	m.mu.Unlock()
	if cancel != nil {
		cancel()
	}
}

// Trials returns the finished trials so far, in ID order.
func (m *ManagedStudy) Trials() []core.Trial {
	m.mu.Lock()
	out := append([]core.Trial(nil), m.trials...)
	m.mu.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// Summary is the API-facing digest of a managed study.
type Summary struct {
	ID          string `json:"id"`
	Name        string `json:"name"`
	Tenant      string `json:"tenant,omitempty"`
	Daemon      string `json:"daemon,omitempty"`
	Generation  int    `json:"generation,omitempty"`
	Status      Status `json:"status"`
	Error       string `json:"error,omitempty"`
	JournalErr  string `json:"journal_error,omitempty"`
	Objective   string `json:"objective"`
	Explorer    string `json:"explorer"`
	Budget      int    `json:"budget"`
	Finished    int    `json:"finished"`
	Resumed     int    `json:"resumed"`
	Parallelism int    `json:"parallelism"`
	Seed        uint64 `json:"seed"`
}

// Summary returns the study digest.
func (m *ManagedStudy) Summary() Summary {
	m.mu.Lock()
	defer m.mu.Unlock()
	explorer := m.Spec.Explorer.Type
	if explorer == "" {
		explorer = "random"
	}
	return Summary{
		ID:          m.ID,
		Name:        m.Spec.Name,
		Tenant:      m.Tenant,
		Daemon:      m.Daemon,
		Generation:  m.Generation,
		Status:      m.status,
		Error:       m.errMsg,
		JournalErr:  m.journalErr,
		Objective:   m.Spec.Objective,
		Explorer:    explorer,
		Budget:      m.Spec.Budget,
		Finished:    len(m.trials),
		Resumed:     m.resumed,
		Parallelism: m.Spec.Parallelism,
		Seed:        m.Spec.Seed,
	}
}

// Front is the live decision analysis of a study: successive Pareto fronts
// of completed trials, by trial ID.
type Front struct {
	Metrics []MetricSpec `json:"metrics"`
	// Fronts[0] holds the IDs of the non-dominated trials.
	Fronts [][]int `json:"fronts"`
	// Completed counts the trials the ranking is over.
	Completed int `json:"completed"`
}

// Front ranks the completed trials finished so far with the study's
// Pareto ranker. It is safe to call while the study runs — that is the
// live-inspection feature.
func (m *ManagedStudy) Front() (Front, error) {
	metrics, err := m.Spec.metrics()
	if err != nil {
		return Front{}, err
	}
	rep := &core.Report{Metrics: metrics, Trials: m.Trials()}
	completed := rep.Completed()
	ranking := core.ParetoRanker{Eps: m.Spec.Eps}.Rank(completed, metrics)
	fr := Front{Metrics: m.Spec.Metrics, Completed: len(completed), Fronts: make([][]int, len(ranking.Fronts))}
	for i, front := range ranking.Fronts {
		ids := make([]int, len(front))
		for j, idx := range front {
			ids[j] = completed[idx].ID
		}
		sort.Ints(ids)
		fr.Fronts[i] = ids
	}
	return fr, nil
}

// run executes (or resumes) the study's campaign under ctx, routing every
// trial through the daemon's executor via wrap (see wrapFor) and
// journaling each finished trial. It must be called at most once per
// daemon lifetime per study.
func (m *ManagedStudy) run(ctx context.Context, wrap func(core.Objective) core.Objective) {
	defer close(m.done)
	ctx, cancel := context.WithCancel(ctx)
	defer cancel()

	m.mu.Lock()
	m.cancel = cancel
	m.status = StatusRunning
	seed := append([]core.Trial(nil), m.trials...)
	m.mu.Unlock()

	fail := func(err error) {
		m.mu.Lock()
		m.status = StatusFailed
		m.errMsg = err.Error()
		m.mu.Unlock()
	}

	study, err := m.Spec.build(wrap)
	if err != nil {
		fail(err)
		return
	}
	if err := study.Resume(seed); err != nil {
		fail(err)
		return
	}

	jw, err := journal.OpenSegmented(m.journalPath, m.journalMax)
	if err != nil {
		fail(err)
		return
	}
	study.OnTrial = func(t core.Trial) {
		doAppend := func() {
			if err := jw.Append(t); err != nil {
				m.mu.Lock()
				if m.journalErr == "" {
					m.journalErr = err.Error()
				}
				m.mu.Unlock()
			}
		}
		if m.journalTimer != nil {
			m.journalTimer(t.ID, doAppend)
		} else {
			doAppend()
		}
		m.mu.Lock()
		m.trials = append(m.trials, t)
		m.mu.Unlock()
	}

	_, err = study.RunContext(ctx, m.Spec.Budget)
	closeErr := jw.Close()

	m.mu.Lock()
	defer m.mu.Unlock()
	m.cancel = nil
	switch {
	case err == nil:
		m.status = StatusDone
	case errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded):
		// The journal holds everything that finished; the next daemon
		// start resumes from here.
		m.status = StatusInterrupted
	default:
		m.status = StatusFailed
		m.errMsg = err.Error()
	}
	if closeErr != nil && m.journalErr == "" {
		m.journalErr = closeErr.Error()
	}
}

// Store is the daemon's persistent study registry: one <id>.spec.json and
// one <id>.trials.jsonl (plus rotation segments and an ownership
// manifest) per study under dir. In a sharded deployment several daemons
// share one state directory; each Store loads only the studies its owner
// name claims (or unowned legacy studies), and ownership moves between
// daemons through Adopt.
type Store struct {
	dir string
	// owner is this daemon's name; "" is the single-daemon legacy mode
	// that loads everything and mints unprefixed IDs.
	owner string
	// journalMax caps active journal segments for studies run from this
	// store (0 = single-file journals, the legacy layout).
	journalMax int64

	mu sync.Mutex
	// guarded-by: mu
	studies map[string]*ManagedStudy
	// guarded-by: mu
	order []string
	// guarded-by: mu
	nextID int
}

// OpenStore opens (creating if needed) the state directory and loads every
// persisted study this owner may run: the spec is re-read, the journal
// (including rotated segments) is repaired (torn final record truncated)
// and replayed, and studies whose journals hold fewer trials than their
// budget come back StatusInterrupted, ready for resume. Studies whose
// manifest names a different owning daemon are left on disk untouched —
// they belong to another shard until adopted.
func OpenStore(dir, owner string, journalMax int64) (*Store, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	st := &Store{dir: dir, owner: owner, journalMax: journalMax, studies: map[string]*ManagedStudy{}, nextID: 1}
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var ids []string
	for _, e := range entries {
		if name, ok := strings.CutSuffix(e.Name(), ".spec.json"); ok {
			ids = append(ids, name)
		}
	}
	sort.Strings(ids)
	for _, id := range ids {
		mine, err := st.owns(id)
		if err != nil {
			return nil, fmt.Errorf("studyd: manifest for study %s: %w", id, err)
		}
		if !mine {
			continue
		}
		m, err := st.load(id)
		if err != nil {
			return nil, fmt.Errorf("studyd: loading study %s: %w", id, err)
		}
		st.studies[id] = m
		st.order = append(st.order, id)
		st.bumpNext(id)
	}
	return st, nil
}

// owns reports whether this store may load the study: it is unowned (no
// manifest, or a manifest without a daemon — the legacy layout), owned by
// this daemon, or the store is in single-daemon mode.
func (st *Store) owns(id string) (bool, error) {
	m, ok, err := journal.LoadManifest(st.journalPath(id))
	if err != nil {
		return false, err
	}
	if !ok || m.Daemon == "" || st.owner == "" {
		return true, nil
	}
	return m.Daemon == st.owner, nil
}

func (st *Store) journalPath(id string) string {
	return filepath.Join(st.dir, id+".trials.jsonl")
}

// bumpNext advances the ID counter past an observed study ID so freshly
// minted IDs never collide. IDs are s%04d, optionally prefixed with the
// minting daemon's name (alpha-s0001); the trailing segment carries the
// counter.
func (st *Store) bumpNext(id string) {
	tail := id
	if i := strings.LastIndex(id, "-"); i >= 0 {
		tail = id[i+1:]
	}
	var n int
	if _, err := fmt.Sscanf(tail, "s%d", &n); err == nil {
		st.mu.Lock()
		if n >= st.nextID {
			st.nextID = n + 1
		}
		st.mu.Unlock()
	}
}

func (st *Store) load(id string) (*ManagedStudy, error) {
	raw, err := os.ReadFile(filepath.Join(st.dir, id+".spec.json"))
	if err != nil {
		return nil, err
	}
	var spec Spec
	if err := json.Unmarshal(raw, &spec); err != nil {
		return nil, err
	}
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	m := &ManagedStudy{
		ID:          id,
		Spec:        spec,
		rawSpec:     raw,
		journalPath: st.journalPath(id),
		journalMax:  st.journalMax,
		status:      StatusPending,
		done:        make(chan struct{}),
	}
	if mf, ok, err := journal.LoadManifest(m.journalPath); err != nil {
		return nil, err
	} else if ok {
		m.Tenant = mf.Tenant
		m.Daemon = mf.Daemon
		m.Generation = mf.Generation
	}
	// Crash safety: a torn final record (append cut short by the crash)
	// is truncated away so the journal is clean for both replay and the
	// appends of the resumed run. Sealed rotation segments replay first.
	records, err := journal.RepairSegmented(m.journalPath)
	if err != nil {
		return nil, err
	}
	space, err := spec.Space()
	if err != nil {
		return nil, err
	}
	trials, err := journal.Trials(records, space)
	if err != nil {
		return nil, err
	}
	m.trials = trials
	m.resumed = len(trials)
	if len(trials) >= spec.Budget {
		m.status = StatusDone
		close(m.done)
	}
	return m, nil
}

// Submit validates and persists a new study spec and registers it as
// pending. The caller (the daemon) schedules it. Owned stores prefix the
// study ID with the daemon name (alpha-s0001) so IDs stay unique across a
// fleet sharing one state directory, and persist an ownership manifest
// next to the journal.
func (st *Store) Submit(spec Spec, tenant string) (*ManagedStudy, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	st.mu.Lock()
	id := fmt.Sprintf("s%04d", st.nextID)
	if st.owner != "" {
		id = fmt.Sprintf("%s-s%04d", st.owner, st.nextID)
	}
	st.nextID++
	st.mu.Unlock()

	raw, err := json.MarshalIndent(spec, "", "  ")
	if err != nil {
		return nil, err
	}
	if err := os.WriteFile(filepath.Join(st.dir, id+".spec.json"), raw, 0o644); err != nil {
		return nil, err
	}
	m := &ManagedStudy{
		ID:          id,
		Spec:        spec,
		Tenant:      tenant,
		Daemon:      st.owner,
		rawSpec:     raw,
		journalPath: st.journalPath(id),
		journalMax:  st.journalMax,
		status:      StatusPending,
		done:        make(chan struct{}),
	}
	if st.owner != "" || tenant != "" {
		m.Generation = 1
		mf := journal.Manifest{Study: id, Daemon: st.owner, Generation: 1, Tenant: tenant}
		if err := journal.SaveManifest(m.journalPath, mf); err != nil {
			return nil, err
		}
	}
	st.mu.Lock()
	st.studies[id] = m
	st.order = append(st.order, id)
	st.mu.Unlock()
	return m, nil
}

// Adopt moves ownership of an on-disk study to this store's daemon: the
// manifest is rewritten with this owner and a bumped generation, the
// journal (segments included) is repaired and replayed, and the study
// registers here ready to resume. Already-loaded studies return as-is
// with fresh=false. The old owner must be dead or drained — nothing
// fences a live owner's appends (see docs/sharding.md).
func (st *Store) Adopt(id string) (m *ManagedStudy, fresh bool, err error) {
	st.mu.Lock()
	existing, ok := st.studies[id]
	st.mu.Unlock()
	if ok {
		return existing, false, nil
	}
	if _, err := os.Stat(filepath.Join(st.dir, id+".spec.json")); err != nil {
		return nil, false, fmt.Errorf("studyd: no study %q on disk: %w", id, err)
	}
	jp := st.journalPath(id)
	mf, _, err := journal.LoadManifest(jp)
	if err != nil {
		return nil, false, err
	}
	mf.Study = id
	mf.Daemon = st.owner
	mf.Generation++
	if err := journal.SaveManifest(jp, mf); err != nil {
		return nil, false, err
	}
	m, err = st.load(id)
	if err != nil {
		return nil, false, err
	}
	st.mu.Lock()
	if raced, ok := st.studies[id]; ok {
		st.mu.Unlock()
		return raced, false, nil
	}
	st.studies[id] = m
	st.order = append(st.order, id)
	st.mu.Unlock()
	st.bumpNext(id)
	return m, true, nil
}

// ActiveByTenant counts pending/running studies per tenant — the
// occupancy the per-tenant slot quotas bound.
func (st *Store) ActiveByTenant() map[string]int {
	out := map[string]int{}
	for _, m := range st.List() {
		if s := m.Status(); s == StatusPending || s == StatusRunning {
			out[m.Tenant]++
		}
	}
	return out
}

// Get returns the study with the given ID.
func (st *Store) Get(id string) (*ManagedStudy, bool) {
	st.mu.Lock()
	defer st.mu.Unlock()
	m, ok := st.studies[id]
	return m, ok
}

// List returns all studies in submission order.
func (st *Store) List() []*ManagedStudy {
	st.mu.Lock()
	defer st.mu.Unlock()
	out := make([]*ManagedStudy, 0, len(st.order))
	for _, id := range st.order {
		out = append(out, st.studies[id])
	}
	return out
}

// Resumable returns the loaded studies that still have budget left and are
// not yet scheduled — the set a starting daemon must resume.
func (st *Store) Resumable() []*ManagedStudy {
	var out []*ManagedStudy
	for _, m := range st.List() {
		if m.Status() == StatusPending {
			out = append(out, m)
		}
	}
	return out
}
