package studyd

import (
	"errors"
	"fmt"
	"net/http"
	"os"

	"rldecide/internal/analysis"
	"rldecide/internal/journal"
	"rldecide/internal/obs"
	"rldecide/internal/rl"
)

// Analysis kinds served under /studies/{id}/analysis/{kind}.
const (
	AnalysisTraces          = "traces"
	AnalysisAttribution     = "attribution"
	AnalysisCounterfactuals = "counterfactuals"
)

// serveAnalysis computes one decision-analysis report for a study on
// demand: trace span summaries, trajectory attribution, or
// counterfactual rollouts. Reports are cached in a sidecar file next to
// the study's artifacts, keyed by a fingerprint of the inputs, so a
// finished study pays for each analysis once; a study still appending to
// its journals recomputes on the next request after the inputs grow.
// Everything here reads artifacts the scheduler already wrote — analysis
// can never affect a running study's results.
func (d *Daemon) serveAnalysis(w http.ResponseWriter, r *http.Request, m *ManagedStudy) {
	kind := r.PathValue("kind")
	var (
		inputs []string
		run    func() (any, error)
	)
	switch kind {
	case AnalysisTraces:
		files, err := obs.TraceFiles(d.tracePath)
		if err != nil {
			writeErr(w, http.StatusInternalServerError, err)
			return
		}
		inputs = files
		run = func() (any, error) {
			events, err := analysis.ReadTrace(d.tracePath)
			if err != nil && !errors.Is(err, journal.ErrTruncated) {
				return nil, err
			}
			return analysis.AnalyzeTrace(events, analysis.TraceOptions{Study: m.ID}), nil
		}
	case AnalysisAttribution:
		inputs = []string{d.trajPath(m.ID)}
		run = func() (any, error) {
			eps, err := d.loadTrajectories(m.ID)
			if err != nil {
				return nil, err
			}
			return analysis.AnalyzeAttribution(eps, analysis.AttributionOptions{})
		}
	case AnalysisCounterfactuals:
		inputs = []string{d.trajPath(m.ID)}
		run = func() (any, error) {
			eps, err := d.loadTrajectories(m.ID)
			if err != nil {
				return nil, err
			}
			return analysis.AnalyzeCounterfactuals(eps, analysis.CounterfactualOptions{})
		}
	default:
		writeErr(w, http.StatusNotFound, fmt.Errorf("unknown analysis kind %q (want %s, %s or %s)",
			kind, AnalysisTraces, AnalysisAttribution, AnalysisCounterfactuals))
		return
	}

	fp := analysis.Fingerprint(inputs...)
	cachePath := analysis.CachePath(d.cfg.Dir, m.ID, kind)
	if raw, ok := analysis.LoadCached(cachePath, kind, fp); ok {
		writeJSON(w, http.StatusOK, raw)
		return
	}
	rep, err := run()
	if err != nil {
		if os.IsNotExist(err) {
			writeErr(w, http.StatusNotFound, fmt.Errorf("no recorded trajectories for %s — run the daemon with analysis enabled (-analysis) and use a trajectory objective such as steer-ppo", m.ID))
			return
		}
		writeErr(w, http.StatusUnprocessableEntity, err)
		return
	}
	if err := analysis.SaveCached(cachePath, kind, m.ID, fp, rep); err != nil {
		d.cfg.Logf("studyd: caching %s analysis for %s: %v", kind, m.ID, err)
	}
	writeJSON(w, http.StatusOK, rep)
}

// loadTrajectories reads a study's trajectory journal in canonical
// order, tolerating a torn tail exactly like trial journals.
func (d *Daemon) loadTrajectories(id string) ([]rl.Episode, error) {
	eps, err := analysis.ReadEpisodes(d.trajPath(id))
	if err != nil && !errors.Is(err, journal.ErrTruncated) {
		return nil, err
	}
	return eps, nil
}
