package studyd

import (
	"encoding/json"
	"reflect"
	"testing"
)

// FuzzSpecDecode feeds arbitrary bytes through the HTTP submission path's
// decode-then-validate sequence. Invariants: decoding and validation
// never panic, validation is deterministic, a valid spec builds its
// parameter space and survives a JSON round trip, and the round-tripped
// spec is still valid — the property the daemon's crash-safe resume
// depends on, since specs are persisted verbatim and rebuilt on restart.
func FuzzSpecDecode(f *testing.F) {
	f.Add([]byte(`{}`))
	f.Add([]byte(`{"name":"s","budget":4,"objective":"sphere",` +
		`"params":[{"name":"x","type":"floatrange","lo":-5,"hi":5}],` +
		`"metrics":[{"name":"loss","direction":"min"}],"seed":7}`))
	f.Add([]byte(`{"name":"g","budget":2,"objective":"rastrigin",` +
		`"explorer":{"type":"grid"},` +
		`"params":[{"name":"k","type":"intset","ints":[1,2,3]},` +
		`{"name":"alg","type":"categorical","options":["ppo","sac"]}],` +
		`"metrics":[{"name":"reward","direction":"max"}]}`))
	f.Add([]byte(`{"params":[{"name":"x","type":"floatrange","lo":5,"hi":-5}]}`))
	f.Add([]byte(`{"params":[{"name":"x","type":"floatrange","lo":1e308,"hi":-1e308,"log":true}]}`))
	f.Add([]byte(`{"budget":-1}`))
	f.Add([]byte(`[1,2,3]`))
	f.Fuzz(func(t *testing.T, data []byte) {
		var sp Spec
		if err := json.Unmarshal(data, &sp); err != nil {
			return
		}
		err := sp.Validate()
		if err2 := sp.Validate(); (err == nil) != (err2 == nil) {
			t.Fatalf("validation not deterministic: %v vs %v", err, err2)
		}
		if err != nil {
			return
		}
		// A valid spec must materialize its space and survive the persist/
		// reload round trip the daemon performs on restart.
		if _, serr := sp.Space(); serr != nil {
			t.Fatalf("valid spec failed to build its space: %v", serr)
		}
		out, merr := json.Marshal(sp)
		if merr != nil {
			t.Fatalf("valid spec failed to marshal: %v", merr)
		}
		var back Spec
		if uerr := json.Unmarshal(out, &back); uerr != nil {
			t.Fatalf("persisted spec failed to reload: %v", uerr)
		}
		if !reflect.DeepEqual(sp, back) {
			t.Fatalf("spec changed across persist round trip:\n  %+v\n  %+v", sp, back)
		}
		if verr := back.Validate(); verr != nil {
			t.Fatalf("reloaded spec no longer valid: %v", verr)
		}
	})
}
