// Package studyd is the study-execution service behind rldecide-serve: a
// long-running daemon that accepts study submissions over HTTP, schedules
// trials from every active study onto one shared bounded worker pool,
// journals each finished trial through internal/journal, and serves live
// results (trials, Pareto fronts) while campaigns run. Journals plus
// persisted specs make the daemon crash-safe: on startup it replays its
// state directory and resumes every unfinished campaign exactly where it
// stopped, re-executing only trials that never finished.
package studyd

import (
	"fmt"

	"rldecide/internal/core"
	"rldecide/internal/param"
	"rldecide/internal/pareto"
	"rldecide/internal/search"
)

// ParamSpec declares one dimension of the search space.
type ParamSpec struct {
	Name string `json:"name"`
	// Type is one of "categorical", "intset", "intrange", "floatrange".
	Type    string   `json:"type"`
	Options []string `json:"options,omitempty"` // categorical
	Ints    []int    `json:"ints,omitempty"`    // intset
	Lo      float64  `json:"lo,omitempty"`      // intrange/floatrange
	Hi      float64  `json:"hi,omitempty"`
	Log     bool     `json:"log,omitempty"` // floatrange: log-uniform
}

// MetricSpec declares one evaluation metric.
type MetricSpec struct {
	Name      string `json:"name"`
	Unit      string `json:"unit,omitempty"`
	Direction string `json:"direction"` // "min" | "max"
}

// ExplorerSpec selects the exploratory method.
type ExplorerSpec struct {
	Type string `json:"type"` // "random" | "grid" | "tpe"
	// Random Search options.
	Dedup bool `json:"dedup,omitempty"`
	// TPE options (zero = package defaults).
	Gamma       float64 `json:"gamma,omitempty"`
	NCandidates int     `json:"n_candidates,omitempty"`
	MinTrials   int     `json:"min_trials,omitempty"`
}

// Spec is one study submission: the five methodology stages plus the
// execution budget. It is persisted verbatim next to the journal so a
// restarted daemon can rebuild the study.
type Spec struct {
	Name        string       `json:"name"`
	Description string       `json:"description,omitempty"`
	Params      []ParamSpec  `json:"params"`
	Explorer    ExplorerSpec `json:"explorer"`
	Metrics     []MetricSpec `json:"metrics"`
	// Objective names a registered objective (see RegisterObjective;
	// built-ins: "sphere", "rastrigin").
	Objective string `json:"objective"`
	// SleepMs adds artificial per-trial latency (demoing live results and
	// drain behavior).
	SleepMs int `json:"sleep_ms,omitempty"`
	// Noise adds seeded Gaussian noise of this magnitude to built-in
	// objective metrics (deterministic per trial seed).
	Noise float64 `json:"noise,omitempty"`
	// Budget is the total number of trials.
	Budget int `json:"budget"`
	// Parallelism caps this study's concurrent trials (the daemon's pool
	// bounds total concurrency across studies; default 1).
	Parallelism int `json:"parallelism,omitempty"`
	// Seed makes the campaign reproducible and resumable.
	Seed uint64 `json:"seed"`
	// Eps widens the served Pareto front to ε-non-dominated trials.
	Eps float64 `json:"eps,omitempty"`
}

// Validate checks the spec without building it.
func (sp Spec) Validate() error {
	_, err := sp.build(nil)
	return err
}

// Space materializes the parameter space.
func (sp Spec) Space() (*param.Space, error) {
	if len(sp.Params) == 0 {
		return nil, fmt.Errorf("studyd: spec needs at least one parameter")
	}
	params := make([]param.Param, 0, len(sp.Params))
	for _, ps := range sp.Params {
		p, err := ps.build()
		if err != nil {
			return nil, err
		}
		params = append(params, p)
	}
	return param.NewSpace(params...)
}

func (ps ParamSpec) build() (param.Param, error) {
	if ps.Name == "" {
		return nil, fmt.Errorf("studyd: unnamed parameter")
	}
	switch ps.Type {
	case "categorical":
		if len(ps.Options) == 0 {
			return nil, fmt.Errorf("studyd: categorical %q needs options", ps.Name)
		}
		return param.NewCategorical(ps.Name, ps.Options...), nil
	case "intset":
		if len(ps.Ints) == 0 {
			return nil, fmt.Errorf("studyd: intset %q needs ints", ps.Name)
		}
		return param.NewIntSet(ps.Name, ps.Ints...), nil
	case "intrange":
		if ps.Hi < ps.Lo {
			return nil, fmt.Errorf("studyd: intrange %q is empty", ps.Name)
		}
		return param.NewIntRange(ps.Name, int(ps.Lo), int(ps.Hi)), nil
	case "floatrange":
		if ps.Hi < ps.Lo {
			return nil, fmt.Errorf("studyd: floatrange %q is empty", ps.Name)
		}
		if ps.Log {
			if ps.Lo <= 0 {
				return nil, fmt.Errorf("studyd: log floatrange %q needs lo > 0", ps.Name)
			}
			return param.NewLogFloatRange(ps.Name, ps.Lo, ps.Hi), nil
		}
		return param.NewFloatRange(ps.Name, ps.Lo, ps.Hi), nil
	default:
		return nil, fmt.Errorf("studyd: unknown parameter type %q for %q", ps.Type, ps.Name)
	}
}

func (sp Spec) metrics() ([]core.Metric, error) {
	if len(sp.Metrics) == 0 {
		return nil, fmt.Errorf("studyd: spec needs at least one metric")
	}
	out := make([]core.Metric, 0, len(sp.Metrics))
	for _, ms := range sp.Metrics {
		m := core.Metric{Name: ms.Name, Unit: ms.Unit}
		switch ms.Direction {
		case "min":
			m.Direction = pareto.Minimize
		case "max":
			m.Direction = pareto.Maximize
		default:
			return nil, fmt.Errorf("studyd: metric %q direction must be \"min\" or \"max\", got %q", ms.Name, ms.Direction)
		}
		out = append(out, m)
	}
	return out, nil
}

func (sp Spec) explorer() (search.Explorer, error) {
	switch sp.Explorer.Type {
	case "random", "":
		return search.RandomSearch{Dedup: sp.Explorer.Dedup}, nil
	case "grid":
		return &search.GridSearch{}, nil
	case "tpe":
		return search.TPE{
			Gamma:       sp.Explorer.Gamma,
			NCandidates: sp.Explorer.NCandidates,
			MinTrials:   sp.Explorer.MinTrials,
		}, nil
	default:
		return nil, fmt.Errorf("studyd: unknown explorer %q", sp.Explorer.Type)
	}
}

// build assembles a fresh core.Study from the spec. The objective is
// wrapped by wrap when non-nil (the scheduler uses this to gate trials on
// the shared pool). Each call returns an independent Study (explorers are
// stateful), which is what makes replay-based resume possible.
func (sp Spec) build(wrap func(core.Objective) core.Objective) (*core.Study, error) {
	if sp.Name == "" {
		return nil, fmt.Errorf("studyd: spec needs a name")
	}
	if sp.Budget <= 0 {
		return nil, fmt.Errorf("studyd: spec needs budget > 0")
	}
	if sp.Parallelism < 0 {
		return nil, fmt.Errorf("studyd: parallelism must be >= 0")
	}
	space, err := sp.Space()
	if err != nil {
		return nil, err
	}
	metrics, err := sp.metrics()
	if err != nil {
		return nil, err
	}
	explorer, err := sp.explorer()
	if err != nil {
		return nil, err
	}
	objective, err := buildObjective(sp, metrics)
	if err != nil {
		return nil, err
	}
	if wrap != nil {
		objective = wrap(objective)
	}
	return &core.Study{
		CaseStudy:   core.CaseStudy{Name: sp.Name, Description: sp.Description},
		Space:       space,
		Explorer:    explorer,
		Metrics:     metrics,
		Ranker:      core.ParetoRanker{Eps: sp.Eps},
		Objective:   objective,
		Parallelism: sp.Parallelism,
		Seed:        sp.Seed,
	}, nil
}
