package studyd

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"

	"rldecide/internal/core"
	"rldecide/internal/executor"
	"rldecide/internal/journal"
	"rldecide/internal/obs/span"
	"rldecide/internal/param"
	"rldecide/internal/power"
)

// EvaluateRequest is the executor.EvalFunc every execution mode shares: it
// rebuilds the study objective from the dispatched spec against the
// process-local objective registry, resolves the trial's parameters
// against the spec's space, and evaluates. Both the daemon's Local
// executor and cmd/rldecide-worker call exactly this function, so a trial
// produces the same values wherever it runs — the property the fleet's
// deterministic failover and the local-vs-distributed replay contract
// rest on.
//
// A returned error is infrastructural (undecodable spec, unknown
// objective, cancellation) and is never journaled; a deterministic
// objective failure comes back as TrialResult.Error instead, which the
// daemon journals exactly like a local failure.
func EvaluateRequest(ctx context.Context, req executor.TrialRequest) (executor.TrialResult, error) {
	res := executor.TrialResult{StudyID: req.StudyID, TrialID: req.TrialID}
	var spec Spec
	if err := json.Unmarshal(req.Spec, &spec); err != nil {
		return res, fmt.Errorf("studyd: decoding dispatched spec: %w", err)
	}
	space, err := spec.Space()
	if err != nil {
		return res, err
	}
	metrics, err := spec.metrics()
	if err != nil {
		return res, err
	}
	objective, err := buildObjective(spec, metrics)
	if err != nil {
		return res, err
	}
	trial, err := (journal.Record{ID: req.TrialID, Params: req.Params, Seed: req.Seed}).ToTrial(space)
	if err != nil {
		return res, err
	}
	rec, out := core.NewRecorder(ctx, metrics)
	// Time the objective itself (not spec decoding) through the sanctioned
	// wall-clock seam. The measurement is informational — it becomes the
	// journal's wall_ms field and the trial-latency histogram, never an
	// input to the result. When the caller's context carries a tracing
	// scope (Config.Spans on the daemon, or a traced dispatch on a
	// worker), the same window is recorded as an "objective" span.
	osp := span.FromContext(ctx).Start(span.NameObjective, 0)
	sw := power.StartStopwatch()
	err = runObjective(objective, trial.Params, req.Seed, rec)
	res.WallMs = sw.ElapsedSeconds() * 1e3
	if err != nil {
		if ctx.Err() != nil || errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
			// Interrupted, not failed: the dispatcher drops the trial and
			// the campaign re-proposes it on resume.
			osp.Finish("cancelled", err.Error())
			return res, err
		}
		osp.Finish("failed", err.Error())
		res.Error = err.Error()
	} else {
		osp.Finish("ok", "")
	}
	res.Values = out.Values.Map()
	return res, nil
}

// runObjective evaluates with the same panic barrier core.Study uses, so a
// panicking objective yields the identical journaled failure in local and
// fleet mode instead of crashing a worker.
func runObjective(obj core.Objective, a param.Assignment, seed uint64, rec *core.Recorder) (err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("studyd: objective panicked: %v", r)
		}
	}()
	return obj(a, seed, rec)
}
