package studyd

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"rldecide/internal/core"
	"rldecide/internal/journal"
	"rldecide/internal/param"
)

func testLogf(t *testing.T) func(string, ...any) {
	return func(format string, args ...any) { t.Logf(format, args...) }
}

func baseSpec(objective string) Spec {
	return Spec{
		Name: "demo",
		Params: []ParamSpec{
			{Name: "x", Type: "floatrange", Lo: -2, Hi: 2},
			{Name: "y", Type: "floatrange", Lo: -2, Hi: 2},
		},
		Explorer: ExplorerSpec{Type: "random"},
		Metrics: []MetricSpec{
			{Name: "f", Direction: "min"},
			{Name: "cost", Direction: "min"},
		},
		Objective: objective,
		Budget:    16,
		Seed:      5,
	}
}

func TestSpecValidation(t *testing.T) {
	bad := map[string]func(*Spec){
		"no-name":       func(s *Spec) { s.Name = "" },
		"no-params":     func(s *Spec) { s.Params = nil },
		"bad-type":      func(s *Spec) { s.Params[0].Type = "nope" },
		"empty-range":   func(s *Spec) { s.Params[0].Lo, s.Params[0].Hi = 2, 1 },
		"bad-log":       func(s *Spec) { s.Params[0].Log = true },
		"no-metrics":    func(s *Spec) { s.Metrics = nil },
		"bad-direction": func(s *Spec) { s.Metrics[0].Direction = "sideways" },
		"bad-explorer":  func(s *Spec) { s.Explorer.Type = "oracle" },
		"bad-objective": func(s *Spec) { s.Objective = "nope" },
		"no-budget":     func(s *Spec) { s.Budget = 0 },
		"3-metrics": func(s *Spec) {
			s.Metrics = append(s.Metrics, MetricSpec{Name: "z", Direction: "min"})
		},
	}
	for name, mutate := range bad {
		sp := baseSpec("sphere")
		mutate(&sp)
		if err := sp.Validate(); err == nil {
			t.Errorf("%s: expected validation error", name)
		}
	}
	sp := baseSpec("sphere")
	if err := sp.Validate(); err != nil {
		t.Fatalf("good spec rejected: %v", err)
	}
	for _, ps := range []ParamSpec{
		{Name: "c", Type: "categorical", Options: []string{"a", "b"}},
		{Name: "i", Type: "intset", Ints: []int{1, 2}},
		{Name: "r", Type: "intrange", Lo: 1, Hi: 3},
		{Name: "l", Type: "floatrange", Lo: 0.001, Hi: 1, Log: true},
	} {
		sp := baseSpec("sphere")
		sp.Params = append(sp.Params, ps)
		if err := sp.Validate(); err != nil {
			t.Errorf("param %s: %v", ps.Name, err)
		}
	}
}

func postJSON(t *testing.T, url string, v any) *http.Response {
	t.Helper()
	body, err := json.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

func getJSON(t *testing.T, url string, out any) int {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatalf("decoding %s: %v", url, err)
		}
	}
	return resp.StatusCode
}

func waitStatus(t *testing.T, m *ManagedStudy, want Status) {
	t.Helper()
	deadline := time.Now().Add(20 * time.Second)
	for time.Now().Before(deadline) {
		if m.Status() == want {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("study %s stuck in %s, want %s", m.ID, m.Status(), want)
}

func TestSubmitRunServeHTTP(t *testing.T) {
	d, err := New(Config{Dir: t.TempDir(), Workers: 4, Logf: testLogf(t)})
	if err != nil {
		t.Fatal(err)
	}
	d.Start()
	ts := httptest.NewServer(d.Handler())
	defer ts.Close()
	defer d.Shutdown(context.Background())

	var health struct {
		OK   bool `json:"ok"`
		Pool struct{ Cap, InUse int }
	}
	if code := getJSON(t, ts.URL+"/healthz", &health); code != http.StatusOK || !health.OK {
		t.Fatalf("healthz: %d %+v", code, health)
	}

	sp := baseSpec("sphere")
	sp.Parallelism = 3
	resp := postJSON(t, ts.URL+"/studies", sp)
	var sum Summary
	if err := json.NewDecoder(resp.Body).Decode(&sum); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusCreated || sum.ID == "" {
		t.Fatalf("submit: %d %+v", resp.StatusCode, sum)
	}

	m, ok := d.Store().Get(sum.ID)
	if !ok {
		t.Fatal("submitted study not in store")
	}
	waitStatus(t, m, StatusDone)

	var got Summary
	if code := getJSON(t, ts.URL+"/studies/"+sum.ID, &got); code != http.StatusOK {
		t.Fatalf("study: %d", code)
	}
	if got.Finished != 16 || got.Status != StatusDone {
		t.Fatalf("summary: %+v", got)
	}

	var trials struct {
		Trials []journal.Record `json:"trials"`
	}
	if code := getJSON(t, ts.URL+"/studies/"+sum.ID+"/trials", &trials); code != http.StatusOK {
		t.Fatalf("trials: %d", code)
	}
	if len(trials.Trials) != 16 {
		t.Fatalf("trials served: %d", len(trials.Trials))
	}
	for i, r := range trials.Trials {
		if r.ID != i+1 {
			t.Fatalf("trials not in ID order: %d at %d", r.ID, i)
		}
	}

	var front Front
	if code := getJSON(t, ts.URL+"/studies/"+sum.ID+"/front", &front); code != http.StatusOK {
		t.Fatalf("front: %d", code)
	}
	if front.Completed != 16 || len(front.Fronts) == 0 || len(front.Fronts[0]) == 0 {
		t.Fatalf("front: %+v", front)
	}

	var list struct {
		Studies []Summary `json:"studies"`
	}
	if code := getJSON(t, ts.URL+"/studies", &list); code != http.StatusOK || len(list.Studies) != 1 {
		t.Fatalf("list: %d %+v", code, list)
	}

	if code := getJSON(t, ts.URL+"/studies/nope", nil); code != http.StatusNotFound {
		t.Fatalf("missing study: %d", code)
	}
	resp = postJSON(t, ts.URL+"/studies", map[string]any{"name": "bad"})
	resp.Body.Close()
	if resp.StatusCode != http.StatusUnprocessableEntity {
		t.Fatalf("bad spec: %d", resp.StatusCode)
	}
	resp = postJSON(t, ts.URL+"/studies", map[string]any{"bogus_field": 1})
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("unknown field: %d", resp.StatusCode)
	}
}

// TestPoolBoundsConcurrency submits two eager studies and checks the
// shared pool keeps total concurrent trials at its cap.
func TestPoolBoundsConcurrency(t *testing.T) {
	var mu sync.Mutex
	cur, peak := 0, 0
	RegisterObjective("pool-probe", func(spec Spec, metrics []core.Metric) (core.Objective, error) {
		return func(a param.Assignment, seed uint64, rec *core.Recorder) error {
			mu.Lock()
			cur++
			if cur > peak {
				peak = cur
			}
			mu.Unlock()
			time.Sleep(5 * time.Millisecond)
			mu.Lock()
			cur--
			mu.Unlock()
			rec.Report(metrics[0].Name, a.Value("x").Float())
			rec.Report(metrics[1].Name, 0)
			return nil
		}, nil
	})

	d, err := New(Config{Dir: t.TempDir(), Workers: 2, Logf: testLogf(t)})
	if err != nil {
		t.Fatal(err)
	}
	d.Start()
	defer d.Shutdown(context.Background())

	var studies []*ManagedStudy
	for i := 0; i < 2; i++ {
		sp := baseSpec("pool-probe")
		sp.Name = fmt.Sprintf("probe-%d", i)
		sp.Budget = 8
		sp.Parallelism = 4
		sp.Seed = uint64(i + 1)
		m, err := d.Submit(sp)
		if err != nil {
			t.Fatal(err)
		}
		studies = append(studies, m)
	}
	for _, m := range studies {
		waitStatus(t, m, StatusDone)
	}
	if peak > 2 {
		t.Fatalf("pool leaked concurrency: peak %d > cap 2", peak)
	}
	if peak < 2 {
		t.Logf("note: peak concurrency only %d", peak)
	}
}

// gate throttles an objective for the crash-resume test: in limited mode
// at most `limit` trials are allowed to complete; the rest block on the
// run context like a long training job and get discarded on shutdown.
type gate struct {
	mu          sync.Mutex
	limited     bool
	limit       int
	reserved    int
	completions map[uint64]int
}

func (g *gate) allow() bool {
	g.mu.Lock()
	defer g.mu.Unlock()
	if !g.limited {
		return true
	}
	if g.reserved >= g.limit {
		return false
	}
	g.reserved++
	return true
}

func (g *gate) open() {
	g.mu.Lock()
	g.limited = false
	g.mu.Unlock()
}

func (g *gate) complete(seed uint64) {
	g.mu.Lock()
	g.completions[seed]++
	g.mu.Unlock()
}

func registerGated(name string, g *gate) {
	RegisterObjective(name, func(spec Spec, metrics []core.Metric) (core.Objective, error) {
		return func(a param.Assignment, seed uint64, rec *core.Recorder) error {
			if !g.allow() {
				<-rec.Context().Done()
				return rec.Context().Err()
			}
			x, y := a.Value("x").Float(), a.Value("y").Float()
			rec.Report(metrics[0].Name, x*x+y*y)
			rec.Report(metrics[1].Name, 2*x+0.5*y)
			g.complete(seed)
			return nil
		}, nil
	})
}

// TestDaemonCrashResume is the acceptance scenario: start a study over
// HTTP, kill the daemon mid-campaign, restart it on the same state
// directory, and require (a) the campaign completes, (b) no journaled
// trial is re-executed, and (c) the final Pareto front is identical to an
// uninterrupted run with the same seed.
func TestDaemonCrashResume(t *testing.T) {
	dir := t.TempDir()
	g := &gate{limited: true, limit: 6, completions: map[uint64]int{}}
	registerGated("crash-e2e", g)

	// Phase A: first daemon lifetime — accept the study over HTTP and let
	// exactly 6 trials finish while later ones hang like real training.
	d1, err := New(Config{Dir: dir, Workers: 4, Logf: testLogf(t)})
	if err != nil {
		t.Fatal(err)
	}
	d1.Start()
	ts := httptest.NewServer(d1.Handler())

	sp := baseSpec("crash-e2e")
	sp.Parallelism = 2
	resp := postJSON(t, ts.URL+"/studies", sp)
	var sum Summary
	if err := json.NewDecoder(resp.Body).Decode(&sum); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("submit: %d", resp.StatusCode)
	}

	m1, _ := d1.Store().Get(sum.ID)
	deadline := time.Now().Add(20 * time.Second)
	for len(m1.Trials()) < 6 && time.Now().Before(deadline) {
		time.Sleep(2 * time.Millisecond)
	}
	if n := len(m1.Trials()); n != 6 {
		t.Fatalf("phase A finished %d trials, want 6", n)
	}

	// Kill the daemon mid-campaign: cancel its context and drain.
	ts.Close()
	shutdownCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	if err := d1.Shutdown(shutdownCtx); err != nil {
		t.Fatal(err)
	}
	cancel()
	if got := m1.Status(); got != StatusInterrupted {
		t.Fatalf("after shutdown: %s, want %s", got, StatusInterrupted)
	}

	// Simulate the torn append of a harder crash: the resume path must
	// repair it away without losing the 6 intact records.
	jp := filepath.Join(dir, sum.ID+".trials.jsonl")
	if err := appendBytes(jp, []byte(`{"id":99,"params":{"x":`)); err != nil {
		t.Fatal(err)
	}

	// Phase B: second daemon lifetime on the same directory.
	g.open()
	d2, err := New(Config{Dir: dir, Workers: 4, Logf: testLogf(t)})
	if err != nil {
		t.Fatal(err)
	}
	m2, ok := d2.Store().Get(sum.ID)
	if !ok {
		t.Fatal("restarted daemon lost the study")
	}
	if got := m2.Summary().Resumed; got != 6 {
		t.Fatalf("resumed %d trials from journal, want 6", got)
	}
	d2.Start()
	waitStatus(t, m2, StatusDone)
	defer d2.Shutdown(context.Background())

	finalTrials := m2.Trials()
	if len(finalTrials) != sp.Budget {
		t.Fatalf("campaign finished with %d/%d trials", len(finalTrials), sp.Budget)
	}
	seen := map[int]bool{}
	for _, tr := range finalTrials {
		if seen[tr.ID] {
			t.Fatalf("trial %d present twice", tr.ID)
		}
		seen[tr.ID] = true
	}
	for id := 1; id <= sp.Budget; id++ {
		if !seen[id] {
			t.Fatalf("trial %d missing after resume", id)
		}
	}
	// (b) no trial executed more than once across both daemon lifetimes.
	g.mu.Lock()
	for seed, n := range g.completions {
		if n != 1 {
			g.mu.Unlock()
			t.Fatalf("trial seed %d executed %d times", seed, n)
		}
	}
	total := len(g.completions)
	g.mu.Unlock()
	if total != sp.Budget {
		t.Fatalf("distinct executions %d, want %d", total, sp.Budget)
	}

	// (c) identical outcome to an uninterrupted run with the same seed.
	ref := &gate{completions: map[uint64]int{}}
	registerGated("crash-e2e-ref", ref)
	refSpec := sp
	refSpec.Objective = "crash-e2e-ref"
	d3, err := New(Config{Dir: t.TempDir(), Workers: 4, Logf: testLogf(t)})
	if err != nil {
		t.Fatal(err)
	}
	d3.Start()
	m3, err := d3.Submit(refSpec)
	if err != nil {
		t.Fatal(err)
	}
	waitStatus(t, m3, StatusDone)
	defer d3.Shutdown(context.Background())

	refTrials := m3.Trials()
	if len(refTrials) != len(finalTrials) {
		t.Fatalf("trial counts differ: %d vs %d", len(finalTrials), len(refTrials))
	}
	for i := range refTrials {
		a, b := finalTrials[i], refTrials[i]
		if a.ID != b.ID || a.Seed != b.Seed || a.Params.Key() != b.Params.Key() {
			t.Fatalf("trial %d diverged from uninterrupted run:\n%v\n%v", a.ID, a.Params, b.Params)
		}
		for _, mv := range b.Values {
			if a.Values.At(mv.Name) != mv.V {
				t.Fatalf("trial %d metric %s: %v vs %v", a.ID, mv.Name, a.Values.At(mv.Name), mv.V)
			}
		}
	}
	frontA, err := m2.Front()
	if err != nil {
		t.Fatal(err)
	}
	frontB, err := m3.Front()
	if err != nil {
		t.Fatal(err)
	}
	if fmt.Sprint(frontA.Fronts) != fmt.Sprint(frontB.Fronts) {
		t.Fatalf("Pareto fronts diverged:\nresumed:       %v\nuninterrupted: %v", frontA.Fronts, frontB.Fronts)
	}
	t.Logf("resumed front matches uninterrupted front: %v", frontA.Fronts[0])
}

func appendBytes(path string, b []byte) error {
	f, err := os.OpenFile(path, os.O_APPEND|os.O_WRONLY, 0o644)
	if err != nil {
		return err
	}
	if _, err := f.Write(b); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// TestStoreLoadMarksCompletedDone ensures finished campaigns are not
// re-run on restart.
func TestStoreLoadMarksCompletedDone(t *testing.T) {
	dir := t.TempDir()
	d1, err := New(Config{Dir: dir, Workers: 2, Logf: testLogf(t)})
	if err != nil {
		t.Fatal(err)
	}
	d1.Start()
	sp := baseSpec("sphere")
	sp.Budget = 4
	m, err := d1.Submit(sp)
	if err != nil {
		t.Fatal(err)
	}
	waitStatus(t, m, StatusDone)
	if err := d1.Shutdown(context.Background()); err != nil {
		t.Fatal(err)
	}

	d2, err := New(Config{Dir: dir, Workers: 2, Logf: testLogf(t)})
	if err != nil {
		t.Fatal(err)
	}
	m2, ok := d2.Store().Get(m.ID)
	if !ok {
		t.Fatal("study lost")
	}
	if m2.Status() != StatusDone {
		t.Fatalf("completed study reloaded as %s", m2.Status())
	}
	if len(d2.Store().Resumable()) != 0 {
		t.Fatal("done study offered for resume")
	}
	select {
	case <-m2.Done():
	default:
		t.Fatal("done study's Done channel must be closed on load")
	}
}

func TestCancelEndpointLeavesStudyResumable(t *testing.T) {
	var blockMu sync.Mutex
	blocked := 0
	RegisterObjective("cancel-probe", func(spec Spec, metrics []core.Metric) (core.Objective, error) {
		return func(a param.Assignment, seed uint64, rec *core.Recorder) error {
			blockMu.Lock()
			blocked++
			blockMu.Unlock()
			<-rec.Context().Done()
			return rec.Context().Err()
		}, nil
	})
	d, err := New(Config{Dir: t.TempDir(), Workers: 2, Logf: testLogf(t)})
	if err != nil {
		t.Fatal(err)
	}
	d.Start()
	ts := httptest.NewServer(d.Handler())
	defer ts.Close()
	defer d.Shutdown(context.Background())

	sp := baseSpec("cancel-probe")
	m, err := d.Submit(sp)
	if err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		blockMu.Lock()
		n := blocked
		blockMu.Unlock()
		if n > 0 {
			break
		}
		time.Sleep(time.Millisecond)
	}
	resp := postJSON(t, ts.URL+"/studies/"+m.ID+"/cancel", struct{}{})
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("cancel: %d", resp.StatusCode)
	}
	waitStatus(t, m, StatusInterrupted)
	if !strings.HasPrefix(m.ID, "s") {
		t.Fatalf("unexpected id %s", m.ID)
	}
}
