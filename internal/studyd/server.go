package studyd

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"

	"rldecide/internal/daemon"
	"rldecide/internal/executor"
	"rldecide/internal/journal"
	"rldecide/internal/obs"
)

// Handler returns the daemon's HTTP API:
//
//	GET  /healthz              liveness + executor occupancy
//	GET  /metrics              Prometheus text-format exposition
//	GET  /studies              all studies (summaries)
//	POST /studies              submit a Spec (JSON) -> 201 + summary    [auth]
//	GET  /studies/{id}         one study's summary
//	GET  /studies/{id}/trials  finished trials (journal records, ID order)
//	GET  /studies/{id}/front   current Pareto ranking of completed trials
//	GET  /studies/{id}/events  SSE push stream of the study's live events
//	GET  /studies/{id}/spans   per-trial causal span tree (see -spans)
//	GET  /studies/{id}/analysis/{kind}
//	                           decision-analysis report (kind: traces |
//	                           attribution | counterfactuals), computed
//	                           on demand and cached in a sidecar file
//	POST /studies/{id}/cancel  stop the study's run (resumable later)   [auth]
//	POST /studies/{id}/adopt   claim ownership of an on-disk study      [auth]
//	GET  /workers              live fleet members (daemon-stamped)
//	POST /workers/register     add a worker to the fleet                [auth]
//	POST /workers/heartbeat    refresh a worker (upserts)               [auth]
//	POST /workers/deregister   remove a worker                         [auth]
//
// [auth] endpoints go through the kernel authenticator: a single shared
// token or per-tenant tokens with slot quotas (submissions over quota get
// 429). Read-only endpoints are always open.
func (d *Daemon) Handler() http.Handler {
	auth := d.cfg.Auth
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", d.handleHealthz)
	mux.Handle("GET /metrics", obs.Handler(obs.Default, d.reg))
	mux.HandleFunc("GET /studies", d.handleList)
	mux.HandleFunc("POST /studies", auth.RequireTenant(d.handleSubmit))
	mux.HandleFunc("GET /studies/{id}", d.handleStudy(func(w http.ResponseWriter, r *http.Request, m *ManagedStudy) {
		writeJSON(w, http.StatusOK, m.Summary())
	}))
	mux.HandleFunc("GET /studies/{id}/trials", d.handleStudy(d.serveTrials))
	mux.HandleFunc("GET /studies/{id}/front", d.handleStudy(d.serveFront))
	mux.HandleFunc("GET /studies/{id}/events", d.handleStudy(d.serveEvents))
	mux.HandleFunc("GET /studies/{id}/spans", d.handleStudy(d.serveSpans))
	mux.HandleFunc("GET /studies/{id}/analysis/{kind}", d.handleStudy(d.serveAnalysis))
	mux.HandleFunc("POST /studies/{id}/cancel", auth.Require(d.handleStudy(func(w http.ResponseWriter, r *http.Request, m *ManagedStudy) {
		m.Cancel()
		writeJSON(w, http.StatusAccepted, m.Summary())
	})))
	mux.HandleFunc("POST /studies/{id}/adopt", auth.Require(d.handleAdopt))
	mux.HandleFunc("GET /workers", d.handleWorkers)
	mux.HandleFunc("POST /workers/register", auth.Require(d.handleWorkerUpsert))
	mux.HandleFunc("POST /workers/heartbeat", auth.Require(d.handleWorkerUpsert))
	mux.HandleFunc("POST /workers/deregister", auth.Require(d.handleWorkerDeregister))
	return mux
}

func (d *Daemon) handleHealthz(w http.ResponseWriter, r *http.Request) {
	stats := d.exec.Stats()
	writeJSON(w, http.StatusOK, map[string]any{
		"ok":       true,
		"daemon":   d.cfg.Name,
		"studies":  len(d.store.List()),
		"executor": d.cfg.Exec,
		"pool":     map[string]int{"cap": stats.Cap, "in_use": stats.InUse},
		"workers":  d.fleet.Stats().Workers,
	})
}

func (d *Daemon) handleList(w http.ResponseWriter, r *http.Request) {
	studies := d.store.List()
	out := make([]Summary, len(studies))
	for i, m := range studies {
		out[i] = m.Summary()
	}
	writeJSON(w, http.StatusOK, map[string]any{"studies": out})
}

func (d *Daemon) handleSubmit(w http.ResponseWriter, r *http.Request, tenant string) {
	var spec Spec
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&spec); err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	m, err := d.SubmitAs(spec, tenant)
	if errors.Is(err, ErrQuota) {
		writeErr(w, http.StatusTooManyRequests, err)
		return
	}
	if err != nil {
		writeErr(w, http.StatusUnprocessableEntity, err)
		return
	}
	writeJSON(w, http.StatusCreated, m.Summary())
}

// handleAdopt claims ownership of a study persisted in the shared state
// directory — the re-homing half of the router's failover protocol. It
// looks the study up on disk, not in the live registry, because the whole
// point is that this daemon does not own it yet.
func (d *Daemon) handleAdopt(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	m, err := d.Adopt(id)
	if err != nil {
		writeErr(w, http.StatusNotFound, err)
		return
	}
	writeJSON(w, http.StatusOK, m.Summary())
}

func (d *Daemon) handleStudy(h func(http.ResponseWriter, *http.Request, *ManagedStudy)) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		m, ok := d.store.Get(r.PathValue("id"))
		if !ok {
			writeErr(w, http.StatusNotFound, fmt.Errorf("no study %q", r.PathValue("id")))
			return
		}
		h(w, r, m)
	}
}

func (d *Daemon) serveTrials(w http.ResponseWriter, r *http.Request, m *ManagedStudy) {
	trials := m.Trials()
	records := make([]journal.Record, len(trials))
	for i, t := range trials {
		records[i] = journal.FromTrial(t)
	}
	writeJSON(w, http.StatusOK, map[string]any{"trials": records})
}

// terminalStatus reports whether a study's run is over (nothing more will
// happen until a resume on the next daemon start).
func terminalStatus(s Status) bool {
	return s == StatusDone || s == StatusFailed || s == StatusInterrupted
}

// serveEvents is the push replacement for polling /front: a Server-Sent
// Events stream of the study's live events (trial starts/completions,
// dispatch attempts, study completion) off the daemon's event bus. Every
// stream opens with a `summary` event and ends with one after the study
// reaches a terminal state. Slow consumers lose events rather than
// stalling the scheduler (the bus drops on a full buffer); the summary
// frames carry authoritative counts either way. On daemon shutdown the
// bus closes, which ends every stream after its final events — the
// graceful SIGTERM drain.
func (d *Daemon) serveEvents(w http.ResponseWriter, r *http.Request, m *ManagedStudy) {
	fl, ok := w.(http.Flusher)
	if !ok {
		writeErr(w, http.StatusInternalServerError, fmt.Errorf("streaming unsupported"))
		return
	}
	sub := d.bus.SubscribeNamed("sse", 256)
	if sub == nil {
		writeErr(w, http.StatusServiceUnavailable, fmt.Errorf("daemon is shutting down"))
		return
	}
	defer d.bus.Unsubscribe(sub)
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.WriteHeader(http.StatusOK)
	writeSSE(w, "summary", m.Summary())
	flush(fl)
	if terminalStatus(m.Status()) {
		// Nothing further will happen this daemon lifetime; close rather
		// than hold an idle stream open.
		return
	}
	for {
		select {
		case <-r.Context().Done():
			return
		case ev, open := <-sub.Events():
			if !open {
				return // daemon shutdown: bus closed after the runners drained
			}
			if ev.Study != m.ID {
				continue
			}
			writeSSE(w, ev.Kind, ev)
			if ev.Kind == obs.KindStudyDone {
				writeSSE(w, "summary", m.Summary())
				flush(fl)
				return
			}
			flush(fl)
		}
	}
}

// flush forces buffered SSE frames onto the wire. http.Flusher.Flush has
// no error return; a gone client surfaces through the request context.
func flush(fl http.Flusher) {
	fl.Flush() //lint:ignore err-drop http.Flusher.Flush returns nothing
}

// writeSSE emits one Server-Sent Events frame. Write errors surface on
// the next frame's Flush (the client is gone; the request context ends
// the stream).
func writeSSE(w http.ResponseWriter, event string, v any) {
	data, err := json.Marshal(v)
	if err != nil {
		return
	}
	_, _ = fmt.Fprintf(w, "event: %s\ndata: %s\n\n", event, data)
}

func (d *Daemon) serveFront(w http.ResponseWriter, r *http.Request, m *ManagedStudy) {
	front, err := m.Front()
	if err != nil {
		writeErr(w, http.StatusInternalServerError, err)
		return
	}
	writeJSON(w, http.StatusOK, front)
}

func (d *Daemon) handleWorkers(w http.ResponseWriter, r *http.Request) {
	// The daemon stamp lets the router's fleet-wide /workers view
	// attribute each registry without guessing from the backend URL.
	writeJSON(w, http.StatusOK, map[string]any{"daemon": d.cfg.Name, "workers": d.fleet.Workers()})
}

// handleWorkerUpsert serves both registration and heartbeat: the payload
// is the full WorkerInfo either way, so dropped or restarted workers
// re-admit themselves on their next beat.
func (d *Daemon) handleWorkerUpsert(w http.ResponseWriter, r *http.Request) {
	var info executor.WorkerInfo
	if err := json.NewDecoder(r.Body).Decode(&info); err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	fresh, err := d.fleet.Upsert(info)
	if err != nil {
		writeErr(w, http.StatusUnprocessableEntity, err)
		return
	}
	if fresh {
		d.cfg.Logf("studyd: worker %s joined (%s, %d slots)", info.Name, info.URL, info.Slots)
	}
	writeJSON(w, http.StatusOK, map[string]any{"ok": true, "fleet": d.fleet.Stats()})
}

func (d *Daemon) handleWorkerDeregister(w http.ResponseWriter, r *http.Request) {
	var info executor.WorkerInfo
	if err := json.NewDecoder(r.Body).Decode(&info); err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	if d.fleet.Remove(info.Name) {
		d.cfg.Logf("studyd: worker %s left", info.Name)
	}
	writeJSON(w, http.StatusOK, map[string]any{"ok": true, "fleet": d.fleet.Stats()})
}

// The response helpers are the kernel's: every daemon in the fleet
// answers with the same JSON envelope.
func writeJSON(w http.ResponseWriter, status int, v any) { daemon.WriteJSON(w, status, v) }

func writeErr(w http.ResponseWriter, status int, err error) { daemon.WriteError(w, status, err) }
