package studyd

import (
	"context"
	"fmt"
	"log"
	"net/http"
	"path/filepath"
	"sync"
	"sync/atomic"
	"time"

	"rldecide/internal/executor"
	"rldecide/internal/obs"
)

// Config configures a daemon.
type Config struct {
	// Dir is the state directory (specs + journals). Required.
	Dir string
	// Workers is the local executor's slot count: the max number of trials
	// executing concurrently across all studies (default 4; ignored in
	// fleet mode, where registered workers provide the capacity).
	Workers int
	// Exec selects the trial executor: ExecLocal (default) runs trials
	// in-process, ExecFleet dispatches them to registered
	// rldecide-worker daemons.
	Exec string
	// Token, when set, requires `Authorization: Bearer <Token>` on study
	// submission, study cancellation, and the worker endpoints. Read-only
	// endpoints stay open.
	Token string
	// Fleet tunes the fleet executor (timeouts, retry, heartbeat TTL).
	// Token and Logf default to the daemon's own.
	Fleet executor.FleetOptions
	// Trace, when set, streams the daemon's event bus to
	// <Dir>/trace.jsonl — one JSON span event per line (study, trial,
	// dispatch, worker lifecycle). Purely informational: campaign
	// journals and fronts are byte-identical with tracing on or off.
	Trace bool
	// Logf receives operational log lines (default log.Printf).
	Logf func(format string, args ...any)
}

// Daemon is the study-execution service: store + executor + HTTP API.
type Daemon struct {
	cfg    Config
	store  *Store
	exec   executor.Executor
	fleet  *executor.Fleet
	bus    *obs.Bus
	tracer *obs.Tracer
	reg    *obs.Registry

	ctx    context.Context
	cancel context.CancelFunc
	wg     sync.WaitGroup

	// inflight counts trials between proposal and completion; together
	// with the executor's InUse it yields the scheduler queue depth.
	inflight atomic.Int64

	mu      sync.Mutex
	stopped bool
}

// New opens the state directory (loading any persisted studies) and
// returns a daemon ready to Start.
func New(cfg Config) (*Daemon, error) {
	if cfg.Dir == "" {
		return nil, fmt.Errorf("studyd: Config.Dir is required")
	}
	if cfg.Workers <= 0 {
		cfg.Workers = 4
	}
	if cfg.Logf == nil {
		cfg.Logf = log.Printf
	}
	fleetOpts := cfg.Fleet
	if fleetOpts.Token == "" {
		fleetOpts.Token = cfg.Token
	}
	if fleetOpts.Logf == nil {
		fleetOpts.Logf = cfg.Logf
	}
	// The bus always exists — SSE consumers and fleet events cost nothing
	// when nobody subscribes; Trace only decides whether a tracer drains
	// it to disk.
	bus := obs.NewBus()
	if fleetOpts.Events == nil {
		fleetOpts.Events = bus
	}
	// The fleet always exists so workers can register (and be inspected on
	// /workers) even while the daemon executes locally.
	fleet := executor.NewFleet(fleetOpts)
	var exec executor.Executor
	switch cfg.Exec {
	case "", ExecLocal:
		cfg.Exec = ExecLocal
		exec = executor.NewLocal(cfg.Workers, EvaluateRequest)
	case ExecFleet:
		exec = fleet
	default:
		return nil, fmt.Errorf("studyd: unknown executor mode %q (want %q or %q)", cfg.Exec, ExecLocal, ExecFleet)
	}
	store, err := OpenStore(cfg.Dir)
	if err != nil {
		return nil, err
	}
	ctx, cancel := context.WithCancel(context.Background())
	d := &Daemon{cfg: cfg, store: store, exec: exec, fleet: fleet, bus: bus, ctx: ctx, cancel: cancel}
	d.reg = d.newRegistry()
	if cfg.Trace {
		tracer, err := obs.OpenTracer(bus, filepath.Join(cfg.Dir, "trace.jsonl"))
		if err != nil {
			cancel()
			return nil, fmt.Errorf("studyd: opening trace stream: %w", err)
		}
		d.tracer = tracer
	}
	return d, nil
}

// Bus exposes the daemon's event bus (tests, embedders wiring their own
// consumers).
func (d *Daemon) Bus() *obs.Bus { return d.bus }

// Registry exposes the daemon's metric registry (queue depth, study
// status gauges, fleet collectors) for serving on an extra endpoint such
// as the -debug-addr mux.
func (d *Daemon) Registry() *obs.Registry { return d.reg }

// Store exposes the study registry (used by tests and the CLI).
func (d *Daemon) Store() *Store { return d.store }

// Fleet exposes the worker registry (register/heartbeat handlers and tests).
func (d *Daemon) Fleet() *executor.Fleet { return d.fleet }

// Start resumes every persisted study that still has budget left. Call it
// once, after New and before serving traffic.
func (d *Daemon) Start() {
	for _, m := range d.store.Resumable() {
		sum := m.Summary()
		d.cfg.Logf("studyd: resuming study %s (%q) at %d/%d trials", m.ID, sum.Name, sum.Finished, sum.Budget)
		d.launch(m)
	}
}

// Submit registers, persists and schedules a new study.
func (d *Daemon) Submit(spec Spec) (*ManagedStudy, error) {
	d.mu.Lock()
	stopped := d.stopped
	d.mu.Unlock()
	if stopped {
		return nil, fmt.Errorf("studyd: daemon is shutting down")
	}
	m, err := d.store.Submit(spec)
	if err != nil {
		return nil, err
	}
	metricSubmitted.Inc()
	d.cfg.Logf("studyd: accepted study %s (%q): budget %d, objective %s", m.ID, spec.Name, spec.Budget, spec.Objective)
	d.launch(m)
	return m, nil
}

func (d *Daemon) launch(m *ManagedStudy) {
	d.wg.Add(1)
	go func() {
		defer d.wg.Done()
		d.bus.Publish(obs.Event{Kind: obs.KindStudyStart, Study: m.ID, Status: string(StatusRunning)})
		m.run(d.ctx, d.wrapFor(m))
		sum := m.Summary()
		d.bus.Publish(obs.Event{Kind: obs.KindStudyDone, Study: m.ID, Status: string(sum.Status)})
		d.cfg.Logf("studyd: study %s is %s (%d/%d trials)", m.ID, sum.Status, sum.Finished, sum.Budget)
	}()
}

// Shutdown stops the daemon: new submissions are refused, every running
// study's context is cancelled (in-flight trials that watch their
// Recorder.Context stop and are discarded — everything already finished
// is safe in the journal), and Shutdown waits for the runners to drain
// until ctx expires. A daemon that misses the deadline can be killed
// outright: startup repair plus journal replay restores the exact state.
func (d *Daemon) Shutdown(ctx context.Context) error {
	d.mu.Lock()
	d.stopped = true
	d.mu.Unlock()
	d.cancel()
	drained := make(chan struct{})
	go func() {
		d.wg.Wait()
		close(drained)
	}()
	// Closing the bus after the runners drain lets SSE subscribers see
	// every final event before their channels close (graceful drain); on
	// a missed deadline it closes anyway so no handler hangs forever.
	defer func() {
		_ = d.bus.Close() // always nil
		if err := d.tracer.Close(); err != nil {
			d.cfg.Logf("studyd: closing trace stream: %v", err)
		}
	}()
	select {
	case <-drained:
		d.cfg.Logf("studyd: drained cleanly")
		return nil
	case <-ctx.Done():
		return fmt.Errorf("studyd: drain deadline exceeded: %w", ctx.Err())
	}
}

// ListenAndServe serves the daemon's HTTP API on addr until ctx is
// cancelled, then shuts the server down and drains studies with the given
// grace period.
func (d *Daemon) ListenAndServe(ctx context.Context, addr string, grace time.Duration) error {
	srv := &http.Server{Addr: addr, Handler: d.Handler()}
	errc := make(chan error, 1)
	go func() { errc <- srv.ListenAndServe() }()
	stats := d.exec.Stats()
	d.cfg.Logf("studyd: serving on %s (exec=%s, cap=%d, dir=%s)", addr, d.cfg.Exec, stats.Cap, d.cfg.Dir)
	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
	}
	shutdownCtx, cancel := context.WithTimeout(context.Background(), grace)
	defer cancel()
	// Drain the daemon first: cancelling studies and closing the bus ends
	// the open SSE streams, which srv.Shutdown would otherwise wait on
	// for the whole grace period.
	err := d.Shutdown(shutdownCtx)
	_ = srv.Shutdown(shutdownCtx)
	return err
}
