package studyd

import (
	"context"
	"errors"
	"fmt"
	"log"
	"path/filepath"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"rldecide/internal/analysis"
	"rldecide/internal/daemon"
	"rldecide/internal/executor"
	"rldecide/internal/obs"
	"rldecide/internal/obs/span"
	"rldecide/internal/power"
	"rldecide/internal/rl"
)

// Config configures a daemon.
type Config struct {
	// Dir is the state directory (specs + journals). Required. In a
	// sharded deployment every serve daemon points at the same directory;
	// ownership manifests keep their studies apart.
	Dir string
	// Name identifies this daemon in a sharded fleet. When set, minted
	// study IDs are prefixed (<Name>-s0001), ownership manifests are
	// signed with it, and every per-daemon metric series carries a
	// daemon="<Name>" label so the router's rollup never collides series.
	// Empty keeps the single-daemon behavior (and metric names) exactly.
	Name string
	// Workers is the local executor's slot count: the max number of trials
	// executing concurrently across all studies (default 4; ignored in
	// fleet mode, where registered workers provide the capacity).
	Workers int
	// Exec selects the trial executor: ExecLocal (default) runs trials
	// in-process, ExecFleet dispatches them to registered
	// rldecide-worker daemons.
	Exec string
	// Token, when set, requires `Authorization: Bearer <Token>` on study
	// submission, study cancellation, and the worker endpoints. Read-only
	// endpoints stay open. Superseded by Auth when both are set (the
	// token folds in as the anonymous-tenant fallback).
	Token string
	// Auth is the kernel authenticator: per-tenant bearer tokens with
	// slot quotas. Nil builds one from Token alone.
	Auth *daemon.Auth
	// JournalMaxBytes caps each study's active journal segment; when a
	// segment crosses the cap it is sealed as <id>.trials-<n>.jsonl and
	// recorded in the study's manifest. 0 keeps single-file journals.
	JournalMaxBytes int64
	// TraceMaxBytes caps the trace stream's active file the same way.
	TraceMaxBytes int64
	// Fleet tunes the fleet executor (timeouts, retry, heartbeat TTL).
	// Token and Logf default to the daemon's own.
	Fleet executor.FleetOptions
	// Trace, when set, streams the daemon's event bus to
	// <Dir>/trace.jsonl — one JSON span event per line (study, trial,
	// dispatch, worker lifecycle). Purely informational: campaign
	// journals and fronts are byte-identical with tracing on or off.
	Trace bool
	// Spans, when set, records per-trial causal span trees (study →
	// trial → dispatch → run → objective, plus journal appends) with
	// deterministic IDs derived from the study/trial/attempt keys,
	// propagates them to workers via the X-Rldecide-Trace headers, and
	// serves each study's tree at GET /studies/{id}/spans. Span events
	// also ride the event bus (so -trace streams them). Like Trace,
	// provably off the result path: journals and fronts are
	// byte-identical with spans on or off.
	Spans bool
	// Analysis, when set, journals the trajectories of locally executed
	// trials to <Dir>/<id>.trajectories.jsonl (one rl.Episode per line)
	// for the decision-analysis endpoints. Like Trace, it is provably
	// off the result path: journals and fronts are byte-identical with
	// analysis on or off.
	Analysis bool
	// Logf receives operational log lines (default log.Printf).
	Logf func(format string, args ...any)
}

// Daemon is the study-execution service: store + executor + HTTP API.
type Daemon struct {
	cfg    Config
	store  *Store
	exec   executor.Executor
	fleet  *executor.Fleet
	bus    *obs.Bus
	tracer *obs.Tracer
	reg    *obs.Registry

	// tracePath is where this daemon's trace stream lives (whether or
	// not tracing is enabled) — the trace-analysis endpoint reads it.
	tracePath string

	// spanClock times spans when Config.Spans is on (nil otherwise —
	// span scopes tolerate it, recording zero durations).
	spanClock *power.Stopwatch
	spanMu    sync.Mutex
	// spanCols holds each study's bounded span buffer, the store behind
	// GET /studies/{id}/spans.
	// guarded-by: spanMu
	spanCols map[string]*span.Collector

	epMu sync.Mutex
	// guarded-by: epMu
	epWriters map[string]*analysis.EpisodeWriter

	ctx    context.Context
	cancel context.CancelFunc
	wg     sync.WaitGroup

	// inflight counts trials between proposal and completion; together
	// with the executor's InUse it yields the scheduler queue depth.
	inflight atomic.Int64

	mu sync.Mutex
	// guarded-by: mu
	stopped bool
}

// New opens the state directory (loading any persisted studies) and
// returns a daemon ready to Start.
func New(cfg Config) (*Daemon, error) {
	if cfg.Dir == "" {
		return nil, fmt.Errorf("studyd: Config.Dir is required")
	}
	if cfg.Workers <= 0 {
		cfg.Workers = 4
	}
	if cfg.Logf == nil {
		cfg.Logf = log.Printf
	}
	if cfg.Auth == nil {
		cfg.Auth = daemon.NewAuth(cfg.Token, nil)
	}
	fleetOpts := cfg.Fleet
	if fleetOpts.Token == "" {
		fleetOpts.Token = cfg.Token
	}
	if fleetOpts.Logf == nil {
		fleetOpts.Logf = cfg.Logf
	}
	// The bus always exists — SSE consumers and fleet events cost nothing
	// when nobody subscribes; Trace only decides whether a tracer drains
	// it to disk.
	bus := obs.NewBus()
	if fleetOpts.Events == nil {
		fleetOpts.Events = bus
	}
	// The fleet always exists so workers can register (and be inspected on
	// /workers) even while the daemon executes locally.
	fleet := executor.NewFleet(fleetOpts)
	var exec executor.Executor
	switch cfg.Exec {
	case "", ExecLocal:
		cfg.Exec = ExecLocal
		exec = executor.NewLocal(cfg.Workers, EvaluateRequest)
	case ExecFleet:
		exec = fleet
	default:
		return nil, fmt.Errorf("studyd: unknown executor mode %q (want %q or %q)", cfg.Exec, ExecLocal, ExecFleet)
	}
	store, err := OpenStore(cfg.Dir, cfg.Name, cfg.JournalMaxBytes)
	if err != nil {
		return nil, err
	}
	ctx, cancel := context.WithCancel(context.Background())
	d := &Daemon{cfg: cfg, store: store, exec: exec, fleet: fleet, bus: bus, ctx: ctx, cancel: cancel,
		epWriters: map[string]*analysis.EpisodeWriter{},
		spanCols:  map[string]*span.Collector{}}
	if cfg.Spans {
		d.spanClock = power.StartStopwatch()
	}
	d.reg = d.newRegistry()
	name := "trace.jsonl"
	if cfg.Name != "" {
		// Daemons sharing a state directory must not fight over one
		// trace file.
		name = "trace-" + cfg.Name + ".jsonl"
	}
	// The path is fixed whether or not tracing is on: the trace-analysis
	// endpoint summarizes whatever stream exists at it.
	d.tracePath = filepath.Join(cfg.Dir, name)
	if cfg.Trace {
		tracer, err := obs.OpenTracerRotating(bus, d.tracePath, cfg.TraceMaxBytes)
		if err != nil {
			cancel()
			return nil, fmt.Errorf("studyd: opening trace stream: %w", err)
		}
		d.tracer = tracer
	}
	return d, nil
}

// Name returns the daemon's fleet identity ("" for single-daemon mode).
func (d *Daemon) Name() string { return d.cfg.Name }

// Auth exposes the kernel authenticator.
func (d *Daemon) Auth() *daemon.Auth { return d.cfg.Auth }

// Bus exposes the daemon's event bus (tests, embedders wiring their own
// consumers).
func (d *Daemon) Bus() *obs.Bus { return d.bus }

// Registry exposes the daemon's metric registry (queue depth, study
// status gauges, fleet collectors) for serving on an extra endpoint such
// as the -debug-addr mux.
func (d *Daemon) Registry() *obs.Registry { return d.reg }

// Store exposes the study registry (used by tests and the CLI).
func (d *Daemon) Store() *Store { return d.store }

// Fleet exposes the worker registry (register/heartbeat handlers and tests).
func (d *Daemon) Fleet() *executor.Fleet { return d.fleet }

// Start resumes every persisted study that still has budget left. Call it
// once, after New and before serving traffic.
func (d *Daemon) Start() {
	for _, m := range d.store.Resumable() {
		sum := m.Summary()
		d.cfg.Logf("studyd: resuming study %s (%q) at %d/%d trials", m.ID, sum.Name, sum.Finished, sum.Budget)
		d.launch(m)
	}
}

// ErrQuota reports a submission refused because the tenant is at its
// slot quota (HTTP 429 at the API).
var ErrQuota = errors.New("studyd: tenant slot quota exceeded")

// Submit registers, persists and schedules a new study as the anonymous
// tenant.
func (d *Daemon) Submit(spec Spec) (*ManagedStudy, error) { return d.SubmitAs(spec, "") }

// SubmitAs registers, persists and schedules a new study on behalf of
// tenant, enforcing the tenant's slot quota: a tenant at its cap of
// active (pending or running) studies gets ErrQuota. Quota accounting is
// derived from the store on every call — nothing to leak or repair across
// restarts.
func (d *Daemon) SubmitAs(spec Spec, tenant string) (*ManagedStudy, error) {
	// One submission at a time: the quota check and the store insert must
	// be atomic or two racing submissions could both clear the last slot.
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.stopped {
		return nil, fmt.Errorf("studyd: daemon is shutting down")
	}
	if quota := d.cfg.Auth.Slots(tenant); quota > 0 {
		if active := d.store.ActiveByTenant()[tenant]; active >= quota {
			return nil, fmt.Errorf("%w: tenant %q has %d active studies (quota %d)", ErrQuota, tenant, active, quota)
		}
	}
	m, err := d.store.Submit(spec, tenant)
	if err != nil {
		return nil, err
	}
	metricSubmitted.Inc()
	d.cfg.Logf("studyd: accepted study %s (%q): budget %d, objective %s", m.ID, spec.Name, spec.Budget, spec.Objective)
	d.launch(m)
	return m, nil
}

// Adopt takes ownership of an on-disk study (typically one stranded by a
// dead daemon sharing this state directory), replays its journal, and —
// when budget remains — resumes it. Idempotent: adopting a study this
// daemon already runs returns it unchanged.
func (d *Daemon) Adopt(id string) (*ManagedStudy, error) {
	d.mu.Lock()
	stopped := d.stopped
	d.mu.Unlock()
	if stopped {
		return nil, fmt.Errorf("studyd: daemon is shutting down")
	}
	m, fresh, err := d.store.Adopt(id)
	if err != nil {
		return nil, err
	}
	if fresh {
		sum := m.Summary()
		d.bus.Publish(obs.Event{Kind: obs.KindStudyAdopted, Study: m.ID, Daemon: d.cfg.Name, Status: string(sum.Status)})
		d.cfg.Logf("studyd: adopted study %s (generation %d) at %d/%d trials", m.ID, m.Generation, sum.Finished, sum.Budget)
		if m.Status() == StatusPending {
			d.launch(m)
		}
	}
	return m, nil
}

// trajPath names a study's trajectory journal inside the state
// directory, alongside its spec and trial journal.
func (d *Daemon) trajPath(id string) string {
	return filepath.Join(d.cfg.Dir, id+".trajectories.jsonl")
}

// episodeSinkFor returns the study's trajectory journal writer, creating
// it on first use, or nil when analysis recording is off. Writers live
// for the daemon's lifetime (a resumed study appends to its journal) and
// are flushed and closed by Shutdown.
func (d *Daemon) episodeSinkFor(id string) rl.EpisodeSink {
	if !d.cfg.Analysis {
		return nil
	}
	d.epMu.Lock()
	defer d.epMu.Unlock()
	w, ok := d.epWriters[id]
	if !ok {
		w = analysis.NewEpisodeWriter(d.trajPath(id))
		d.epWriters[id] = w
	}
	return w
}

func (d *Daemon) launch(m *ManagedStudy) {
	// In span mode the whole run gets a study root span, and journal
	// appends are timed under per-trial journal spans (the hook must be
	// set before run starts consuming it).
	var root *span.Active
	if d.cfg.Spans {
		root = d.studyScope(m.ID).Start(span.NameStudy, 0)
		m.journalTimer = d.journalTimerFor(m.ID)
	}
	d.wg.Add(1)
	go func() {
		defer d.wg.Done()
		d.bus.Publish(obs.Event{Kind: obs.KindStudyStart, Study: m.ID, Status: string(StatusRunning)})
		m.run(d.ctx, d.wrapFor(m))
		sum := m.Summary()
		root.Finish(string(sum.Status), sum.Error)
		d.bus.Publish(obs.Event{Kind: obs.KindStudyDone, Study: m.ID, Status: string(sum.Status)})
		d.cfg.Logf("studyd: study %s is %s (%d/%d trials)", m.ID, sum.Status, sum.Finished, sum.Budget)
	}()
}

// Shutdown stops the daemon: new submissions are refused, every running
// study's context is cancelled (in-flight trials that watch their
// Recorder.Context stop and are discarded — everything already finished
// is safe in the journal), and Shutdown waits for the runners to drain
// until ctx expires. A daemon that misses the deadline can be killed
// outright: startup repair plus journal replay restores the exact state.
func (d *Daemon) Shutdown(ctx context.Context) error {
	d.mu.Lock()
	d.stopped = true
	d.mu.Unlock()
	d.cancel()
	drained := make(chan struct{})
	go func() {
		d.wg.Wait()
		close(drained)
	}()
	// Closing the bus after the runners drain lets SSE subscribers see
	// every final event before their channels close (graceful drain); on
	// a missed deadline it closes anyway so no handler hangs forever.
	defer func() {
		_ = d.bus.Close() // always nil
		if err := d.tracer.Close(); err != nil {
			d.cfg.Logf("studyd: closing trace stream: %v", err)
		}
		d.epMu.Lock()
		ids := make([]string, 0, len(d.epWriters))
		for id := range d.epWriters {
			ids = append(ids, id)
		}
		sort.Strings(ids)
		for _, id := range ids {
			if err := d.epWriters[id].Close(); err != nil {
				d.cfg.Logf("studyd: closing trajectory journal for %s: %v", id, err)
			}
		}
		d.epMu.Unlock()
	}()
	select {
	case <-drained:
		d.cfg.Logf("studyd: drained cleanly")
		return nil
	case <-ctx.Done():
		return fmt.Errorf("studyd: drain deadline exceeded: %w", ctx.Err())
	}
}

// ListenAndServe serves the daemon's HTTP API on addr until ctx is
// cancelled, then drains studies and shuts the server down with the given
// grace period — the kernel's serve-then-drain lifecycle.
func (d *Daemon) ListenAndServe(ctx context.Context, addr string, grace time.Duration) error {
	stats := d.exec.Stats()
	d.cfg.Logf("studyd: serving on %s (exec=%s, cap=%d, dir=%s)", addr, d.cfg.Exec, stats.Cap, d.cfg.Dir)
	return daemon.Run(ctx, addr, d.Handler(), grace, d.Shutdown)
}
