package studyd

import (
	"fmt"

	"rldecide/internal/analysis"
	"rldecide/internal/core"
	"rldecide/internal/gym"
	"rldecide/internal/gym/toy"
	"rldecide/internal/mathx"
	"rldecide/internal/param"
	"rldecide/internal/rl"
	"rldecide/internal/rl/ppo"
)

// steerPPOEnv names the environment steer-ppo trains and evaluates on; it
// matches the analysis env registry, so recorded trajectories are
// branchable by the counterfactual analyzer.
const steerPPOEnv = "steer1d"

func init() {
	RegisterObjective("steer-ppo", steerPPOObjective)
}

// steerPPOObjective is the real-RL study objective: each trial trains a
// small PPO agent on the Steer1D control task under the trial's
// hyperparameters, then evaluates the greedy policy on fresh
// deterministically seeded episodes. Metric 0 gets the mean evaluation
// return; metric 1 (when declared) gets the modeled training compute in
// unit-network step costs, giving two-metric studies a genuine
// return-vs-compute Pareto trade-off.
//
// Recognized parameters (all optional, by name): "lr" (learning rate,
// default 3e-3), "hidden" (hidden width, default 16), "steps" (training
// env steps, default 2048).
//
// Evaluation always replays the same rl.RecordEpisode walk, whether or
// not a trajectory sink is attached to the trial's context — metric
// values depend only on (params, seed), so turning trajectory recording
// on or off provably never changes journals or fronts.
func steerPPOObjective(spec Spec, metrics []core.Metric) (core.Objective, error) {
	if len(metrics) > 2 {
		return nil, fmt.Errorf("studyd: objective %q supports at most 2 metrics, got %d", spec.Objective, len(metrics))
	}
	return func(a param.Assignment, seed uint64, rec *core.Recorder) error {
		lr := floatParam(a, "lr", 3e-3)
		hidden := intParam(a, "hidden", 16)
		steps := intParam(a, "steps", 2048)
		if hidden < 1 {
			hidden = 1
		}
		if steps < 1 {
			steps = 1
		}
		const (
			nEnv    = 4
			rollout = 64 // per-env steps per update
			evalEps = 8
		)
		seeder := mathx.NewSeeder(seed)
		vec := gym.NewVec(toy.MakeSteer1D(), nEnv, seeder, false)
		learner := ppo.New(ppo.Config{Hidden: []int{hidden}, LR: lr}, vec.ObservationSpace().Dim(), 3, seeder.Next())
		col := ppo.NewCollector(vec)
		done := 0
		for done < steps {
			if err := rec.Context().Err(); err != nil {
				return err
			}
			roll := col.Collect(learner, rollout)
			done += roll.Steps()
			learner.Update(roll)
		}

		// Greedy evaluation on fresh, per-episode-seeded environments. The
		// episodes are recorded unconditionally (recording is passive) and
		// handed to the context sink when one is attached — the daemon's
		// trajectory journal in analysis mode, nothing otherwise.
		sink := analysis.EpisodeSinkFrom(rec.Context())
		policy := learner.Policy()
		returns := make([]float64, 0, evalEps)
		for i := 0; i < evalEps; i++ {
			epSeed := seeder.Next()
			env := toy.MakeSteer1D()(epSeed)
			ep := rl.RecordEpisode(env, policy)
			ep.Trial = rec.TrialID()
			ep.Index = i
			ep.Env = steerPPOEnv
			ep.Seed = epSeed
			if sink != nil {
				sink.Record(ep)
			}
			returns = append(returns, ep.Return)
		}
		rec.Report(metrics[0].Name, mathx.Mean(returns))
		if len(metrics) > 1 {
			// Modeled compute: env steps times per-step network work
			// (forward ~ hidden units; update amortizes epochs over the
			// batch). Deterministic in (params) by construction.
			cost := float64(done) * float64(hidden) * float64(1+learner.Cfg.Epochs) * 1e-3
			rec.Report(metrics[1].Name, cost)
		}
		return nil
	}, nil
}

// floatParam reads a numeric parameter by name, with a default when the
// spec's space does not declare it.
func floatParam(a param.Assignment, name string, def float64) float64 {
	v, ok := a.Get(name)
	if !ok {
		return def
	}
	return v.Float()
}

// intParam reads an integer-valued parameter by name with a default.
func intParam(a param.Assignment, name string, def int) int {
	v, ok := a.Get(name)
	if !ok {
		return def
	}
	return int(v.Float())
}
