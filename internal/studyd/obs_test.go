package studyd

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"rldecide/internal/obs"
)

// TestObsOnOffDeterminism is the observability acceptance cross-check:
// the same spec + seed run on a tracing daemon and on a plain one must
// produce identical journals (modulo the informational worker/wall_ms
// fields) and the same Pareto front — instrumentation stays off the
// result path.
func TestObsOnOffDeterminism(t *testing.T) {
	spec := baseSpec("sphere")
	spec.Parallelism = 3
	spec.Noise = 0.1

	run := func(trace bool) (*ManagedStudy, string) {
		dir := t.TempDir()
		d, err := New(Config{Dir: dir, Workers: 4, Trace: trace, Logf: testLogf(t)})
		if err != nil {
			t.Fatal(err)
		}
		d.Start()
		t.Cleanup(func() { _ = d.Shutdown(context.Background()) })
		m, err := d.Submit(spec)
		if err != nil {
			t.Fatal(err)
		}
		waitStatus(t, m, StatusDone)
		return m, dir
	}

	traced, tracedDir := run(true)
	plain, _ := run(false)

	if got, want := canonicalRecords(t, traced), canonicalRecords(t, plain); !bytes.Equal(got, want) {
		t.Fatalf("journals diverge with tracing enabled:\n--- traced ---\n%s--- plain ---\n%s", got, want)
	}
	tf, err := traced.Front()
	if err != nil {
		t.Fatal(err)
	}
	pf, err := plain.Front()
	if err != nil {
		t.Fatal(err)
	}
	tj, _ := json.Marshal(tf)
	pj, _ := json.Marshal(pf)
	if !bytes.Equal(tj, pj) {
		t.Fatalf("Pareto fronts diverge:\n%s\n%s", tj, pj)
	}

	// The journal on disk must carry real wall-clock timings (the field is
	// informational but it has to be THERE, and positive, on both daemons).
	recs := readStudyJournal(t, tracedDir, traced.ID)
	for _, r := range recs {
		if r.WallMs <= 0 {
			t.Fatalf("trial %d journaled without wall-clock timing: %+v", r.ID, r)
		}
	}
}

// readStudyJournal loads <id>.trials.jsonl from a daemon state dir.
func readStudyJournal(t *testing.T, dir, id string) []journalRecord {
	t.Helper()
	f, err := os.Open(filepath.Join(dir, id+".trials.jsonl"))
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	var recs []journalRecord
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		var r journalRecord
		if err := json.Unmarshal(sc.Bytes(), &r); err != nil {
			t.Fatal(err)
		}
		recs = append(recs, r)
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	return recs
}

// journalRecord is the thin view of a journal line this test needs.
type journalRecord struct {
	ID     int     `json:"id"`
	Worker string  `json:"worker"`
	WallMs float64 `json:"wall_ms"`
}

// TestTraceStreamWrittenAlongsideJournal verifies the Trace flag produces
// a JSONL span stream in the state directory covering the whole study
// lifecycle: study start/done bracketing per-trial start/done events, in
// monotonically increasing sequence order.
func TestTraceStreamWrittenAlongsideJournal(t *testing.T) {
	dir := t.TempDir()
	d, err := New(Config{Dir: dir, Workers: 2, Trace: true, Logf: testLogf(t)})
	if err != nil {
		t.Fatal(err)
	}
	d.Start()
	spec := baseSpec("sphere")
	spec.Budget = 4
	m, err := d.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	waitStatus(t, m, StatusDone)
	if err := d.Shutdown(context.Background()); err != nil {
		t.Fatal(err)
	}

	f, err := os.Open(filepath.Join(dir, "trace.jsonl"))
	if err != nil {
		t.Fatalf("trace stream missing: %v", err)
	}
	defer f.Close()
	counts := map[string]int{}
	var lastSeq uint64
	dec := json.NewDecoder(f)
	for {
		var ev obs.Event
		if err := dec.Decode(&ev); err == io.EOF {
			break
		} else if err != nil {
			t.Fatal(err)
		}
		if ev.Seq <= lastSeq {
			t.Fatalf("trace sequence not increasing: %d after %d", ev.Seq, lastSeq)
		}
		lastSeq = ev.Seq
		if ev.Study != "" && ev.Study != m.ID {
			t.Fatalf("trace event for unknown study: %+v", ev)
		}
		counts[ev.Kind]++
	}
	if counts[obs.KindStudyStart] != 1 || counts[obs.KindStudyDone] != 1 {
		t.Fatalf("study lifecycle events: %v", counts)
	}
	if counts[obs.KindTrialStart] != spec.Budget || counts[obs.KindTrialDone] != spec.Budget {
		t.Fatalf("trial events do not cover the budget: %v", counts)
	}
}

// TestDaemonMetricsEndpoint scrapes the API /metrics route and checks the
// daemon-level series are exposed alongside the process-wide ones.
func TestDaemonMetricsEndpoint(t *testing.T) {
	d, err := New(Config{Dir: t.TempDir(), Workers: 2, Logf: testLogf(t)})
	if err != nil {
		t.Fatal(err)
	}
	d.Start()
	t.Cleanup(func() { _ = d.Shutdown(context.Background()) })
	ts := httptest.NewServer(d.Handler())
	t.Cleanup(ts.Close)

	m, err := d.Submit(baseSpec("sphere"))
	if err != nil {
		t.Fatal(err)
	}
	waitStatus(t, m, StatusDone)

	resp, err := ts.Client().Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	text := string(body)
	// Process-global counters accumulate across tests sharing obs.Default,
	// so assert presence, not values; the per-daemon status gauge is fresh
	// and can be matched exactly.
	for _, series := range []string{
		"rldecide_studyd_studies_submitted_total",
		"rldecide_studyd_trials_finished_total",
		"rldecide_studyd_trial_seconds_bucket",
		`rldecide_studyd_studies{status="done"} 1`,
		"rldecide_studyd_queue_depth",
		"rldecide_journal_appends_total",
		"rldecide_fleet_workers",
	} {
		if !strings.Contains(text, series) {
			t.Errorf("missing series %q in exposition:\n%s", series, text)
		}
	}
}
