package studyd

import (
	"fmt"
	"math"
	"sort"
	"sync"
	"time"

	"rldecide/internal/core"
	"rldecide/internal/mathx"
	"rldecide/internal/param"
)

// ObjectiveFactory builds a study objective for a submitted spec. The
// daemon cannot execute arbitrary code from the network, so every
// objective a spec may name must be registered in-process — the same
// pattern RL serving systems use for environment registries.
type ObjectiveFactory func(spec Spec, metrics []core.Metric) (core.Objective, error)

var (
	objMu       sync.RWMutex
	objRegistry = map[string]ObjectiveFactory{}
)

// RegisterObjective makes an objective available to submitted specs under
// the given name, replacing any previous registration.
func RegisterObjective(name string, f ObjectiveFactory) {
	if name == "" || f == nil {
		panic("studyd: RegisterObjective needs a name and a factory")
	}
	objMu.Lock()
	defer objMu.Unlock()
	objRegistry[name] = f
}

// Objectives lists the registered objective names, sorted.
func Objectives() []string {
	objMu.RLock()
	defer objMu.RUnlock()
	out := make([]string, 0, len(objRegistry))
	for name := range objRegistry {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

func buildObjective(spec Spec, metrics []core.Metric) (core.Objective, error) {
	objMu.RLock()
	f, ok := objRegistry[spec.Objective]
	objMu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("studyd: unknown objective %q (registered: %v)", spec.Objective, Objectives())
	}
	return f(spec, metrics)
}

func init() {
	RegisterObjective("sphere", syntheticObjective(func(x []float64) float64 {
		s := 0.0
		for _, v := range x {
			s += v * v
		}
		return s
	}))
	RegisterObjective("rastrigin", syntheticObjective(func(x []float64) float64 {
		s := 10.0 * float64(len(x))
		for _, v := range x {
			s += v*v - 10*math.Cos(2*math.Pi*v)
		}
		return s
	}))
}

// syntheticObjective adapts a numeric test function into a study
// objective: metric 0 gets f over the numeric parameters, metric 1 (when
// declared) gets the L1 norm as an antagonistic "cost", so two-metric
// studies have a real Pareto trade-off. Values depend only on (params,
// seed) — the determinism resume needs.
func syntheticObjective(f func([]float64) float64) ObjectiveFactory {
	return func(spec Spec, metrics []core.Metric) (core.Objective, error) {
		if len(metrics) > 2 {
			return nil, fmt.Errorf("studyd: objective %q supports at most 2 metrics, got %d", spec.Objective, len(metrics))
		}
		sleep := time.Duration(spec.SleepMs) * time.Millisecond
		return func(a param.Assignment, seed uint64, rec *core.Recorder) error {
			if sleep > 0 {
				select {
				case <-time.After(sleep):
				case <-rec.Context().Done():
					return rec.Context().Err()
				}
			}
			x := numericValues(a)
			noise := 0.0
			if spec.Noise > 0 {
				noise = mathx.NewRand(seed).NormFloat64() * spec.Noise
			}
			rec.Report(metrics[0].Name, f(x)+noise)
			if len(metrics) > 1 {
				l1 := 0.0
				for _, v := range x {
					if v < 0 {
						v = -v
					}
					l1 += v
				}
				rec.Report(metrics[1].Name, l1+noise)
			}
			return nil
		}, nil
	}
}

// numericValues extracts the numeric parameters of an assignment in a
// deterministic (name-sorted) order — the assignment's own binding order.
func numericValues(a param.Assignment) []float64 {
	out := make([]float64, 0, len(a))
	for _, b := range a {
		if b.Value.Kind() == param.KindInt || b.Value.Kind() == param.KindFloat {
			out = append(out, b.Value.Float())
		}
	}
	return out
}
