package studyd

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	"rldecide/internal/executor"
	"rldecide/internal/journal"
)

// startFleetWorker runs an in-process worker daemon evaluating with the
// canonical EvaluateRequest (or a wrapper) and returns its registration.
func startFleetWorker(t *testing.T, name string, slots int, eval executor.EvalFunc, token string) (*httptest.Server, executor.WorkerInfo) {
	t.Helper()
	if eval == nil {
		eval = EvaluateRequest
	}
	ws := &executor.Server{Name: name, Eval: eval, Token: token, Logf: testLogf(t)}
	ts := httptest.NewServer(ws.Handler())
	t.Cleanup(ts.Close)
	return ts, executor.WorkerInfo{Name: name, URL: ts.URL, Slots: slots}
}

// canonicalRecords renders a study's finished trials as sorted journal
// lines with the informational fields (worker attribution, measured
// wall-clock time) cleared — the byte-level form the determinism
// cross-check compares.
func canonicalRecords(t *testing.T, m *ManagedStudy) []byte {
	t.Helper()
	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	for _, tr := range m.Trials() { // Trials() is ID-sorted
		rec := journal.FromTrial(tr)
		rec.Worker = ""
		rec.WallMs = 0
		if err := enc.Encode(rec); err != nil {
			t.Fatal(err)
		}
	}
	return buf.Bytes()
}

// runLocalReference executes spec on a fresh local daemon and returns the
// finished study.
func runLocalReference(t *testing.T, spec Spec) *ManagedStudy {
	t.Helper()
	d, err := New(Config{Dir: t.TempDir(), Workers: 4, Logf: testLogf(t)})
	if err != nil {
		t.Fatal(err)
	}
	d.Start()
	t.Cleanup(func() { _ = d.Shutdown(context.Background()) })
	m, err := d.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	waitStatus(t, m, StatusDone)
	return m
}

// TestFleetDeterminismMatchesLocal is the acceptance cross-check: the same
// spec + seed run through the Local executor and through a 2-worker fleet
// must produce byte-identical sorted trial results and the same Pareto
// front.
func TestFleetDeterminismMatchesLocal(t *testing.T) {
	spec := baseSpec("sphere")
	spec.Parallelism = 3
	spec.Noise = 0.1 // exercise the seeded-noise path across process boundaries
	local := runLocalReference(t, spec)

	d, err := New(Config{Dir: t.TempDir(), Exec: ExecFleet, Logf: testLogf(t)})
	if err != nil {
		t.Fatal(err)
	}
	d.Start()
	t.Cleanup(func() { _ = d.Shutdown(context.Background()) })
	ts := httptest.NewServer(d.Handler())
	t.Cleanup(ts.Close)
	for _, name := range []string{"w1", "w2"} {
		_, info := startFleetWorker(t, name, 2, nil, "")
		resp := postJSON(t, ts.URL+"/workers/register", info)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("register %s: %d", name, resp.StatusCode)
		}
	}

	m, err := d.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	waitStatus(t, m, StatusDone)

	// Every trial must have been evaluated remotely and attributed.
	workers := map[string]int{}
	for _, tr := range m.Trials() {
		workers[tr.Worker]++
	}
	if workers["local"] > 0 || workers[""] > 0 {
		t.Fatalf("fleet campaign ran trials locally: %v", workers)
	}
	if workers["w1"]+workers["w2"] != spec.Budget {
		t.Fatalf("attribution does not cover the budget: %v", workers)
	}

	gotRecords, wantRecords := canonicalRecords(t, m), canonicalRecords(t, local)
	if !bytes.Equal(gotRecords, wantRecords) {
		t.Fatalf("fleet records diverge from local:\n--- fleet ---\n%s--- local ---\n%s", gotRecords, wantRecords)
	}
	fleetFront, err := m.Front()
	if err != nil {
		t.Fatal(err)
	}
	localFront, err := local.Front()
	if err != nil {
		t.Fatal(err)
	}
	if fFleet, fLocal := gotFronts(t, fleetFront), gotFronts(t, localFront); fFleet != fLocal {
		t.Fatalf("Pareto fronts diverged:\nfleet: %s\nlocal: %s", fFleet, fLocal)
	}

	// The served journal records expose the worker field over the API.
	var trials struct {
		Trials []journal.Record `json:"trials"`
	}
	if code := getJSON(t, ts.URL+"/studies/"+m.ID+"/trials", &trials); code != http.StatusOK {
		t.Fatalf("trials: %d", code)
	}
	for _, rec := range trials.Trials {
		if rec.Worker != "w1" && rec.Worker != "w2" {
			t.Fatalf("served record lacks worker attribution: %+v", rec)
		}
	}
}

func gotFronts(t *testing.T, f Front) string {
	t.Helper()
	b, err := json.Marshal(f.Fronts)
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

// TestFleetWorkerDeathFailover is the acceptance fault injection: one of
// two workers is killed mid-campaign (its in-flight trial hangs and its
// connections die); the campaign must still complete the full trial budget
// via requeue+retry, with a Pareto front identical to a pure-local run of
// the same seed.
func TestFleetWorkerDeathFailover(t *testing.T) {
	spec := baseSpec("sphere")
	spec.Parallelism = 2
	spec.SleepMs = 2 // keep trials in flight long enough to die mid-trial
	local := runLocalReference(t, spec)

	var dead atomic.Bool
	var doomedServed atomic.Int32
	doomedSrv, doomedInfo := startFleetWorker(t, "doomed", 1, func(ctx context.Context, req executor.TrialRequest) (executor.TrialResult, error) {
		if dead.Load() || doomedServed.Add(1) > 2 {
			dead.Store(true)
			<-ctx.Done() // killed: never answers again
			return executor.TrialResult{}, ctx.Err()
		}
		return EvaluateRequest(ctx, req)
	}, "")
	_, survivorInfo := startFleetWorker(t, "survivor", 2, nil, "")

	d, err := New(Config{
		Dir:  t.TempDir(),
		Exec: ExecFleet,
		Fleet: executor.FleetOptions{
			AttemptTimeout: 300 * time.Millisecond,
			Backoff:        5 * time.Millisecond,
		},
		Logf: testLogf(t),
	})
	if err != nil {
		t.Fatal(err)
	}
	d.Start()
	t.Cleanup(func() { _ = d.Shutdown(context.Background()) })
	for _, info := range []executor.WorkerInfo{doomedInfo, survivorInfo} {
		if _, err := d.Fleet().Upsert(info); err != nil {
			t.Fatal(err)
		}
	}

	m, err := d.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	// Make the kill hard mid-trial: once the worker stops answering, cut
	// its open connections too.
	go func() {
		for !dead.Load() {
			time.Sleep(time.Millisecond)
		}
		doomedSrv.CloseClientConnections()
	}()
	waitStatus(t, m, StatusDone)

	trials := m.Trials()
	if len(trials) != spec.Budget {
		t.Fatalf("campaign finished %d/%d trials", len(trials), spec.Budget)
	}
	counts := map[string]int{}
	for _, tr := range trials {
		counts[tr.Worker]++
	}
	if counts["doomed"] == 0 || counts["survivor"] == 0 {
		t.Fatalf("expected both workers to finish trials: %v", counts)
	}
	if counts["doomed"]+counts["survivor"] != spec.Budget {
		t.Fatalf("attribution gap: %v", counts)
	}
	// The dead worker is out of the fleet.
	for _, w := range d.Fleet().Workers() {
		if w.Name == "doomed" {
			t.Fatalf("dead worker still registered: %+v", w)
		}
	}

	// Determinism survived the failover: byte-identical records and front
	// versus the uninterrupted local reference.
	gotRecords, wantRecords := canonicalRecords(t, m), canonicalRecords(t, local)
	if !bytes.Equal(gotRecords, wantRecords) {
		t.Fatalf("failover records diverge from local:\n--- fleet ---\n%s--- local ---\n%s", gotRecords, wantRecords)
	}
	fleetFront, err := m.Front()
	if err != nil {
		t.Fatal(err)
	}
	localFront, err := local.Front()
	if err != nil {
		t.Fatal(err)
	}
	if fFleet, fLocal := gotFronts(t, fleetFront), gotFronts(t, localFront); fFleet != fLocal {
		t.Fatalf("Pareto fronts diverged after failover:\nfleet: %s\nlocal: %s", fFleet, fLocal)
	}
	t.Logf("failover complete: %v, front %v", counts, fleetFront.Fronts[0])
}

// postAuthed is postJSON with a bearer token.
func postAuthed(t *testing.T, url, token string, v any) *http.Response {
	t.Helper()
	body, err := json.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	req, err := http.NewRequest(http.MethodPost, url, bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	if token != "" {
		req.Header.Set("Authorization", "Bearer "+token)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

// TestBearerTokenAuth covers the auth satellite: with a token configured,
// submission and worker endpoints refuse anonymous or wrong-token calls,
// accept the right token, and read-only endpoints stay open.
func TestBearerTokenAuth(t *testing.T) {
	d, err := New(Config{Dir: t.TempDir(), Workers: 2, Token: "s3cret", Logf: testLogf(t)})
	if err != nil {
		t.Fatal(err)
	}
	d.Start()
	t.Cleanup(func() { _ = d.Shutdown(context.Background()) })
	ts := httptest.NewServer(d.Handler())
	t.Cleanup(ts.Close)

	spec := baseSpec("sphere")
	spec.Budget = 4
	info := executor.WorkerInfo{Name: "w1", URL: "http://127.0.0.1:1", Slots: 1}

	for name, try := range map[string]func() *http.Response{
		"submit-anon":    func() *http.Response { return postJSON(t, ts.URL+"/studies", spec) },
		"submit-wrong":   func() *http.Response { return postAuthed(t, ts.URL+"/studies", "nope", spec) },
		"register-anon":  func() *http.Response { return postJSON(t, ts.URL+"/workers/register", info) },
		"heartbeat-anon": func() *http.Response { return postJSON(t, ts.URL+"/workers/heartbeat", info) },
	} {
		resp := try()
		resp.Body.Close()
		if resp.StatusCode != http.StatusUnauthorized {
			t.Errorf("%s: %d, want 401", name, resp.StatusCode)
		}
	}

	resp := postAuthed(t, ts.URL+"/studies", "s3cret", spec)
	var sum Summary
	if err := json.NewDecoder(resp.Body).Decode(&sum); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("authed submit: %d", resp.StatusCode)
	}
	resp = postAuthed(t, ts.URL+"/workers/register", "s3cret", info)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("authed register: %d", resp.StatusCode)
	}

	// Reads stay open.
	if code := getJSON(t, ts.URL+"/healthz", nil); code != http.StatusOK {
		t.Fatalf("healthz behind auth: %d", code)
	}
	if code := getJSON(t, ts.URL+"/studies/"+sum.ID, nil); code != http.StatusOK {
		t.Fatalf("study read behind auth: %d", code)
	}
	var workersOut struct {
		Workers []executor.WorkerStatus `json:"workers"`
	}
	if code := getJSON(t, ts.URL+"/workers", &workersOut); code != http.StatusOK || len(workersOut.Workers) != 1 {
		t.Fatalf("workers read: %d %+v", code, workersOut)
	}

	// Cancel is mutating and therefore guarded too.
	resp = postJSON(t, ts.URL+"/studies/"+sum.ID+"/cancel", struct{}{})
	resp.Body.Close()
	if resp.StatusCode != http.StatusUnauthorized {
		t.Fatalf("anon cancel: %d, want 401", resp.StatusCode)
	}

	m, _ := d.Store().Get(sum.ID)
	waitStatus(t, m, StatusDone)
}
