package studyd

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"testing"
	"time"

	"rldecide/internal/analysis"
)

// steerSpec is a tiny steer-ppo study: enough training to be a real RL
// trial, small enough to keep the suite fast.
func steerSpec() Spec {
	return Spec{
		Name: "steer",
		Params: []ParamSpec{
			{Name: "lr", Type: "floatrange", Lo: 1e-3, Hi: 1e-2, Log: true},
			{Name: "hidden", Type: "intset", Ints: []int{4, 8}},
			{Name: "steps", Type: "intset", Ints: []int{128}},
		},
		Explorer: ExplorerSpec{Type: "random"},
		Metrics: []MetricSpec{
			{Name: "return", Direction: "max"},
			{Name: "compute", Direction: "min"},
		},
		Objective:   "steer-ppo",
		Budget:      4,
		Parallelism: 2,
		Seed:        11,
	}
}

// runSteer executes the spec on a fresh daemon with the given analysis
// setting and returns the daemon and finished study.
func runSteer(t *testing.T, dir string, analysisOn bool) (*Daemon, *ManagedStudy) {
	t.Helper()
	d, err := New(Config{Dir: dir, Workers: 4, Trace: analysisOn, Analysis: analysisOn, Logf: testLogf(t)})
	if err != nil {
		t.Fatal(err)
	}
	m, err := d.Submit(steerSpec())
	if err != nil {
		t.Fatal(err)
	}
	waitStatus(t, m, StatusDone)
	return d, m
}

// TestAnalysisOffResultPath is the replay-contract gate for the analysis
// subsystem: the same campaign run with trajectory recording (and
// tracing) on and off must journal byte-identical trials and serve
// byte-identical fronts. Recording is observation, never input.
func TestAnalysisOffResultPath(t *testing.T) {
	dOn, mOn := runSteer(t, t.TempDir(), true)
	dOff, mOff := runSteer(t, t.TempDir(), false)

	recOn := canonicalRecords(t, mOn)
	recOff := canonicalRecords(t, mOff)
	if !bytes.Equal(recOn, recOff) {
		t.Fatalf("journals diverge with analysis on/off:\non:  %s\noff: %s", recOn, recOff)
	}
	frontOn, err := mOn.Front()
	if err != nil {
		t.Fatal(err)
	}
	frontOff, err := mOff.Front()
	if err != nil {
		t.Fatal(err)
	}
	jOn, _ := json.Marshal(frontOn)
	jOff, _ := json.Marshal(frontOff)
	if !bytes.Equal(jOn, jOff) {
		t.Fatalf("fronts diverge with analysis on/off:\non:  %s\noff: %s", jOn, jOff)
	}

	// The side effects land exactly where promised: a trajectory journal
	// with recording on, nothing with it off.
	if _, err := os.Stat(dOn.trajPath(mOn.ID)); err != nil {
		t.Fatalf("analysis on: no trajectory journal: %v", err)
	}
	if _, err := os.Stat(dOff.trajPath(mOff.ID)); !os.IsNotExist(err) {
		t.Fatalf("analysis off: unexpected trajectory journal (err=%v)", err)
	}
}

// TestAnalysisEndpoints drives all three analysis kinds over the HTTP
// API against a really recorded study and checks the sidecar cache.
func TestAnalysisEndpoints(t *testing.T) {
	dir := t.TempDir()
	d, m := runSteer(t, dir, true)
	srv := httptest.NewServer(d.Handler())
	defer srv.Close()

	get := func(kind string) (int, []byte) {
		t.Helper()
		resp, err := http.Get(srv.URL + "/studies/" + m.ID + "/analysis/" + kind)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var buf bytes.Buffer
		if _, err := buf.ReadFrom(resp.Body); err != nil {
			t.Fatal(err)
		}
		return resp.StatusCode, buf.Bytes()
	}

	// Traces: the daemon ran with -trace, so spans exist for the study.
	// The tracer drains the bus asynchronously — wait for all four trial
	// spans to reach disk before asserting on the report.
	deadline := time.Now().Add(10 * time.Second)
	for {
		events, _ := analysis.ReadTrace(d.tracePath)
		if analysis.AnalyzeTrace(events, analysis.TraceOptions{Study: m.ID}).Trials.Count == 4 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("trace stream never recorded 4 finished trials")
		}
		time.Sleep(5 * time.Millisecond)
	}
	code, body := get(AnalysisTraces)
	if code != http.StatusOK {
		t.Fatalf("traces: %d: %s", code, body)
	}
	var trep analysis.TraceReport
	if err := json.Unmarshal(body, &trep); err != nil {
		t.Fatal(err)
	}
	if trep.Trials.Count != 4 {
		t.Fatalf("trace report counted %d trials, want 4: %s", trep.Trials.Count, body)
	}

	// Attribution over the recorded trajectories.
	code, body = get(AnalysisAttribution)
	if code != http.StatusOK {
		t.Fatalf("attribution: %d: %s", code, body)
	}
	var arep analysis.AttributionReport
	if err := json.Unmarshal(body, &arep); err != nil {
		t.Fatal(err)
	}
	if arep.Episodes != 4*8 {
		t.Fatalf("attribution saw %d episodes, want 32", arep.Episodes)
	}

	// Counterfactuals branch from the recorded snapshots.
	code, body = get(AnalysisCounterfactuals)
	if code != http.StatusOK {
		t.Fatalf("counterfactuals: %d: %s", code, body)
	}
	var crep analysis.CounterfactualReport
	if err := json.Unmarshal(body, &crep); err != nil {
		t.Fatal(err)
	}
	if crep.Points == 0 || len(crep.Top) == 0 {
		t.Fatalf("counterfactual report has no decision points: %s", body)
	}

	// The sidecar cache exists and a repeated request serves the same
	// bytes from it.
	for _, kind := range []string{AnalysisTraces, AnalysisAttribution, AnalysisCounterfactuals} {
		if _, err := os.Stat(analysis.CachePath(dir, m.ID, kind)); err != nil {
			t.Errorf("no %s sidecar cache: %v", kind, err)
		}
	}
	_, again := get(AnalysisCounterfactuals)
	if !bytes.Equal(body, again) {
		t.Fatalf("cached counterfactual report differs from computed one")
	}

	// Unknown kinds and unknown studies are 404s.
	if code, _ := get("vibes"); code != http.StatusNotFound {
		t.Fatalf("unknown kind: got %d, want 404", code)
	}
	resp, err := http.Get(srv.URL + "/studies/nope/analysis/traces")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown study: got %d, want 404", resp.StatusCode)
	}

	// A study without recorded trajectories reports 404 with a hint, not
	// a 500.
	if err := os.Remove(filepath.Join(dir, m.ID+".trajectories.jsonl")); err != nil {
		t.Fatal(err)
	}
	for _, kind := range []string{AnalysisAttribution, AnalysisCounterfactuals} {
		if err := os.Remove(analysis.CachePath(dir, m.ID, kind)); err != nil {
			t.Fatal(err)
		}
	}
	if code, body := get(AnalysisAttribution); code != http.StatusNotFound {
		t.Fatalf("attribution without trajectories: got %d (%s), want 404", code, body)
	}
}
