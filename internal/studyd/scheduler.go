package studyd

import (
	"context"

	"rldecide/internal/core"
	"rldecide/internal/param"
)

// Pool is the daemon's shared trial scheduler: a counting semaphore that
// bounds how many trials execute concurrently across every study. Each
// study still runs its own Parallelism workers, but a worker must acquire
// a pool slot before its objective runs, so N studies submitted at once
// share the machine instead of oversubscribing it. Slots are released the
// moment a trial finishes, which makes the pool work-conserving: studies
// with ready trials absorb whatever capacity others leave idle.
type Pool struct {
	slots chan struct{}
}

// NewPool returns a pool with n execution slots (n < 1 is treated as 1).
func NewPool(n int) *Pool {
	if n < 1 {
		n = 1
	}
	return &Pool{slots: make(chan struct{}, n)}
}

// Cap returns the pool's slot count.
func (p *Pool) Cap() int { return cap(p.slots) }

// InUse returns the number of slots currently held.
func (p *Pool) InUse() int { return len(p.slots) }

// Acquire blocks until a slot is free or ctx is cancelled.
func (p *Pool) Acquire(ctx context.Context) error {
	select {
	case p.slots <- struct{}{}:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// Release frees a slot taken with Acquire.
//
//lint:ignore ctx-blocking the receive can never block: the caller holds the slot it releases
func (p *Pool) Release() { <-p.slots }

// Wrap gates an objective on the pool: the trial waits for a slot (giving
// up when its run context is cancelled, so queued trials drain instantly
// on shutdown and are re-proposed at the next resume) and releases it when
// the objective returns.
func (p *Pool) Wrap(obj core.Objective) core.Objective {
	return func(a param.Assignment, seed uint64, rec *core.Recorder) error {
		if err := p.Acquire(rec.Context()); err != nil {
			return err
		}
		defer p.Release()
		return obj(a, seed, rec)
	}
}
