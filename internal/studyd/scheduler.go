package studyd

import (
	"fmt"
	"sort"

	"rldecide/internal/analysis"
	"rldecide/internal/core"
	"rldecide/internal/executor"
	"rldecide/internal/obs"
	"rldecide/internal/obs/span"
	"rldecide/internal/param"
	"rldecide/internal/power"
)

// The scheduler bridges core.Study trial execution onto the daemon's
// executor. Where the first studyd release gated objectives on an
// in-process semaphore (the shared worker pool), every trial now becomes
// an executor lease: the Local executor keeps the exact pool semantics
// (bounded slots shared across studies, released the moment a trial
// finishes), while the Fleet executor leases capacity on remote worker
// daemons instead. Trial parameters and seeds are still derived on the
// daemon by the explorer, so which executor runs a trial never changes
// what the trial computes.

// Execution modes for Config.Exec.
const (
	// ExecLocal evaluates trials in-process (default).
	ExecLocal = "local"
	// ExecFleet dispatches trials to registered rldecide-worker daemons.
	ExecFleet = "fleet"
)

// wrapFor returns the Spec.build objective wrapper that routes each of m's
// trials through the daemon's executor as a self-contained TrialRequest.
// The in-process objective Spec.build constructed is deliberately ignored:
// the executor's EvalFunc (EvaluateRequest here or on a worker) rebuilds
// it from the dispatched spec, keeping one evaluation path for every mode.
//
// The wrapper is also the scheduler's observability point: it publishes
// trial start/done events to the daemon's bus, observes trial latency
// (lease wait + evaluation) through the Stopwatch seam, and carries the
// trial's measured compute time into the journal's wall_ms field. All of
// it rides alongside the result — the values reported to the Recorder are
// exactly the executor's, instrumented or not.
func (d *Daemon) wrapFor(m *ManagedStudy) func(core.Objective) core.Objective {
	// The spec is immutable for the study's lifetime, so hash it once;
	// fleet dispatchers use it to ship hash-only requests to workers that
	// already cached the spec.
	specHash := executor.SpecHashOf(m.rawSpec)
	// Span mode: every trial gets a "trial" span under the study root,
	// and the executor call carries a scope parented to it so dispatch
	// attempts (fleet) or the objective span (local) attach underneath.
	// All IDs are re-derived from the keys here rather than read off live
	// spans, keeping the executor inputs clean under the determinism-
	// taint rule.
	var trace, rootID string
	var sink span.Sink
	if d.cfg.Spans {
		trace = span.DeriveTrace(m.ID)
		rootID = span.DeriveID(trace, "", span.NameStudy, 0, 0)
		sink = d.spanSink(m.ID)
	}
	return func(core.Objective) core.Objective {
		return func(a param.Assignment, seed uint64, rec *core.Recorder) error {
			params := make(map[string]string, len(a))
			for _, b := range a {
				params[b.Name] = b.Value.String()
			}
			req := executor.TrialRequest{
				StudyID:  m.ID,
				TrialID:  rec.TrialID(),
				Spec:     m.rawSpec,
				SpecHash: specHash,
				Params:   params,
				Seed:     seed,
			}
			d.inflight.Add(1)
			defer d.inflight.Add(-1)
			d.bus.Publish(obs.Event{Kind: obs.KindTrialStart, Study: m.ID, Trial: req.TrialID})
			// In analysis mode, locally executed trials carry the study's
			// trajectory sink on their context; trajectory-aware objectives
			// journal evaluation episodes through it. Fleet dispatch sends
			// the request over HTTP, so remote trials naturally record
			// nothing (the daemon cannot reach a worker's disk). Either
			// way the values reported below are untouched — recording is
			// off the result path.
			ctx := rec.Context()
			if sink := d.episodeSinkFor(m.ID); sink != nil {
				ctx = analysis.WithEpisodeSink(ctx, sink)
			}
			var tsp *span.Active
			if d.cfg.Spans {
				tscope := &span.Scope{Trace: trace, Parent: rootID, Study: m.ID,
					Trial: req.TrialID, Daemon: d.cfg.Name, Clock: d.spanClock, Sink: sink}
				tsp = tscope.Start(span.NameTrial, 0)
				// Children parent onto the trial span; its ID is re-derived
				// (identical to tsp's by construction).
				cscope := &span.Scope{Trace: trace,
					Parent: span.DeriveID(trace, rootID, span.NameTrial, req.TrialID, 0),
					Study:  m.ID, Trial: req.TrialID, Daemon: d.cfg.Name,
					Clock: d.spanClock, Sink: sink}
				ctx = span.NewContext(ctx, cscope)
			}
			sw := power.StartStopwatch()
			res, err := d.exec.Run(ctx, req)
			metricTrialSeconds.Observe(sw.ElapsedSeconds())
			if err != nil {
				// Infrastructure failure or cancellation: the trial is not
				// journaled (retried or re-proposed on resume).
				tsp.Finish("dropped", err.Error())
				d.bus.Publish(obs.Event{Kind: obs.KindTrialDone, Study: m.ID, Trial: req.TrialID, Status: "dropped", Err: err.Error()})
				return err
			}
			metricTrialsFinished.Inc()
			tsp.SetWorker(res.Worker)
			rec.SetWorker(res.Worker)
			rec.SetWallMs(res.WallMs)
			names := make([]string, 0, len(res.Values))
			for name := range res.Values {
				names = append(names, name)
			}
			sort.Strings(names)
			for _, name := range names {
				rec.Report(name, res.Values[name])
			}
			done := obs.Event{Kind: obs.KindTrialDone, Study: m.ID, Trial: req.TrialID, Worker: res.Worker, Status: "ok", WallMs: res.WallMs}
			if res.Error != "" {
				metricTrialErrors.Inc()
				done.Status = "failed"
				done.Err = res.Error
				tsp.Finish("failed", res.Error)
				d.bus.Publish(done)
				return fmt.Errorf("%s", res.Error)
			}
			tsp.Finish("ok", "")
			d.bus.Publish(done)
			return nil
		}
	}
}
