package studyd

import (
	"rldecide/internal/obs"
)

// Process-wide studyd instruments (exposed at GET /metrics). Counters and
// histograms live here in obs.Default; per-daemon state gauges (study
// counts by status, executor occupancy, queue depth) are built per daemon
// in newRegistry so tests running several daemons in one process never
// collide.
var (
	metricSubmitted = obs.Default.NewCounter("rldecide_studyd_studies_submitted_total",
		"Studies accepted via Submit (HTTP or embedded).")
	metricTrialsFinished = obs.Default.NewCounter("rldecide_studyd_trials_finished_total",
		"Trials completed through the daemon's executor (any status).")
	metricTrialErrors = obs.Default.NewCounter("rldecide_studyd_trial_errors_total",
		"Completed trials whose objective reported a deterministic failure.")
	metricTrialSeconds = obs.Default.NewHistogram("rldecide_studyd_trial_seconds",
		"Wall-clock trial latency through the executor (queueing + evaluation).",
		obs.DurationBuckets)
)

// studyStatuses is the fixed label order for the by-status study gauge.
var studyStatuses = []Status{StatusPending, StatusRunning, StatusDone, StatusInterrupted, StatusFailed}

// stamp prepends the daemon="<Name>" label to every sample of a named
// daemon. Unnamed (single-daemon) deployments keep their series exactly
// as before; in a sharded fleet the label is what keeps two daemons'
// gauges from colliding when the router merges their expositions.
func (d *Daemon) stamp(collect func() []obs.Sample) func() []obs.Sample {
	if d.cfg.Name == "" {
		return collect
	}
	label := [2]string{"daemon", d.cfg.Name}
	return func() []obs.Sample {
		samples := collect()
		for i := range samples {
			samples[i].Labels = append([][2]string{label}, samples[i].Labels...)
		}
		return samples
	}
}

// newRegistry builds the daemon's own collector registry: gauges that
// read daemon state at scrape time. Served at GET /metrics alongside
// obs.Default.
func (d *Daemon) newRegistry() *obs.Registry {
	reg := obs.NewRegistry()
	reg.NewGaugeFunc("rldecide_studyd_studies",
		"Managed studies by lifecycle status.", d.stamp(func() []obs.Sample {
			counts := make(map[Status]int, len(studyStatuses))
			for _, m := range d.store.List() {
				counts[m.Status()]++
			}
			out := make([]obs.Sample, len(studyStatuses))
			for i, st := range studyStatuses {
				out[i] = obs.Sample{Labels: [][2]string{{"status", string(st)}}, Value: float64(counts[st])}
			}
			return out
		}))
	reg.NewGaugeFunc("rldecide_studyd_tenant_active_studies",
		"Active (pending or running) studies per configured tenant.", d.stamp(func() []obs.Sample {
			tenants := d.cfg.Auth.Tenants()
			if len(tenants) == 0 {
				return nil
			}
			active := d.store.ActiveByTenant()
			out := make([]obs.Sample, len(tenants))
			for i, t := range tenants {
				out[i] = obs.Sample{Labels: [][2]string{{"tenant", t.Name}}, Value: float64(active[t.Name])}
			}
			return out
		}))
	reg.NewGaugeFunc("rldecide_studyd_exec_slots",
		"Executor trial capacity (local slots, or summed fleet slots).", d.stamp(func() []obs.Sample {
			return []obs.Sample{{Value: float64(d.exec.Stats().Cap)}}
		}))
	reg.NewGaugeFunc("rldecide_studyd_exec_in_use",
		"Trials executing right now.", d.stamp(func() []obs.Sample {
			return []obs.Sample{{Value: float64(d.exec.Stats().InUse)}}
		}))
	reg.NewGaugeFunc("rldecide_studyd_queue_depth",
		"Proposed trials waiting for an executor lease.", d.stamp(func() []obs.Sample {
			queued := d.inflight.Load() - int64(d.exec.Stats().InUse)
			if queued < 0 {
				queued = 0
			}
			return []obs.Sample{{Value: float64(queued)}}
		}))
	reg.NewCounterFunc("rldecide_bus_dropped_total",
		"Event-bus events dropped per subscriber (tracer, SSE streams) because its buffer was full.",
		d.stamp(func() []obs.Sample { return d.bus.DropSamples() }))
	d.fleet.RegisterMetrics(reg, d.cfg.Name)
	return reg
}
