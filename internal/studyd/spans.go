package studyd

import (
	"net/http"

	"rldecide/internal/obs"
	"rldecide/internal/obs/span"
)

// Span plumbing for the daemon (Config.Spans). Every span the daemon —
// or a worker on the daemon's behalf — records for a study lands in two
// places: the study's bounded in-memory collector (served at
// GET /studies/{id}/spans) and the event bus as a KindSpan event (so
// -trace streams it to the rotating trace file, where the traces
// analysis picks it up). All IDs are derived deterministically from the
// study/trial/attempt keys (see internal/obs/span), so the router, the
// daemon, and the workers agree on one tree without coordination.

// spanCollector returns (creating on first use) the study's span buffer.
func (d *Daemon) spanCollector(study string) *span.Collector {
	d.spanMu.Lock()
	defer d.spanMu.Unlock()
	col, ok := d.spanCols[study]
	if !ok {
		col = span.NewCollector(0)
		d.spanCols[study] = col
	}
	return col
}

// spansOf returns the study's collected spans without creating a buffer
// for studies that never recorded any (spans off, or pre-span journals).
func (d *Daemon) spansOf(study string) []span.Span {
	d.spanMu.Lock()
	col := d.spanCols[study]
	d.spanMu.Unlock()
	return col.Spans()
}

// spanSink builds the study's Sink: collector plus bus.
func (d *Daemon) spanSink(study string) span.Sink {
	col := d.spanCollector(study)
	return func(sp span.Span) {
		col.Record(sp)
		d.bus.Publish(obs.Event{
			Kind:    obs.KindSpan,
			Study:   sp.Study,
			Trial:   sp.Trial,
			Attempt: sp.Attempt,
			Worker:  sp.Worker,
			Daemon:  sp.Daemon,
			Status:  sp.Status,
			Err:     sp.Err,
			Name:    sp.Name,
			Trace:   sp.Trace,
			Span:    sp.ID,
			Parent:  sp.Parent,
			DurMs:   sp.DurMs,
		})
	}
}

// studyScope is the root tracing scope for a study: spans started on it
// (the study root span) sit at the top of the tree.
func (d *Daemon) studyScope(study string) *span.Scope {
	return &span.Scope{
		Trace:  span.DeriveTrace(study),
		Study:  study,
		Daemon: d.cfg.Name,
		Clock:  d.spanClock,
		Sink:   d.spanSink(study),
	}
}

// journalTimerFor builds the ManagedStudy.journalTimer hook: each
// journal append runs under a "journal" span parented to its trial span.
// The trial span ID is re-derived from the keys — never read back from a
// live span — so this path stays clean under the determinism-taint rule.
func (d *Daemon) journalTimerFor(study string) func(trial int, do func()) {
	trace := span.DeriveTrace(study)
	rootID := span.DeriveID(trace, "", span.NameStudy, 0, 0)
	sink := d.spanSink(study)
	return func(trial int, do func()) {
		scope := &span.Scope{
			Trace:  trace,
			Parent: span.DeriveID(trace, rootID, span.NameTrial, trial, 0),
			Study:  study,
			Trial:  trial,
			Daemon: d.cfg.Name,
			Clock:  d.spanClock,
			Sink:   sink,
		}
		jsp := scope.Start(span.NameJournal, 0)
		do()
		jsp.Finish("ok", "")
	}
}

// SpanTree is the GET /studies/{id}/spans payload: the study's collected
// spans assembled into parent-linked trees. Count is the flat span count
// (the tree elides nothing); Dropped reports spans the bounded buffer
// discarded.
type SpanTree struct {
	Study   string       `json:"study"`
	Trace   string       `json:"trace,omitempty"`
	Count   int          `json:"count"`
	Dropped int          `json:"dropped,omitempty"`
	Spans   []*span.Node `json:"spans"`
}

// serveSpans answers GET /studies/{id}/spans. A study with no recorded
// spans (spans off, or finished before -spans was enabled) answers an
// empty tree, not an error — the endpoint shape is stable either way.
func (d *Daemon) serveSpans(w http.ResponseWriter, r *http.Request, m *ManagedStudy) {
	spans := d.spansOf(m.ID)
	tree := SpanTree{Study: m.ID, Count: len(spans), Spans: span.Tree(spans)}
	if tree.Spans == nil {
		tree.Spans = []*span.Node{}
	}
	if len(spans) > 0 {
		tree.Trace = spans[0].Trace
	} else if d.cfg.Spans {
		tree.Trace = span.DeriveTrace(m.ID)
	}
	d.spanMu.Lock()
	col := d.spanCols[m.ID]
	d.spanMu.Unlock()
	tree.Dropped = col.Dropped()
	writeJSON(w, http.StatusOK, tree)
}
