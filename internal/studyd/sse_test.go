package studyd

import (
	"bufio"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"rldecide/internal/core"
	"rldecide/internal/obs"
	"rldecide/internal/param"
)

// sseFrame is one parsed Server-Sent Events frame.
type sseFrame struct {
	Event string
	Data  string
}

// readSSE parses frames off an event stream until the server closes it or
// limit frames arrive (limit <= 0 means read to EOF).
func readSSE(t *testing.T, r *bufio.Reader, limit int) []sseFrame {
	t.Helper()
	var frames []sseFrame
	var cur sseFrame
	for limit <= 0 || len(frames) < limit {
		line, err := r.ReadString('\n')
		if err != nil {
			return frames
		}
		line = strings.TrimRight(line, "\n")
		switch {
		case strings.HasPrefix(line, "event: "):
			cur.Event = strings.TrimPrefix(line, "event: ")
		case strings.HasPrefix(line, "data: "):
			cur.Data = strings.TrimPrefix(line, "data: ")
		case line == "":
			if cur.Event != "" || cur.Data != "" {
				frames = append(frames, cur)
				cur = sseFrame{}
			}
		}
	}
	return frames
}

// TestEventsSSEStream drives the push endpoint end to end: subscribe while
// the study is gated, release it, and require the stream to deliver the
// opening summary, per-trial start/done events attributed to this study,
// the study_done event, and a final terminal summary before the server
// closes the stream.
func TestEventsSSEStream(t *testing.T) {
	release := make(chan struct{})
	RegisterObjective("sse-gate", func(spec Spec, metrics []core.Metric) (core.Objective, error) {
		return func(a param.Assignment, seed uint64, rec *core.Recorder) error {
			select {
			case <-release:
			case <-rec.Context().Done():
				return rec.Context().Err()
			}
			x, y := a.Value("x").Float(), a.Value("y").Float()
			rec.Report(metrics[0].Name, x*x+y*y)
			rec.Report(metrics[1].Name, x+y)
			return nil
		}, nil
	})

	d, err := New(Config{Dir: t.TempDir(), Workers: 2, Logf: testLogf(t)})
	if err != nil {
		t.Fatal(err)
	}
	d.Start()
	ts := httptest.NewServer(d.Handler())
	defer ts.Close()
	defer d.Shutdown(context.Background())

	sp := baseSpec("sse-gate")
	sp.Budget = 3
	m, err := d.Submit(sp)
	if err != nil {
		t.Fatal(err)
	}

	resp, err := http.Get(ts.URL + "/studies/" + m.ID + "/events")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("events: %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("content type %q", ct)
	}

	br := bufio.NewReader(resp.Body)
	first := readSSE(t, br, 1)
	if len(first) != 1 || first[0].Event != "summary" {
		t.Fatalf("stream must open with a summary frame, got %+v", first)
	}

	// Unblock the trials; the stream should now carry the whole run and
	// then end on its own.
	close(release)
	frames := readSSE(t, br, 0)
	if len(frames) < 3 {
		t.Fatalf("too few frames after release: %+v", frames)
	}

	counts := map[string]int{}
	for _, f := range frames {
		counts[f.Event]++
		if f.Event == obs.KindTrialStart || f.Event == obs.KindTrialDone || f.Event == obs.KindStudyDone {
			var ev obs.Event
			if err := json.Unmarshal([]byte(f.Data), &ev); err != nil {
				t.Fatalf("frame %q is not an event: %v", f.Data, err)
			}
			if ev.Study != m.ID {
				t.Fatalf("event leaked from another study: %+v", ev)
			}
		}
	}
	if counts[obs.KindTrialDone] != sp.Budget {
		t.Fatalf("trial_done frames: %d, want %d (counts %v)", counts[obs.KindTrialDone], sp.Budget, counts)
	}
	if counts[obs.KindStudyDone] != 1 {
		t.Fatalf("study_done frames: %d (counts %v)", counts[obs.KindStudyDone], counts)
	}

	// Last two frames: study_done, then the authoritative final summary.
	last := frames[len(frames)-1]
	if last.Event != "summary" {
		t.Fatalf("stream must end with a summary frame, got %q", last.Event)
	}
	var sum Summary
	if err := json.Unmarshal([]byte(last.Data), &sum); err != nil {
		t.Fatal(err)
	}
	if sum.Status != StatusDone || sum.Finished != sp.Budget {
		t.Fatalf("final summary: %+v", sum)
	}
	if frames[len(frames)-2].Event != obs.KindStudyDone {
		t.Fatalf("penultimate frame %q, want %s", frames[len(frames)-2].Event, obs.KindStudyDone)
	}

	// A stream opened on a finished study closes after one terminal
	// summary rather than holding an idle connection.
	resp2, err := http.Get(ts.URL + "/studies/" + m.ID + "/events")
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	again := readSSE(t, bufio.NewReader(resp2.Body), 0)
	if len(again) != 1 || again[0].Event != "summary" {
		t.Fatalf("terminal-study stream: %+v", again)
	}
	var termSum Summary
	if err := json.Unmarshal([]byte(again[0].Data), &termSum); err != nil {
		t.Fatal(err)
	}
	if termSum.Status != StatusDone {
		t.Fatalf("terminal summary status %s", termSum.Status)
	}
}

// TestEventsSSEDrainOnShutdown pins the graceful-drain contract: a client
// streaming a study that gets interrupted by daemon shutdown sees its
// stream END (bus closed after the runners drained) instead of hanging.
func TestEventsSSEDrainOnShutdown(t *testing.T) {
	RegisterObjective("sse-block", func(spec Spec, metrics []core.Metric) (core.Objective, error) {
		return func(a param.Assignment, seed uint64, rec *core.Recorder) error {
			<-rec.Context().Done() // blocks until shutdown cancels the run
			return rec.Context().Err()
		}, nil
	})

	d, err := New(Config{Dir: t.TempDir(), Workers: 1, Logf: testLogf(t)})
	if err != nil {
		t.Fatal(err)
	}
	d.Start()
	ts := httptest.NewServer(d.Handler())
	defer ts.Close()

	sp := baseSpec("sse-block")
	sp.Budget = 2
	m, err := d.Submit(sp)
	if err != nil {
		t.Fatal(err)
	}
	waitStatus(t, m, StatusRunning)

	resp, err := http.Get(ts.URL + "/studies/" + m.ID + "/events")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	br := bufio.NewReader(resp.Body)
	if first := readSSE(t, br, 1); len(first) != 1 || first[0].Event != "summary" {
		t.Fatalf("opening frame: %+v", first)
	}

	done := make(chan error, 1)
	go func() { done <- d.Shutdown(context.Background()) }()

	// The stream must terminate — readSSE returns on EOF — not hang past
	// the test deadline.
	readSSE(t, br, 0)
	if err := <-done; err != nil {
		t.Fatalf("shutdown: %v", err)
	}

	// After shutdown the bus refuses new subscribers.
	d2, err := http.Get(ts.URL + "/studies/" + m.ID + "/events")
	if err != nil {
		t.Fatal(err)
	}
	defer d2.Body.Close()
	if d2.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("post-shutdown subscribe: %d", d2.StatusCode)
	}
}
