package studyd

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"

	"rldecide/internal/obs/span"
)

// TestSpansOnOffDeterminism is the causal-tracing acceptance cross-check:
// the same spec + seed run on a span-recording daemon and on a plain one
// must produce identical journals (modulo the informational worker/wall_ms
// fields) and the same Pareto front — span trees stay off the result path.
func TestSpansOnOffDeterminism(t *testing.T) {
	spec := baseSpec("sphere")
	spec.Parallelism = 3
	spec.Noise = 0.1

	run := func(spans bool) *ManagedStudy {
		d, err := New(Config{Dir: t.TempDir(), Workers: 4, Spans: spans, Logf: testLogf(t)})
		if err != nil {
			t.Fatal(err)
		}
		d.Start()
		t.Cleanup(func() { _ = d.Shutdown(context.Background()) })
		m, err := d.Submit(spec)
		if err != nil {
			t.Fatal(err)
		}
		waitStatus(t, m, StatusDone)
		return m
	}

	spanned := run(true)
	plain := run(false)

	if got, want := canonicalRecords(t, spanned), canonicalRecords(t, plain); !bytes.Equal(got, want) {
		t.Fatalf("journals diverge with spans enabled:\n--- spanned ---\n%s--- plain ---\n%s", got, want)
	}
	sf, err := spanned.Front()
	if err != nil {
		t.Fatal(err)
	}
	pf, err := plain.Front()
	if err != nil {
		t.Fatal(err)
	}
	sj, _ := json.Marshal(sf)
	pj, _ := json.Marshal(pf)
	if !bytes.Equal(sj, pj) {
		t.Fatalf("Pareto fronts diverge:\n%s\n%s", sj, pj)
	}
}

// fetchSpanTree GETs /studies/{id}/spans and decodes the tree.
func fetchSpanTree(t *testing.T, url, id string) SpanTree {
	t.Helper()
	resp, err := http.Get(url + "/studies/" + id + "/spans")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /spans: %d", resp.StatusCode)
	}
	var tree SpanTree
	if err := json.NewDecoder(resp.Body).Decode(&tree); err != nil {
		t.Fatal(err)
	}
	return tree
}

// TestFleetSpanTree runs a spanned fleet campaign and checks the served
// span tree stitches every hop — daemon scheduling, dispatch RTT, the
// worker-side run + objective execution, and journal appends — under one
// deterministically derived trace ID with worker attribution intact.
func TestFleetSpanTree(t *testing.T) {
	d, err := New(Config{Dir: t.TempDir(), Exec: ExecFleet, Spans: true, Logf: testLogf(t)})
	if err != nil {
		t.Fatal(err)
	}
	d.Start()
	t.Cleanup(func() { _ = d.Shutdown(context.Background()) })
	ts := httptest.NewServer(d.Handler())
	t.Cleanup(ts.Close)
	for _, name := range []string{"w1", "w2"} {
		_, info := startFleetWorker(t, name, 2, nil, "")
		resp := postJSON(t, ts.URL+"/workers/register", info)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("register %s: %d", name, resp.StatusCode)
		}
	}

	spec := baseSpec("sphere")
	spec.Parallelism = 2
	m, err := d.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	waitStatus(t, m, StatusDone)

	tree := fetchSpanTree(t, ts.URL, m.ID)
	if tree.Study != m.ID {
		t.Fatalf("tree study = %q, want %q", tree.Study, m.ID)
	}
	if want := span.DeriveTrace(m.ID); tree.Trace != want {
		t.Fatalf("trace ID %q not derived from study ID (want %q)", tree.Trace, want)
	}
	if tree.Dropped != 0 {
		t.Fatalf("collector dropped %d spans", tree.Dropped)
	}
	spans := span.Flatten(tree.Spans)
	if tree.Count != len(spans) {
		t.Fatalf("count %d does not match %d flattened spans", tree.Count, len(spans))
	}

	counts := map[string]int{}
	runWorkers := map[string]int{}
	dispatchIDs := map[string]bool{}
	for _, sp := range spans {
		if sp.Name == span.NameDispatch {
			dispatchIDs[sp.ID] = true
		}
	}
	for _, sp := range spans {
		if sp.Trace != tree.Trace {
			t.Fatalf("span %q carries foreign trace %q", sp.ID, sp.Trace)
		}
		counts[sp.Name]++
		switch sp.Name {
		case span.NameRun:
			runWorkers[sp.Worker]++
			// Worker-side spans must parent into one of the daemon's
			// dispatch spans — the propagated header.
			if !dispatchIDs[sp.Parent] {
				t.Fatalf("run span parent %q is not a dispatch span", sp.Parent)
			}
		case span.NameObjective:
			if sp.Worker == "" {
				t.Fatalf("fleet objective span lost worker attribution: %+v", sp)
			}
		}
	}
	if counts[span.NameStudy] != 1 {
		t.Fatalf("want exactly one study root, got %v", counts)
	}
	for _, name := range []string{span.NameTrial, span.NameDispatch, span.NameRun, span.NameObjective, span.NameJournal} {
		if counts[name] < spec.Budget {
			t.Fatalf("span kind %q covers %d of %d trials: %v", name, counts[name], spec.Budget, counts)
		}
	}
	if runWorkers["w1"]+runWorkers["w2"] < spec.Budget || runWorkers[""] > 0 {
		t.Fatalf("run spans not attributed to fleet workers: %v", runWorkers)
	}

	// The tree itself must nest: study root → trial → dispatch → run →
	// objective, proving the parent links resolve rather than orphaning.
	if len(tree.Spans) != 1 {
		t.Fatalf("expected a single root, got %d", len(tree.Spans))
	}
	var deepest func(n *span.Node) int
	deepest = func(n *span.Node) int {
		d := 0
		for _, c := range n.Children {
			if cd := deepest(c) + 1; cd > d {
				d = cd
			}
		}
		return d
	}
	if depth := deepest(tree.Spans[0]); depth < 4 {
		// study → trial → dispatch → run → objective.
		t.Fatalf("tree too shallow (%d levels): span hops did not link", depth)
	}
}

// TestSpansDisabledServesEmptyTree checks the endpoint stays up — and
// empty — on a daemon without -spans, rather than 404ing.
func TestSpansDisabledServesEmptyTree(t *testing.T) {
	d, err := New(Config{Dir: t.TempDir(), Workers: 2, Logf: testLogf(t)})
	if err != nil {
		t.Fatal(err)
	}
	d.Start()
	t.Cleanup(func() { _ = d.Shutdown(context.Background()) })
	ts := httptest.NewServer(d.Handler())
	t.Cleanup(ts.Close)
	m, err := d.Submit(baseSpec("sphere"))
	if err != nil {
		t.Fatal(err)
	}
	waitStatus(t, m, StatusDone)

	tree := fetchSpanTree(t, ts.URL, m.ID)
	if tree.Count != 0 || len(tree.Spans) != 0 {
		t.Fatalf("spanless daemon served spans: %+v", tree)
	}
	if tree.Spans == nil {
		t.Fatal("spans must serialize as [], not null")
	}
}
