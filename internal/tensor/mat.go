// Package tensor implements the dense linear-algebra kernels used by the
// neural-network stack: row-major matrices, matrix products (optionally
// parallelized across goroutines for large shapes), and elementwise vector
// kernels. It is deliberately small — just what the MLP policies and value
// functions need — but written to be cache-friendly and allocation-free in
// steady state.
package tensor

import (
	"fmt"
	"math"
	"math/rand/v2"
	"runtime"
	"sync"
)

// Mat is a dense row-major matrix of float64.
type Mat struct {
	R, C int
	Data []float64
}

// New returns an r×c zero matrix.
func New(r, c int) *Mat {
	if r < 0 || c < 0 {
		panic(fmt.Sprintf("tensor: New(%d,%d) negative dims", r, c))
	}
	return &Mat{R: r, C: c, Data: make([]float64, r*c)}
}

// FromSlice wraps data (length r*c, row-major) in a Mat without copying.
func FromSlice(r, c int, data []float64) *Mat {
	if len(data) != r*c {
		panic(fmt.Sprintf("tensor: FromSlice %dx%d with %d elements", r, c, len(data)))
	}
	return &Mat{R: r, C: c, Data: data}
}

// At returns element (i,j).
func (m *Mat) At(i, j int) float64 { return m.Data[i*m.C+j] }

// Set assigns element (i,j).
func (m *Mat) Set(i, j int, v float64) { m.Data[i*m.C+j] = v }

// Row returns a view of row i (shared storage).
func (m *Mat) Row(i int) []float64 { return m.Data[i*m.C : (i+1)*m.C] }

// Clone returns a deep copy of m.
func (m *Mat) Clone() *Mat {
	out := New(m.R, m.C)
	copy(out.Data, m.Data)
	return out
}

// CopyFrom copies src into m; shapes must match.
func (m *Mat) CopyFrom(src *Mat) {
	if m.R != src.R || m.C != src.C {
		panic("tensor: CopyFrom shape mismatch")
	}
	copy(m.Data, src.Data)
}

// Zero sets all elements to 0.
func (m *Mat) Zero() {
	for i := range m.Data {
		m.Data[i] = 0
	}
}

// Fill sets all elements to v.
func (m *Mat) Fill(v float64) {
	for i := range m.Data {
		m.Data[i] = v
	}
}

// Randomize fills m with uniform values in [-scale, scale].
func (m *Mat) Randomize(rng *rand.Rand, scale float64) {
	for i := range m.Data {
		m.Data[i] = (rng.Float64()*2 - 1) * scale
	}
}

// Orthogonalish fills m with a scaled He/Xavier-style init: normal values
// scaled by gain/sqrt(fan-in). It is what the policy networks use.
func (m *Mat) Orthogonalish(rng *rand.Rand, gain float64) {
	std := gain / math.Sqrt(float64(m.C))
	for i := range m.Data {
		m.Data[i] = rng.NormFloat64() * std
	}
}

// parallelThreshold is the number of multiply-adds above which MatMul fans
// out across goroutines. Small policy networks stay single-threaded, large
// batched products use all cores.
const parallelThreshold = 1 << 16

// MulInto computes dst = a @ b. dst must be a.R×b.C and must not alias a or b.
func MulInto(dst, a, b *Mat) {
	if a.C != b.R {
		panic(fmt.Sprintf("tensor: MulInto inner dims %d vs %d", a.C, b.R))
	}
	if dst.R != a.R || dst.C != b.C {
		panic("tensor: MulInto dst shape mismatch")
	}
	if dst == a || dst == b {
		panic("tensor: MulInto dst aliases input")
	}
	work := a.R * a.C * b.C
	if work >= parallelThreshold {
		mulParallel(dst, a, b)
		return
	}
	mulRows(dst, a, b, 0, a.R)
}

// mulRows computes rows [lo,hi) of dst = a @ b using an ikj loop order that
// streams b rows through cache.
func mulRows(dst, a, b *Mat, lo, hi int) {
	n, p := a.C, b.C
	for i := lo; i < hi; i++ {
		drow := dst.Data[i*p : (i+1)*p]
		for x := range drow {
			drow[x] = 0
		}
		arow := a.Data[i*n : (i+1)*n]
		for k := 0; k < n; k++ {
			aik := arow[k]
			if aik == 0 {
				continue
			}
			brow := b.Data[k*p : (k+1)*p]
			for j, bv := range brow {
				drow[j] += aik * bv
			}
		}
	}
}

func mulParallel(dst, a, b *Mat) {
	workers := runtime.GOMAXPROCS(0)
	if workers > a.R {
		workers = a.R
	}
	if workers < 2 {
		mulRows(dst, a, b, 0, a.R)
		return
	}
	var wg sync.WaitGroup
	chunk := (a.R + workers - 1) / workers
	for w := 0; w < workers; w++ {
		lo := w * chunk
		hi := lo + chunk
		if hi > a.R {
			hi = a.R
		}
		if lo >= hi {
			break
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			mulRows(dst, a, b, lo, hi)
		}(lo, hi)
	}
	wg.Wait()
}

// Mul returns a new matrix a @ b.
func Mul(a, b *Mat) *Mat {
	dst := New(a.R, b.C)
	MulInto(dst, a, b)
	return dst
}

// MulTransAInto computes dst = aᵀ @ b (a is n×r, dst is r×c, b is n×c).
// Used for weight gradients: dW = xᵀ @ dy.
func MulTransAInto(dst, a, b *Mat) {
	if a.R != b.R {
		panic(fmt.Sprintf("tensor: MulTransAInto rows %d vs %d", a.R, b.R))
	}
	if dst.R != a.C || dst.C != b.C {
		panic("tensor: MulTransAInto dst shape mismatch")
	}
	dst.Zero()
	for k := 0; k < a.R; k++ {
		arow := a.Data[k*a.C : (k+1)*a.C]
		brow := b.Data[k*b.C : (k+1)*b.C]
		for i, av := range arow {
			if av == 0 {
				continue
			}
			drow := dst.Data[i*dst.C : (i+1)*dst.C]
			for j, bv := range brow {
				drow[j] += av * bv
			}
		}
	}
}

// MulTransBInto computes dst = a @ bᵀ (a is n×c, b is m×c, dst is n×m).
// Used for input gradients: dx = dy @ Wᵀ.
func MulTransBInto(dst, a, b *Mat) {
	if a.C != b.C {
		panic(fmt.Sprintf("tensor: MulTransBInto cols %d vs %d", a.C, b.C))
	}
	if dst.R != a.R || dst.C != b.R {
		panic("tensor: MulTransBInto dst shape mismatch")
	}
	for i := 0; i < a.R; i++ {
		arow := a.Data[i*a.C : (i+1)*a.C]
		drow := dst.Data[i*dst.C : (i+1)*dst.C]
		for j := 0; j < b.R; j++ {
			brow := b.Data[j*b.C : (j+1)*b.C]
			s := 0.0
			for k, av := range arow {
				s += av * brow[k]
			}
			drow[j] = s
		}
	}
}

// AddBias adds the bias row vector to every row of m in place.
func (m *Mat) AddBias(bias []float64) {
	if len(bias) != m.C {
		panic("tensor: AddBias length mismatch")
	}
	for i := 0; i < m.R; i++ {
		row := m.Row(i)
		for j := range row {
			row[j] += bias[j]
		}
	}
}

// Scale multiplies every element by s in place.
func (m *Mat) Scale(s float64) {
	for i := range m.Data {
		m.Data[i] *= s
	}
}

// Add accumulates other into m in place; shapes must match.
func (m *Mat) Add(other *Mat) {
	if m.R != other.R || m.C != other.C {
		panic("tensor: Add shape mismatch")
	}
	for i := range m.Data {
		m.Data[i] += other.Data[i]
	}
}

// Axpy computes m += alpha * other in place.
func (m *Mat) Axpy(alpha float64, other *Mat) {
	if m.R != other.R || m.C != other.C {
		panic("tensor: Axpy shape mismatch")
	}
	for i := range m.Data {
		m.Data[i] += alpha * other.Data[i]
	}
}

// Dot returns the dot product of two equal-length vectors.
func Dot(a, b []float64) float64 {
	if len(a) != len(b) {
		panic("tensor: Dot length mismatch")
	}
	s := 0.0
	for i := range a {
		s += a[i] * b[i]
	}
	return s
}

// Norm2 returns the Euclidean norm of v.
func Norm2(v []float64) float64 {
	s := 0.0
	for _, x := range v {
		s += x * x
	}
	return math.Sqrt(s)
}

// Frobenius returns the Frobenius norm of m.
func (m *Mat) Frobenius() float64 { return Norm2(m.Data) }

// String renders a compact shape descriptor, not the contents.
func (m *Mat) String() string { return fmt.Sprintf("Mat(%dx%d)", m.R, m.C) }
