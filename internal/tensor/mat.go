// Package tensor implements the dense linear-algebra kernels used by the
// neural-network stack: row-major matrices, matrix products (optionally
// parallelized across goroutines for large shapes), and elementwise vector
// kernels. It is deliberately small — just what the MLP policies and value
// functions need — but written to be cache-friendly and allocation-free in
// steady state.
package tensor

import (
	"fmt"
	"math"
	"math/rand/v2"
)

// Mat is a dense row-major matrix of float64.
type Mat struct {
	R, C int
	Data []float64
}

// New returns an r×c zero matrix.
func New(r, c int) *Mat {
	if r < 0 || c < 0 {
		panic(fmt.Sprintf("tensor: New(%d,%d) negative dims", r, c))
	}
	return &Mat{R: r, C: c, Data: make([]float64, r*c)}
}

// FromSlice wraps data (length r*c, row-major) in a Mat without copying.
func FromSlice(r, c int, data []float64) *Mat {
	if len(data) != r*c {
		panic(fmt.Sprintf("tensor: FromSlice %dx%d with %d elements", r, c, len(data)))
	}
	return &Mat{R: r, C: c, Data: data}
}

// At returns element (i,j).
func (m *Mat) At(i, j int) float64 { return m.Data[i*m.C+j] }

// Set assigns element (i,j).
func (m *Mat) Set(i, j int, v float64) { m.Data[i*m.C+j] = v }

// Row returns a view of row i (shared storage).
func (m *Mat) Row(i int) []float64 { return m.Data[i*m.C : (i+1)*m.C] }

// Clone returns a deep copy of m.
func (m *Mat) Clone() *Mat {
	out := New(m.R, m.C)
	copy(out.Data, m.Data)
	return out
}

// CopyFrom copies src into m; shapes must match.
func (m *Mat) CopyFrom(src *Mat) {
	if m.R != src.R || m.C != src.C {
		panic("tensor: CopyFrom shape mismatch")
	}
	copy(m.Data, src.Data)
}

// Zero sets all elements to 0.
func (m *Mat) Zero() {
	for i := range m.Data {
		m.Data[i] = 0
	}
}

// Fill sets all elements to v.
func (m *Mat) Fill(v float64) {
	for i := range m.Data {
		m.Data[i] = v
	}
}

// Randomize fills m with uniform values in [-scale, scale].
func (m *Mat) Randomize(rng *rand.Rand, scale float64) {
	for i := range m.Data {
		m.Data[i] = (rng.Float64()*2 - 1) * scale
	}
}

// Orthogonalish fills m with a scaled He/Xavier-style init: normal values
// scaled by gain/sqrt(fan-in). It is what the policy networks use.
func (m *Mat) Orthogonalish(rng *rand.Rand, gain float64) {
	std := gain / math.Sqrt(float64(m.C))
	for i := range m.Data {
		m.Data[i] = rng.NormFloat64() * std
	}
}

// parallelThreshold is the number of multiply-adds above which the matrix
// products fan out across the worker pool (pool.go). Small policy networks
// stay single-threaded, large batched products use all cores.
const parallelThreshold = 1 << 16

// blockThreshold is the size of the streamed operand (elements) above which
// mulRows switches to the cache-blocked kernel: once one pass over b no
// longer fits in L2, revisiting it in k×j tiles beats streaming it whole
// per output row. Both kernels accumulate each output element in ascending
// k order, so the switch never changes the floating-point result.
const blockThreshold = 1 << 16

// MulInto computes dst = a @ b. dst must be a.R×b.C and must not alias a or b.
func MulInto(dst, a, b *Mat) {
	if a.C != b.R {
		panic(fmt.Sprintf("tensor: MulInto inner dims %d vs %d", a.C, b.R))
	}
	if dst.R != a.R || dst.C != b.C {
		panic("tensor: MulInto dst shape mismatch")
	}
	if dst == a || dst == b {
		panic("tensor: MulInto dst aliases input")
	}
	// The Parallelism() > 1 guard keeps the single-threaded hot path
	// allocation-free: the fan-out closure escapes to the heap, which only
	// pays for itself when there are workers to feed.
	if a.R*a.C*b.C >= parallelThreshold && Parallelism() > 1 {
		parallelRows(a.R, func(lo, hi int) { mulRows(dst, a, b, lo, hi) })
		return
	}
	mulRows(dst, a, b, 0, a.R)
}

// mulRows computes rows [lo,hi) of dst = a @ b, dispatching to the plain or
// cache-blocked kernel by the size of b.
func mulRows(dst, a, b *Mat, lo, hi int) {
	if a.C*b.C >= blockThreshold {
		mulRowsBlocked(dst, a, b, lo, hi)
		return
	}
	mulRowsPlain(dst, a, b, lo, hi)
}

// mulRowsPlain computes rows [lo,hi) of dst = a @ b using an ikj loop order
// that streams b rows through cache. Adjacent k rows are applied in pairs —
// each output element still receives its updates one at a time in ascending
// k order (two sequential adds, never a re-grouped sum), so the result is
// bit-identical to the unpaired loop while halving the dst row traffic. The
// zero-skip of the scalar loop is preserved by falling back to axpyRow when
// either coefficient of a pair is zero.
func mulRowsPlain(dst, a, b *Mat, lo, hi int) {
	n, p := a.C, b.C
	for i := lo; i < hi; i++ {
		drow := dst.Data[i*p : (i+1)*p]
		for x := range drow {
			drow[x] = 0
		}
		arow := a.Data[i*n : (i+1)*n]
		k := 0
		for ; k+1 < n; k += 2 {
			a0, a1 := arow[k], arow[k+1]
			if a0 == 0 || a1 == 0 {
				if a0 != 0 {
					axpyRow(drow, a0, b.Data[k*p:(k+1)*p])
				}
				if a1 != 0 {
					axpyRow(drow, a1, b.Data[(k+1)*p:(k+2)*p])
				}
				continue
			}
			b0 := b.Data[k*p : (k+1)*p][:len(drow)]
			b1 := b.Data[(k+1)*p : (k+2)*p][:len(drow)]
			for j := range drow {
				s := drow[j] + a0*b0[j]
				drow[j] = s + a1*b1[j]
			}
		}
		if k < n {
			if aik := arow[k]; aik != 0 {
				axpyRow(drow, aik, b.Data[k*p:(k+1)*p])
			}
		}
	}
}

// axpyRow computes drow += a * brow.
func axpyRow(drow []float64, a float64, brow []float64) {
	brow = brow[:len(drow)]
	for j := range drow {
		drow[j] += a * brow[j]
	}
}

// Tile sizes of the blocked kernel: mulKC rows of b (k direction) by mulJC
// columns (j direction) — a working set of mulKC*mulJC*8 bytes ≈ 256 KiB
// that stays L2-resident while every output row in the chunk revisits it.
const (
	mulKC = 128
	mulJC = 256
)

// mulRowsBlocked computes rows [lo,hi) of dst = a @ b with k×j tiling over
// b. For every output element the k loop still runs in ascending order
// (tiles are visited k-ascending, rows within a tile likewise), so the
// result is bit-identical to mulRowsPlain.
func mulRowsBlocked(dst, a, b *Mat, lo, hi int) {
	n, p := a.C, b.C
	for i := lo; i < hi; i++ {
		drow := dst.Data[i*p : (i+1)*p]
		for x := range drow {
			drow[x] = 0
		}
	}
	for k0 := 0; k0 < n; k0 += mulKC {
		k1 := k0 + mulKC
		if k1 > n {
			k1 = n
		}
		for j0 := 0; j0 < p; j0 += mulJC {
			j1 := j0 + mulJC
			if j1 > p {
				j1 = p
			}
			for i := lo; i < hi; i++ {
				arow := a.Data[i*n : (i+1)*n]
				drow := dst.Data[i*p+j0 : i*p+j1]
				for k := k0; k < k1; k++ {
					aik := arow[k]
					if aik == 0 {
						continue
					}
					brow := b.Data[k*p+j0 : k*p+j1]
					for j, bv := range brow {
						drow[j] += aik * bv
					}
				}
			}
		}
	}
}

// Ensure returns m resized to r×c, reusing its backing storage when the
// capacity allows; contents are unspecified. Allocates only when m is nil
// or too small — the building block for steady-state allocation-free
// scratch buffers in the training loops.
func Ensure(m *Mat, r, c int) *Mat {
	if m != nil && cap(m.Data) >= r*c {
		m.R, m.C = r, c
		m.Data = m.Data[:r*c]
		return m
	}
	return New(r, c)
}

// TransposeInto writes mᵀ into dst (dst must be m.C×m.R and must not alias
// m). The j-outer loop streams dst sequentially; m is read with stride C,
// which for the weight matrices this packs (tens of KiB) stays cache
// resident.
func TransposeInto(dst, m *Mat) {
	if dst.R != m.C || dst.C != m.R {
		panic("tensor: TransposeInto dst shape mismatch")
	}
	r, c := m.R, m.C
	for j := 0; j < c; j++ {
		drow := dst.Data[j*r : (j+1)*r]
		for i := range drow {
			drow[i] = m.Data[i*c+j]
		}
	}
}

// packRowThreshold is the minimum number of output rows for which
// MulIntoPacked packs bᵀ: the O(n·p) transpose is amortized over the
// a.R×n×p multiply, so below this many rows the pack overhead outweighs
// the wide-kernel win and the plain kernel is used instead.
const packRowThreshold = 8

// packMinK is the minimum inner dimension worth packing: below it the
// transpose and per-group loop overhead outweigh the wide kernel (the
// first policy layer, whose fan-in is the observation size, stays on the
// plain kernel).
const packMinK = 16

// packMaxK caps the inner dimension of the packed kernel: the per-row
// nonzero-index scratch lives on the stack (packMaxK*4 bytes), so larger
// inner dims fall back to the plain kernel rather than allocate.
const packMaxK = 1024

// MulIntoPacked computes dst = a @ b like MulInto, but through a
// caller-provided transposed-B scratch buffer: b is packed as bᵀ into bt
// (grown via Ensure and returned for reuse), turning every output element
// into a contiguous dot product that the 8-column kernel evaluates with
// independent accumulator chains. Each element's chain applies the same
// ascending-k additions with the same zero-skips as mulRowsPlain, so the
// result is bit-identical to MulInto — the packing changes memory layout,
// never arithmetic. Small batches (a.R < packRowThreshold) and shapes past
// the cache-blocking threshold fall back to MulInto untouched.
func MulIntoPacked(dst, a, b, bt *Mat) *Mat {
	if a.R < packRowThreshold || a.C < packMinK || a.C > packMaxK || a.C*b.C >= blockThreshold {
		MulInto(dst, a, b)
		return bt
	}
	if a.C != b.R {
		panic(fmt.Sprintf("tensor: MulIntoPacked inner dims %d vs %d", a.C, b.R))
	}
	if dst.R != a.R || dst.C != b.C {
		panic("tensor: MulIntoPacked dst shape mismatch")
	}
	if dst == a || dst == b {
		panic("tensor: MulIntoPacked dst aliases input")
	}
	bt = Ensure(bt, b.C, b.R)
	TransposeInto(bt, b)
	if a.R*a.C*b.C >= parallelThreshold && Parallelism() > 1 {
		parallelRows(a.R, func(lo, hi int) { mulRowsPacked(dst, a, bt, lo, hi) })
		return bt
	}
	mulRowsPacked(dst, a, bt, 0, a.R)
	return bt
}

// mulRowsPacked computes rows [lo,hi) of dst = a @ btᵀ where bt is the
// packed transpose of b (bt row j = b column j). Eight output columns are
// evaluated per pass: eight independent accumulator chains (one serial FP
// chain per output element) hide the add latency a single chain is bound
// by, and arow is read once per octet instead of once per column.
//
// The zero-skip of mulRowsPlain is part of the bit contract (s + 0·x is
// not always s, and NaN/Inf must propagate identically), but testing
// arow[k] inside the 8-wide loop mispredicts badly on ReLU-sparse inputs.
// Instead the nonzero k indices are collected once per row — amortized
// over all p/8 column groups — so the inner loop is branch-free yet
// applies exactly mulRowsPlain's add sequence: ascending k, zeros
// skipped, one strictly sequential chain per output element, with the
// nonzero list walked pairwise (two loads per stream per iteration, two
// sequential adds per chain).
func mulRowsPacked(dst, a, bt *Mat, lo, hi int) {
	n, p := a.C, bt.R
	var idxBuf [packMaxK]int32
	for i := lo; i < hi; i++ {
		arow := a.Data[i*n : (i+1)*n]
		drow := dst.Data[i*p : (i+1)*p]
		nz := idxBuf[:0]
		for k, av := range arow {
			if av != 0 {
				nz = append(nz, int32(k))
			}
		}
		j := 0
		for ; j+7 < p; j += 8 {
			b0 := bt.Data[j*n : (j+1)*n][:len(arow)]
			b1 := bt.Data[(j+1)*n : (j+2)*n][:len(arow)]
			b2 := bt.Data[(j+2)*n : (j+3)*n][:len(arow)]
			b3 := bt.Data[(j+3)*n : (j+4)*n][:len(arow)]
			b4 := bt.Data[(j+4)*n : (j+5)*n][:len(arow)]
			b5 := bt.Data[(j+5)*n : (j+6)*n][:len(arow)]
			b6 := bt.Data[(j+6)*n : (j+7)*n][:len(arow)]
			b7 := bt.Data[(j+7)*n : (j+8)*n][:len(arow)]
			var s0, s1, s2, s3, s4, s5, s6, s7 float64
			if len(nz) == n {
				// Dense row: sequential k, no index indirection (and no
				// bounds checks on the b streams). The skip set is empty,
				// so this is the same add sequence as the indexed loop.
				k := 0
				for ; k+1 < n; k += 2 {
					a0, a1 := arow[k], arow[k+1]
					s0 += a0 * b0[k]
					s0 += a1 * b0[k+1]
					s1 += a0 * b1[k]
					s1 += a1 * b1[k+1]
					s2 += a0 * b2[k]
					s2 += a1 * b2[k+1]
					s3 += a0 * b3[k]
					s3 += a1 * b3[k+1]
					s4 += a0 * b4[k]
					s4 += a1 * b4[k+1]
					s5 += a0 * b5[k]
					s5 += a1 * b5[k+1]
					s6 += a0 * b6[k]
					s6 += a1 * b6[k+1]
					s7 += a0 * b7[k]
					s7 += a1 * b7[k+1]
				}
				if k < n {
					av := arow[k]
					s0 += av * b0[k]
					s1 += av * b1[k]
					s2 += av * b2[k]
					s3 += av * b3[k]
					s4 += av * b4[k]
					s5 += av * b5[k]
					s6 += av * b6[k]
					s7 += av * b7[k]
				}
				drow[j] = s0
				drow[j+1] = s1
				drow[j+2] = s2
				drow[j+3] = s3
				drow[j+4] = s4
				drow[j+5] = s5
				drow[j+6] = s6
				drow[j+7] = s7
				continue
			}
			t := 0
			for ; t+1 < len(nz); t += 2 {
				k0, k1 := int(nz[t]), int(nz[t+1])
				a0, a1 := arow[k0], arow[k1]
				s0 += a0 * b0[k0]
				s0 += a1 * b0[k1]
				s1 += a0 * b1[k0]
				s1 += a1 * b1[k1]
				s2 += a0 * b2[k0]
				s2 += a1 * b2[k1]
				s3 += a0 * b3[k0]
				s3 += a1 * b3[k1]
				s4 += a0 * b4[k0]
				s4 += a1 * b4[k1]
				s5 += a0 * b5[k0]
				s5 += a1 * b5[k1]
				s6 += a0 * b6[k0]
				s6 += a1 * b6[k1]
				s7 += a0 * b7[k0]
				s7 += a1 * b7[k1]
			}
			if t < len(nz) {
				k := int(nz[t])
				av := arow[k]
				s0 += av * b0[k]
				s1 += av * b1[k]
				s2 += av * b2[k]
				s3 += av * b3[k]
				s4 += av * b4[k]
				s5 += av * b5[k]
				s6 += av * b6[k]
				s7 += av * b7[k]
			}
			drow[j] = s0
			drow[j+1] = s1
			drow[j+2] = s2
			drow[j+3] = s3
			drow[j+4] = s4
			drow[j+5] = s5
			drow[j+6] = s6
			drow[j+7] = s7
		}
		for ; j < p; j++ {
			brow := bt.Data[j*n : (j+1)*n][:len(arow)]
			s := 0.0
			for _, ki := range nz {
				k := int(ki)
				s += arow[k] * brow[k]
			}
			drow[j] = s
		}
	}
}

// Mul returns a new matrix a @ b.
func Mul(a, b *Mat) *Mat {
	dst := New(a.R, b.C)
	MulInto(dst, a, b)
	return dst
}

// MulTransAInto computes dst = aᵀ @ b (a is n×r, dst is r×c, b is n×c).
// Used for weight gradients: dW = xᵀ @ dy.
func MulTransAInto(dst, a, b *Mat) {
	if a.R != b.R {
		panic(fmt.Sprintf("tensor: MulTransAInto rows %d vs %d", a.R, b.R))
	}
	if dst.R != a.C || dst.C != b.C {
		panic("tensor: MulTransAInto dst shape mismatch")
	}
	if a.R*a.C*b.C >= parallelThreshold && Parallelism() > 1 {
		parallelRows(dst.R, func(lo, hi int) { mulTransARows(dst, a, b, lo, hi) })
		return
	}
	dst.Zero()
	// Adjacent k rows are applied in pairs per output row: element (i,j)
	// still gets its k then k+1 updates as two sequential adds in ascending
	// order, so this is bit-identical to the one-k-at-a-time loop (see
	// mulRowsPlain for the same pattern) while halving dst row traffic.
	n := a.R
	k := 0
	for ; k+1 < n; k += 2 {
		arow0 := a.Data[k*a.C : (k+1)*a.C]
		arow1 := a.Data[(k+1)*a.C : (k+2)*a.C]
		brow0 := b.Data[k*b.C : (k+1)*b.C]
		brow1 := b.Data[(k+1)*b.C : (k+2)*b.C]
		for i, av0 := range arow0 {
			av1 := arow1[i]
			if av0 == 0 && av1 == 0 {
				continue
			}
			drow := dst.Data[i*dst.C : (i+1)*dst.C]
			if av0 == 0 || av1 == 0 {
				if av0 != 0 {
					axpyRow(drow, av0, brow0)
				}
				if av1 != 0 {
					axpyRow(drow, av1, brow1)
				}
				continue
			}
			b0 := brow0[:len(drow)]
			b1 := brow1[:len(drow)]
			for j := range drow {
				s := drow[j] + av0*b0[j]
				drow[j] = s + av1*b1[j]
			}
		}
	}
	if k < n {
		arow := a.Data[k*a.C : (k+1)*a.C]
		brow := b.Data[k*b.C : (k+1)*b.C]
		for i, av := range arow {
			if av == 0 {
				continue
			}
			axpyRow(dst.Data[i*dst.C:(i+1)*dst.C], av, brow)
		}
	}
}

// mulTransARows computes rows [lo,hi) of dst = aᵀ @ b with the i loop
// outermost so that disjoint row ranges can go to different workers. For a
// fixed output element (i,j) the k loop still runs ascending with the same
// zero-skip as the serial (k-outer) kernel above, so the accumulation order
// — and therefore the floating-point result — is bit-identical.
func mulTransARows(dst, a, b *Mat, lo, hi int) {
	n, c := a.R, b.C
	for i := lo; i < hi; i++ {
		drow := dst.Data[i*c : (i+1)*c]
		for x := range drow {
			drow[x] = 0
		}
		for k := 0; k < n; k++ {
			av := a.Data[k*a.C+i]
			if av == 0 {
				continue
			}
			brow := b.Data[k*c : (k+1)*c]
			for j, bv := range brow {
				drow[j] += av * bv
			}
		}
	}
}

// MulTransBInto computes dst = a @ bᵀ (a is n×c, b is m×c, dst is n×m).
// Used for input gradients: dx = dy @ Wᵀ.
func MulTransBInto(dst, a, b *Mat) {
	if a.C != b.C {
		panic(fmt.Sprintf("tensor: MulTransBInto cols %d vs %d", a.C, b.C))
	}
	if dst.R != a.R || dst.C != b.R {
		panic("tensor: MulTransBInto dst shape mismatch")
	}
	if a.R*a.C*b.R >= parallelThreshold && Parallelism() > 1 {
		parallelRows(a.R, func(lo, hi int) { mulTransBRows(dst, a, b, lo, hi) })
		return
	}
	mulTransBRows(dst, a, b, 0, a.R)
}

// mulTransBRows computes rows [lo,hi) of dst = a @ bᵀ. Each output element
// is one dot product evaluated in ascending-k order regardless of how rows
// are partitioned, so parallel and serial results are bit-identical. Eight
// output columns are computed per pass: the eight accumulator chains are
// independent (one per output element, each a single serial ascending-k
// chain as before), which hides the add latency a lone chain is bound by
// and reads arow once per octet instead of once per column. Within a
// chain, k advances pairwise — two loads per b stream per iteration,
// applied as two strictly sequential adds — which keeps the chain serial
// (never a re-grouped sum) while halving loop overhead. Unlike the MulInto
// family there is no zero-skip here: the serial kernel never had one, and
// adding one would change the bits (s + 0·x is not always s).
func mulTransBRows(dst, a, b *Mat, lo, hi int) {
	m, c := b.R, b.C
	for i := lo; i < hi; i++ {
		arow := a.Data[i*a.C : (i+1)*a.C]
		drow := dst.Data[i*dst.C : (i+1)*dst.C]
		n := len(arow)
		j := 0
		for ; j+7 < m; j += 8 {
			b0 := b.Data[j*c : (j+1)*c][:n]
			b1 := b.Data[(j+1)*c : (j+2)*c][:n]
			b2 := b.Data[(j+2)*c : (j+3)*c][:n]
			b3 := b.Data[(j+3)*c : (j+4)*c][:n]
			b4 := b.Data[(j+4)*c : (j+5)*c][:n]
			b5 := b.Data[(j+5)*c : (j+6)*c][:n]
			b6 := b.Data[(j+6)*c : (j+7)*c][:n]
			b7 := b.Data[(j+7)*c : (j+8)*c][:n]
			var s0, s1, s2, s3, s4, s5, s6, s7 float64
			k := 0
			for ; k+1 < n; k += 2 {
				a0, a1 := arow[k], arow[k+1]
				s0 += a0 * b0[k]
				s0 += a1 * b0[k+1]
				s1 += a0 * b1[k]
				s1 += a1 * b1[k+1]
				s2 += a0 * b2[k]
				s2 += a1 * b2[k+1]
				s3 += a0 * b3[k]
				s3 += a1 * b3[k+1]
				s4 += a0 * b4[k]
				s4 += a1 * b4[k+1]
				s5 += a0 * b5[k]
				s5 += a1 * b5[k+1]
				s6 += a0 * b6[k]
				s6 += a1 * b6[k+1]
				s7 += a0 * b7[k]
				s7 += a1 * b7[k+1]
			}
			if k < n {
				av := arow[k]
				s0 += av * b0[k]
				s1 += av * b1[k]
				s2 += av * b2[k]
				s3 += av * b3[k]
				s4 += av * b4[k]
				s5 += av * b5[k]
				s6 += av * b6[k]
				s7 += av * b7[k]
			}
			drow[j] = s0
			drow[j+1] = s1
			drow[j+2] = s2
			drow[j+3] = s3
			drow[j+4] = s4
			drow[j+5] = s5
			drow[j+6] = s6
			drow[j+7] = s7
		}
		for ; j < m; j++ {
			brow := b.Data[j*c : (j+1)*c][:n]
			s := 0.0
			for k, av := range arow {
				s += av * brow[k]
			}
			drow[j] = s
		}
	}
}

// AddBias adds the bias row vector to every row of m in place.
func (m *Mat) AddBias(bias []float64) {
	if len(bias) != m.C {
		panic("tensor: AddBias length mismatch")
	}
	for i := 0; i < m.R; i++ {
		row := m.Row(i)
		for j := range row {
			row[j] += bias[j]
		}
	}
}

// Scale multiplies every element by s in place.
func (m *Mat) Scale(s float64) {
	for i := range m.Data {
		m.Data[i] *= s
	}
}

// Add accumulates other into m in place; shapes must match.
func (m *Mat) Add(other *Mat) {
	if m.R != other.R || m.C != other.C {
		panic("tensor: Add shape mismatch")
	}
	for i := range m.Data {
		m.Data[i] += other.Data[i]
	}
}

// Axpy computes m += alpha * other in place.
func (m *Mat) Axpy(alpha float64, other *Mat) {
	if m.R != other.R || m.C != other.C {
		panic("tensor: Axpy shape mismatch")
	}
	for i := range m.Data {
		m.Data[i] += alpha * other.Data[i]
	}
}

// Dot returns the dot product of two equal-length vectors.
func Dot(a, b []float64) float64 {
	if len(a) != len(b) {
		panic("tensor: Dot length mismatch")
	}
	s := 0.0
	for i := range a {
		s += a[i] * b[i]
	}
	return s
}

// Norm2 returns the Euclidean norm of v.
func Norm2(v []float64) float64 {
	s := 0.0
	for _, x := range v {
		s += x * x
	}
	return math.Sqrt(s)
}

// Frobenius returns the Frobenius norm of m.
func (m *Mat) Frobenius() float64 { return Norm2(m.Data) }

// String renders a compact shape descriptor, not the contents.
func (m *Mat) String() string { return fmt.Sprintf("Mat(%dx%d)", m.R, m.C) }
