package tensor

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// The kernel worker pool. MulInto and the transposed products fan large
// shapes out across a fixed set of persistent goroutines instead of
// spawning goroutines per call: goroutine creation on the hot path costs
// more than the row chunks it parallelizes, and an unbounded spawn rate is
// exactly what the go-spawn lint rule forbids in kernel code.
//
// Determinism contract: work is partitioned into fixed, contiguous row
// chunks — chunk boundaries depend only on the shape and the configured
// parallelism, every output element is written by exactly one claimant,
// and each element's additions happen in the same (ascending-k) order as
// the serial kernel. WHICH goroutine executes a chunk is scheduling, not
// arithmetic: chunks are claimed off an atomic cursor, so a worker that
// finishes early steals the next not-yet-started chunk whole (ownership
// transfer — a chunk is never re-partitioned or run twice). The
// floating-point result is therefore bit-identical for any worker count
// and any steal interleaving, which is what lets the replay contract hold
// with the pool at 1, 2, or GOMAXPROCS workers.

// parallelism is the number of chunks a parallel kernel call fans out to.
// 0 means "use runtime.GOMAXPROCS(0)".
var parallelism atomic.Int64

// SetParallelism fixes the kernel fan-out width. n <= 0 restores the
// default (GOMAXPROCS at call time). Intended for tests that verify the
// determinism contract across worker counts and for embedders that want to
// reserve cores; safe to call at any time, but not synchronized with
// in-flight kernel calls.
func SetParallelism(n int) {
	if n < 0 {
		n = 0
	}
	parallelism.Store(int64(n))
}

// Parallelism reports the effective fan-out width of the next parallel
// kernel call.
func Parallelism() int {
	if n := int(parallelism.Load()); n > 0 {
		return n
	}
	return runtime.GOMAXPROCS(0)
}

// stealRun is one parallel kernel call's shared work descriptor. The chunk
// grid (chunk size and count) is fixed up front as a pure function of the
// row count and Parallelism(); cursor is the index of the next unclaimed
// chunk. Participants — the caller plus every pool worker that picks the
// run off the task channel — loop claiming chunks until the cursor passes
// nchunks.
type stealRun struct {
	fn      func(lo, hi int)
	rows    int
	chunk   int
	nchunks int64
	cursor  atomic.Int64
	wg      sync.WaitGroup
}

// participate claims and executes whole chunks until none remain. Every
// chunk after a participant's first was notionally another participant's
// share — count it as stolen. The claim is the ownership transfer: the
// atomic add hands the chunk to exactly one goroutine, which runs it over
// the chunk's fixed [lo,hi) bounds.
func (r *stealRun) participate() {
	claimed := 0
	for {
		c := r.cursor.Add(1) - 1
		if c >= r.nchunks {
			break
		}
		lo := int(c) * r.chunk
		hi := lo + r.chunk
		if hi > r.rows {
			hi = r.rows
		}
		r.fn(lo, hi)
		r.wg.Done()
		claimed++
	}
	if claimed > 1 {
		metricStolenChunks.Add(uint64(claimed - 1))
	}
}

var (
	poolOnce    sync.Once
	poolTasks   chan *stealRun
	poolWorkers int
)

// startPool lazily starts the persistent workers. The pool is sized to the
// machine (GOMAXPROCS at first use); SetParallelism only controls the
// chunk grid, so idle workers cost nothing but a blocked goroutine.
func startPool() {
	poolOnce.Do(func() {
		n := runtime.GOMAXPROCS(0)
		if n < 1 {
			n = 1
		}
		poolWorkers = n
		poolTasks = make(chan *stealRun, 4*n)
		for i := 0; i < n; i++ {
			//lint:ignore go-spawn the pool's own persistent workers are the one sanctioned spawn site for kernel parallelism
			go poolWorker(poolTasks)
		}
	})
}

func poolWorker(tasks <-chan *stealRun) {
	for r := range tasks {
		r.participate()
	}
}

// parallelRows splits [0, rows) into fixed contiguous chunks and runs fn
// over them. The chunk grid depends only on rows and Parallelism(); the
// caller and up to nchunks-1 pool workers then race to claim chunks from
// the shared cursor, so a participant stalled behind another run's kernel
// never strands its share — someone else steals the whole chunk. With
// parallelism 1 (or a single chunk) fn runs inline: no channel traffic,
// no synchronization.
func parallelRows(rows int, fn func(lo, hi int)) {
	workers := Parallelism()
	if workers > rows {
		workers = rows
	}
	if workers < 2 {
		metricSerialCalls.Inc()
		fn(0, rows)
		return
	}
	startPool()
	chunk := (rows + workers - 1) / workers
	nchunks := (rows + chunk - 1) / chunk
	run := &stealRun{fn: fn, rows: rows, chunk: chunk, nchunks: int64(nchunks)}
	run.wg.Add(nchunks)
	// Invite at most nchunks-1 helpers (the caller is a participant too)
	// and no more than the pool has workers — extra invitations would only
	// find an exhausted cursor.
	invites := nchunks - 1
	if invites > poolWorkers {
		invites = poolWorkers
	}
	for i := 0; i < invites; i++ {
		poolTasks <- run
	}
	run.participate()
	run.wg.Wait()
	metricPoolChunks.Add(uint64(nchunks))
}
