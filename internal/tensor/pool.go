package tensor

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// The kernel worker pool. MulInto and the transposed products fan large
// shapes out across a fixed set of persistent goroutines instead of
// spawning goroutines per call: goroutine creation on the hot path costs
// more than the row chunks it parallelizes, and an unbounded spawn rate is
// exactly what the go-spawn lint rule forbids in kernel code.
//
// Determinism contract: work is partitioned into fixed, contiguous row
// chunks — chunk boundaries depend only on the shape and the configured
// parallelism, every output element is written by exactly one worker, and
// each element's additions happen in the same (ascending-k) order as the
// serial kernel. The floating-point result is therefore bit-identical for
// any worker count, which is what lets the replay contract hold with the
// pool at 1, 2, or GOMAXPROCS workers.

// parallelism is the number of chunks a parallel kernel call fans out to.
// 0 means "use runtime.GOMAXPROCS(0)".
var parallelism atomic.Int64

// SetParallelism fixes the kernel fan-out width. n <= 0 restores the
// default (GOMAXPROCS at call time). Intended for tests that verify the
// determinism contract across worker counts and for embedders that want to
// reserve cores; safe to call at any time, but not synchronized with
// in-flight kernel calls.
func SetParallelism(n int) {
	if n < 0 {
		n = 0
	}
	parallelism.Store(int64(n))
}

// Parallelism reports the effective fan-out width of the next parallel
// kernel call.
func Parallelism() int {
	if n := int(parallelism.Load()); n > 0 {
		return n
	}
	return runtime.GOMAXPROCS(0)
}

// poolTask is one contiguous chunk of rows handed to a pool worker.
type poolTask struct {
	fn     func(lo, hi int)
	lo, hi int
	wg     *sync.WaitGroup
}

var (
	poolOnce  sync.Once
	poolTasks chan poolTask
)

// startPool lazily starts the persistent workers. The pool is sized to the
// machine (GOMAXPROCS at first use); SetParallelism only controls how many
// chunks are dispatched, so idle workers cost nothing but a blocked
// goroutine.
func startPool() {
	poolOnce.Do(func() {
		n := runtime.GOMAXPROCS(0)
		if n < 1 {
			n = 1
		}
		poolTasks = make(chan poolTask, 4*n)
		for i := 0; i < n; i++ {
			//lint:ignore go-spawn the pool's own persistent workers are the one sanctioned spawn site for kernel parallelism
			go poolWorker(poolTasks)
		}
	})
}

func poolWorker(tasks <-chan poolTask) {
	for t := range tasks {
		t.fn(t.lo, t.hi)
		t.wg.Done()
	}
}

// parallelRows splits [0, rows) into fixed contiguous chunks and runs fn
// over them, using the calling goroutine for the first chunk and the pool
// for the rest. With parallelism 1 (or a single chunk) it runs fn inline —
// no channel traffic, no synchronization.
func parallelRows(rows int, fn func(lo, hi int)) {
	workers := Parallelism()
	if workers > rows {
		workers = rows
	}
	if workers < 2 {
		metricSerialCalls.Inc()
		fn(0, rows)
		return
	}
	startPool()
	chunk := (rows + workers - 1) / workers
	var wg sync.WaitGroup
	chunks := uint64(1)
	for lo := chunk; lo < rows; lo += chunk {
		hi := lo + chunk
		if hi > rows {
			hi = rows
		}
		wg.Add(1)
		chunks++
		poolTasks <- poolTask{fn: fn, lo: lo, hi: hi, wg: &wg}
	}
	fn(0, chunk)
	wg.Wait()
	metricPoolChunks.Add(chunks)
}
