package tensor

import (
	"math/rand/v2"
	"runtime"
	"testing"
)

func randomMat(rng *rand.Rand, r, c int) *Mat {
	m := New(r, c)
	for i := range m.Data {
		m.Data[i] = rng.NormFloat64()
		if i%17 == 0 {
			m.Data[i] = 0 // exercise the zero-skip branches
		}
	}
	return m
}

// TestKernelParallelismDeterminism is the kernel half of the replay
// contract: the parallel products must be bit-identical at every worker
// count, for shapes on both sides of parallelThreshold and blockThreshold.
func TestKernelParallelismDeterminism(t *testing.T) {
	defer SetParallelism(0)
	shapes := []struct{ m, n, p int }{
		{3, 4, 5},      // tiny, below every threshold
		{64, 64, 64},   // above parallelThreshold, below blockThreshold
		{40, 300, 300}, // above both; ragged tile edges
	}
	widths := []int{1, 2, runtime.GOMAXPROCS(0)}
	for _, sh := range shapes {
		rng := rand.New(rand.NewPCG(11, 17))
		a := randomMat(rng, sh.m, sh.n)
		b := randomMat(rng, sh.n, sh.p)
		bt := randomMat(rng, sh.p, sh.n)
		at := randomMat(rng, sh.n, sh.m)

		type out struct{ mul, mta, mtb *Mat }
		ref := out{}
		for wi, w := range widths {
			SetParallelism(w)
			got := out{mul: New(sh.m, sh.p), mta: New(sh.m, sh.p), mtb: New(sh.m, sh.p)}
			MulInto(got.mul, a, b)
			MulTransAInto(got.mta, at, b)
			MulTransBInto(got.mtb, a, bt)
			if wi == 0 {
				ref = got
				continue
			}
			for name, pair := range map[string][2]*Mat{
				"MulInto":       {ref.mul, got.mul},
				"MulTransAInto": {ref.mta, got.mta},
				"MulTransBInto": {ref.mtb, got.mtb},
			} {
				for i := range pair[0].Data {
					if pair[0].Data[i] != pair[1].Data[i] {
						t.Fatalf("%s shape %dx%dx%d: element %d differs between parallelism 1 and %d: %x vs %x",
							name, sh.m, sh.n, sh.p, i, w, pair[0].Data[i], pair[1].Data[i])
					}
				}
			}
		}
	}
}

// TestBlockedMulMatchesPlain checks the tiled kernel against the plain ikj
// kernel bit-for-bit on ragged shapes that don't divide the tile sizes.
func TestBlockedMulMatchesPlain(t *testing.T) {
	rng := rand.New(rand.NewPCG(5, 9))
	for _, sh := range []struct{ m, n, p int }{
		{7, 301, 259}, {3, mulKC, mulJC}, {5, mulKC + 1, mulJC + 1}, {2, 513, 130},
	} {
		a := randomMat(rng, sh.m, sh.n)
		b := randomMat(rng, sh.n, sh.p)
		plain := New(sh.m, sh.p)
		blocked := New(sh.m, sh.p)
		mulRowsPlain(plain, a, b, 0, sh.m)
		mulRowsBlocked(blocked, a, b, 0, sh.m)
		for i := range plain.Data {
			if plain.Data[i] != blocked.Data[i] {
				t.Fatalf("shape %dx%dx%d: blocked kernel diverges at element %d: %x vs %x",
					sh.m, sh.n, sh.p, i, plain.Data[i], blocked.Data[i])
			}
		}
	}
}

// TestMulTransARowsMatchesSerial pins the reordered (i-outer) gradient
// kernel to the serial (k-outer) one bit-for-bit.
func TestMulTransARowsMatchesSerial(t *testing.T) {
	rng := rand.New(rand.NewPCG(21, 2))
	a := randomMat(rng, 97, 23) // below threshold: serial k-outer path
	b := randomMat(rng, 97, 31)
	serial := New(23, 31)
	MulTransAInto(serial, a, b)
	reordered := New(23, 31)
	mulTransARows(reordered, a, b, 0, 23)
	for i := range serial.Data {
		if serial.Data[i] != reordered.Data[i] {
			t.Fatalf("element %d differs: %x vs %x", i, serial.Data[i], reordered.Data[i])
		}
	}
}

func TestSetParallelism(t *testing.T) {
	defer SetParallelism(0)
	SetParallelism(3)
	if got := Parallelism(); got != 3 {
		t.Fatalf("Parallelism() = %d, want 3", got)
	}
	SetParallelism(-5)
	if got := Parallelism(); got != runtime.GOMAXPROCS(0) {
		t.Fatalf("Parallelism() = %d, want GOMAXPROCS default", got)
	}
}

func TestParallelRowsCoversAllRows(t *testing.T) {
	defer SetParallelism(0)
	for _, w := range []int{1, 2, 3, 7, 64} {
		SetParallelism(w)
		for _, rows := range []int{1, 2, 3, 15, 64, 65} {
			hit := make([]int32, rows)
			parallelRows(rows, func(lo, hi int) {
				for i := lo; i < hi; i++ {
					hit[i]++
				}
			})
			for i, h := range hit {
				if h != 1 {
					t.Fatalf("parallelism %d rows %d: row %d covered %d times", w, rows, i, h)
				}
			}
		}
	}
}

func BenchmarkMulLarge(b *testing.B) {
	rng := rand.New(rand.NewPCG(1, 1))
	x := randomMat(rng, 64, 256)
	y := randomMat(rng, 256, 256)
	dst := New(64, 256)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		MulInto(dst, x, y)
	}
}

func BenchmarkMulPolicyShape(b *testing.B) {
	// The batch=32, 10→64→64→3 policy shape the PPO update actually runs.
	rng := rand.New(rand.NewPCG(1, 2))
	x := randomMat(rng, 32, 64)
	y := randomMat(rng, 64, 64)
	dst := New(32, 64)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		MulInto(dst, x, y)
	}
}
