package tensor

import "rldecide/internal/obs"

// Kernel pool utilization instruments. Atomic counters only — one add per
// kernel dispatch, zero allocations, never on the per-element path — so
// the zero-alloc and bit-identical kernel contracts are untouched.
var (
	metricPoolChunks = obs.Default.NewCounter("rldecide_tensor_pool_chunks_total",
		"Row chunks dispatched to the kernel worker pool.")
	metricSerialCalls = obs.Default.NewCounter("rldecide_tensor_serial_calls_total",
		"Kernel calls that ran serially (width 1 or fewer rows than workers).")
	metricStolenChunks = obs.Default.NewCounter("rldecide_tensor_stolen_chunks_total",
		"Row chunks claimed by a participant beyond its first (work stealing).")
)

func init() {
	obs.Default.NewGaugeFunc("rldecide_tensor_parallelism",
		"Effective kernel fan-out width of the next parallel call.",
		func() []obs.Sample {
			return []obs.Sample{{Value: float64(Parallelism())}}
		})
}
