package tensor

import (
	"math"
	"math/rand/v2"
	"testing"
	"testing/quick"
)

func almostEq(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestMulSmall(t *testing.T) {
	a := FromSlice(2, 3, []float64{1, 2, 3, 4, 5, 6})
	b := FromSlice(3, 2, []float64{7, 8, 9, 10, 11, 12})
	c := Mul(a, b)
	want := []float64{58, 64, 139, 154}
	for i, w := range want {
		if c.Data[i] != w {
			t.Fatalf("Mul got %v want %v", c.Data, want)
		}
	}
}

func TestMulIdentity(t *testing.T) {
	rng := rand.New(rand.NewPCG(1, 2))
	a := New(5, 5)
	a.Randomize(rng, 1)
	id := New(5, 5)
	for i := 0; i < 5; i++ {
		id.Set(i, i, 1)
	}
	c := Mul(a, id)
	for i := range a.Data {
		if !almostEq(c.Data[i], a.Data[i], 1e-12) {
			t.Fatal("A @ I != A")
		}
	}
}

// naiveMul is an obviously-correct reference implementation.
func naiveMul(a, b *Mat) *Mat {
	out := New(a.R, b.C)
	for i := 0; i < a.R; i++ {
		for j := 0; j < b.C; j++ {
			s := 0.0
			for k := 0; k < a.C; k++ {
				s += a.At(i, k) * b.At(k, j)
			}
			out.Set(i, j, s)
		}
	}
	return out
}

func TestMulParallelMatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewPCG(3, 4))
	// Big enough to cross parallelThreshold.
	a := New(80, 64)
	b := New(64, 48)
	a.Randomize(rng, 1)
	b.Randomize(rng, 1)
	got := Mul(a, b)
	want := naiveMul(a, b)
	for i := range got.Data {
		if !almostEq(got.Data[i], want.Data[i], 1e-9) {
			t.Fatalf("parallel MatMul diverges from naive at %d: %v vs %v", i, got.Data[i], want.Data[i])
		}
	}
}

func TestMulTransA(t *testing.T) {
	rng := rand.New(rand.NewPCG(5, 6))
	a := New(7, 3)
	b := New(7, 4)
	a.Randomize(rng, 1)
	b.Randomize(rng, 1)
	dst := New(3, 4)
	MulTransAInto(dst, a, b)
	// Reference: transpose a explicitly.
	at := New(3, 7)
	for i := 0; i < 7; i++ {
		for j := 0; j < 3; j++ {
			at.Set(j, i, a.At(i, j))
		}
	}
	want := naiveMul(at, b)
	for i := range dst.Data {
		if !almostEq(dst.Data[i], want.Data[i], 1e-9) {
			t.Fatal("MulTransAInto mismatch")
		}
	}
}

func TestMulTransB(t *testing.T) {
	rng := rand.New(rand.NewPCG(7, 8))
	a := New(5, 6)
	b := New(4, 6)
	a.Randomize(rng, 1)
	b.Randomize(rng, 1)
	dst := New(5, 4)
	MulTransBInto(dst, a, b)
	bt := New(6, 4)
	for i := 0; i < 4; i++ {
		for j := 0; j < 6; j++ {
			bt.Set(j, i, b.At(i, j))
		}
	}
	want := naiveMul(a, bt)
	for i := range dst.Data {
		if !almostEq(dst.Data[i], want.Data[i], 1e-9) {
			t.Fatal("MulTransBInto mismatch")
		}
	}
}

func TestMulAssociativityProperty(t *testing.T) {
	// (A@B)@C == A@(B@C) within float tolerance, for random small matrices.
	f := func(seed uint64) bool {
		rng := rand.New(rand.NewPCG(seed, seed^0xabcdef))
		a, b, c := New(3, 4), New(4, 2), New(2, 5)
		a.Randomize(rng, 1)
		b.Randomize(rng, 1)
		c.Randomize(rng, 1)
		l := Mul(Mul(a, b), c)
		r := Mul(a, Mul(b, c))
		for i := range l.Data {
			if !almostEq(l.Data[i], r.Data[i], 1e-9) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestAddBiasScaleAxpy(t *testing.T) {
	m := FromSlice(2, 2, []float64{1, 2, 3, 4})
	m.AddBias([]float64{10, 20})
	want := []float64{11, 22, 13, 24}
	for i := range want {
		if m.Data[i] != want[i] {
			t.Fatalf("AddBias got %v", m.Data)
		}
	}
	m.Scale(2)
	if m.Data[0] != 22 {
		t.Fatal("Scale wrong")
	}
	n := m.Clone()
	n.Axpy(-1, m)
	for _, v := range n.Data {
		if v != 0 {
			t.Fatal("Axpy(-1, self-clone) should zero")
		}
	}
}

func TestDotNorm(t *testing.T) {
	if Dot([]float64{1, 2, 3}, []float64{4, 5, 6}) != 32 {
		t.Fatal("Dot wrong")
	}
	if !almostEq(Norm2([]float64{3, 4}), 5, 1e-12) {
		t.Fatal("Norm2 wrong")
	}
}

func TestShapePanics(t *testing.T) {
	for name, fn := range map[string]func(){
		"mul-inner":   func() { Mul(New(2, 3), New(4, 2)) },
		"addbias-len": func() { New(2, 2).AddBias([]float64{1}) },
		"add-shape":   func() { New(2, 2).Add(New(3, 2)) },
		"dot-len":     func() { Dot([]float64{1}, []float64{1, 2}) },
		"fromslice":   func() { FromSlice(2, 2, []float64{1}) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: expected panic", name)
				}
			}()
			fn()
		}()
	}
}

func TestCopyFromZeroFill(t *testing.T) {
	a := New(2, 3)
	a.Fill(7)
	b := New(2, 3)
	b.CopyFrom(a)
	if b.At(1, 2) != 7 {
		t.Fatal("CopyFrom failed")
	}
	b.Zero()
	if b.Frobenius() != 0 {
		t.Fatal("Zero failed")
	}
	if a.String() != "Mat(2x3)" {
		t.Fatalf("String=%q", a.String())
	}
}

func BenchmarkMatMul64(b *testing.B) {
	rng := rand.New(rand.NewPCG(1, 1))
	x := New(64, 64)
	y := New(64, 64)
	x.Randomize(rng, 1)
	y.Randomize(rng, 1)
	dst := New(64, 64)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		MulInto(dst, x, y)
	}
}

func BenchmarkMatMul256Parallel(b *testing.B) {
	rng := rand.New(rand.NewPCG(1, 1))
	x := New(256, 256)
	y := New(256, 256)
	x.Randomize(rng, 1)
	y.Randomize(rng, 1)
	dst := New(256, 256)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		MulInto(dst, x, y)
	}
}
