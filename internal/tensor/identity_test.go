package tensor

import (
	"math"
	"math/rand/v2"
	"runtime"
	"testing"
)

// randMatSparse fills an r×c matrix with a mix of ordinary values, exact
// zeros (ReLU-style sparsity, exercising the zero-skip paths), negative
// zeros, and large-magnitude values, so any accumulation-order or skip-set
// difference between kernels shows up in the bits.
func randMatSparse(rng *rand.Rand, r, c int) *Mat {
	m := New(r, c)
	for i := range m.Data {
		switch rng.IntN(10) {
		case 0, 1, 2:
			m.Data[i] = 0
		case 3:
			m.Data[i] = math.Copysign(0, -1)
		case 4:
			m.Data[i] = (rng.Float64() - 0.5) * 1e12
		default:
			m.Data[i] = rng.NormFloat64()
		}
	}
	return m
}

func bitsEqual(t *testing.T, label string, want, got *Mat) {
	t.Helper()
	if want.R != got.R || want.C != got.C {
		t.Fatalf("%s: shape %dx%d vs %dx%d", label, want.R, want.C, got.R, got.C)
	}
	for i := range want.Data {
		if math.Float64bits(want.Data[i]) != math.Float64bits(got.Data[i]) {
			t.Fatalf("%s: element %d differs in bits: %x vs %x (%v vs %v)",
				label, i, math.Float64bits(want.Data[i]), math.Float64bits(got.Data[i]),
				want.Data[i], got.Data[i])
		}
	}
}

// stealSchedule runs fn over the exact chunk grid parallelRows would build
// for the given rows and width, but executes the chunks serially in an
// adversarial claim order. Chunk disjointness makes execution order
// irrelevant to the result, so this is equivalent to any steal
// interleaving — including every chunk being stolen.
func stealSchedule(rows, width int, order func(n int) []int, fn func(lo, hi int)) {
	workers := width
	if workers > rows {
		workers = rows
	}
	if workers < 2 {
		fn(0, rows)
		return
	}
	chunk := (rows + workers - 1) / workers
	nchunks := (rows + chunk - 1) / chunk
	for _, c := range order(nchunks) {
		lo := c * chunk
		hi := lo + chunk
		if hi > rows {
			hi = rows
		}
		fn(lo, hi)
	}
}

func reversed(n int) []int {
	out := make([]int, n)
	for i := range out {
		out[i] = n - 1 - i
	}
	return out
}

// TestKernelBitIdentitySweep is the determinism proof for kernel v2: over
// randomized shapes (including ones that cross the parallel and blocking
// thresholds), the serial kernels, the pool at several widths, the packed
// transposed-B kernel, and adversarial stolen-chunk schedules must all
// produce bit-identical outputs for MulInto, MulTransAInto and
// MulTransBInto.
func TestKernelBitIdentitySweep(t *testing.T) {
	defer SetParallelism(0)
	rng := rand.New(rand.NewPCG(7, 2026))
	widths := []int{2, 3, 4, runtime.GOMAXPROCS(0)}

	shapes := make([][3]int, 0, 64)
	for len(shapes) < 56 {
		shapes = append(shapes, [3]int{1 + rng.IntN(40), 1 + rng.IntN(40), 1 + rng.IntN(40)})
	}
	// Shapes that cross parallelThreshold (r·n·p ≥ 1<<16) and, for the
	// last one, blockThreshold (n·p ≥ 1<<16).
	shapes = append(shapes, [3]int{48, 40, 40}, [3]int{130, 33, 31}, [3]int{24, 300, 260})

	for si, sh := range shapes {
		r, n, p := sh[0], sh[1], sh[2]
		a := randMatSparse(rng, r, n)
		b := randMatSparse(rng, n, p)
		at := randMatSparse(rng, n, r) // for MulTransAInto: dst is r×p
		bt := randMatSparse(rng, p, n) // for MulTransBInto: dst is r×p

		SetParallelism(1)
		wantMul := New(r, p)
		MulInto(wantMul, a, b)
		wantTA := New(r, p)
		MulTransAInto(wantTA, at, b)
		wantTB := New(r, p)
		MulTransBInto(wantTB, a, bt)

		got := New(r, p)
		for _, w := range widths {
			SetParallelism(w)
			MulInto(got, a, b)
			bitsEqual(t, "MulInto width", wantMul, got)
			MulTransAInto(got, at, b)
			bitsEqual(t, "MulTransAInto width", wantTA, got)
			MulTransBInto(got, a, bt)
			bitsEqual(t, "MulTransBInto width", wantTB, got)
		}

		SetParallelism(1)
		scratch := MulIntoPacked(got, a, b, nil)
		bitsEqual(t, "MulIntoPacked serial", wantMul, got)
		SetParallelism(runtime.GOMAXPROCS(0))
		scratch = MulIntoPacked(got, a, b, scratch)
		bitsEqual(t, "MulIntoPacked parallel", wantMul, got)

		// Stolen-chunk schedules: same chunk grid, reverse claim order.
		for _, w := range widths {
			got.Zero()
			stealSchedule(r, w, reversed, func(lo, hi int) { mulRows(got, a, b, lo, hi) })
			bitsEqual(t, "MulInto stolen", wantMul, got)
			got.Zero()
			stealSchedule(r, w, reversed, func(lo, hi int) { mulTransARows(got, at, b, lo, hi) })
			bitsEqual(t, "MulTransAInto stolen", wantTA, got)
			got.Zero()
			stealSchedule(r, w, reversed, func(lo, hi int) { mulTransBRows(got, a, bt, lo, hi) })
			bitsEqual(t, "MulTransBInto stolen", wantTB, got)
			if r >= packRowThreshold && n*p < blockThreshold {
				pk := Ensure(nil, p, n)
				TransposeInto(pk, b)
				got.Zero()
				stealSchedule(r, w, reversed, func(lo, hi int) { mulRowsPacked(got, a, pk, lo, hi) })
				bitsEqual(t, "MulIntoPacked stolen", wantMul, got)
			}
		}
		_ = si
	}
}

// TestStealRunClaimsEveryChunkOnce drives a stealRun from several
// concurrent participants and checks the ownership-transfer invariant
// directly: every chunk executes exactly once, whole, over its fixed
// bounds.
func TestStealRunClaimsEveryChunkOnce(t *testing.T) {
	const rows, chunk = 103, 7
	nchunks := (rows + chunk - 1) / chunk
	hits := make([]int32, rows)
	run := &stealRun{
		rows:    rows,
		chunk:   chunk,
		nchunks: int64(nchunks),
	}
	var starts []int
	run.fn = func(lo, hi int) {
		if lo%chunk != 0 || (hi != lo+chunk && hi != rows) {
			t.Errorf("re-partitioned chunk [%d,%d)", lo, hi)
		}
		for i := lo; i < hi; i++ {
			hits[i]++
		}
		starts = append(starts, lo)
	}
	run.wg.Add(nchunks)
	// Serial participants: the second and third find the cursor exhausted.
	run.participate()
	run.participate()
	run.participate()
	run.wg.Wait()
	for i, h := range hits {
		if h != 1 {
			t.Fatalf("row %d executed %d times", i, h)
		}
	}
	if len(starts) != nchunks {
		t.Fatalf("claimed %d chunks, want %d", len(starts), nchunks)
	}
}
