package obs

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestRotatingFile pins rotation deterministically with direct writes:
// the file seals after crossing the cap, segments number sequentially,
// and no byte is lost.
func TestRotatingFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "trace.jsonl")
	rf, err := openRotating(path, 10)
	if err != nil {
		t.Fatal(err)
	}
	line := []byte("xxxxxx\n") // 7 bytes: two writes cross the 10-byte cap
	for i := 0; i < 6; i++ {
		if _, err := rf.Write(line); err != nil {
			t.Fatal(err)
		}
	}
	if err := rf.Close(); err != nil {
		t.Fatal(err)
	}
	segs, err := filepath.Glob(filepath.Join(dir, "trace-*.jsonl"))
	if err != nil {
		t.Fatal(err)
	}
	if len(segs) != 3 {
		t.Fatalf("segments = %v, want 3", segs)
	}
	total := 0
	for _, f := range append(segs, path) {
		data, err := os.ReadFile(f)
		if err != nil {
			t.Fatal(err)
		}
		total += len(data)
	}
	if total != 6*len(line) {
		t.Fatalf("bytes across segments = %d, want %d", total, 6*len(line))
	}
}

func TestRotatingTracer(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "trace.jsonl")
	b := frozenBus()
	defer b.Close()

	// Each event line is ~80 bytes; a 200-byte cap forces rolls. The
	// tracer batches through bufio so the segment count depends on drain
	// timing — assert integrity (every event survives, every line valid),
	// not a specific segment count.
	tr, err := OpenTracerRotating(b, path, 200)
	if err != nil {
		t.Fatal(err)
	}
	const n = 40
	for i := 0; i < n; i++ {
		b.Publish(Event{Kind: KindTrialDone, Study: "s1", Trial: i, Status: "ok"})
	}
	if err := tr.Close(); err != nil {
		t.Fatal(err)
	}
	if tr.Dropped() != 0 {
		t.Fatalf("tracer dropped %d events", tr.Dropped())
	}

	segs, err := filepath.Glob(filepath.Join(dir, "trace-*.jsonl"))
	if err != nil {
		t.Fatal(err)
	}
	total := 0
	for _, f := range append(segs, path) {
		data, err := os.ReadFile(f)
		if err != nil {
			t.Fatal(err)
		}
		for _, line := range strings.Split(strings.TrimRight(string(data), "\n"), "\n") {
			if line == "" {
				continue
			}
			var ev Event
			if err := json.Unmarshal([]byte(line), &ev); err != nil {
				t.Fatalf("%s: bad trace line %q: %v", f, line, err)
			}
			total++
		}
	}
	if total != n {
		t.Fatalf("events across segments = %d, want %d", total, n)
	}
}

func TestRotatingTracerUnbounded(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "trace.jsonl")
	b := frozenBus()
	defer b.Close()
	tr, err := OpenTracerRotating(b, path, 0)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20; i++ {
		b.Publish(Event{Kind: KindTrialDone, Study: "s1", Trial: i})
	}
	if err := tr.Close(); err != nil {
		t.Fatal(err)
	}
	segs, err := filepath.Glob(filepath.Join(dir, "trace-*.jsonl"))
	if err != nil {
		t.Fatal(err)
	}
	if len(segs) != 0 {
		t.Fatalf("maxBytes=0 must not rotate, got %v", segs)
	}
}
