package obs

import (
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
)

// rotatingFile is an io.WriteCloser over a size-capped file: when the
// active file crosses maxBytes, it is sealed by renaming to the next
// <base>-<n>.<ext> and a fresh active file opened. Rotation happens
// between Write calls, and the Tracer writes whole flushed batches of
// JSONL lines, so sealed trace segments end on line boundaries in
// practice (a torn line in a trace is cosmetic either way — traces are
// diagnostics, not replay inputs, unlike journals).
type rotatingFile struct {
	mu       sync.Mutex
	path     string
	maxBytes int64
	// guarded-by: mu
	f *os.File
	// guarded-by: mu
	n int64
}

// openRotating opens (truncating, matching OpenTracer) the rotating file
// at path. maxBytes <= 0 disables rotation.
func openRotating(path string, maxBytes int64) (*rotatingFile, error) {
	f, err := os.Create(path)
	if err != nil {
		return nil, err
	}
	return &rotatingFile{path: path, maxBytes: maxBytes, f: f}, nil
}

// Write appends p to the active file and seals it once it has crossed
// the cap — rotation happens after the write, so a single oversized batch
// still lands in one piece and the next batch starts a fresh segment.
func (r *rotatingFile) Write(p []byte) (int, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	n, err := r.f.Write(p)
	r.n += int64(n)
	if err != nil {
		return n, err
	}
	if r.maxBytes > 0 && r.n >= r.maxBytes {
		if err := r.rotate(); err != nil {
			return n, err
		}
	}
	return n, nil
}

// rotate seals the active file as the next numbered segment. Caller
// holds r.mu.
func (r *rotatingFile) rotate() error {
	if err := r.f.Close(); err != nil {
		return err
	}
	ext := filepath.Ext(r.path)
	base := strings.TrimSuffix(r.path, ext)
	next := 1
	glob, err := filepath.Glob(base + "-*" + ext)
	if err != nil {
		return err
	}
	sort.Strings(glob)
	for _, g := range glob {
		idx := strings.TrimSuffix(strings.TrimPrefix(g, base+"-"), ext)
		if k, err := strconv.Atoi(idx); err == nil && k >= next {
			next = k + 1
		}
	}
	if err := os.Rename(r.path, fmt.Sprintf("%s-%d%s", base, next, ext)); err != nil {
		return err
	}
	f, err := os.Create(r.path)
	if err != nil {
		return err
	}
	r.f = f
	r.n = 0
	return nil
}

func (r *rotatingFile) Close() error {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.f.Close()
}

var _ io.WriteCloser = (*rotatingFile)(nil)

// TraceFiles lists the on-disk files of a (possibly rotated) trace
// stream in read order: sealed <base>-<n>.<ext> segments sorted by
// index, then the active file at path itself. Non-numeric suffixes are
// skipped, so per-daemon streams sharing a directory (trace-alpha.jsonl
// next to trace-beta.jsonl) never pick up each other's segments. A
// stream that never rotated yields just the active file; a path that
// does not exist yields an empty list, not an error.
func TraceFiles(path string) ([]string, error) {
	ext := filepath.Ext(path)
	base := strings.TrimSuffix(path, ext)
	glob, err := filepath.Glob(base + "-*" + ext)
	if err != nil {
		return nil, err
	}
	type seg struct {
		idx  int
		path string
	}
	var segs []seg
	for _, g := range glob {
		idx := strings.TrimSuffix(strings.TrimPrefix(g, base+"-"), ext)
		if k, err := strconv.Atoi(idx); err == nil {
			segs = append(segs, seg{idx: k, path: g})
		}
	}
	sort.Slice(segs, func(i, j int) bool { return segs[i].idx < segs[j].idx })
	out := make([]string, 0, len(segs)+1)
	for _, s := range segs {
		out = append(out, s.path)
	}
	if _, err := os.Stat(path); err == nil {
		out = append(out, path)
	}
	return out, nil
}

// OpenTracerRotating is OpenTracer with size-capped rotation: the trace
// stream rolls to <base>-<n>.jsonl segments so long-lived campaigns are
// bounded on disk. maxBytes <= 0 behaves exactly like OpenTracer.
func OpenTracerRotating(bus *Bus, path string, maxBytes int64) (*Tracer, error) {
	rf, err := openRotating(path, maxBytes)
	if err != nil {
		return nil, err
	}
	t := NewTracer(bus, rf)
	if t == nil {
		_ = rf.Close()
		return nil, nil
	}
	t.file = rf
	return t, nil
}
