package obs

import (
	"testing"
	"time"

	"rldecide/internal/power"
)

// frozenBus returns a bus on a frozen clock so t_ms stamps are
// deterministic in tests.
func frozenBus() *Bus {
	t0 := time.Unix(1000, 0)
	return NewBusAt(power.StartStopwatchAt(func() time.Time { return t0 }))
}

func TestBusFanOutAndOrder(t *testing.T) {
	b := frozenBus()
	defer b.Close()
	s1 := b.Subscribe(8)
	s2 := b.Subscribe(8)

	b.Publish(Event{Kind: KindTrialStart, Study: "s", Trial: 1})
	b.Publish(Event{Kind: KindTrialDone, Study: "s", Trial: 1, Status: "ok"})

	for _, s := range []*Subscription{s1, s2} {
		ev := <-s.Events()
		if ev.Kind != KindTrialStart || ev.Seq != 1 {
			t.Fatalf("first event = %+v", ev)
		}
		ev = <-s.Events()
		if ev.Kind != KindTrialDone || ev.Seq != 2 || ev.TMs != 0 {
			t.Fatalf("second event = %+v", ev)
		}
	}
}

func TestBusDropsWhenFull(t *testing.T) {
	b := frozenBus()
	defer b.Close()
	s := b.Subscribe(1)
	b.Publish(Event{Kind: "a"})
	b.Publish(Event{Kind: "b"}) // buffer full: dropped, not blocked
	if got := s.Dropped(); got != 1 {
		t.Fatalf("dropped = %d, want 1", got)
	}
	if ev := <-s.Events(); ev.Kind != "a" {
		t.Fatalf("kept event = %+v", ev)
	}
}

func TestBusCloseIdempotentAndNilSafe(t *testing.T) {
	var nilBus *Bus
	nilBus.Publish(Event{Kind: "x"}) // must not panic
	nilBus.Close()
	if nilBus.Subscribe(4) != nil {
		t.Fatal("nil bus Subscribe != nil")
	}

	b := frozenBus()
	s := b.Subscribe(4)
	b.Close()
	b.Close()                   // idempotent
	b.Publish(Event{Kind: "x"}) // discarded, no panic on closed channels
	if _, ok := <-s.Events(); ok {
		t.Fatal("subscription channel not closed by bus Close")
	}
	if b.Subscribe(4) != nil {
		t.Fatal("Subscribe after Close != nil")
	}
}

func TestUnsubscribeClosesChannel(t *testing.T) {
	b := frozenBus()
	defer b.Close()
	s := b.Subscribe(4)
	b.Unsubscribe(s)
	if _, ok := <-s.Events(); ok {
		t.Fatal("channel open after Unsubscribe")
	}
	b.Unsubscribe(s) // double-unsubscribe is a no-op
	b.Publish(Event{Kind: "x"})
}
