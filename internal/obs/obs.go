// Package obs is the observability layer: a zero-dependency metrics
// registry with Prometheus text-format exposition, an in-process event
// bus, and a per-trial span tracer emitting a JSONL trace stream. Both
// daemons (rldecide-serve, rldecide-worker) serve the registry at
// GET /metrics; the bus feeds the tracer and the daemon's SSE push
// endpoint.
//
// The hard constraint the package is built around is the replay contract:
// observability must never perturb campaign results. Every instrument is
// off the result path — counters and histograms are atomic updates that
// feed exposition only, bus publication never blocks a producer (slow
// subscribers drop events, counted), and trace records carry wall-clock
// timestamps that are explicitly informational. Wall-clock reads go only
// through the power.Stopwatch seam; internal/obs and internal/power are
// the two lint-sanctioned wall-clock sites (see the nondeterm-time rule).
//
// Hot-path instrumentation (environment steps, nn passes, tensor kernel
// dispatch, journal appends) must stay allocation-free: Counter.Add,
// Gauge.Set, Histogram.Observe and Bus.Publish perform zero heap
// allocations (gated by alloc_test.go), so the steady-state
// zero-allocation training loop keeps its AllocsPerRun == 0 contract with
// observability enabled.
package obs

// Default is the process-wide registry. Library packages register their
// instruments here at init; daemons serve it (plus their own per-daemon
// collector registries) at GET /metrics.
var Default = NewRegistry()
