package obs

import (
	"bufio"
	"encoding/json"
	"io"
	"os"
	"sync"
)

// Tracer drains a bus subscription to a JSONL trace stream — one Event
// object per line, in publish order. It runs on its own goroutine so
// trace I/O never sits on the scheduler or executor path; if the tracer
// falls behind, the bus drops events for it (counted on the
// subscription) rather than blocking producers.
type Tracer struct {
	bus  *Bus
	sub  *Subscription
	bw   *bufio.Writer
	file io.Closer
	done chan struct{}
	once sync.Once
	mu   sync.Mutex
	// guarded-by: mu
	err error
}

// traceBuffer is the subscription depth for tracers: deep enough to ride
// out fsync stalls at trial-event rates.
const traceBuffer = 1024

// NewTracer subscribes to bus and streams events to w until the
// subscription is cancelled (Close) or the bus shuts down. Returns nil
// if the bus is nil or closed.
func NewTracer(bus *Bus, w io.Writer) *Tracer {
	sub := bus.SubscribeNamed("tracer", traceBuffer)
	if sub == nil {
		return nil
	}
	t := &Tracer{
		bus:  bus,
		sub:  sub,
		bw:   bufio.NewWriter(w),
		done: make(chan struct{}),
	}
	go t.run()
	return t
}

// OpenTracer creates (truncating) the JSONL trace file at path and
// returns a tracer streaming to it.
func OpenTracer(bus *Bus, path string) (*Tracer, error) {
	f, err := os.Create(path)
	if err != nil {
		return nil, err
	}
	t := NewTracer(bus, f)
	if t == nil {
		_ = f.Close()
		return nil, nil
	}
	t.file = f
	return t, nil
}

// run drains the subscription. The writer flushes whenever the queue
// goes momentarily empty — batches under load, but a live daemon's
// trace.jsonl is complete up to the last quiet moment, not held hostage
// by the bufio buffer until shutdown.
func (t *Tracer) run() {
	defer close(t.done)
	enc := json.NewEncoder(t.bw)
	for {
		ev, open := <-t.sub.Events()
		if !open {
			break
		}
		t.encode(enc, ev)
	drain:
		for {
			select {
			case ev, open := <-t.sub.Events():
				if !open {
					break drain
				}
				t.encode(enc, ev)
			default:
				break drain
			}
		}
		if err := t.bw.Flush(); err != nil {
			t.setErr(err)
		}
	}
	if err := t.bw.Flush(); err != nil {
		t.setErr(err)
	}
}

func (t *Tracer) encode(enc *json.Encoder, ev Event) {
	if err := enc.Encode(ev); err != nil {
		t.setErr(err)
	}
}

func (t *Tracer) setErr(err error) {
	t.mu.Lock()
	if t.err == nil {
		t.err = err
	}
	t.mu.Unlock()
}

// Dropped reports how many events the bus discarded because this tracer
// fell behind.
func (t *Tracer) Dropped() uint64 {
	if t == nil {
		return 0
	}
	return t.sub.Dropped()
}

// Close cancels the subscription, waits for the drain goroutine to flush
// the remaining events, closes the underlying file (if OpenTracer
// created one), and returns the first write error seen. Nil-safe and
// idempotent.
func (t *Tracer) Close() error {
	if t == nil {
		return nil
	}
	t.once.Do(func() {
		t.bus.Unsubscribe(t.sub)
		<-t.done
		if t.file != nil {
			if err := t.file.Close(); err != nil {
				t.setErr(err)
			}
		}
	})
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.err
}
