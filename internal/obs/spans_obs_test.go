package obs

import (
	"strings"
	"testing"
)

// unescapeLabel reverses the exposition-format escaping escapeLabel
// applies — the parse a Prometheus scraper performs on label values.
func unescapeLabel(v string) string {
	var sb strings.Builder
	for i := 0; i < len(v); i++ {
		if v[i] == '\\' && i+1 < len(v) {
			i++
			switch v[i] {
			case 'n':
				sb.WriteByte('\n')
			case '\\':
				sb.WriteByte('\\')
			case '"':
				sb.WriteByte('"')
			default:
				sb.WriteByte('\\')
				sb.WriteByte(v[i])
			}
			continue
		}
		sb.WriteByte(v[i])
	}
	return sb.String()
}

// TestEscapeLabelRoundTrip feeds hostile daemon/worker names — the label
// values a sharded fleet actually stamps — through the exposition writer
// and asserts a standard scraper-side unescape recovers them exactly.
func TestEscapeLabelRoundTrip(t *testing.T) {
	hostile := []string{
		`plain`,
		`back\slash`,
		"new\nline",
		`quo"ted`,
		"all\\three\"at\nonce",
		`trailing\`,
	}
	for _, name := range hostile {
		reg := NewRegistry()
		value := name
		reg.NewGaugeFunc("rldecide_test_escape", "escape fixture.", func() []Sample {
			return []Sample{{Labels: [][2]string{{"daemon", value}, {"worker", value}}, Value: 1}}
		})
		var sb strings.Builder
		if err := reg.WriteText(&sb); err != nil {
			t.Fatal(err)
		}
		text := sb.String()
		// The exposition must stay line-per-sample: a raw newline in a label
		// value would tear the sample across lines.
		var sample string
		for _, line := range strings.Split(text, "\n") {
			if strings.HasPrefix(line, "rldecide_test_escape{") {
				sample = line
				break
			}
		}
		if sample == "" {
			t.Fatalf("no sample line for %q in:\n%s", name, text)
		}
		start := strings.Index(sample, `daemon="`) + len(`daemon="`)
		end := strings.Index(sample[start:], `",worker=`)
		if start < len(`daemon="`) || end < 0 {
			t.Fatalf("cannot locate daemon label in %q", sample)
		}
		if got := unescapeLabel(sample[start : start+end]); got != name {
			t.Fatalf("label %q round-tripped to %q (line %q)", name, got, sample)
		}
		// Escaped values must never contain a literal close-brace-adjacent
		// hazard: raw newlines or unescaped quotes.
		escaped := sample[start : start+end]
		if strings.ContainsAny(escaped, "\n") {
			t.Fatalf("escaped value carries raw newline: %q", escaped)
		}
	}
}

// TestCounterFuncExposition checks NewCounterFunc families render with a
// counter TYPE line and their collected labeled samples.
func TestCounterFuncExposition(t *testing.T) {
	reg := NewRegistry()
	reg.NewCounterFunc("rldecide_test_drops_total", "drop fixture.", func() []Sample {
		return []Sample{
			{Labels: [][2]string{{"subscriber", "sse"}}, Value: 3},
			{Labels: [][2]string{{"subscriber", "tracer"}}, Value: 0},
		}
	})
	var sb strings.Builder
	if err := reg.WriteText(&sb); err != nil {
		t.Fatal(err)
	}
	text := sb.String()
	for _, want := range []string{
		"# TYPE rldecide_test_drops_total counter",
		`rldecide_test_drops_total{subscriber="sse"} 3`,
		`rldecide_test_drops_total{subscriber="tracer"} 0`,
	} {
		if !strings.Contains(text, want) {
			t.Fatalf("missing %q in exposition:\n%s", want, text)
		}
	}
}

// TestBusDropSamples drives a subscriber past its buffer and checks the
// per-subscriber drop counter family: live totals while subscribed, and
// retained (still-monotonic) totals after the subscriber churns away.
func TestBusDropSamples(t *testing.T) {
	b := NewBus()
	defer b.Close()
	sub := b.SubscribeNamed("sse", 1)
	if sub == nil {
		t.Fatal("SubscribeNamed returned nil")
	}
	for i := 0; i < 5; i++ {
		b.Publish(Event{Kind: KindTrialStart, Trial: i})
	}
	samples := b.DropSamples()
	if len(samples) != 1 || samples[0].Labels[0] != [2]string{"subscriber", "sse"} {
		t.Fatalf("DropSamples = %+v", samples)
	}
	live := samples[0].Value
	if live != 4 {
		t.Fatalf("dropped %v events, want 4 (buffer 1 of 5)", live)
	}

	// Unsubscribe must fold the total into the retained map, not zero it —
	// Prometheus counters may never go backwards.
	b.Unsubscribe(sub)
	samples = b.DropSamples()
	if len(samples) != 1 || samples[0].Value != live {
		t.Fatalf("retained drops lost on unsubscribe: %+v", samples)
	}

	// A new subscriber under the same name accumulates on top.
	sub2 := b.SubscribeNamed("sse", 1)
	b.Publish(Event{Kind: KindTrialStart, Trial: 10})
	b.Publish(Event{Kind: KindTrialStart, Trial: 11})
	samples = b.DropSamples()
	if len(samples) != 1 || samples[0].Value != live+1 {
		t.Fatalf("drop totals not cumulative across churn: %+v", samples)
	}
	b.Unsubscribe(sub2)
}
