package obs

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
)

// syncBuffer guards a bytes.Buffer so the tracer goroutine and the test
// never race on it.
type syncBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *syncBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *syncBuffer) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}

func TestTracerJSONL(t *testing.T) {
	b := frozenBus()
	defer b.Close()
	var out syncBuffer
	tr := NewTracer(b, &out)
	if tr == nil {
		t.Fatal("NewTracer returned nil on live bus")
	}

	b.Publish(Event{Kind: KindTrialStart, Study: "s1", Trial: 3, Worker: "w1"})
	b.Publish(Event{Kind: KindTrialDone, Study: "s1", Trial: 3, Worker: "w1", Status: "ok", WallMs: 12.5})
	if err := tr.Close(); err != nil {
		t.Fatal(err)
	}

	lines := strings.Split(strings.TrimRight(out.String(), "\n"), "\n")
	if len(lines) != 2 {
		t.Fatalf("trace lines = %d, want 2:\n%s", len(lines), out.String())
	}
	var ev Event
	if err := json.Unmarshal([]byte(lines[1]), &ev); err != nil {
		t.Fatal(err)
	}
	if ev.Kind != KindTrialDone || ev.Seq != 2 || ev.Worker != "w1" || ev.WallMs != 12.5 {
		t.Fatalf("decoded event = %+v", ev)
	}
	if tr.Dropped() != 0 {
		t.Fatalf("dropped = %d", tr.Dropped())
	}
	if err := tr.Close(); err != nil { // idempotent
		t.Fatal(err)
	}
}

func TestTracerDrainsOnBusClose(t *testing.T) {
	b := frozenBus()
	var out syncBuffer
	tr := NewTracer(b, &out)
	b.Publish(Event{Kind: "x"})
	b.Close() // closes the subscription; tracer drains and flushes
	if err := tr.Close(); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), `"kind":"x"`) {
		t.Fatalf("event lost on bus close:\n%s", out.String())
	}
}

func TestOpenTracer(t *testing.T) {
	b := frozenBus()
	defer b.Close()
	path := filepath.Join(t.TempDir(), "trace.jsonl")
	tr, err := OpenTracer(b, path)
	if err != nil {
		t.Fatal(err)
	}
	b.Publish(Event{Kind: KindStudyStart, Study: "s9"})
	if err := tr.Close(); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), `"study":"s9"`) {
		t.Fatalf("trace file contents:\n%s", data)
	}
}

func TestNilTracer(t *testing.T) {
	var tr *Tracer
	if err := tr.Close(); err != nil {
		t.Fatal(err)
	}
	if tr.Dropped() != 0 {
		t.Fatal("nil tracer dropped != 0")
	}
	closed := frozenBus()
	closed.Close()
	if NewTracer(closed, &bytes.Buffer{}) != nil {
		t.Fatal("NewTracer on closed bus != nil")
	}
}
