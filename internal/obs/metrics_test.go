package obs

import (
	"net/http/httptest"
	"strings"
	"testing"
)

// TestExpositionGolden pins the exact Prometheus text-format output for
// one of every instrument kind: family order (sorted by name), HELP/TYPE
// lines, cumulative histogram buckets with the implicit +Inf, and label
// rendering.
func TestExpositionGolden(t *testing.T) {
	r := NewRegistry()
	c := r.NewCounter("test_events_total", "Events seen.")
	g := r.NewGauge("test_queue_depth", "Queue depth.")
	h := r.NewHistogram("test_latency_seconds", "Latency.", []float64{0.1, 1})
	r.NewGaugeFunc("test_worker_slots", "Worker slots.", func() []Sample {
		return []Sample{
			{Labels: [][2]string{{"worker", "w1"}}, Value: 4},
			{Labels: [][2]string{{"worker", "w2"}}, Value: 2},
		}
	})

	c.Add(3)
	c.Inc()
	g.Set(7)
	g.Add(-4)
	h.Observe(0.0625)
	h.Observe(0.5)
	h.Observe(5)

	var sb strings.Builder
	if err := r.WriteText(&sb); err != nil {
		t.Fatal(err)
	}
	want := `# HELP test_events_total Events seen.
# TYPE test_events_total counter
test_events_total 4
# HELP test_latency_seconds Latency.
# TYPE test_latency_seconds histogram
test_latency_seconds_bucket{le="0.1"} 1
test_latency_seconds_bucket{le="1"} 2
test_latency_seconds_bucket{le="+Inf"} 3
test_latency_seconds_sum 5.5625
test_latency_seconds_count 3
# HELP test_queue_depth Queue depth.
# TYPE test_queue_depth gauge
test_queue_depth 3
# HELP test_worker_slots Worker slots.
# TYPE test_worker_slots gauge
test_worker_slots{worker="w1"} 4
test_worker_slots{worker="w2"} 2
`
	if got := sb.String(); got != want {
		t.Errorf("exposition mismatch\n--- got ---\n%s--- want ---\n%s", got, want)
	}
}

func TestHandler(t *testing.T) {
	r := NewRegistry()
	r.NewCounter("test_a_total", "A.").Inc()
	r2 := NewRegistry()
	r2.NewGauge("test_b", "B.").Set(2)

	srv := httptest.NewServer(Handler(r, nil, r2))
	defer srv.Close()

	res, err := srv.Client().Get(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = res.Body.Close() }()
	if res.StatusCode != 200 {
		t.Fatalf("status = %d", res.StatusCode)
	}
	if ct := res.Header.Get("Content-Type"); ct != "text/plain; version=0.0.4; charset=utf-8" {
		t.Errorf("content-type = %q", ct)
	}
	buf := make([]byte, 4096)
	n, _ := res.Body.Read(buf)
	body := string(buf[:n])
	for _, series := range []string{"test_a_total 1", "test_b 2"} {
		if !strings.Contains(body, series) {
			t.Errorf("body missing %q:\n%s", series, body)
		}
	}

	post, err := srv.Client().Post(srv.URL, "text/plain", nil)
	if err != nil {
		t.Fatal(err)
	}
	_ = post.Body.Close()
	if post.StatusCode != 405 {
		t.Errorf("POST status = %d, want 405", post.StatusCode)
	}
}

func TestDuplicateRegistrationPanics(t *testing.T) {
	r := NewRegistry()
	r.NewCounter("dup_total", "first")
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate registration did not panic")
		}
	}()
	r.NewCounter("dup_total", "second")
}

func TestLabelEscaping(t *testing.T) {
	r := NewRegistry()
	r.NewGaugeFunc("test_esc", "Escaping.", func() []Sample {
		return []Sample{{Labels: [][2]string{{"v", "a\"b\\c\nd"}}, Value: 1}}
	})
	var sb strings.Builder
	if err := r.WriteText(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), `test_esc{v="a\"b\\c\nd"} 1`) {
		t.Errorf("bad escaping:\n%s", sb.String())
	}
}

func TestHistogramBoundsValidation(t *testing.T) {
	r := NewRegistry()
	defer func() {
		if recover() == nil {
			t.Fatal("non-ascending bounds did not panic")
		}
	}()
	r.NewHistogram("bad_hist", "x", []float64{1, 1})
}
