package obs

import (
	"sort"
	"sync"
	"sync/atomic"

	"rldecide/internal/power"
)

// Event kinds emitted by the instrumented stack. Kinds form the span
// hierarchy study → trial → attempt → dispatch; worker attribution rides
// on the attempt/dispatch events.
const (
	KindStudyStart  = "study_start"
	KindStudyDone   = "study_done"
	KindTrialStart  = "trial_start"
	KindTrialDone   = "trial_done"
	KindDispatch    = "dispatch"
	KindDispatchEnd = "dispatch_done"
	KindWorkerUp    = "worker_up"
	KindWorkerDown  = "worker_down"

	// Control-plane kinds (router + sharded daemons): study placement
	// onto a backend, ownership handoff after a backend death, and the
	// router's view of backend liveness.
	KindStudyPlaced  = "study_placed"
	KindStudyAdopted = "study_adopted"
	KindBackendUp    = "backend_up"
	KindBackendDown  = "backend_down"

	// KindSpan carries one finished causal span (internal/obs/span) on the
	// trace stream: Name/Trace/Span/Parent/DurMs describe the span, the
	// shared Study/Trial/Attempt/Worker/Daemon fields its attribution.
	KindSpan = "span"
)

// Event is one observability record. Seq and TMs are stamped by the bus
// at publish time; TMs is wall-clock milliseconds since the bus's
// Stopwatch epoch and is informational only — it never feeds results.
type Event struct {
	Seq     uint64  `json:"seq"`
	TMs     float64 `json:"t_ms"`
	Kind    string  `json:"kind"`
	Study   string  `json:"study,omitempty"`
	Trial   int     `json:"trial,omitempty"`
	Attempt int     `json:"attempt,omitempty"`
	Worker  string  `json:"worker,omitempty"`
	Daemon  string  `json:"daemon,omitempty"`
	Status  string  `json:"status,omitempty"`
	WallMs  float64 `json:"wall_ms,omitempty"`
	Err     string  `json:"err,omitempty"`

	// Span fields, set only on KindSpan events: the span name and the
	// trace/span/parent IDs (deterministically derived — see
	// internal/obs/span), plus the span's duration.
	Name   string  `json:"name,omitempty"`
	Trace  string  `json:"trace,omitempty"`
	Span   string  `json:"span,omitempty"`
	Parent string  `json:"parent,omitempty"`
	DurMs  float64 `json:"dur_ms,omitempty"`
}

// Subscription is one consumer's buffered view of the bus. Events the
// consumer fails to drain in time are dropped (never blocking the
// producer) and counted.
type Subscription struct {
	name    string
	ch      chan Event
	dropped atomic.Uint64
}

// Name identifies the consumer ("tracer", "sse", ...) for the per-
// subscription drop counters surfaced at /metrics.
func (s *Subscription) Name() string { return s.name }

// Events returns the receive channel. It is closed when the subscription
// is cancelled or the bus shuts down.
func (s *Subscription) Events() <-chan Event { return s.ch }

// Dropped reports how many events were discarded because the buffer was
// full.
func (s *Subscription) Dropped() uint64 { return s.dropped.Load() }

// Bus is the in-process event bus feeding the tracer and the SSE
// endpoint. Publish is nil-safe and never blocks: a nil *Bus discards
// everything, and slow subscribers lose events rather than stalling the
// scheduler or executor. Subscriptions live in a slice (not a map) so
// fan-out order is deterministic.
type Bus struct {
	clock *power.Stopwatch
	seq   atomic.Uint64
	mu    sync.Mutex
	// guarded-by: mu
	subs []*Subscription
	// guarded-by: mu
	closed bool
	// dropTotals retains drop counts of departed subscriptions, keyed by
	// subscription name, so the Prometheus counter family stays monotonic
	// across SSE client churn.
	// guarded-by: mu
	dropTotals map[string]uint64
}

// NewBus returns a bus stamping events against a fresh Stopwatch epoch.
func NewBus() *Bus { return NewBusAt(power.StartStopwatch()) }

// NewBusAt returns a bus stamping events against the given Stopwatch
// (injectable for tests).
func NewBusAt(clock *power.Stopwatch) *Bus { return &Bus{clock: clock} }

// Publish stamps ev with a sequence number and a wall-clock offset and
// fans it out to every live subscription without blocking. Safe to call
// on a nil bus and after Close (both discard).
func (b *Bus) Publish(ev Event) {
	if b == nil {
		return
	}
	ev.Seq = b.seq.Add(1)
	ev.TMs = b.clock.ElapsedSeconds() * 1e3
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.closed {
		return
	}
	for _, s := range b.subs {
		select {
		case s.ch <- ev:
		default:
			s.dropped.Add(1)
		}
	}
}

// Subscribe registers a consumer with the given channel buffer (minimum
// 1). Returns nil if the bus is nil or already closed.
func (b *Bus) Subscribe(buffer int) *Subscription {
	return b.SubscribeNamed("anonymous", buffer)
}

// SubscribeNamed is Subscribe with a consumer name. The name labels the
// per-subscription drop counter at /metrics; subscriptions sharing a name
// share a counter series (their drops sum).
func (b *Bus) SubscribeNamed(name string, buffer int) *Subscription {
	if b == nil {
		return nil
	}
	if name == "" {
		name = "anonymous"
	}
	if buffer < 1 {
		buffer = 1
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.closed {
		return nil
	}
	s := &Subscription{name: name, ch: make(chan Event, buffer)}
	b.subs = append(b.subs, s)
	return s
}

// Unsubscribe removes s and closes its channel. No-op for nil or unknown
// subscriptions (including after Close, which already closed them all).
func (b *Bus) Unsubscribe(s *Subscription) {
	if b == nil || s == nil {
		return
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	for i, cur := range b.subs {
		if cur == s {
			b.subs = append(b.subs[:i], b.subs[i+1:]...)
			b.retainDropsLocked(s)
			close(s.ch)
			return
		}
	}
}

// retainDropsLocked folds a departing subscription's drop count into the
// retained totals. Callers hold b.mu.
func (b *Bus) retainDropsLocked(s *Subscription) {
	if d := s.dropped.Load(); d > 0 {
		if b.dropTotals == nil {
			b.dropTotals = make(map[string]uint64)
		}
		b.dropTotals[s.name] += d
	}
}

// DropSamples reports per-subscription-name drop totals (live
// subscriptions plus retained counts from departed ones) as Prometheus
// samples labeled subscriber=<name>, sorted by name. Nil-safe.
func (b *Bus) DropSamples() []Sample {
	if b == nil {
		return nil
	}
	b.mu.Lock()
	totals := make(map[string]uint64, len(b.dropTotals)+len(b.subs))
	for name, d := range b.dropTotals {
		totals[name] = d
	}
	for _, s := range b.subs {
		totals[s.name] += s.dropped.Load()
	}
	b.mu.Unlock()
	names := make([]string, 0, len(totals))
	for name := range totals {
		names = append(names, name)
	}
	sort.Strings(names)
	out := make([]Sample, 0, len(names))
	for _, name := range names {
		out = append(out, Sample{
			Labels: [][2]string{{"subscriber", name}},
			Value:  float64(totals[name]),
		})
	}
	return out
}

// Close shuts the bus down: every subscription channel is closed (so SSE
// handlers and tracers drain and exit) and later publishes are
// discarded. Idempotent and nil-safe. The error is always nil; the
// io.Closer shape lets callers treat the bus like any other resource.
func (b *Bus) Close() error {
	if b == nil {
		return nil
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.closed {
		return nil
	}
	b.closed = true
	for _, s := range b.subs {
		b.retainDropsLocked(s)
		close(s.ch)
	}
	b.subs = nil
	return nil
}
