package obs

import (
	"testing"
)

// TestInstrumentAllocsZero pins the zero-allocation contract for every
// instrument update that sits on (or near) a training hot path: counters
// on env steps and journal appends, gauges on pool state, histogram
// observations on trial latency, and bus publishes on trial boundaries.
func TestInstrumentAllocsZero(t *testing.T) {
	r := NewRegistry()
	c := r.NewCounter("alloc_c_total", "x")
	g := r.NewGauge("alloc_g", "x")
	h := r.NewHistogram("alloc_h_seconds", "x", DurationBuckets)

	if n := testing.AllocsPerRun(1000, func() { c.Inc() }); n != 0 {
		t.Errorf("Counter.Inc: %.1f allocs, want 0", n)
	}
	if n := testing.AllocsPerRun(1000, func() { c.Add(3) }); n != 0 {
		t.Errorf("Counter.Add: %.1f allocs, want 0", n)
	}
	if n := testing.AllocsPerRun(1000, func() { g.Set(1.5) }); n != 0 {
		t.Errorf("Gauge.Set: %.1f allocs, want 0", n)
	}
	if n := testing.AllocsPerRun(1000, func() { g.Add(0.25) }); n != 0 {
		t.Errorf("Gauge.Add: %.1f allocs, want 0", n)
	}
	if n := testing.AllocsPerRun(1000, func() { h.Observe(0.003) }); n != 0 {
		t.Errorf("Histogram.Observe: %.1f allocs, want 0", n)
	}
}

// TestBusPublishAllocsZero pins Publish at zero allocations both with no
// subscribers (the obs-off daemon configuration) and with a saturated
// subscriber (events dropped, producer never blocked, nothing allocated).
func TestBusPublishAllocsZero(t *testing.T) {
	b := frozenBus()
	defer b.Close()
	ev := Event{Kind: KindTrialDone, Study: "s", Trial: 1, Worker: "w", Status: "ok"}

	if n := testing.AllocsPerRun(1000, func() { b.Publish(ev) }); n != 0 {
		t.Errorf("Publish (no subscribers): %.1f allocs, want 0", n)
	}

	s := b.Subscribe(1)
	b.Publish(ev) // fill the buffer so subsequent publishes take the drop path
	if n := testing.AllocsPerRun(1000, func() { b.Publish(ev) }); n != 0 {
		t.Errorf("Publish (saturated subscriber): %.1f allocs, want 0", n)
	}
	_ = s

	var nilBus *Bus
	if n := testing.AllocsPerRun(1000, func() { nilBus.Publish(ev) }); n != 0 {
		t.Errorf("Publish (nil bus): %.1f allocs, want 0", n)
	}
}
