package obs

import (
	"net/http"
	"net/http/pprof"
)

// DebugMux is the handler daemons serve on their -debug-addr: the full
// pprof suite plus a metrics exposition merging the process-wide Default
// registry with any per-daemon registries. It is deliberately a separate
// mux from the API handler so profiling endpoints are never reachable on
// the public listen address.
func DebugMux(regs ...*Registry) *http.ServeMux {
	mux := http.NewServeMux()
	all := append([]*Registry{Default}, regs...)
	mux.Handle("GET /metrics", Handler(all...))
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}
