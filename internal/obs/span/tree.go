package span

// Node is one span with its children attached — the JSON shape served by
// GET /studies/{id}/spans.
type Node struct {
	Span
	Children []*Node `json:"children,omitempty"`
}

// Tree assembles spans into parent-linked trees. Spans whose parent is
// absent (or empty) become roots, so a partial collection — say, a worker
// died before returning its spans — still renders as a forest instead of
// disappearing. The input is not mutated; the output is deterministic:
// roots and children both follow the canonical Sort order.
func Tree(spans []Span) []*Node {
	sorted := append([]Span(nil), spans...)
	Sort(sorted)
	nodes := make([]*Node, len(sorted))
	byID := make(map[string]*Node, len(sorted))
	for i, sp := range sorted {
		n := &Node{Span: sp}
		nodes[i] = n
		if _, ok := byID[sp.ID]; !ok {
			byID[sp.ID] = n
		}
	}
	var roots []*Node
	for _, n := range nodes {
		if p, ok := byID[n.Parent]; ok && n.Parent != "" && p != n {
			p.Children = append(p.Children, n)
		} else {
			roots = append(roots, n)
		}
	}
	return roots
}

// Flatten is Tree's inverse: the spans of a forest, depth-first. The
// router uses it to splice its own placement spans into a tree fetched
// from the owning daemon before rebuilding.
func Flatten(nodes []*Node) []Span {
	var out []Span
	var walk func(ns []*Node)
	walk = func(ns []*Node) {
		for _, n := range ns {
			out = append(out, n.Span)
			walk(n.Children)
		}
	}
	walk(nodes)
	return out
}
