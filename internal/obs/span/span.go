// Package span implements the fleet's causal tracing: lightweight spans
// whose IDs are derived deterministically from (study, trial, attempt)
// keys and propagated across every HTTP hop the control plane already
// makes (router placement, daemon scheduling, fleet dispatch, worker
// execution). Deterministic derivation is the load-bearing design choice:
// any process that knows the study ID can recompute the whole ID
// hierarchy without coordination — the router derives the same study-root
// ID the owning daemon records under, a daemon re-derives a trial span ID
// instead of threading a tainted runtime value around — and no span ID
// ever depends on a clock or an RNG, which keeps the determinism-taint
// lint rule's source set honest.
//
// Timing flows exclusively through the power.Stopwatch seam and is
// informational: spans ride the event bus and the /spans endpoints, never
// the result path. Campaign journals and Pareto fronts are byte-identical
// with spans on or off (see studyd's spans determinism test).
package span

import (
	"context"
	"fmt"
	"hash/fnv"
	"net/http"
	"sort"
	"sync"

	"rldecide/internal/power"
)

// Propagation headers carried on fleet-internal HTTP hops (trial
// dispatches to workers). The trace header names the campaign-wide trace;
// the parent header names the dispatching side's span so the receiver's
// spans attach under it.
const (
	HeaderTrace  = "X-Rldecide-Trace"
	HeaderParent = "X-Rldecide-Parent"
)

// Canonical span names in the fleet hierarchy:
//
//	study                       one study's whole run (owning daemon)
//	├── place                   router placement + forward (router)
//	└── trial                   executor lease + evaluation (owning daemon)
//	    ├── dispatch            one HTTP dispatch attempt RTT (owning daemon)
//	    │   └── run             worker-side request handling (worker)
//	    │       └── objective   objective execution proper (worker)
//	    ├── objective           objective execution (local executor only)
//	    └── journal             journal append of the finished trial (owning daemon)
const (
	NameStudy     = "study"
	NamePlace     = "place"
	NameTrial     = "trial"
	NameDispatch  = "dispatch"
	NameRun       = "run"
	NameObjective = "objective"
	NameJournal   = "journal"
)

// DeriveTrace returns the deterministic trace ID (16 hex digits, FNV-1a)
// for a study. Every process in the fleet derives the same value from the
// study ID alone.
func DeriveTrace(study string) string {
	h := fnv.New64a()
	_, _ = fmt.Fprintf(h, "trace\x00%s", study)
	return fmt.Sprintf("%016x", h.Sum64())
}

// DeriveID returns the deterministic span ID for a span named name under
// parent within trace, keyed by the trial and attempt numbers. Identical
// inputs give identical IDs on every process, which is what lets a
// dispatcher and a worker agree on the tree without shipping IDs both
// ways.
func DeriveID(trace, parent, name string, trial, attempt int) string {
	h := fnv.New64a()
	_, _ = fmt.Fprintf(h, "%s\x00%s\x00%s\x00%d\x00%d", trace, parent, name, trial, attempt)
	return fmt.Sprintf("%016x", h.Sum64())
}

// Inject sets the propagation headers on an outbound request. A missing
// trace disables propagation entirely (the receiver records nothing).
func Inject(h http.Header, trace, parent string) {
	if trace == "" {
		return
	}
	h.Set(HeaderTrace, trace)
	if parent != "" {
		h.Set(HeaderParent, parent)
	}
}

// Extract reads the propagation headers from an inbound request. An empty
// trace means the sender is not tracing this request.
func Extract(h http.Header) (trace, parent string) {
	return h.Get(HeaderTrace), h.Get(HeaderParent)
}

// Span is one finished unit of work. StartMs is the recording process's
// local Stopwatch offset (informational — offsets from different
// processes are not comparable; cross-process ordering comes from the
// parent links, and the critical-path analysis uses durations only).
type Span struct {
	Trace   string  `json:"trace"`
	ID      string  `json:"span"`
	Parent  string  `json:"parent,omitempty"`
	Name    string  `json:"name"`
	Study   string  `json:"study,omitempty"`
	Trial   int     `json:"trial,omitempty"`
	Attempt int     `json:"attempt,omitempty"`
	Daemon  string  `json:"daemon,omitempty"`
	Worker  string  `json:"worker,omitempty"`
	StartMs float64 `json:"start_ms"`
	DurMs   float64 `json:"dur_ms"`
	Status  string  `json:"status,omitempty"`
	Err     string  `json:"err,omitempty"`
}

// Sink receives finished spans (a Collector's Record, a daemon closure
// that also publishes bus events, ...). Sinks must be safe for concurrent
// use; delivery is synchronous at Finish.
type Sink func(Span)

// Scope is the ambient tracing context one process holds while working on
// a unit: the trace, the parent span new spans attach under, the
// attribution labels, the clock, and where finished spans go. A nil
// *Scope is the spans-off state — every method no-ops — so call sites
// never branch on whether tracing is enabled.
type Scope struct {
	Trace  string
	Parent string
	Study  string
	Trial  int
	Daemon string
	Worker string
	// Clock is the process's span stopwatch (power seam). Nil records
	// zero times but still emits spans, for tests that only check shape.
	Clock *power.Stopwatch
	Sink  Sink
}

type scopeKey struct{}

// NewContext returns ctx carrying s. A nil scope returns ctx unchanged.
func NewContext(ctx context.Context, s *Scope) context.Context {
	if s == nil {
		return ctx
	}
	return context.WithValue(ctx, scopeKey{}, s)
}

// FromContext returns the scope carried by ctx, or nil.
func FromContext(ctx context.Context) *Scope {
	if ctx == nil {
		return nil
	}
	s, _ := ctx.Value(scopeKey{}).(*Scope)
	return s
}

// Start opens a span named name under the scope's parent, with its ID
// derived from the scope keys and the attempt number. Nil-safe: a nil
// scope returns a nil *Active whose methods all no-op.
func (s *Scope) Start(name string, attempt int) *Active {
	if s == nil {
		return nil
	}
	a := &Active{
		scope: s,
		span: Span{
			Trace:   s.Trace,
			ID:      DeriveID(s.Trace, s.Parent, name, s.Trial, attempt),
			Parent:  s.Parent,
			Name:    name,
			Study:   s.Study,
			Trial:   s.Trial,
			Attempt: attempt,
			Daemon:  s.Daemon,
			Worker:  s.Worker,
		},
	}
	if s.Clock != nil {
		a.span.StartMs = s.Clock.ElapsedSeconds() * 1e3
	}
	return a
}

// Record forwards an already-finished span to the scope's sink — how a
// daemon folds the spans a worker returned in its dispatch response into
// its own store. Nil-safe on both the scope and a missing sink.
func (s *Scope) Record(sp Span) {
	if s == nil || s.Sink == nil {
		return
	}
	s.Sink(sp)
}

// Active is an open span; Finish closes it and delivers it to the sink.
type Active struct {
	scope *Scope
	span  Span
}

// ID returns the open span's derived ID ("" for a nil Active). Note that
// because IDs are deterministic, callers that need the ID for a child
// scope can — and, on journal-adjacent paths, should — re-derive it with
// DeriveID instead: this read is a determinism-taint source outside
// internal/obs.
func (a *Active) ID() string {
	if a == nil {
		return ""
	}
	return a.span.ID
}

// SetWorker attributes the span to a worker after the fact (the daemon
// learns which worker ran a trial only from the dispatch result).
func (a *Active) SetWorker(worker string) {
	if a == nil {
		return
	}
	a.span.Worker = worker
}

// Finish closes the span with a status (and optional error message) and
// hands it to the scope's sink. Nil-safe; call it exactly once.
func (a *Active) Finish(status, errMsg string) {
	if a == nil {
		return
	}
	if a.scope.Clock != nil {
		a.span.DurMs = a.scope.Clock.ElapsedSeconds()*1e3 - a.span.StartMs
	}
	a.span.Status = status
	a.span.Err = errMsg
	if a.scope.Sink != nil {
		a.scope.Sink(a.span)
	}
}

// Collector is a bounded, concurrency-safe span store — the per-study
// in-memory buffer behind GET /studies/{id}/spans. Its Record method is
// Sink-shaped.
type Collector struct {
	max int
	mu  sync.Mutex
	// guarded-by: mu
	spans []Span
	// guarded-by: mu
	dropped int
}

// DefaultCollectorCap bounds a study's span buffer: budget × (trial +
// dispatch + run + objective + journal) spans for generously sized
// campaigns, without letting a pathological retry loop grow memory
// unboundedly.
const DefaultCollectorCap = 16384

// NewCollector returns a collector keeping at most max spans (<=0 takes
// DefaultCollectorCap). Spans past the cap are counted and discarded.
func NewCollector(max int) *Collector {
	if max <= 0 {
		max = DefaultCollectorCap
	}
	return &Collector{max: max}
}

// Record stores one span, dropping (counted) once the buffer is full.
func (c *Collector) Record(sp Span) {
	if c == nil {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if len(c.spans) >= c.max {
		c.dropped++
		return
	}
	c.spans = append(c.spans, sp)
}

// Dropped reports how many spans the cap discarded.
func (c *Collector) Dropped() int {
	if c == nil {
		return 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.dropped
}

// Spans returns a canonically sorted copy of the stored spans. Like
// Active.ID, the returned values are informational reads — a
// determinism-taint source outside internal/obs.
func (c *Collector) Spans() []Span {
	if c == nil {
		return nil
	}
	c.mu.Lock()
	out := append([]Span(nil), c.spans...)
	c.mu.Unlock()
	Sort(out)
	return out
}

// Sort orders spans canonically: by trial, then attempt, then name, then
// ID. Identical span sets from any process interleaving render
// byte-identically after Sort.
func Sort(spans []Span) {
	sort.SliceStable(spans, func(i, j int) bool {
		a, b := spans[i], spans[j]
		if a.Trial != b.Trial {
			return a.Trial < b.Trial
		}
		if a.Attempt != b.Attempt {
			return a.Attempt < b.Attempt
		}
		if a.Name != b.Name {
			return a.Name < b.Name
		}
		return a.ID < b.ID
	})
}
