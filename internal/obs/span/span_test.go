package span

import (
	"net/http"
	"sync"
	"testing"
	"time"

	"rldecide/internal/power"
)

func TestDeriveDeterminism(t *testing.T) {
	if got, want := DeriveTrace("alpha-1"), DeriveTrace("alpha-1"); got != want {
		t.Fatalf("DeriveTrace not stable: %q vs %q", got, want)
	}
	if DeriveTrace("alpha-1") == DeriveTrace("alpha-2") {
		t.Fatal("distinct studies derived the same trace ID")
	}
	tr := DeriveTrace("alpha-1")
	a := DeriveID(tr, "", NameStudy, 0, 0)
	if b := DeriveID(tr, "", NameStudy, 0, 0); a != b {
		t.Fatalf("DeriveID not stable: %q vs %q", a, b)
	}
	if len(a) != 16 || len(tr) != 16 {
		t.Fatalf("IDs must be 16 hex chars, got trace=%q id=%q", tr, a)
	}
	// Each key component must matter.
	if DeriveID(tr, a, NameTrial, 1, 0) == DeriveID(tr, a, NameTrial, 2, 0) {
		t.Fatal("trial index did not affect the ID")
	}
	if DeriveID(tr, a, NameDispatch, 1, 0) == DeriveID(tr, a, NameDispatch, 1, 1) {
		t.Fatal("attempt index did not affect the ID")
	}
	if DeriveID(tr, a, NameTrial, 1, 0) == DeriveID(tr, a, NameDispatch, 1, 0) {
		t.Fatal("span name did not affect the ID")
	}
	if DeriveID(tr, "", NameTrial, 1, 0) == DeriveID(tr, a, NameTrial, 1, 0) {
		t.Fatal("parent did not affect the ID")
	}
}

func TestInjectExtractRoundTrip(t *testing.T) {
	h := http.Header{}
	Inject(h, "cafe", "beef")
	if tr, p := Extract(h); tr != "cafe" || p != "beef" {
		t.Fatalf("round trip got trace=%q parent=%q", tr, p)
	}
	// Empty trace must not set headers — that is the off switch.
	h2 := http.Header{}
	Inject(h2, "", "beef")
	if tr, p := Extract(h2); tr != "" || p != "" {
		t.Fatalf("empty trace leaked headers: trace=%q parent=%q", tr, p)
	}
}

func TestScopeNilSafety(t *testing.T) {
	// All of these are the spans-off path: nothing may panic, allocate
	// sinks, or record.
	var s *Scope
	a := s.Start(NameTrial, 0)
	if a != nil {
		t.Fatalf("nil scope Start returned %v", a)
	}
	if got := a.ID(); got != "" {
		t.Fatalf("nil active ID = %q", got)
	}
	a.SetWorker("w")
	a.Finish("ok", "")
	s.Record(Span{})
	if sc := FromContext(nil); sc != nil {
		t.Fatalf("FromContext(nil) = %v", sc)
	}
}

func TestScopeStartFinish(t *testing.T) {
	now := time.Unix(0, 0)
	var mu sync.Mutex
	clock := power.StartStopwatchAt(func() time.Time {
		mu.Lock()
		defer mu.Unlock()
		return now
	})
	var got []Span
	sc := &Scope{
		Trace:  DeriveTrace("st"),
		Parent: "root",
		Study:  "st",
		Trial:  7,
		Daemon: "d1",
		Clock:  clock,
		Sink:   func(sp Span) { got = append(got, sp) },
	}
	a := sc.Start(NameDispatch, 2)
	mu.Lock()
	now = now.Add(250 * time.Millisecond)
	mu.Unlock()
	a.SetWorker("w1")
	a.Finish("ok", "")
	if len(got) != 1 {
		t.Fatalf("recorded %d spans, want 1", len(got))
	}
	sp := got[0]
	if sp.ID != DeriveID(sc.Trace, "root", NameDispatch, 7, 2) {
		t.Fatalf("span ID %q not derived from scope key", sp.ID)
	}
	if sp.Parent != "root" || sp.Study != "st" || sp.Trial != 7 || sp.Attempt != 2 {
		t.Fatalf("span attribution wrong: %+v", sp)
	}
	if sp.Daemon != "d1" || sp.Worker != "w1" || sp.Status != "ok" {
		t.Fatalf("span identity wrong: %+v", sp)
	}
	if sp.DurMs < 249 || sp.DurMs > 251 {
		t.Fatalf("DurMs = %v, want ~250", sp.DurMs)
	}
}

func TestCollectorCap(t *testing.T) {
	c := NewCollector(2)
	c.Record(Span{ID: "a", Trial: 2})
	c.Record(Span{ID: "b", Trial: 1})
	c.Record(Span{ID: "c", Trial: 3})
	if got := c.Dropped(); got != 1 {
		t.Fatalf("Dropped = %d, want 1", got)
	}
	spans := c.Spans()
	if len(spans) != 2 {
		t.Fatalf("kept %d spans, want 2", len(spans))
	}
	// Spans() returns canonical order regardless of arrival order.
	if spans[0].Trial != 1 || spans[1].Trial != 2 {
		t.Fatalf("Spans not sorted: %+v", spans)
	}
	var nilC *Collector
	nilC.Record(Span{})
	if nilC.Spans() != nil || nilC.Dropped() != 0 {
		t.Fatal("nil collector must be inert")
	}
}

func TestTreeFlattenRoundTrip(t *testing.T) {
	tr := DeriveTrace("st")
	root := DeriveID(tr, "", NameStudy, 0, 0)
	trial := DeriveID(tr, root, NameTrial, 1, 0)
	disp := DeriveID(tr, trial, NameDispatch, 1, 0)
	spans := []Span{
		{Trace: tr, ID: disp, Parent: trial, Name: NameDispatch, Trial: 1},
		{Trace: tr, ID: root, Name: NameStudy},
		{Trace: tr, ID: trial, Parent: root, Name: NameTrial, Trial: 1},
		{Trace: tr, ID: "dead", Parent: "missing", Name: NameRun, Trial: 9},
	}
	forest := Tree(spans)
	if len(forest) != 2 {
		t.Fatalf("got %d roots, want 2 (study + orphan)", len(forest))
	}
	if forest[0].Name != NameStudy || len(forest[0].Children) != 1 {
		t.Fatalf("study root malformed: %+v", forest[0])
	}
	if forest[0].Children[0].Name != NameTrial || len(forest[0].Children[0].Children) != 1 {
		t.Fatalf("trial child malformed: %+v", forest[0].Children[0])
	}
	if forest[1].ID != "dead" {
		t.Fatalf("orphan not promoted to root: %+v", forest[1])
	}
	flat := Flatten(forest)
	if len(flat) != len(spans) {
		t.Fatalf("Flatten lost spans: %d vs %d", len(flat), len(spans))
	}
	rebuilt := Tree(flat)
	if len(rebuilt) != 2 || len(Flatten(rebuilt)) != len(spans) {
		t.Fatal("Tree/Flatten round trip unstable")
	}
}
