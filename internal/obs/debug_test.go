package obs

import (
	"io"
	"net/http/httptest"
	"strings"
	"testing"
)

func TestDebugMux(t *testing.T) {
	reg := NewRegistry()
	reg.NewCounter("debugmux_probe_total", "Fixture counter.").Add(3)
	ts := httptest.NewServer(DebugMux(reg))
	defer ts.Close()

	resp, err := ts.Client().Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(resp.Body)
	_ = resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != 200 {
		t.Fatalf("/metrics: %d", resp.StatusCode)
	}
	// Merges the extra registry with the process-wide Default one.
	if !strings.Contains(string(body), "debugmux_probe_total 3") {
		t.Fatalf("extra registry missing from exposition:\n%s", body)
	}

	for _, path := range []string{"/debug/pprof/", "/debug/pprof/cmdline", "/debug/pprof/symbol"} {
		resp, err := ts.Client().Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		_ = resp.Body.Close()
		if resp.StatusCode != 200 {
			t.Fatalf("%s: %d", path, resp.StatusCode)
		}
	}
}
