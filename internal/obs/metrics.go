package obs

import (
	"fmt"
	"io"
	"math"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// DurationBuckets is the fixed bucket layout (seconds) shared by every
// latency histogram in the tree. Fixed layouts keep exposition stable for
// the golden test and make cross-daemon series comparable.
var DurationBuckets = []float64{
	0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01,
	0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10, 30, 60,
}

// Sample is one labeled value produced by a GaugeFunc collector at
// exposition time.
type Sample struct {
	// Labels are name/value pairs rendered in declaration order.
	Labels [][2]string
	Value  float64
}

// Counter is a monotonically increasing counter. Inc and Add are
// allocation-free atomic updates, safe on zero-alloc hot paths.
type Counter struct {
	v atomic.Uint64
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.v.Load() }

// Gauge is a settable value. Set and Add are allocation-free atomic
// updates (float bits stored in a uint64).
type Gauge struct {
	bits atomic.Uint64
}

// Set replaces the gauge value.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Add adjusts the gauge by delta (CAS loop; lock-free).
func (g *Gauge) Add(delta float64) {
	for {
		old := g.bits.Load()
		nw := math.Float64bits(math.Float64frombits(old) + delta)
		if g.bits.CompareAndSwap(old, nw) {
			return
		}
	}
}

// Value returns the current gauge value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// Histogram is a fixed-bucket cumulative histogram. Observe is a linear
// scan over the (small, fixed) bucket bounds plus two atomic updates —
// no allocation, no lock.
type Histogram struct {
	bounds  []float64 // ascending upper bounds; +Inf bucket is implicit
	buckets []atomic.Uint64
	count   atomic.Uint64
	sumBits atomic.Uint64
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	i := 0
	for i < len(h.bounds) && v > h.bounds[i] {
		i++
	}
	h.buckets[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sumBits.Load()
		nw := math.Float64bits(math.Float64frombits(old) + v)
		if h.sumBits.CompareAndSwap(old, nw) {
			return
		}
	}
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 { return h.count.Load() }

// Sum returns the sum of observed values.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sumBits.Load()) }

// metricKind tags an instrument for the # TYPE exposition line.
type metricKind int

const (
	kindCounter metricKind = iota
	kindGauge
	kindHistogram
	kindGaugeFunc
	kindCounterFunc
)

// instrument is one registered metric family.
type instrument struct {
	name    string
	help    string
	kind    metricKind
	counter *Counter
	gauge   *Gauge
	hist    *Histogram
	collect func() []Sample
}

// Registry holds a set of named instruments and renders them in
// Prometheus text exposition format 0.0.4. Families are kept in a slice
// and sorted by name at exposition time, so output order is
// deterministic regardless of registration order.
type Registry struct {
	mu sync.Mutex
	// guarded-by: mu
	byName map[string]bool
	// guarded-by: mu
	fams []*instrument
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{byName: make(map[string]bool)}
}

func (r *Registry) add(in *instrument) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.byName[in.name] {
		panic("obs: duplicate metric " + in.name)
	}
	r.byName[in.name] = true
	r.fams = append(r.fams, in)
}

// NewCounter registers and returns a counter.
func (r *Registry) NewCounter(name, help string) *Counter {
	c := &Counter{}
	r.add(&instrument{name: name, help: help, kind: kindCounter, counter: c})
	return c
}

// NewGauge registers and returns a gauge.
func (r *Registry) NewGauge(name, help string) *Gauge {
	g := &Gauge{}
	r.add(&instrument{name: name, help: help, kind: kindGauge, gauge: g})
	return g
}

// NewHistogram registers and returns a histogram with the given ascending
// bucket upper bounds (a trailing +Inf bucket is implicit).
func (r *Registry) NewHistogram(name, help string, bounds []float64) *Histogram {
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			panic("obs: histogram bounds must be strictly ascending: " + name)
		}
	}
	h := &Histogram{
		bounds:  append([]float64(nil), bounds...),
		buckets: make([]atomic.Uint64, len(bounds)+1),
	}
	r.add(&instrument{name: name, help: help, kind: kindHistogram, hist: h})
	return h
}

// NewGaugeFunc registers a gauge family whose labeled samples are
// produced by collect at exposition time. Use it for state that already
// lives elsewhere (worker tables, pool widths) so scraping never
// duplicates bookkeeping on the hot path.
func (r *Registry) NewGaugeFunc(name, help string, collect func() []Sample) {
	r.add(&instrument{name: name, help: help, kind: kindGaugeFunc, collect: collect})
}

// NewCounterFunc registers a counter family whose labeled samples are
// produced by collect at exposition time. The collector must return
// monotonically non-decreasing values per label set (e.g. the event bus's
// per-subscription drop totals).
func (r *Registry) NewCounterFunc(name, help string, collect func() []Sample) {
	r.add(&instrument{name: name, help: help, kind: kindCounterFunc, collect: collect})
}

// snapshot returns the families sorted by name.
func (r *Registry) snapshot() []*instrument {
	r.mu.Lock()
	fams := append([]*instrument(nil), r.fams...)
	r.mu.Unlock()
	sort.Slice(fams, func(i, j int) bool { return fams[i].name < fams[j].name })
	return fams
}

// formatFloat renders a float the way Prometheus text format expects.
func formatFloat(v float64) string {
	if math.IsInf(v, 1) {
		return "+Inf"
	}
	if math.IsInf(v, -1) {
		return "-Inf"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// escapeLabel escapes a label value per the exposition format.
func escapeLabel(v string) string {
	v = strings.ReplaceAll(v, `\`, `\\`)
	v = strings.ReplaceAll(v, "\n", `\n`)
	v = strings.ReplaceAll(v, `"`, `\"`)
	return v
}

func writeSample(w io.Writer, name string, labels [][2]string, value string) error {
	if len(labels) == 0 {
		_, err := fmt.Fprintf(w, "%s %s\n", name, value)
		return err
	}
	var sb strings.Builder
	sb.WriteString(name)
	sb.WriteByte('{')
	for i, lv := range labels {
		if i > 0 {
			sb.WriteByte(',')
		}
		sb.WriteString(lv[0])
		sb.WriteString(`="`)
		sb.WriteString(escapeLabel(lv[1]))
		sb.WriteByte('"')
	}
	sb.WriteByte('}')
	_, err := fmt.Fprintf(w, "%s %s\n", sb.String(), value)
	return err
}

// WriteText renders every family in Prometheus text exposition format
// 0.0.4, sorted by family name.
func (r *Registry) WriteText(w io.Writer) error {
	for _, in := range r.snapshot() {
		typ := "counter"
		switch in.kind {
		case kindGauge, kindGaugeFunc:
			typ = "gauge"
		case kindHistogram:
			typ = "histogram"
		}
		// kindCounterFunc keeps the default "counter" type.
		if _, err := fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s %s\n", in.name, in.help, in.name, typ); err != nil {
			return err
		}
		var err error
		switch in.kind {
		case kindCounter:
			err = writeSample(w, in.name, nil, strconv.FormatUint(in.counter.Value(), 10))
		case kindGauge:
			err = writeSample(w, in.name, nil, formatFloat(in.gauge.Value()))
		case kindGaugeFunc, kindCounterFunc:
			for _, s := range in.collect() {
				if err = writeSample(w, in.name, s.Labels, formatFloat(s.Value)); err != nil {
					break
				}
			}
		case kindHistogram:
			h := in.hist
			var cum uint64
			for i, b := range h.bounds {
				cum += h.buckets[i].Load()
				if err = writeSample(w, in.name+"_bucket", [][2]string{{"le", formatFloat(b)}}, strconv.FormatUint(cum, 10)); err != nil {
					return err
				}
			}
			cum += h.buckets[len(h.bounds)].Load()
			if err = writeSample(w, in.name+"_bucket", [][2]string{{"le", "+Inf"}}, strconv.FormatUint(cum, 10)); err != nil {
				return err
			}
			if err = writeSample(w, in.name+"_sum", nil, formatFloat(h.Sum())); err != nil {
				return err
			}
			err = writeSample(w, in.name+"_count", nil, strconv.FormatUint(h.Count(), 10))
		}
		if err != nil {
			return err
		}
	}
	return nil
}

// Handler serves the concatenated exposition of the given registries at
// GET. Duplicate-family collisions across registries are the caller's
// responsibility (daemons pass Default plus their own registry).
func Handler(regs ...*Registry) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		if req.Method != http.MethodGet {
			w.Header().Set("Allow", http.MethodGet)
			http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
			return
		}
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		for _, r := range regs {
			if r == nil {
				continue
			}
			if err := r.WriteText(w); err != nil {
				return
			}
		}
	})
}
