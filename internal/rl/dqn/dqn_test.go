package dqn

import (
	"math"
	"testing"

	"rldecide/internal/gym/toy"
	"rldecide/internal/mathx"
	"rldecide/internal/rl"
)

func TestDefaults(t *testing.T) {
	c := Config{}.WithDefaults()
	if c.LR != 1e-3 || c.Batch != 64 || c.EpsStart != 1.0 {
		t.Fatalf("defaults wrong: %+v", c)
	}
}

func TestEpsilonDecay(t *testing.T) {
	d := New(Config{EpsDecaySteps: 100, EpsStart: 1, EpsEnd: 0.1, StartSteps: 1}, 1, 2, 1)
	if d.Epsilon() != 1 {
		t.Fatalf("eps start %v", d.Epsilon())
	}
	tr := rl.Transition{Obs: []float64{0}, NextObs: []float64{0}}
	for i := 0; i < 50; i++ {
		d.Observe(tr)
	}
	mid := d.Epsilon()
	if math.Abs(mid-0.55) > 1e-9 {
		t.Fatalf("eps midpoint %v want 0.55", mid)
	}
	for i := 0; i < 100; i++ {
		d.Observe(tr)
	}
	if d.Epsilon() != 0.1 {
		t.Fatalf("eps end %v", d.Epsilon())
	}
}

func TestWarmupActsRandomly(t *testing.T) {
	d := New(Config{StartSteps: 1000}, 1, 3, 2)
	counts := [3]int{}
	for i := 0; i < 3000; i++ {
		counts[d.Act([]float64{0})]++
	}
	for a, c := range counts {
		if c < 800 || c > 1200 {
			t.Fatalf("warmup action %d count %d", a, c)
		}
	}
}

func TestObserveSchedulesUpdates(t *testing.T) {
	d := New(Config{StartSteps: 10, Batch: 8, BufferSize: 100, UpdateEvery: 4}, 2, 2, 3)
	tr := rl.Transition{Obs: []float64{0, 0}, NextObs: []float64{0, 0}}
	updates := 0
	for i := 0; i < 100; i++ {
		if st, ok := d.Observe(tr); ok {
			updates++
			if math.IsNaN(st.Loss) {
				t.Fatal("NaN loss")
			}
		}
	}
	if updates == 0 || d.GradSteps() != updates {
		t.Fatalf("updates=%d gradsteps=%d", updates, d.GradSteps())
	}
}

func TestTargetSyncHappens(t *testing.T) {
	d := New(Config{StartSteps: 5, Batch: 4, BufferSize: 100, TargetEvery: 3, LR: 0.05}, 1, 2, 4)
	tr := rl.Transition{Obs: []float64{0.5}, NextObs: []float64{0.2}, Reward: 1}
	for i := 0; i < 20; i++ {
		d.Observe(tr)
	}
	// After >= 3 gradient steps the target must equal the online net at
	// some sync point; check they're at least not the initial clone.
	wQ, wT := d.Q.Weights(), d.QT.Weights()
	same := true
	for i := range wQ {
		if wQ[i] != wT[i] {
			same = false
			break
		}
	}
	// The target lags the online net except right at a sync boundary;
	// either way it must have moved from initialization eventually.
	_ = same
	init := New(Config{}, 1, 2, 4).QT.Weights()
	moved := false
	for i := range init {
		if wT[i] != init[i] {
			moved = true
			break
		}
	}
	if !moved {
		t.Fatal("target network never synced")
	}
}

func trainChain(t *testing.T, double bool) float64 {
	t.Helper()
	cfg := Config{
		StartSteps:    200,
		Batch:         32,
		BufferSize:    10_000,
		LR:            1e-3,
		Gamma:         0.9,
		TargetEvery:   200,
		EpsDecaySteps: 4000,
		Double:        double,
	}
	seeder := mathx.NewSeeder(13)
	env := toy.NewChain(7, seeder.Next())
	d := New(cfg, 1, 2, seeder.Next())
	obs := env.Reset()
	for step := 0; step < 6000; step++ {
		a := d.Act(obs)
		res := env.Step([]float64{float64(a)})
		d.Observe(rl.Transition{
			Obs: obs, Action: a, Reward: res.Reward,
			NextObs: res.Obs, Done: res.Done && !res.Truncated,
		})
		obs = res.Obs
		if res.Done {
			obs = env.Reset()
		}
	}
	eval := rl.Evaluate(toy.NewChain(7, 991), d.Policy(), 20)
	return eval.MeanReturn
}

func TestDQNLearnsChain(t *testing.T) {
	if testing.Short() {
		t.Skip("training test")
	}
	if r := trainChain(t, false); r < 0.9 {
		t.Fatalf("DQN failed to learn the chain: %v", r)
	}
}

func TestDoubleDQNLearnsChain(t *testing.T) {
	if testing.Short() {
		t.Skip("training test")
	}
	if r := trainChain(t, true); r < 0.9 {
		t.Fatalf("double DQN failed to learn the chain: %v", r)
	}
}
