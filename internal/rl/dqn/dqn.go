// Package dqn implements Deep Q-Networks (Mnih et al. 2015) with the
// standard refinements: experience replay, a target network with periodic
// hard updates, ε-greedy exploration with linear decay, and optional
// double-DQN action selection. The paper's background (§II-A) names
// value-based methods such as Q-learning among the RL algorithm families a
// methodology user might choose from; this package extends the algorithm
// pool beyond the evaluation's PPO/SAC pair.
package dqn

import (
	"math/rand/v2"

	"rldecide/internal/mathx"
	"rldecide/internal/nn"
	"rldecide/internal/rl"
	"rldecide/internal/tensor"
)

// Config holds DQN hyperparameters. Zero fields are replaced by defaults.
type Config struct {
	Hidden        []int   // hidden sizes (default [64, 64])
	LR            float64 // Adam learning rate (default 1e-3)
	Gamma         float64 // discount (default 0.99)
	BufferSize    int     // replay capacity (default 50_000)
	Batch         int     // minibatch size (default 64)
	StartSteps    int     // uniform-random warmup (default 500)
	UpdateEvery   int     // env steps between gradient steps (default 1)
	TargetEvery   int     // gradient steps between target syncs (default 500)
	EpsStart      float64 // initial exploration rate (default 1.0)
	EpsEnd        float64 // final exploration rate (default 0.05)
	EpsDecaySteps int     // steps to anneal ε over (default 10_000)
	Double        bool    // double-DQN target selection
}

// WithDefaults returns cfg with zero fields filled in.
func (c Config) WithDefaults() Config {
	if len(c.Hidden) == 0 {
		c.Hidden = []int{64, 64}
	}
	if c.LR == 0 {
		c.LR = 1e-3
	}
	if c.Gamma == 0 {
		c.Gamma = 0.99
	}
	if c.BufferSize == 0 {
		c.BufferSize = 50_000
	}
	if c.Batch == 0 {
		c.Batch = 64
	}
	if c.StartSteps == 0 {
		c.StartSteps = 500
	}
	if c.UpdateEvery == 0 {
		c.UpdateEvery = 1
	}
	if c.TargetEvery == 0 {
		c.TargetEvery = 500
	}
	if c.EpsStart == 0 {
		c.EpsStart = 1.0
	}
	if c.EpsEnd == 0 {
		c.EpsEnd = 0.05
	}
	if c.EpsDecaySteps == 0 {
		c.EpsDecaySteps = 10_000
	}
	return c
}

// Stats reports one gradient step's diagnostics.
type Stats struct {
	Loss    float64
	Epsilon float64
	MeanQ   float64
}

// DQN is the learner.
type DQN struct {
	Cfg      Config
	ObsDim   int
	NActions int

	Q, QT  *nn.MLP
	Buffer *rl.ReplayBuffer

	opt       *nn.Adam
	rng       *rand.Rand
	steps     int
	gradSteps int

	// Update scratch, reused across gradient steps so steady-state
	// training does not allocate.
	scrBatch    []rl.Transition
	scrX, scrXn *tensor.Mat
	scrDq       *tensor.Mat
	scrTargets  []float64
}

// New returns a DQN learner for obsDim observations and nActions discrete
// actions.
func New(cfg Config, obsDim, nActions int, seed uint64) *DQN {
	cfg = cfg.WithDefaults()
	rng := mathx.NewRand(seed)
	sizes := append(append([]int{obsDim}, cfg.Hidden...), nActions)
	d := &DQN{
		Cfg:      cfg,
		ObsDim:   obsDim,
		NActions: nActions,
		Q:        nn.NewMLP(rng, sizes, nn.ReLU{}, 1.0),
		Buffer:   rl.NewReplayBuffer(cfg.BufferSize),
		rng:      rng,
	}
	d.QT = d.Q.Clone()
	d.opt = nn.NewAdam(d.Q.Params(), cfg.LR)
	return d
}

// Epsilon returns the current exploration rate.
func (d *DQN) Epsilon() float64 {
	if d.steps >= d.Cfg.EpsDecaySteps {
		return d.Cfg.EpsEnd
	}
	f := float64(d.steps) / float64(d.Cfg.EpsDecaySteps)
	return d.Cfg.EpsStart + f*(d.Cfg.EpsEnd-d.Cfg.EpsStart)
}

// GradSteps returns the number of gradient steps taken.
func (d *DQN) GradSteps() int { return d.gradSteps }

// Act selects an ε-greedy action for obs.
func (d *DQN) Act(obs []float64) int {
	if d.steps < d.Cfg.StartSteps || d.rng.Float64() < d.Epsilon() {
		return d.rng.IntN(d.NActions)
	}
	return d.ActGreedy(obs)
}

// ActGreedy returns argmax_a Q(obs, a).
func (d *DQN) ActGreedy(obs []float64) int {
	return nn.Argmax(d.Q.Forward1(obs))
}

// Policy returns an rl.Policy view of the greedy policy.
func (d *DQN) Policy() rl.Policy {
	return rl.PolicyFunc(func(obs []float64) []float64 {
		return []float64{float64(d.ActGreedy(obs))}
	})
}

// Observe feeds one transition and runs the scheduled gradient step. It
// returns the step's stats with ok=false when no update ran.
func (d *DQN) Observe(t rl.Transition) (Stats, bool) {
	d.Buffer.Add(t)
	d.steps++
	if d.steps < d.Cfg.StartSteps || d.steps%d.Cfg.UpdateEvery != 0 {
		return Stats{}, false
	}
	if d.Buffer.Len() < d.Cfg.Batch {
		return Stats{}, false
	}
	return d.update(), true
}

// update runs one gradient step on a sampled minibatch.
func (d *DQN) update() Stats {
	if d.scrBatch == nil {
		d.scrBatch = make([]rl.Transition, d.Cfg.Batch)
	}
	batch := d.Buffer.Sample(d.rng, d.Cfg.Batch, d.scrBatch)
	bs := len(batch)

	d.scrX = tensor.Ensure(d.scrX, bs, d.ObsDim)
	d.scrXn = tensor.Ensure(d.scrXn, bs, d.ObsDim)
	x, xn := d.scrX, d.scrXn
	for i, t := range batch {
		copy(x.Row(i), t.Obs)
		copy(xn.Row(i), t.NextObs)
	}

	// Targets: y = r + γ max_a QT(s', a), with double-DQN optionally
	// selecting the argmax with the online network. The forward outputs
	// are consumed before the online net runs on x again, so no clones
	// are needed.
	qtNext := d.QT.Forward(xn)
	var qNext *tensor.Mat
	if d.Cfg.Double {
		qNext = d.Q.Forward(xn)
	}
	if cap(d.scrTargets) < bs {
		d.scrTargets = make([]float64, bs)
	}
	targets := d.scrTargets[:bs]
	for i, t := range batch {
		y := t.Reward
		if !t.Done {
			var best int
			if d.Cfg.Double {
				best = nn.Argmax(qNext.Row(i))
			} else {
				best = nn.Argmax(qtNext.Row(i))
			}
			y += d.Cfg.Gamma * qtNext.At(i, best)
		}
		targets[i] = y
	}

	// Gradient step: MSE on the taken action's Q-value.
	d.Q.ZeroGrad()
	q := d.Q.Forward(x)
	d.scrDq = tensor.Ensure(d.scrDq, bs, d.NActions)
	dq := d.scrDq
	dq.Zero() // only the taken action's entry is set below
	var loss, meanQ float64
	for i, t := range batch {
		diff := q.At(i, t.Action) - targets[i]
		loss += 0.5 * diff * diff
		meanQ += q.At(i, t.Action)
		dq.Set(i, t.Action, diff/float64(bs))
	}
	d.Q.Backward(dq)
	nn.ClipGrads(d.Q.Params(), 10)
	d.opt.Step()

	d.gradSteps++
	if d.gradSteps%d.Cfg.TargetEvery == 0 {
		d.QT.CopyFrom(d.Q)
	}
	return Stats{
		Loss:    loss / float64(bs),
		Epsilon: d.Epsilon(),
		MeanQ:   meanQ / float64(bs),
	}
}
