package sac

import (
	"math"
	"testing"

	"rldecide/internal/gym"
	"rldecide/internal/gym/toy"
	"rldecide/internal/mathx"
	"rldecide/internal/nn"
	"rldecide/internal/rl"
	"rldecide/internal/tensor"
)

func TestConfigDefaults(t *testing.T) {
	c := Config{}.WithDefaults(3)
	if c.LR != 3e-4 || c.Tau != 0.005 || c.Batch != 128 {
		t.Fatalf("defaults wrong: %+v", c)
	}
	if math.Abs(c.TargetEntropy-0.98*math.Log(3)) > 1e-12 {
		t.Fatalf("target entropy %v", c.TargetEntropy)
	}
}

// TestActorGradientFormula verifies the analytic policy-gradient formula
// dL/dl_j = p_j (g_j − E_π[g]) with g = α·logπ − minQ against finite
// differences through a real MLP.
func TestActorGradientFormula(t *testing.T) {
	rng := mathx.NewRand(9)
	const obsDim, nA = 3, 4
	actor := nn.NewMLP(rng, []int{obsDim, 8, nA}, nn.ReLU{}, 0.5)
	alpha := 0.3
	q := []float64{0.2, -0.5, 1.0, 0.1}
	obs := []float64{0.4, -0.1, 0.8}

	loss := func() float64 {
		logits := actor.Forward1(obs)
		p := nn.Softmax(logits, nil)
		lp := nn.LogSoftmax(logits, nil)
		l := 0.0
		for a := 0; a < nA; a++ {
			l += p[a] * (alpha*lp[a] - q[a])
		}
		return l
	}

	// Analytic gradient accumulation.
	actor.ZeroGrad()
	x := tensor.FromSlice(1, obsDim, append([]float64(nil), obs...))
	logits := actor.Forward(x)
	probs := nn.Softmax(logits.Row(0), nil)
	lp := nn.LogSoftmax(logits.Row(0), nil)
	eg := 0.0
	for a := 0; a < nA; a++ {
		eg += probs[a] * (alpha*lp[a] - q[a])
	}
	dl := tensor.New(1, nA)
	for j := 0; j < nA; j++ {
		g := alpha*lp[j] - q[j]
		dl.Set(0, j, probs[j]*(g-eg))
	}
	actor.Backward(dl)

	const eps = 1e-6
	for _, p := range actor.Params() {
		for j := 0; j < len(p.Data); j += 5 {
			orig := p.Data[j]
			p.Data[j] = orig + eps
			lp1 := loss()
			p.Data[j] = orig - eps
			lm := loss()
			p.Data[j] = orig
			numeric := (lp1 - lm) / (2 * eps)
			if math.Abs(numeric-p.Grad[j]) > 1e-5*(1+math.Abs(numeric)) {
				t.Fatalf("%s[%d]: analytic %g vs numeric %g", p.Name, j, p.Grad[j], numeric)
			}
		}
	}
}

func TestObserveSchedulesUpdates(t *testing.T) {
	cfg := Config{StartSteps: 10, Batch: 8, BufferSize: 100, UpdateEvery: 2}
	s := New(cfg, 2, 3, 1)
	tr := rl.Transition{Obs: []float64{0, 0}, NextObs: []float64{0, 0}}
	updates := 0
	for i := 0; i < 40; i++ {
		if _, ok := s.Observe(tr); ok {
			updates++
		}
	}
	if updates == 0 {
		t.Fatal("no updates ran")
	}
	if s.GradSteps() != updates {
		t.Fatalf("grad steps %d vs updates %d", s.GradSteps(), updates)
	}
	if s.Alpha() <= 0 {
		t.Fatalf("alpha must stay positive: %v", s.Alpha())
	}
}

func TestWarmupActsUniformly(t *testing.T) {
	s := New(Config{StartSteps: 1000}, 2, 3, 2)
	counts := [3]int{}
	for i := 0; i < 3000; i++ {
		counts[s.Act([]float64{0, 0})]++
	}
	for a, c := range counts {
		if c < 800 || c > 1200 {
			t.Fatalf("warmup action %d count %d not ~uniform", a, c)
		}
	}
}

func TestTargetNetworksTrackCritics(t *testing.T) {
	cfg := Config{StartSteps: 5, Batch: 4, BufferSize: 50, Tau: 0.5}
	s := New(cfg, 2, 2, 3)
	before := s.Q1T.Weights()
	tr := rl.Transition{Obs: []float64{0.5, -0.5}, NextObs: []float64{0.2, 0.1}, Reward: 1}
	for i := 0; i < 30; i++ {
		s.Observe(tr)
	}
	after := s.Q1T.Weights()
	moved := false
	for i := range before {
		if before[i] != after[i] {
			moved = true
			break
		}
	}
	if !moved {
		t.Fatal("target network never moved")
	}
}

func TestSACLearnsChain(t *testing.T) {
	if testing.Short() {
		t.Skip("training test")
	}
	// γ and the entropy target matter here: with γ close to 1 and a high
	// entropy target, the soft-optimal policy on a sparse ±1 task is to
	// wander forever collecting entropy bonus — a real property of
	// maximum-entropy RL, not a bug. Use a short horizon and a small
	// entropy target so the task reward dominates.
	cfg := Config{
		StartSteps:    200,
		Batch:         64,
		BufferSize:    20000,
		LR:            1e-3,
		UpdateEvery:   1,
		Gamma:         0.9,
		TargetEntropy: 0.05,
		InitAlpha:     0.1,
	}
	seeder := mathx.NewSeeder(17)
	env := toy.NewChain(7, seeder.Next())
	s := New(cfg, 1, 2, seeder.Next())
	obs := env.Reset()
	for step := 0; step < 6000; step++ {
		a := s.Act(obs)
		res := env.Step([]float64{float64(a)})
		s.Observe(rl.Transition{
			Obs:     obs,
			Action:  a,
			Reward:  res.Reward,
			NextObs: res.Obs,
			Done:    res.Done && !res.Truncated,
		})
		obs = res.Obs
		if res.Done {
			obs = env.Reset()
		}
	}
	eval := rl.Evaluate(toy.NewChain(7, 999), s.Policy(), 20)
	if eval.MeanReturn < 0.9 {
		t.Fatalf("SAC failed to learn the chain: %v", eval)
	}
}

func TestPolicyInterface(t *testing.T) {
	s := New(Config{}, 2, 3, 4)
	a := s.Policy().Act([]float64{0, 0})
	if len(a) != 1 || a[0] < 0 || a[0] > 2 {
		t.Fatalf("bad action %v", a)
	}
	var _ gym.Space = gym.Discrete{N: 3}
}
