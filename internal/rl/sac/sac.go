// Package sac implements discrete Soft Actor-Critic (Haarnoja et al. 2018;
// discrete-action formulation after Christodoulou 2019): twin soft
// Q-networks with target networks and Polyak averaging, a categorical
// actor optimized against min(Q1,Q2), and automatic entropy-temperature
// tuning. SAC is the paper's second algorithm; on the airdrop task (sparse
// terminal reward, long horizon) it is markedly less sample- and
// compute-efficient than PPO, which the evaluation reproduces.
package sac

import (
	"math"
	"math/rand/v2"

	"rldecide/internal/mathx"
	"rldecide/internal/nn"
	"rldecide/internal/rl"
	"rldecide/internal/tensor"
)

// Config holds SAC hyperparameters. Zero fields are replaced by defaults.
type Config struct {
	Hidden        []int   // hidden sizes (default [64, 64])
	LR            float64 // Adam learning rate (default 3e-4)
	Gamma         float64 // discount (default 0.99)
	Tau           float64 // Polyak coefficient (default 0.005)
	BufferSize    int     // replay capacity (default 100_000)
	Batch         int     // minibatch size (default 128)
	StartSteps    int     // uniform-random warmup steps (default 1_000)
	UpdateEvery   int     // env steps between update rounds (default 1)
	UpdatesPerRnd int     // gradient steps per round (default 1)
	TargetEntropy float64 // default 0.98 * ln(nActions) (discrete-SAC reference)
	InitAlpha     float64 // initial temperature (default 0.2)
	AlphaLR       float64 // temperature learning rate (default 3e-4)
}

// WithDefaults returns cfg with zero fields filled in; nActions is needed
// for the entropy target.
func (c Config) WithDefaults(nActions int) Config {
	if len(c.Hidden) == 0 {
		c.Hidden = []int{64, 64}
	}
	if c.LR == 0 {
		c.LR = 3e-4
	}
	if c.Gamma == 0 {
		c.Gamma = 0.99
	}
	if c.Tau == 0 {
		c.Tau = 0.005
	}
	if c.BufferSize == 0 {
		c.BufferSize = 100_000
	}
	if c.Batch == 0 {
		c.Batch = 128
	}
	if c.StartSteps == 0 {
		c.StartSteps = 1_000
	}
	if c.UpdateEvery == 0 {
		c.UpdateEvery = 1
	}
	if c.UpdatesPerRnd == 0 {
		c.UpdatesPerRnd = 1
	}
	if c.TargetEntropy == 0 {
		// The discrete-SAC reference default (Christodoulou 2019):
		// 0.98·ln|A|. On precision-control tasks with sparse terminal
		// reward this keeps the policy near-uniform — the stock-defaults
		// behaviour the paper's SAC runs exhibit. Tasks that need a
		// sharper policy should set TargetEntropy explicitly.
		c.TargetEntropy = 0.98 * math.Log(float64(nActions))
	}
	if c.InitAlpha == 0 {
		c.InitAlpha = 0.2
	}
	if c.AlphaLR == 0 {
		c.AlphaLR = 3e-4
	}
	return c
}

// Stats reports diagnostics of one gradient round.
type Stats struct {
	QLoss     float64
	ActorLoss float64
	Alpha     float64
	Entropy   float64
}

// SAC is the discrete soft actor-critic learner.
type SAC struct {
	Cfg      Config
	ObsDim   int
	NActions int

	Actor    *nn.MLP
	Q1, Q2   *nn.MLP
	Q1T, Q2T *nn.MLP

	Buffer *rl.ReplayBuffer

	optActor *nn.Adam
	optQ1    *nn.Adam
	optQ2    *nn.Adam

	logAlpha  float64
	alphaM    float64 // Adam state for the scalar temperature
	alphaV    float64
	alphaT    int
	rng       *rand.Rand
	steps     int
	gradSteps int

	// Update scratch, reused across gradient steps so steady-state
	// training does not allocate.
	scrBatch          []rl.Transition
	scrX, scrXn       *tensor.Mat
	scrDq, scrDlogits *tensor.Mat
	scrTargets        []float64
	scrProbsN, scrLpN []float64
	scrProbs, scrLp   []float64
}

// New returns a SAC learner for obsDim observations and nActions discrete
// actions.
func New(cfg Config, obsDim, nActions int, seed uint64) *SAC {
	cfg = cfg.WithDefaults(nActions)
	rng := mathx.NewRand(seed)
	mk := func(out int, gain float64) *nn.MLP {
		sizes := append(append([]int{obsDim}, cfg.Hidden...), out)
		return nn.NewMLP(rng, sizes, nn.ReLU{}, gain)
	}
	s := &SAC{
		Cfg:      cfg,
		ObsDim:   obsDim,
		NActions: nActions,
		Actor:    mk(nActions, 0.01),
		Q1:       mk(nActions, 1.0),
		Q2:       mk(nActions, 1.0),
		Buffer:   rl.NewReplayBuffer(cfg.BufferSize),
		logAlpha: math.Log(cfg.InitAlpha),
		rng:      rng,
	}
	s.Q1T = s.Q1.Clone()
	s.Q2T = s.Q2.Clone()
	s.optActor = nn.NewAdam(s.Actor.Params(), cfg.LR)
	s.optQ1 = nn.NewAdam(s.Q1.Params(), cfg.LR)
	s.optQ2 = nn.NewAdam(s.Q2.Params(), cfg.LR)
	return s
}

// Alpha returns the current entropy temperature.
func (s *SAC) Alpha() float64 { return math.Exp(s.logAlpha) }

// GradSteps returns the number of gradient steps taken.
func (s *SAC) GradSteps() int { return s.gradSteps }

// Act samples an action from the current policy (uniform during warmup).
func (s *SAC) Act(obs []float64) int {
	if s.steps < s.Cfg.StartSteps {
		return s.rng.IntN(s.NActions)
	}
	return nn.CategoricalSample(s.rng, s.Actor.Forward1(obs))
}

// ActGreedy returns the mode of the policy.
func (s *SAC) ActGreedy(obs []float64) int {
	return nn.Argmax(s.Actor.Forward1(obs))
}

// Policy returns an rl.Policy view of the greedy policy.
func (s *SAC) Policy() rl.Policy {
	return rl.PolicyFunc(func(obs []float64) []float64 {
		return []float64{float64(s.ActGreedy(obs))}
	})
}

// StochasticPolicy returns an rl.Policy that samples the trained
// (entropy-regularized) policy — the object SAC's objective actually
// optimizes.
func (s *SAC) StochasticPolicy() rl.Policy {
	return rl.PolicyFunc(func(obs []float64) []float64 {
		return []float64{float64(nn.CategoricalSample(s.rng, s.Actor.Forward1(obs)))}
	})
}

// Observe feeds one transition and runs the scheduled gradient rounds.
// It returns the stats of the last round, with ok=false when no update
// ran.
func (s *SAC) Observe(t rl.Transition) (Stats, bool) {
	s.Buffer.Add(t)
	s.steps++
	if s.steps < s.Cfg.StartSteps || s.steps%s.Cfg.UpdateEvery != 0 {
		return Stats{}, false
	}
	if s.Buffer.Len() < s.Cfg.Batch {
		return Stats{}, false
	}
	var st Stats
	for i := 0; i < s.Cfg.UpdatesPerRnd; i++ {
		st = s.update()
	}
	return st, true
}

// update runs one gradient step on a sampled minibatch.
func (s *SAC) update() Stats {
	if s.scrBatch == nil {
		s.scrBatch = make([]rl.Transition, s.Cfg.Batch)
		s.scrProbsN = make([]float64, s.NActions)
		s.scrLpN = make([]float64, s.NActions)
		s.scrProbs = make([]float64, s.NActions)
		s.scrLp = make([]float64, s.NActions)
	}
	batch := s.Buffer.Sample(s.rng, s.Cfg.Batch, s.scrBatch)
	bs := len(batch)
	alpha := s.Alpha()

	s.scrX = tensor.Ensure(s.scrX, bs, s.ObsDim)
	s.scrXn = tensor.Ensure(s.scrXn, bs, s.ObsDim)
	x, xn := s.scrX, s.scrXn
	for i, t := range batch {
		copy(x.Row(i), t.Obs)
		copy(xn.Row(i), t.NextObs)
	}

	// ---- Targets: y = r + γ(1-d) Σ_a π(a|s')[minQT(s',a) − α·logπ(a|s')]
	// Each network owns its forward-output buffer, so the target-net
	// outputs stay valid without cloning while the actor runs.
	nextLogits := s.Actor.Forward(xn)
	probsN := s.scrProbsN
	lpN := s.scrLpN
	q1t := s.Q1T.Forward(xn)
	q2t := s.Q2T.Forward(xn)
	if cap(s.scrTargets) < bs {
		s.scrTargets = make([]float64, bs)
	}
	targets := s.scrTargets[:bs]
	for i, t := range batch {
		row := nextLogits.Row(i)
		nn.Softmax(row, probsN)
		nn.LogSoftmax(row, lpN)
		v := 0.0
		for a := 0; a < s.NActions; a++ {
			minQ := math.Min(q1t.At(i, a), q2t.At(i, a))
			v += probsN[a] * (minQ - alpha*lpN[a])
		}
		y := t.Reward
		if !t.Done {
			y += s.Cfg.Gamma * v
		}
		targets[i] = y
	}

	// ---- Critic update: MSE on the taken action's Q value.
	var qLoss float64
	for qi, pair := range []struct {
		net *nn.MLP
		opt *nn.Adam
	}{{s.Q1, s.optQ1}, {s.Q2, s.optQ2}} {
		pair.net.ZeroGrad()
		q := pair.net.Forward(x)
		s.scrDq = tensor.Ensure(s.scrDq, bs, s.NActions)
		dq := s.scrDq
		dq.Zero() // only the taken action's entry is set below
		for i, t := range batch {
			d := q.At(i, t.Action) - targets[i]
			if qi == 0 {
				qLoss += 0.5 * d * d
			}
			dq.Set(i, t.Action, d/float64(bs))
		}
		pair.net.Backward(dq)
		nn.ClipGrads(pair.net.Params(), 10)
		pair.opt.Step()
	}
	qLoss /= float64(bs)

	// ---- Actor update: minimize Σ_a π(a|s)[α·logπ(a|s) − minQ(s,a)].
	s.Actor.ZeroGrad()
	logits := s.Actor.Forward(x)
	q1 := s.Q1.Forward(x)
	q2 := s.Q2.Forward(x)
	s.scrDlogits = tensor.Ensure(s.scrDlogits, bs, s.NActions)
	dlogits := s.scrDlogits
	probs := s.scrProbs
	lp := s.scrLp
	var actorLoss, entSum float64
	for i := range batch {
		row := logits.Row(i)
		nn.Softmax(row, probs)
		nn.LogSoftmax(row, lp)
		// With g_a = α·logπ(a) − minQ(a) and L = E_π[g]:
		// dL/dl_j = p_j·(g_j − E_π[g]); the α·E_π[dlogπ/dl_j] term is
		// identically zero (verified against finite differences in the
		// tests).
		eg := 0.0
		ent := 0.0
		for a := 0; a < s.NActions; a++ {
			g := alpha*lp[a] - math.Min(q1.At(i, a), q2.At(i, a))
			eg += probs[a] * g
			ent -= probs[a] * lp[a]
		}
		actorLoss += eg
		entSum += ent
		drow := dlogits.Row(i)
		for j := 0; j < s.NActions; j++ {
			g := alpha*lp[j] - math.Min(q1.At(i, j), q2.At(i, j))
			drow[j] = probs[j] * (g - eg) / float64(bs)
		}
	}
	s.Actor.Backward(dlogits)
	nn.ClipGrads(s.Actor.Params(), 10)
	s.optActor.Step()

	// ---- Temperature update: J(α) = E[−α(logπ + H̄)] via Adam on logα.
	gradLogAlpha := -(s.Cfg.TargetEntropy - entSum/float64(bs)) * alpha
	s.alphaT++
	b1, b2 := 0.9, 0.999
	s.alphaM = b1*s.alphaM + (1-b1)*gradLogAlpha
	s.alphaV = b2*s.alphaV + (1-b2)*gradLogAlpha*gradLogAlpha
	mHat := s.alphaM / (1 - math.Pow(b1, float64(s.alphaT)))
	vHat := s.alphaV / (1 - math.Pow(b2, float64(s.alphaT)))
	s.logAlpha -= s.Cfg.AlphaLR * mHat / (math.Sqrt(vHat) + 1e-8)
	s.logAlpha = mathx.Clip(s.logAlpha, -10, 2)

	// ---- Target networks.
	s.Q1T.Polyak(s.Q1, s.Cfg.Tau)
	s.Q2T.Polyak(s.Q2, s.Cfg.Tau)

	s.gradSteps++
	return Stats{
		QLoss:     qLoss,
		ActorLoss: actorLoss / float64(bs),
		Alpha:     s.Alpha(),
		Entropy:   entSum / float64(bs),
	}
}
