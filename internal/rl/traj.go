package rl

import (
	"rldecide/internal/gym"
)

// Episode is one recorded trajectory: the per-step (state, action,
// reward) journal the decision-analysis subsystem consumes. Obs carries
// the observation the policy acted on; States carries the environment's
// full dynamical snapshot at the same decision points when the env
// implements gym.StatefulEnv (the counterfactual-rollout input), and is
// nil otherwise. Recording is passive — it copies data the episode
// produced anyway and consumes no randomness — so a run records the
// same trajectory it would have produced unrecorded (the replay
// contract).
type Episode struct {
	// Trial and Index identify the episode within a study: the trial it
	// was evaluated under and its ordinal within that trial.
	Trial int `json:"trial,omitempty"`
	Index int `json:"index"`
	// Env names the environment in the analysis registry; Seed is the
	// seed the environment was created with for this episode.
	Env  string `json:"env,omitempty"`
	Seed uint64 `json:"seed,omitempty"`

	Obs    [][]float64 `json:"obs"`
	States [][]float64 `json:"states,omitempty"`
	Act    [][]float64 `json:"act"`
	Rew    []float64   `json:"rew"`
	Return float64     `json:"return"`
}

// Len returns the number of recorded steps.
func (e *Episode) Len() int { return len(e.Act) }

// EpisodeSink receives recorded episodes. Implementations must treat the
// episode as immutable; the recorder hands over ownership of its slices.
type EpisodeSink interface {
	Record(ep Episode)
}

// RecordEpisode runs policy for one full episode on env and returns the
// recorded trajectory alongside nothing the plain evaluation loop would
// not have computed: observations, snapshots (for gym.StatefulEnv
// implementations), actions and rewards are copied, never fed back, so
// the episode's return is exactly what Evaluate would report for the
// same env state and policy.
func RecordEpisode(env gym.Env, policy Policy) Episode {
	var ep Episode
	se, stateful := env.(gym.StatefulEnv)
	obs := env.Reset()
	for {
		ep.Obs = append(ep.Obs, append([]float64(nil), obs...))
		if stateful {
			ep.States = append(ep.States, se.Snapshot(nil))
		}
		act := policy.Act(obs)
		ep.Act = append(ep.Act, append([]float64(nil), act...))
		res := env.Step(act)
		ep.Rew = append(ep.Rew, res.Reward)
		ep.Return += res.Reward
		obs = res.Obs
		if res.Done {
			return ep
		}
	}
}
