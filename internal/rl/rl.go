// Package rl provides the algorithm-agnostic reinforcement-learning
// machinery shared by the PPO and SAC implementations and by the
// distributed training backends: transitions, on-policy rollout segments
// with generalized advantage estimation (GAE), an off-policy replay
// buffer, and policy evaluation helpers.
package rl

import (
	"fmt"
	"math"
	"math/rand/v2"

	"rldecide/internal/gym"
)

// Transition is one environment step as seen by off-policy learners.
type Transition struct {
	Obs     []float64
	Action  int
	Reward  float64
	NextObs []float64
	// Done is true only for genuine terminal states (not time-limit
	// truncations), i.e. states whose value is exactly 0.
	Done bool
}

// Segment is a contiguous on-policy trajectory slice collected from one
// environment by one actor, with the policy outputs recorded at collection
// time (log-probabilities and value estimates — possibly from a stale
// policy copy in distributed settings).
type Segment struct {
	Obs  [][]float64
	Act  []int
	LogP []float64
	Val  []float64
	Rew  []float64
	// Done marks genuine terminals; Trunc marks time-limit cuts.
	Done  []bool
	Trunc []bool
	// NextVal[t] is the collector's value estimate of the successor state:
	// V(s_{t+1}) for regular steps, V(s_final) for truncations, and 0 for
	// terminals.
	NextVal []float64

	// Adv and Ret are filled by ComputeGAE.
	Adv []float64
	Ret []float64

	// obsBack is the flat backing store observations are copied into. When
	// Reserve was called with enough capacity, Push never allocates.
	obsBack []float64
}

// Len returns the number of steps in the segment.
func (s *Segment) Len() int { return len(s.Obs) }

// Reserve preallocates storage for n steps of obsDim-dimensional
// observations, so a subsequent collection of up to n Push calls is
// allocation-free (after the first rollout warms the per-step slices).
func (s *Segment) Reserve(n, obsDim int) {
	if cap(s.obsBack) < n*obsDim {
		s.obsBack = make([]float64, 0, n*obsDim)
	}
	if cap(s.Obs) < n {
		s.Obs = make([][]float64, 0, n)
		s.Act = make([]int, 0, n)
		s.LogP = make([]float64, 0, n)
		s.Val = make([]float64, 0, n)
		s.Rew = make([]float64, 0, n)
		s.Done = make([]bool, 0, n)
		s.Trunc = make([]bool, 0, n)
		s.NextVal = make([]float64, 0, n)
	}
}

// Clear empties the segment for reuse, keeping all backing storage.
func (s *Segment) Clear() {
	s.Obs = s.Obs[:0]
	s.Act = s.Act[:0]
	s.LogP = s.LogP[:0]
	s.Val = s.Val[:0]
	s.Rew = s.Rew[:0]
	s.Done = s.Done[:0]
	s.Trunc = s.Trunc[:0]
	s.NextVal = s.NextVal[:0]
	s.obsBack = s.obsBack[:0]
}

// Push appends one step to the segment. The observation is copied into
// segment-owned storage, so callers may pass reused env buffers (the
// gym.StepResult contract).
func (s *Segment) Push(obs []float64, act int, logp, val, rew float64, done, trunc bool, nextVal float64) {
	var stored []float64
	if n := len(obs); cap(s.obsBack)-len(s.obsBack) >= n {
		off := len(s.obsBack)
		s.obsBack = s.obsBack[: off+n : cap(s.obsBack)]
		stored = s.obsBack[off : off+n : off+n]
		copy(stored, obs)
	} else {
		// No reserved room left (or Reserve never called): fall back to a
		// fresh copy so earlier views are never invalidated by growth.
		stored = append([]float64(nil), obs...)
	}
	s.Obs = append(s.Obs, stored)
	s.Act = append(s.Act, act)
	s.LogP = append(s.LogP, logp)
	s.Val = append(s.Val, val)
	s.Rew = append(s.Rew, rew)
	s.Done = append(s.Done, done)
	s.Trunc = append(s.Trunc, trunc)
	s.NextVal = append(s.NextVal, nextVal)
}

// ComputeGAE fills Adv and Ret with generalized advantage estimates:
//
//	δ_t = r_t + γ·V(s_{t+1}) − V(s_t)
//	A_t = δ_t + γλ·(1−done_t)·A_{t+1}
//	R_t = A_t + V(s_t)
//
// Truncated steps bootstrap through NextVal like regular steps but cut the
// λ-recursion, matching standard vectorized-PPO practice.
func (s *Segment) ComputeGAE(gamma, lambda float64) {
	n := s.Len()
	if cap(s.Adv) >= n {
		s.Adv = s.Adv[:n]
		s.Ret = s.Ret[:n]
	} else {
		s.Adv = make([]float64, n)
		s.Ret = make([]float64, n)
	}
	next := 0.0
	for t := n - 1; t >= 0; t-- {
		nextVal := s.NextVal[t]
		if s.Done[t] {
			nextVal = 0
		}
		delta := s.Rew[t] + gamma*nextVal - s.Val[t]
		if s.Done[t] || s.Trunc[t] {
			next = 0
		}
		s.Adv[t] = delta + gamma*lambda*next
		next = s.Adv[t]
		s.Ret[t] = s.Adv[t] + s.Val[t]
	}
}

// Rollout is a batch of segments making up one on-policy update.
type Rollout struct {
	Segments []*Segment
}

// Steps returns the total number of environment steps in the rollout.
func (r *Rollout) Steps() int {
	n := 0
	for _, s := range r.Segments {
		n += s.Len()
	}
	return n
}

// ComputeGAE runs GAE on every segment.
func (r *Rollout) ComputeGAE(gamma, lambda float64) {
	for _, s := range r.Segments {
		s.ComputeGAE(gamma, lambda)
	}
}

// ReplayBuffer is a fixed-capacity circular buffer of transitions for
// off-policy learning.
type ReplayBuffer struct {
	buf  []Transition
	cap  int
	next int
	size int
}

// NewReplayBuffer returns a buffer holding up to capacity transitions.
func NewReplayBuffer(capacity int) *ReplayBuffer {
	if capacity <= 0 {
		panic("rl: NewReplayBuffer needs capacity > 0")
	}
	return &ReplayBuffer{buf: make([]Transition, capacity), cap: capacity}
}

// Len returns the number of stored transitions.
func (b *ReplayBuffer) Len() int { return b.size }

// Cap returns the buffer capacity.
func (b *ReplayBuffer) Cap() int { return b.cap }

// Add stores a transition, overwriting the oldest when full. The Obs and
// NextObs slices are copied into slot-owned storage that is reused on
// overwrite, so callers may pass reused env buffers and a full buffer adds
// without allocating.
func (b *ReplayBuffer) Add(t Transition) {
	slot := &b.buf[b.next]
	slot.Obs = append(slot.Obs[:0], t.Obs...)
	slot.NextObs = append(slot.NextObs[:0], t.NextObs...)
	slot.Action = t.Action
	slot.Reward = t.Reward
	slot.Done = t.Done
	b.next = (b.next + 1) % b.cap
	if b.size < b.cap {
		b.size++
	}
}

// Sample draws n transitions uniformly with replacement into dst
// (allocating when nil) and returns dst. The sampled transitions share
// observation storage with the buffer slots: they are valid until the
// slot is overwritten, i.e. consume them before the next cap Adds. It
// panics on an empty buffer.
func (b *ReplayBuffer) Sample(rng *rand.Rand, n int, dst []Transition) []Transition {
	if b.size == 0 {
		panic("rl: Sample from empty replay buffer")
	}
	if dst == nil {
		dst = make([]Transition, n)
	}
	dst = dst[:n]
	for i := 0; i < n; i++ {
		dst[i] = b.buf[rng.IntN(b.size)]
	}
	return dst
}

// Policy maps an observation to an action vector; implementations decide
// whether to sample or act greedily.
type Policy interface {
	Act(obs []float64) []float64
}

// PolicyFunc adapts a function to the Policy interface.
type PolicyFunc func(obs []float64) []float64

// Act implements Policy.
func (f PolicyFunc) Act(obs []float64) []float64 { return f(obs) }

// EvalResult summarizes a policy evaluation.
type EvalResult struct {
	MeanReturn float64
	StdReturn  float64
	MeanLength float64
	Episodes   int
}

// Evaluate runs policy for episodes full episodes on env and reports
// return statistics. The environment's own seed controls the episode
// draws.
func Evaluate(env gym.Env, policy Policy, episodes int) EvalResult {
	if episodes <= 0 {
		panic("rl: Evaluate needs episodes > 0")
	}
	var returns []float64
	totalLen := 0
	for ep := 0; ep < episodes; ep++ {
		obs := env.Reset()
		ret := 0.0
		for {
			res := env.Step(policy.Act(obs))
			obs = res.Obs
			ret += res.Reward
			totalLen++
			if res.Done {
				break
			}
		}
		returns = append(returns, ret)
	}
	mean := 0.0
	for _, r := range returns {
		mean += r
	}
	mean /= float64(len(returns))
	varsum := 0.0
	for _, r := range returns {
		varsum += (r - mean) * (r - mean)
	}
	std := 0.0
	if len(returns) > 1 {
		std = math.Sqrt(varsum / float64(len(returns)))
	}
	return EvalResult{
		MeanReturn: mean,
		StdReturn:  std,
		MeanLength: float64(totalLen) / float64(episodes),
		Episodes:   episodes,
	}
}

// String renders an EvalResult compactly.
func (e EvalResult) String() string {
	return fmt.Sprintf("return %.3f ± %.3f over %d episodes (len %.1f)", e.MeanReturn, e.StdReturn, e.Episodes, e.MeanLength)
}
