package rl

import (
	"math"
	"math/rand/v2"
	"testing"
	"testing/quick"

	"rldecide/internal/gym"
	"rldecide/internal/gym/toy"
)

func TestGAEHandComputed(t *testing.T) {
	// Two steps, no termination, bootstrap 1.0 at the end.
	// gamma=0.5, lambda=0.5.
	s := &Segment{}
	s.Push([]float64{0}, 0, 0, 1.0, 1.0, false, false, 2.0) // V=1, r=1, V(next)=2
	s.Push([]float64{1}, 0, 0, 2.0, 0.0, false, true, 1.0)  // V=2, r=0, bootstrap=1
	s.ComputeGAE(0.5, 0.5)
	// t=1: delta = 0 + 0.5*1 - 2 = -1.5; adv = -1.5 (recursion cut).
	// t=0: delta = 1 + 0.5*2 - 1 = 1; trunc at t=1... recursion uses
	// next=adv[1] unless done/trunc at t: flags at t=0 are false, so
	// adv[0] = 1 + 0.25*(-1.5) = 0.625.
	if math.Abs(s.Adv[1]-(-1.5)) > 1e-12 {
		t.Errorf("adv[1]=%v want -1.5", s.Adv[1])
	}
	if math.Abs(s.Adv[0]-0.625) > 1e-12 {
		t.Errorf("adv[0]=%v want 0.625", s.Adv[0])
	}
	if math.Abs(s.Ret[0]-1.625) > 1e-12 || math.Abs(s.Ret[1]-0.5) > 1e-12 {
		t.Errorf("returns %v want [1.625, 0.5]", s.Ret)
	}
}

func TestGAETerminalCutsBootstrap(t *testing.T) {
	s := &Segment{}
	s.Push([]float64{0}, 0, 0, 3.0, 1.0, true, false, 99.0) // terminal: NextVal ignored
	s.ComputeGAE(0.9, 0.9)
	// delta = 1 + 0 - 3 = -2
	if math.Abs(s.Adv[0]-(-2)) > 1e-12 {
		t.Errorf("terminal adv=%v want -2", s.Adv[0])
	}
}

func TestGAEMatchesMonteCarloWhenLambda1(t *testing.T) {
	// With λ=1 and no critic (V=0), returns must equal discounted rewards.
	s := &Segment{}
	rews := []float64{1, 2, 3}
	for i, r := range rews {
		done := i == len(rews)-1
		s.Push([]float64{0}, 0, 0, 0, r, done, false, 0)
	}
	gamma := 0.9
	s.ComputeGAE(gamma, 1.0)
	want0 := 1 + gamma*(2+gamma*3)
	if math.Abs(s.Ret[0]-want0) > 1e-12 {
		t.Errorf("MC return %v want %v", s.Ret[0], want0)
	}
}

func TestRolloutSteps(t *testing.T) {
	r := &Rollout{Segments: []*Segment{{}, {}}}
	r.Segments[0].Push([]float64{0}, 0, 0, 0, 0, false, false, 0)
	r.Segments[0].Push([]float64{0}, 0, 0, 0, 0, true, false, 0)
	r.Segments[1].Push([]float64{0}, 0, 0, 0, 0, true, false, 0)
	if r.Steps() != 3 {
		t.Errorf("Steps=%d want 3", r.Steps())
	}
	r.ComputeGAE(0.9, 0.9)
	if r.Segments[1].Adv == nil {
		t.Error("ComputeGAE did not reach all segments")
	}
}

func TestReplayBufferWrapAround(t *testing.T) {
	b := NewReplayBuffer(3)
	for i := 0; i < 5; i++ {
		b.Add(Transition{Reward: float64(i)})
	}
	if b.Len() != 3 || b.Cap() != 3 {
		t.Fatalf("len=%d cap=%d", b.Len(), b.Cap())
	}
	// Only rewards 2,3,4 can remain.
	rng := rand.New(rand.NewPCG(1, 2))
	for i := 0; i < 100; i++ {
		s := b.Sample(rng, 1, nil)
		if s[0].Reward < 2 {
			t.Fatalf("evicted transition sampled: %v", s[0].Reward)
		}
	}
}

func TestReplayBufferProperty(t *testing.T) {
	f := func(adds uint8, capRaw uint8) bool {
		capacity := int(capRaw%32) + 1
		b := NewReplayBuffer(capacity)
		for i := 0; i < int(adds); i++ {
			b.Add(Transition{Reward: float64(i)})
		}
		want := int(adds)
		if want > capacity {
			want = capacity
		}
		return b.Len() == want
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestReplayBufferSampleSize(t *testing.T) {
	b := NewReplayBuffer(10)
	b.Add(Transition{})
	rng := rand.New(rand.NewPCG(3, 4))
	s := b.Sample(rng, 7, nil)
	if len(s) != 7 {
		t.Fatalf("sample len=%d want 7", len(s))
	}
	dst := make([]Transition, 0, 7)
	s2 := b.Sample(rng, 5, dst[:5])
	if len(s2) != 5 {
		t.Fatal("dst reuse failed")
	}
}

func TestReplayBufferPanics(t *testing.T) {
	func() {
		defer func() {
			if recover() == nil {
				t.Error("empty sample should panic")
			}
		}()
		NewReplayBuffer(2).Sample(rand.New(rand.NewPCG(1, 1)), 1, nil)
	}()
	func() {
		defer func() {
			if recover() == nil {
				t.Error("zero capacity should panic")
			}
		}()
		NewReplayBuffer(0)
	}()
}

func TestEvaluate(t *testing.T) {
	env := toy.NewChain(7, 5)
	right := PolicyFunc(func([]float64) []float64 { return []float64{1} })
	res := Evaluate(env, right, 10)
	if res.MeanReturn != 1 {
		t.Fatalf("always-right on chain: %v", res)
	}
	if res.Episodes != 10 || res.MeanLength != 3 {
		t.Fatalf("stats wrong: %+v", res)
	}
	if res.String() == "" {
		t.Fatal("String empty")
	}
	var _ gym.Env = env
}
