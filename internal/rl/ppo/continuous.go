package ppo

import (
	"math"
	"math/rand/v2"

	"rldecide/internal/gym"
	"rldecide/internal/mathx"
	"rldecide/internal/nn"
	"rldecide/internal/tensor"
)

// Continuous is the Gaussian-policy variant of PPO for Box action spaces
// (the airdrop simulator's continuous brake-deflection mode). The actor
// MLP outputs the action mean; a state-independent learnable log-std
// vector sets the exploration scale, as in the reference implementations.
type Continuous struct {
	Cfg    Config
	ObsDim int
	ActDim int

	Actor  *nn.MLP
	Critic *nn.MLP
	LogStd []float64

	logStdGrad []float64
	optActor   *nn.Adam
	optCritic  *nn.Adam
	optLogStd  *nn.Adam
	rng        *rand.Rand
	updates    int
}

// NewContinuous returns a continuous-action PPO learner.
func NewContinuous(cfg Config, obsDim, actDim int, seed uint64) *Continuous {
	cfg = cfg.WithDefaults()
	rng := mathx.NewRand(seed)
	actorSizes := append(append([]int{obsDim}, cfg.Hidden...), actDim)
	criticSizes := append(append([]int{obsDim}, cfg.Hidden...), 1)
	p := &Continuous{
		Cfg:        cfg,
		ObsDim:     obsDim,
		ActDim:     actDim,
		Actor:      nn.NewMLP(rng, actorSizes, nn.Tanh{}, 0.01),
		Critic:     nn.NewMLP(rng, criticSizes, nn.Tanh{}, 1.0),
		LogStd:     make([]float64, actDim),
		logStdGrad: make([]float64, actDim),
		rng:        rng,
	}
	for i := range p.LogStd {
		p.LogStd[i] = -0.5
	}
	p.optActor = nn.NewAdam(p.Actor.Params(), cfg.LR)
	p.optCritic = nn.NewAdam(p.Critic.Params(), cfg.LR)
	p.optLogStd = nn.NewAdam([]nn.Param{{Name: "logstd", Data: p.LogStd, Grad: p.logStdGrad}}, cfg.LR)
	return p
}

// Act samples an action, returning it with its log-probability and the
// value estimate.
func (p *Continuous) Act(obs []float64) (action []float64, logp, value float64) {
	mean := p.Actor.Forward1(obs)
	action = nn.GaussianSample(p.rng, mean, p.LogStd, nil)
	logp = nn.GaussianLogProb(action, mean, p.LogStd)
	value = p.Critic.Forward1(obs)[0]
	return action, logp, value
}

// ActMean returns the policy mean (deterministic evaluation).
func (p *Continuous) ActMean(obs []float64) []float64 {
	return p.Actor.Forward1(obs)
}

// Value returns the critic estimate for obs.
func (p *Continuous) Value(obs []float64) float64 { return p.Critic.Forward1(obs)[0] }

// Updates returns the number of Update calls so far.
func (p *Continuous) Updates() int { return p.updates }

// ContStep is one recorded step of a continuous rollout.
type ContStep struct {
	Obs     []float64
	Act     []float64
	LogP    float64
	Val     float64
	Rew     float64
	Done    bool
	Trunc   bool
	NextVal float64
}

// ContRollout is an on-policy batch for the continuous learner.
type ContRollout struct {
	Steps []ContStep
}

// CollectContinuous gathers nSteps per environment from vec under p's
// stochastic policy, with the same GAE bookkeeping as the discrete
// collector.
func CollectContinuous(vec *gym.VecEnv, p *Continuous, nSteps int) *ContRollout {
	n := vec.N()
	obs := vec.Reset()
	actions := make([][]float64, n)

	// Per-env chains: the GAE λ-recursion must never cross environments,
	// so each env's steps stay contiguous and the chains are concatenated
	// at the end (every chain ends in a Done or Trunc boundary).
	chains := make([][]ContStep, n)

	type pending struct {
		step ContStep
		has  bool
	}
	pend := make([]pending, n)

	for t := 0; t < nSteps; t++ {
		vals := make([]float64, n)
		logps := make([]float64, n)
		acts := make([][]float64, n)
		for i := 0; i < n; i++ {
			a, lp, v := p.Act(obs[i])
			acts[i], logps[i], vals[i] = a, lp, v
			actions[i] = a
			if pend[i].has {
				pend[i].step.NextVal = v
				chains[i] = append(chains[i], pend[i].step)
				pend[i].has = false
			}
		}
		steps := vec.Step(actions)
		for i, s := range steps {
			st := ContStep{
				Obs: obs[i], Act: acts[i], LogP: logps[i], Val: vals[i],
				Rew: s.Reward, Done: s.Done && !s.Truncated,
			}
			if s.Done {
				if s.Truncated {
					st.Trunc = true
					st.NextVal = p.Value(s.FinalObs)
				}
				chains[i] = append(chains[i], st)
			} else {
				pend[i] = pending{step: st, has: true}
			}
			obs[i] = s.Obs
		}
	}
	out := &ContRollout{}
	for i := range chains {
		if pend[i].has {
			st := pend[i].step
			st.Trunc = true
			st.NextVal = p.Value(obs[i])
			chains[i] = append(chains[i], st)
		}
		out.Steps = append(out.Steps, chains[i]...)
	}
	return out
}

// computeGAE fills advantages and returns. Steps are laid out as
// concatenated per-env chains whose final entry always carries a Done or
// Trunc boundary, so the single backward λ-recursion (which resets at
// every boundary) never leaks across environments.
func (r *ContRollout) computeGAE(gamma, lambda float64) (adv, ret []float64) {
	n := len(r.Steps)
	adv = make([]float64, n)
	ret = make([]float64, n)
	next := 0.0
	for t := n - 1; t >= 0; t-- {
		s := r.Steps[t]
		nextVal := s.NextVal
		if s.Done {
			nextVal = 0
		}
		delta := s.Rew + gamma*nextVal - s.Val
		if s.Done || s.Trunc {
			next = 0
		}
		adv[t] = delta + gamma*lambda*next
		next = adv[t]
		ret[t] = adv[t] + s.Val
	}
	return adv, ret
}

// Update performs one PPO update on a continuous rollout.
func (p *Continuous) Update(roll *ContRollout) Stats {
	n := len(roll.Steps)
	if n == 0 {
		return Stats{}
	}
	adv, ret := roll.computeGAE(p.Cfg.Gamma, p.Cfg.Lambda)
	if p.Cfg.NormAdv {
		m := mathx.Mean(adv)
		s := mathx.Std(adv)
		if s < 1e-8 {
			s = 1
		}
		for i := range adv {
			adv[i] = (adv[i] - m) / s
		}
	}

	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	mb := p.Cfg.Minibatch
	if mb > n {
		mb = n
	}
	var stats Stats
	stats.Steps = n
	batches := 0
	for ep := 0; ep < p.Cfg.Epochs; ep++ {
		p.rng.Shuffle(n, func(i, j int) { idx[i], idx[j] = idx[j], idx[i] })
		for start := 0; start < n; start += mb {
			end := start + mb
			if end > n {
				end = n
			}
			s := p.updateMinibatch(roll, adv, ret, idx[start:end])
			stats.PolicyLoss += s.PolicyLoss
			stats.ValueLoss += s.ValueLoss
			stats.Entropy += s.Entropy
			stats.ClipFrac += s.ClipFrac
			batches++
		}
	}
	if batches > 0 {
		stats.PolicyLoss /= float64(batches)
		stats.ValueLoss /= float64(batches)
		stats.Entropy /= float64(batches)
		stats.ClipFrac /= float64(batches)
	}
	p.updates++
	return stats
}

func (p *Continuous) updateMinibatch(roll *ContRollout, adv, ret []float64, b []int) Stats {
	bs := len(b)
	x := tensor.New(bs, p.ObsDim)
	for i, j := range b {
		copy(x.Row(i), roll.Steps[j].Obs)
	}

	p.Actor.ZeroGrad()
	for i := range p.logStdGrad {
		p.logStdGrad[i] = 0
	}
	means := p.Actor.Forward(x)
	dmeans := tensor.New(bs, p.ActDim)

	var polLoss, entSum, clipped float64
	for i, j := range b {
		s := roll.Steps[j]
		mean := means.Row(i)
		newLogp := nn.GaussianLogProb(s.Act, mean, p.LogStd)
		ratio := math.Exp(newLogp - s.LogP)
		adval := adv[j]

		surr1 := ratio * adval
		surr2 := mathx.Clip(ratio, 1-p.Cfg.ClipEps, 1+p.Cfg.ClipEps) * adval
		polLoss += -math.Min(surr1, surr2)

		var dLdLogp float64
		switch {
		case surr1 <= surr2:
			dLdLogp = -adval * ratio
		case ratio > 1-p.Cfg.ClipEps && ratio < 1+p.Cfg.ClipEps:
			dLdLogp = -adval * ratio
		default:
			clipped++
		}

		entSum += nn.GaussianEntropy(p.LogStd)
		drow := dmeans.Row(i)
		for k := 0; k < p.ActDim; k++ {
			std := math.Exp(p.LogStd[k])
			z := (s.Act[k] - mean[k]) / std
			// dlogp/dmean = z/std; dlogp/dlogstd = z^2 - 1;
			// dH/dlogstd = 1.
			drow[k] = dLdLogp * (z / std) / float64(bs)
			p.logStdGrad[k] += (dLdLogp*(z*z-1) - p.Cfg.EntCoef) / float64(bs)
		}
	}
	p.Actor.Backward(dmeans)
	nn.ClipGrads(p.Actor.Params(), p.Cfg.MaxGrad)
	p.optActor.Step()
	p.optLogStd.Step()
	// Keep exploration bounded.
	for i := range p.LogStd {
		p.LogStd[i] = mathx.Clip(p.LogStd[i], -4, 1)
	}

	p.Critic.ZeroGrad()
	values := p.Critic.Forward(x)
	dvals := tensor.New(bs, 1)
	var vfLoss float64
	for i, j := range b {
		d := values.At(i, 0) - ret[j]
		vfLoss += 0.5 * d * d
		dvals.Set(i, 0, p.Cfg.VfCoef*d/float64(bs))
	}
	p.Critic.Backward(dvals)
	nn.ClipGrads(p.Critic.Params(), p.Cfg.MaxGrad)
	p.optCritic.Step()

	return Stats{
		PolicyLoss: polLoss / float64(bs),
		ValueLoss:  vfLoss / float64(bs),
		Entropy:    entSum / float64(bs),
		ClipFrac:   clipped / float64(bs),
	}
}
