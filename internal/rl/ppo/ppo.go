// Package ppo implements Proximal Policy Optimization (Schulman et al.,
// 2017) with a categorical policy: clipped surrogate objective, generalized
// advantage estimation, minibatched multi-epoch updates, entropy bonus and
// global gradient clipping. The learner is separable from collection — the
// distributed backends ship policy weights to remote actors and feed
// collected rollouts back — which is exactly the architecture split the
// paper's RLlib configurations exercise.
package ppo

import (
	"math"
	"math/rand/v2"

	"rldecide/internal/mathx"
	"rldecide/internal/nn"
	"rldecide/internal/rl"
	"rldecide/internal/tensor"
)

// Config holds PPO hyperparameters. Zero fields are replaced by defaults.
type Config struct {
	Hidden     []int   // hidden layer sizes (default [64, 64])
	LR         float64 // Adam learning rate (default 3e-4)
	Gamma      float64 // discount (default 0.99)
	Lambda     float64 // GAE λ (default 0.95)
	ClipEps    float64 // surrogate clip ε (default 0.2)
	Epochs     int     // update epochs per rollout (default 8)
	Minibatch  int     // minibatch size (default 128)
	EntCoef    float64 // entropy bonus coefficient (default 0.01)
	VfCoef     float64 // value-loss coefficient (default 0.5)
	MaxGrad    float64 // global gradient-norm clip (default 0.5)
	NormAdv    bool    // normalize advantages per update (default true)
	normAdvSet bool
}

// WithDefaults returns cfg with zero fields filled in.
func (c Config) WithDefaults() Config {
	if len(c.Hidden) == 0 {
		c.Hidden = []int{64, 64}
	}
	if c.LR == 0 {
		c.LR = 3e-4
	}
	if c.Gamma == 0 {
		c.Gamma = 0.99
	}
	if c.Lambda == 0 {
		c.Lambda = 0.95
	}
	if c.ClipEps == 0 {
		c.ClipEps = 0.2
	}
	if c.Epochs == 0 {
		c.Epochs = 8
	}
	if c.Minibatch == 0 {
		c.Minibatch = 128
	}
	if c.EntCoef == 0 {
		c.EntCoef = 0.01
	}
	if c.VfCoef == 0 {
		c.VfCoef = 0.5
	}
	if c.MaxGrad == 0 {
		c.MaxGrad = 0.5
	}
	if !c.normAdvSet {
		c.NormAdv = true
	}
	return c
}

// DisableAdvNorm returns a copy of the config with advantage normalization
// off (and marks the field as explicitly set).
func (c Config) DisableAdvNorm() Config {
	c.NormAdv = false
	c.normAdvSet = true
	return c
}

// Stats reports one update's diagnostics.
type Stats struct {
	PolicyLoss float64
	ValueLoss  float64
	Entropy    float64
	ClipFrac   float64
	GradNorm   float64
	Steps      int
}

// PPO is the learner. It is not safe for concurrent use.
type PPO struct {
	Cfg      Config
	ObsDim   int
	NActions int

	Actor  *nn.MLP
	Critic *nn.MLP

	optActor  *nn.Adam
	optCritic *nn.Adam
	rng       *rand.Rand

	updates int

	// Update scratch, reused across minibatches and updates so the
	// steady-state training loop does not allocate.
	scrX, scrDlogits, scrDvals *tensor.Mat
	scrProbs, scrLogProbs      []float64
	flatObs                    [][]float64
	flatActs                   []int
	flatLogp, flatAdv, flatRet []float64
	idx                        []int
}

// New returns a PPO learner for obsDim observations and nActions discrete
// actions.
func New(cfg Config, obsDim, nActions int, seed uint64) *PPO {
	cfg = cfg.WithDefaults()
	rng := mathx.NewRand(seed)
	actorSizes := append(append([]int{obsDim}, cfg.Hidden...), nActions)
	criticSizes := append(append([]int{obsDim}, cfg.Hidden...), 1)
	p := &PPO{
		Cfg:      cfg,
		ObsDim:   obsDim,
		NActions: nActions,
		Actor:    nn.NewMLP(rng, actorSizes, nn.Tanh{}, 0.01),
		Critic:   nn.NewMLP(rng, criticSizes, nn.Tanh{}, 1.0),
		rng:      rng,
	}
	p.optActor = nn.NewAdam(p.Actor.Params(), cfg.LR)
	p.optCritic = nn.NewAdam(p.Critic.Params(), cfg.LR)
	return p
}

// Act samples an action for obs from the current policy, returning the
// action index, its log-probability and the critic's value estimate.
func (p *PPO) Act(obs []float64) (action int, logp, value float64) {
	logits := p.Actor.Forward1(obs)
	action = nn.CategoricalSample(p.rng, logits)
	logp = nn.CategoricalLogProb(logits, action)
	value = p.Critic.Forward1(obs)[0]
	return action, logp, value
}

// ActGreedy returns the mode of the policy (for evaluation).
func (p *PPO) ActGreedy(obs []float64) int {
	return nn.Argmax(p.Actor.Forward1(obs))
}

// Value returns the critic's estimate for obs.
func (p *PPO) Value(obs []float64) float64 {
	return p.Critic.Forward1(obs)[0]
}

// Policy returns an rl.Policy view of the greedy policy.
func (p *PPO) Policy() rl.Policy {
	return rl.PolicyFunc(func(obs []float64) []float64 {
		return []float64{float64(p.ActGreedy(obs))}
	})
}

// StochasticPolicy returns an rl.Policy that samples from the policy.
func (p *PPO) StochasticPolicy() rl.Policy {
	return rl.PolicyFunc(func(obs []float64) []float64 {
		a, _, _ := p.Act(obs)
		return []float64{float64(a)}
	})
}

// Weights exports actor+critic weights as one flat slice (the distributed
// backends ship this to remote workers).
func (p *PPO) Weights() []float64 {
	return append(p.Actor.Weights(), p.Critic.Weights()...)
}

// SetWeights loads a slice produced by Weights.
func (p *PPO) SetWeights(w []float64) {
	na := p.Actor.NumParams()
	p.Actor.SetWeights(w[:na])
	p.Critic.SetWeights(w[na:])
}

// NumWeights returns the flat weight count (for transfer-size accounting).
func (p *PPO) NumWeights() int { return p.Actor.NumParams() + p.Critic.NumParams() }

// Updates returns the number of Update calls so far.
func (p *PPO) Updates() int { return p.updates }

// SetLR changes the optimizer learning rate (used by trainers for linear
// decay schedules).
func (p *PPO) SetLR(lr float64) {
	p.optActor.LR = lr
	p.optCritic.LR = lr
}

// SetEntCoef changes the entropy-bonus coefficient (used by trainers for
// annealing schedules).
func (p *PPO) SetEntCoef(c float64) { p.Cfg.EntCoef = c }

// Update performs one PPO update from an on-policy rollout. The rollout's
// log-probs and values must have been recorded at collection time; GAE is
// (re)computed here with the learner's γ and λ.
func (p *PPO) Update(rollout *rl.Rollout) Stats {
	rollout.ComputeGAE(p.Cfg.Gamma, p.Cfg.Lambda)

	// Flatten the rollout into reused scratch.
	obs := p.flatObs[:0]
	acts := p.flatActs[:0]
	logp := p.flatLogp[:0]
	adv := p.flatAdv[:0]
	ret := p.flatRet[:0]
	for _, seg := range rollout.Segments {
		obs = append(obs, seg.Obs...)
		acts = append(acts, seg.Act...)
		logp = append(logp, seg.LogP...)
		adv = append(adv, seg.Adv...)
		ret = append(ret, seg.Ret...)
	}
	p.flatObs, p.flatActs, p.flatLogp, p.flatAdv, p.flatRet = obs, acts, logp, adv, ret
	n := len(obs)
	if n == 0 {
		return Stats{}
	}
	if p.Cfg.NormAdv {
		m := mathx.Mean(adv)
		s := mathx.Std(adv)
		if s < 1e-8 {
			s = 1
		}
		for i := range adv {
			adv[i] = (adv[i] - m) / s
		}
	}

	if cap(p.idx) < n {
		p.idx = make([]int, n)
	}
	idx := p.idx[:n]
	for i := range idx {
		idx[i] = i
	}

	var stats Stats
	stats.Steps = n
	batches := 0

	mb := p.Cfg.Minibatch
	if mb > n {
		mb = n
	}
	for ep := 0; ep < p.Cfg.Epochs; ep++ {
		p.rng.Shuffle(n, func(i, j int) { idx[i], idx[j] = idx[j], idx[i] })
		for start := 0; start < n; start += mb {
			end := start + mb
			if end > n {
				end = n
			}
			b := idx[start:end]
			s := p.updateMinibatch(obs, acts, logp, adv, ret, b)
			stats.PolicyLoss += s.PolicyLoss
			stats.ValueLoss += s.ValueLoss
			stats.Entropy += s.Entropy
			stats.ClipFrac += s.ClipFrac
			stats.GradNorm += s.GradNorm
			batches++
		}
	}
	if batches > 0 {
		stats.PolicyLoss /= float64(batches)
		stats.ValueLoss /= float64(batches)
		stats.Entropy /= float64(batches)
		stats.ClipFrac /= float64(batches)
		stats.GradNorm /= float64(batches)
	}
	p.updates++
	return stats
}

func (p *PPO) updateMinibatch(obs [][]float64, acts []int, oldLogp, adv, ret []float64, b []int) Stats {
	bs := len(b)
	p.scrX = tensor.Ensure(p.scrX, bs, p.ObsDim)
	x := p.scrX
	for i, j := range b {
		copy(x.Row(i), obs[j])
	}

	// ---- Actor ----
	p.Actor.ZeroGrad()
	logits := p.Actor.Forward(x)
	p.scrDlogits = tensor.Ensure(p.scrDlogits, bs, p.NActions)
	dlogits := p.scrDlogits

	var polLoss, entSum, clipped float64
	if p.scrProbs == nil {
		p.scrProbs = make([]float64, p.NActions)
		p.scrLogProbs = make([]float64, p.NActions)
	}
	probs := p.scrProbs
	logProbs := p.scrLogProbs
	for i, j := range b {
		row := logits.Row(i)
		nn.Softmax(row, probs)
		nn.LogSoftmax(row, logProbs)
		a := acts[j]
		newLogp := logProbs[a]
		ratio := math.Exp(newLogp - oldLogp[j])
		adval := adv[j]

		surr1 := ratio * adval
		surr2 := mathx.Clip(ratio, 1-p.Cfg.ClipEps, 1+p.Cfg.ClipEps) * adval
		polLoss += -math.Min(surr1, surr2)

		// Gradient of the clipped surrogate w.r.t. newLogp.
		var dLdLogp float64
		if surr1 <= surr2 {
			dLdLogp = -adval * ratio
		} else if ratio > 1-p.Cfg.ClipEps && ratio < 1+p.Cfg.ClipEps {
			dLdLogp = -adval * ratio
		} else {
			dLdLogp = 0
			clipped++
		}

		ent := nn.CategoricalEntropy(row)
		entSum += ent

		// dlogits = dLdLogp * (1{j=a} − p) − entCoef * dH/dlogits,
		// averaged over the minibatch.
		drow := dlogits.Row(i)
		for k := 0; k < p.NActions; k++ {
			ind := 0.0
			if k == a {
				ind = 1
			}
			dPol := dLdLogp * (ind - probs[k])
			dEnt := -probs[k] * (logProbs[k] + ent) // dH/dlogit_k
			drow[k] = (dPol - p.Cfg.EntCoef*dEnt) / float64(bs)
		}
	}
	p.Actor.Backward(dlogits)
	gnA := nn.ClipGrads(p.Actor.Params(), p.Cfg.MaxGrad)
	p.optActor.Step()

	// ---- Critic ----
	p.Critic.ZeroGrad()
	values := p.Critic.Forward(x)
	p.scrDvals = tensor.Ensure(p.scrDvals, bs, 1)
	dvals := p.scrDvals
	var vfLoss float64
	for i, j := range b {
		d := values.At(i, 0) - ret[j]
		vfLoss += 0.5 * d * d
		dvals.Set(i, 0, p.Cfg.VfCoef*d/float64(bs))
	}
	p.Critic.Backward(dvals)
	gnC := nn.ClipGrads(p.Critic.Params(), p.Cfg.MaxGrad)
	p.optCritic.Step()

	return Stats{
		PolicyLoss: polLoss / float64(bs),
		ValueLoss:  vfLoss / float64(bs),
		Entropy:    entSum / float64(bs),
		ClipFrac:   clipped / float64(bs),
		GradNorm:   gnA + gnC,
	}
}
