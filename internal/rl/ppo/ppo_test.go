package ppo

import (
	"testing"

	"rldecide/internal/gym"
	"rldecide/internal/gym/toy"
	"rldecide/internal/mathx"
	"rldecide/internal/rl"
)

func trainOn(t *testing.T, maker gym.EnvMaker, nEnvs, nSteps, iters int, seed uint64) (*PPO, *Collector) {
	t.Helper()
	seeder := mathx.NewSeeder(seed)
	vec := gym.NewVec(maker, nEnvs, seeder, false)
	p := New(Config{}, vec.ObservationSpace().Dim(), actionCount(vec.ActionSpace()), seeder.Next())
	col := NewCollector(vec)
	for i := 0; i < iters; i++ {
		roll := col.Collect(p, nSteps)
		p.Update(roll)
	}
	return p, col
}

func actionCount(s gym.Space) int {
	d, ok := s.(gym.Discrete)
	if !ok {
		panic("test: discrete space expected")
	}
	return d.N
}

func TestPPOLearnsChain(t *testing.T) {
	p, _ := trainOn(t, toy.MakeChain(7), 4, 64, 25, 11)
	env := toy.NewChain(7, 99)
	res := rl.Evaluate(env, p.Policy(), 20)
	if res.MeanReturn < 0.9 {
		t.Fatalf("PPO failed to learn the chain: %v", res)
	}
}

func TestPPOLearnsSteer1D(t *testing.T) {
	if testing.Short() {
		t.Skip("training test")
	}
	p, col := trainOn(t, toy.MakeSteer1D(), 8, 128, 40, 21)
	env := toy.NewSteer1D(1234)
	res := rl.Evaluate(env, p.Policy(), 40)
	// Random policy scores around -4; a trained policy should land near 0.
	if res.MeanReturn < -1.2 {
		t.Fatalf("PPO failed to learn steering: %v", res)
	}
	if col.EpisodeCount() == 0 && len(col.TakeEpisodes()) == 0 {
		// episodes were consumed during training checks; fine
		_ = col
	}
}

func TestDeterministicTraining(t *testing.T) {
	a, _ := trainOn(t, toy.MakeChain(5), 2, 32, 3, 7)
	b, _ := trainOn(t, toy.MakeChain(5), 2, 32, 3, 7)
	wa, wb := a.Weights(), b.Weights()
	for i := range wa {
		if wa[i] != wb[i] {
			t.Fatal("same seed produced different trained weights")
		}
	}
}

func TestWeightsRoundTrip(t *testing.T) {
	p := New(Config{}, 3, 2, 1)
	q := New(Config{}, 3, 2, 2)
	q.SetWeights(p.Weights())
	obs := []float64{0.1, -0.2, 0.3}
	if p.Value(obs) != q.Value(obs) {
		t.Fatal("critic weights not transferred")
	}
	if p.ActGreedy(obs) != q.ActGreedy(obs) {
		t.Fatal("actor weights not transferred")
	}
	if p.NumWeights() != len(p.Weights()) {
		t.Fatal("NumWeights mismatch")
	}
}

func TestUpdateStats(t *testing.T) {
	seeder := mathx.NewSeeder(3)
	vec := gym.NewVec(toy.MakeChain(7), 2, seeder, false)
	p := New(Config{}, vec.ObservationSpace().Dim(), 2, seeder.Next())
	col := NewCollector(vec)
	roll := col.Collect(p, 32)
	if roll.Steps() != 64 {
		t.Fatalf("rollout steps=%d want 64", roll.Steps())
	}
	st := p.Update(roll)
	if st.Steps != 64 {
		t.Fatalf("stats steps=%d", st.Steps)
	}
	if st.Entropy <= 0 {
		t.Fatalf("entropy should be positive early: %v", st.Entropy)
	}
	if p.Updates() != 1 {
		t.Fatal("update counter wrong")
	}
	eps := col.TakeEpisodes()
	if len(eps) == 0 {
		t.Fatal("no episodes recorded on chain in 32 steps")
	}
	if col.EpisodeCount() != 0 {
		t.Fatal("TakeEpisodes did not clear")
	}
}

func TestEmptyRolloutUpdate(t *testing.T) {
	p := New(Config{}, 2, 2, 1)
	st := p.Update(&rl.Rollout{})
	if st.Steps != 0 {
		t.Fatal("empty rollout should be a no-op")
	}
}

func TestConfigDefaults(t *testing.T) {
	c := Config{}.WithDefaults()
	if c.LR != 3e-4 || c.Gamma != 0.99 || !c.NormAdv || c.Epochs != 8 {
		t.Fatalf("defaults wrong: %+v", c)
	}
	d := Config{}.DisableAdvNorm().WithDefaults()
	if d.NormAdv {
		t.Fatal("DisableAdvNorm ignored")
	}
}

func TestStochasticPolicyActs(t *testing.T) {
	p := New(Config{}, 2, 3, 5)
	a := p.StochasticPolicy().Act([]float64{0.1, 0.2})
	if len(a) != 1 || a[0] < 0 || a[0] > 2 {
		t.Fatalf("bad action %v", a)
	}
}
