package ppo

import (
	"math"
	"testing"

	"rldecide/internal/gym"
	"rldecide/internal/gym/toy"
	"rldecide/internal/mathx"
	"rldecide/internal/rl"
)

func TestContinuousActShapes(t *testing.T) {
	p := NewContinuous(Config{}, 3, 2, 1)
	a, logp, v := p.Act([]float64{0.1, 0.2, 0.3})
	if len(a) != 2 {
		t.Fatalf("action dim %d want 2", len(a))
	}
	if math.IsNaN(logp) || math.IsNaN(v) {
		t.Fatal("NaN outputs")
	}
	if len(p.ActMean([]float64{0, 0, 0})) != 2 {
		t.Fatal("mean dim wrong")
	}
	if p.Value([]float64{0, 0, 0}) != v {
		// Same obs would give same value; different obs not asserted.
		_ = v
	}
}

func TestContinuousGAEBoundaries(t *testing.T) {
	// Hand-built rollout: two chains, each ending in a boundary; the
	// recursion must not leak from chain 2 into chain 1.
	roll := &ContRollout{Steps: []ContStep{
		{Val: 1, Rew: 1, NextVal: 2},                  // chain 1 step
		{Val: 2, Rew: 0, Done: true, NextVal: 99},     // chain 1 terminal
		{Val: 0.5, Rew: 1, Trunc: true, NextVal: 1.0}, // chain 2 truncated
	}}
	adv, ret := roll.computeGAE(0.5, 0.5)
	// t=2: delta = 1 + 0.5*1 - 0.5 = 1.0; boundary → adv = 1.0
	if math.Abs(adv[2]-1.0) > 1e-12 {
		t.Fatalf("adv[2]=%v", adv[2])
	}
	// t=1: terminal: delta = 0 + 0 - 2 = -2 (NextVal ignored); adv=-2.
	if math.Abs(adv[1]-(-2)) > 1e-12 {
		t.Fatalf("adv[1]=%v", adv[1])
	}
	// t=0: delta = 1 + 0.5*2 - 1 = 1; chain continues: adv = 1 + 0.25*(-2) = 0.5.
	if math.Abs(adv[0]-0.5) > 1e-12 {
		t.Fatalf("adv[0]=%v", adv[0])
	}
	if math.Abs(ret[0]-1.5) > 1e-12 {
		t.Fatalf("ret[0]=%v", ret[0])
	}
}

func TestContinuousLearnsSteering(t *testing.T) {
	if testing.Short() {
		t.Skip("training test")
	}
	seeder := mathx.NewSeeder(5)
	vec := gym.NewVec(toy.MakeSteer1DC(), 8, seeder, false)
	p := NewContinuous(Config{}, vec.ObservationSpace().Dim(), 1, seeder.Next())
	for it := 0; it < 40; it++ {
		roll := CollectContinuous(vec, p, 128)
		p.Update(roll)
	}
	env := toy.NewSteer1DC(999)
	res := rl.Evaluate(env, rl.PolicyFunc(func(obs []float64) []float64 {
		return p.ActMean(obs)
	}), 40)
	// Random/zero policies land around -4; the mean policy should get
	// close to the target.
	if res.MeanReturn < -1.0 {
		t.Fatalf("continuous PPO failed to learn: %v", res)
	}
	if p.Updates() != 40 {
		t.Fatalf("updates=%d", p.Updates())
	}
}

func TestContinuousLogStdBounded(t *testing.T) {
	seeder := mathx.NewSeeder(9)
	vec := gym.NewVec(toy.MakeSteer1DC(), 2, seeder, false)
	p := NewContinuous(Config{LR: 0.05}, vec.ObservationSpace().Dim(), 1, seeder.Next())
	for it := 0; it < 5; it++ {
		p.Update(CollectContinuous(vec, p, 64))
	}
	for _, ls := range p.LogStd {
		if ls < -4-1e-9 || ls > 1+1e-9 {
			t.Fatalf("log-std escaped bounds: %v", ls)
		}
	}
}

func TestContinuousEmptyUpdate(t *testing.T) {
	p := NewContinuous(Config{}, 2, 1, 3)
	if st := p.Update(&ContRollout{}); st.Steps != 0 {
		t.Fatal("empty rollout should no-op")
	}
}

func TestContinuousOnAirdropInterface(t *testing.T) {
	// The airdrop env's continuous mode must be drivable end to end.
	// (Uses the toy continuous env's maker shape; airdrop continuous mode
	// is exercised in its own package tests.)
	mk := toy.MakeSteer1DC()
	env := mk(4)
	if _, ok := env.ActionSpace().(gym.Box); !ok {
		t.Fatal("continuous env must expose Box actions")
	}
}
