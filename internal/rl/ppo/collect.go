package ppo

import (
	"rldecide/internal/gym"
	"rldecide/internal/rl"
)

// Collector gathers fixed-size on-policy rollouts from a vectorized
// environment, carrying episode state across rollouts. The policy used to
// act may be the learner itself or a (stale) worker copy — the recorded
// log-probs and values always come from the acting policy, as PPO requires.
//
// All per-step state (current observations, the deferred pending step) is
// copied into collector-owned buffers, so environments are free to reuse
// their observation storage (the gym.StepResult contract), and repeated
// Collect calls reuse segments and scratch — steady-state collection does
// not allocate.
type Collector struct {
	Vec *gym.VecEnv

	obs     [][]float64 // collector-owned copy of each env's current obs
	pendObs [][]float64 // collector-owned obs of the deferred pending step
	pending []pendingStep
	has     []bool
	epRet   []float64
	epLen   []int

	segs    []*rl.Segment
	actions [][]float64
	acts    []int
	logps   []float64
	vals    []float64

	episodes []float64
	epLens   []int
}

type pendingStep struct {
	obs   []float64
	act   int
	logp  float64
	val   float64
	rew   float64
	done  bool
	trunc bool
	next  float64
}

// NewCollector resets vec and prepares per-env episode state.
func NewCollector(vec *gym.VecEnv) *Collector {
	n := vec.N()
	c := &Collector{
		Vec:     vec,
		obs:     make([][]float64, n),
		pendObs: make([][]float64, n),
		pending: make([]pendingStep, n),
		has:     make([]bool, n),
		epRet:   make([]float64, n),
		epLen:   make([]int, n),
		segs:    make([]*rl.Segment, n),
		actions: make([][]float64, n),
		acts:    make([]int, n),
		logps:   make([]float64, n),
		vals:    make([]float64, n),
	}
	for i, o := range vec.Reset() {
		c.obs[i] = append([]float64(nil), o...)
		c.pendObs[i] = make([]float64, len(o))
		c.actions[i] = []float64{0}
		c.segs[i] = &rl.Segment{}
	}
	return c
}

// Collect advances every environment nSteps times under p's stochastic
// policy and returns the resulting rollout (one segment per environment,
// nSteps each). The rollout's segments are owned by the collector and
// reused by the next Collect call.
func (c *Collector) Collect(p *PPO, nSteps int) *rl.Rollout {
	n := c.Vec.N()
	obsDim := len(c.obs[0])
	for i := range c.segs {
		c.segs[i].Clear()
		c.segs[i].Reserve(nSteps, obsDim)
	}

	for t := 0; t < nSteps; t++ {
		for i := 0; i < n; i++ {
			a, lp, v := p.Act(c.obs[i])
			c.acts[i], c.logps[i], c.vals[i] = a, lp, v
			c.actions[i][0] = float64(a)
			// The value of this state is the successor value of the
			// pending (previous) step of the same env.
			if c.has[i] {
				c.pending[i].next = v
				c.segs[i].Push(c.pending[i].obs, c.pending[i].act, c.pending[i].logp,
					c.pending[i].val, c.pending[i].rew, c.pending[i].done,
					c.pending[i].trunc, c.pending[i].next)
				c.has[i] = false
			}
		}
		steps := c.Vec.Step(c.actions)
		for i := range steps {
			s := &steps[i]
			c.epRet[i] += s.Reward
			c.epLen[i]++
			// c.obs[i] still holds the pre-step observation (it is a
			// collector-owned copy, untouched by the env's Step).
			ps := pendingStep{
				obs:  c.obs[i],
				act:  c.acts[i],
				logp: c.logps[i],
				val:  c.vals[i],
				rew:  s.Reward,
				done: s.Done && !s.Truncated,
			}
			if s.Done {
				if s.Truncated {
					ps.trunc = true
					ps.next = p.Value(s.FinalObs)
				}
				c.segs[i].Push(ps.obs, ps.act, ps.logp, ps.val, ps.rew, ps.done, ps.trunc, ps.next)
				c.episodes = append(c.episodes, c.epRet[i])
				c.epLens = append(c.epLens, c.epLen[i])
				c.epRet[i] = 0
				c.epLen[i] = 0
			} else {
				// Deferred until the successor value is known: move the
				// pre-step obs into the pending buffer before c.obs[i] is
				// overwritten below.
				copy(c.pendObs[i], c.obs[i])
				ps.obs = c.pendObs[i]
				c.pending[i] = ps
				c.has[i] = true
			}
			copy(c.obs[i], s.Obs)
		}
	}
	// Bootstrap the still-pending steps with the value of the state the
	// rollout stopped in (treated as a truncation for GAE purposes).
	for i := 0; i < n; i++ {
		if c.has[i] {
			ps := c.pending[i]
			ps.trunc = true
			ps.next = p.Value(c.obs[i])
			c.segs[i].Push(ps.obs, ps.act, ps.logp, ps.val, ps.rew, ps.done, ps.trunc, ps.next)
			c.has[i] = false
		}
	}
	return &rl.Rollout{Segments: c.segs}
}

// TakeEpisodes returns the returns of episodes completed since the last
// call and clears the internal list.
func (c *Collector) TakeEpisodes() []float64 {
	out := c.episodes
	c.episodes = nil
	c.epLens = nil
	return out
}

// EpisodeCount returns the number of completed, not-yet-taken episodes.
func (c *Collector) EpisodeCount() int { return len(c.episodes) }
