package ppo

import (
	"rldecide/internal/gym"
	"rldecide/internal/rl"
)

// Collector gathers fixed-size on-policy rollouts from a vectorized
// environment, carrying episode state across rollouts. The policy used to
// act may be the learner itself or a (stale) worker copy — the recorded
// log-probs and values always come from the acting policy, as PPO requires.
type Collector struct {
	Vec *gym.VecEnv

	obs     [][]float64
	pending []pendingStep
	has     []bool
	epRet   []float64
	epLen   []int

	episodes []float64
	epLens   []int
}

type pendingStep struct {
	obs   []float64
	act   int
	logp  float64
	val   float64
	rew   float64
	done  bool
	trunc bool
	next  float64
}

// NewCollector resets vec and prepares per-env episode state.
func NewCollector(vec *gym.VecEnv) *Collector {
	c := &Collector{
		Vec:     vec,
		pending: make([]pendingStep, vec.N()),
		has:     make([]bool, vec.N()),
		epRet:   make([]float64, vec.N()),
		epLen:   make([]int, vec.N()),
	}
	c.obs = vec.Reset()
	return c
}

// Collect advances every environment nSteps times under p's stochastic
// policy and returns the resulting rollout (one segment per environment,
// nSteps each).
func (c *Collector) Collect(p *PPO, nSteps int) *rl.Rollout {
	n := c.Vec.N()
	segs := make([]*rl.Segment, n)
	for i := range segs {
		segs[i] = &rl.Segment{}
	}
	actions := make([][]float64, n)
	for i := range actions {
		actions[i] = []float64{0}
	}

	for t := 0; t < nSteps; t++ {
		acts := make([]int, n)
		logps := make([]float64, n)
		vals := make([]float64, n)
		for i := 0; i < n; i++ {
			a, lp, v := p.Act(c.obs[i])
			acts[i], logps[i], vals[i] = a, lp, v
			actions[i][0] = float64(a)
			// The value of this state is the successor value of the
			// pending (previous) step of the same env.
			if c.has[i] {
				c.pending[i].next = v
				segs[i].Push(c.pending[i].obs, c.pending[i].act, c.pending[i].logp,
					c.pending[i].val, c.pending[i].rew, c.pending[i].done,
					c.pending[i].trunc, c.pending[i].next)
				c.has[i] = false
			}
		}
		steps := c.Vec.Step(actions)
		for i, s := range steps {
			c.epRet[i] += s.Reward
			c.epLen[i]++
			ps := pendingStep{
				obs:  c.obs[i],
				act:  acts[i],
				logp: logps[i],
				val:  vals[i],
				rew:  s.Reward,
				done: s.Done && !s.Truncated,
			}
			if s.Done {
				if s.Truncated {
					ps.trunc = true
					ps.next = p.Value(s.FinalObs)
				}
				segs[i].Push(ps.obs, ps.act, ps.logp, ps.val, ps.rew, ps.done, ps.trunc, ps.next)
				c.episodes = append(c.episodes, c.epRet[i])
				c.epLens = append(c.epLens, c.epLen[i])
				c.epRet[i] = 0
				c.epLen[i] = 0
			} else {
				c.pending[i] = ps
				c.has[i] = true
			}
			c.obs[i] = s.Obs
		}
	}
	// Bootstrap the still-pending steps with the value of the state the
	// rollout stopped in (treated as a truncation for GAE purposes).
	for i := 0; i < n; i++ {
		if c.has[i] {
			ps := c.pending[i]
			ps.trunc = true
			ps.next = p.Value(c.obs[i])
			segs[i].Push(ps.obs, ps.act, ps.logp, ps.val, ps.rew, ps.done, ps.trunc, ps.next)
			c.has[i] = false
		}
	}
	return &rl.Rollout{Segments: segs}
}

// TakeEpisodes returns the returns of episodes completed since the last
// call and clears the internal list.
func (c *Collector) TakeEpisodes() []float64 {
	out := c.episodes
	c.episodes = nil
	c.epLens = nil
	return out
}

// EpisodeCount returns the number of completed, not-yet-taken episodes.
func (c *Collector) EpisodeCount() int { return len(c.episodes) }
