// Package search implements the exploratory methods of step (c) of the
// paper's methodology: Random Search (used in the paper's campaign), Grid
// Search, and a Tree-of-Parzen-Estimators sampler plus trial pruners in
// the style of the Hyperopt/Optuna frameworks the paper cites as the
// alternative implementation route.
package search

import (
	"math"
	"math/rand/v2"
	"sort"

	"rldecide/internal/param"
)

// Observation is the explorer-visible record of a finished trial: the
// configuration tried and the value of the objective the explorer
// optimizes (explorers are single-objective; multi-objective studies rank
// afterwards with Pareto tools).
type Observation struct {
	Assignment param.Assignment
	Objective  float64
	Maximize   bool
	Pruned     bool
	Failed     bool
}

// Explorer proposes the next learning configuration to evaluate.
type Explorer interface {
	// Name identifies the method.
	Name() string
	// Next returns the next assignment to try given the history, or
	// ok=false when the method is exhausted.
	//
	// Replay contract: Next must be a deterministic function of the rng
	// stream, the space, and the history it is shown — no hidden
	// randomness or wall-clock state. Campaign resume (core.Study.Resume)
	// relies on this: it re-drives a fresh explorer through the already
	// finished trial IDs with the original seed to restore the proposal
	// stream, then executes only the missing trials. History-independent
	// explorers (RandomSearch without Dedup, GridSearch) replay exactly;
	// history-dependent ones (TPE, Dedup) replay approximately because
	// the resumed history is shown all at once rather than incrementally.
	Next(rng *rand.Rand, space *param.Space, history []Observation) (param.Assignment, bool)
}

// HistoryFree is implemented by explorers whose Next ignores the history
// argument. Callers that build the observation list per proposal (an O(n)
// conversion, O(n²) over a campaign) may pass nil history when
// IgnoresHistory reports true. Whether an explorer is history-free can
// depend on its configuration (RandomSearch with Dedup reads history), so
// this is a method rather than a pure marker.
type HistoryFree interface {
	Explorer
	// IgnoresHistory reports whether this explorer instance never reads
	// the history passed to Next.
	IgnoresHistory() bool
}

// InPlace is implemented by explorers that can write their proposal into a
// caller-owned buffer. Callers that retain each proposal (core.Study keeps
// every trial's params) carve per-trial regions out of a slab and pass
// them as dst, eliminating the per-proposal allocation; the returned
// assignment may alias dst's backing array. NextInto must consume the rng
// stream exactly as Next does so replay is unaffected by which entry point
// drives the campaign.
type InPlace interface {
	Explorer
	// NextInto is Next writing into dst when capacity allows.
	NextInto(rng *rand.Rand, space *param.Space, history []Observation, dst param.Assignment) (param.Assignment, bool)
}

// RandomSearch samples uniform random configurations, optionally skipping
// duplicates.
type RandomSearch struct {
	// Dedup skips configurations already present in the history (up to
	// MaxRetries re-draws).
	Dedup      bool
	MaxRetries int // default 100
}

// Name implements Explorer.
func (RandomSearch) Name() string { return "random" }

// IgnoresHistory implements HistoryFree: plain random search never reads
// history; dedup does.
func (r RandomSearch) IgnoresHistory() bool { return !r.Dedup }

// Next implements Explorer.
func (r RandomSearch) Next(rng *rand.Rand, space *param.Space, history []Observation) (param.Assignment, bool) {
	return r.NextInto(rng, space, history, nil)
}

// NextInto implements InPlace.
func (r RandomSearch) NextInto(rng *rand.Rand, space *param.Space, history []Observation, dst param.Assignment) (param.Assignment, bool) {
	retries := r.MaxRetries
	if retries <= 0 {
		retries = 100
	}
	if !r.Dedup {
		return space.SampleInto(rng, dst), true
	}
	seen := make(map[string]bool, len(history))
	for _, h := range history {
		seen[h.Assignment.Key()] = true
	}
	for i := 0; i < retries; i++ {
		dst = space.SampleInto(rng, dst)
		if !seen[dst.Key()] {
			return dst, true
		}
	}
	return nil, false
}

// GridSearch enumerates the space's full grid in order.
type GridSearch struct {
	grid []param.Assignment
	next int
}

// Name implements Explorer.
func (*GridSearch) Name() string { return "grid" }

// IgnoresHistory implements HistoryFree: the grid is a pure function of
// the space.
func (*GridSearch) IgnoresHistory() bool { return true }

// Next implements Explorer.
func (g *GridSearch) Next(rng *rand.Rand, space *param.Space, history []Observation) (param.Assignment, bool) {
	if g.grid == nil {
		g.grid = space.Grid()
	}
	if g.next >= len(g.grid) {
		return nil, false
	}
	a := g.grid[g.next]
	g.next++
	return a, true
}

// TPE is a Tree-of-Parzen-Estimators sampler (Bergstra et al. 2011, the
// algorithm behind Hyperopt): after MinTrials random startup trials it
// splits the history into good/bad by the Gamma quantile of the objective,
// fits per-parameter densities l(x) (good) and g(x) (bad), draws
// NCandidates from l and keeps the candidate maximizing l(x)/g(x).
type TPE struct {
	Gamma       float64 // good-quantile (default 0.25)
	NCandidates int     // candidates per step (default 24)
	MinTrials   int     // random startup trials (default 10)
}

// Name implements Explorer.
func (TPE) Name() string { return "tpe" }

func (t TPE) withDefaults() TPE {
	if t.Gamma == 0 {
		t.Gamma = 0.25
	}
	if t.NCandidates == 0 {
		t.NCandidates = 24
	}
	if t.MinTrials == 0 {
		t.MinTrials = 10
	}
	return t
}

// Next implements Explorer.
func (t TPE) Next(rng *rand.Rand, space *param.Space, history []Observation) (param.Assignment, bool) {
	t = t.withDefaults()
	var usable []Observation
	for _, h := range history {
		if !h.Pruned && !h.Failed && !math.IsNaN(h.Objective) {
			usable = append(usable, h)
		}
	}
	if len(usable) < t.MinTrials {
		return space.Sample(rng), true
	}
	// Sort best-first.
	sort.Slice(usable, func(i, j int) bool {
		if usable[i].Maximize {
			return usable[i].Objective > usable[j].Objective
		}
		return usable[i].Objective < usable[j].Objective
	})
	nGood := int(math.Ceil(t.Gamma * float64(len(usable))))
	if nGood < 1 {
		nGood = 1
	}
	good := usable[:nGood]
	bad := usable[nGood:]
	if len(bad) == 0 {
		return space.Sample(rng), true
	}

	best := space.Sample(rng)
	bestScore := math.Inf(-1)
	for c := 0; c < t.NCandidates; c++ {
		cand := t.sampleFromGood(rng, space, good)
		score := t.logLikelihoodRatio(space, cand, good, bad)
		if score > bestScore {
			bestScore = score
			best = cand
		}
	}
	return best, true
}

// sampleFromGood draws each parameter from the good-trial density: for
// categorical/finite parameters a smoothed empirical distribution, for
// continuous ones a kernel draw around a random good observation.
func (t TPE) sampleFromGood(rng *rand.Rand, space *param.Space, good []Observation) param.Assignment {
	a := make(param.Assignment, 0, len(space.Params()))
	for _, p := range space.Params() {
		pick := good[rng.IntN(len(good))].Assignment.Value(p.Name())
		switch pp := p.(type) {
		case param.FloatRange:
			width := (pp.Hi - pp.Lo) / 5
			v := pick.Float() + rng.NormFloat64()*width
			if v < pp.Lo {
				v = pp.Lo
			}
			if v > pp.Hi {
				v = pp.Hi
			}
			a.Set(p.Name(), param.Float(v))
		default:
			// Finite parameters: mostly reuse good values, sometimes
			// explore uniformly (smoothing).
			if rng.Float64() < 0.2 {
				a.Set(p.Name(), p.Sample(rng))
			} else {
				a.Set(p.Name(), pick)
			}
		}
	}
	return a
}

// logLikelihoodRatio scores a candidate by Σ log l(x_i)/g(x_i) with
// Laplace-smoothed per-parameter densities.
func (t TPE) logLikelihoodRatio(space *param.Space, cand param.Assignment, good, bad []Observation) float64 {
	score := 0.0
	for _, p := range space.Params() {
		v := cand.Value(p.Name())
		score += math.Log(density(p, v, good)) - math.Log(density(p, v, bad))
	}
	return score
}

// density estimates the probability of value v for parameter p in the
// observation set: smoothed frequency for finite parameters, a simple
// kernel estimate for continuous ones.
func density(p param.Param, v param.Value, obs []Observation) float64 {
	switch pp := p.(type) {
	case param.FloatRange:
		width := (pp.Hi - pp.Lo) / 5
		if width == 0 {
			return 1
		}
		s := 0.0
		for _, o := range obs {
			d := (o.Assignment.Value(p.Name()).Float() - v.Float()) / width
			s += math.Exp(-0.5 * d * d)
		}
		return (s + 1e-3) / float64(len(obs)+1)
	default:
		k := len(p.Enumerate())
		count := 0
		for _, o := range obs {
			if o.Assignment.Value(p.Name()).Equal(v) {
				count++
			}
		}
		return (float64(count) + 1) / float64(len(obs)+k)
	}
}
