package search

import (
	"math"
	"math/rand/v2"

	"rldecide/internal/param"
)

// LatinHypercube is a stratified sampler: it pre-plans N configurations so
// that every parameter's range is covered evenly (each of the N strata of
// every dimension is visited exactly once, in a random pairing). It sits
// between Random Search and Grid Search in the methodology's exploratory
// step: grid-like coverage at random-search cost, a standard tool in
// design-space exploration.
type LatinHypercube struct {
	// N is the number of planned samples (required, > 0).
	N int

	plan []param.Assignment
	next int
}

// Name implements Explorer.
func (*LatinHypercube) Name() string { return "lhs" }

// IgnoresHistory implements HistoryFree: the plan is built once from the
// rng stream and the space.
func (*LatinHypercube) IgnoresHistory() bool { return true }

// Next implements Explorer.
func (l *LatinHypercube) Next(rng *rand.Rand, space *param.Space, history []Observation) (param.Assignment, bool) {
	if l.N <= 0 {
		return nil, false
	}
	if l.plan == nil {
		l.build(rng, space)
	}
	if l.next >= len(l.plan) {
		return nil, false
	}
	a := l.plan[l.next]
	l.next++
	return a, true
}

// build constructs the stratified plan: for each parameter, a random
// permutation of N strata; sample j takes stratum perm[j] of every
// dimension.
func (l *LatinHypercube) build(rng *rand.Rand, space *param.Space) {
	n := l.N
	l.plan = make([]param.Assignment, n)
	for j := range l.plan {
		l.plan[j] = make(param.Assignment, 0, len(space.Params()))
	}
	for _, p := range space.Params() {
		perm := rng.Perm(n)
		for j := 0; j < n; j++ {
			stratum := perm[j]
			l.plan[j].Set(p.Name(), sampleStratum(rng, p, stratum, n))
		}
	}
}

// sampleStratum draws a value from stratum k of n for parameter p:
// continuous ranges are split into n equal slices (log-space for log
// parameters); finite parameters map strata onto their options
// round-robin.
func sampleStratum(rng *rand.Rand, p param.Param, k, n int) param.Value {
	switch pp := p.(type) {
	case param.FloatRange:
		lo, hi := pp.Lo, pp.Hi
		if pp.Log {
			// Work in log space via repeated sampling bounds.
			u := (float64(k) + rng.Float64()) / float64(n)
			return param.Float(logLerp(lo, hi, u))
		}
		u := (float64(k) + rng.Float64()) / float64(n)
		return param.Float(lo + u*(hi-lo))
	case param.IntRange:
		span := pp.Hi - pp.Lo + 1
		idx := k * span / n
		if idx >= span {
			idx = span - 1
		}
		return param.Int(pp.Lo + idx)
	default:
		opts := p.Enumerate()
		return opts[k%len(opts)]
	}
}

// logLerp interpolates geometrically between lo and hi (both positive, as
// guaranteed by NewLogFloatRange).
func logLerp(lo, hi, u float64) float64 {
	return lo * math.Pow(hi/lo, u)
}
