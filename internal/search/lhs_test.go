package search

import (
	"math"
	"testing"

	"rldecide/internal/mathx"
	"rldecide/internal/param"
)

func TestLHSCoversStrata(t *testing.T) {
	space := param.MustSpace(
		param.NewFloatRange("x", 0, 1),
		param.NewIntRange("n", 0, 9),
	)
	rng := mathx.NewRand(1)
	l := &LatinHypercube{N: 10}
	seenStrata := map[int]bool{}
	seenInts := map[int]bool{}
	for i := 0; i < 10; i++ {
		a, ok := l.Next(rng, space, nil)
		if !ok {
			t.Fatalf("exhausted at %d", i)
		}
		if !space.Contains(a) {
			t.Fatalf("out of space: %s", a)
		}
		seenStrata[int(a.Value("x").Float()*10)] = true
		seenInts[a.Value("n").Int()] = true
	}
	// Each of the 10 x-strata visited exactly once.
	if len(seenStrata) != 10 {
		t.Fatalf("x strata covered %d/10", len(seenStrata))
	}
	// 10 int strata over 10 options: all visited.
	if len(seenInts) != 10 {
		t.Fatalf("int options covered %d/10", len(seenInts))
	}
	if _, ok := l.Next(rng, space, nil); ok {
		t.Fatal("plan should be exhausted after N samples")
	}
}

func TestLHSCategoricalRoundRobin(t *testing.T) {
	space := param.MustSpace(param.NewCategorical("c", "a", "b", "c"))
	rng := mathx.NewRand(2)
	l := &LatinHypercube{N: 9}
	counts := map[string]int{}
	for i := 0; i < 9; i++ {
		a, _ := l.Next(rng, space, nil)
		counts[a.Value("c").Str()]++
	}
	for opt, c := range counts {
		if c != 3 {
			t.Fatalf("option %s drawn %d times, want 3", opt, c)
		}
	}
}

func TestLHSLogSpace(t *testing.T) {
	space := param.MustSpace(param.NewLogFloatRange("lr", 1e-4, 1e-1))
	rng := mathx.NewRand(3)
	l := &LatinHypercube{N: 6}
	var below, above int
	for i := 0; i < 6; i++ {
		a, _ := l.Next(rng, space, nil)
		v := a.Value("lr").Float()
		if v < 1e-4 || v > 1e-1 {
			t.Fatalf("lr %v out of range", v)
		}
		if v < math.Sqrt(1e-4*1e-1) { // geometric midpoint
			below++
		} else {
			above++
		}
	}
	if below != 3 || above != 3 {
		t.Fatalf("log strata unbalanced: %d below / %d above geometric midpoint", below, above)
	}
}

func TestLHSZeroN(t *testing.T) {
	l := &LatinHypercube{}
	if _, ok := l.Next(mathx.NewRand(1), param.MustSpace(param.NewIntSet("a", 1)), nil); ok {
		t.Fatal("N=0 should be exhausted immediately")
	}
	if l.Name() != "lhs" {
		t.Fatal("name")
	}
}
