package search

import "rldecide/internal/mathx"

// Pruner decides, from intermediate objective reports, whether a running
// trial should be stopped early — the Optuna-style pruning the paper names
// as part of the hyperparameter-framework implementation route.
type Pruner interface {
	// Name identifies the pruner.
	Name() string
	// ShouldPrune is consulted after each intermediate report of the
	// running trial. step is the report index (0-based), value the
	// intermediate objective, history the per-step intermediate values of
	// finished trials (history[trial][step]).
	ShouldPrune(step int, value float64, maximize bool, history [][]float64) bool
}

// MedianPruner prunes a trial whose intermediate value is worse than the
// median of the completed trials' values at the same step (Optuna's
// default pruner).
type MedianPruner struct {
	// WarmupSteps disables pruning for the first reports of a trial.
	WarmupSteps int
	// MinTrials disables pruning until that many finished trials exist.
	MinTrials int // default 4
}

// Name implements Pruner.
func (MedianPruner) Name() string { return "median" }

// ShouldPrune implements Pruner.
func (m MedianPruner) ShouldPrune(step int, value float64, maximize bool, history [][]float64) bool {
	minTrials := m.MinTrials
	if minTrials == 0 {
		minTrials = 4
	}
	if step < m.WarmupSteps {
		return false
	}
	var peers []float64
	for _, h := range history {
		if step < len(h) {
			peers = append(peers, h[step])
		}
	}
	if len(peers) < minTrials {
		return false
	}
	med := mathx.Median(peers)
	if maximize {
		return value < med
	}
	return value > med
}

// ThresholdPruner prunes any trial whose intermediate value is on the
// wrong side of a fixed bound.
type ThresholdPruner struct {
	// Bound is the cutoff; a maximizing trial is pruned below it, a
	// minimizing trial above it.
	Bound       float64
	WarmupSteps int
}

// Name implements Pruner.
func (ThresholdPruner) Name() string { return "threshold" }

// ShouldPrune implements Pruner.
func (t ThresholdPruner) ShouldPrune(step int, value float64, maximize bool, history [][]float64) bool {
	if step < t.WarmupSteps {
		return false
	}
	if maximize {
		return value < t.Bound
	}
	return value > t.Bound
}
