package search

import (
	"math"
	"testing"

	"rldecide/internal/mathx"
	"rldecide/internal/param"
)

func smallSpace() *param.Space {
	return param.MustSpace(
		param.NewIntSet("a", 1, 2, 3),
		param.NewCategorical("b", "x", "y"),
	)
}

func TestRandomSearchProposesValid(t *testing.T) {
	s := smallSpace()
	rng := mathx.NewRand(1)
	var r RandomSearch
	for i := 0; i < 50; i++ {
		a, ok := r.Next(rng, s, nil)
		if !ok || !s.Contains(a) {
			t.Fatalf("bad proposal %v ok=%v", a, ok)
		}
	}
}

func TestRandomSearchDedup(t *testing.T) {
	s := smallSpace() // 6 configs
	rng := mathx.NewRand(2)
	r := RandomSearch{Dedup: true, MaxRetries: 500}
	var hist []Observation
	seen := map[string]bool{}
	for i := 0; i < 6; i++ {
		a, ok := r.Next(rng, s, hist)
		if !ok {
			t.Fatalf("exhausted after %d", i)
		}
		if seen[a.Key()] {
			t.Fatalf("duplicate %s", a.Key())
		}
		seen[a.Key()] = true
		hist = append(hist, Observation{Assignment: a})
	}
	// Space exhausted now.
	if _, ok := r.Next(rng, s, hist); ok {
		t.Fatal("should be exhausted")
	}
}

func TestGridSearchEnumeratesAll(t *testing.T) {
	s := smallSpace()
	rng := mathx.NewRand(3)
	g := &GridSearch{}
	seen := map[string]bool{}
	for i := 0; i < 6; i++ {
		a, ok := g.Next(rng, s, nil)
		if !ok {
			t.Fatalf("grid ended early at %d", i)
		}
		seen[a.Key()] = true
	}
	if len(seen) != 6 {
		t.Fatalf("grid covered %d of 6", len(seen))
	}
	if _, ok := g.Next(rng, s, nil); ok {
		t.Fatal("grid should be exhausted")
	}
}

// quadratic objective over a float space: minimum at x = 0.3.
func quadObs(x float64) Observation {
	a := param.Assign(param.Bind("x", param.Float(x)))
	return Observation{Assignment: a, Objective: (x - 0.3) * (x - 0.3)}
}

func TestTPEConcentratesNearOptimum(t *testing.T) {
	space := param.MustSpace(param.NewFloatRange("x", 0, 1))
	rng := mathx.NewRand(4)
	tpe := TPE{MinTrials: 8, NCandidates: 32}

	var hist []Observation
	// Seed history with a uniform sweep.
	for i := 0; i < 20; i++ {
		hist = append(hist, quadObs(float64(i)/19))
	}
	// TPE proposals should be much closer to 0.3 than uniform (mean |x-0.3|
	// for uniform is ~0.26).
	sum := 0.0
	const n = 60
	for i := 0; i < n; i++ {
		a, ok := tpe.Next(rng, space, hist)
		if !ok {
			t.Fatal("TPE exhausted")
		}
		x := a.Value("x").Float()
		if x < 0 || x > 1 {
			t.Fatalf("TPE proposed out of range: %v", x)
		}
		sum += math.Abs(x - 0.3)
	}
	mean := sum / n
	if mean > 0.18 {
		t.Fatalf("TPE proposals not concentrated: mean |x-0.3| = %v", mean)
	}
}

func TestTPEFallsBackToRandomEarly(t *testing.T) {
	space := smallSpace()
	rng := mathx.NewRand(5)
	tpe := TPE{}
	a, ok := tpe.Next(rng, space, nil)
	if !ok || !space.Contains(a) {
		t.Fatal("startup proposal invalid")
	}
}

func TestTPECategorical(t *testing.T) {
	// Categorical objective: option "y" is much better; TPE should prefer
	// proposing it.
	space := param.MustSpace(param.NewCategorical("c", "x", "y", "z"))
	rng := mathx.NewRand(6)
	var hist []Observation
	for i := 0; i < 30; i++ {
		opt := []string{"x", "y", "z"}[i%3]
		val := map[string]float64{"x": 5, "y": 0.1, "z": 7}[opt]
		hist = append(hist, Observation{
			Assignment: param.Assign(param.Bind("c", param.Str(opt))),
			Objective:  val,
		})
	}
	tpe := TPE{MinTrials: 5, NCandidates: 16}
	countY := 0
	const n = 60
	for i := 0; i < n; i++ {
		a, _ := tpe.Next(rng, space, hist)
		if a.Value("c").Str() == "y" {
			countY++
		}
	}
	if countY < n/2 {
		t.Fatalf("TPE picked the good option only %d/%d times", countY, n)
	}
}

func TestTPEIgnoresFailedTrials(t *testing.T) {
	space := param.MustSpace(param.NewFloatRange("x", 0, 1))
	rng := mathx.NewRand(7)
	hist := []Observation{
		{Assignment: param.Assign(param.Bind("x", param.Float(0.5))), Failed: true, Objective: math.NaN()},
		{Assignment: param.Assign(param.Bind("x", param.Float(0.5))), Pruned: true},
	}
	tpe := TPE{MinTrials: 1}
	if a, ok := tpe.Next(rng, space, hist); !ok || !space.Contains(a) {
		t.Fatal("TPE should survive failed-only history")
	}
}

func TestMedianPruner(t *testing.T) {
	history := [][]float64{
		{1, 2, 3},
		{1, 2, 3},
		{1, 2, 3},
		{1, 2, 3},
	}
	p := MedianPruner{}
	// maximizing trial below the median at step 1 → prune
	if !p.ShouldPrune(1, 1.0, true, history) {
		t.Error("should prune below-median maximizer")
	}
	if p.ShouldPrune(1, 3.0, true, history) {
		t.Error("should keep above-median maximizer")
	}
	// minimizing: above median → prune
	if !p.ShouldPrune(1, 5.0, false, history) {
		t.Error("should prune above-median minimizer")
	}
	// warmup suppresses
	pw := MedianPruner{WarmupSteps: 2}
	if pw.ShouldPrune(1, -100, true, history) {
		t.Error("warmup should suppress pruning")
	}
	// not enough finished trials
	if p.ShouldPrune(1, -100, true, history[:2]) {
		t.Error("too few trials should suppress pruning")
	}
	if p.Name() != "median" {
		t.Error("name")
	}
}

func TestThresholdPruner(t *testing.T) {
	p := ThresholdPruner{Bound: -2, WarmupSteps: 1}
	if p.ShouldPrune(0, -5, true, nil) {
		t.Error("warmup should suppress")
	}
	if !p.ShouldPrune(2, -5, true, nil) {
		t.Error("below bound maximizer should prune")
	}
	if p.ShouldPrune(2, -1, true, nil) {
		t.Error("above bound maximizer should survive")
	}
	if !p.ShouldPrune(2, 5, false, nil) {
		t.Error("minimizer above bound should prune")
	}
	if p.Name() != "threshold" {
		t.Error("name")
	}
}

func TestExplorerNames(t *testing.T) {
	if (RandomSearch{}).Name() != "random" || (&GridSearch{}).Name() != "grid" || (TPE{}).Name() != "tpe" {
		t.Fatal("names wrong")
	}
}

// TestReplayDeterminism pins the Explorer.Next replay contract that
// core.Study.Resume depends on: re-driving a fresh explorer with an
// identically seeded rng reproduces the proposal stream position by
// position, regardless of what already-finished history it is shown.
func TestReplayDeterminism(t *testing.T) {
	s := smallSpace()

	t.Run("random", func(t *testing.T) {
		first := make([]param.Assignment, 8)
		rng := mathx.NewRand(42)
		for i := range first {
			a, ok := (RandomSearch{}).Next(rng, s, nil)
			if !ok {
				t.Fatal("random search exhausted")
			}
			first[i] = a
		}
		// Replay with a fresh identically-seeded rng, feeding the finished
		// trials back as history (random search without Dedup ignores it).
		hist := make([]Observation, 0, len(first))
		for _, a := range first {
			hist = append(hist, Observation{Assignment: a, Objective: 1})
		}
		rng2 := mathx.NewRand(42)
		for i := range first {
			a, ok := (RandomSearch{}).Next(rng2, s, hist)
			if !ok || a.Key() != first[i].Key() {
				t.Fatalf("replay diverged at %d: %v vs %v", i, a, first[i])
			}
		}
	})

	t.Run("grid", func(t *testing.T) {
		g1, g2 := &GridSearch{}, &GridSearch{}
		rng := mathx.NewRand(0)
		for i := 0; ; i++ {
			a1, ok1 := g1.Next(rng, s, nil)
			a2, ok2 := g2.Next(rng, s, nil)
			if ok1 != ok2 {
				t.Fatal("grid replay lost sync")
			}
			if !ok1 {
				break
			}
			if a1.Key() != a2.Key() {
				t.Fatalf("grid replay diverged at %d", i)
			}
		}
	})
}
