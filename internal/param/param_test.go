package param

import (
	"slices"
	"math"
	"testing"
	"testing/quick"

	"rldecide/internal/mathx"
)

func space(t *testing.T) *Space {
	t.Helper()
	return MustSpace(
		NewIntSet("rk_order", 3, 5, 8),
		NewCategorical("framework", "rllib", "stablebaselines", "tfagents"),
		NewCategorical("algo", "ppo", "sac"),
		NewIntRange("nodes", 1, 2),
		NewIntSet("cores", 2, 4),
	)
}

func TestSpaceValidation(t *testing.T) {
	if _, err := NewSpace(); err == nil {
		t.Error("empty space should fail")
	}
	if _, err := NewSpace(NewIntSet("a", 1), NewIntSet("a", 2)); err == nil {
		t.Error("duplicate name should fail")
	}
	if _, err := NewSpace(NewIntSet("", 1)); err == nil {
		t.Error("unnamed should fail")
	}
}

func TestSampleContainsProperty(t *testing.T) {
	s := space(t)
	rng := mathx.NewRand(1)
	f := func(_ uint8) bool {
		a := s.Sample(rng)
		return s.Contains(a)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestGridMatchesSize(t *testing.T) {
	s := space(t)
	if s.GridSize() != 3*3*2*2*2 {
		t.Fatalf("GridSize=%d want 72", s.GridSize())
	}
	grid := s.Grid()
	if len(grid) != 72 {
		t.Fatalf("grid length %d", len(grid))
	}
	seen := map[string]bool{}
	for _, a := range grid {
		if !s.Contains(a) {
			t.Fatalf("grid point outside space: %s", a)
		}
		k := a.Key()
		if seen[k] {
			t.Fatalf("duplicate grid point %s", k)
		}
		seen[k] = true
	}
}

func TestValueAccessors(t *testing.T) {
	if Str("x").Str() != "x" || Str("x").Kind() != KindString {
		t.Error("Str wrong")
	}
	if Int(3).Int() != 3 || Int(3).Float() != 3.0 {
		t.Error("Int wrong")
	}
	if Float(2.5).Float() != 2.5 || Float(2.5).Int() != 2 {
		t.Error("Float wrong")
	}
	if Int(3).String() != "3" || Float(0.5).String() != "0.5" {
		t.Error("String renders wrong")
	}
	if !Int(3).Equal(Int(3)) || Int(3).Equal(Float(3)) {
		t.Error("Equal wrong")
	}
}

func TestAssignmentKeyCanonical(t *testing.T) {
	a := Assign(Bind("b", Int(1)), Bind("a", Str("x")))
	b := Assign(Bind("a", Str("x")), Bind("b", Int(1)))
	if a.Key() != b.Key() {
		t.Fatalf("keys differ: %q vs %q", a.Key(), b.Key())
	}
	if a.Key() != "a=x,b=1" {
		t.Fatalf("key format %q", a.Key())
	}
	c := a.Clone()
	c.Set("b", Int(2))
	if a.Value("b").Int() != 1 {
		t.Fatal("Clone aliases storage")
	}
}

func TestFloatRangeSampling(t *testing.T) {
	p := NewFloatRange("lr", 0.1, 0.9)
	rng := mathx.NewRand(2)
	for i := 0; i < 100; i++ {
		v := p.Sample(rng)
		if v.Float() < 0.1 || v.Float() > 0.9 {
			t.Fatalf("sample %v out of range", v)
		}
	}
	vals := p.Enumerate()
	if len(vals) != 5 || vals[0].Float() != 0.1 || vals[4].Float() != 0.9 {
		t.Fatalf("enumerate %v", vals)
	}
}

func TestLogFloatRange(t *testing.T) {
	p := NewLogFloatRange("lr", 1e-5, 1e-1)
	rng := mathx.NewRand(3)
	// Log-uniform: ~half the samples below the geometric midpoint 1e-3.
	below := 0
	const n = 2000
	for i := 0; i < n; i++ {
		if p.Sample(rng).Float() < 1e-3 {
			below++
		}
	}
	frac := float64(below) / n
	if math.Abs(frac-0.5) > 0.05 {
		t.Fatalf("log-uniform midpoint fraction %v, want ~0.5", frac)
	}
	vals := p.Enumerate()
	if math.Abs(vals[2].Float()-1e-3) > 1e-9 {
		t.Fatalf("log grid midpoint %v", vals[2])
	}
}

func TestContainsRejects(t *testing.T) {
	s := space(t)
	a := s.Sample(mathx.NewRand(4))
	a.Set("rk_order", Int(7))
	if s.Contains(a) {
		t.Error("invalid rk order accepted")
	}
	b := s.Sample(mathx.NewRand(5))
	b = slices.DeleteFunc(b, func(bd Binding) bool { return bd.Name == "algo" })
	if s.Contains(b) {
		t.Error("incomplete assignment accepted")
	}
	c := s.Sample(mathx.NewRand(6))
	c.Set("framework", Str("torchbeast"))
	if s.Contains(c) {
		t.Error("unknown framework accepted")
	}
}

func TestGetParam(t *testing.T) {
	s := space(t)
	p, ok := s.Get("framework")
	if !ok || p.Name() != "framework" {
		t.Fatal("Get failed")
	}
	if _, ok := s.Get("nope"); ok {
		t.Fatal("Get of unknown should fail")
	}
	if len(s.Params()) != 5 {
		t.Fatal("Params wrong")
	}
}

func TestIntRange(t *testing.T) {
	p := NewIntRange("n", 1, 3)
	vals := p.Enumerate()
	if len(vals) != 3 || vals[0].Int() != 1 || vals[2].Int() != 3 {
		t.Fatalf("enumerate %v", vals)
	}
	if p.Contains(Int(0)) || !p.Contains(Int(2)) || p.Contains(Float(2)) {
		t.Error("Contains wrong")
	}
}

func TestConstructorPanics(t *testing.T) {
	for name, fn := range map[string]func(){
		"empty-cat":  func() { NewCategorical("x") },
		"empty-ints": func() { NewIntSet("x") },
		"bad-range":  func() { NewIntRange("x", 3, 1) },
		"bad-float":  func() { NewFloatRange("x", 2, 1) },
		"bad-log":    func() { NewLogFloatRange("x", 0, 1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: expected panic", name)
				}
			}()
			fn()
		}()
	}
}
