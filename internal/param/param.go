// Package param defines learning-configuration parameter spaces — step (b)
// of the paper's methodology. A Space is a named collection of parameters
// (categorical, integer-range, float-range, optionally log-scaled); an
// Assignment is one concrete configuration drawn from it. Spaces support
// both random sampling (for Random Search) and exhaustive enumeration (for
// Grid Search).
package param

import (
	"fmt"
	"math"
	"math/rand/v2"
	"sort"
	"strconv"
	"strings"
)

// Kind discriminates Value payloads.
type Kind int

// Value kinds.
const (
	KindString Kind = iota
	KindInt
	KindFloat
)

// Value is one parameter setting.
type Value struct {
	kind Kind
	s    string
	i    int
	f    float64
}

// String wraps a categorical value.
func Str(s string) Value { return Value{kind: KindString, s: s} }

// Int wraps an integer value.
func Int(i int) Value { return Value{kind: KindInt, i: i} }

// Float wraps a float value.
func Float(f float64) Value { return Value{kind: KindFloat, f: f} }

// Kind returns the value kind.
func (v Value) Kind() Kind { return v.kind }

// Str returns the categorical payload (empty for non-strings).
func (v Value) Str() string { return v.s }

// Int returns the integer payload; float values are truncated.
func (v Value) Int() int {
	if v.kind == KindFloat {
		return int(v.f)
	}
	return v.i
}

// Float returns the numeric payload (ints are widened).
func (v Value) Float() float64 {
	if v.kind == KindInt {
		return float64(v.i)
	}
	return v.f
}

// String renders the value.
func (v Value) String() string {
	switch v.kind {
	case KindString:
		return v.s
	case KindInt:
		return strconv.Itoa(v.i)
	default:
		return strconv.FormatFloat(v.f, 'g', 4, 64)
	}
}

// AppendText appends String's rendering to dst without allocating —
// the journal's arena encoder depends on the two staying byte-identical.
func (v Value) AppendText(dst []byte) []byte {
	switch v.kind {
	case KindString:
		return append(dst, v.s...)
	case KindInt:
		return strconv.AppendInt(dst, int64(v.i), 10)
	default:
		return strconv.AppendFloat(dst, v.f, 'g', 4, 64)
	}
}

// Equal reports payload equality.
func (v Value) Equal(o Value) bool { return v == o }

// Param is one dimension of a search space.
type Param interface {
	// Name returns the parameter name.
	Name() string
	// Sample draws a uniform random value.
	Sample(rng *rand.Rand) Value
	// Enumerate lists the parameter's grid values (discretizing continuous
	// ranges).
	Enumerate() []Value
	// Contains reports whether v is a valid setting.
	Contains(v Value) bool
}

// Categorical is a finite set of string options.
type Categorical struct {
	name    string
	Options []string
}

// NewCategorical builds a categorical parameter.
func NewCategorical(name string, options ...string) Categorical {
	if len(options) == 0 {
		panic("param: categorical needs options")
	}
	return Categorical{name: name, Options: options}
}

// Name implements Param.
func (c Categorical) Name() string { return c.name }

// Sample implements Param.
func (c Categorical) Sample(rng *rand.Rand) Value { return Str(c.Options[rng.IntN(len(c.Options))]) }

// Enumerate implements Param.
func (c Categorical) Enumerate() []Value {
	out := make([]Value, len(c.Options))
	for i, o := range c.Options {
		out[i] = Str(o)
	}
	return out
}

// Contains implements Param.
func (c Categorical) Contains(v Value) bool {
	if v.Kind() != KindString {
		return false
	}
	for _, o := range c.Options {
		if o == v.Str() {
			return true
		}
	}
	return false
}

// IntSet is a finite set of integer options (e.g. Runge-Kutta order
// ∈ {3, 5, 8}).
type IntSet struct {
	name    string
	Options []int
}

// NewIntSet builds an integer-set parameter.
func NewIntSet(name string, options ...int) IntSet {
	if len(options) == 0 {
		panic("param: int set needs options")
	}
	return IntSet{name: name, Options: options}
}

// Name implements Param.
func (p IntSet) Name() string { return p.name }

// Sample implements Param.
func (p IntSet) Sample(rng *rand.Rand) Value { return Int(p.Options[rng.IntN(len(p.Options))]) }

// Enumerate implements Param.
func (p IntSet) Enumerate() []Value {
	out := make([]Value, len(p.Options))
	for i, o := range p.Options {
		out[i] = Int(o)
	}
	return out
}

// Contains implements Param.
func (p IntSet) Contains(v Value) bool {
	if v.Kind() != KindInt {
		return false
	}
	for _, o := range p.Options {
		if o == v.Int() {
			return true
		}
	}
	return false
}

// IntRange is an inclusive integer interval.
type IntRange struct {
	name   string
	Lo, Hi int
}

// NewIntRange builds an integer-range parameter over [lo, hi].
func NewIntRange(name string, lo, hi int) IntRange {
	if hi < lo {
		panic("param: empty int range")
	}
	return IntRange{name: name, Lo: lo, Hi: hi}
}

// Name implements Param.
func (p IntRange) Name() string { return p.name }

// Sample implements Param.
func (p IntRange) Sample(rng *rand.Rand) Value { return Int(p.Lo + rng.IntN(p.Hi-p.Lo+1)) }

// Enumerate implements Param.
func (p IntRange) Enumerate() []Value {
	out := make([]Value, 0, p.Hi-p.Lo+1)
	for i := p.Lo; i <= p.Hi; i++ {
		out = append(out, Int(i))
	}
	return out
}

// Contains implements Param.
func (p IntRange) Contains(v Value) bool {
	return v.Kind() == KindInt && v.Int() >= p.Lo && v.Int() <= p.Hi
}

// FloatRange is a continuous interval, optionally log-scaled, with a grid
// discretization for enumeration.
type FloatRange struct {
	name       string
	Lo, Hi     float64
	Log        bool
	GridPoints int // Enumerate() resolution (default 5)
}

// NewFloatRange builds a float-range parameter over [lo, hi].
func NewFloatRange(name string, lo, hi float64) FloatRange {
	if hi < lo {
		panic("param: empty float range")
	}
	return FloatRange{name: name, Lo: lo, Hi: hi, GridPoints: 5}
}

// NewLogFloatRange builds a log-uniform float parameter over [lo, hi]
// (both must be positive).
func NewLogFloatRange(name string, lo, hi float64) FloatRange {
	if lo <= 0 || hi < lo {
		panic("param: log range needs 0 < lo <= hi")
	}
	return FloatRange{name: name, Lo: lo, Hi: hi, Log: true, GridPoints: 5}
}

// Name implements Param.
func (p FloatRange) Name() string { return p.name }

// Sample implements Param.
func (p FloatRange) Sample(rng *rand.Rand) Value {
	if p.Log {
		return Float(math.Exp(math.Log(p.Lo) + rng.Float64()*(math.Log(p.Hi)-math.Log(p.Lo))))
	}
	return Float(p.Lo + rng.Float64()*(p.Hi-p.Lo))
}

// Enumerate implements Param.
func (p FloatRange) Enumerate() []Value {
	n := p.GridPoints
	if n < 2 {
		n = 2
	}
	out := make([]Value, n)
	for i := 0; i < n; i++ {
		t := float64(i) / float64(n-1)
		if p.Log {
			out[i] = Float(math.Exp(math.Log(p.Lo) + t*(math.Log(p.Hi)-math.Log(p.Lo))))
		} else {
			out[i] = Float(p.Lo + t*(p.Hi-p.Lo))
		}
	}
	return out
}

// Contains implements Param.
func (p FloatRange) Contains(v Value) bool {
	if v.Kind() != KindFloat && v.Kind() != KindInt {
		return false
	}
	f := v.Float()
	return f >= p.Lo && f <= p.Hi
}

// Binding is one name→value pair of an Assignment.
type Binding struct {
	Name  string
	Value Value
}

// Bind constructs a Binding.
func Bind(name string, v Value) Binding { return Binding{Name: name, Value: v} }

// Assignment is one concrete configuration: a slice of bindings kept
// sorted by parameter name. The slice representation (vs. a map) holds a
// whole assignment in a single allocation — or zero, when sampled into a
// caller-owned buffer — and the sorted invariant makes Key, String, and
// journal encodings canonical without per-call sorting. A nil Assignment
// is a valid empty assignment.
type Assignment []Binding

// Assign builds an Assignment from bindings, sorting by name. Duplicate
// names keep the last binding.
func Assign(bs ...Binding) Assignment {
	var a Assignment
	for _, b := range bs {
		a.Set(b.Name, b.Value)
	}
	return a
}

// Get returns the value bound to name.
func (a Assignment) Get(name string) (Value, bool) {
	for _, b := range a {
		if b.Name == name {
			return b.Value, true
		}
	}
	return Value{}, false
}

// Value returns the value bound to name (zero Value if absent).
func (a Assignment) Value(name string) Value {
	v, _ := a.Get(name)
	return v
}

// Has reports whether name is bound.
func (a Assignment) Has(name string) bool {
	_, ok := a.Get(name)
	return ok
}

// Set binds name to v, inserting in sorted position.
func (a *Assignment) Set(name string, v Value) {
	s := *a
	i, found := sort.Find(len(s), func(i int) int { return strings.Compare(name, s[i].Name) })
	if found {
		s[i].Value = v
		return
	}
	s = append(s, Binding{})
	copy(s[i+1:], s[i:])
	s[i] = Binding{Name: name, Value: v}
	*a = s
}

// Clone returns a copy.
func (a Assignment) Clone() Assignment {
	out := make(Assignment, len(a))
	copy(out, a)
	return out
}

// Key returns a canonical string form usable for deduplication.
func (a Assignment) Key() string {
	var b strings.Builder
	for i, kv := range a {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(kv.Name)
		b.WriteByte('=')
		b.WriteString(kv.Value.String())
	}
	return b.String()
}

// String renders the assignment (same as Key).
func (a Assignment) String() string { return a.Key() }

// Space is an ordered collection of parameters.
type Space struct {
	params []Param
	byName map[string]int
	// rank[i] is the position of params[i] in name-sorted order; sampling
	// draws in declaration order (fixing the RNG consumption sequence) but
	// writes bindings at their sorted slot so the Assignment invariant
	// holds without a per-sample sort.
	rank []int
}

// NewSpace builds a Space; parameter names must be unique and non-empty.
func NewSpace(params ...Param) (*Space, error) {
	if len(params) == 0 {
		return nil, fmt.Errorf("param: empty space")
	}
	s := &Space{byName: make(map[string]int)}
	for _, p := range params {
		if p.Name() == "" {
			return nil, fmt.Errorf("param: unnamed parameter")
		}
		if _, dup := s.byName[p.Name()]; dup {
			return nil, fmt.Errorf("param: duplicate parameter %q", p.Name())
		}
		s.byName[p.Name()] = len(s.params)
		s.params = append(s.params, p)
	}
	s.rank = make([]int, len(s.params))
	for i := range s.params {
		for j := range s.params {
			if s.params[j].Name() < s.params[i].Name() {
				s.rank[i]++
			}
		}
	}
	return s, nil
}

// MustSpace is NewSpace that panics on error.
func MustSpace(params ...Param) *Space {
	s, err := NewSpace(params...)
	if err != nil {
		panic(err)
	}
	return s
}

// Params returns the parameters in declaration order.
func (s *Space) Params() []Param { return s.params }

// Get returns the parameter with the given name.
func (s *Space) Get(name string) (Param, bool) {
	i, ok := s.byName[name]
	if !ok {
		return nil, false
	}
	return s.params[i], true
}

// Sample draws a uniform random assignment.
func (s *Space) Sample(rng *rand.Rand) Assignment {
	return s.SampleInto(rng, nil)
}

// SampleInto draws a uniform random assignment into dst's backing array,
// reallocating only when dst's capacity is too small. The RNG consumption
// order is the parameters' declaration order, identical to Sample.
func (s *Space) SampleInto(rng *rand.Rand, dst Assignment) Assignment {
	if cap(dst) < len(s.params) {
		dst = make(Assignment, len(s.params))
	} else {
		dst = dst[:len(s.params)]
	}
	for i, p := range s.params {
		dst[s.rank[i]] = Binding{Name: p.Name(), Value: p.Sample(rng)}
	}
	return dst
}

// Contains reports whether a is a complete, valid assignment of the space.
func (s *Space) Contains(a Assignment) bool {
	if len(a) != len(s.params) {
		return false
	}
	for _, p := range s.params {
		v, ok := a.Get(p.Name())
		if !ok || !p.Contains(v) {
			return false
		}
	}
	return true
}

// GridSize returns the number of grid points (product of Enumerate
// lengths).
func (s *Space) GridSize() int {
	n := 1
	for _, p := range s.params {
		n *= len(p.Enumerate())
	}
	return n
}

// Grid enumerates the full cartesian product of all parameters' grids, in
// a deterministic order.
func (s *Space) Grid() []Assignment {
	out := []Assignment{nil}
	for _, p := range s.params {
		vals := p.Enumerate()
		next := make([]Assignment, 0, len(out)*len(vals))
		for _, base := range out {
			for _, v := range vals {
				a := base.Clone()
				a.Set(p.Name(), v)
				next = append(next, a)
			}
		}
		out = next
	}
	return out
}
