package gym

import (
	"math/rand/v2"
	"testing"
	"testing/quick"

	"rldecide/internal/mathx"
)

func TestDiscreteSpace(t *testing.T) {
	d := Discrete{N: 4}
	if d.Dim() != 1 {
		t.Fatal("Discrete dim must be 1")
	}
	rng := rand.New(rand.NewPCG(1, 2))
	seen := map[int]bool{}
	for i := 0; i < 200; i++ {
		x := d.Sample(rng, nil)
		if !d.Contains(x) {
			t.Fatalf("sample %v outside space", x)
		}
		seen[int(x[0])] = true
	}
	if len(seen) != 4 {
		t.Errorf("sampling missed actions: %v", seen)
	}
	if d.Contains([]float64{4}) || d.Contains([]float64{-1}) || d.Contains([]float64{1.5}) {
		t.Error("Contains accepted invalid action")
	}
	if d.String() != "Discrete(4)" {
		t.Errorf("String=%q", d.String())
	}
}

func TestBoxSpaceProperty(t *testing.T) {
	b := NewBox(3, -2, 5)
	rng := rand.New(rand.NewPCG(3, 4))
	f := func(_ uint8) bool {
		x := b.Sample(rng, nil)
		return b.Contains(x)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
	if b.Contains([]float64{0, 0}) {
		t.Error("Contains accepted wrong dim")
	}
	if b.Contains([]float64{0, 6, 0}) {
		t.Error("Contains accepted out of bounds")
	}
	if b.Dim() != 3 {
		t.Error("Dim wrong")
	}
}

// countEnv terminates after 3 steps with reward 1 per step.
type countEnv struct {
	n    int
	seed uint64
}

func (c *countEnv) ObservationSpace() Space { return NewBox(1, -10, 10) }
func (c *countEnv) ActionSpace() Space      { return Discrete{N: 2} }
func (c *countEnv) Seed(seed uint64)        { c.seed = seed }
func (c *countEnv) Reset() []float64        { c.n = 0; return []float64{0} }
func (c *countEnv) Step(a []float64) StepResult {
	c.n++
	return StepResult{Obs: []float64{float64(c.n)}, Reward: 1, Done: c.n >= 3}
}

func TestTimeLimit(t *testing.T) {
	tl := NewTimeLimit(&countEnv{}, 2)
	tl.Reset()
	r1 := tl.Step([]float64{0})
	if r1.Done {
		t.Fatal("done too early")
	}
	r2 := tl.Step([]float64{0})
	if !r2.Done || !r2.Truncated {
		t.Fatalf("expected truncation at step 2: %+v", r2)
	}
	// natural termination must not be marked truncated
	tl2 := NewTimeLimit(&countEnv{}, 10)
	tl2.Reset()
	var last StepResult
	for i := 0; i < 3; i++ {
		last = tl2.Step([]float64{0})
	}
	if !last.Done || last.Truncated {
		t.Fatalf("natural done mis-flagged: %+v", last)
	}
}

func TestMonitor(t *testing.T) {
	m := NewMonitor(&countEnv{})
	if _, ok := m.MeanReturn(0); ok {
		t.Fatal("MeanReturn should report !ok before episodes")
	}
	for ep := 0; ep < 2; ep++ {
		m.Reset()
		for {
			if res := m.Step([]float64{0}); res.Done {
				break
			}
		}
	}
	if len(m.Episodes) != 2 {
		t.Fatalf("episodes=%d want 2", len(m.Episodes))
	}
	mean, ok := m.MeanReturn(0)
	if !ok || mean != 3 {
		t.Fatalf("MeanReturn=%v ok=%v want 3", mean, ok)
	}
	if m.Episodes[0].Length != 3 {
		t.Errorf("episode length=%d want 3", m.Episodes[0].Length)
	}
	mean1, _ := m.MeanReturn(1)
	if mean1 != 3 {
		t.Errorf("MeanReturn(1)=%v", mean1)
	}
}

func TestObsNorm(t *testing.T) {
	o := NewObsNorm(&countEnv{}, 5)
	o.Reset()
	var res StepResult
	for i := 0; i < 3; i++ {
		res = o.Step([]float64{0})
	}
	if len(res.Obs) != 1 {
		t.Fatal("obs dim changed")
	}
	if res.Obs[0] < -5 || res.Obs[0] > 5 {
		t.Fatalf("normalized obs out of clip range: %v", res.Obs)
	}
	o.Freeze()
	o.Thaw() // just exercise the toggles
}

func TestVecEnvAutoReset(t *testing.T) {
	maker := func(seed uint64) Env { return &countEnv{seed: seed} }
	v := NewVec(maker, 4, mathx.NewSeeder(1), false)
	if v.N() != 4 {
		t.Fatal("N wrong")
	}
	obs := v.Reset()
	if len(obs) != 4 || obs[0][0] != 0 {
		t.Fatalf("reset obs wrong: %v", obs)
	}
	actions := [][]float64{{0}, {0}, {0}, {0}}
	var steps []VecStep
	for i := 0; i < 3; i++ {
		steps = v.Step(actions)
	}
	for i, s := range steps {
		if !s.Done {
			t.Fatalf("env %d should be done", i)
		}
		if s.FinalObs == nil || s.FinalObs[0] != 3 {
			t.Fatalf("env %d FinalObs=%v want [3]", i, s.FinalObs)
		}
		if s.Obs[0] != 0 {
			t.Fatalf("env %d auto-reset obs=%v want [0]", i, s.Obs)
		}
	}
	// next step continues fresh episodes
	steps = v.Step(actions)
	for i, s := range steps {
		if s.Done || s.Obs[0] != 1 {
			t.Fatalf("env %d after auto-reset: %+v", i, s)
		}
	}
}

func TestVecEnvParallelMatchesSerial(t *testing.T) {
	makerA := func(seed uint64) Env { return &countEnv{seed: seed} }
	a := NewVec(makerA, 8, mathx.NewSeeder(9), false)
	b := NewVec(makerA, 8, mathx.NewSeeder(9), true)
	a.Reset()
	b.Reset()
	acts := make([][]float64, 8)
	for i := range acts {
		acts[i] = []float64{0}
	}
	for step := 0; step < 5; step++ {
		ra := a.Step(acts)
		rb := b.Step(acts)
		for i := range ra {
			if ra[i].Reward != rb[i].Reward || ra[i].Done != rb[i].Done || ra[i].Obs[0] != rb[i].Obs[0] {
				t.Fatalf("parallel/serial diverge at step %d env %d: %+v vs %+v", step, i, ra[i], rb[i])
			}
		}
	}
	if v := a.Env(0); v == nil {
		t.Fatal("Env accessor nil")
	}
	if a.ObservationSpace().Dim() != 1 || a.ActionSpace().Dim() != 1 {
		t.Fatal("space accessors wrong")
	}
}

func TestRewardScale(t *testing.T) {
	rs := NewRewardScale(&countEnv{}, 10)
	rs.Reset()
	if res := rs.Step([]float64{0}); res.Reward != 10 {
		t.Fatalf("scaled reward %v want 10", res.Reward)
	}
}

func TestActionRepeat(t *testing.T) {
	ar := NewActionRepeat(&countEnv{}, 2)
	ar.Reset()
	res := ar.Step([]float64{0})
	if res.Reward != 2 || res.Done {
		t.Fatalf("repeat-2 step: %+v", res)
	}
	res = ar.Step([]float64{0})
	if !res.Done || res.Reward != 1 {
		t.Fatalf("terminal mid-repeat must stop: %+v", res)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("n<1 should panic")
		}
	}()
	NewActionRepeat(&countEnv{}, 0)
}
