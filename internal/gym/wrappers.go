package gym

import (
	"rldecide/internal/mathx"
)

// TimeLimit truncates episodes after MaxSteps steps, setting Truncated.
type TimeLimit struct {
	Env
	MaxSteps int
	steps    int
}

// NewTimeLimit wraps env with an episode step limit.
func NewTimeLimit(env Env, maxSteps int) *TimeLimit {
	return &TimeLimit{Env: env, MaxSteps: maxSteps}
}

// Reset implements Env.
func (t *TimeLimit) Reset() []float64 {
	t.steps = 0
	return t.Env.Reset()
}

// Step implements Env.
func (t *TimeLimit) Step(action []float64) StepResult {
	res := t.Env.Step(action)
	t.steps++
	if !res.Done && t.steps >= t.MaxSteps {
		res.Done = true
		res.Truncated = true
	}
	return res
}

// EpisodeRecord summarizes one finished episode.
type EpisodeRecord struct {
	Return float64 // sum of rewards
	Length int     // number of steps
}

// Monitor records per-episode returns and lengths.
type Monitor struct {
	Env
	Episodes []EpisodeRecord

	curReturn float64
	curLen    int
}

// NewMonitor wraps env with episode statistics collection.
func NewMonitor(env Env) *Monitor { return &Monitor{Env: env} }

// Reset implements Env.
func (m *Monitor) Reset() []float64 {
	m.curReturn = 0
	m.curLen = 0
	return m.Env.Reset()
}

// Step implements Env.
func (m *Monitor) Step(action []float64) StepResult {
	res := m.Env.Step(action)
	m.curReturn += res.Reward
	m.curLen++
	if res.Done {
		m.Episodes = append(m.Episodes, EpisodeRecord{Return: m.curReturn, Length: m.curLen})
	}
	return res
}

// MeanReturn returns the mean episode return over the last n episodes
// (all if n <= 0 or fewer recorded). It returns 0 with ok=false when no
// episode has completed.
func (m *Monitor) MeanReturn(n int) (mean float64, ok bool) {
	eps := m.Episodes
	if len(eps) == 0 {
		return 0, false
	}
	if n > 0 && n < len(eps) {
		eps = eps[len(eps)-n:]
	}
	s := 0.0
	for _, e := range eps {
		s += e.Return
	}
	return s / float64(len(eps)), true
}

// ObsNorm normalizes observations with running per-dimension statistics.
// Normalization parameters keep updating during training, as in common
// RL practice (VecNormalize).
type ObsNorm struct {
	Env
	rv     *mathx.RunningVec
	clip   float64
	frozen bool
	buf    []float64
}

// NewObsNorm wraps env with running observation normalization, clipping
// normalized values to [-clip, clip].
func NewObsNorm(env Env, clip float64) *ObsNorm {
	dim := env.ObservationSpace().Dim()
	return &ObsNorm{Env: env, rv: mathx.NewRunningVec(dim), clip: clip, buf: make([]float64, dim)}
}

// Freeze stops statistics updates (used during evaluation).
func (o *ObsNorm) Freeze() { o.frozen = true }

// Thaw resumes statistics updates.
func (o *ObsNorm) Thaw() { o.frozen = false }

func (o *ObsNorm) normalize(obs []float64) []float64 {
	if !o.frozen {
		o.rv.Push(obs)
	}
	out := o.rv.Normalize(obs, o.buf)
	return mathx.ClipSlice(out, -o.clip, o.clip)
}

// Reset implements Env.
func (o *ObsNorm) Reset() []float64 { return o.normalize(o.Env.Reset()) }

// Step implements Env.
func (o *ObsNorm) Step(action []float64) StepResult {
	res := o.Env.Step(action)
	res.Obs = o.normalize(res.Obs)
	return res
}

// RewardScale multiplies every reward by Factor (reward normalization is
// a common knob across the RL frameworks the paper compares).
type RewardScale struct {
	Env
	Factor float64
}

// NewRewardScale wraps env with a constant reward scale.
func NewRewardScale(env Env, factor float64) *RewardScale {
	return &RewardScale{Env: env, Factor: factor}
}

// Step implements Env.
func (r *RewardScale) Step(action []float64) StepResult {
	res := r.Env.Step(action)
	res.Reward *= r.Factor
	return res
}

// ActionRepeat applies each agent action for N consecutive simulator
// steps, accumulating rewards — frame-skip, the standard way to cheapen
// expensive simulators at some control-resolution cost.
type ActionRepeat struct {
	Env
	N int
}

// NewActionRepeat wraps env so each action repeats n times (n >= 1).
func NewActionRepeat(env Env, n int) *ActionRepeat {
	if n < 1 {
		panic("gym: ActionRepeat needs n >= 1")
	}
	return &ActionRepeat{Env: env, N: n}
}

// Step implements Env.
func (a *ActionRepeat) Step(action []float64) StepResult {
	var out StepResult
	for i := 0; i < a.N; i++ {
		res := a.Env.Step(action)
		out.Obs = res.Obs
		out.Reward += res.Reward
		out.Done = res.Done
		out.Truncated = res.Truncated
		if res.Done {
			break
		}
	}
	return out
}
