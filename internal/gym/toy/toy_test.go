package toy

import (
	"math"
	"testing"

	"rldecide/internal/gym"
)

func TestChainOptimalPolicy(t *testing.T) {
	c := NewChain(7, 1)
	c.Reset()
	var res gym.StepResult
	for i := 0; i < 10; i++ {
		res = c.Step([]float64{1}) // always right
		if res.Done {
			break
		}
	}
	if !res.Done || res.Reward != 1 {
		t.Fatalf("always-right should win: %+v", res)
	}
	c.Reset()
	for i := 0; i < 10; i++ {
		res = c.Step([]float64{0})
		if res.Done {
			break
		}
	}
	if !res.Done || res.Reward != -1 {
		t.Fatalf("always-left should lose: %+v", res)
	}
}

func TestChainTruncation(t *testing.T) {
	c := NewChain(101, 2)
	c.Reset()
	var res gym.StepResult
	left := true
	for i := 0; i < 1000; i++ {
		// alternate to stay near the middle
		a := 0.0
		if left {
			a = 1
		}
		left = !left
		res = c.Step([]float64{a})
		if res.Done {
			break
		}
	}
	if !res.Truncated {
		t.Fatalf("oscillating policy should truncate: %+v", res)
	}
}

func TestSteer1DOptimalBeatsIdle(t *testing.T) {
	runPolicy := func(policy func(obs []float64) float64) float64 {
		total := 0.0
		const episodes = 20
		env := NewSteer1D(7)
		for ep := 0; ep < episodes; ep++ {
			obs := env.Reset()
			for {
				res := env.Step([]float64{policy(obs)})
				obs = res.Obs
				if res.Done {
					total += res.Reward
					break
				}
			}
		}
		return total / episodes
	}
	idle := runPolicy(func(obs []float64) float64 { return 1 }) // coast
	// Proportional-derivative steering toward 0.
	pd := runPolicy(func(obs []float64) float64 {
		u := -0.8*obs[0] - 2.5*obs[1]
		switch {
		case u > 0.02:
			return 2
		case u < -0.02:
			return 0
		default:
			return 1
		}
	})
	if pd <= idle {
		t.Fatalf("PD policy (%v) should beat idle (%v)", pd, idle)
	}
	if pd < -1.0 {
		t.Fatalf("PD policy should land close to target, got %v", pd)
	}
}

func TestSteer1DDeterministicSeed(t *testing.T) {
	a := NewSteer1D(42)
	b := NewSteer1D(42)
	oa := a.Reset()
	ob := b.Reset()
	if oa[0] != ob[0] {
		t.Fatal("same seed must give same initial state")
	}
	a.Seed(43)
	oc := a.Reset()
	if oc[0] == oa[0] {
		t.Fatal("reseeding should change the initial state (w.h.p.)")
	}
}

func TestSteer1DEpisodeLength(t *testing.T) {
	env := NewSteer1D(3)
	env.Reset()
	n := 0
	for {
		res := env.Step([]float64{1})
		n++
		if res.Done {
			if res.Reward > 0 {
				t.Fatalf("terminal reward must be <= 0: %v", res.Reward)
			}
			break
		}
		if n > env.Horizon {
			t.Fatal("episode exceeded horizon")
		}
	}
	if n != env.Horizon {
		t.Fatalf("episode length %d want %d", n, env.Horizon)
	}
}

func TestMakersProduceIndependentEnvs(t *testing.T) {
	mk := MakeSteer1D()
	e1 := mk(1)
	e2 := mk(2)
	o1 := e1.Reset()
	o2 := e2.Reset()
	if math.Abs(o1[0]-o2[0]) < 1e-15 {
		t.Fatal("different seeds should produce different starts (w.h.p.)")
	}
	mkc := MakeChain(5)
	if mkc(1).ActionSpace().Dim() != 1 {
		t.Fatal("chain maker wrong")
	}
}
