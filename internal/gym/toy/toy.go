// Package toy provides tiny analytically-understood environments used by
// tests, examples and algorithm sanity checks: a discrete chain walk and a
// one-dimensional steering task that is a stripped-down cousin of the
// airdrop simulator.
package toy

import (
	"fmt"
	"math"
	"math/rand/v2"

	"rldecide/internal/gym"
	"rldecide/internal/mathx"
)

// Chain is an N-state corridor. The agent starts in the middle and moves
// left (action 0) or right (action 1); reaching the right end yields +1,
// the left end -1. Optimal return is +1.
type Chain struct {
	N     int
	pos   int
	rng   *rand.Rand
	steps int
}

// NewChain returns a Chain with n states (n >= 3).
func NewChain(n int, seed uint64) *Chain {
	if n < 3 {
		panic("toy: Chain needs n >= 3")
	}
	return &Chain{N: n, rng: mathx.NewRand(seed)}
}

// ObservationSpace implements gym.Env.
func (c *Chain) ObservationSpace() gym.Space { return gym.NewBox(1, 0, float64(c.N-1)) }

// ActionSpace implements gym.Env.
func (c *Chain) ActionSpace() gym.Space { return gym.Discrete{N: 2} }

// Seed implements gym.Env.
func (c *Chain) Seed(seed uint64) { c.rng = mathx.NewRand(seed) }

// Reset implements gym.Env.
func (c *Chain) Reset() []float64 {
	c.pos = c.N / 2
	c.steps = 0
	return []float64{float64(c.pos)}
}

// Step implements gym.Env.
func (c *Chain) Step(action []float64) gym.StepResult {
	if action[0] >= 0.5 {
		c.pos++
	} else {
		c.pos--
	}
	c.steps++
	res := gym.StepResult{Obs: []float64{float64(c.pos)}}
	switch {
	case c.pos <= 0:
		res.Reward = -1
		res.Done = true
	case c.pos >= c.N-1:
		res.Reward = 1
		res.Done = true
	case c.steps >= 4*c.N:
		res.Done = true
		res.Truncated = true
	}
	return res
}

// Snapshot implements gym.StatefulEnv: [pos, steps].
func (c *Chain) Snapshot(dst []float64) []float64 {
	return append(dst, float64(c.pos), float64(c.steps))
}

// Restore implements gym.StatefulEnv.
func (c *Chain) Restore(snap []float64) error {
	if len(snap) != 2 {
		return fmt.Errorf("toy: Chain snapshot needs 2 values, got %d", len(snap))
	}
	c.pos = int(snap[0])
	c.steps = int(snap[1])
	return nil
}

// Steer1D is a one-dimensional "precision landing": the agent starts at a
// random horizontal offset with a fixed descent time budget and steers
// left/coast/right; at the final step the reward is -|position|/scale.
// It is the minimal analogue of the airdrop task: PPO should reach a
// near-zero return, a random policy lands far away.
type Steer1D struct {
	Horizon int     // steps per episode
	MaxOff  float64 // initial |offset| bound
	Accel   float64 // per-step velocity change of steering
	Scale   float64 // reward scale divisor

	pos, vel float64
	t        int
	rng      *rand.Rand
}

// NewSteer1D returns a Steer1D with sensible defaults.
func NewSteer1D(seed uint64) *Steer1D {
	return &Steer1D{
		Horizon: 60,
		MaxOff:  8,
		Accel:   0.08,
		Scale:   1,
		rng:     mathx.NewRand(seed),
	}
}

// ObservationSpace implements gym.Env. Observation = (pos, vel, time left).
func (s *Steer1D) ObservationSpace() gym.Space { return gym.NewBox(3, -100, 100) }

// ActionSpace implements gym.Env: 0=left, 1=coast, 2=right.
func (s *Steer1D) ActionSpace() gym.Space { return gym.Discrete{N: 3} }

// Seed implements gym.Env.
func (s *Steer1D) Seed(seed uint64) { s.rng = mathx.NewRand(seed) }

// Reset implements gym.Env.
func (s *Steer1D) Reset() []float64 {
	s.pos = (s.rng.Float64()*2 - 1) * s.MaxOff
	s.vel = 0
	s.t = 0
	return s.obs()
}

func (s *Steer1D) obs() []float64 {
	return []float64{s.pos, s.vel, float64(s.Horizon-s.t) / float64(s.Horizon)}
}

// Step implements gym.Env.
func (s *Steer1D) Step(action []float64) gym.StepResult {
	dir := action[0] - 1 // -1, 0, +1
	s.vel += dir * s.Accel
	s.vel = mathx.Clip(s.vel, -1, 1)
	s.pos += s.vel
	s.t++
	res := gym.StepResult{Obs: s.obs()}
	if s.t >= s.Horizon {
		res.Done = true
		res.Reward = -math.Abs(s.pos) / s.Scale
	}
	return res
}

// Snapshot implements gym.StatefulEnv: [pos, vel, t].
func (s *Steer1D) Snapshot(dst []float64) []float64 {
	return append(dst, s.pos, s.vel, float64(s.t))
}

// Restore implements gym.StatefulEnv.
func (s *Steer1D) Restore(snap []float64) error {
	if len(snap) != 3 {
		return fmt.Errorf("toy: Steer1D snapshot needs 3 values, got %d", len(snap))
	}
	s.pos = snap[0]
	s.vel = snap[1]
	s.t = int(snap[2])
	return nil
}

// Steer1DC is the continuous-action variant of Steer1D: the action is a
// thrust in [-1, 1] instead of a three-way switch. Used by the
// continuous-PPO tests and examples.
type Steer1DC struct {
	Steer1D
}

// NewSteer1DC returns a continuous Steer1D.
func NewSteer1DC(seed uint64) *Steer1DC {
	return &Steer1DC{Steer1D: *NewSteer1D(seed)}
}

// ActionSpace implements gym.Env.
func (s *Steer1DC) ActionSpace() gym.Space { return gym.NewBox(1, -1, 1) }

// Step implements gym.Env.
func (s *Steer1DC) Step(action []float64) gym.StepResult {
	u := mathx.Clip(action[0], -1, 1)
	// Map the continuous thrust onto the discrete dynamics' scale.
	s.vel += u * s.Accel
	s.vel = mathx.Clip(s.vel, -1, 1)
	s.pos += s.vel
	s.t++
	res := gym.StepResult{Obs: s.obs()}
	if s.t >= s.Horizon {
		res.Done = true
		res.Reward = -math.Abs(s.pos) / s.Scale
	}
	return res
}

// MakeSteer1DC returns an EnvMaker for Steer1DC.
func MakeSteer1DC() gym.EnvMaker {
	return func(seed uint64) gym.Env { return NewSteer1DC(seed) }
}

// MakeChain returns an EnvMaker for Chain.
func MakeChain(n int) gym.EnvMaker {
	return func(seed uint64) gym.Env { return NewChain(n, seed) }
}

// MakeSteer1D returns an EnvMaker for Steer1D.
func MakeSteer1D() gym.EnvMaker {
	return func(seed uint64) gym.Env { return NewSteer1D(seed) }
}
