// Package gym defines the reinforcement-learning environment abstraction
// used throughout the project, modeled after OpenAI gym: environments with
// observation/action spaces, a Reset/Step episode protocol, composable
// wrappers, and vectorized execution.
package gym

import (
	"fmt"
	"math/rand/v2"
)

// Space describes the shape and bounds of observations or actions.
type Space interface {
	// Dim returns the flat dimensionality of elements of the space.
	// For Discrete spaces this is 1 (the action index).
	Dim() int
	// Sample draws a uniform random element of the space into dst
	// (allocating when dst is nil) and returns it.
	Sample(rng *rand.Rand, dst []float64) []float64
	// Contains reports whether x is a valid element.
	Contains(x []float64) bool
	// String describes the space.
	String() string
}

// Discrete is a space of n integer actions {0, ..., n-1}, carried as a
// single float64.
type Discrete struct {
	N int
}

// Dim implements Space.
func (d Discrete) Dim() int { return 1 }

// Sample implements Space.
func (d Discrete) Sample(rng *rand.Rand, dst []float64) []float64 {
	if dst == nil {
		dst = make([]float64, 1)
	}
	dst[0] = float64(rng.IntN(d.N))
	return dst
}

// Contains implements Space.
func (d Discrete) Contains(x []float64) bool {
	if len(x) != 1 {
		return false
	}
	i := int(x[0])
	//lint:ignore float-eq membership in a Discrete space requires x[0] to be exactly integral
	return float64(i) == x[0] && i >= 0 && i < d.N
}

func (d Discrete) String() string { return fmt.Sprintf("Discrete(%d)", d.N) }

// Box is a bounded continuous space. Low and High must have equal length.
type Box struct {
	Low, High []float64
}

// NewBox returns a Box with uniform bounds lo/hi across dim dimensions.
func NewBox(dim int, lo, hi float64) Box {
	l := make([]float64, dim)
	h := make([]float64, dim)
	for i := range l {
		l[i] = lo
		h[i] = hi
	}
	return Box{Low: l, High: h}
}

// Dim implements Space.
func (b Box) Dim() int { return len(b.Low) }

// Sample implements Space.
func (b Box) Sample(rng *rand.Rand, dst []float64) []float64 {
	if dst == nil {
		dst = make([]float64, len(b.Low))
	}
	for i := range b.Low {
		dst[i] = b.Low[i] + rng.Float64()*(b.High[i]-b.Low[i])
	}
	return dst
}

// Contains implements Space.
func (b Box) Contains(x []float64) bool {
	if len(x) != len(b.Low) {
		return false
	}
	for i := range x {
		if x[i] < b.Low[i] || x[i] > b.High[i] {
			return false
		}
	}
	return true
}

func (b Box) String() string { return fmt.Sprintf("Box(%d)", len(b.Low)) }

// StepResult carries the outcome of one environment step.
//
// Obs may be a buffer owned by the environment and reused by its next
// Step/Reset call: it is valid until then, and consumers that retain
// observations across steps (rollout buffers, replay memories) must copy
// it. This is what lets environments run steady-state allocation-free.
type StepResult struct {
	Obs       []float64 // next observation (valid until the env's next Step/Reset)
	Reward    float64
	Done      bool // episode terminated (success, failure, or time limit)
	Truncated bool // Done was caused by a time limit, not the task
}

// Env is a single reinforcement-learning environment. Implementations are
// not required to be safe for concurrent use; vectorized execution creates
// one Env per worker.
type Env interface {
	// ObservationSpace and ActionSpace describe the interface of the env.
	ObservationSpace() Space
	ActionSpace() Space
	// Reset starts a new episode and returns the initial observation.
	Reset() []float64
	// Step applies an action and advances the simulation.
	Step(action []float64) StepResult
	// Seed reseeds the environment's internal randomness.
	Seed(seed uint64)
}

// EnvMaker constructs a fresh, independently seeded environment instance.
// Vectorized and distributed trainers use it to build per-worker envs.
type EnvMaker func(seed uint64) Env

// Costed is implemented by environments that know the virtual CPU cost of
// one Step (used by the cluster simulator to account computation time).
type Costed interface {
	// StepCost returns the modeled CPU time of one env step in seconds.
	StepCost() float64
}
