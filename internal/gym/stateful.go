package gym

// StatefulEnv is implemented by environments whose complete dynamical
// state can be exported as a flat vector and re-imported later — the
// snapshot/restore seam the decision-analysis subsystem builds
// counterfactual rollouts on: save the state at a decision point, then
// branch the episode under alternative actions.
//
// The snapshot covers everything Step reads except the RNG stream
// (math/rand/v2 generators do not expose their state): position,
// velocities, counters, latched flags. Callers that need reproducible
// branches therefore pair Restore with Seed — after
//
//	env.Seed(s)
//	env.Restore(snap)
//
// two environments fed identical actions produce identical StepResults.
// Using the same seed for every branch of one decision point gives
// common random numbers across the alternatives, so return differences
// measure the action, not the noise draw.
type StatefulEnv interface {
	Env
	// Snapshot appends the full dynamical state to dst (allocating when
	// dst is nil) and returns it. The encoding is env-specific but stable
	// for a given environment type.
	Snapshot(dst []float64) []float64
	// Restore loads a vector produced by Snapshot on an environment of
	// the same type and configuration. It replaces any in-progress
	// episode; the environment is ready to Step immediately.
	Restore(snap []float64) error
}
