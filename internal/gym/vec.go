package gym

import (
	"sync"

	"rldecide/internal/mathx"
)

// VecStep is the per-environment outcome of a vectorized step. When an
// episode ends the environment is reset automatically: Obs then holds the
// next episode's initial observation and FinalObs the terminal observation
// of the finished episode (needed to bootstrap truncated episodes).
type VecStep struct {
	Obs       []float64
	Reward    float64
	Done      bool
	Truncated bool
	FinalObs  []float64
}

// VecEnv runs n environments in lockstep with auto-reset, either serially
// or fanned out over goroutines. It mirrors stable-baselines' VecEnv /
// TF-Agents' batched drivers.
type VecEnv struct {
	envs     []Env
	parallel bool

	steps    []VecStep   // reused result slice
	finalBuf [][]float64 // per-env scratch for FinalObs copies
}

// NewVec builds n environments with maker, each deterministically seeded
// from seeder. If parallel is true, Step fans the per-env work across
// goroutines (one per environment).
func NewVec(maker EnvMaker, n int, seeder *mathx.Seeder, parallel bool) *VecEnv {
	if n <= 0 {
		panic("gym: NewVec needs n > 0")
	}
	envs := make([]Env, n)
	for i := range envs {
		envs[i] = maker(seeder.Next())
	}
	return &VecEnv{envs: envs, parallel: parallel}
}

// N returns the number of environments.
func (v *VecEnv) N() int { return len(v.envs) }

// Env returns the i-th underlying environment.
func (v *VecEnv) Env(i int) Env { return v.envs[i] }

// ObservationSpace returns the (shared) observation space.
func (v *VecEnv) ObservationSpace() Space { return v.envs[0].ObservationSpace() }

// ActionSpace returns the (shared) action space.
func (v *VecEnv) ActionSpace() Space { return v.envs[0].ActionSpace() }

// Reset resets all environments and returns their initial observations.
func (v *VecEnv) Reset() [][]float64 {
	obs := make([][]float64, len(v.envs))
	v.forEach(func(i int) {
		obs[i] = v.envs[i].Reset()
	})
	return obs
}

// Step applies actions (one per env) and returns per-env results with
// auto-reset semantics. The returned slice and the Obs/FinalObs it carries
// are reused by the next Step call — copy to retain (the gym.StepResult
// contract, batched).
func (v *VecEnv) Step(actions [][]float64) []VecStep {
	if len(actions) != len(v.envs) {
		panic("gym: VecEnv.Step action count mismatch")
	}
	if v.steps == nil {
		v.steps = make([]VecStep, len(v.envs))
		v.finalBuf = make([][]float64, len(v.envs))
	}
	v.forEach(func(i int) {
		res := v.envs[i].Step(actions[i])
		vs := VecStep{Reward: res.Reward, Done: res.Done, Truncated: res.Truncated}
		if res.Done {
			// The env may reuse its observation buffer, so the terminal
			// observation must be copied out before Reset overwrites it.
			if v.finalBuf[i] == nil {
				v.finalBuf[i] = make([]float64, len(res.Obs))
			}
			copy(v.finalBuf[i], res.Obs)
			vs.FinalObs = v.finalBuf[i]
			vs.Obs = v.envs[i].Reset()
		} else {
			vs.Obs = res.Obs
		}
		v.steps[i] = vs
	})
	return v.steps
}

func (v *VecEnv) forEach(fn func(i int)) {
	if !v.parallel || len(v.envs) == 1 {
		for i := range v.envs {
			fn(i)
		}
		return
	}
	var wg sync.WaitGroup
	wg.Add(len(v.envs))
	for i := range v.envs {
		go func(i int) {
			defer wg.Done()
			fn(i)
		}(i)
	}
	wg.Wait()
}
