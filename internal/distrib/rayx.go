package distrib

import (
	"fmt"
	"math"

	"rldecide/internal/cluster"
	"rldecide/internal/gym"
	"rldecide/internal/mathx"
	"rldecide/internal/nn"
	"rldecide/internal/rl"
	"rldecide/internal/rl/ppo"
	"rldecide/internal/rl/sac"
)

// rayxTrainer is the RLlib-style backend: a driver/learner on node 0 and
// one rollout worker per core on every node. Remote workers pay
// serialization overhead per sample, ship their batches over the link, and
// receive weights one sync round late — so multi-node runs are faster in
// wall time but train on slightly stale policies, reproducing the paper's
// reward gap between 1-node and 2-node RLlib configurations.
type rayxTrainer struct{}

// Name implements Trainer.
func (rayxTrainer) Name() Framework { return RLlib }

// Train implements Trainer.
func (rayxTrainer) Train(cfg TrainConfig) (Result, error) {
	cfg.Framework = RLlib
	full, err := cfg.withDefaults()
	if err != nil {
		return Result{}, err
	}
	sim := cluster.New(full.clusterConfig())
	seeder := mathx.NewSeeder(full.Seed)
	switch full.Algo {
	case PPO:
		return trainRayPPO(full, sim, seeder)
	case SAC:
		return trainRaySAC(full, sim, seeder)
	}
	return Result{}, fmt.Errorf("distrib: unreachable algo %q", full.Algo)
}

// nodeWorkers is the per-node worker group: a vectorized env (one env per
// core), a policy copy and a collector.
type nodeWorkers struct {
	vec *gym.VecEnv
	pol *ppo.PPO
	col *ppo.Collector
}

func trainRayPPO(cfg TrainConfig, sim *cluster.Sim, seeder *mathx.Seeder) (Result, error) {
	probe := cfg.EnvMaker(seeder.Next())
	nActions, err := actionCountOf(probe.ActionSpace())
	if err != nil {
		return Result{}, err
	}
	obsDim := probe.ObservationSpace().Dim()
	envCost := envStepCost(&cfg, probe)

	pcfg := ppoPreset(RLlib)
	if cfg.PPOConfig != nil {
		pcfg = *cfg.PPOConfig
	}
	learner := ppo.New(pcfg, obsDim, nActions, seeder.Next())
	updCostPerSample := ppoUpdateCostPerSampleEpoch * float64(learner.Cfg.Epochs)

	groups := make([]*nodeWorkers, cfg.Nodes)
	for n := range groups {
		vec := gym.NewVec(cfg.EnvMaker, cfg.Cores, seeder, false)
		pol := ppo.New(pcfg, obsDim, nActions, seeder.Next())
		pol.SetWeights(learner.Weights())
		groups[n] = &nodeWorkers{vec: vec, pol: pol, col: ppo.NewCollector(vec)}
	}
	// Remote workers run behind the learner: with the asynchronous
	// sampling pipeline, a remote worker's batch for round k was collected
	// with the weights of round k-remoteWeightLag (in-flight collection,
	// transfer and broadcast each add a round). This is the genuine
	// mechanism behind the paper's reward loss when distributing across
	// nodes.
	weightHist := [][]float64{learner.Weights()}
	weightBytes := int64(learner.NumWeights() * weightBytes4)

	var curve curveTracker
	steps := 0
	for steps < cfg.TotalSteps {
		learner.SetLR(pcfg.WithDefaults().LR * lrDecay(steps, cfg.TotalSteps))
		learner.SetEntCoef(entAnneal(pcfg.WithDefaults().EntCoef, steps, cfg.TotalSteps))
		merged := &rl.Rollout{}
		var windowEps []float64
		for n, g := range groups {
			roll := g.col.Collect(g.pol, cfg.RolloutSteps)
			merged.Segments = append(merged.Segments, roll.Segments...)
			windowEps = append(windowEps, g.col.TakeEpisodes()...)

			perStep := envCost + rayLocalPerStep
			if n != 0 {
				perStep = envCost + rayRemotePerStep
			}
			sim.Run(n, cfg.Cores, float64(cfg.RolloutSteps)*perStep)
		}
		// Remote sample batches ship to the driver (synchronizes clocks;
		// the driver idles until the slowest worker node delivers).
		for n := 1; n < cfg.Nodes; n++ {
			sim.Transfer(n, 0, int64(cfg.Cores*cfg.RolloutSteps*sampleBytes))
		}

		n := merged.Steps()
		steps += n
		learner.Update(merged)
		sim.Run(0, 1, float64(n)*updCostPerSample)

		// Weight sync: the driver-node workers act with the fresh weights
		// next round; remote workers act with weights remoteWeightLag
		// rounds old (their broadcasts overlap in-flight collection).
		newWeights := learner.Weights()
		weightHist = append(weightHist, newWeights)
		if len(weightHist) > remoteWeightLag+1 {
			weightHist = weightHist[1:]
		}
		groups[0].pol.SetWeights(newWeights)
		for i := 1; i < len(groups); i++ {
			groups[i].pol.SetWeights(weightHist[0])
		}
		sim.Broadcast(0, weightBytes)

		curve.flush(steps, windowEps)
	}

	eval := evaluatePolicy(&cfg, seeder, learner.StochasticPolicy())
	res := Result{
		Framework: RLlib, Algo: PPO, Nodes: cfg.Nodes, Cores: cfg.Cores,
		MeanReward: eval.MeanReturn, StdReward: eval.StdReturn,
		Steps: steps, Episodes: curve.episodes, Curve: curve.points,
	}
	finishResult(&res, sim)
	return res, nil
}

// sacActorGroup is a per-node SAC collection group acting with a copy of
// the learner's actor network.
type sacActorGroup struct {
	vec   *gym.VecEnv
	actor *nn.MLP
	rng   rngSource
	obs   [][]float64
	epRet []float64
}

type rngSource interface {
	IntN(int) int
	Float64() float64
}

func trainRaySAC(cfg TrainConfig, sim *cluster.Sim, seeder *mathx.Seeder) (Result, error) {
	probe := cfg.EnvMaker(seeder.Next())
	nActions, err := actionCountOf(probe.ActionSpace())
	if err != nil {
		return Result{}, err
	}
	obsDim := probe.ObservationSpace().Dim()
	envCost := envStepCost(&cfg, probe)

	scfg := sacPreset(RLlib)
	if cfg.SACConfig != nil {
		scfg = *cfg.SACConfig
	}
	learner := sac.New(scfg, obsDim, nActions, seeder.Next())
	weightBytes := int64(learner.Actor.NumParams() * weightBytes4)

	groups := make([]*sacActorGroup, cfg.Nodes)
	for n := range groups {
		vec := gym.NewVec(cfg.EnvMaker, cfg.Cores, seeder, false)
		g := &sacActorGroup{
			vec:   vec,
			actor: learner.Actor.Clone(),
			rng:   seeder.NewRand(),
			epRet: make([]float64, cfg.Cores),
		}
		// Owned copies: the envs reuse their observation buffers.
		g.obs = make([][]float64, cfg.Cores)
		for i, o := range vec.Reset() {
			g.obs[i] = append([]float64(nil), o...)
		}
		groups[n] = g
	}

	const syncEvery = 32 // env steps per actor between weight syncs
	var curve curveTracker
	var window []float64
	steps := 0
	warmup := learner.Cfg.StartSteps

	// The shipped batch is buffered per round with slot-owned observation
	// storage (the envs reuse theirs), allocated once for the round size.
	transBuf := make([]rl.Transition, cfg.Nodes*cfg.Cores*syncEvery)
	for i := range transBuf {
		transBuf[i].Obs = make([]float64, obsDim)
		transBuf[i].NextObs = make([]float64, obsDim)
	}
	actions := make([][]float64, cfg.Cores)
	for i := range actions {
		actions[i] = []float64{0}
	}
	acts := make([]int, cfg.Cores)

	for steps < cfg.TotalSteps {
		transitions := transBuf[:0]
		for n, g := range groups {
			for t := 0; t < syncEvery; t++ {
				for i := 0; i < cfg.Cores; i++ {
					var a int
					if steps < warmup {
						a = g.rng.IntN(nActions)
					} else {
						a = sampleFromActor(g.actor, g.rng, g.obs[i])
					}
					acts[i] = a
					actions[i][0] = float64(a)
				}
				stepRes := g.vec.Step(actions)
				for i := range stepRes {
					s := &stepRes[i]
					next := s.Obs
					if s.Done {
						next = s.FinalObs
					}
					transitions = transitions[:len(transitions)+1]
					tr := &transitions[len(transitions)-1]
					copy(tr.Obs, g.obs[i])
					tr.Action = acts[i]
					tr.Reward = s.Reward
					copy(tr.NextObs, next)
					tr.Done = s.Done && !s.Truncated
					g.epRet[i] += s.Reward
					if s.Done {
						window = append(window, g.epRet[i])
						g.epRet[i] = 0
					}
					copy(g.obs[i], s.Obs)
					steps++
				}
			}
			perStep := envCost + rayLocalPerStep
			if n != 0 {
				perStep = envCost + rayRemotePerStep
			}
			sim.Run(n, cfg.Cores, float64(syncEvery)*perStep)
		}
		for n := 1; n < cfg.Nodes; n++ {
			sim.Transfer(n, 0, int64(cfg.Cores*syncEvery*sampleBytes))
		}

		// The learner consumes the shipped transitions, one gradient round
		// per environment step as configured, serialized on the driver.
		updates := 0
		for _, tr := range transitions {
			if _, ok := learner.Observe(tr); ok {
				updates++
			}
		}
		if updates > 0 {
			sim.Run(0, 1, float64(updates*learner.Cfg.UpdatesPerRnd)*sacUpdateCostPerGradStep)
		}

		// Fresh actor weights go out to every group.
		for _, g := range groups {
			g.actor.SetWeights(learner.Actor.Weights())
		}
		sim.Broadcast(0, weightBytes)

		if len(window) >= 10 {
			curve.flush(steps, window)
			window = nil
		}
	}
	curve.flush(steps, window)

	eval := evaluatePolicy(&cfg, seeder, learner.StochasticPolicy())
	res := Result{
		Framework: RLlib, Algo: SAC, Nodes: cfg.Nodes, Cores: cfg.Cores,
		MeanReward: eval.MeanReturn, StdReward: eval.StdReturn,
		Steps: steps, Episodes: curve.episodes, Curve: curve.points,
	}
	finishResult(&res, sim)
	return res, nil
}

// sampleFromActor draws a categorical action from an actor-network copy.
// The probabilities are recomputed on the fly rather than buffered; the
// arithmetic (exp(v-mx)/sum accumulated in ascending order) matches the
// softmax-then-scan form exactly, so sampled sequences are unchanged.
func sampleFromActor(actor *nn.MLP, rng rngSource, obs []float64) int {
	logits := actor.Forward1(obs)
	mx := logits[0]
	for _, v := range logits[1:] {
		if v > mx {
			mx = v
		}
	}
	sum := 0.0
	for _, v := range logits {
		sum += math.Exp(v - mx)
	}
	u := rng.Float64()
	acc := 0.0
	for i, v := range logits {
		acc += math.Exp(v-mx) / sum
		if u <= acc {
			return i
		}
	}
	return len(logits) - 1
}
