package distrib

import (
	"fmt"

	"rldecide/internal/cluster"
	"rldecide/internal/gym"
	"rldecide/internal/mathx"
	"rldecide/internal/rl"
	"rldecide/internal/rl/ppo"
	"rldecide/internal/rl/sac"
)

// singleNodeProfile captures how a single-node framework spends CPU around
// the raw environment compute.
type singleNodeProfile struct {
	framework Framework
	// busyFactor multiplies env compute as additional busy CPU work
	// (driver bookkeeping); 1.0 means no extra busy work.
	busyFactor float64
	// idleFactor multiplies env compute as idle synchronization time
	// (lockstep barriers).
	idleFactor float64
}

// train runs a full single-node job (PPO or SAC) under the profile.
func (p singleNodeProfile) train(cfg TrainConfig) (Result, error) {
	cfg, err := cfg.withDefaults()
	if err != nil {
		return Result{}, err
	}
	if cfg.Nodes != 1 {
		return Result{}, fmt.Errorf("distrib: %s trains on a single node (got %d); multi-node runs need %s", p.framework, cfg.Nodes, RLlib)
	}
	sim := cluster.New(cfg.clusterConfig())
	seeder := mathx.NewSeeder(cfg.Seed)

	switch cfg.Algo {
	case PPO:
		return p.trainPPO(cfg, sim, seeder)
	case SAC:
		return p.trainSAC(cfg, sim, seeder)
	}
	return Result{}, fmt.Errorf("distrib: unreachable algo %q", cfg.Algo)
}

func (p singleNodeProfile) trainPPO(cfg TrainConfig, sim *cluster.Sim, seeder *mathx.Seeder) (Result, error) {
	nEnv := cfg.Cores // one vectorized environment per CPU core
	vec := gym.NewVec(cfg.EnvMaker, nEnv, seeder, false)
	nActions, err := actionCountOf(vec.ActionSpace())
	if err != nil {
		return Result{}, err
	}
	pcfg := ppoPreset(p.framework)
	if cfg.PPOConfig != nil {
		pcfg = *cfg.PPOConfig
	}
	learner := ppo.New(pcfg, vec.ObservationSpace().Dim(), nActions, seeder.Next())
	col := ppo.NewCollector(vec)
	envCost := envStepCost(&cfg, vec.Env(0))
	updCostPerSample := ppoUpdateCostPerSampleEpoch * float64(learner.Cfg.Epochs)

	var curve curveTracker
	steps := 0
	for steps < cfg.TotalSteps {
		// Linear learning-rate decay to zero over the training budget, as
		// the reference PPO implementations default to; entropy annealed
		// to the framework's final coefficient.
		learner.SetLR(pcfg.WithDefaults().LR * lrDecay(steps, cfg.TotalSteps))
		learner.SetEntCoef(entAnneal(pcfg.WithDefaults().EntCoef, steps, cfg.TotalSteps))
		roll := col.Collect(learner, cfg.RolloutSteps)
		n := roll.Steps()
		steps += n

		// Virtual cost of the collection phase: the vector steps run in
		// lockstep across nEnv cores; the profile decides whether the
		// overhead is busy driver work or idle barrier time.
		perEnvSteps := float64(cfg.RolloutSteps)
		sim.Run(0, nEnv, perEnvSteps*envCost*p.busyFactor)
		if p.idleFactor > 0 {
			sim.Idle(0, perEnvSteps*envCost*p.idleFactor)
		}

		learner.Update(roll)
		sim.Run(0, 1, float64(n)*updCostPerSample)

		curve.flush(steps, col.TakeEpisodes())
	}

	eval := evaluatePolicy(&cfg, seeder, learner.StochasticPolicy())
	res := Result{
		Framework: p.framework, Algo: PPO, Nodes: 1, Cores: cfg.Cores,
		MeanReward: eval.MeanReturn, StdReward: eval.StdReturn,
		Steps: steps, Episodes: curve.episodes, Curve: curve.points,
	}
	finishResult(&res, sim)
	return res, nil
}

func (p singleNodeProfile) trainSAC(cfg TrainConfig, sim *cluster.Sim, seeder *mathx.Seeder) (Result, error) {
	nEnv := cfg.Cores
	vec := gym.NewVec(cfg.EnvMaker, nEnv, seeder, false)
	nActions, err := actionCountOf(vec.ActionSpace())
	if err != nil {
		return Result{}, err
	}
	scfg := sacPreset(p.framework)
	if cfg.SACConfig != nil {
		scfg = *cfg.SACConfig
	}
	learner := sac.New(scfg, vec.ObservationSpace().Dim(), nActions, seeder.Next())
	envCost := envStepCost(&cfg, vec.Env(0))

	var curve curveTracker
	// Keep owned copies of the per-env observations: the envs reuse their
	// observation buffers (gym.StepResult contract), and the pre-step obs
	// must survive the vec.Step that produces its successor.
	obs := make([][]float64, nEnv)
	for i, o := range vec.Reset() {
		obs[i] = append([]float64(nil), o...)
	}
	actions := make([][]float64, nEnv)
	for i := range actions {
		actions[i] = []float64{0}
	}
	epRet := make([]float64, nEnv)
	var window []float64

	steps := 0
	for steps < cfg.TotalSteps {
		for i := 0; i < nEnv; i++ {
			actions[i][0] = float64(learner.Act(obs[i]))
		}
		stepRes := vec.Step(actions)
		// Collection: one lockstep vector step across nEnv cores.
		sim.Run(0, nEnv, envCost*p.busyFactor)
		if p.idleFactor > 0 {
			sim.Idle(0, envCost*p.idleFactor)
		}
		updates := 0
		for i, s := range stepRes {
			next := s.Obs
			if s.Done {
				next = s.FinalObs
			}
			_, ok := learner.Observe(rl.Transition{
				Obs:     obs[i],
				Action:  int(actions[i][0]),
				Reward:  s.Reward,
				NextObs: next,
				Done:    s.Done && !s.Truncated,
			})
			if ok {
				updates++
			}
			epRet[i] += s.Reward
			if s.Done {
				window = append(window, epRet[i])
				epRet[i] = 0
			}
			copy(obs[i], s.Obs)
			steps++
		}
		// SAC's gradient rounds are serialized on the learner core.
		if updates > 0 {
			sim.Run(0, 1, float64(updates*learner.Cfg.UpdatesPerRnd)*sacUpdateCostPerGradStep)
		}
		if len(window) >= 10 {
			curve.flush(steps, window)
			window = nil
		}
	}
	curve.flush(steps, window)

	eval := evaluatePolicy(&cfg, seeder, learner.StochasticPolicy())
	res := Result{
		Framework: p.framework, Algo: SAC, Nodes: 1, Cores: cfg.Cores,
		MeanReward: eval.MeanReturn, StdReward: eval.StdReturn,
		Steps: steps, Episodes: curve.episodes, Curve: curve.points,
	}
	finishResult(&res, sim)
	return res, nil
}

// sbxTrainer is the Stable-Baselines-style backend.
type sbxTrainer struct{}

// Name implements Trainer.
func (sbxTrainer) Name() Framework { return StableBaselines }

// Train implements Trainer.
func (sbxTrainer) Train(cfg TrainConfig) (Result, error) {
	cfg.Framework = StableBaselines
	return singleNodeProfile{
		framework:  StableBaselines,
		busyFactor: 1.0,
		idleFactor: sbSyncOverhead - 1,
	}.train(cfg)
}

// tfaxTrainer is the TF-Agents-style backend.
type tfaxTrainer struct{}

// Name implements Trainer.
func (tfaxTrainer) Name() Framework { return TFAgents }

// Train implements Trainer.
func (tfaxTrainer) Train(cfg TrainConfig) (Result, error) {
	cfg.Framework = TFAgents
	return singleNodeProfile{
		framework:  TFAgents,
		busyFactor: tfaDriverOverhead,
		idleFactor: 0,
	}.train(cfg)
}
