package distrib

import (
	"fmt"

	"rldecide/internal/gym"
	"rldecide/internal/mathx"
	"rldecide/internal/rl"
)

// actionCountOf extracts the discrete action count of a space.
func actionCountOf(s gym.Space) (int, error) {
	d, ok := s.(gym.Discrete)
	if !ok {
		return 0, fmt.Errorf("distrib: discrete action space required, got %s", s)
	}
	return d.N, nil
}

// evaluatePolicy runs the final evaluation on a freshly seeded env. The
// trainers evaluate the *stochastic* policy — the object the algorithms
// actually optimize (and RLlib's default evaluation behaviour) — so the
// sharpness of the final policy shows up in the reported reward.
func evaluatePolicy(cfg *TrainConfig, seeder *mathx.Seeder, policy rl.Policy) rl.EvalResult {
	env := cfg.EnvMaker(seeder.Next())
	return rl.Evaluate(env, policy, cfg.EvalEpisodes)
}

// lrDecay returns the linear-to-zero learning-rate factor at the given
// progress, floored at 5% so late rollouts still learn.
func lrDecay(steps, total int) float64 {
	f := 1 - float64(steps)/float64(total)
	if f < 0.05 {
		f = 0.05
	}
	return f
}

// entAnneal interpolates the entropy coefficient from the shared
// exploration level down to the framework preset's final value: every
// backend explores equally early on, but they converge to policies of
// different sharpness — which the stochastic evaluation prices.
func entAnneal(finalCoef float64, steps, total int) float64 {
	const explore = 0.01
	progress := float64(steps) / float64(total)
	if progress > 1 {
		progress = 1
	}
	return explore + (finalCoef-explore)*progress
}

// curveTracker aggregates finished-episode returns into learning-curve
// points, one point per flush.
type curveTracker struct {
	points   []CurvePoint
	episodes int
}

// flush records the episodes completed during the last window at the given
// cumulative step count.
func (c *curveTracker) flush(steps int, eps []float64) {
	if len(eps) == 0 {
		return
	}
	c.episodes += len(eps)
	c.points = append(c.points, CurvePoint{Steps: steps, Reward: mathx.Mean(eps)})
}
