package distrib

import (
	"fmt"
	"math"

	"rldecide/internal/gym"
	"rldecide/internal/mathx"
	"rldecide/internal/rl"
)

// actionCountOf extracts the discrete action count of a space.
func actionCountOf(s gym.Space) (int, error) {
	d, ok := s.(gym.Discrete)
	if !ok {
		return 0, fmt.Errorf("distrib: discrete action space required, got %s", s)
	}
	return d.N, nil
}

// evaluatePolicy runs the final evaluation on a freshly seeded env. The
// trainers evaluate the *stochastic* policy — the object the algorithms
// actually optimize (and RLlib's default evaluation behaviour) — so the
// sharpness of the final policy shows up in the reported reward.
//
// When cfg.EpisodeSink is set, every evaluation episode is additionally
// recorded as an rl.Episode — the trajectory journal the decision
// analyzers consume. The recorded path runs the same episodes off the
// same seeds (recording copies data, never draws randomness), so the
// EvalResult is bit-identical with the sink attached or nil.
func evaluatePolicy(cfg *TrainConfig, seeder *mathx.Seeder, policy rl.Policy) rl.EvalResult {
	env := cfg.EnvMaker(seeder.Next())
	if cfg.EpisodeSink == nil {
		return rl.Evaluate(env, policy, cfg.EvalEpisodes)
	}
	returns := make([]float64, cfg.EvalEpisodes)
	totalLen := 0
	for i := range returns {
		ep := rl.RecordEpisode(env, policy)
		ep.Index = i
		cfg.EpisodeSink.Record(ep)
		returns[i] = ep.Return
		totalLen += ep.Len()
	}
	// Statistics computed exactly as rl.Evaluate computes them (same
	// accumulation order), so the two paths report the same bits.
	mean := mathx.Mean(returns)
	varsum := 0.0
	for _, r := range returns {
		varsum += (r - mean) * (r - mean)
	}
	std := 0.0
	if len(returns) > 1 {
		std = math.Sqrt(varsum / float64(len(returns)))
	}
	return rl.EvalResult{
		MeanReturn: mean,
		StdReturn:  std,
		MeanLength: float64(totalLen) / float64(cfg.EvalEpisodes),
		Episodes:   cfg.EvalEpisodes,
	}
}

// lrDecay returns the linear-to-zero learning-rate factor at the given
// progress, floored at 5% so late rollouts still learn.
func lrDecay(steps, total int) float64 {
	f := 1 - float64(steps)/float64(total)
	if f < 0.05 {
		f = 0.05
	}
	return f
}

// entAnneal interpolates the entropy coefficient from the shared
// exploration level down to the framework preset's final value: every
// backend explores equally early on, but they converge to policies of
// different sharpness — which the stochastic evaluation prices.
func entAnneal(finalCoef float64, steps, total int) float64 {
	const explore = 0.01
	progress := float64(steps) / float64(total)
	if progress > 1 {
		progress = 1
	}
	return explore + (finalCoef-explore)*progress
}

// curveTracker aggregates finished-episode returns into learning-curve
// points, one point per flush.
type curveTracker struct {
	points   []CurvePoint
	episodes int
}

// flush records the episodes completed during the last window at the given
// cumulative step count.
func (c *curveTracker) flush(steps int, eps []float64) {
	if len(eps) == 0 {
		return
	}
	c.episodes += len(eps)
	c.points = append(c.points, CurvePoint{Steps: steps, Reward: mathx.Mean(eps)})
}
