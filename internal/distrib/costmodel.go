package distrib

import (
	"rldecide/internal/rl/ppo"
	"rldecide/internal/rl/sac"
)

// Calibration constants of the virtual cost model. They are tuned (see
// DESIGN.md §5 and internal/experiments) so that the paper's published
// anchors hold for 200k-step runs on the 2×(Xeon W-2102, 4 cores) testbed:
// sol 2 ≈ 46 min / ≈200 kJ, sol 5 ≈ 49 min, sol 7 ≈ 85 min,
// sol 11 ≈ 49 min / ≈120 kJ, sol 16 ≈ 65 min.
const (
	// defaultEnvStepCost is used when the environment does not implement
	// gym.Costed.
	defaultEnvStepCost = 0.046 // seconds

	// ppoUpdateCostPerSampleEpoch is the modeled learner CPU time to push
	// one sample through one optimization epoch (forward+backward of the
	// actor-critic pair at minibatch granularity).
	ppoUpdateCostPerSampleEpoch = 0.00015 // seconds

	// sacUpdateCostPerGradStep is the modeled CPU time of one SAC gradient
	// round (actor + twin critics + targets on one minibatch). SAC takes
	// one round per environment step, which is what makes it expensive.
	sacUpdateCostPerGradStep = 0.020 // seconds

	// sbSyncOverhead is the lockstep-synchronization overhead of the
	// stable-baselines-style vectorized environment: the vector step's
	// wall time is envCost × sbSyncOverhead, the overhead fraction spent
	// idle at the barrier.
	sbSyncOverhead = 1.04

	// tfaDriverOverhead is the TF-Agents-style driver bookkeeping per
	// step, executed as CPU work on the same cores (no idle waste): wall
	// time per vector step = envCost × tfaDriverOverhead, all cores busy.
	tfaDriverOverhead = 1.075

	// rayLocalPerStep / rayRemotePerStep are the per-environment-step
	// worker-loop overheads of the RLlib-style backend (sampling loop,
	// batch building, object-store serialization). Remote workers pay the
	// larger cost; it is CPU-busy work. Seconds per step.
	rayLocalPerStep  = 0.0252
	rayRemotePerStep = 0.0441

	// sampleBytes is the wire size of one transition in a shipped sample
	// batch (float32 obs + action + reward + logp + value + flags).
	sampleBytes = 64

	// remoteWeightLag is how many optimization rounds behind the learner
	// a remote worker's acting policy runs (asynchronous sampling:
	// in-flight collection + batch transfer + weight broadcast).
	remoteWeightLag = 3

	// weightBytes4 converts a float parameter count to wire bytes
	// (float32 transport).
	weightBytes4 = 4
)

// ppoPreset returns the framework-flavored PPO hyperparameters, mirroring
// the libraries' differing defaults (SB3: 10 epochs × minibatch 64;
// RLlib: 8 × 128; TF-Agents: 10 × 128). These genuinely shift final
// policy quality, which is part of what the paper's methodology surfaces.
func ppoPreset(f Framework) ppo.Config {
	// γ/λ are set for long-horizon sparse-terminal-reward tasks (episodes
	// run to several hundred steps before the landing reward arrives).
	// The per-framework flavors scale the real libraries' differing stock
	// hyperparameters: SB3 ships the famously well-tuned (10 epochs,
	// minibatch 64, lr 3e-4); RLlib's stock PPO uses a conservative
	// learning rate with many SGD iterations (5e-5 × 30 — scaled here to
	// the reduced budget); TF-Agents defaults to many epochs per batch
	// (25 — likewise scaled). These flavor differences are part of what
	// the paper's methodology is designed to surface.
	base := ppo.Config{Gamma: 0.999, Lambda: 0.98}
	switch f {
	case StableBaselines:
		// SB3 additionally ships ent_coef = 0.0: its policies anneal to
		// the sharpest final distribution, which the stochastic
		// evaluation rewards (EntCoef here is the *final* annealed value;
		// see entAnneal).
		base.Epochs, base.Minibatch, base.LR, base.EntCoef = 10, 64, 3e-4, 0.0005
	case TFAgents:
		base.Epochs, base.Minibatch, base.LR, base.EntCoef = 15, 128, 2.5e-4, 0.012
	default: // RLlib
		base.Epochs, base.Minibatch, base.LR, base.EntCoef = 16, 128, 1.5e-4, 0.015
	}
	return base
}

// sacPreset returns the framework-flavored SAC hyperparameters.
func sacPreset(f Framework) sac.Config {
	cfg := sac.Config{}
	if f == StableBaselines {
		cfg.Batch = 256 // SB3's default batch is larger
	}
	return cfg
}
