// Package distrib implements the three distributed-RL training backends
// the paper compares — architectural stand-ins for Ray RLlib, Stable
// Baselines and TF-Agents — on top of the virtual cluster simulator.
//
// Each backend runs *real* learning (the PPO/SAC learners from
// internal/rl on the real environment) while posting the modeled cost of
// every phase to a cluster.Sim, so a finished run reports genuine rewards
// together with virtual Computation Time and Power Consumption:
//
//   - rayx ("rllib"): multi-node actor/learner. One rollout worker per
//     core on every node; remote workers ship sample batches over the
//     1 Gbps link, pay per-sample serialization overhead, and act with
//     weights one sync round stale — which is the genuine mechanism behind
//     the paper's observation that distributing across nodes costs reward.
//   - sbx ("stablebaselines"): single node, synchronous vectorized
//     environments (one per core) with a small lockstep-synchronization
//     overhead, learner on one core.
//   - tfax ("tfagents"): single node, parallel driver/collector that keeps
//     all cores saturated (driver bookkeeping is CPU work, not idle time) —
//     slightly slower per step than sbx but the most power-efficient
//     profile at full core count, as in the paper.
package distrib

import (
	"fmt"
	"math"

	"rldecide/internal/cluster"
	"rldecide/internal/gym"
	"rldecide/internal/rl"
	"rldecide/internal/rl/ppo"
	"rldecide/internal/rl/sac"
)

// Framework names a training backend.
type Framework string

// The three frameworks of the paper's study.
const (
	RLlib           Framework = "rllib"
	StableBaselines Framework = "stablebaselines"
	TFAgents        Framework = "tfagents"
)

// Frameworks lists all supported backends.
func Frameworks() []Framework { return []Framework{RLlib, StableBaselines, TFAgents} }

// Algo names a learning algorithm.
type Algo string

// The two algorithms of the paper's study.
const (
	PPO Algo = "ppo"
	SAC Algo = "sac"
)

// Algos lists all supported algorithms.
func Algos() []Algo { return []Algo{PPO, SAC} }

// TrainConfig describes one training run (one "learning configuration" in
// the methodology's vocabulary).
type TrainConfig struct {
	Framework Framework
	Algo      Algo

	// Nodes and Cores describe the deployment. Single-node frameworks
	// (sbx, tfax) reject Nodes > 1.
	Nodes int
	Cores int

	// EnvMaker builds the environment; TotalSteps is the training budget
	// in environment steps summed over all actors.
	EnvMaker   gym.EnvMaker
	TotalSteps int

	// EnvStepCost overrides the modeled CPU seconds per environment step;
	// when 0 it is taken from the environment's gym.Costed implementation.
	EnvStepCost float64

	// RolloutSteps is the per-environment collection length per PPO
	// iteration (default 128).
	RolloutSteps int

	// EvalEpisodes is the final greedy evaluation budget (default 50).
	EvalEpisodes int

	// Seed drives all randomness of the run.
	Seed uint64

	// PPOConfig / SACConfig override the framework's algorithm preset
	// when non-nil.
	PPOConfig *ppo.Config
	SACConfig *sac.Config

	// Cluster overrides the simulated hardware (defaults to the paper's
	// testbed dimensions with the requested Nodes/Cores).
	Cluster *cluster.Config

	// EpisodeSink, when non-nil, receives every final-evaluation episode
	// as a recorded trajectory (rl.Episode) for offline decision
	// analysis. Recording is passive: the run's results are identical
	// with the sink attached or nil.
	EpisodeSink rl.EpisodeSink
}

func (c *TrainConfig) withDefaults() (TrainConfig, error) {
	cfg := *c
	if cfg.Nodes <= 0 {
		cfg.Nodes = 1
	}
	if cfg.Cores <= 0 {
		cfg.Cores = 4
	}
	if cfg.EnvMaker == nil {
		return cfg, fmt.Errorf("distrib: EnvMaker is required")
	}
	if cfg.TotalSteps <= 0 {
		return cfg, fmt.Errorf("distrib: TotalSteps must be positive")
	}
	if cfg.RolloutSteps <= 0 {
		cfg.RolloutSteps = 128
	}
	if cfg.EvalEpisodes <= 0 {
		cfg.EvalEpisodes = 50
	}
	switch cfg.Algo {
	case PPO, SAC:
	default:
		return cfg, fmt.Errorf("distrib: unknown algorithm %q", cfg.Algo)
	}
	return cfg, nil
}

// clusterConfig returns the simulated hardware for the run. The node
// hardware keeps its physical core count (the paper's machines have 4
// cores); a configuration that uses fewer cores leaves the others idle and
// pays their share of the power floor — using only 2 of 4 cores halves the
// utilization, it does not shrink the chip.
func (c *TrainConfig) clusterConfig() cluster.Config {
	cc := cluster.Paper()
	if c.Cluster != nil {
		cc = *c.Cluster
	}
	cc.Nodes = c.Nodes
	if c.Cores > cc.CoresPerNode {
		cc.CoresPerNode = c.Cores
	}
	return cc
}

// envStepCost resolves the modeled env step cost.
func envStepCost(cfg *TrainConfig, env gym.Env) float64 {
	if cfg.EnvStepCost > 0 {
		return cfg.EnvStepCost
	}
	if c, ok := env.(gym.Costed); ok {
		return c.StepCost()
	}
	return defaultEnvStepCost
}

// CurvePoint is one point of a learning curve.
type CurvePoint struct {
	Steps  int
	Reward float64 // mean return of episodes finished since the last point
}

// Result reports a finished training run.
type Result struct {
	Framework Framework
	Algo      Algo
	Nodes     int
	Cores     int

	// MeanReward / StdReward come from the final greedy evaluation.
	MeanReward float64
	StdReward  float64

	// TimeSeconds is the virtual computation time of the whole run;
	// EnergyJoules the virtual energy, both from the cluster simulator.
	TimeSeconds  float64
	EnergyJoules float64

	Steps    int
	Episodes int
	Curve    []CurvePoint

	// MeanUtilization is the average core utilization across nodes.
	MeanUtilization float64
}

// TimeMinutes returns the virtual computation time in minutes.
func (r Result) TimeMinutes() float64 { return r.TimeSeconds / 60 }

// EnergyKJ returns the virtual energy in kilojoules.
func (r Result) EnergyKJ() float64 { return r.EnergyJoules / 1000 }

// Trainer runs training jobs for one framework.
type Trainer interface {
	// Name returns the framework identifier.
	Name() Framework
	// Train executes the run described by cfg.
	Train(cfg TrainConfig) (Result, error)
}

// New returns the trainer for framework f.
func New(f Framework) (Trainer, error) {
	switch f {
	case RLlib:
		return &rayxTrainer{}, nil
	case StableBaselines:
		return &sbxTrainer{}, nil
	case TFAgents:
		return &tfaxTrainer{}, nil
	default:
		return nil, fmt.Errorf("distrib: unknown framework %q", f)
	}
}

// Run is a convenience wrapper: build the trainer for cfg.Framework and
// train.
func Run(cfg TrainConfig) (Result, error) {
	t, err := New(cfg.Framework)
	if err != nil {
		return Result{}, err
	}
	return t.Train(cfg)
}

// finishResult fills the cluster-derived fields of a result.
func finishResult(res *Result, sim *cluster.Sim) {
	res.EnergyJoules = sim.Energy() // barriers all nodes first
	res.TimeSeconds = sim.Time()
	u := 0.0
	for n := 0; n < sim.Nodes(); n++ {
		u += sim.Utilization(n)
	}
	res.MeanUtilization = u / float64(sim.Nodes())
	if math.IsNaN(res.MeanReward) {
		res.MeanReward = 0
	}
}
