package distrib

import (
	"math"
	"testing"

	"rldecide/internal/gym/toy"
	"rldecide/internal/rl/ppo"
	"rldecide/internal/rl/sac"
)

func toyCfg(f Framework, a Algo, nodes, cores int) TrainConfig {
	cfg := TrainConfig{
		Framework:    f,
		Algo:         a,
		Nodes:        nodes,
		Cores:        cores,
		EnvMaker:     toy.MakeSteer1D(),
		TotalSteps:   2000,
		EnvStepCost:  0.046,
		RolloutSteps: 64,
		EvalEpisodes: 10,
		Seed:         42,
	}
	if a == SAC {
		cfg.SACConfig = &sac.Config{StartSteps: 200, Batch: 32, BufferSize: 5000}
	}
	return cfg
}

func TestFactory(t *testing.T) {
	for _, f := range Frameworks() {
		tr, err := New(f)
		if err != nil {
			t.Fatalf("%s: %v", f, err)
		}
		if tr.Name() != f {
			t.Fatalf("%s: name mismatch %s", f, tr.Name())
		}
	}
	if _, err := New(Framework("torchbeast")); err == nil {
		t.Fatal("unknown framework should error")
	}
}

func TestValidation(t *testing.T) {
	if _, err := Run(TrainConfig{Framework: RLlib, Algo: PPO}); err == nil {
		t.Error("missing env maker should error")
	}
	cfg := toyCfg(StableBaselines, PPO, 2, 4)
	if _, err := Run(cfg); err == nil {
		t.Error("stable-baselines must reject multi-node")
	}
	cfg = toyCfg(TFAgents, PPO, 2, 4)
	if _, err := Run(cfg); err == nil {
		t.Error("tf-agents must reject multi-node")
	}
	cfg = toyCfg(RLlib, Algo("dqn"), 1, 2)
	if _, err := Run(cfg); err == nil {
		t.Error("unknown algo should error")
	}
	cfg = toyCfg(RLlib, PPO, 1, 2)
	cfg.TotalSteps = 0
	if _, err := Run(cfg); err == nil {
		t.Error("zero steps should error")
	}
}

func TestAllBackendsCompletePPO(t *testing.T) {
	for _, f := range Frameworks() {
		res, err := Run(toyCfg(f, PPO, 1, 2))
		if err != nil {
			t.Fatalf("%s: %v", f, err)
		}
		if res.Steps < 2000 {
			t.Errorf("%s: trained %d steps", f, res.Steps)
		}
		if res.TimeSeconds <= 0 || res.EnergyJoules <= 0 {
			t.Errorf("%s: empty virtual accounting %+v", f, res)
		}
		if res.Framework != f || res.Algo != PPO {
			t.Errorf("%s: result echo wrong", f)
		}
		if res.Episodes == 0 || len(res.Curve) == 0 {
			t.Errorf("%s: no learning curve", f)
		}
		if res.MeanUtilization <= 0 || res.MeanUtilization > 1 {
			t.Errorf("%s: utilization %v", f, res.MeanUtilization)
		}
		if res.TimeMinutes() <= 0 || res.EnergyKJ() <= 0 {
			t.Errorf("%s: unit helpers broken", f)
		}
	}
}

func TestAllBackendsCompleteSAC(t *testing.T) {
	for _, f := range Frameworks() {
		res, err := Run(toyCfg(f, SAC, 1, 2))
		if err != nil {
			t.Fatalf("%s: %v", f, err)
		}
		if res.Steps < 2000 || res.TimeSeconds <= 0 {
			t.Errorf("%s: bad result %+v", f, res)
		}
	}
}

func TestRayMultiNodeRuns(t *testing.T) {
	res, err := Run(toyCfg(RLlib, PPO, 2, 2))
	if err != nil {
		t.Fatal(err)
	}
	if res.Nodes != 2 {
		t.Fatal("node echo wrong")
	}
}

func TestDeterminism(t *testing.T) {
	a, err := Run(toyCfg(RLlib, PPO, 2, 2))
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(toyCfg(RLlib, PPO, 2, 2))
	if err != nil {
		t.Fatal(err)
	}
	if a.MeanReward != b.MeanReward || a.TimeSeconds != b.TimeSeconds || a.EnergyJoules != b.EnergyJoules {
		t.Fatalf("same seed diverged: %+v vs %+v", a, b)
	}
}

func TestTimeModelOrderings(t *testing.T) {
	run := func(f Framework, nodes, cores int) Result {
		res, err := Run(toyCfg(f, PPO, nodes, cores))
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	sb := run(StableBaselines, 1, 4)
	tfa := run(TFAgents, 1, 4)
	ray1 := run(RLlib, 1, 4)
	ray2 := run(RLlib, 2, 4)

	// Per the calibrated cost model: sbx is the leanest single-node
	// backend, tfax pays busy driver overhead, rayx pays worker-loop
	// overhead on top.
	if !(sb.TimeSeconds < tfa.TimeSeconds) {
		t.Errorf("sbx (%v) should be faster than tfax (%v)", sb.TimeSeconds, tfa.TimeSeconds)
	}
	if !(tfa.TimeSeconds < ray1.TimeSeconds) {
		t.Errorf("tfax (%v) should be faster than 1-node rayx (%v)", tfa.TimeSeconds, ray1.TimeSeconds)
	}
	// Two nodes split the collection: faster despite the remote penalty.
	if !(ray2.TimeSeconds < ray1.TimeSeconds) {
		t.Errorf("2-node rayx (%v) should beat 1-node (%v)", ray2.TimeSeconds, ray1.TimeSeconds)
	}
	// ...but burn more energy (second chassis idle floor + serialization).
	if !(ray2.EnergyJoules > tfa.EnergyJoules) {
		t.Errorf("2-node rayx energy (%v) should exceed tfax (%v)", ray2.EnergyJoules, tfa.EnergyJoules)
	}
	// tfax saturates its cores during collection (the single-core learner
	// phase drags the mean down a little).
	if tfa.MeanUtilization < 0.85 {
		t.Errorf("tfax utilization %v should be near 1", tfa.MeanUtilization)
	}
}

func TestMoreCoresFaster(t *testing.T) {
	slow, err := Run(toyCfg(TFAgents, PPO, 1, 2))
	if err != nil {
		t.Fatal(err)
	}
	fast, err := Run(toyCfg(TFAgents, PPO, 1, 4))
	if err != nil {
		t.Fatal(err)
	}
	if !(fast.TimeSeconds < slow.TimeSeconds) {
		t.Errorf("4 cores (%v) should beat 2 cores (%v)", fast.TimeSeconds, slow.TimeSeconds)
	}
}

func TestEnvCostScalesTime(t *testing.T) {
	cheap := toyCfg(StableBaselines, PPO, 1, 2)
	cheap.EnvStepCost = 0.01
	costly := toyCfg(StableBaselines, PPO, 1, 2)
	costly.EnvStepCost = 0.10
	a, err := Run(cheap)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(costly)
	if err != nil {
		t.Fatal(err)
	}
	ratio := b.TimeSeconds / a.TimeSeconds
	if ratio < 2 {
		t.Errorf("10x env cost should dominate time, ratio=%v", ratio)
	}
}

func TestPPOOverrideRespected(t *testing.T) {
	cfg := toyCfg(StableBaselines, PPO, 1, 2)
	cfg.PPOConfig = &ppo.Config{Epochs: 2, Minibatch: 256}
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Fewer epochs → less learner time than the 10-epoch preset.
	cfg2 := toyCfg(StableBaselines, PPO, 1, 2)
	res2, err := Run(cfg2)
	if err != nil {
		t.Fatal(err)
	}
	if !(res.TimeSeconds < res2.TimeSeconds) {
		t.Errorf("2-epoch override (%v) should be faster than preset (%v)", res.TimeSeconds, res2.TimeSeconds)
	}
}

func TestSACCostsMoreTimeThanPPO(t *testing.T) {
	p, err := Run(toyCfg(TFAgents, PPO, 1, 2))
	if err != nil {
		t.Fatal(err)
	}
	s, err := Run(toyCfg(TFAgents, SAC, 1, 2))
	if err != nil {
		t.Fatal(err)
	}
	if !(s.TimeSeconds > p.TimeSeconds) {
		t.Errorf("SAC (%v) should cost more virtual time than PPO (%v)", s.TimeSeconds, p.TimeSeconds)
	}
}

func TestPresets(t *testing.T) {
	if ppoPreset(StableBaselines).Epochs != 10 || ppoPreset(RLlib).Epochs != 16 {
		t.Fatal("ppo presets wrong")
	}
	if !(ppoPreset(StableBaselines).EntCoef < ppoPreset(TFAgents).EntCoef &&
		ppoPreset(TFAgents).EntCoef < ppoPreset(RLlib).EntCoef) {
		t.Fatal("final entropy flavors must order SB < TFA < RLlib")
	}
	if sacPreset(StableBaselines).Batch != 256 || sacPreset(RLlib).Batch != 0 {
		t.Fatal("sac presets wrong")
	}
}

func TestResultNaNGuard(t *testing.T) {
	r := Result{MeanReward: math.NaN()}
	if !math.IsNaN(r.MeanReward) {
		t.Skip()
	}
}

func TestLRDecaySchedule(t *testing.T) {
	if lrDecay(0, 100) != 1 {
		t.Fatal("decay should start at 1")
	}
	if got := lrDecay(50, 100); math.Abs(got-0.5) > 1e-12 {
		t.Fatalf("midpoint decay %v", got)
	}
	if lrDecay(99, 100) < 0.05-1e-12 || lrDecay(1000, 100) != 0.05 {
		t.Fatal("decay floor broken")
	}
}

func TestEntAnnealSchedule(t *testing.T) {
	if got := entAnneal(0.002, 0, 100); got != 0.01 {
		t.Fatalf("anneal should start at the exploration level: %v", got)
	}
	if got := entAnneal(0.002, 100, 100); math.Abs(got-0.002) > 1e-12 {
		t.Fatalf("anneal should end at the preset: %v", got)
	}
	mid := entAnneal(0.002, 50, 100)
	if mid <= 0.002 || mid >= 0.01 {
		t.Fatalf("midpoint %v outside (final, explore)", mid)
	}
	if got := entAnneal(0.002, 200, 100); math.Abs(got-0.002) > 1e-12 {
		t.Fatal("over-progress should clamp")
	}
}

func TestClusterConfigKeepsPhysicalCores(t *testing.T) {
	cfg := toyCfg(StableBaselines, PPO, 1, 2)
	cc := cfg.clusterConfig()
	if cc.CoresPerNode != 4 {
		t.Fatalf("2-core run must still model 4-core hardware, got %d", cc.CoresPerNode)
	}
	cfg8 := toyCfg(RLlib, PPO, 1, 8)
	if cc8 := cfg8.clusterConfig(); cc8.CoresPerNode != 8 {
		t.Fatalf("oversized requests grow the node: %d", cc8.CoresPerNode)
	}
}

func TestFewerCoresLessPower(t *testing.T) {
	// The fixed hardware means a 2-core run draws less power than a
	// 4-core run per unit time but takes longer.
	two, err := Run(toyCfg(StableBaselines, PPO, 1, 2))
	if err != nil {
		t.Fatal(err)
	}
	four, err := Run(toyCfg(StableBaselines, PPO, 1, 4))
	if err != nil {
		t.Fatal(err)
	}
	wattsTwo := two.EnergyJoules / two.TimeSeconds
	wattsFour := four.EnergyJoules / four.TimeSeconds
	if !(wattsTwo < wattsFour) {
		t.Fatalf("2-core mean draw %v should be below 4-core %v", wattsTwo, wattsFour)
	}
}
