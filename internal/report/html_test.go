package report

import (
	"bytes"
	"strings"
	"testing"
)

func TestHTMLReport(t *testing.T) {
	rep := fakeReport(t)
	var b bytes.Buffer
	err := HTML(&b, rep, []ScatterSpec{
		{X: "time", Y: "reward", Title: "Reward vs Time"},
	})
	if err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"<!DOCTYPE html>",
		"airdrop",
		"<svg",
		"Reward vs Time",
		`class="front"`,
		"</html>",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("html missing %q", want)
		}
	}
	// 4 trials -> 4 data rows.
	if got := strings.Count(out, "<tr>") + strings.Count(out, `<tr class="front">`); got != 5 { // header + 4
		t.Errorf("row count %d want 5", got)
	}
}

func TestHTMLBadPlot(t *testing.T) {
	var b bytes.Buffer
	err := HTML(&b, fakeReport(t), []ScatterSpec{{X: "nope", Y: "reward"}})
	if err == nil {
		t.Fatal("unknown metric plot should error")
	}
}

func TestHTMLNoPlots(t *testing.T) {
	var b bytes.Buffer
	if err := HTML(&b, fakeReport(t), nil); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(b.String(), "<figure>") {
		t.Fatal("no figures expected")
	}
}
