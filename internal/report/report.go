// Package report renders study results for the decision maker: Markdown
// tables (Table I of the paper), ASCII and SVG scatter plots with the
// Pareto front highlighted (Figures 4–6), and CSV/JSON export for external
// tooling.
package report

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"

	"rldecide/internal/core"
	"rldecide/internal/pareto"
)

// Table renders the report's trials as a Markdown table: one row per
// trial, parameter columns first (sorted by name), then metric columns.
// Rows are rendered into one reused line buffer (cells appended with
// strconv, no per-row Join), so the render cost is a handful of
// allocations however many trials the table has.
func Table(w io.Writer, rep *core.Report) error {
	trials := rep.Completed()
	if len(trials) == 0 {
		_, err := fmt.Fprintln(w, "(no completed trials)")
		return err
	}
	// Assignments are name-sorted, so the bindings of any complete trial
	// give the parameter column order directly.
	ncols := 1 + len(trials[0].Params) + len(rep.Metrics)
	header := make([]string, 1, ncols)
	header[0] = "#"
	for _, b := range trials[0].Params {
		header = append(header, b.Name)
	}
	for _, m := range rep.Metrics {
		label := m.Name
		if m.Unit != "" {
			label += " (" + m.Unit + ")"
		}
		header = append(header, label)
	}
	if _, err := fmt.Fprintln(w, "| "+strings.Join(header, " | ")+" |"); err != nil {
		return err
	}
	line := make([]byte, 0, 128)
	line = append(line, '|')
	for range header {
		line = append(line, " --- |"...)
	}
	line = append(line, '\n')
	if _, err := w.Write(line); err != nil {
		return err
	}
	for _, t := range trials {
		line = line[:0]
		line = append(line, '|', ' ')
		line = strconv.AppendInt(line, int64(t.ID), 10)
		for _, b := range t.Params {
			line = append(line, ' ', '|', ' ')
			line = b.Value.AppendText(line)
		}
		for _, m := range rep.Metrics {
			line = append(line, ' ', '|', ' ')
			line = strconv.AppendFloat(line, t.Values.At(m.Name), 'f', 3, 64)
		}
		line = append(line, ' ', '|', '\n')
		if _, err := w.Write(line); err != nil {
			return err
		}
	}
	return nil
}

// CSV writes the trials as comma-separated values with a header row.
func CSV(w io.Writer, rep *core.Report) error {
	trials := rep.Completed()
	if len(trials) == 0 {
		return fmt.Errorf("report: no completed trials")
	}
	paramNames := make([]string, 0, len(trials[0].Params))
	for _, b := range trials[0].Params {
		paramNames = append(paramNames, b.Name)
	}
	cols := append([]string{"id"}, paramNames...)
	for _, m := range rep.Metrics {
		cols = append(cols, m.Name)
	}
	if _, err := fmt.Fprintln(w, strings.Join(cols, ",")); err != nil {
		return err
	}
	for _, t := range trials {
		row := []string{fmt.Sprintf("%d", t.ID)}
		for _, p := range paramNames {
			row = append(row, t.Params.Value(p).String())
		}
		for _, m := range rep.Metrics {
			row = append(row, fmt.Sprintf("%g", t.Values.At(m.Name)))
		}
		if _, err := fmt.Fprintln(w, strings.Join(row, ",")); err != nil {
			return err
		}
	}
	return nil
}

// jsonTrial is the JSON export shape.
type jsonTrial struct {
	ID     int                `json:"id"`
	Params map[string]string  `json:"params"`
	Values map[string]float64 `json:"values"`
	Pruned bool               `json:"pruned,omitempty"`
	Error  string             `json:"error,omitempty"`
}

// JSON writes the full report (including failed/pruned trials) as JSON.
func JSON(w io.Writer, rep *core.Report) error {
	out := struct {
		CaseStudy string      `json:"case_study"`
		Explorer  string      `json:"explorer"`
		Ranker    string      `json:"ranker"`
		Metrics   []string    `json:"metrics"`
		Trials    []jsonTrial `json:"trials"`
		Fronts    [][]int     `json:"fronts,omitempty"`
	}{
		CaseStudy: rep.CaseStudy.Name,
		Explorer:  rep.Explorer,
		Ranker:    rep.Ranker,
		Fronts:    rep.Ranking.Fronts,
	}
	for _, m := range rep.Metrics {
		out.Metrics = append(out.Metrics, m.Name)
	}
	for _, t := range rep.Trials {
		jt := jsonTrial{ID: t.ID, Params: map[string]string{}, Values: t.Values.Map(), Pruned: t.Pruned}
		for _, b := range t.Params {
			jt.Params[b.Name] = b.Value.String()
		}
		if t.Err != nil {
			jt.Error = t.Err.Error()
		}
		out.Trials = append(out.Trials, jt)
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}

// ScatterSpec configures a 2-D trade-off plot between two metrics.
type ScatterSpec struct {
	X, Y  string  // metric names
	Title string  // plot title
	Eps   float64 // ε-front tolerance (0 = strict front)
}

// frontData extracts points, directions and front membership for a spec.
func frontData(rep *core.Report, spec ScatterSpec) ([]pareto.Point, []pareto.Direction, map[int]bool, error) {
	pts, dirs, err := rep.Points(spec.X, spec.Y)
	if err != nil {
		return nil, nil, nil, err
	}
	if len(pts) == 0 {
		return nil, nil, nil, fmt.Errorf("report: no completed trials to plot")
	}
	var idx []int
	if spec.Eps > 0 {
		idx = pareto.EpsilonFront(pts, dirs, spec.Eps)
	} else {
		idx = pareto.Front(pts, dirs)
	}
	onFront := map[int]bool{}
	for _, i := range idx {
		onFront[pts[i].ID] = true
	}
	return pts, dirs, onFront, nil
}

// ASCIIScatter renders the trade-off as a text plot. Front members are
// drawn as their trial id (mod 10) in brackets; dominated points as dots.
func ASCIIScatter(w io.Writer, rep *core.Report, spec ScatterSpec) error {
	pts, _, onFront, err := frontData(rep, spec)
	if err != nil {
		return err
	}
	const width, height = 72, 24
	minX, maxX := pts[0].Values[0], pts[0].Values[0]
	minY, maxY := pts[0].Values[1], pts[0].Values[1]
	for _, p := range pts {
		minX = min(minX, p.Values[0])
		maxX = max(maxX, p.Values[0])
		minY = min(minY, p.Values[1])
		maxY = max(maxY, p.Values[1])
	}
	if maxX == minX {
		maxX = minX + 1
	}
	if maxY == minY {
		maxY = minY + 1
	}
	grid := make([][]rune, height)
	for i := range grid {
		grid[i] = []rune(strings.Repeat(" ", width))
	}
	for _, p := range pts {
		cx := int(float64(width-1) * (p.Values[0] - minX) / (maxX - minX))
		cy := height - 1 - int(float64(height-1)*(p.Values[1]-minY)/(maxY-minY))
		ch := '·'
		if onFront[p.ID] {
			ch = rune('0' + p.ID%10)
		}
		grid[cy][cx] = ch
	}
	if spec.Title != "" {
		if _, err := fmt.Fprintf(w, "%s\n", spec.Title); err != nil {
			return err
		}
	}
	fmt.Fprintf(w, "y: %s  [%.3g .. %.3g]\n", spec.Y, minY, maxY)
	for _, row := range grid {
		if _, err := fmt.Fprintf(w, "  |%s\n", string(row)); err != nil {
			return err
		}
	}
	fmt.Fprintf(w, "  +%s\n", strings.Repeat("-", width))
	_, err = fmt.Fprintf(w, "x: %s  [%.3g .. %.3g]   (digits = Pareto front, · = dominated)\n",
		spec.X, minX, maxX)
	return err
}

// SVGScatter renders the trade-off as a standalone SVG: dominated points
// gray, front members highlighted and connected by a front polyline, each
// labeled with its trial id.
func SVGScatter(w io.Writer, rep *core.Report, spec ScatterSpec) error {
	pts, _, onFront, err := frontData(rep, spec)
	if err != nil {
		return err
	}
	const W, H, margin = 640, 440, 56
	minX, maxX := pts[0].Values[0], pts[0].Values[0]
	minY, maxY := pts[0].Values[1], pts[0].Values[1]
	for _, p := range pts {
		minX = min(minX, p.Values[0])
		maxX = max(maxX, p.Values[0])
		minY = min(minY, p.Values[1])
		maxY = max(maxY, p.Values[1])
	}
	padX := (maxX - minX) * 0.06
	padY := (maxY - minY) * 0.06
	if padX <= 0 { // degenerate span (pads are non-negative by construction)
		padX = 1
	}
	if padY <= 0 {
		padY = 1
	}
	minX, maxX = minX-padX, maxX+padX
	minY, maxY = minY-padY, maxY+padY
	sx := func(v float64) float64 { return margin + (v-minX)/(maxX-minX)*(W-2*margin) }
	sy := func(v float64) float64 { return H - margin - (v-minY)/(maxY-minY)*(H-2*margin) }

	fmt.Fprintf(w, `<svg xmlns="http://www.w3.org/2000/svg" width="%d" height="%d" viewBox="0 0 %d %d">`+"\n", W, H, W, H)
	fmt.Fprintf(w, `<rect width="%d" height="%d" fill="white"/>`+"\n", W, H)
	fmt.Fprintf(w, `<text x="%d" y="24" font-family="sans-serif" font-size="15" font-weight="bold">%s</text>`+"\n", margin, xmlEscape(spec.Title))
	// Axes.
	fmt.Fprintf(w, `<line x1="%d" y1="%d" x2="%d" y2="%d" stroke="black"/>`+"\n", margin, H-margin, W-margin, H-margin)
	fmt.Fprintf(w, `<line x1="%d" y1="%d" x2="%d" y2="%d" stroke="black"/>`+"\n", margin, margin, margin, H-margin)
	fmt.Fprintf(w, `<text x="%d" y="%d" font-family="sans-serif" font-size="12">%s</text>`+"\n", W/2-30, H-16, xmlEscape(spec.X))
	fmt.Fprintf(w, `<text x="14" y="%d" font-family="sans-serif" font-size="12" transform="rotate(-90 14 %d)">%s</text>`+"\n", H/2, H/2, xmlEscape(spec.Y))
	fmt.Fprintf(w, `<text x="%d" y="%d" font-family="sans-serif" font-size="10">%.3g</text>`+"\n", margin, H-margin+14, minX)
	fmt.Fprintf(w, `<text x="%d" y="%d" font-family="sans-serif" font-size="10" text-anchor="end">%.3g</text>`+"\n", W-margin, H-margin+14, maxX)
	fmt.Fprintf(w, `<text x="%d" y="%d" font-family="sans-serif" font-size="10" text-anchor="end">%.3g</text>`+"\n", margin-4, H-margin, minY)
	fmt.Fprintf(w, `<text x="%d" y="%d" font-family="sans-serif" font-size="10" text-anchor="end">%.3g</text>`+"\n", margin-4, margin+4, maxY)

	// Front polyline, sorted by x.
	var front []pareto.Point
	for _, p := range pts {
		if onFront[p.ID] {
			front = append(front, p)
		}
	}
	sort.Slice(front, func(i, j int) bool { return front[i].Values[0] < front[j].Values[0] })
	if len(front) > 1 {
		var b strings.Builder
		for i, p := range front {
			if i > 0 {
				b.WriteByte(' ')
			}
			fmt.Fprintf(&b, "%.1f,%.1f", sx(p.Values[0]), sy(p.Values[1]))
		}
		fmt.Fprintf(w, `<polyline points="%s" fill="none" stroke="#c0392b" stroke-width="1.5" stroke-dasharray="5,3"/>`+"\n", b.String())
	}
	// Points.
	for _, p := range pts {
		x, y := sx(p.Values[0]), sy(p.Values[1])
		if onFront[p.ID] {
			fmt.Fprintf(w, `<circle cx="%.1f" cy="%.1f" r="5" fill="#c0392b"/>`+"\n", x, y)
			fmt.Fprintf(w, `<text x="%.1f" y="%.1f" font-family="sans-serif" font-size="11" fill="#c0392b">%d</text>`+"\n", x+7, y-6, p.ID)
		} else {
			fmt.Fprintf(w, `<circle cx="%.1f" cy="%.1f" r="3.5" fill="#95a5a6"/>`+"\n", x, y)
			fmt.Fprintf(w, `<text x="%.1f" y="%.1f" font-family="sans-serif" font-size="9" fill="#7f8c8d">%d</text>`+"\n", x+6, y-5, p.ID)
		}
	}
	_, err = fmt.Fprintln(w, `</svg>`)
	return err
}

func xmlEscape(s string) string {
	r := strings.NewReplacer("&", "&amp;", "<", "&lt;", ">", "&gt;", `"`, "&quot;")
	return r.Replace(s)
}
