package report

import (
	"bytes"
	"strings"
	"testing"
)

func TestLineChartSVG(t *testing.T) {
	var b bytes.Buffer
	err := LineChartSVG(&b, "learning curves", "steps", "return", []Series{
		{Name: "ppo", X: []float64{0, 1000, 2000}, Y: []float64{-5, -1, -0.4}},
		{Name: "sac", X: []float64{0, 1000, 2000}, Y: []float64{-5, -4.5, -4.2}},
	})
	if err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if !strings.HasPrefix(out, "<svg") || strings.Count(out, "<polyline") != 2 {
		t.Fatalf("bad svg:\n%s", out)
	}
	if !strings.Contains(out, "ppo") || !strings.Contains(out, "sac") {
		t.Fatal("legend missing")
	}
	if !strings.Contains(out, "learning curves") {
		t.Fatal("title missing")
	}
}

func TestLineChartErrors(t *testing.T) {
	var b bytes.Buffer
	if err := LineChartSVG(&b, "t", "x", "y", nil); err == nil {
		t.Fatal("empty series list should error")
	}
	if err := LineChartSVG(&b, "t", "x", "y", []Series{{Name: "bad", X: []float64{1}, Y: nil}}); err == nil {
		t.Fatal("length mismatch should error")
	}
	if err := LineChartSVG(&b, "t", "x", "y", []Series{{Name: "empty"}}); err == nil {
		t.Fatal("all-empty should error")
	}
}

func TestLineChartDegenerateRange(t *testing.T) {
	var b bytes.Buffer
	err := LineChartSVG(&b, "flat", "x", "y", []Series{
		{Name: "const", X: []float64{1, 1}, Y: []float64{2, 2}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "<polyline") {
		t.Fatal("flat series should still render")
	}
}
