package report

import (
	"fmt"
	"io"
	"math"
	"strings"
)

// Series is one named line of a LineChartSVG (e.g. a learning curve:
// X = training steps, Y = mean episode return).
type Series struct {
	Name string
	X, Y []float64
}

// seriesPalette colors successive series.
var seriesPalette = []string{"#2980b9", "#c0392b", "#27ae60", "#8e44ad", "#f39c12", "#16a085"}

// LineChartSVG renders one or more series as a standalone SVG line chart
// with a legend — used for learning curves and scaling sweeps.
func LineChartSVG(w io.Writer, title, xLabel, yLabel string, series []Series) error {
	if len(series) == 0 {
		return fmt.Errorf("report: no series to plot")
	}
	minX, maxX := math.Inf(1), math.Inf(-1)
	minY, maxY := math.Inf(1), math.Inf(-1)
	for _, s := range series {
		if len(s.X) != len(s.Y) {
			return fmt.Errorf("report: series %q has %d x vs %d y", s.Name, len(s.X), len(s.Y))
		}
		for i := range s.X {
			minX = math.Min(minX, s.X[i])
			maxX = math.Max(maxX, s.X[i])
			minY = math.Min(minY, s.Y[i])
			maxY = math.Max(maxY, s.Y[i])
		}
	}
	if math.IsInf(minX, 1) {
		return fmt.Errorf("report: all series empty")
	}
	if maxX <= minX { // degenerate span (max >= min by construction)
		maxX = minX + 1
	}
	if maxY <= minY {
		maxY = minY + 1
	}

	const W, H, margin = 640, 400, 56
	sx := func(v float64) float64 { return margin + (v-minX)/(maxX-minX)*(W-2*margin) }
	sy := func(v float64) float64 { return H - margin - (v-minY)/(maxY-minY)*(H-2*margin) }

	fmt.Fprintf(w, `<svg xmlns="http://www.w3.org/2000/svg" width="%d" height="%d" viewBox="0 0 %d %d">`+"\n", W, H, W, H)
	fmt.Fprintf(w, `<rect width="%d" height="%d" fill="white"/>`+"\n", W, H)
	fmt.Fprintf(w, `<text x="%d" y="24" font-family="sans-serif" font-size="15" font-weight="bold">%s</text>`+"\n", margin, xmlEscape(title))
	fmt.Fprintf(w, `<line x1="%d" y1="%d" x2="%d" y2="%d" stroke="black"/>`+"\n", margin, H-margin, W-margin, H-margin)
	fmt.Fprintf(w, `<line x1="%d" y1="%d" x2="%d" y2="%d" stroke="black"/>`+"\n", margin, margin, margin, H-margin)
	fmt.Fprintf(w, `<text x="%d" y="%d" font-family="sans-serif" font-size="12">%s</text>`+"\n", W/2-30, H-16, xmlEscape(xLabel))
	fmt.Fprintf(w, `<text x="14" y="%d" font-family="sans-serif" font-size="12" transform="rotate(-90 14 %d)">%s</text>`+"\n", H/2, H/2, xmlEscape(yLabel))
	fmt.Fprintf(w, `<text x="%d" y="%d" font-family="sans-serif" font-size="10">%.3g</text>`+"\n", margin, H-margin+14, minX)
	fmt.Fprintf(w, `<text x="%d" y="%d" font-family="sans-serif" font-size="10" text-anchor="end">%.3g</text>`+"\n", W-margin, H-margin+14, maxX)
	fmt.Fprintf(w, `<text x="%d" y="%d" font-family="sans-serif" font-size="10" text-anchor="end">%.3g</text>`+"\n", margin-4, H-margin, minY)
	fmt.Fprintf(w, `<text x="%d" y="%d" font-family="sans-serif" font-size="10" text-anchor="end">%.3g</text>`+"\n", margin-4, margin+4, maxY)

	for si, s := range series {
		color := seriesPalette[si%len(seriesPalette)]
		if len(s.X) > 0 {
			var b strings.Builder
			for i := range s.X {
				if i > 0 {
					b.WriteByte(' ')
				}
				fmt.Fprintf(&b, "%.1f,%.1f", sx(s.X[i]), sy(s.Y[i]))
			}
			fmt.Fprintf(w, `<polyline points="%s" fill="none" stroke="%s" stroke-width="1.8"/>`+"\n", b.String(), color)
		}
		// Legend entry.
		lx, ly := W-margin-150, margin+16*si
		fmt.Fprintf(w, `<line x1="%d" y1="%d" x2="%d" y2="%d" stroke="%s" stroke-width="3"/>`+"\n", lx, ly, lx+18, ly, color)
		fmt.Fprintf(w, `<text x="%d" y="%d" font-family="sans-serif" font-size="11">%s</text>`+"\n", lx+24, ly+4, xmlEscape(s.Name))
	}
	_, err := fmt.Fprintln(w, `</svg>`)
	return err
}
