package report

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"rldecide/internal/core"
	"rldecide/internal/param"
	"rldecide/internal/pareto"
)

// fakeReport builds a small report with a known front.
func fakeReport(t *testing.T) *core.Report {
	t.Helper()
	mk := func(id int, f string, rew, tm float64) core.Trial {
		return core.Trial{
			ID:     id,
			Params: param.Assign(param.Bind("framework", param.Str(f)), param.Bind("rk_order", param.Int(3))),
			Values: core.ValuesFromMap(map[string]float64{"reward": rew, "time": tm}),
		}
	}
	rep := &core.Report{
		CaseStudy: core.CaseStudy{Name: "airdrop"},
		Metrics: []core.Metric{
			{Name: "reward", Direction: pareto.Maximize},
			{Name: "time", Unit: "min", Direction: pareto.Minimize},
		},
		Trials: []core.Trial{
			mk(1, "rllib", -0.6, 46),
			mk(2, "tfagents", -0.5, 49),
			mk(3, "stablebaselines", -0.45, 65),
			mk(4, "rllib", -0.9, 80), // dominated
		},
		Explorer: "random",
		Ranker:   "pareto",
	}
	rep.Ranking = core.ParetoRanker{}.Rank(rep.Completed(), rep.Metrics)
	return rep
}

func TestTable(t *testing.T) {
	var b bytes.Buffer
	if err := Table(&b, fakeReport(t)); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if !strings.Contains(out, "| # | framework | rk_order | reward | time (min) |") {
		t.Fatalf("header missing:\n%s", out)
	}
	if !strings.Contains(out, "stablebaselines") || !strings.Contains(out, "-0.450") {
		t.Fatalf("rows missing:\n%s", out)
	}
	if strings.Count(out, "\n") != 6 { // header + sep + 4 rows
		t.Fatalf("unexpected line count:\n%s", out)
	}
}

func TestTableEmpty(t *testing.T) {
	rep := &core.Report{Metrics: []core.Metric{{Name: "m"}}}
	var b bytes.Buffer
	if err := Table(&b, rep); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "no completed trials") {
		t.Fatal("empty notice missing")
	}
}

func TestCSV(t *testing.T) {
	var b bytes.Buffer
	if err := CSV(&b, fakeReport(t)); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(b.String()), "\n")
	if lines[0] != "id,framework,rk_order,reward,time" {
		t.Fatalf("csv header %q", lines[0])
	}
	if len(lines) != 5 {
		t.Fatalf("csv rows %d", len(lines))
	}
	if !strings.HasPrefix(lines[1], "1,rllib,3,-0.6,46") {
		t.Fatalf("csv row %q", lines[1])
	}
	var empty bytes.Buffer
	if err := CSV(&empty, &core.Report{Metrics: []core.Metric{{Name: "m"}}}); err == nil {
		t.Fatal("empty CSV should error")
	}
}

func TestJSON(t *testing.T) {
	var b bytes.Buffer
	if err := JSON(&b, fakeReport(t)); err != nil {
		t.Fatal(err)
	}
	var out map[string]any
	if err := json.Unmarshal(b.Bytes(), &out); err != nil {
		t.Fatalf("invalid json: %v", err)
	}
	if out["case_study"] != "airdrop" {
		t.Fatal("case study missing")
	}
	trials := out["trials"].([]any)
	if len(trials) != 4 {
		t.Fatalf("trials %d", len(trials))
	}
}

func TestASCIIScatter(t *testing.T) {
	var b bytes.Buffer
	spec := ScatterSpec{X: "time", Y: "reward", Title: "Reward vs Time"}
	if err := ASCIIScatter(&b, fakeReport(t), spec); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if !strings.Contains(out, "Reward vs Time") || !strings.Contains(out, "Pareto front") {
		t.Fatalf("plot furniture missing:\n%s", out)
	}
	// Front members 1,2,3 rendered as digits; dominated 4 as dot.
	if !strings.Contains(out, "1") || !strings.Contains(out, "·") {
		t.Fatalf("points missing:\n%s", out)
	}
	if err := ASCIIScatter(&b, fakeReport(t), ScatterSpec{X: "nope", Y: "reward"}); err == nil {
		t.Fatal("unknown metric should error")
	}
}

func TestSVGScatter(t *testing.T) {
	var b bytes.Buffer
	spec := ScatterSpec{X: "time", Y: "reward", Title: "Fig 4 <reward>"}
	if err := SVGScatter(&b, fakeReport(t), spec); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if !strings.HasPrefix(out, "<svg") || !strings.HasSuffix(strings.TrimSpace(out), "</svg>") {
		t.Fatal("not an svg")
	}
	if !strings.Contains(out, "polyline") {
		t.Fatal("front polyline missing")
	}
	if !strings.Contains(out, "Fig 4 &lt;reward&gt;") {
		t.Fatal("title not escaped")
	}
	if strings.Count(out, "<circle") != 4 {
		t.Fatalf("expected 4 points:\n%s", out)
	}
}

func TestSVGScatterEps(t *testing.T) {
	rep := fakeReport(t)
	var strict, loose bytes.Buffer
	if err := SVGScatter(&strict, rep, ScatterSpec{X: "time", Y: "reward"}); err != nil {
		t.Fatal(err)
	}
	if err := SVGScatter(&loose, rep, ScatterSpec{X: "time", Y: "reward", Eps: 0.5}); err != nil {
		t.Fatal(err)
	}
	// With a huge epsilon, more points join the front (red markers).
	if strings.Count(loose.String(), "#c0392b") < strings.Count(strict.String(), "#c0392b") {
		t.Fatal("eps front should not shrink")
	}
}
