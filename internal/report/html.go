package report

import (
	"fmt"
	"io"
	"strings"

	"rldecide/internal/core"
)

// HTML writes a self-contained decision-analysis report: the case-study
// header, the trial table, and one embedded SVG scatter per requested
// trade-off — the shareable artifact a decision meeting would look at.
func HTML(w io.Writer, rep *core.Report, plots []ScatterSpec) error {
	trials := rep.Completed()
	fmt.Fprintln(w, "<!DOCTYPE html>")
	fmt.Fprintln(w, `<html><head><meta charset="utf-8">`)
	fmt.Fprintf(w, "<title>%s — decision analysis</title>\n", xmlEscape(rep.CaseStudy.Name))
	fmt.Fprintln(w, `<style>
body { font-family: sans-serif; margin: 2em auto; max-width: 60em; color: #222; }
table { border-collapse: collapse; margin: 1em 0; }
th, td { border: 1px solid #ccc; padding: 0.3em 0.7em; text-align: right; }
th { background: #f4f4f4; }
td.param { text-align: left; }
.front { background: #fdeaea; font-weight: bold; }
figure { margin: 2em 0; }
</style></head><body>`)
	fmt.Fprintf(w, "<h1>%s</h1>\n", xmlEscape(rep.CaseStudy.Name))
	if rep.CaseStudy.Description != "" {
		fmt.Fprintf(w, "<p>%s</p>\n", xmlEscape(rep.CaseStudy.Description))
	}
	fmt.Fprintf(w, "<p>explorer: <b>%s</b> · ranking: <b>%s</b> · %d completed trials</p>\n",
		xmlEscape(rep.Explorer), xmlEscape(rep.Ranker), len(trials))

	// Front membership (first front of the study ranking) for row
	// highlighting.
	onFront := map[int]bool{}
	if len(rep.Ranking.Fronts) > 0 {
		for _, idx := range rep.Ranking.Fronts[0] {
			if idx >= 0 && idx < len(trials) {
				onFront[trials[idx].ID] = true
			}
		}
	}

	if len(trials) > 0 {
		paramNames := make([]string, 0, len(trials[0].Params))
		for _, b := range trials[0].Params {
			paramNames = append(paramNames, b.Name)
		}
		fmt.Fprintln(w, "<table><tr><th>#</th>")
		for _, p := range paramNames {
			fmt.Fprintf(w, "<th>%s</th>", xmlEscape(p))
		}
		for _, m := range rep.Metrics {
			label := m.Name
			if m.Unit != "" {
				label += " (" + m.Unit + ")"
			}
			fmt.Fprintf(w, "<th>%s [%s]</th>", xmlEscape(label), m.Direction)
		}
		fmt.Fprintln(w, "</tr>")
		for _, t := range trials {
			cls := ""
			if onFront[t.ID] {
				cls = ` class="front"`
			}
			fmt.Fprintf(w, "<tr%s><td>%d</td>", cls, t.ID)
			for _, p := range paramNames {
				fmt.Fprintf(w, `<td class="param">%s</td>`, xmlEscape(t.Params.Value(p).String()))
			}
			for _, m := range rep.Metrics {
				fmt.Fprintf(w, "<td>%.3f</td>", t.Values.At(m.Name))
			}
			fmt.Fprintln(w, "</tr>")
		}
		fmt.Fprintln(w, "</table>")
		fmt.Fprintln(w, `<p>highlighted rows are on the study's first Pareto front</p>`)
	}

	for _, spec := range plots {
		fmt.Fprintln(w, "<figure>")
		var svg strings.Builder
		if err := SVGScatter(&svg, rep, spec); err != nil {
			return fmt.Errorf("report: plot %s/%s: %w", spec.X, spec.Y, err)
		}
		fmt.Fprintln(w, svg.String())
		fmt.Fprintf(w, "<figcaption>%s</figcaption>\n", xmlEscape(spec.Title))
		fmt.Fprintln(w, "</figure>")
	}

	_, err := fmt.Fprintln(w, "</body></html>")
	return err
}
