package shard

import (
	"bytes"
	"strings"
	"testing"
)

func merge(t *testing.T, expos ...Exposition) string {
	t.Helper()
	var buf bytes.Buffer
	if err := MergeExpositions(&buf, expos); err != nil {
		t.Fatal(err)
	}
	return buf.String()
}

// TestMergeInjectsDaemon pins satellite (6): two daemons exposing the
// same series name roll up into distinct daemon-labeled samples under one
// HELP/TYPE header.
func TestMergeInjectsDaemon(t *testing.T) {
	a := "# HELP rldecide_studyd_studies Studies by status.\n# TYPE rldecide_studyd_studies gauge\nrldecide_studyd_studies{status=\"done\"} 3\n"
	b := "# HELP rldecide_studyd_studies Studies by status.\n# TYPE rldecide_studyd_studies gauge\nrldecide_studyd_studies{status=\"done\"} 5\n"
	out := merge(t, Exposition{Daemon: "alpha", Text: a}, Exposition{Daemon: "beta", Text: b})

	if n := strings.Count(out, "# HELP rldecide_studyd_studies"); n != 1 {
		t.Fatalf("HELP repeated %d times:\n%s", n, out)
	}
	if n := strings.Count(out, "# TYPE rldecide_studyd_studies"); n != 1 {
		t.Fatalf("TYPE repeated %d times:\n%s", n, out)
	}
	for _, want := range []string{
		`rldecide_studyd_studies{daemon="alpha",status="done"} 3`,
		`rldecide_studyd_studies{daemon="beta",status="done"} 5`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("rollup missing %q:\n%s", want, out)
		}
	}
}

// TestMergeFamiliesSorted pins deterministic output: families appear
// name-sorted regardless of scrape order.
func TestMergeFamiliesSorted(t *testing.T) {
	text := "# HELP zzz last.\n# TYPE zzz counter\nzzz 1\n# HELP aaa first.\n# TYPE aaa counter\naaa 2\n"
	out := merge(t, Exposition{Daemon: "d", Text: text})
	if strings.Index(out, "# HELP aaa") > strings.Index(out, "# HELP zzz") {
		t.Fatalf("families not sorted:\n%s", out)
	}
}

// TestMergeHistogramChildren pins that _bucket/_sum/_count samples stay
// attached to their parent family instead of forming headerless families.
func TestMergeHistogramChildren(t *testing.T) {
	text := "# HELP lat_seconds Latency.\n# TYPE lat_seconds histogram\n" +
		"lat_seconds_bucket{le=\"0.1\"} 4\nlat_seconds_bucket{le=\"+Inf\"} 9\nlat_seconds_sum 1.5\nlat_seconds_count 9\n"
	out := merge(t, Exposition{Daemon: "alpha", Text: text}, Exposition{Daemon: "beta", Text: text})
	if n := strings.Count(out, "# TYPE lat_seconds histogram"); n != 1 {
		t.Fatalf("histogram TYPE repeated %d times:\n%s", n, out)
	}
	for _, want := range []string{
		`lat_seconds_bucket{daemon="alpha",le="0.1"} 4`,
		`lat_seconds_sum{daemon="beta"} 1.5`,
		`lat_seconds_count{daemon="alpha"} 9`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("rollup missing %q:\n%s", want, out)
		}
	}
	// The children must all sit inside the one lat_seconds block: no
	// second HELP/TYPE pair should be minted for them.
	if strings.Contains(out, "# TYPE lat_seconds_bucket") {
		t.Fatalf("bucket child minted its own family:\n%s", out)
	}
}

// TestMergeRespectsExistingDaemonLabel pins that a daemon-stamped series
// (a named daemon's own gauges) is not double-labeled.
func TestMergeRespectsExistingDaemonLabel(t *testing.T) {
	text := "# HELP g G.\n# TYPE g gauge\ng{daemon=\"alpha\",status=\"done\"} 1\n"
	out := merge(t, Exposition{Daemon: "alpha", Text: text})
	if !strings.Contains(out, `g{daemon="alpha",status="done"} 1`) {
		t.Fatalf("pre-labeled sample mangled:\n%s", out)
	}
	if strings.Contains(out, `daemon="alpha",daemon=`) {
		t.Fatalf("daemon label injected twice:\n%s", out)
	}
}

// TestMergeRouterOwnSeries pins that an Exposition with Daemon == "" (the
// router's own registry) passes through unstamped.
func TestMergeRouterOwnSeries(t *testing.T) {
	text := "# HELP rldecide_router_backends B.\n# TYPE rldecide_router_backends gauge\nrldecide_router_backends{state=\"up\"} 2\n"
	out := merge(t, Exposition{Text: text})
	if !strings.Contains(out, `rldecide_router_backends{state="up"} 2`) {
		t.Fatalf("router series mangled:\n%s", out)
	}
	if strings.Contains(out, "daemon=") {
		t.Fatalf("unexpected daemon label:\n%s", out)
	}
}

func TestMergeUnparseable(t *testing.T) {
	var buf bytes.Buffer
	err := MergeExpositions(&buf, []Exposition{{Daemon: "d", Text: "!!!\n"}})
	if err == nil {
		t.Fatal("expected error on unparseable sample line")
	}
}

func TestInjectDaemonShapes(t *testing.T) {
	cases := []struct{ in, want string }{
		{`m 1`, `m{daemon="d"} 1`},
		{`m{} 1`, `m{daemon="d"} 1`},
		{`m{a="b"} 1`, `m{daemon="d",a="b"} 1`},
		{`m{daemon="x"} 1`, `m{daemon="x"} 1`},
	}
	for _, c := range cases {
		if got := injectDaemon(c.in, "d"); got != c.want {
			t.Errorf("injectDaemon(%q) = %q, want %q", c.in, got, c.want)
		}
	}
	if got := injectDaemon(`m{a="b"} 1`, ""); got != `m{a="b"} 1` {
		t.Errorf("empty daemon must be a no-op, got %q", got)
	}
}
