package shard

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"testing"

	"rldecide/internal/obs/span"
	"rldecide/internal/studyd"
)

// spanTree mirrors the studyd.SpanTree wire shape for decoding through
// the router.
type spanTree struct {
	Study string       `json:"study"`
	Trace string       `json:"trace,omitempty"`
	Count int          `json:"count"`
	Spans []*span.Node `json:"spans"`
}

// TestRouterSpanTreeMerge is the fleet-wide tracing acceptance check at
// the routing layer: a study submitted through the router and executed by
// a span-recording daemon serves, via the router, one tree whose router
// placement span, daemon-side scheduling spans, and objective spans all
// share the deterministically derived trace ID.
func TestRouterSpanTreeMerge(t *testing.T) {
	d, err := studyd.New(studyd.Config{Dir: t.TempDir(), Name: "alpha", Workers: 4, Spans: true, Logf: testLogf(t)})
	if err != nil {
		t.Fatal(err)
	}
	d.Start()
	tsB := httptest.NewServer(d.Handler())
	t.Cleanup(func() {
		tsB.Close()
		_ = d.Shutdown(context.Background())
	})
	_, tsR := newRouter(t, Config{Backends: []Backend{{Name: "alpha", URL: tsB.URL}}})

	spec := shardSpec("sphere")
	spec.Budget = 4
	resp := postSpec(t, tsR.URL+"/studies", "", spec)
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("submit: %d", resp.StatusCode)
	}
	var sum studyd.Summary
	if err := json.NewDecoder(resp.Body).Decode(&sum); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	for _, m := range d.Store().List() {
		waitStatus(t, m, studyd.StatusDone)
	}

	var tree spanTree
	if err := json.Unmarshal(mustGet(t, tsR.URL+"/studies/"+sum.ID+"/spans"), &tree); err != nil {
		t.Fatal(err)
	}
	if want := span.DeriveTrace(sum.ID); tree.Trace != want {
		t.Fatalf("trace %q, want derived %q", tree.Trace, want)
	}
	spans := span.Flatten(tree.Spans)
	if tree.Count != len(spans) {
		t.Fatalf("count %d vs %d flattened spans", tree.Count, len(spans))
	}
	counts := map[string]int{}
	for _, sp := range spans {
		if sp.Trace != tree.Trace {
			t.Fatalf("span %q carries foreign trace %q", sp.ID, sp.Trace)
		}
		counts[sp.Name]++
		if sp.Name == span.NamePlace && sp.Daemon != "alpha" {
			t.Fatalf("place span not attributed to the backend: %+v", sp)
		}
	}
	if counts[span.NamePlace] != 1 || counts[span.NameStudy] != 1 {
		t.Fatalf("placement/root spans wrong: %v", counts)
	}
	if counts[span.NameTrial] != spec.Budget || counts[span.NameObjective] != spec.Budget {
		t.Fatalf("daemon spans do not cover the budget: %v", counts)
	}
	// The router's place span must have spliced UNDER the daemon's study
	// root — same derived parent, zero coordination.
	if len(tree.Spans) != 1 || tree.Spans[0].Name != span.NameStudy {
		t.Fatalf("expected the study root as the single tree root, got %+v", tree.Spans)
	}
	foundPlace := false
	for _, c := range tree.Spans[0].Children {
		if c.Name == span.NamePlace {
			foundPlace = true
		}
	}
	if !foundPlace {
		t.Fatalf("place span did not splice under the study root")
	}
}

// TestMergeEscapedLabels pins satellite (3) at the rollup layer: daemon
// and worker names containing backslashes, newlines, and quotes survive
// the router's exposition merger — injected daemon labels and
// pre-escaped worker labels both unquote back to the original names.
func TestMergeEscapedLabels(t *testing.T) {
	hostile := []string{`back\slash`, "new\nline", `quo"ted`}
	for _, name := range hostile {
		// The backend exposes a worker label already escaped per the
		// exposition format (as internal/obs writes it).
		escaped := strings.NewReplacer(`\`, `\\`, "\n", `\n`, `"`, `\"`).Replace(name)
		text := "# HELP rldecide_fleet_worker_slots Slots.\n# TYPE rldecide_fleet_worker_slots gauge\n" +
			`rldecide_fleet_worker_slots{worker="` + escaped + `"} 2` + "\n"
		out := merge(t, Exposition{Daemon: name, Text: text})

		// Every sample line must still be one line.
		var sample string
		for _, line := range strings.Split(out, "\n") {
			if strings.HasPrefix(line, "rldecide_fleet_worker_slots{") {
				if sample != "" {
					t.Fatalf("sample torn across lines for %q:\n%s", name, out)
				}
				sample = line
			}
		}
		if sample == "" {
			t.Fatalf("sample lost for %q:\n%s", name, out)
		}
		// The injected daemon label is Go-quoted, which is exposition
		// compatible for \\, \n, \" — unquote must recover the raw name.
		start := strings.Index(sample, `daemon=`) + len(`daemon=`)
		end := strings.Index(sample[start:], `,worker=`)
		if start < len(`daemon=`) || end < 0 {
			t.Fatalf("cannot locate daemon label in %q", sample)
		}
		got, err := strconv.Unquote(sample[start : start+end])
		if err != nil {
			t.Fatalf("daemon label %q does not unquote: %v", sample[start:start+end], err)
		}
		if got != name {
			t.Fatalf("daemon %q round-tripped to %q", name, got)
		}
		// The worker label must pass through byte-identical.
		if !strings.Contains(sample, `worker="`+escaped+`"`) {
			t.Fatalf("worker label mangled for %q: %s", name, sample)
		}
	}
}
