package shard

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"rldecide/internal/core"
	"rldecide/internal/daemon"
	"rldecide/internal/journal"
	"rldecide/internal/param"
	"rldecide/internal/studyd"
)

// ---- fixtures ----------------------------------------------------------

func testLogf(t *testing.T) func(string, ...any) {
	return func(format string, args ...any) { t.Logf(format, args...) }
}

// rgate throttles an objective the way the studyd crash tests do: in
// limited mode at most `limit` trials complete, the rest block on the run
// context like a long training job until the daemon dies.
type rgate struct {
	mu          sync.Mutex
	limited     bool
	limit       int
	reserved    int
	completions map[uint64]int
}

func (g *rgate) allow() bool {
	g.mu.Lock()
	defer g.mu.Unlock()
	if !g.limited {
		return true
	}
	if g.reserved >= g.limit {
		return false
	}
	g.reserved++
	return true
}

func (g *rgate) open() {
	g.mu.Lock()
	g.limited = false
	g.mu.Unlock()
}

func (g *rgate) complete(seed uint64) {
	g.mu.Lock()
	g.completions[seed]++
	g.mu.Unlock()
}

// registerGated registers a deterministic two-metric objective (the same
// arithmetic whichever daemon evaluates it) behind g's throttle.
func registerGated(name string, g *rgate) {
	studyd.RegisterObjective(name, func(spec studyd.Spec, metrics []core.Metric) (core.Objective, error) {
		return func(a param.Assignment, seed uint64, rec *core.Recorder) error {
			if !g.allow() {
				<-rec.Context().Done()
				return rec.Context().Err()
			}
			x, y := a.Value("x").Float(), a.Value("y").Float()
			rec.Report(metrics[0].Name, x*x+y*y)
			rec.Report(metrics[1].Name, 2*x+0.5*y)
			g.complete(seed)
			return nil
		}, nil
	})
}

func shardSpec(objective string) studyd.Spec {
	return studyd.Spec{
		Name: "demo",
		Params: []studyd.ParamSpec{
			{Name: "x", Type: "floatrange", Lo: -2, Hi: 2},
			{Name: "y", Type: "floatrange", Lo: -2, Hi: 2},
		},
		Explorer: studyd.ExplorerSpec{Type: "random"},
		Metrics: []studyd.MetricSpec{
			{Name: "f", Direction: "min"},
			{Name: "cost", Direction: "min"},
		},
		Objective: objective,
		Budget:    16,
		Seed:      5,
	}
}

func newBackend(t *testing.T, dir, name, token string) (*studyd.Daemon, *httptest.Server) {
	t.Helper()
	d, err := studyd.New(studyd.Config{Dir: dir, Name: name, Workers: 4, Token: token, Logf: testLogf(t)})
	if err != nil {
		t.Fatal(err)
	}
	d.Start()
	ts := httptest.NewServer(d.Handler())
	t.Cleanup(func() {
		ts.Close()
		_ = d.Shutdown(context.Background())
	})
	return d, ts
}

func newRouter(t *testing.T, cfg Config) (*Router, *httptest.Server) {
	t.Helper()
	if cfg.Logf == nil {
		cfg.Logf = testLogf(t)
	}
	rt, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(rt.Handler())
	t.Cleanup(ts.Close)
	return rt, ts
}

func postSpec(t *testing.T, url, token string, spec studyd.Spec) *http.Response {
	t.Helper()
	body, err := json.Marshal(spec)
	if err != nil {
		t.Fatal(err)
	}
	req, err := http.NewRequest(http.MethodPost, url, bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	if token != "" {
		req.Header.Set("Authorization", "Bearer "+token)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

func waitStatus(t *testing.T, m *studyd.ManagedStudy, want studyd.Status) {
	t.Helper()
	deadline := time.Now().Add(20 * time.Second)
	for time.Now().Before(deadline) {
		if m.Status() == want {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("study %s stuck in %s, want %s", m.ID, m.Status(), want)
}

func waitTrials(t *testing.T, m *studyd.ManagedStudy, n int) {
	t.Helper()
	deadline := time.Now().Add(20 * time.Second)
	for len(m.Trials()) < n && time.Now().Before(deadline) {
		time.Sleep(2 * time.Millisecond)
	}
	if got := len(m.Trials()); got < n {
		t.Fatalf("study %s reached %d trials, want %d", m.ID, got, n)
	}
}

// canonicalRecords renders a study's finished trials as sorted journal
// lines with the informational fields (worker attribution, measured
// wall-clock time) cleared — the byte-level form the determinism
// cross-check compares.
func canonicalRecords(t *testing.T, m *studyd.ManagedStudy) []byte {
	t.Helper()
	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	for _, tr := range m.Trials() { // Trials() is ID-sorted
		rec := journal.FromTrial(tr)
		rec.Worker = ""
		rec.WallMs = 0
		if err := enc.Encode(rec); err != nil {
			t.Fatal(err)
		}
	}
	return buf.Bytes()
}

// mustGet fetches url and returns the body, failing on non-200.
func mustGet(t *testing.T, url string) []byte {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: %d\n%s", url, resp.StatusCode, buf.String())
	}
	return buf.Bytes()
}

// ---- tests -------------------------------------------------------------

// TestRouterPlacementAndFanout pins the routing layer end to end against
// two live daemons: bounded-load placement spreads identical submissions,
// study reads proxy to the owner, the fleet list merges ID-sorted, and
// the metrics rollup carries daemon labels without series collisions.
func TestRouterPlacementAndFanout(t *testing.T) {
	alpha, tsA := newBackend(t, t.TempDir(), "alpha", "")
	beta, tsB := newBackend(t, t.TempDir(), "beta", "")
	_, tsR := newRouter(t, Config{Backends: []Backend{
		{Name: "alpha", URL: tsA.URL},
		{Name: "beta", URL: tsB.URL},
	}})

	spec := shardSpec("sphere")
	spec.Budget = 2

	// Three byte-identical submissions hash to one ring position; only the
	// bounded-load cap can spread them — and must.
	owners := map[string]int{}
	var ids []string
	for i := 0; i < 3; i++ {
		resp := postSpec(t, tsR.URL+"/studies", "", spec)
		if resp.StatusCode != http.StatusCreated {
			t.Fatalf("submit %d: %d", i, resp.StatusCode)
		}
		var sum studyd.Summary
		if err := json.NewDecoder(resp.Body).Decode(&sum); err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if sum.Daemon == "" || !strings.HasPrefix(sum.ID, sum.Daemon+"-") {
			t.Fatalf("summary %q not stamped by its daemon (%q)", sum.ID, sum.Daemon)
		}
		owners[sum.Daemon]++
		ids = append(ids, sum.ID)
	}
	if len(owners) != 2 {
		t.Fatalf("3 identical submissions all landed on one daemon: %v", owners)
	}

	for _, d := range []*studyd.Daemon{alpha, beta} {
		for _, m := range d.Store().List() {
			waitStatus(t, m, studyd.StatusDone)
		}
	}

	// Fleet-wide list: every study, ID-sorted.
	var list struct {
		Studies []studyd.Summary `json:"studies"`
	}
	if err := json.Unmarshal(mustGet(t, tsR.URL+"/studies"), &list); err != nil {
		t.Fatal(err)
	}
	if len(list.Studies) != 3 {
		t.Fatalf("fleet list has %d studies, want 3", len(list.Studies))
	}
	for i := 1; i < len(list.Studies); i++ {
		if list.Studies[i-1].ID >= list.Studies[i].ID {
			t.Fatalf("fleet list not ID-sorted: %v", list.Studies)
		}
	}

	// Per-study reads proxy to the owner, wherever it lives.
	for _, id := range ids {
		var sum studyd.Summary
		if err := json.Unmarshal(mustGet(t, tsR.URL+"/studies/"+id), &sum); err != nil {
			t.Fatal(err)
		}
		if sum.ID != id || sum.Status != studyd.StatusDone {
			t.Fatalf("proxied summary: %+v", sum)
		}
		// Subpaths proxy too.
		mustGet(t, tsR.URL+"/studies/"+id+"/front")
	}

	// A directory-cold router resolves owners by probing.
	rt2, tsR2 := newRouter(t, Config{Backends: []Backend{
		{Name: "alpha", URL: tsA.URL},
		{Name: "beta", URL: tsB.URL},
	}})
	_ = rt2
	var sum studyd.Summary
	if err := json.Unmarshal(mustGet(t, tsR2.URL+"/studies/"+ids[0]), &sum); err != nil {
		t.Fatal(err)
	}
	if sum.ID != ids[0] {
		t.Fatalf("cold-directory lookup returned %q", sum.ID)
	}

	// Health, workers, and the metrics rollup.
	mustGet(t, tsR.URL+"/healthz")
	mustGet(t, tsR.URL+"/workers")
	metrics := string(mustGet(t, tsR.URL+"/metrics"))
	for _, want := range []string{
		`rldecide_router_backends{state="up"} 2`,
		`rldecide_studyd_studies{daemon="alpha"`,
		`rldecide_studyd_studies{daemon="beta"`,
		`rldecide_local_trials_total{daemon="alpha"}`,
		`rldecide_router_placements{daemon=`,
	} {
		if !strings.Contains(metrics, want) {
			t.Errorf("rollup missing %q", want)
		}
	}
	if n := strings.Count(metrics, "# TYPE rldecide_studyd_studies gauge"); n != 1 {
		t.Errorf("rollup repeats the studies family %d times", n)
	}
}

// TestRouterBackendUnreachable pins degraded-mode behavior: a dead
// backend turns submissions into 502s and health into 503, never a hang.
func TestRouterBackendUnreachable(t *testing.T) {
	_, tsR := newRouter(t, Config{
		Backends:     []Backend{{Name: "ghost", URL: "http://127.0.0.1:1"}},
		ProbeTimeout: 500 * time.Millisecond,
	})
	resp := postSpec(t, tsR.URL+"/studies", "", shardSpec("sphere"))
	if resp.StatusCode != http.StatusBadGateway {
		t.Fatalf("submit to dead fleet: %d, want 502", resp.StatusCode)
	}
	resp.Body.Close()
	hresp, err := http.Get(tsR.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	hresp.Body.Close()
	if hresp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("healthz with no live backend: %d, want 503", hresp.StatusCode)
	}
}

// TestRouterRehomeAuth pins that the router's own mutating endpoint sits
// behind its bearer gate.
func TestRouterRehomeAuth(t *testing.T) {
	_, tsA := newBackend(t, t.TempDir(), "alpha", "")
	_, tsR := newRouter(t, Config{
		Backends: []Backend{{Name: "alpha", URL: tsA.URL}},
		Auth:     daemon.NewAuth("rtok", nil),
	})
	req, _ := http.NewRequest(http.MethodPost, tsR.URL+"/rehome", nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusUnauthorized {
		t.Fatalf("unauthenticated rehome: %d, want 401", resp.StatusCode)
	}
	req, _ = http.NewRequest(http.MethodPost, tsR.URL+"/rehome", nil)
	req.Header.Set("Authorization", "Bearer rtok")
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	var report ReconcileReport
	if err := json.NewDecoder(resp.Body).Decode(&report); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || len(report.Live) != 1 {
		t.Fatalf("rehome: %d %+v", resp.StatusCode, report)
	}
}

// TestShardResumeDeterminism is the PR's acceptance scenario: the same
// campaign run (A) on a single daemon, (B) through the router across two
// daemons, and (C) through the router with the owning daemon killed
// mid-campaign and the study re-homed, must produce byte-identical
// journals (modulo worker attribution and wall-clock) and the same
// Pareto front.
func TestShardResumeDeterminism(t *testing.T) {
	spec := shardSpec("")
	spec.Parallelism = 2

	// --- Scenario A: one daemon, no router. ---
	gA := &rgate{completions: map[uint64]int{}}
	registerGated("shard-det-a", gA)
	specA := spec
	specA.Objective = "shard-det-a"
	solo, _ := newBackend(t, t.TempDir(), "solo", "tok")
	mA, err := solo.Submit(specA)
	if err != nil {
		t.Fatal(err)
	}
	waitStatus(t, mA, studyd.StatusDone)

	// --- Scenario B: two router-fronted daemons. ---
	gB := &rgate{completions: map[uint64]int{}}
	registerGated("shard-det-b", gB)
	specB := spec
	specB.Objective = "shard-det-b"
	dirB := t.TempDir()
	alphaB, tsAB := newBackend(t, dirB, "alpha", "tok")
	betaB, tsBB := newBackend(t, dirB, "beta", "tok")
	_, tsRB := newRouter(t, Config{
		Backends: []Backend{{Name: "alpha", URL: tsAB.URL}, {Name: "beta", URL: tsBB.URL}},
		Token:    "tok",
	})
	resp := postSpec(t, tsRB.URL+"/studies", "tok", specB)
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("scenario B submit: %d", resp.StatusCode)
	}
	var sumB studyd.Summary
	if err := json.NewDecoder(resp.Body).Decode(&sumB); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	ownerB := map[string]*studyd.Daemon{"alpha": alphaB, "beta": betaB}[sumB.Daemon]
	if ownerB == nil {
		t.Fatalf("scenario B placed on unknown daemon %q", sumB.Daemon)
	}
	mB, ok := ownerB.Store().Get(sumB.ID)
	if !ok {
		t.Fatal("scenario B study missing from its owner")
	}
	waitStatus(t, mB, studyd.StatusDone)

	// --- Scenario C: kill the owner mid-campaign, re-home, finish. ---
	gC := &rgate{limited: true, limit: 5, completions: map[uint64]int{}}
	registerGated("shard-det-c", gC)
	specC := spec
	specC.Objective = "shard-det-c"
	dirC := t.TempDir()
	alphaC, tsAC := newBackend(t, dirC, "alpha", "tok")
	betaC, tsBC := newBackend(t, dirC, "beta", "tok")
	rtC, tsRC := newRouter(t, Config{
		Backends: []Backend{{Name: "alpha", URL: tsAC.URL}, {Name: "beta", URL: tsBC.URL}},
		Token:    "tok",
	})
	resp = postSpec(t, tsRC.URL+"/studies", "tok", specC)
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("scenario C submit: %d", resp.StatusCode)
	}
	var sumC studyd.Summary
	if err := json.NewDecoder(resp.Body).Decode(&sumC); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()

	victims := map[string]struct {
		d  *studyd.Daemon
		ts *httptest.Server
	}{
		"alpha": {alphaC, tsAC},
		"beta":  {betaC, tsBC},
	}
	victim, okV := victims[sumC.Daemon]
	if !okV {
		t.Fatalf("scenario C placed on unknown daemon %q", sumC.Daemon)
	}
	survivorName := "beta"
	if sumC.Daemon == "beta" {
		survivorName = "alpha"
	}
	survivor := victims[survivorName].d

	mC1, ok := victim.d.Store().Get(sumC.ID)
	if !ok {
		t.Fatal("scenario C study missing from its owner")
	}
	waitTrials(t, mC1, 5)

	// Kill the owning daemon: its listener vanishes and its runs drain.
	victim.ts.Close()
	shutdownCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	if err := victim.d.Shutdown(shutdownCtx); err != nil {
		t.Fatal(err)
	}
	cancel()
	if got := mC1.Status(); got != studyd.StatusInterrupted {
		t.Fatalf("victim's study after kill: %s", got)
	}

	// Re-home through the router's reconcile pass.
	gC.open()
	report := rtC.Reconcile(context.Background())
	if got := report.Rehomed[sumC.ID]; got != survivorName {
		t.Fatalf("reconcile re-homed %q onto %q, want %q (report %+v)", sumC.ID, got, survivorName, report)
	}
	mC, ok := survivor.Store().Get(sumC.ID)
	if !ok {
		t.Fatal("survivor did not register the adopted study")
	}
	if got := mC.Summary().Resumed; got != 5 {
		t.Fatalf("adopted with %d resumed trials, want 5", got)
	}
	waitStatus(t, mC, studyd.StatusDone)

	// Reads through the router now reach the new owner.
	var sumAfter studyd.Summary
	if err := json.Unmarshal(mustGet(t, tsRC.URL+"/studies/"+sumC.ID), &sumAfter); err != nil {
		t.Fatal(err)
	}
	if sumAfter.Daemon != survivorName || sumAfter.Generation != 2 {
		t.Fatalf("post-rehome summary: %+v", sumAfter)
	}

	// No trial ran twice across the kill.
	gC.mu.Lock()
	for seed, n := range gC.completions {
		if n > 1 {
			t.Errorf("scenario C seed %d evaluated %d times", seed, n)
		}
	}
	gC.mu.Unlock()

	// --- The determinism contract. ---
	recA := canonicalRecords(t, mA)
	recB := canonicalRecords(t, mB)
	recC := canonicalRecords(t, mC)
	if !bytes.Equal(recA, recB) {
		t.Fatalf("journals diverged between single daemon and routed fleet:\nA:\n%s\nB:\n%s", recA, recB)
	}
	if !bytes.Equal(recA, recC) {
		t.Fatalf("journals diverged after kill + re-home:\nA:\n%s\nC:\n%s", recA, recC)
	}

	frontA, err := mA.Front()
	if err != nil {
		t.Fatal(err)
	}
	frontC, err := mC.Front()
	if err != nil {
		t.Fatal(err)
	}
	if fmt.Sprint(frontA.Fronts) != fmt.Sprint(frontC.Fronts) {
		t.Fatalf("Pareto fronts diverged:\nA: %v\nC: %v", frontA.Fronts, frontC.Fronts)
	}
	t.Logf("fronts agree across topologies: %v", frontA.Fronts[0])
}
