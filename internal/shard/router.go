package shard

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"log"
	"net/http"
	"net/http/httputil"
	"net/url"
	"sort"
	"strings"
	"sync"
	"time"

	"rldecide/internal/daemon"
	"rldecide/internal/obs"
	"rldecide/internal/obs/span"
	"rldecide/internal/power"
)

// Backend is one serve daemon the router fronts. Name must match the
// daemon's -name flag — it is the shard identity used in study-ID
// prefixes, ownership manifests, and metric labels.
type Backend struct {
	Name string `json:"name"`
	URL  string `json:"url"`
}

// ParseBackends parses the -backends flag syntax: name=url,name2=url2,...
func ParseBackends(s string) ([]Backend, error) {
	var out []Backend
	seen := map[string]bool{}
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		name, rawURL, ok := strings.Cut(part, "=")
		if !ok || name == "" || rawURL == "" {
			return nil, fmt.Errorf("shard: bad backend entry %q (want name=url)", part)
		}
		if seen[name] {
			return nil, fmt.Errorf("shard: duplicate backend %q", name)
		}
		seen[name] = true
		out = append(out, Backend{Name: name, URL: rawURL})
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("shard: no backends configured")
	}
	return out, nil
}

// Config configures a Router.
type Config struct {
	// Backends are the serve daemons to route across. Required.
	Backends []Backend
	// Auth gates the router's own mutating endpoint (POST /rehome).
	// Study/worker mutations are enforced by the backends — the router
	// passes the caller's Authorization header through untouched.
	Auth *daemon.Auth
	// Token is the bearer the router presents for the backend calls it
	// originates itself (adopt during re-homing). It must be a credential
	// every backend accepts.
	Token string
	// ProbeTimeout bounds each backend health probe and scrape (default
	// 3s).
	ProbeTimeout time.Duration
	// Logf receives operational log lines (default log.Printf).
	Logf func(format string, args ...any)
}

// Router is the stateless directory/router daemon fronting a fleet of
// serve daemons: it places submissions by consistent hash with bounded
// loads, proxies study reads/SSE/cancel to the owning daemon, aggregates
// fleet-wide /studies, /workers and /metrics views, and re-homes the
// studies of dead daemons onto live ones. All its durable state — who
// owns which study — lives in the backends' shared state directory; the
// router's in-memory directory is a cache rebuilt from fleet-wide list
// calls, so a restarted router recovers by asking.
type Router struct {
	cfg     Config
	ring    *Ring
	byName  map[string]Backend
	proxies map[string]*httputil.ReverseProxy
	client  *http.Client
	bus     *obs.Bus
	reg     *obs.Registry
	clock   *power.Stopwatch

	metricProxied      *obs.Counter
	metricRehomes      *obs.Counter
	metricScrapeErrors *obs.Counter

	mu sync.Mutex
	// guarded-by: mu
	placements map[string]string // study ID -> backend name
	// guarded-by: mu
	down map[string]bool

	spanMu sync.Mutex
	// placeSpans holds the router's own placement spans per study so
	// GET /studies/{id}/spans can splice them into the owning daemon's
	// tree (the daemon never sees the router's side of the hop). Bounded
	// FIFO per study ID.
	// guarded-by: spanMu
	placeSpans map[string][]span.Span
	// guarded-by: spanMu
	spanOrder []string
}

// maxSpanStudies bounds how many studies' placement spans the router
// retains (oldest study evicted first).
const maxSpanStudies = 1024

// New builds a router over the given backends.
func New(cfg Config) (*Router, error) {
	if len(cfg.Backends) == 0 {
		return nil, fmt.Errorf("shard: Config.Backends is required")
	}
	if cfg.Logf == nil {
		cfg.Logf = log.Printf
	}
	if cfg.ProbeTimeout <= 0 {
		cfg.ProbeTimeout = 3 * time.Second
	}
	rt := &Router{
		cfg:        cfg,
		byName:     map[string]Backend{},
		proxies:    map[string]*httputil.ReverseProxy{},
		client:     &http.Client{},
		bus:        obs.NewBus(),
		reg:        obs.NewRegistry(),
		clock:      power.StartStopwatch(),
		placements: map[string]string{},
		down:       map[string]bool{},
		placeSpans: map[string][]span.Span{},
	}
	names := make([]string, 0, len(cfg.Backends))
	for _, b := range cfg.Backends {
		target, err := url.Parse(b.URL)
		if err != nil || target.Scheme == "" || target.Host == "" {
			return nil, fmt.Errorf("shard: backend %s has invalid URL %q", b.Name, b.URL)
		}
		if _, dup := rt.byName[b.Name]; dup {
			return nil, fmt.Errorf("shard: duplicate backend %q", b.Name)
		}
		rt.byName[b.Name] = b
		names = append(names, b.Name)
		proxy := &httputil.ReverseProxy{
			Rewrite: func(pr *httputil.ProxyRequest) {
				pr.SetURL(target)
				pr.Out.Host = target.Host
			},
			// Flush every write through immediately so proxied SSE streams
			// (GET /studies/{id}/events) push frames as they arrive.
			FlushInterval: -1,
			ErrorHandler: func(w http.ResponseWriter, r *http.Request, err error) {
				daemon.WriteError(w, http.StatusBadGateway, fmt.Errorf("backend %s: %w", b.Name, err))
			},
		}
		rt.proxies[b.Name] = proxy
	}
	rt.ring = NewRing(names)
	rt.metricProxied = rt.reg.NewCounter("rldecide_router_proxied_total",
		"Requests proxied to owning backends.")
	rt.metricRehomes = rt.reg.NewCounter("rldecide_router_rehomes_total",
		"Studies re-homed onto a live backend after an owner death.")
	rt.metricScrapeErrors = rt.reg.NewCounter("rldecide_router_scrape_errors_total",
		"Failed backend scrapes/probes (metrics rollup and fan-out reads).")
	rt.reg.NewGaugeFunc("rldecide_router_backends",
		"Configured backends by router-observed liveness.", func() []obs.Sample {
			rt.mu.Lock()
			downCount := len(rt.down)
			rt.mu.Unlock()
			up := len(rt.byName) - downCount
			return []obs.Sample{
				{Labels: [][2]string{{"state", "up"}}, Value: float64(up)},
				{Labels: [][2]string{{"state", "down"}}, Value: float64(downCount)},
			}
		})
	rt.reg.NewCounterFunc("rldecide_bus_dropped_total",
		"Event-bus events dropped per subscriber because its buffer was full.",
		func() []obs.Sample { return rt.bus.DropSamples() })
	rt.reg.NewGaugeFunc("rldecide_router_placements",
		"Directory entries (studies with a known owner) per backend.", func() []obs.Sample {
			loads := rt.loads(rt.ring.Backends())
			names := rt.ring.Backends()
			out := make([]obs.Sample, len(names))
			for i, n := range names {
				out[i] = obs.Sample{Labels: [][2]string{{"daemon", n}}, Value: float64(loads[n])}
			}
			return out
		})
	return rt, nil
}

// Bus exposes the router's event bus (backend up/down, placements,
// re-homes) for tests and embedders.
func (rt *Router) Bus() *obs.Bus { return rt.bus }

// Registry exposes the router's own metric registry.
func (rt *Router) Registry() *obs.Registry { return rt.reg }

// Shutdown closes the router's event bus; the kernel lifecycle calls it
// as the drain step.
func (rt *Router) Shutdown(context.Context) error {
	_ = rt.bus.Close() // always nil
	return nil
}

// ListenAndServe serves the router's HTTP API on addr until ctx is
// cancelled — the kernel's serve-then-drain lifecycle.
func (rt *Router) ListenAndServe(ctx context.Context, addr string, grace time.Duration) error {
	rt.cfg.Logf("router: serving on %s (%d backends)", addr, len(rt.byName))
	return daemon.Run(ctx, addr, rt.Handler(), grace, rt.Shutdown)
}

// Handler returns the router's HTTP API:
//
//	GET  /healthz              router + per-backend liveness
//	GET  /metrics              fleet-wide rollup (daemon-labeled) + router series
//	GET  /studies              fleet-wide study list (merged, ID-sorted)
//	POST /studies              place on a backend and forward             [backend auth]
//	GET  /studies/{id}/spans   owning daemon's span tree + router placement spans
//	ANY  /studies/{id}...      proxied to the owning backend
//	GET  /workers              every backend's worker registry
//	POST /rehome               probe backends, re-home stranded studies  [auth]
func (rt *Router) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", rt.handleHealthz)
	mux.HandleFunc("GET /metrics", rt.handleMetrics)
	mux.HandleFunc("GET /studies", rt.handleList)
	// The router is a stateless pass-through: submissions and cancels are
	// forwarded with the client's Authorization header intact and the
	// owning backend enforces auth + tenant quotas, so wrapping them here
	// would force the router to share every backend token.
	//lint:ignore handler-auth submission is forwarded verbatim; the owning backend enforces auth and quota
	mux.HandleFunc("POST /studies", rt.handleSubmit)
	mux.HandleFunc("GET /studies/{id}", rt.proxyStudy)
	mux.HandleFunc("GET /studies/{id}/spans", rt.handleSpans)
	mux.HandleFunc("GET /studies/{id}/{sub...}", rt.proxyStudy)
	//lint:ignore handler-auth cancel is proxied to the owning backend, which enforces auth
	mux.HandleFunc("POST /studies/{id}/cancel", rt.proxyStudy)
	mux.HandleFunc("GET /workers", rt.handleWorkers)
	mux.HandleFunc("POST /rehome", rt.cfg.Auth.Require(rt.handleRehome))
	return mux
}

// sortedBackends returns the backend list sorted by name — every fan-out
// walks it in this order so aggregate responses are deterministic.
func (rt *Router) sortedBackends() []Backend {
	names := rt.ring.Backends()
	out := make([]Backend, len(names))
	for i, n := range names {
		out[i] = rt.byName[n]
	}
	return out
}

// live returns the backends the router currently believes are up.
func (rt *Router) live() []Backend {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	var out []Backend
	for _, b := range rt.sortedBackends() {
		if !rt.down[b.Name] {
			out = append(out, b)
		}
	}
	return out
}

// loads counts directory entries per backend restricted to names.
func (rt *Router) loads(names []string) map[string]int {
	allowed := make(map[string]bool, len(names))
	for _, n := range names {
		allowed[n] = true
	}
	out := make(map[string]int, len(names))
	rt.mu.Lock()
	for _, owner := range rt.placements {
		if allowed[owner] {
			out[owner]++
		}
	}
	rt.mu.Unlock()
	return out
}

// do issues a router-originated request to a backend path.
func (rt *Router) do(ctx context.Context, method string, b Backend, path string, body []byte, hdr http.Header) (*http.Response, error) {
	var rd io.Reader
	if body != nil {
		rd = bytes.NewReader(body)
	}
	req, err := http.NewRequestWithContext(ctx, method, strings.TrimRight(b.URL, "/")+path, rd)
	if err != nil {
		return nil, err
	}
	for _, k := range []string{"Authorization", "Content-Type", "Accept"} {
		if v := hdr.Get(k); v != "" {
			req.Header.Set(k, v)
		}
	}
	return rt.client.Do(req)
}

// authedHeader is the header set for router-originated mutations.
func (rt *Router) authedHeader() http.Header {
	h := http.Header{}
	if rt.cfg.Token != "" {
		h.Set("Authorization", "Bearer "+rt.cfg.Token)
	}
	h.Set("Content-Type", "application/json")
	return h
}

// probe checks one backend's liveness within the probe timeout.
func (rt *Router) probe(ctx context.Context, b Backend) bool {
	ctx, cancel := context.WithTimeout(ctx, rt.cfg.ProbeTimeout)
	defer cancel()
	resp, err := rt.do(ctx, http.MethodGet, b, "/healthz", nil, nil)
	if err != nil {
		return false
	}
	defer resp.Body.Close()
	_, _ = io.Copy(io.Discard, resp.Body)
	return resp.StatusCode == http.StatusOK
}

func (rt *Router) handleHealthz(w http.ResponseWriter, r *http.Request) {
	states := map[string]string{}
	ok := false
	for _, b := range rt.sortedBackends() {
		if rt.probe(r.Context(), b) {
			states[b.Name] = "up"
			ok = true
		} else {
			states[b.Name] = "down"
		}
	}
	status := http.StatusOK
	if !ok {
		// A router with no live backend cannot serve anything.
		status = http.StatusServiceUnavailable
	}
	daemon.WriteJSON(w, status, map[string]any{"ok": ok, "backends": states})
}

func (rt *Router) handleMetrics(w http.ResponseWriter, r *http.Request) {
	var expos []Exposition
	for _, b := range rt.live() {
		ctx, cancel := context.WithTimeout(r.Context(), rt.cfg.ProbeTimeout)
		resp, err := rt.do(ctx, http.MethodGet, b, "/metrics", nil, nil)
		if err != nil {
			cancel()
			rt.metricScrapeErrors.Inc()
			rt.cfg.Logf("router: scraping %s: %v", b.Name, err)
			continue
		}
		text, err := io.ReadAll(resp.Body)
		_ = resp.Body.Close()
		cancel()
		if err != nil || resp.StatusCode != http.StatusOK {
			rt.metricScrapeErrors.Inc()
			rt.cfg.Logf("router: scraping %s: status %d, %v", b.Name, resp.StatusCode, err)
			continue
		}
		expos = append(expos, Exposition{Daemon: b.Name, Text: string(text)})
	}
	var own bytes.Buffer
	if err := rt.reg.WriteText(&own); err == nil {
		expos = append(expos, Exposition{Text: own.String()})
	}
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	if err := MergeExpositions(w, expos); err != nil {
		rt.cfg.Logf("router: metrics rollup: %v", err)
	}
}

// summaryProbe is the slice of a backend study summary the directory
// needs; the raw JSON passes through to clients untouched.
type summaryProbe struct {
	ID     string `json:"id"`
	Daemon string `json:"daemon"`
}

func (rt *Router) handleList(w http.ResponseWriter, r *http.Request) {
	studies, err := rt.listStudies(r.Context())
	if err != nil {
		daemon.WriteError(w, http.StatusBadGateway, err)
		return
	}
	daemon.WriteJSON(w, http.StatusOK, map[string]any{"studies": studies})
}

// listStudies fans GET /studies out to every live backend, refreshes the
// placement directory from the answers, and returns the merged summaries
// sorted by study ID.
func (rt *Router) listStudies(ctx context.Context) ([]json.RawMessage, error) {
	type entry struct {
		id  string
		raw json.RawMessage
	}
	var entries []entry
	var lastErr error
	reached := 0
	for _, b := range rt.live() {
		bctx, cancel := context.WithTimeout(ctx, rt.cfg.ProbeTimeout)
		resp, err := rt.do(bctx, http.MethodGet, b, "/studies", nil, nil)
		if err != nil {
			cancel()
			rt.metricScrapeErrors.Inc()
			lastErr = fmt.Errorf("backend %s: %w", b.Name, err)
			continue
		}
		var payload struct {
			Studies []json.RawMessage `json:"studies"`
		}
		err = json.NewDecoder(resp.Body).Decode(&payload)
		_ = resp.Body.Close()
		cancel()
		if err != nil {
			rt.metricScrapeErrors.Inc()
			lastErr = fmt.Errorf("backend %s: %w", b.Name, err)
			continue
		}
		reached++
		for _, raw := range payload.Studies {
			var p summaryProbe
			if err := json.Unmarshal(raw, &p); err != nil || p.ID == "" {
				continue
			}
			entries = append(entries, entry{id: p.ID, raw: raw})
			rt.mu.Lock()
			rt.placements[p.ID] = b.Name
			rt.mu.Unlock()
		}
	}
	if reached == 0 && lastErr != nil {
		return nil, lastErr
	}
	sort.Slice(entries, func(i, j int) bool { return entries[i].id < entries[j].id })
	out := make([]json.RawMessage, len(entries))
	for i, e := range entries {
		out[i] = e.raw
	}
	return out, nil
}

func (rt *Router) handleWorkers(w http.ResponseWriter, r *http.Request) {
	var fleets []json.RawMessage
	for _, b := range rt.live() {
		ctx, cancel := context.WithTimeout(r.Context(), rt.cfg.ProbeTimeout)
		resp, err := rt.do(ctx, http.MethodGet, b, "/workers", nil, nil)
		if err != nil {
			cancel()
			rt.metricScrapeErrors.Inc()
			continue
		}
		raw, err := io.ReadAll(resp.Body)
		_ = resp.Body.Close()
		cancel()
		if err != nil || resp.StatusCode != http.StatusOK {
			rt.metricScrapeErrors.Inc()
			continue
		}
		fleets = append(fleets, json.RawMessage(raw))
	}
	daemon.WriteJSON(w, http.StatusOK, map[string]any{"fleets": fleets})
}

// handleSubmit is placement: pick the backend by consistent hash with
// bounded loads over the spec bytes, forward the submission (the caller's
// credentials pass through; the backend enforces auth and quota), and on
// success record the minted study ID in the directory.
func (rt *Router) handleSubmit(w http.ResponseWriter, r *http.Request) {
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, 4<<20))
	if err != nil {
		daemon.WriteError(w, http.StatusBadRequest, err)
		return
	}
	live := rt.live()
	if len(live) == 0 {
		daemon.WriteError(w, http.StatusServiceUnavailable, fmt.Errorf("no live backends"))
		return
	}
	names := make([]string, len(live))
	for i, b := range live {
		names[i] = b.Name
	}
	ring := rt.ring
	if len(names) != len(rt.byName) {
		ring = NewRing(names)
	}
	target := ring.Place(string(body), rt.loads(names))
	b := rt.byName[target]

	placeStart := rt.clock.ElapsedSeconds() * 1e3
	resp, err := rt.do(r.Context(), http.MethodPost, b, "/studies", body, r.Header)
	if err != nil {
		daemon.WriteError(w, http.StatusBadGateway, fmt.Errorf("backend %s: %w", b.Name, err))
		return
	}
	defer resp.Body.Close()
	answer, err := io.ReadAll(resp.Body)
	if err != nil {
		daemon.WriteError(w, http.StatusBadGateway, fmt.Errorf("backend %s: %w", b.Name, err))
		return
	}
	if resp.StatusCode == http.StatusCreated {
		var p summaryProbe
		if err := json.Unmarshal(answer, &p); err == nil && p.ID != "" {
			rt.mu.Lock()
			rt.placements[p.ID] = b.Name
			rt.mu.Unlock()
			rt.recordPlaceSpan(p.ID, b.Name, placeStart)
			rt.bus.Publish(obs.Event{Kind: obs.KindStudyPlaced, Study: p.ID, Daemon: b.Name})
			rt.cfg.Logf("router: placed study %s on %s", p.ID, b.Name)
		}
	}
	if ct := resp.Header.Get("Content-Type"); ct != "" {
		w.Header().Set("Content-Type", ct)
	}
	w.WriteHeader(resp.StatusCode)
	_, _ = w.Write(answer)
}

// owner resolves which backend serves a study: the directory first, then
// a probe of the live backends in name order (rebuilding the directory
// entry on a hit). The name-ordered probe keeps resolution deterministic.
func (rt *Router) owner(ctx context.Context, id string) (Backend, bool) {
	rt.mu.Lock()
	name, ok := rt.placements[id]
	isDown := rt.down[name]
	rt.mu.Unlock()
	if ok && !isDown {
		return rt.byName[name], true
	}
	for _, b := range rt.live() {
		bctx, cancel := context.WithTimeout(ctx, rt.cfg.ProbeTimeout)
		resp, err := rt.do(bctx, http.MethodGet, b, "/studies/"+url.PathEscape(id), nil, nil)
		if err != nil {
			cancel()
			continue
		}
		_, _ = io.Copy(io.Discard, resp.Body)
		_ = resp.Body.Close()
		cancel()
		if resp.StatusCode == http.StatusOK {
			rt.mu.Lock()
			rt.placements[id] = b.Name
			rt.mu.Unlock()
			return b, true
		}
	}
	return Backend{}, false
}

// proxyStudy forwards a per-study request (summary, trials, front, SSE
// events, cancel) to the owning backend.
func (rt *Router) proxyStudy(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	b, ok := rt.owner(r.Context(), id)
	if !ok {
		daemon.WriteError(w, http.StatusNotFound, fmt.Errorf("no backend serves study %q", id))
		return
	}
	rt.metricProxied.Inc()
	rt.proxies[b.Name].ServeHTTP(w, r)
}

// ReconcileReport is the outcome of one reconcile pass.
type ReconcileReport struct {
	Live    []string          `json:"live"`
	Down    []string          `json:"down,omitempty"`
	Rehomed map[string]string `json:"rehomed,omitempty"`
}

func (rt *Router) handleRehome(w http.ResponseWriter, r *http.Request) {
	report := rt.Reconcile(r.Context())
	daemon.WriteJSON(w, http.StatusOK, report)
}

// Reconcile is the failover pass: probe every backend, refresh the
// directory from the live ones, and re-home every directory entry owned
// by a dead backend — in sorted study-ID order, via each study's
// bounded-load placement on the surviving ring — by POSTing adopt to the
// new owner. Deterministic: same directory, same live set → same
// re-homing, so a router restarted mid-failover converges to the same
// assignment.
func (rt *Router) Reconcile(ctx context.Context) ReconcileReport {
	report := ReconcileReport{Rehomed: map[string]string{}}
	for _, b := range rt.sortedBackends() {
		up := rt.probe(ctx, b)
		rt.mu.Lock()
		was := rt.down[b.Name]
		if up {
			delete(rt.down, b.Name)
		} else {
			rt.down[b.Name] = true
		}
		rt.mu.Unlock()
		if up {
			report.Live = append(report.Live, b.Name)
			if was {
				rt.bus.Publish(obs.Event{Kind: obs.KindBackendUp, Daemon: b.Name})
				rt.cfg.Logf("router: backend %s is back up", b.Name)
			}
		} else {
			report.Down = append(report.Down, b.Name)
			if !was {
				rt.bus.Publish(obs.Event{Kind: obs.KindBackendDown, Daemon: b.Name})
				rt.cfg.Logf("router: backend %s is down", b.Name)
			}
		}
	}
	if len(report.Live) == 0 {
		return report
	}
	// Refresh the directory so every live-owned study is accounted for
	// before loads are computed.
	if _, err := rt.listStudies(ctx); err != nil {
		rt.cfg.Logf("router: reconcile list: %v", err)
	}

	rt.mu.Lock()
	var stranded []string
	for id, owner := range rt.placements {
		if rt.down[owner] {
			stranded = append(stranded, id)
		}
	}
	rt.mu.Unlock()
	sort.Strings(stranded)
	if len(stranded) == 0 {
		return report
	}

	liveRing := NewRing(report.Live)
	for _, id := range stranded {
		target := liveRing.Place(id, rt.loads(report.Live))
		if target == "" {
			break
		}
		b := rt.byName[target]
		resp, err := rt.do(ctx, http.MethodPost, b, "/studies/"+url.PathEscape(id)+"/adopt", nil, rt.authedHeader())
		if err != nil {
			rt.cfg.Logf("router: re-homing %s onto %s: %v", id, target, err)
			continue
		}
		_, _ = io.Copy(io.Discard, resp.Body)
		_ = resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			rt.cfg.Logf("router: re-homing %s onto %s: status %d", id, target, resp.StatusCode)
			continue
		}
		rt.mu.Lock()
		rt.placements[id] = target
		rt.mu.Unlock()
		rt.metricRehomes.Inc()
		rt.bus.Publish(obs.Event{Kind: obs.KindStudyAdopted, Study: id, Daemon: target})
		rt.cfg.Logf("router: re-homed study %s onto %s", id, target)
		report.Rehomed[id] = target
	}
	return report
}
