package shard

import (
	"fmt"
	"io"
	"sort"
	"strings"
)

// Exposition is one backend's scraped /metrics payload plus the daemon
// name whose label gets injected into unlabeled series on merge.
type Exposition struct {
	Daemon string
	Text   string
}

// family is one merged metric family: the first HELP/TYPE seen wins (the
// fleet runs one binary, so they agree), samples accumulate across
// backends in scrape order.
type family struct {
	name    string
	help    string
	typ     string
	samples []string
}

// MergeExpositions merges several Prometheus text-format 0.0.4
// expositions into one, writing families sorted by name with HELP/TYPE
// deduplicated. Every sample that does not already carry a daemon label
// gets daemon="<backend>" injected, so two daemons' identically named
// series — per-daemon gauges and each process's unlabeled process-wide
// counters alike — never collide in the rollup. Expositions with an empty
// Daemon are passed through unstamped (the router's own registry).
func MergeExpositions(w io.Writer, expos []Exposition) error {
	families := map[string]*family{}
	var order []string
	get := func(name string) *family {
		f, ok := families[name]
		if !ok {
			f = &family{name: name}
			families[name] = f
			order = append(order, name)
		}
		return f
	}
	for _, ex := range expos {
		// current tracks the family the scan is inside so histogram
		// children (_bucket/_sum/_count) attach to their parent.
		var current string
		for _, line := range strings.Split(ex.Text, "\n") {
			line = strings.TrimRight(line, "\r")
			if strings.TrimSpace(line) == "" {
				continue
			}
			if rest, ok := strings.CutPrefix(line, "# HELP "); ok {
				name, help, _ := strings.Cut(rest, " ")
				f := get(name)
				if f.help == "" {
					f.help = help
				}
				current = name
				continue
			}
			if rest, ok := strings.CutPrefix(line, "# TYPE "); ok {
				name, typ, _ := strings.Cut(rest, " ")
				f := get(name)
				if f.typ == "" {
					f.typ = typ
				}
				current = name
				continue
			}
			if strings.HasPrefix(line, "#") {
				continue // other comments are dropped
			}
			name := sampleName(line)
			if name == "" {
				return fmt.Errorf("shard: unparseable exposition line %q from daemon %q", line, ex.Daemon)
			}
			owner := name
			if current != "" && (name == current || strings.HasPrefix(name, current+"_")) {
				owner = current
			}
			f := get(owner)
			f.samples = append(f.samples, injectDaemon(line, ex.Daemon))
		}
	}
	sort.Strings(order)
	for _, name := range order {
		f := families[name]
		if f.help != "" {
			if _, err := fmt.Fprintf(w, "# HELP %s %s\n", f.name, f.help); err != nil {
				return err
			}
		}
		if f.typ != "" {
			if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", f.name, f.typ); err != nil {
				return err
			}
		}
		for _, s := range f.samples {
			if _, err := fmt.Fprintln(w, s); err != nil {
				return err
			}
		}
	}
	return nil
}

// sampleName extracts the metric name from a sample line
// (`name{labels} value` or `name value`).
func sampleName(line string) string {
	i := strings.IndexAny(line, "{ ")
	if i <= 0 {
		return ""
	}
	return line[:i]
}

// injectDaemon adds daemon="<d>" as the first label of a sample line
// unless the line already carries a daemon label (a named daemon stamped
// its own gauges) or d is empty.
func injectDaemon(line, d string) string {
	if d == "" {
		return line
	}
	i := strings.IndexAny(line, "{ ")
	if i <= 0 {
		return line
	}
	name := line[:i]
	if line[i] != '{' {
		return fmt.Sprintf(`%s{daemon=%q}%s`, name, d, line[i:])
	}
	j := strings.Index(line, "}")
	if j < 0 {
		return line
	}
	labels := line[i+1 : j]
	if strings.Contains(labels, `daemon="`) {
		return line
	}
	if labels == "" {
		return fmt.Sprintf(`%s{daemon=%q}%s`, name, d, line[j+1:])
	}
	return fmt.Sprintf(`%s{daemon=%q,%s}%s`, name, d, labels, line[j+1:])
}
