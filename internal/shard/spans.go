package shard

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/url"

	"rldecide/internal/daemon"
	"rldecide/internal/obs"
	"rldecide/internal/obs/span"
)

// The router's side of fleet-wide causal tracing. Placement is the one
// hop only the router sees, so it records a "place" span per successful
// submission — with the same deterministically derived trace and
// study-root IDs the owning daemon uses, which is what lets the span
// splice into the daemon's tree with zero coordination — and serves the
// merged tree at GET /studies/{id}/spans.

// recordPlaceSpan stores (and publishes) the placement span for a newly
// created study. startMs is the router clock offset captured before the
// forwarded submission.
func (rt *Router) recordPlaceSpan(study, backend string, startMs float64) {
	trace := span.DeriveTrace(study)
	rootID := span.DeriveID(trace, "", span.NameStudy, 0, 0)
	sp := span.Span{
		Trace:   trace,
		ID:      span.DeriveID(trace, rootID, span.NamePlace, 0, 0),
		Parent:  rootID,
		Name:    span.NamePlace,
		Study:   study,
		Daemon:  backend,
		StartMs: startMs,
		DurMs:   rt.clock.ElapsedSeconds()*1e3 - startMs,
		Status:  "ok",
	}
	rt.spanMu.Lock()
	if _, ok := rt.placeSpans[study]; !ok {
		for len(rt.spanOrder) >= maxSpanStudies {
			oldest := rt.spanOrder[0]
			rt.spanOrder = rt.spanOrder[1:]
			delete(rt.placeSpans, oldest)
		}
		rt.spanOrder = append(rt.spanOrder, study)
	}
	rt.placeSpans[study] = append(rt.placeSpans[study], sp)
	rt.spanMu.Unlock()
	rt.bus.Publish(obs.Event{
		Kind:   obs.KindSpan,
		Study:  study,
		Daemon: backend,
		Status: sp.Status,
		Name:   sp.Name,
		Trace:  sp.Trace,
		Span:   sp.ID,
		Parent: sp.Parent,
		DurMs:  sp.DurMs,
	})
}

// placeSpansOf returns a copy of the router's recorded spans for a study.
func (rt *Router) placeSpansOf(study string) []span.Span {
	rt.spanMu.Lock()
	defer rt.spanMu.Unlock()
	return append([]span.Span(nil), rt.placeSpans[study]...)
}

// handleSpans answers GET /studies/{id}/spans: fetch the owning daemon's
// tree, splice in the router's placement spans for the study, and rebuild.
// Non-200 backend answers (old daemon without the endpoint, errors) pass
// through untouched, like any other proxied study read.
func (rt *Router) handleSpans(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	b, ok := rt.owner(r.Context(), id)
	if !ok {
		daemon.WriteError(w, http.StatusNotFound, fmt.Errorf("no backend serves study %q", id))
		return
	}
	rt.metricProxied.Inc()
	resp, err := rt.do(r.Context(), http.MethodGet, b, "/studies/"+url.PathEscape(id)+"/spans", nil, r.Header)
	if err != nil {
		daemon.WriteError(w, http.StatusBadGateway, fmt.Errorf("backend %s: %w", b.Name, err))
		return
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		daemon.WriteError(w, http.StatusBadGateway, fmt.Errorf("backend %s: %w", b.Name, err))
		return
	}
	mine := rt.placeSpansOf(id)
	var payload struct {
		Study   string       `json:"study"`
		Trace   string       `json:"trace,omitempty"`
		Count   int          `json:"count"`
		Dropped int          `json:"dropped,omitempty"`
		Spans   []*span.Node `json:"spans"`
	}
	if resp.StatusCode != http.StatusOK || len(mine) == 0 || json.Unmarshal(body, &payload) != nil {
		// Nothing to merge (or nothing mergeable): pass the backend's
		// answer through verbatim.
		if ct := resp.Header.Get("Content-Type"); ct != "" {
			w.Header().Set("Content-Type", ct)
		}
		w.WriteHeader(resp.StatusCode)
		_, _ = w.Write(body)
		return
	}
	spans := append(span.Flatten(payload.Spans), mine...)
	payload.Count = len(spans)
	payload.Spans = span.Tree(spans)
	if payload.Trace == "" {
		payload.Trace = mine[0].Trace
	}
	daemon.WriteJSON(w, http.StatusOK, payload)
}
