// Package shard is the sharded control plane's routing layer: a
// consistent-hash ring with bounded loads for placing studies across
// serve daemons, a Prometheus exposition merger for the fleet-wide
// metrics rollup, and the stateless router daemon that fronts the fleet
// (submission placement, read/SSE proxying, and journal-ownership
// re-homing after a daemon death).
//
// Everything in this package is deterministic by construction: placement
// is a pure function of the key, the backend set, and the current loads —
// no wall clock, no randomness — so a replayed control-plane decision
// lands on the same shard every time (see docs/sharding.md).
package shard

import (
	"fmt"
	"hash/fnv"
	"sort"
)

// defaultReplicas is the virtual-node count per backend. 64 points per
// backend keeps the ring's load spread within a few percent for small
// fleets while staying cheap to rebuild on membership changes.
const defaultReplicas = 64

// loadFactor is the bounded-load headroom: a backend may hold at most
// ceil(loadFactor * (total+1) / n) placements. 1.25 is the classic
// "consistent hashing with bounded loads" choice — enough slack that the
// hash walk almost always stops at the first point, tight enough that one
// hot tenant cannot pin a shard.
const loadFactor = 1.25

// point is one virtual node: a position on the ring owned by a backend.
type point struct {
	hash uint64
	name string
}

// Ring is a consistent-hash ring with bounded loads over a fixed set of
// backend names. It is immutable after construction — membership changes
// build a new ring (cheap), which is what keeps placement a pure
// function.
type Ring struct {
	names  []string
	points []point
}

// hashKey is the ring's hash: 64-bit FNV-1a. Stable across processes and
// platforms, which is what makes placement reproducible.
func hashKey(s string) uint64 {
	h := fnv.New64a()
	_, _ = h.Write([]byte(s)) // hash.Hash.Write never errors
	return h.Sum64()
}

// NewRing builds a ring over the given backend names with the default
// virtual-node count. Names are deduplicated and sorted; an empty set is
// an error surfaced at Place time (Place returns "").
func NewRing(names []string) *Ring {
	return NewRingReplicas(names, defaultReplicas)
}

// NewRingReplicas is NewRing with an explicit virtual-node count
// (tests use small counts to exercise walk collisions).
func NewRingReplicas(names []string, replicas int) *Ring {
	if replicas <= 0 {
		replicas = defaultReplicas
	}
	seen := map[string]bool{}
	var uniq []string
	for _, n := range names {
		if n != "" && !seen[n] {
			seen[n] = true
			uniq = append(uniq, n)
		}
	}
	sort.Strings(uniq)
	r := &Ring{names: uniq, points: make([]point, 0, len(uniq)*replicas)}
	for _, n := range uniq {
		for i := 0; i < replicas; i++ {
			r.points = append(r.points, point{hash: hashKey(fmt.Sprintf("%s#%d", n, i)), name: n})
		}
	}
	sort.Slice(r.points, func(i, j int) bool {
		if r.points[i].hash != r.points[j].hash {
			return r.points[i].hash < r.points[j].hash
		}
		// Hash ties (astronomically rare, but determinism admits no
		// "rare"): break by name so the walk order is total.
		return r.points[i].name < r.points[j].name
	})
	return r
}

// Backends returns the ring's member names, sorted.
func (r *Ring) Backends() []string {
	return append([]string(nil), r.names...)
}

// Owner returns the unbounded consistent-hash owner of key: the backend
// owning the first ring point at or after the key's hash. "" on an empty
// ring.
func (r *Ring) Owner(key string) string {
	if len(r.points) == 0 {
		return ""
	}
	return r.points[r.search(key)].name
}

func (r *Ring) search(key string) int {
	h := hashKey(key)
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	if i == len(r.points) {
		i = 0
	}
	return i
}

// Cap returns the bounded-load ceiling for a ring of this size given the
// total number of existing placements: ceil(loadFactor*(total+1)/n).
// Every backend strictly below the cap can accept the next placement, and
// at least one always is.
func (r *Ring) Cap(total int) int {
	n := len(r.names)
	if n == 0 {
		return 0
	}
	c := loadFactor * float64(total+1) / float64(n)
	cap := int(c)
	if float64(cap) < c {
		cap++
	}
	if cap < 1 {
		cap = 1
	}
	return cap
}

// Place returns the bounded-load placement for key: the hash walk starts
// at the key's ring position and takes the first backend whose current
// load is below the cap, so placements stay consistent (same key, same
// members, same loads → same backend) while no backend exceeds its
// bounded share. load maps backend name → current placement count;
// missing entries count as zero. Returns "" on an empty ring.
func (r *Ring) Place(key string, load map[string]int) string {
	if len(r.points) == 0 {
		return ""
	}
	total := 0
	for _, name := range r.names {
		total += load[name]
	}
	cap := r.Cap(total)
	start := r.search(key)
	tried := make(map[string]bool, len(r.names))
	for i := 0; i < len(r.points) && len(tried) < len(r.names); i++ {
		p := r.points[(start+i)%len(r.points)]
		if tried[p.name] {
			continue
		}
		tried[p.name] = true
		if load[p.name] < cap {
			return p.name
		}
	}
	// Unreachable when load totals match: the cap guarantees a slot. Kept
	// as a safe fallback for inconsistent load maps.
	return r.points[start].name
}
