package shard

import (
	"fmt"
	"testing"
)

func keys(n int) []string {
	out := make([]string, n)
	for i := range out {
		out[i] = fmt.Sprintf("study-%04d", i)
	}
	return out
}

// TestRingDeterminism pins that placement is a pure function: member
// order, rebuilds, and repeat calls never change the answer.
func TestRingDeterminism(t *testing.T) {
	a := NewRing([]string{"alpha", "beta", "gamma"})
	b := NewRing([]string{"gamma", "alpha", "beta", "alpha"}) // dup + shuffled
	for _, k := range keys(200) {
		if a.Owner(k) != b.Owner(k) {
			t.Fatalf("owner of %q differs across equivalent rings: %q vs %q", k, a.Owner(k), b.Owner(k))
		}
		if a.Owner(k) != a.Owner(k) {
			t.Fatalf("owner of %q unstable", k)
		}
		load := map[string]int{"alpha": 1, "beta": 2}
		if a.Place(k, load) != b.Place(k, load) {
			t.Fatalf("placement of %q differs across equivalent rings", k)
		}
	}
	got := a.Backends()
	want := []string{"alpha", "beta", "gamma"}
	if fmt.Sprint(got) != fmt.Sprint(want) {
		t.Fatalf("Backends() = %v, want %v", got, want)
	}
}

// TestRingBoundedLoad places a stream of keys while feeding the loads
// back, and checks no backend ever exceeds the bounded-load cap.
func TestRingBoundedLoad(t *testing.T) {
	r := NewRing([]string{"a", "b", "c"})
	load := map[string]int{}
	total := 0
	for _, k := range keys(300) {
		name := r.Place(k, load)
		if name == "" {
			t.Fatalf("no placement for %q", k)
		}
		if cap := r.Cap(total); load[name] >= cap {
			t.Fatalf("placed %q on %q at load %d, cap %d", k, name, load[name], cap)
		}
		load[name]++
		total++
	}
	for _, n := range r.Backends() {
		if load[n] == 0 {
			t.Errorf("backend %q received nothing across 300 placements", n)
		}
	}
}

// TestRingSpillover pins the bounded-load walk: identical keys hash to
// the same start point, so only the cap can spread them — and it does.
func TestRingSpillover(t *testing.T) {
	r := NewRing([]string{"x", "y"})
	load := map[string]int{}
	seen := map[string]bool{}
	for i := 0; i < 4; i++ {
		name := r.Place("same-key", load)
		load[name]++
		seen[name] = true
	}
	if len(seen) != 2 {
		t.Fatalf("4 identical keys stayed on one backend %v despite the cap", load)
	}
}

// TestRingConsistency pins the consistent-hash property: removing one
// member must not move any key owned by a survivor.
func TestRingConsistency(t *testing.T) {
	full := NewRing([]string{"alpha", "beta", "gamma"})
	reduced := NewRing([]string{"alpha", "gamma"})
	moved := 0
	for _, k := range keys(500) {
		before := full.Owner(k)
		after := reduced.Owner(k)
		if before != "beta" && before != after {
			t.Fatalf("key %q moved %q -> %q though its owner survived", k, before, after)
		}
		if before == "beta" {
			moved++
		}
	}
	if moved == 0 {
		t.Fatal("test vacuous: no key was owned by the removed member")
	}
}

func TestRingEmptyAndSingle(t *testing.T) {
	empty := NewRing(nil)
	if got := empty.Owner("k"); got != "" {
		t.Fatalf("empty ring owner %q", got)
	}
	if got := empty.Place("k", nil); got != "" {
		t.Fatalf("empty ring placement %q", got)
	}
	if got := empty.Cap(10); got != 0 {
		t.Fatalf("empty ring cap %d", got)
	}
	solo := NewRing([]string{"only"})
	for _, k := range keys(20) {
		if solo.Owner(k) != "only" || solo.Place(k, map[string]int{"only": 99}) != "only" {
			t.Fatal("single-member ring must own everything")
		}
	}
}

func TestRingCap(t *testing.T) {
	r := NewRing([]string{"a", "b"})
	cases := []struct{ total, want int }{
		{0, 1}, {1, 2}, {2, 2}, {3, 3}, {7, 5},
	}
	for _, c := range cases {
		if got := r.Cap(c.total); got != c.want {
			t.Errorf("Cap(%d) = %d, want %d", c.total, got, c.want)
		}
	}
}

func TestParseBackends(t *testing.T) {
	got, err := ParseBackends(" alpha=http://a:1 , beta=http://b:2 ")
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || got[0] != (Backend{"alpha", "http://a:1"}) || got[1] != (Backend{"beta", "http://b:2"}) {
		t.Fatalf("parsed %+v", got)
	}
	for _, bad := range []string{"", "alpha", "=http://a", "alpha=", "a=u,a=v"} {
		if _, err := ParseBackends(bad); err == nil {
			t.Errorf("ParseBackends(%q): expected error", bad)
		}
	}
}
