package executor

import "rldecide/internal/obs"

// Process-wide executor instruments (exposed at GET /metrics). All of them
// are atomic updates off the dispatch result path: they observe scheduling
// and transport, never influence it.
var (
	metricDispatches = obs.Default.NewCounter("rldecide_fleet_dispatches_total",
		"Trial dispatch attempts sent to workers.")
	metricDispatchFailures = obs.Default.NewCounter("rldecide_fleet_dispatch_failures_total",
		"Dispatch attempts that failed (transport error, non-200, bad answer).")
	metricRetries = obs.Default.NewCounter("rldecide_fleet_retries_total",
		"Trials requeued onto another worker after a failed attempt.")
	metricSpecCacheMisses = obs.Default.NewCounter("rldecide_fleet_spec_cache_misses_total",
		"Hash-only dispatches answered 428 (worker lost its cached spec).")
	metricDispatchSeconds = obs.Default.NewHistogram("rldecide_fleet_dispatch_seconds",
		"Wall-clock duration of one dispatch attempt (connection + evaluation).",
		obs.DurationBuckets)
	metricWorkerTrials = obs.Default.NewCounter("rldecide_worker_trials_total",
		"Trials evaluated by this process's worker server.")
	metricWorkerTrialErrors = obs.Default.NewCounter("rldecide_worker_trial_errors_total",
		"Worker-side evaluations that returned an infrastructure error.")
	metricLocalTrials = obs.Default.NewCounter("rldecide_local_trials_total",
		"Trials evaluated by this process's local executor.")
)

// RegisterMetrics adds the fleet's live-state gauges to reg: worker count,
// summed capacity/occupancy, and per-worker slots, in-flight trials, and
// heartbeat ages. State is read at scrape time through the same snapshots
// the /workers endpoint uses, so scraping adds no bookkeeping to the
// dispatch path. Call it once per registry (typically the daemon's own).
// A non-empty daemonLabel stamps every series with daemon="<name>" so a
// router merging several daemons' expositions never collides them; ""
// keeps the single-daemon series names unchanged.
func (f *Fleet) RegisterMetrics(reg *obs.Registry, daemonLabel string) {
	stamp := func(collect func() []obs.Sample) func() []obs.Sample {
		if daemonLabel == "" {
			return collect
		}
		label := [2]string{"daemon", daemonLabel}
		return func() []obs.Sample {
			samples := collect()
			for i := range samples {
				samples[i].Labels = append([][2]string{label}, samples[i].Labels...)
			}
			return samples
		}
	}
	reg.NewGaugeFunc("rldecide_fleet_workers",
		"Live (non-expired) workers in the fleet.", stamp(func() []obs.Sample {
			return []obs.Sample{{Value: float64(f.Stats().Workers)}}
		}))
	reg.NewGaugeFunc("rldecide_fleet_slots",
		"Summed trial slots of live workers.", stamp(func() []obs.Sample {
			return []obs.Sample{{Value: float64(f.Stats().Cap)}}
		}))
	reg.NewGaugeFunc("rldecide_fleet_in_flight",
		"Trials currently dispatched across the fleet.", stamp(func() []obs.Sample {
			return []obs.Sample{{Value: float64(f.Stats().InUse)}}
		}))
	reg.NewGaugeFunc("rldecide_fleet_worker_beat_age_seconds",
		"Seconds since each worker's last heartbeat.", stamp(f.workerSamples(func(w WorkerStatus) float64 {
			return w.BeatAgeSec
		})))
	reg.NewGaugeFunc("rldecide_fleet_worker_in_flight",
		"Trials currently dispatched to each worker.", stamp(f.workerSamples(func(w WorkerStatus) float64 {
			return float64(w.InFlight)
		})))
	reg.NewGaugeFunc("rldecide_fleet_worker_slots",
		"Each worker's registered slot capacity.", stamp(f.workerSamples(func(w WorkerStatus) float64 {
			return float64(w.Slots)
		})))
}

// workerSamples adapts a per-worker field into a labeled collect func.
// Workers() returns name-sorted statuses, so sample order is stable.
func (f *Fleet) workerSamples(field func(WorkerStatus) float64) func() []obs.Sample {
	return func() []obs.Sample {
		workers := f.Workers()
		out := make([]obs.Sample, len(workers))
		for i, w := range workers {
			out[i] = obs.Sample{Labels: [][2]string{{"worker", w.Name}}, Value: field(w)}
		}
		return out
	}
}
