package executor

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"rldecide/internal/power"
)

func testLogf(t *testing.T) func(string, ...any) {
	return func(format string, args ...any) { t.Logf(format, args...) }
}

// echoEval answers with a value derived only from the request — the pure
// function the determinism contract demands.
func echoEval(ctx context.Context, req TrialRequest) (TrialResult, error) {
	return TrialResult{
		StudyID: req.StudyID,
		TrialID: req.TrialID,
		Values:  map[string]float64{"f": float64(req.Seed)},
	}, nil
}

func req(id int) TrialRequest {
	return TrialRequest{StudyID: "s0001", TrialID: id, Seed: uint64(id) * 10, Spec: json.RawMessage(`{}`)}
}

func TestLocalBoundsConcurrency(t *testing.T) {
	var mu sync.Mutex
	cur, peak := 0, 0
	slow := func(ctx context.Context, r TrialRequest) (TrialResult, error) {
		mu.Lock()
		cur++
		if cur > peak {
			peak = cur
		}
		mu.Unlock()
		time.Sleep(3 * time.Millisecond)
		mu.Lock()
		cur--
		mu.Unlock()
		return echoEval(ctx, r)
	}
	l := NewLocal(2, slow)
	var wg sync.WaitGroup
	for i := 1; i <= 8; i++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			res, err := l.Run(context.Background(), req(id))
			if err != nil {
				t.Errorf("trial %d: %v", id, err)
				return
			}
			if res.Worker != LocalWorkerName {
				t.Errorf("trial %d attributed to %q", id, res.Worker)
			}
		}(i)
	}
	wg.Wait()
	mu.Lock()
	defer mu.Unlock()
	if peak > 2 {
		t.Fatalf("local executor leaked concurrency: peak %d > 2 slots", peak)
	}
	if s := l.Stats(); s.Cap != 2 || s.InUse != 0 || s.Workers != 1 {
		t.Fatalf("stats: %+v", s)
	}
}

func TestLocalCancelWhileQueued(t *testing.T) {
	release := make(chan struct{})
	blocking := func(ctx context.Context, r TrialRequest) (TrialResult, error) {
		select {
		case <-release:
			return echoEval(ctx, r)
		case <-ctx.Done():
			return TrialResult{}, ctx.Err()
		}
	}
	l := NewLocal(1, blocking)
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		_, _ = l.Run(ctx, req(1)) // occupies the only slot
	}()
	for l.Stats().InUse == 0 {
		time.Sleep(time.Millisecond)
	}
	errc := make(chan error, 1)
	go func() {
		_, err := l.Run(ctx, req(2)) // queued behind trial 1
		errc <- err
	}()
	cancel()
	if err := <-errc; err != context.Canceled {
		t.Fatalf("queued trial returned %v, want context.Canceled", err)
	}
	close(release)
}

// startWorker spins an in-process worker daemon and returns it with its
// registration info.
func startWorker(t *testing.T, name string, slots int, eval EvalFunc, token string) (*httptest.Server, WorkerInfo) {
	t.Helper()
	ws := &Server{Name: name, Eval: eval, Token: token, Logf: testLogf(t)}
	ts := httptest.NewServer(ws.Handler())
	t.Cleanup(ts.Close)
	return ts, WorkerInfo{Name: name, URL: ts.URL, Slots: slots}
}

func TestFleetDispatchesAndAttributes(t *testing.T) {
	f := NewFleet(FleetOptions{Logf: testLogf(t)})
	_, w1 := startWorker(t, "w1", 2, echoEval, "")
	_, w2 := startWorker(t, "w2", 2, echoEval, "")
	for _, w := range []WorkerInfo{w1, w2} {
		if fresh, err := f.Upsert(w); err != nil || !fresh {
			t.Fatalf("upsert %s: fresh=%v err=%v", w.Name, fresh, err)
		}
	}
	if s := f.Stats(); s.Cap != 4 || s.Workers != 2 {
		t.Fatalf("stats: %+v", s)
	}
	byWorker := map[string]int{}
	for i := 1; i <= 12; i++ {
		res, err := f.Run(context.Background(), req(i))
		if err != nil {
			t.Fatalf("trial %d: %v", i, err)
		}
		if res.Values["f"] != float64(i)*10 {
			t.Fatalf("trial %d value %v", i, res.Values["f"])
		}
		byWorker[res.Worker]++
	}
	if byWorker["w1"]+byWorker["w2"] != 12 {
		t.Fatalf("attribution: %v", byWorker)
	}
	ws := f.Workers()
	if len(ws) != 2 || ws[0].Name != "w1" || ws[1].Name != "w2" {
		t.Fatalf("workers: %+v", ws)
	}
	if ws[0].Completed+ws[1].Completed != 12 {
		t.Fatalf("completion counters: %+v", ws)
	}
}

func TestFleetBlocksUntilWorkerRegisters(t *testing.T) {
	f := NewFleet(FleetOptions{Logf: testLogf(t)})
	done := make(chan TrialResult, 1)
	go func() {
		res, err := f.Run(context.Background(), req(1))
		if err != nil {
			t.Errorf("run: %v", err)
		}
		done <- res
	}()
	select {
	case <-done:
		t.Fatal("trial ran with no workers registered")
	case <-time.After(20 * time.Millisecond):
	}
	_, w := startWorker(t, "late", 1, echoEval, "")
	if _, err := f.Upsert(w); err != nil {
		t.Fatal(err)
	}
	select {
	case res := <-done:
		if res.Worker != "late" {
			t.Fatalf("attribution: %+v", res)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("trial never dispatched after registration")
	}
}

// TestFleetFailoverOnWorkerDeath kills a worker's connections mid-trial
// (the kill -9 signature) and requires the trial to be requeued onto the
// surviving worker with an identical result.
func TestFleetFailoverOnWorkerDeath(t *testing.T) {
	var dead atomic.Bool
	var doomedCalls atomic.Int32
	doomedSrv, doomed := startWorker(t, "doomed", 1, func(ctx context.Context, r TrialRequest) (TrialResult, error) {
		doomedCalls.Add(1)
		if dead.Load() {
			<-ctx.Done() // a killed process answers nothing
			return TrialResult{}, ctx.Err()
		}
		return echoEval(ctx, r)
	}, "")
	_, survivor := startWorker(t, "survivor", 1, echoEval, "")

	f := NewFleet(FleetOptions{
		AttemptTimeout: 200 * time.Millisecond,
		Backoff:        5 * time.Millisecond,
		Logf:           testLogf(t),
	})
	if _, err := f.Upsert(doomed); err != nil {
		t.Fatal(err)
	}
	res, err := f.Run(context.Background(), req(1))
	if err != nil || res.Worker != "doomed" {
		t.Fatalf("warmup trial: %+v %v", res, err)
	}

	// Kill: the worker stops answering and its connections die.
	dead.Store(true)
	doomedSrv.CloseClientConnections()
	if _, err := f.Upsert(survivor); err != nil {
		t.Fatal(err)
	}

	res, err = f.Run(context.Background(), req(2))
	if err != nil {
		t.Fatalf("failover trial: %v", err)
	}
	if res.Worker != "survivor" || res.Values["f"] != 20 {
		t.Fatalf("failover result: %+v", res)
	}
	// The dead worker is out of the fleet until it heartbeats again.
	for _, w := range f.Workers() {
		if w.Name == "doomed" {
			t.Fatalf("dead worker still in fleet: %+v", w)
		}
	}
	// A heartbeat re-admits it.
	dead.Store(false)
	if fresh, err := f.Upsert(doomed); err != nil || !fresh {
		t.Fatalf("re-admission: fresh=%v err=%v", fresh, err)
	}
	if s := f.Stats(); s.Workers != 2 {
		t.Fatalf("stats after re-admission: %+v", s)
	}
}

func TestFleetGivesUpAfterMaxAttempts(t *testing.T) {
	_, w := startWorker(t, "broken", 1, func(ctx context.Context, r TrialRequest) (TrialResult, error) {
		return TrialResult{}, fmt.Errorf("disk on fire")
	}, "")
	f := NewFleet(FleetOptions{MaxAttempts: 2, Backoff: time.Millisecond, Logf: testLogf(t)})
	attempts := 0
	go func() {
		// Re-admit the broken worker after each drop so Run can retry it.
		for i := 0; i < 3; i++ {
			_, _ = f.Upsert(w)
			time.Sleep(10 * time.Millisecond)
		}
	}()
	if _, err := f.Upsert(w); err != nil {
		t.Fatal(err)
	}
	_, err := f.Run(context.Background(), req(1))
	if err == nil || !strings.Contains(err.Error(), "giving up") {
		t.Fatalf("want bounded-retry failure, got %v (attempts %d)", err, attempts)
	}
}

func TestFleetHeartbeatExpiry(t *testing.T) {
	now := time.Unix(0, 0)
	var mu sync.Mutex
	clock := power.StartStopwatchAt(func() time.Time {
		mu.Lock()
		defer mu.Unlock()
		return now
	})
	f := NewFleet(FleetOptions{HeartbeatTTL: 10 * time.Second, Clock: clock, Logf: testLogf(t)})
	_, w := startWorker(t, "mortal", 1, echoEval, "")
	if _, err := f.Upsert(w); err != nil {
		t.Fatal(err)
	}
	if s := f.Stats(); s.Workers != 1 {
		t.Fatalf("stats: %+v", s)
	}
	mu.Lock()
	now = now.Add(11 * time.Second)
	mu.Unlock()
	if s := f.Stats(); s.Workers != 0 || s.Cap != 0 {
		t.Fatalf("expired worker still counted: %+v", s)
	}
	// A fresh heartbeat revives it.
	if fresh, err := f.Upsert(w); err != nil || !fresh {
		t.Fatalf("revival: fresh=%v err=%v", fresh, err)
	}
	if s := f.Stats(); s.Workers != 1 {
		t.Fatalf("stats after revival: %+v", s)
	}
}

func TestWorkerServerAuthAndErrors(t *testing.T) {
	_, w := startWorker(t, "guarded", 1, echoEval, "sesame")

	// Wrong token -> 401, and the fleet surfaces it as a dispatch error.
	f := NewFleet(FleetOptions{MaxAttempts: 1, Token: "wrong", Logf: testLogf(t)})
	if _, err := f.Upsert(w); err != nil {
		t.Fatal(err)
	}
	if _, err := f.Run(context.Background(), req(1)); err == nil || !strings.Contains(err.Error(), "401") {
		t.Fatalf("want 401 dispatch failure, got %v", err)
	}

	// Right token -> result.
	f2 := NewFleet(FleetOptions{Token: "sesame", Logf: testLogf(t)})
	if _, err := f2.Upsert(w); err != nil {
		t.Fatal(err)
	}
	res, err := f2.Run(context.Background(), req(1))
	if err != nil || res.Worker != "guarded" {
		t.Fatalf("authed dispatch: %+v %v", res, err)
	}

	// Malformed body -> 400.
	resp, err := http.Post(w.URL+"/run", "application/json", strings.NewReader("{nope"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusUnauthorized {
		t.Fatalf("unauthenticated malformed post: %d", resp.StatusCode)
	}
}

// postJSON posts v to url and returns the status code and decoded body.
func postJSON(t *testing.T, url string, v any) (int, map[string]any) {
	t.Helper()
	body, err := json.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out map[string]any
	_ = json.NewDecoder(resp.Body).Decode(&out)
	return resp.StatusCode, out
}

func TestWorkerSpecCache(t *testing.T) {
	spec := json.RawMessage(`{"objective":"paper"}`)
	hash := SpecHashOf(spec)
	_, w := startWorker(t, "cachy", 1, echoEval, "")

	// Hash-only before the spec was ever sent: 428, resend required.
	status, _ := postJSON(t, w.URL+"/run", TrialRequest{StudyID: "s1", TrialID: 1, SpecHash: hash, Seed: 10})
	if status != http.StatusPreconditionRequired {
		t.Fatalf("cold-cache hash-only dispatch: status %d, want 428", status)
	}

	// Full spec + hash: evaluated and cached.
	status, body := postJSON(t, w.URL+"/run", TrialRequest{StudyID: "s1", TrialID: 1, Spec: spec, SpecHash: hash, Seed: 10})
	if status != http.StatusOK || body["values"].(map[string]any)["f"] != 10.0 {
		t.Fatalf("full dispatch: status %d body %v", status, body)
	}

	// Hash-only now serves from the cache, identical result.
	status, body = postJSON(t, w.URL+"/run", TrialRequest{StudyID: "s1", TrialID: 2, SpecHash: hash, Seed: 20})
	if status != http.StatusOK || body["values"].(map[string]any)["f"] != 20.0 {
		t.Fatalf("cached dispatch: status %d body %v", status, body)
	}
}

func TestFleetSpecCacheAndWorkerRestart(t *testing.T) {
	spec := json.RawMessage(`{"objective":"paper"}`)
	hash := SpecHashOf(spec)

	// The eval asserts it always sees the full spec — cache resolution is
	// invisible to the evaluation, which is the determinism contract.
	newServer := func() *Server {
		return &Server{Name: "cachy", Eval: func(ctx context.Context, r TrialRequest) (TrialResult, error) {
			if string(r.Spec) != string(spec) {
				return TrialResult{}, fmt.Errorf("eval saw spec %q", r.Spec)
			}
			return echoEval(ctx, r)
		}, Logf: testLogf(t)}
	}
	var cur atomic.Pointer[Server]
	cur.Store(newServer())

	// Record, per wire request, whether the body carried the spec.
	var mu sync.Mutex
	var sawSpec []bool
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		body, _ := io.ReadAll(r.Body)
		var m map[string]any
		_ = json.Unmarshal(body, &m)
		mu.Lock()
		_, has := m["spec"]
		sawSpec = append(sawSpec, has)
		mu.Unlock()
		r2 := r.Clone(r.Context())
		r2.Body = io.NopCloser(bytes.NewReader(body))
		cur.Load().Handler().ServeHTTP(w, r2)
	}))
	t.Cleanup(ts.Close)

	f := NewFleet(FleetOptions{Logf: testLogf(t)})
	if _, err := f.Upsert(WorkerInfo{Name: "cachy", URL: ts.URL, Slots: 1}); err != nil {
		t.Fatal(err)
	}
	run := func(id int) {
		t.Helper()
		res, err := f.Run(context.Background(), TrialRequest{
			StudyID: "s1", TrialID: id, Seed: uint64(id) * 10, Spec: spec, SpecHash: hash,
		})
		if err != nil || res.Values["f"] != float64(id)*10 {
			t.Fatalf("trial %d: %+v %v", id, res, err)
		}
	}

	run(1) // first dispatch ships the full spec
	run(2) // repeat dispatch goes hash-only
	mu.Lock()
	if len(sawSpec) != 2 || !sawSpec[0] || sawSpec[1] {
		t.Fatalf("wire pattern before restart: %v, want [full, hash-only]", sawSpec)
	}
	mu.Unlock()

	// Worker restarts mid-campaign with an empty cache: the hash-only
	// dispatch misses (428), the fleet resends in full, the trial succeeds
	// and the worker is neither dropped nor charged a failure.
	cur.Store(newServer())
	run(3)
	mu.Lock()
	if len(sawSpec) != 4 || sawSpec[2] || !sawSpec[3] {
		t.Fatalf("wire pattern after restart: %v, want [..., hash-only, full]", sawSpec)
	}
	mu.Unlock()
	ws := f.Workers()
	if len(ws) != 1 || ws[0].Completed != 3 || ws[0].Failed != 0 {
		t.Fatalf("restart fallback penalized the worker: %+v", ws)
	}
}

func TestWorkerInfoValidate(t *testing.T) {
	cases := []WorkerInfo{
		{},
		{Name: "w"},
		{Name: "w", URL: "ftp://nope"},
	}
	for _, c := range cases {
		if err := c.Validate(); err == nil {
			t.Errorf("%+v validated", c)
		}
	}
	if err := (WorkerInfo{Name: "w", URL: "http://h:1"}).Validate(); err != nil {
		t.Errorf("good info rejected: %v", err)
	}
}

func TestRegistrarLifecycle(t *testing.T) {
	var mu sync.Mutex
	events := []string{}
	record := func(kind string) http.HandlerFunc {
		return func(w http.ResponseWriter, r *http.Request) {
			if !CheckBearer(r, "tok") {
				w.WriteHeader(http.StatusUnauthorized)
				return
			}
			var info WorkerInfo
			if err := json.NewDecoder(r.Body).Decode(&info); err != nil || info.Name != "reg" {
				w.WriteHeader(http.StatusBadRequest)
				return
			}
			mu.Lock()
			events = append(events, kind)
			mu.Unlock()
			w.WriteHeader(http.StatusOK)
		}
	}
	mux := http.NewServeMux()
	mux.HandleFunc("POST /workers/register", record("register"))
	mux.HandleFunc("POST /workers/heartbeat", record("heartbeat"))
	mux.HandleFunc("POST /workers/deregister", record("deregister"))
	daemon := httptest.NewServer(mux)
	defer daemon.Close()

	reg := &Registrar{
		Daemon:   daemon.URL,
		Info:     WorkerInfo{Name: "reg", URL: "http://127.0.0.1:1", Slots: 1},
		Token:    "tok",
		Interval: 5 * time.Millisecond,
		Logf:     testLogf(t),
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- reg.Run(ctx) }()

	deadline := time.Now().Add(5 * time.Second)
	for {
		mu.Lock()
		beats := 0
		for _, e := range events {
			if e == "heartbeat" {
				beats++
			}
		}
		mu.Unlock()
		if beats >= 2 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("no heartbeats observed")
		}
		time.Sleep(time.Millisecond)
	}
	cancel()
	if err := <-done; err != nil {
		t.Fatalf("clean stop returned %v", err)
	}
	mu.Lock()
	defer mu.Unlock()
	if events[0] != "register" {
		t.Fatalf("first event %q, want register", events[0])
	}
	if events[len(events)-1] != "deregister" {
		t.Fatalf("last event %q, want deregister", events[len(events)-1])
	}
}
