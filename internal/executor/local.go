package executor

import (
	"context"
	"fmt"
)

// LocalWorkerName is the attribution recorded for in-process evaluations.
const LocalWorkerName = "local"

// Local evaluates trials in-process on a bounded slot pool. It is the
// daemon's default executor and the restatement of the old shared worker
// pool: a trial leases a slot (waiting when all are busy, giving up when
// its run context is cancelled so queued trials drain instantly on
// shutdown), evaluates, and releases the slot the moment it finishes —
// work-conserving across every active study.
type Local struct {
	eval  EvalFunc
	slots chan struct{}
}

// NewLocal returns a local executor with n concurrent slots (n < 1 is
// treated as 1) evaluating trials with eval.
func NewLocal(n int, eval EvalFunc) *Local {
	if n < 1 {
		n = 1
	}
	if eval == nil {
		panic("executor: NewLocal needs an EvalFunc")
	}
	return &Local{eval: eval, slots: make(chan struct{}, n)}
}

// Run implements Executor: lease a slot, evaluate, release.
func (l *Local) Run(ctx context.Context, req TrialRequest) (TrialResult, error) {
	select {
	case l.slots <- struct{}{}:
	case <-ctx.Done():
		return TrialResult{}, ctx.Err()
	}
	defer func() { <-l.slots }()
	res, err := l.eval(ctx, req)
	metricLocalTrials.Inc()
	if err != nil {
		return TrialResult{}, err
	}
	if res.Worker == "" {
		res.Worker = LocalWorkerName
	}
	if res.TrialID != req.TrialID || res.StudyID != req.StudyID {
		return TrialResult{}, fmt.Errorf("executor: local result for trial %s/%d answers %s/%d",
			req.StudyID, req.TrialID, res.StudyID, res.TrialID)
	}
	return res, nil
}

// Stats implements Executor.
func (l *Local) Stats() Stats {
	return Stats{Cap: cap(l.slots), InUse: len(l.slots), Workers: 1}
}
