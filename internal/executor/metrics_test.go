package executor

import (
	"strings"
	"sync"
	"testing"
	"time"

	"rldecide/internal/obs"
	"rldecide/internal/power"
)

// exposition renders reg's text exposition.
func exposition(t *testing.T, reg *obs.Registry) string {
	t.Helper()
	var sb strings.Builder
	if err := reg.WriteText(&sb); err != nil {
		t.Fatal(err)
	}
	return sb.String()
}

// TestWorkerSeriesUnregisteredOnRemove proves the per-worker gauge series
// (beat age, in-flight, slots) disappear from the exposition the moment a
// worker deregisters — collect funcs read live fleet state at scrape time,
// so there is nothing to leak for departed workers.
func TestWorkerSeriesUnregisteredOnRemove(t *testing.T) {
	f := NewFleet(FleetOptions{Logf: testLogf(t)})
	reg := obs.NewRegistry()
	f.RegisterMetrics(reg, "")
	for _, name := range []string{"keep", "gone"} {
		if _, err := f.Upsert(WorkerInfo{Name: name, URL: "http://127.0.0.1:0", Slots: 2}); err != nil {
			t.Fatal(err)
		}
	}
	text := exposition(t, reg)
	for _, series := range []string{
		`rldecide_fleet_worker_beat_age_seconds{worker="gone"}`,
		`rldecide_fleet_worker_in_flight{worker="gone"}`,
		`rldecide_fleet_worker_slots{worker="gone"} 2`,
		`rldecide_fleet_worker_slots{worker="keep"} 2`,
	} {
		if !strings.Contains(text, series) {
			t.Fatalf("missing series %q in exposition:\n%s", series, text)
		}
	}

	if !f.Remove("gone") {
		t.Fatal("Remove(gone) found nothing")
	}
	text = exposition(t, reg)
	if strings.Contains(text, `worker="gone"`) {
		t.Fatalf("deregistered worker still exposed:\n%s", text)
	}
	if !strings.Contains(text, `rldecide_fleet_worker_slots{worker="keep"} 2`) {
		t.Fatalf("surviving worker's series lost:\n%s", text)
	}
}

// TestWorkerSeriesUnregisteredOnExpiry proves the same for heartbeat-lease
// expiry: once a worker's TTL lapses, its gauge series stop being emitted
// on the next scrape, with no deregister call required.
func TestWorkerSeriesUnregisteredOnExpiry(t *testing.T) {
	now := time.Unix(0, 0)
	var mu sync.Mutex
	clock := power.StartStopwatchAt(func() time.Time {
		mu.Lock()
		defer mu.Unlock()
		return now
	})
	f := NewFleet(FleetOptions{HeartbeatTTL: 10 * time.Second, Clock: clock, Logf: testLogf(t)})
	reg := obs.NewRegistry()
	f.RegisterMetrics(reg, "shard-a")
	if _, err := f.Upsert(WorkerInfo{Name: "mortal", URL: "http://127.0.0.1:0", Slots: 3}); err != nil {
		t.Fatal(err)
	}
	text := exposition(t, reg)
	if !strings.Contains(text, `rldecide_fleet_worker_slots{daemon="shard-a",worker="mortal"} 3`) {
		t.Fatalf("live worker not exposed with daemon stamp:\n%s", text)
	}

	mu.Lock()
	now = now.Add(11 * time.Second)
	mu.Unlock()
	text = exposition(t, reg)
	if strings.Contains(text, `worker="mortal"`) {
		t.Fatalf("expired worker still exposed:\n%s", text)
	}
	if !strings.Contains(text, `rldecide_fleet_workers{daemon="shard-a"} 0`) {
		t.Fatalf("fleet gauge did not drop to zero:\n%s", text)
	}

	// A fresh heartbeat brings the series back.
	if _, err := f.Upsert(WorkerInfo{Name: "mortal", URL: "http://127.0.0.1:0", Slots: 3}); err != nil {
		t.Fatal(err)
	}
	if text := exposition(t, reg); !strings.Contains(text, `worker="mortal"`) {
		t.Fatalf("revived worker not exposed:\n%s", text)
	}
}
