// Package executor runs study trials on behalf of the studyd daemon. It
// is the seam the paper's distributed deployments plug into: the daemon
// derives trial parameters and seeds from the explorer exactly as before,
// then hands each trial to an Executor instead of calling the objective
// inline. Two implementations ship:
//
//   - Local evaluates trials in-process on a bounded slot pool (the
//     default — today's behavior, restated as an executor lease).
//   - Fleet dispatches trials over HTTP to registered worker daemons
//     (cmd/rldecide-worker), tracks the workers via heartbeats, applies a
//     per-attempt timeout, and retries a failed dispatch on another
//     worker with exponential backoff — so killing a worker mid-trial
//     requeues the trial instead of losing it.
//
// The determinism contract: a TrialRequest fully determines its
// TrialResult. Workers are pure functions of (spec, params, seed), so a
// trial retried on a different worker — or replayed after a crash —
// produces the same values, and a campaign's journal is byte-identical
// (modulo worker attribution) whether it ran locally or across N workers.
package executor

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"

	"rldecide/internal/obs/span"
)

// TrialRequest is one trial dispatch: everything a worker needs to
// evaluate the trial with no state of its own.
type TrialRequest struct {
	StudyID string `json:"study_id"`
	TrialID int    `json:"trial_id"`
	// Spec is the submitting study's spec, verbatim as persisted by the
	// daemon; the worker rebuilds the objective from it against its own
	// objective registry. When SpecHash is set, the dispatcher may omit
	// Spec on repeat sends to a worker that has already seen the hash;
	// a worker missing the cached spec answers 428 and the dispatcher
	// resends in full.
	Spec json.RawMessage `json:"spec,omitempty"`
	// SpecHash is the content hash of Spec (see SpecHashOf), keying the
	// worker-side spec cache. Empty disables caching for this dispatch.
	SpecHash string `json:"spec_hash,omitempty"`
	// Params is the explorer's assignment in its canonical journal
	// rendering (parameter name -> value string).
	Params map[string]string `json:"params"`
	// Seed is the trial's derived seed; together with Params it makes the
	// evaluation reproducible on any node.
	Seed uint64 `json:"seed"`
}

// TrialResult is the worker's answer.
type TrialResult struct {
	StudyID string             `json:"study_id"`
	TrialID int                `json:"trial_id"`
	Values  map[string]float64 `json:"values,omitempty"`
	// Error reports a deterministic objective failure — the trial ran and
	// failed the same way it would anywhere, so the daemon journals it
	// like a local failure. Transport/infrastructure failures surface as
	// Go errors from Executor.Run instead and are retried, never journaled.
	Error string `json:"error,omitempty"`
	// Worker names the node that evaluated the trial (attribution only).
	Worker string `json:"worker,omitempty"`
	// WallMs is the trial's measured wall-clock compute time in
	// milliseconds on the evaluating node (via power.Stopwatch).
	// Informational only: it rides back to the journal's wall_ms field
	// and never feeds replay or ranking.
	WallMs float64 `json:"wall_ms,omitempty"`
	// Spans are the causal spans the worker recorded while evaluating
	// (internal/obs/span), returned so the dispatching daemon holds the
	// complete per-trial span tree. Present only when the dispatch carried
	// trace headers; informational only — never journaled, never ranked.
	Spans []span.Span `json:"spans,omitempty"`
}

// SpecHashOf returns the content hash (hex SHA-256) of raw spec bytes,
// suitable for TrialRequest.SpecHash. Campaigns compute it once per study:
// every trial of a study ships the same spec, which is exactly what makes
// the worker-side cache worthwhile.
func SpecHashOf(spec []byte) string {
	sum := sha256.Sum256(spec)
	return hex.EncodeToString(sum[:])
}

// EvalFunc evaluates one trial request. studyd.EvaluateRequest is the
// canonical implementation; Local and the worker daemon share it, which is
// what makes local and fleet campaigns bit-for-bit comparable.
type EvalFunc func(ctx context.Context, req TrialRequest) (TrialResult, error)

// Stats reports an executor's capacity and occupancy.
type Stats struct {
	// Cap is the maximum number of concurrently executing trials (for a
	// fleet: the summed slots of live workers).
	Cap int `json:"cap"`
	// InUse is the number of trials executing right now.
	InUse int `json:"in_use"`
	// Workers is the number of live workers backing the capacity (1 for
	// the local executor).
	Workers int `json:"workers"`
}

// Executor runs trials. Run blocks until the trial has been evaluated
// (waiting for capacity if none is free), ctx is cancelled, or the
// executor gives up; a nil error means the result is authoritative.
type Executor interface {
	Run(ctx context.Context, req TrialRequest) (TrialResult, error)
	Stats() Stats
}
