package executor

import (
	"bytes"
	"context"
	"crypto/subtle"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"rldecide/internal/daemon"
	"rldecide/internal/obs"
	"rldecide/internal/obs/span"
	"rldecide/internal/power"
)

// Server is the worker daemon's HTTP surface: it receives trial dispatches
// from a Fleet, evaluates them with Eval, and answers with the result.
// Workers hold no campaign state — every request is self-contained — so a
// worker can crash, restart and re-register at any time without the
// daemon's journal noticing.
type Server struct {
	// Name is the worker's registered name, stamped into every result for
	// journal attribution.
	Name string
	// Eval evaluates one trial (typically studyd.EvaluateRequest).
	Eval EvalFunc
	// Token, when set, is required as a bearer token on /run.
	Token string
	// Logf receives operational log lines (default: discard).
	Logf func(format string, args ...any)

	inFlight atomic.Int64

	// Span stopwatch, started lazily on the first traced dispatch. Workers
	// record spans only when the dispatch carries trace headers; there is
	// no worker-side flag.
	clockOnce sync.Once
	clock     *power.Stopwatch

	// Spec cache: study specs are identical across a study's trials, so
	// the dispatcher sends the full spec once and hash-only afterwards.
	// The cache is bounded (FIFO eviction) and purely an optimization —
	// a miss answers 428 and the dispatcher resends in full, which is
	// also how a restarted (empty-cache) worker recovers mid-campaign.
	specMu sync.Mutex
	// guarded-by: specMu
	specs map[string]json.RawMessage
	// guarded-by: specMu
	specOrder []string
}

// maxCachedSpecs bounds the worker's spec cache. Specs are small (a few
// KB) and campaigns rarely interleave many studies per worker.
const maxCachedSpecs = 64

// cacheSpec stores the spec under hash, evicting the oldest entry when
// full. The bytes are copied: the request buffer is reused by net/http.
func (s *Server) cacheSpec(hash string, spec json.RawMessage) {
	s.specMu.Lock()
	defer s.specMu.Unlock()
	if s.specs == nil {
		s.specs = make(map[string]json.RawMessage, maxCachedSpecs)
	}
	if _, ok := s.specs[hash]; ok {
		return
	}
	for len(s.specs) >= maxCachedSpecs {
		oldest := s.specOrder[0]
		s.specOrder = s.specOrder[1:]
		delete(s.specs, oldest)
	}
	s.specs[hash] = append(json.RawMessage(nil), spec...)
	s.specOrder = append(s.specOrder, hash)
}

// cachedSpec looks up a spec by hash.
func (s *Server) cachedSpec(hash string) (json.RawMessage, bool) {
	s.specMu.Lock()
	defer s.specMu.Unlock()
	spec, ok := s.specs[hash]
	return spec, ok
}

// Handler returns the worker API:
//
//	GET  /healthz  liveness + in-flight trial count
//	GET  /metrics  Prometheus text-format exposition
//	POST /run      evaluate one TrialRequest -> TrialResult
func (s *Server) Handler() http.Handler {
	reg := obs.NewRegistry()
	reg.NewGaugeFunc("rldecide_worker_in_flight",
		"Trials this worker is evaluating right now.", func() []obs.Sample {
			return []obs.Sample{{Labels: [][2]string{{"worker", s.Name}}, Value: float64(s.inFlight.Load())}}
		})
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	mux.Handle("GET /metrics", obs.Handler(obs.Default, reg))
	mux.HandleFunc("POST /run", daemon.NewAuth(s.Token, nil).Require(s.handleRun))
	return mux
}

func (s *Server) logf(format string, args ...any) {
	if s.Logf != nil {
		s.Logf(format, args...)
	}
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{
		"ok":        true,
		"worker":    s.Name,
		"in_flight": s.inFlight.Load(),
	})
}

func (s *Server) handleRun(w http.ResponseWriter, r *http.Request) {
	var req TrialRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeJSON(w, http.StatusBadRequest, map[string]any{"error": err.Error()})
		return
	}
	if req.SpecHash != "" {
		if len(req.Spec) > 0 {
			s.cacheSpec(req.SpecHash, req.Spec)
		} else {
			spec, ok := s.cachedSpec(req.SpecHash)
			if !ok {
				// Cache miss (bounded cache evicted it, or this worker
				// restarted): ask the dispatcher to resend the full spec.
				writeJSON(w, http.StatusPreconditionRequired,
					map[string]any{"error": "spec " + req.SpecHash + " not cached; resend with full spec"})
				return
			}
			req.Spec = spec
		}
	}
	s.inFlight.Add(1)
	defer s.inFlight.Add(-1)
	// A traced dispatch (span headers present) gets a "run" span covering
	// this worker's handling, with the objective span recorded under it by
	// the evaluator via the context scope. The collected spans ride back in
	// the result so the dispatching daemon holds the complete tree.
	evalCtx := r.Context()
	trace, parentHdr := span.Extract(r.Header)
	var col *span.Collector
	var runSpan *span.Active
	if trace != "" {
		col = span.NewCollector(0)
		base := span.Scope{
			Trace:  trace,
			Parent: parentHdr,
			Study:  req.StudyID,
			Trial:  req.TrialID,
			Worker: s.Name,
			Clock:  s.stopwatch(),
			Sink:   col.Record,
		}
		runSpan = (&base).Start(span.NameRun, 0)
		child := base
		child.Parent = span.DeriveID(trace, parentHdr, span.NameRun, req.TrialID, 0)
		evalCtx = span.NewContext(evalCtx, &child)
	}
	res, err := s.Eval(evalCtx, req)
	metricWorkerTrials.Inc()
	if err != nil {
		metricWorkerTrialErrors.Inc()
		// Infrastructure failure (bad spec bytes, cancellation): the
		// dispatcher retries; nothing is journaled.
		status := http.StatusInternalServerError
		if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
			status = http.StatusServiceUnavailable
		}
		s.logf("worker %s: trial %s/%d failed: %v", s.Name, req.StudyID, req.TrialID, err)
		writeJSON(w, status, map[string]any{"error": err.Error()})
		return
	}
	status := "ok"
	if res.Error != "" {
		status = "failed"
	}
	runSpan.Finish(status, res.Error)
	res.Spans = col.Spans()
	res.Worker = s.Name
	writeJSON(w, http.StatusOK, res)
}

// stopwatch returns the worker's span clock, starting it on first use.
func (s *Server) stopwatch() *power.Stopwatch {
	s.clockOnce.Do(func() { s.clock = power.StartStopwatch() })
	return s.clock
}

// CheckBearer reports whether r carries the bearer token (in constant
// time). An empty want disables the check.
func CheckBearer(r *http.Request, want string) bool {
	if want == "" {
		return true
	}
	got, ok := strings.CutPrefix(r.Header.Get("Authorization"), "Bearer ")
	return ok && subtle.ConstantTimeCompare([]byte(got), []byte(want)) == 1
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	_ = enc.Encode(v)
}

// Registrar announces a worker to the study daemon and keeps the
// registration alive with heartbeats. The heartbeat body is the full
// WorkerInfo, so a daemon that restarted — or dropped the worker after a
// failed dispatch — re-admits it on the next beat with no extra protocol.
type Registrar struct {
	// Daemon is the study daemon's base URL (rldecide-serve).
	Daemon string
	// Info is this worker's registration.
	Info WorkerInfo
	// Token authenticates against the daemon's worker endpoints.
	Token string
	// Interval is the heartbeat period (default 3s).
	Interval time.Duration
	// Client is the HTTP client used (default http.DefaultClient).
	Client *http.Client
	// Logf receives operational log lines (default: discard).
	Logf func(format string, args ...any)
}

func (g *Registrar) logf(format string, args ...any) {
	if g.Logf != nil {
		g.Logf(format, args...)
	}
}

func (g *Registrar) client() *http.Client {
	if g.Client != nil {
		return g.Client
	}
	return http.DefaultClient
}

func (g *Registrar) interval() time.Duration {
	if g.Interval > 0 {
		return g.Interval
	}
	return 3 * time.Second
}

// Run registers the worker (retrying until the daemon is reachable), then
// heartbeats every Interval until ctx is cancelled, deregistering on the
// way out. It returns nil on a clean ctx-driven stop.
func (g *Registrar) Run(ctx context.Context) error {
	if err := g.Info.Validate(); err != nil {
		return err
	}
	for {
		err := g.post(ctx, "/workers/register", g.Info)
		if err == nil {
			g.logf("worker %s: registered with %s", g.Info.Name, g.Daemon)
			break
		}
		if ctx.Err() != nil {
			return ctx.Err()
		}
		g.logf("worker %s: registration with %s failed (will retry): %v", g.Info.Name, g.Daemon, err)
		select {
		case <-time.After(g.interval()):
		case <-ctx.Done():
			return ctx.Err()
		}
	}
	ticker := time.NewTicker(g.interval())
	defer ticker.Stop()
	for {
		select {
		case <-ctx.Done():
			g.deregister()
			return nil
		case <-ticker.C:
			if err := g.post(ctx, "/workers/heartbeat", g.Info); err != nil && ctx.Err() == nil {
				g.logf("worker %s: heartbeat failed: %v", g.Info.Name, err)
			}
		}
	}
}

// deregister tells the daemon the worker is leaving; best-effort with a
// short deadline since the worker is shutting down anyway.
func (g *Registrar) deregister() {
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	if err := g.post(ctx, "/workers/deregister", g.Info); err != nil {
		g.logf("worker %s: deregister failed: %v", g.Info.Name, err)
	}
}

func (g *Registrar) post(ctx context.Context, path string, v any) error {
	body, err := json.Marshal(v)
	if err != nil {
		return err
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, strings.TrimSuffix(g.Daemon, "/")+path, bytes.NewReader(body))
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "application/json")
	if g.Token != "" {
		req.Header.Set("Authorization", "Bearer "+g.Token)
	}
	resp, err := g.client().Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode/100 != 2 {
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
		return fmt.Errorf("executor: %s answered %d: %s", path, resp.StatusCode, bytes.TrimSpace(msg))
	}
	return nil
}
