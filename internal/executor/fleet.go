package executor

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strings"
	"sync"
	"time"

	"rldecide/internal/obs"
	"rldecide/internal/obs/span"
	"rldecide/internal/power"
)

// WorkerInfo is a worker's registration: how the daemon reaches it and how
// many trials it runs at once. The same payload registers, heartbeats and
// re-registers — a heartbeat from an unknown worker (say, one the fleet
// dropped after a timeout) simply re-adds it.
type WorkerInfo struct {
	// Name identifies the worker; journal records attribute trials to it.
	Name string `json:"name"`
	// URL is the worker's base URL (the daemon POSTs trials to URL+"/run").
	URL string `json:"url"`
	// Slots is the worker's concurrent-trial capacity (< 1 treated as 1).
	Slots int `json:"slots"`
}

// Validate checks a registration payload.
func (w WorkerInfo) Validate() error {
	if w.Name == "" {
		return fmt.Errorf("executor: worker registration needs a name")
	}
	if !strings.HasPrefix(w.URL, "http://") && !strings.HasPrefix(w.URL, "https://") {
		return fmt.Errorf("executor: worker %q needs an http(s) url, got %q", w.Name, w.URL)
	}
	return nil
}

// WorkerStatus is the API-facing digest of one fleet member.
type WorkerStatus struct {
	WorkerInfo
	InFlight   int     `json:"in_flight"`
	Dispatched int     `json:"dispatched"`
	Completed  int     `json:"completed"`
	Failed     int     `json:"failed"`
	BeatAgeSec float64 `json:"beat_age_seconds"`
}

// FleetOptions tunes a Fleet. The zero value is usable: every field has a
// default.
type FleetOptions struct {
	// AttemptTimeout bounds one dispatch attempt (connection + evaluation);
	// an attempt that exceeds it is abandoned and the trial is retried on
	// another worker (default 10m, <0 disables).
	AttemptTimeout time.Duration
	// MaxAttempts bounds how many workers a trial is tried on before Run
	// gives up (default 4).
	MaxAttempts int
	// Backoff is the delay before the second attempt; it doubles per
	// retry (default 100ms).
	Backoff time.Duration
	// HeartbeatTTL expires workers whose last heartbeat is older than this
	// (default 15s). Expiry is lazy — checked at every lease — so the
	// fleet needs no background goroutine.
	HeartbeatTTL time.Duration
	// Token, when set, is sent as a bearer token on every dispatch (the
	// worker daemons check it).
	Token string
	// Client is the dispatch HTTP client (default http.DefaultClient).
	Client *http.Client
	// Clock is the wall-clock seam used to age heartbeats; inject a fake
	// stopwatch in tests (default power.StartStopwatch()).
	Clock *power.Stopwatch
	// Events, when set, receives dispatch and worker lifecycle events
	// (obs.KindDispatch/KindDispatchEnd/KindWorkerUp/KindWorkerDown).
	// Publication is non-blocking and purely observational.
	Events *obs.Bus
	// Logf receives operational log lines (default: discard).
	Logf func(format string, args ...any)
}

// Fleet dispatches trials over HTTP to registered workers. Scheduling is a
// lease: Run picks the live worker with the most free slots (name order
// breaks ties), blocks when every slot is busy or no worker is registered,
// and requeues the trial onto another worker when a dispatch fails — which
// is how a mid-campaign kill -9 of a worker loses no trials.
type Fleet struct {
	opts   FleetOptions
	client *http.Client
	clock  *power.Stopwatch
	events *obs.Bus
	logf   func(string, ...any)

	mu sync.Mutex
	// guarded-by: mu
	workers map[string]*remoteWorker
	// guarded-by: mu
	wait chan struct{} // closed+replaced whenever capacity may have grown
}

type remoteWorker struct {
	info       WorkerInfo
	lastBeat   time.Duration // clock offset of the last heartbeat/registration
	inFlight   int
	dispatched int
	completed  int
	failed     int
	// specs records spec hashes this worker has confirmed caching, so
	// repeat dispatches ship hash-only requests. It is advisory: a 428
	// from the worker (restart, eviction) triggers a full resend.
	specs map[string]bool
}

// NewFleet returns an empty fleet; workers join via Upsert (the daemon's
// register/heartbeat endpoints call it).
func NewFleet(opts FleetOptions) *Fleet {
	if opts.AttemptTimeout == 0 {
		opts.AttemptTimeout = 10 * time.Minute
	}
	if opts.MaxAttempts <= 0 {
		opts.MaxAttempts = 4
	}
	if opts.Backoff <= 0 {
		opts.Backoff = 100 * time.Millisecond
	}
	if opts.HeartbeatTTL <= 0 {
		opts.HeartbeatTTL = 15 * time.Second
	}
	f := &Fleet{
		opts:    opts,
		client:  opts.Client,
		clock:   opts.Clock,
		events:  opts.Events,
		logf:    opts.Logf,
		workers: map[string]*remoteWorker{},
		wait:    make(chan struct{}),
	}
	if f.client == nil {
		f.client = http.DefaultClient
	}
	if f.clock == nil {
		f.clock = power.StartStopwatch()
	}
	if f.logf == nil {
		f.logf = func(string, ...any) {}
	}
	return f
}

// Upsert registers a worker or refreshes an existing one's heartbeat and
// registration info. It returns true when the worker is new to the fleet.
func (f *Fleet) Upsert(info WorkerInfo) (bool, error) {
	if err := info.Validate(); err != nil {
		return false, err
	}
	if info.Slots < 1 {
		info.Slots = 1
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	w, ok := f.workers[info.Name]
	if !ok {
		w = &remoteWorker{}
		f.workers[info.Name] = w
		f.events.Publish(obs.Event{Kind: obs.KindWorkerUp, Worker: info.Name})
	}
	w.info = info
	w.lastBeat = f.clock.Elapsed()
	f.wakeLocked()
	return !ok, nil
}

// Remove deregisters a worker, reporting whether it was present. In-flight
// dispatches to it finish (or fail and retry elsewhere) on their own.
func (f *Fleet) Remove(name string) bool {
	f.mu.Lock()
	defer f.mu.Unlock()
	_, ok := f.workers[name]
	delete(f.workers, name)
	if ok {
		f.events.Publish(obs.Event{Kind: obs.KindWorkerDown, Worker: name, Status: "deregistered"})
	}
	f.wakeLocked()
	return ok
}

// Workers returns the live fleet members, name-sorted.
func (f *Fleet) Workers() []WorkerStatus {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.expireLocked()
	now := f.clock.Elapsed()
	out := make([]WorkerStatus, 0, len(f.workers))
	for _, w := range f.workers {
		out = append(out, WorkerStatus{
			WorkerInfo: w.info,
			InFlight:   w.inFlight,
			Dispatched: w.dispatched,
			Completed:  w.completed,
			Failed:     w.failed,
			BeatAgeSec: (now - w.lastBeat).Seconds(),
		})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// Stats implements Executor.
func (f *Fleet) Stats() Stats {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.expireLocked()
	var s Stats
	for _, w := range f.workers {
		s.Cap += w.info.Slots
		s.InUse += w.inFlight
		s.Workers++
	}
	return s
}

// Run implements Executor: lease a worker, dispatch the trial with the
// per-attempt timeout, and on failure drop the worker (its next heartbeat
// re-admits it) and requeue the trial — backing off exponentially — until
// the result arrives, ctx is cancelled, or MaxAttempts workers have failed.
func (f *Fleet) Run(ctx context.Context, req TrialRequest) (TrialResult, error) {
	// An ambient tracing scope (installed by the daemon when spans are on)
	// times each dispatch attempt and names the parent span the worker's
	// own spans attach under. Nil scope — the common case — records nothing.
	sc := span.FromContext(ctx)
	trace := ""
	if sc != nil {
		trace = sc.Trace
	}
	backoff := f.opts.Backoff
	for attempt := 1; ; attempt++ {
		w, err := f.lease(ctx)
		if err != nil {
			return TrialResult{}, err
		}
		send := req
		if req.SpecHash != "" && f.workerKnowsSpec(w.Name, req.SpecHash) {
			send.Spec = nil // worker has the spec cached; ship hash-only
		}
		f.events.Publish(obs.Event{Kind: obs.KindDispatch, Study: req.StudyID, Trial: req.TrialID, Attempt: attempt, Worker: w.Name})
		dsp := sc.Start(span.NameDispatch, attempt)
		dsp.SetWorker(w.Name)
		parent := dsp.ID()
		start := f.clock.Elapsed()
		res, err := f.dispatch(ctx, w, send, trace, parent)
		if errors.Is(err, errSpecNotCached) && len(send.Spec) == 0 {
			// The worker lost its cache (restart mid-campaign, eviction):
			// forget our assumption and resend with the full spec. Not a
			// worker fault, so no drop and no attempt consumed.
			metricSpecCacheMisses.Inc()
			f.forgetSpec(w.Name, req.SpecHash)
			res, err = f.dispatch(ctx, w, req, trace, parent)
		}
		metricDispatches.Inc()
		metricDispatchSeconds.Observe((f.clock.Elapsed() - start).Seconds())
		done := obs.Event{Kind: obs.KindDispatchEnd, Study: req.StudyID, Trial: req.TrialID, Attempt: attempt, Worker: w.Name, Status: "ok"}
		if err != nil {
			metricDispatchFailures.Inc()
			done.Status = "error"
			done.Err = err.Error()
			dsp.Finish("error", err.Error())
		} else {
			dsp.Finish("ok", "")
		}
		f.events.Publish(done)
		f.settle(w.Name, err == nil)
		if err == nil {
			if req.SpecHash != "" {
				f.rememberSpec(w.Name, req.SpecHash)
			}
			// Fold the worker-side spans (run, objective) into our sink so
			// the owning daemon holds the complete tree.
			for _, sp := range res.Spans {
				sc.Record(sp)
			}
			return res, nil
		}
		if ctx.Err() != nil {
			return TrialResult{}, ctx.Err()
		}
		f.drop(w.Name, err)
		f.logf("executor: trial %s/%d attempt %d on worker %s failed: %v",
			req.StudyID, req.TrialID, attempt, w.Name, err)
		if attempt >= f.opts.MaxAttempts {
			return TrialResult{}, fmt.Errorf("executor: trial %s/%d failed on %d workers, giving up: %w",
				req.StudyID, req.TrialID, attempt, err)
		}
		metricRetries.Inc()
		select {
		case <-time.After(backoff):
		case <-ctx.Done():
			return TrialResult{}, ctx.Err()
		}
		backoff *= 2
	}
}

// lease blocks until a live worker has a free slot, then claims it.
func (f *Fleet) lease(ctx context.Context) (WorkerInfo, error) {
	for {
		f.mu.Lock()
		f.expireLocked()
		names := make([]string, 0, len(f.workers))
		for name := range f.workers {
			names = append(names, name)
		}
		sort.Strings(names)
		var pick *remoteWorker
		for _, name := range names {
			w := f.workers[name]
			if w.inFlight >= w.info.Slots {
				continue
			}
			if pick == nil || w.info.Slots-w.inFlight > pick.info.Slots-pick.inFlight {
				pick = w
			}
		}
		if pick != nil {
			pick.inFlight++
			pick.dispatched++
			info := pick.info
			f.mu.Unlock()
			return info, nil
		}
		wait := f.wait
		f.mu.Unlock()
		select {
		case <-wait:
		case <-ctx.Done():
			return WorkerInfo{}, ctx.Err()
		}
	}
}

// settle releases a lease and updates the worker's counters.
func (f *Fleet) settle(name string, ok bool) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if w, present := f.workers[name]; present {
		w.inFlight--
		if ok {
			w.completed++
		} else {
			w.failed++
		}
	}
	f.wakeLocked()
}

// drop removes a faulted worker until its next heartbeat re-admits it.
func (f *Fleet) drop(name string, cause error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if _, ok := f.workers[name]; ok {
		delete(f.workers, name)
		f.events.Publish(obs.Event{Kind: obs.KindWorkerDown, Worker: name, Status: "dropped", Err: cause.Error()})
		f.logf("executor: dropping worker %s until its next heartbeat: %v", name, cause)
	}
	f.wakeLocked()
}

// expireLocked drops workers whose heartbeat is older than the TTL.
// Callers hold f.mu.
func (f *Fleet) expireLocked() {
	now := f.clock.Elapsed()
	for name, w := range f.workers {
		if now-w.lastBeat > f.opts.HeartbeatTTL {
			delete(f.workers, name)
			f.events.Publish(obs.Event{Kind: obs.KindWorkerDown, Worker: name, Status: "expired"})
			f.logf("executor: worker %s heartbeat expired (%.1fs > %s)", name, (now - w.lastBeat).Seconds(), f.opts.HeartbeatTTL)
		}
	}
}

// wakeLocked rouses every goroutine blocked in lease so it re-evaluates
// capacity. Callers hold f.mu.
func (f *Fleet) wakeLocked() {
	close(f.wait)
	f.wait = make(chan struct{})
}

// workerKnowsSpec reports whether the worker has confirmed caching hash.
func (f *Fleet) workerKnowsSpec(name, hash string) bool {
	f.mu.Lock()
	defer f.mu.Unlock()
	w, ok := f.workers[name]
	return ok && w.specs[hash]
}

// rememberSpec records that the worker has the spec cached (it accepted a
// dispatch carrying it, or served a hash-only dispatch).
func (f *Fleet) rememberSpec(name, hash string) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if w, ok := f.workers[name]; ok {
		if w.specs == nil {
			w.specs = map[string]bool{}
		}
		w.specs[hash] = true
	}
}

// forgetSpec drops the cached-spec assumption after a worker-side miss.
func (f *Fleet) forgetSpec(name, hash string) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if w, ok := f.workers[name]; ok {
		delete(w.specs, hash)
	}
}

// errSpecNotCached reports a worker-side spec-cache miss (HTTP 428) on a
// hash-only dispatch; the dispatcher resends with the full spec.
var errSpecNotCached = errors.New("executor: worker is missing the cached spec")

// dispatch POSTs the trial to one worker and decodes its answer. A
// non-empty trace propagates the tracing context via the span headers so
// the worker records (and returns) its side of the tree.
func (f *Fleet) dispatch(ctx context.Context, w WorkerInfo, req TrialRequest, trace, parent string) (TrialResult, error) {
	body, err := json.Marshal(req)
	if err != nil {
		return TrialResult{}, fmt.Errorf("executor: encoding trial request: %w", err)
	}
	if f.opts.AttemptTimeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, f.opts.AttemptTimeout)
		defer cancel()
	}
	hreq, err := http.NewRequestWithContext(ctx, http.MethodPost, strings.TrimSuffix(w.URL, "/")+"/run", bytes.NewReader(body))
	if err != nil {
		return TrialResult{}, err
	}
	hreq.Header.Set("Content-Type", "application/json")
	span.Inject(hreq.Header, trace, parent)
	if f.opts.Token != "" {
		hreq.Header.Set("Authorization", "Bearer "+f.opts.Token)
	}
	resp, err := f.client.Do(hreq)
	if err != nil {
		return TrialResult{}, err
	}
	defer resp.Body.Close()
	if resp.StatusCode == http.StatusPreconditionRequired {
		io.Copy(io.Discard, io.LimitReader(resp.Body, 512))
		return TrialResult{}, fmt.Errorf("worker %s: %w", w.Name, errSpecNotCached)
	}
	if resp.StatusCode != http.StatusOK {
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
		return TrialResult{}, fmt.Errorf("executor: worker %s answered %d: %s", w.Name, resp.StatusCode, bytes.TrimSpace(msg))
	}
	var res TrialResult
	if err := json.NewDecoder(resp.Body).Decode(&res); err != nil {
		return TrialResult{}, fmt.Errorf("executor: decoding worker %s result: %w", w.Name, err)
	}
	if res.TrialID != req.TrialID || res.StudyID != req.StudyID {
		return TrialResult{}, fmt.Errorf("executor: worker %s answered trial %s/%d for dispatch %s/%d",
			w.Name, res.StudyID, res.TrialID, req.StudyID, req.TrialID)
	}
	if res.Worker == "" {
		res.Worker = w.Name
	}
	return res, nil
}
